// Package blinkradar is a full reproduction of "BlinkRadar:
// Non-Intrusive Driver Eye-Blink Detection with UWB Radar" (ICDCS
// 2022): a contact-free, privacy-preserving driver eye-blink and
// drowsiness monitor built on impulse-radio ultra-wideband radar.
//
// The package exposes three layers:
//
//   - Simulation: a physics-level IR-UWB substrate (pulse, multipath
//     channel, I/Q receiver) driven by physiological models (blink
//     kinematics, respiration, ballistocardiographic head motion) and a
//     vehicle environment (roads, vibration, cabin clutter). Generate
//     produces labelled captures; in a real deployment the same frame
//     matrices would come from the radar over the transport package's
//     TCP stream.
//   - Detection: the paper's pipeline — preprocessing, variance-based
//     eye-bin identification, Pratt-fit viewing-position tracking, and
//     LEVD blink detection — via Detector (streaming) or Detect
//     (offline).
//   - Drowsiness: per-driver calibration and classification from blink
//     rate and duration over one-minute windows via DrowsinessModel.
//
// Quick start:
//
//	capture, err := blinkradar.Generate(blinkradar.DefaultSpec())
//	if err != nil { ... }
//	events, _, err := blinkradar.Detect(blinkradar.DefaultConfig(), capture.Frames)
//
// Everything is deterministic given the scenario seed; see the examples
// directory and DESIGN.md for the architecture and the paper mapping.
package blinkradar

import (
	"blinkradar/internal/core"
	"blinkradar/internal/eval"
	"blinkradar/internal/obs"
	"blinkradar/internal/physio"
	"blinkradar/internal/rf"
	"blinkradar/internal/scenario"
	"blinkradar/internal/vehicle"
	"blinkradar/internal/vitals"
)

// Radar and capture types.
type (
	// Pulse is the transmitted IR-UWB impulse (Eq. 1-3).
	Pulse = rf.Pulse
	// ChannelConfig parameterises the simulated radio.
	ChannelConfig = rf.ChannelConfig
	// FrameMatrix is the radar data product: complex range profiles
	// over slow time.
	FrameMatrix = rf.FrameMatrix
	// Reflector is a simulated radar target.
	Reflector = rf.Reflector
	// StaticReflector is a fixed clutter target.
	StaticReflector = rf.StaticReflector
	// FuncReflector adapts a closure to Reflector.
	FuncReflector = rf.FuncReflector
	// Channel renders reflectors into frame matrices.
	Channel = rf.Channel
)

// Scenario types.
type (
	// Spec describes one synthetic capture.
	Spec = scenario.Spec
	// Capture is a labelled synthetic recording.
	Capture = scenario.Capture
	// Environment selects lab versus driving conditions.
	Environment = scenario.Environment
	// Subject is a simulated participant.
	Subject = physio.Subject
	// Blink is a ground-truth blink event.
	Blink = physio.Blink
	// BlinkStats parameterises the blink process.
	BlinkStats = physio.BlinkStats
	// State is the driver's alertness state.
	State = physio.State
	// Glasses is the eyewear condition.
	Glasses = physio.Glasses
	// RoadType is the road/traffic class.
	RoadType = vehicle.RoadType
)

// Detection types.
type (
	// Config parameterises the detection pipeline.
	Config = core.Config
	// Option mutates a Config at detector construction.
	Option = core.Option
	// Detector is the streaming detection pipeline.
	Detector = core.Detector
	// BlinkEvent is a detected blink.
	BlinkEvent = core.BlinkEvent
	// WindowFeatures summarises blinks over a classification window.
	WindowFeatures = core.WindowFeatures
	// DrowsinessModel is the per-driver drowsiness classifier.
	DrowsinessModel = core.DrowsinessModel
	// MatchResult is the detection-vs-truth evaluation outcome.
	MatchResult = eval.MatchResult
	// BatchResult is one capture's outcome in a DetectBatch run.
	BatchResult = core.BatchResult
	// HealthState is the detector's coarse operating condition.
	HealthState = core.HealthState
	// InputStats summarises input sanitization and gap handling.
	InputStats = core.InputStats
)

// Detector health states (see core.HealthState).
const (
	// HealthAcquiring is the initial cold start.
	HealthAcquiring = core.HealthAcquiring
	// HealthTracking is normal operation.
	HealthTracking = core.HealthTracking
	// HealthReacquiring is the post-gap cold-start re-run.
	HealthReacquiring = core.HealthReacquiring
	// HealthDegraded means the input stream is currently unusable.
	HealthDegraded = core.HealthDegraded
)

// Alertness states.
const (
	// Awake is a vigilant driver.
	Awake = physio.Awake
	// Drowsy is a fatigued driver.
	Drowsy = physio.Drowsy
)

// Environments.
const (
	// Lab is the static feasibility setup.
	Lab = scenario.Lab
	// Driving is the on-road setup.
	Driving = scenario.Driving
)

// Eyewear conditions (Fig. 16a).
const (
	// NoGlasses is the bare-eye condition.
	NoGlasses = physio.NoGlasses
	// MyopiaGlasses are clear corrective lenses.
	MyopiaGlasses = physio.MyopiaGlasses
	// Sunglasses are tinted lenses.
	Sunglasses = physio.Sunglasses
)

// Road classes (Fig. 16b).
const (
	// SmoothHighway is a smooth road with no manoeuvres.
	SmoothHighway = vehicle.SmoothHighway
	// UrbanRoad has mild roughness and occasional manoeuvres.
	UrbanRoad = vehicle.UrbanRoad
	// ManoeuvreHeavy includes turns, roundabouts and U-turns.
	ManoeuvreHeavy = vehicle.ManoeuvreHeavy
	// BumpyRoad is a rough surface with sustained vibration.
	BumpyRoad = vehicle.BumpyRoad
)

// Simulation entry points.
var (
	// DefaultSpec returns a 60 s awake lab capture at 0.4 m.
	DefaultSpec = scenario.DefaultSpec
	// Generate renders the capture described by a Spec.
	Generate = scenario.Generate
	// NewSubject deterministically creates participant profiles.
	NewSubject = physio.NewSubject
	// Roster creates participants 1..n.
	Roster = physio.Roster
	// NewPulse returns the paper's 7.3 GHz / 1.4 GHz pulse.
	NewPulse = rf.NewPulse
	// DefaultChannelConfig returns the paper's radio configuration.
	DefaultChannelConfig = rf.DefaultChannelConfig
	// NewChannel constructs a multipath rendering channel.
	NewChannel = rf.NewChannel
)

// Detection entry points.
var (
	// DefaultConfig returns the paper-faithful pipeline configuration.
	DefaultConfig = core.DefaultConfig
	// NewDetector builds a streaming detector.
	NewDetector = core.NewDetector
	// Detect runs the pipeline over a recorded capture.
	Detect = core.Detect
	// DetectBatch runs the pipeline over N captures concurrently on a
	// bounded worker pool (parallelism <= 0 selects GOMAXPROCS).
	DetectBatch = core.DetectBatch
	// ExtractWindows slices detections into classification windows.
	ExtractWindows = core.ExtractWindows
	// WithThresholdK overrides the LEVD threshold multiplier.
	WithThresholdK = core.WithThresholdK
	// WithAdaptiveUpdate toggles adaptive viewing-position updates.
	WithAdaptiveUpdate = core.WithAdaptiveUpdate
	// WithParallelism bounds the worker pool of the parallel pipeline
	// stages (0 = GOMAXPROCS, 1 = serial).
	WithParallelism = core.WithParallelism
)

// Vital-sign estimation (the embedded interference, made useful).
type (
	// VitalsEstimate is a respiration/heart-rate reading.
	VitalsEstimate = vitals.Estimate
	// VitalsMonitor is the streaming vital-sign estimator.
	VitalsMonitor = vitals.Monitor
	// RangeDopplerMap is the classic 2-D radar product of Section IV-A.
	RangeDopplerMap = rf.RangeDopplerMap
)

// Vital-sign and range-Doppler entry points.
var (
	// EstimateVitals analyses a bin's slow-time I/Q series.
	EstimateVitals = vitals.EstimateFromSeries
	// NewVitalsMonitor builds a streaming estimator.
	NewVitalsMonitor = vitals.NewMonitor
	// ComputeRangeDoppler builds a range-Doppler map from frames.
	ComputeRangeDoppler = rf.ComputeRangeDoppler
)

// Evaluation entry points.
var (
	// Match pairs detections with ground truth.
	Match = eval.Match
	// TrimWarmup drops ground truth inside the pipeline cold start.
	TrimWarmup = eval.TrimWarmup
)

// DefaultWarmup is the scoring exclusion window in seconds.
const DefaultWarmup = eval.DefaultWarmup

// Observability types: attach a MetricsRegistry to a Monitor or
// Detector via SetRegistry and export it through a MetricsAdmin (or
// scrape Snapshot directly).
type (
	// MetricsRegistry holds named atomic counters, gauges and
	// histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-marshalable view.
	MetricsSnapshot = obs.Snapshot
	// MetricsAdmin serves /metrics, /healthz and pprof over HTTP.
	MetricsAdmin = obs.Admin
)

// Observability entry points.
var (
	// NewMetricsRegistry creates an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewMetricsAdmin builds the admin HTTP surface over a registry.
	NewMetricsAdmin = obs.NewAdmin
)
