// Streaming demonstrates the distributed acquisition topology of the
// real deployment in a single process: a radar daemon (the Raspberry Pi
// attached to the impulse radio) broadcasts frames over loopback TCP,
// and a monitoring client runs the real-time pipeline on the stream.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"blinkradar"
	"blinkradar/internal/transport"
)

func main() {
	// Simulate a two-minute drive to serve.
	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(9)
	spec.Environment = blinkradar.Driving
	spec.Duration = 120
	spec.Seed = 77
	capture, err := blinkradar.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving a %d-frame capture with %d ground-truth blinks\n",
		capture.Frames.NumFrames(), len(capture.Truth))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The daemon side: replay the capture once at 40x real time (a real
	// daemon paces at the radio's 25 fps), waiting for the monitor to
	// connect before streaming.
	src := transport.NewMatrixSource(capture.Frames, true, false)
	if err := src.SetSpeed(40); err != nil {
		log.Fatal(err)
	}
	server := transport.NewServer(src, nil)
	server.SetMinClients(1)
	serverDone := make(chan error, 1)
	go func() { serverDone <- server.Serve(ctx, ln) }()

	// The monitor side: dial, read the stream geometry, run the
	// real-time detector on every received frame.
	dialCtx, dialCancel := context.WithTimeout(ctx, 5*time.Second)
	defer dialCancel()
	client, err := transport.Dial(dialCtx, ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	hello := client.Hello()
	fmt.Printf("client connected: %d bins at %.1f fps\n", hello.NumBins, hello.FrameRate)

	detector, err := blinkradar.NewDetector(blinkradar.DefaultConfig(), int(hello.NumBins), hello.FrameRate)
	if err != nil {
		log.Fatal(err)
	}
	var events []blinkradar.BlinkEvent
	err = client.Run(ctx, func(f transport.Frame) error {
		ev, ok, err := detector.Feed(f.Bins)
		if err != nil {
			return err
		}
		if ok {
			events = append(events, ev)
			fmt.Printf("  live blink at t=%6.2fs (frame %d)\n", ev.Time, f.Seq)
		}
		return nil
	})
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, context.Canceled) {
		// The replay source ends the stream when the capture is
		// exhausted; anything else is a real failure.
		var netErr net.Error
		if !errors.As(err, &netErr) {
			log.Fatal(err)
		}
	}

	truth := blinkradar.TrimWarmup(capture.Truth, blinkradar.DefaultWarmup)
	m := blinkradar.Match(truth, events, 0)
	fmt.Printf("streamed detection: %d blinks, accuracy %.1f%% over the wire\n",
		len(events), m.Accuracy()*100)
	cancel()
	<-serverDone
}
