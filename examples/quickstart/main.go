// Quickstart: simulate one minute of driving, detect blinks, and score
// the result against ground truth — the smallest end-to-end use of the
// blinkradar API.
package main

import (
	"fmt"
	"log"

	"blinkradar"
)

func main() {
	// A Spec fully determines a synthetic capture: participant,
	// alertness state, geometry and environment. Everything flows from
	// the seed, so runs are reproducible.
	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(7)
	spec.Environment = blinkradar.Driving
	spec.Duration = 60
	spec.Seed = 2024

	capture, err := blinkradar.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture: %d frames, %d range bins, %d ground-truth blinks\n",
		capture.Frames.NumFrames(), capture.Frames.NumBins(), len(capture.Truth))

	// Run the paper's pipeline offline over the recorded frames.
	events, detector, err := blinkradar.Detect(blinkradar.DefaultConfig(), capture.Frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d blinks on range bin %d (true eye bin %d)\n",
		len(events), detector.Bin(), capture.EyeBin)
	for _, e := range events {
		fmt.Printf("  t=%6.2fs  duration=%3.0fms  amplitude=%.3f\n",
			e.Time, e.Duration*1000, e.Amplitude)
	}

	// Score against ground truth, excluding the pipeline warm-up.
	truth := blinkradar.TrimWarmup(capture.Truth, blinkradar.DefaultWarmup)
	m := blinkradar.Match(truth, events, 0)
	fmt.Printf("accuracy %.1f%%, precision %.1f%%\n", m.Accuracy()*100, m.Precision()*100)
}
