// Vitalsigns demonstrates the extension built on the paper's "embedded
// interference": the same radar stream that detects blinks also carries
// the driver's respiration and heartbeat, which the Monitor surfaces
// alongside every drowsiness assessment.
package main

import (
	"fmt"
	"log"

	"blinkradar"
)

func main() {
	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(12)
	spec.Environment = blinkradar.Driving
	spec.Duration = 3 * 60
	spec.Seed = 555

	capture, err := blinkradar.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("driver %d ground truth: respiration %.1f breaths/min, heart %.0f beats/min\n",
		spec.Subject.ID, spec.Subject.Respiration.RateHz*60, spec.Subject.Heartbeat.RateHz*60)

	monitor, err := blinkradar.NewMonitor(blinkradar.DefaultConfig(),
		capture.Frames.NumBins(), capture.Frames.FrameRate, 60)
	if err != nil {
		log.Fatal(err)
	}
	blinks := 0
	for _, frame := range capture.Frames.Data {
		_, ok, assessment, err := monitor.Feed(frame)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			blinks++
		}
		if assessment == nil {
			continue
		}
		fmt.Printf("minute %d: %4.1f blinks/min", int(assessment.WindowEnd/60), assessment.Features.BlinkRate)
		if v := assessment.Vitals; v != nil {
			fmt.Printf("  | respiration %.1f breaths/min (snr %.0f)", v.RespirationBPM(), v.RespirationSNR)
			if v.HeartHz > 0 {
				fmt.Printf(", heart %.0f beats/min (snr %.0f)", v.HeartBPM(), v.HeartSNR)
			}
		}
		fmt.Println()
	}
	fmt.Printf("total blinks detected: %d (truth %d)\n", blinks, len(capture.Truth))

	// The offline path: estimate once over the whole capture from the
	// pipeline's own selected bin.
	events, det, err := blinkradar.Detect(blinkradar.DefaultConfig(), capture.Frames)
	if err != nil {
		log.Fatal(err)
	}
	_ = events
	fmt.Printf("pipeline tracked range bin %d (true eye bin %d)\n", det.Bin(), capture.EyeBin)
}
