// Drowsydrive demonstrates the full drowsy-driving monitor: calibrate a
// per-driver model from enrolment recordings, then stream a long drive
// whose driver turns drowsy halfway through a bumpy road, and watch the
// monitor's one-minute assessments flip.
package main

import (
	"fmt"
	"log"

	"blinkradar"
)

const windowSec = 60

func main() {
	driver := blinkradar.NewSubject(4)
	cfg := blinkradar.DefaultConfig()

	// --- Enrolment: record awake and drowsy sessions covering the
	// deployment's road conditions and slice them into calibration
	// windows (paper Section V ground truth protocol).
	fmt.Println("calibrating driver 4 ...")
	var awakeWindows, drowsyWindows []blinkradar.WindowFeatures
	for i, road := range []blinkradar.RoadType{blinkradar.SmoothHighway, blinkradar.BumpyRoad} {
		aw, err := enrolmentWindows(cfg, driver, blinkradar.Awake, road, 301+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		dw, err := enrolmentWindows(cfg, driver, blinkradar.Drowsy, road, 311+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		awakeWindows = append(awakeWindows, aw...)
		drowsyWindows = append(drowsyWindows, dw...)
	}

	// --- Live monitoring: an awake drive followed by a drowsy one on a
	// bumpy road, streamed frame by frame through the Monitor.
	specs := []blinkradar.Spec{
		driveSpec(driver, blinkradar.Awake, blinkradar.SmoothHighway, 401),
		driveSpec(driver, blinkradar.Drowsy, blinkradar.BumpyRoad, 402),
	}
	for _, spec := range specs {
		capture, err := blinkradar.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		monitor, err := blinkradar.NewMonitor(cfg, capture.Frames.NumBins(), capture.Frames.FrameRate, windowSec)
		if err != nil {
			log.Fatal(err)
		}
		if err := monitor.Calibrate(awakeWindows, drowsyWindows); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s drive on %s road (%d true blinks) ---\n",
			spec.State, spec.Road, len(capture.Truth))
		blinks := 0
		for _, frame := range capture.Frames.Data {
			_, ok, assessment, err := monitor.Feed(frame)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				blinks++
			}
			if assessment == nil {
				continue
			}
			verdict := "awake"
			if assessment.Drowsy {
				verdict = "DROWSY - pull over"
			}
			fmt.Printf("minute %d: %4.1f blinks/min (mean %3.0f ms) -> %s (p=%.2f)\n",
				int(assessment.WindowEnd/windowSec), assessment.Features.BlinkRate,
				assessment.Features.MeanBlinkDuration*1000, verdict, assessment.Posterior)
		}
		fmt.Printf("total detected blinks: %d\n", blinks)
	}
}

// enrolmentWindows records a calibration session and extracts windows,
// dropping the warm-up minute.
func enrolmentWindows(cfg blinkradar.Config, driver blinkradar.Subject, state blinkradar.State, road blinkradar.RoadType, seed int64) ([]blinkradar.WindowFeatures, error) {
	spec := driveSpec(driver, state, road, seed)
	capture, err := blinkradar.Generate(spec)
	if err != nil {
		return nil, err
	}
	events, _, err := blinkradar.Detect(cfg, capture.Frames)
	if err != nil {
		return nil, err
	}
	windows, err := blinkradar.ExtractWindows(events, spec.Duration, windowSec)
	if err != nil {
		return nil, err
	}
	if len(windows) < 2 {
		return nil, fmt.Errorf("enrolment too short: %d windows", len(windows))
	}
	return windows[1:], nil
}

// driveSpec builds a 5-minute driving capture.
func driveSpec(driver blinkradar.Subject, state blinkradar.State, road blinkradar.RoadType, seed int64) blinkradar.Spec {
	spec := blinkradar.DefaultSpec()
	spec.Subject = driver
	spec.Environment = blinkradar.Driving
	spec.State = state
	spec.Road = road
	spec.Duration = 5 * 60
	spec.Seed = seed
	return spec
}
