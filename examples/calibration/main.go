// Calibration sweeps the mounting geometry — distance, azimuth and
// elevation — to find where the radar keeps its accuracy, reproducing
// the deployment guidance of the paper's Sections VI-D/E/F: keep the
// device within 0.4 m and within about 15-30 degrees of the line of
// sight.
package main

import (
	"fmt"
	"log"

	"blinkradar"
)

func main() {
	fmt.Println("mounting-geometry calibration (subject 3, 90 s per point)")

	fmt.Println("\ndistance sweep (boresight):")
	for _, d := range []float64{0.2, 0.3, 0.4, 0.6, 0.8} {
		acc := measure(func(s *blinkradar.Spec) { s.EyeDistance = d })
		fmt.Printf("  %.1f m: %s\n", d, bar(acc))
	}

	fmt.Println("\nazimuth sweep (0.4 m):")
	for _, a := range []float64{0, 10, 20, 30, 45} {
		acc := measure(func(s *blinkradar.Spec) { s.AzimuthDeg = a })
		fmt.Printf("  %2.0f deg: %s\n", a, bar(acc))
	}

	fmt.Println("\nelevation sweep (0.4 m):")
	for _, e := range []float64{0, 15, 30, 45, 60} {
		acc := measure(func(s *blinkradar.Spec) { s.ElevationDeg = e })
		fmt.Printf("  %2.0f deg: %s\n", e, bar(acc))
	}
}

// measure runs two seeds of a 90 s lab capture under the mutation and
// returns the mean blink-detection accuracy.
func measure(mutate func(*blinkradar.Spec)) float64 {
	var sum float64
	const runs = 2
	for i := 0; i < runs; i++ {
		spec := blinkradar.DefaultSpec()
		spec.Subject = blinkradar.NewSubject(3)
		spec.Duration = 90
		spec.Seed = int64(9000 + i*137)
		mutate(&spec)
		capture, err := blinkradar.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		events, _, err := blinkradar.Detect(blinkradar.DefaultConfig(), capture.Frames)
		if err != nil {
			log.Fatal(err)
		}
		truth := blinkradar.TrimWarmup(capture.Truth, blinkradar.DefaultWarmup)
		sum += blinkradar.Match(truth, events, 0).Accuracy()
	}
	return sum / runs
}

// bar renders an accuracy as a text gauge.
func bar(acc float64) string {
	n := int(acc * 30)
	out := make([]byte, 30)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = '.'
		}
	}
	return fmt.Sprintf("%s %.0f%%", out, acc*100)
}
