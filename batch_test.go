package blinkradar_test

import (
	"testing"

	"blinkradar"
)

// batchCaptures generates n short, distinct captures for batch tests.
func batchCaptures(t testing.TB, n int) []*blinkradar.FrameMatrix {
	t.Helper()
	captures := make([]*blinkradar.FrameMatrix, n)
	for i := range captures {
		spec := blinkradar.DefaultSpec()
		spec.Subject = blinkradar.NewSubject(i + 1)
		spec.Duration = 20
		spec.Seed = int64(100 + i)
		capture, err := blinkradar.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		captures[i] = capture.Frames
	}
	return captures
}

// TestDetectBatchMatchesSerialDetect runs the concurrent batch API over
// several captures (exercised under -race in CI) and checks every
// capture's events are identical to a plain serial Detect.
func TestDetectBatchMatchesSerialDetect(t *testing.T) {
	cfg := blinkradar.DefaultConfig()
	captures := batchCaptures(t, 5)

	results, err := blinkradar.DetectBatch(cfg, captures, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(captures) {
		t.Fatalf("got %d results, want %d", len(results), len(captures))
	}
	for i, m := range captures {
		want, det, err := blinkradar.Detect(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if got.Err != nil {
			t.Fatalf("capture %d: %v", i, got.Err)
		}
		if len(got.Events) != len(want) {
			t.Fatalf("capture %d: %d events, serial %d", i, len(got.Events), len(want))
		}
		for j := range want {
			if got.Events[j] != want[j] {
				t.Fatalf("capture %d event %d = %+v, serial %+v", i, j, got.Events[j], want[j])
			}
		}
		if got.Restarts != det.Restarts() || got.BinSwitches != det.BinSwitches() {
			t.Fatalf("capture %d diagnostics (%d,%d), serial (%d,%d)",
				i, got.Restarts, got.BinSwitches, det.Restarts(), det.BinSwitches())
		}
	}
}

func TestDetectBatchNilAndEmpty(t *testing.T) {
	cfg := blinkradar.DefaultConfig()
	results, err := blinkradar.DetectBatch(cfg, nil, 0)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: results=%d err=%v", len(results), err)
	}
	captures := batchCaptures(t, 2)
	captures[1] = nil
	results, err = blinkradar.DetectBatch(cfg, captures, 2)
	if err == nil {
		t.Fatal("nil capture must surface an error")
	}
	if results[0].Err != nil {
		t.Fatalf("healthy capture failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("nil capture's result must carry the error")
	}
}
