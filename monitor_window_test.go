package blinkradar

import (
	"math"
	"testing"
)

// windowTestMonitor builds a monitor with a short window at a
// controllable frame rate for white-box window-accounting tests.
func windowTestMonitor(t *testing.T, frameRate, windowSec float64) *Monitor {
	t.Helper()
	m, err := NewMonitor(DefaultConfig(), 16, frameRate, windowSec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ingestEmpty advances the monitor's window clock by n event-free
// frames, collecting any assessments produced along the way.
func ingestEmpty(t *testing.T, m *Monitor, n int) []Assessment {
	t.Helper()
	var out []Assessment
	for i := 0; i < n; i++ {
		_, _, a, err := m.ingest(BlinkEvent{}, false)
		if err != nil {
			t.Fatal(err)
		}
		if a != nil {
			out = append(out, *a)
		}
	}
	return out
}

// blinksIn converts an assessment back to its window's blink count.
func blinksIn(a Assessment, span float64) int {
	return int(math.Round(a.Features.BlinkRate * span / 60))
}

// TestBoundaryBlinkCountedExactlyOnce is the regression test for the
// lost-boundary-blink bug: LEVD stamps events in the past (smoother
// group delay + refractory hold), so a blink delivered just after a
// window boundary carries Time < start of the new window. The old
// frame-modulo assessment had already closed the previous window, so
// the event was counted in no window at all. With lag-deferred
// assessment it lands in exactly one.
func TestBoundaryBlinkCountedExactlyOnce(t *testing.T) {
	const fps, windowSec = 10.0, 2.0
	m := windowTestMonitor(t, fps, windowSec)

	// 21 event-free frames: the frame clock is at 2.1 s, past the
	// 2.0 s boundary. With the old accounting the first window has
	// already been assessed.
	assessments := ingestEmpty(t, m, 21)

	// A blink detected around the boundary is delivered now, stamped
	// 1.95 s — inside the *first* window.
	_, ok, a, err := m.ingest(BlinkEvent{Time: 1.95, Duration: 0.2, Amplitude: 1, Confidence: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ingest dropped the delivered event")
	}
	if a != nil {
		assessments = append(assessments, *a)
	}

	// Run well past both windows plus the delivery lag.
	assessments = append(assessments, ingestEmpty(t, m, 100)...)

	if len(assessments) < 2 {
		t.Fatalf("got %d assessments, want at least 2", len(assessments))
	}
	total := 0
	for _, a := range assessments {
		total += blinksIn(a, windowSec)
	}
	if total != 1 {
		t.Fatalf("boundary blink counted %d times across all windows, want exactly 1", total)
	}
	if got := blinksIn(assessments[0], windowSec); got != 1 {
		t.Fatalf("first window [0,2) counted %d blinks, want 1 (event stamped 1.95 s)", got)
	}
}

// TestLateEventClampedIntoOpenWindow covers the pathological case of an
// event delivered later than the documented lag bound: it is clamped
// into the open window rather than silently landing in a closed one.
func TestLateEventClampedIntoOpenWindow(t *testing.T) {
	const fps, windowSec = 10.0, 2.0
	m := windowTestMonitor(t, fps, windowSec)

	// Advance far enough that window [0,2) is closed.
	assessments := ingestEmpty(t, m, 60)
	// Deliver an event stamped inside the long-closed first window.
	_, _, a, err := m.ingest(BlinkEvent{Time: 0.5, Duration: 0.2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if a != nil {
		assessments = append(assessments, *a)
	}
	assessments = append(assessments, ingestEmpty(t, m, 100)...)

	total := 0
	for _, a := range assessments {
		total += blinksIn(a, windowSec)
	}
	if total != 1 {
		t.Fatalf("late event counted %d times, want exactly once (clamped into the open window)", total)
	}
}

// TestWindowBoundariesExactAtNonIntegerRate is the regression test for
// the window-boundary drift bug: with windowSec*frameRate non-integer
// (60 s at 14.925 fps in the field), the old truncated frame window
// shortened every window and drifted the boundaries away from the wall
// clock while BlinkRate still divided by windowSec. Boundaries must sit
// on exact multiples of windowSec. This one drives the public Feed API.
func TestWindowBoundariesExactAtNonIntegerRate(t *testing.T) {
	const fps, windowSec = 14.925, 4.0
	m := windowTestMonitor(t, fps, windowSec)
	frame := make([]complex128, 16)

	var ends []float64
	nFrames := 30 * 15 // ~30 s of frames
	for i := 0; i < nFrames; i++ {
		_, _, a, err := m.Feed(frame)
		if err != nil {
			t.Fatal(err)
		}
		if a != nil {
			ends = append(ends, a.WindowEnd)
		}
	}
	if len(ends) < 5 {
		t.Fatalf("got %d assessments over 30 s with 4 s windows, want at least 5", len(ends))
	}
	for i, end := range ends {
		want := float64(i+1) * windowSec
		if math.Abs(end-want) > 1e-9 {
			t.Fatalf("window %d ends at %.6f s, want exactly %.6f s (boundary drift)", i, end, want)
		}
	}
}

// TestAssessErrorStillReturnsBlink is the regression test for the
// swallowed-blink bug: when the window assessment fails, the blink that
// was detected on the same frame — and already recorded — must still be
// returned to the caller alongside the error.
func TestAssessErrorStillReturnsBlink(t *testing.T) {
	const fps, windowSec = 10.0, 2.0
	m := windowTestMonitor(t, fps, windowSec)
	awake := []WindowFeatures{{BlinkRate: 10, MeanBlinkDuration: 0.2}, {BlinkRate: 12, MeanBlinkDuration: 0.22}}
	drowsy := []WindowFeatures{{BlinkRate: 28, MeanBlinkDuration: 0.4}, {BlinkRate: 30, MeanBlinkDuration: 0.45}}
	if err := m.Calibrate(awake, drowsy); err != nil {
		t.Fatal(err)
	}

	// Poison the first window: a NaN duration makes its features
	// non-finite, so Classify fails when the window is assessed.
	if _, _, _, err := m.ingest(BlinkEvent{Time: 0.1, Duration: math.NaN()}, true); err != nil {
		t.Fatal(err)
	}
	ingestEmpty(t, m, 30)

	// This delivery both carries a fresh blink and completes the
	// poisoned window (its stamp is past the boundary).
	in := BlinkEvent{Time: 3.1, Duration: 0.2, Amplitude: 1, Confidence: 2}
	ev, ok, _, err := m.ingest(in, true)
	if err == nil {
		t.Fatal("assessment of the poisoned window did not fail")
	}
	if !ok {
		t.Fatal("assess error swallowed the detected blink (ok=false)")
	}
	if ev != in {
		t.Fatalf("assess error returned blink %+v, want %+v", ev, in)
	}
}

// TestSetWindowSecAppliesAtBoundary verifies widening takes effect only
// at the next boundary and that BlinkRate normalises by the actual span
// of the widened window.
func TestSetWindowSecAppliesAtBoundary(t *testing.T) {
	const fps, windowSec = 10.0, 2.0
	m := windowTestMonitor(t, fps, windowSec)
	if err := m.SetWindowSec(4.0); err != nil {
		t.Fatal(err)
	}
	if got := m.WindowSec(); got != 2.0 {
		t.Fatalf("window widened mid-window: got %g, want 2 until the boundary", got)
	}

	var assessments []Assessment
	collect := func(n int) { assessments = append(assessments, ingestEmpty(t, m, n)...) }
	collect(41) // closes [0,2)
	if len(assessments) != 1 || assessments[0].WindowEnd != 2.0 {
		t.Fatalf("first assessment %+v, want WindowEnd=2", assessments)
	}
	if got := m.WindowSec(); got != 4.0 {
		t.Fatalf("pending window span not applied at boundary: got %g, want 4", got)
	}

	// Two blinks inside the widened window [2,6): rate must divide by
	// the actual 4 s span -> 30 blinks/min.
	if _, _, _, err := m.ingest(BlinkEvent{Time: 3.0, Duration: 0.2}, true); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.ingest(BlinkEvent{Time: 4.5, Duration: 0.2}, true); err != nil {
		t.Fatal(err)
	}
	collect(60)
	if len(assessments) < 2 {
		t.Fatalf("widened window never assessed: %+v", assessments)
	}
	second := assessments[1]
	if second.WindowEnd != 6.0 {
		t.Fatalf("widened window ends at %g, want 6", second.WindowEnd)
	}
	if math.Abs(second.Features.BlinkRate-30) > 1e-9 {
		t.Fatalf("widened window rate %.3f blinks/min, want 30 (2 blinks / 4 s)", second.Features.BlinkRate)
	}
}

// TestMonitorResetRecyclesCleanly verifies the pool-recycling contract:
// Reset returns the monitor to its as-constructed state and performs no
// allocations.
func TestMonitorResetRecyclesCleanly(t *testing.T) {
	const fps, windowSec = 10.0, 2.0
	m := windowTestMonitor(t, fps, windowSec)
	if err := m.Calibrate(
		[]WindowFeatures{{BlinkRate: 10, MeanBlinkDuration: 0.2}, {BlinkRate: 12, MeanBlinkDuration: 0.25}},
		[]WindowFeatures{{BlinkRate: 28, MeanBlinkDuration: 0.4}, {BlinkRate: 30, MeanBlinkDuration: 0.5}},
	); err != nil {
		t.Fatal(err)
	}
	if err := m.SetWindowSec(8); err != nil {
		t.Fatal(err)
	}
	frame := make([]complex128, 16)
	for i := 0; i < 100; i++ {
		if _, _, _, err := m.Feed(frame); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := m.ingest(BlinkEvent{Time: 5, Duration: 0.2}, true); err != nil {
		t.Fatal(err)
	}

	m.Reset()
	if m.det.Frame() != 0 {
		t.Fatalf("detector frame count %d after Reset, want 0", m.det.Frame())
	}
	if len(m.Events()) != 0 {
		t.Fatal("events survived Reset")
	}
	if m.Calibrated() {
		t.Fatal("calibration survived Reset; recycled state serves a different driver")
	}
	if got := m.WindowSec(); got != windowSec {
		t.Fatalf("window span %g after Reset, want %g", got, windowSec)
	}
	if m.winStart != 0 || m.winEnd != windowSec {
		t.Fatalf("window boundaries [%g,%g) after Reset, want [0,%g)", m.winStart, m.winEnd, windowSec)
	}

	// Warm once (vitals/detector internal growth), then Reset must be
	// allocation-free: the pool calls it on every session attach.
	for i := 0; i < 200; i++ {
		if _, _, _, err := m.Feed(frame); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(50, m.Reset); allocs > 0 {
		t.Fatalf("Monitor.Reset allocates %.0f times per call, want 0", allocs)
	}
}
