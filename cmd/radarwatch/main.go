// Command radarwatch connects to a radard daemon, runs the real-time
// detection pipeline on the live frame stream, and prints blinks and
// rolling drowsiness assessments as they happen — the in-car monitor
// half of the deployment.
//
// Usage:
//
//	radarwatch -addr localhost:7341 [-window 60]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"blinkradar"
	"blinkradar/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("radarwatch: ")
	var (
		addr   = flag.String("addr", "localhost:7341", "radard address")
		window = flag.Float64("window", 60, "drowsiness window in seconds")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client, err := transport.Dial(ctx, *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	hello := client.Hello()
	fmt.Printf("connected: %d bins at %.1f fps, %.1f mm bin spacing\n",
		hello.NumBins, hello.FrameRate, hello.BinSpacing*1000)

	monitor, err := blinkradar.NewMonitor(blinkradar.DefaultConfig(), int(hello.NumBins), hello.FrameRate, *window)
	if err != nil {
		log.Fatal(err)
	}

	err = client.Run(ctx, func(f transport.Frame) error {
		ev, ok, assessment, err := monitor.Feed(f.Bins)
		if err != nil {
			return err
		}
		if ok {
			fmt.Printf("[%8.2fs] blink  duration %3.0f ms  amplitude %.3f (bin %d)\n",
				ev.Time, ev.Duration*1000, ev.Amplitude, ev.Bin)
		}
		if assessment != nil {
			state := "uncalibrated"
			if assessment.Calibrated {
				state = "awake"
				if assessment.Drowsy {
					state = "DROWSY"
				}
			}
			line := fmt.Sprintf("[%8.2fs] window %.1f blinks/min (mean %3.0f ms) -> %s",
				assessment.WindowEnd, assessment.Features.BlinkRate,
				assessment.Features.MeanBlinkDuration*1000, state)
			if v := assessment.Vitals; v != nil {
				line += fmt.Sprintf("  [resp %.1f bpm", v.RespirationBPM())
				if v.HeartHz > 0 {
					line += fmt.Sprintf(", heart %.0f bpm", v.HeartBPM())
				}
				line += "]"
			}
			fmt.Println(line)
		}
		return nil
	})
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, io.EOF):
		fmt.Println("stream ended")
	default:
		log.Fatal(err)
	}
}
