// Command radarwatch connects to a radard daemon, runs the real-time
// detection pipeline on the live frame stream, and prints blinks and
// rolling drowsiness assessments as they happen — the in-car monitor
// half of the deployment.
//
// The link is resilient: if radard restarts (ignition cycle, daemon
// upgrade), radarwatch reconnects with exponential backoff, records
// the outage as a sequence gap, and rebuilds its pipeline if the
// stream comes back with a different geometry. An optional admin port
// exposes the monitor's own /metrics, /healthz and pprof.
//
// Usage:
//
//	radarwatch -addr localhost:7341 [-window 60] [-admin :7343]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blinkradar"
	"blinkradar/internal/obs"
	"blinkradar/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("radarwatch: ")
	var (
		addr        = flag.String("addr", "localhost:7341", "radard address")
		window      = flag.Float64("window", 60, "drowsiness window in seconds")
		adminAddr   = flag.String("admin", "", "admin HTTP address for /metrics, /healthz and pprof (empty disables)")
		retries     = flag.Int("max-retries", 0, "give up after this many consecutive failed dials (0 retries forever)")
		readTimeout = flag.Duration("read-timeout", 0, "per-frame read deadline; a daemon stalled longer triggers a reconnect (0 disables)")
		resync      = flag.Bool("resync", false, "skip corrupt frames in-stream instead of reconnecting (pins the hello's bin count)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	if *adminAddr != "" {
		go func() {
			if err := obs.NewAdmin(reg, nil).ListenAndServe(ctx, *adminAddr); err != nil {
				log.Printf("admin server: %v", err)
			}
		}()
	}

	// The monitor is (re)built on connect, sized by the announced
	// stream geometry. All callbacks run on the Run goroutine, so no
	// locking is needed around it.
	var monitor *blinkradar.Monitor
	buildMonitor := func(h transport.StreamHello) error {
		m, err := blinkradar.NewMonitor(blinkradar.DefaultConfig(), int(h.NumBins), h.FrameRate, *window)
		if err != nil {
			return err
		}
		m.SetRegistry(reg)
		monitor = m
		return nil
	}

	client := transport.NewReconnectingClient(*addr, transport.ReconnectConfig{
		DialTimeout:            5 * time.Second,
		ReadTimeout:            *readTimeout,
		Resync:                 *resync,
		MaxConsecutiveFailures: *retries,
		Registry:               reg,
		Logger:                 log.New(os.Stderr, "radarwatch: ", 0),
		OnSeqGap: func(missed uint64) {
			// Tell the pipeline about the hole so slow-time state is
			// not concatenated across it; long gaps re-run cold start.
			if monitor != nil {
				monitor.NoteGap(missed)
			}
		},
		OnConnect: func(h transport.StreamHello, reconnected bool) error {
			verb := "connected"
			if reconnected {
				verb = "reconnected"
			}
			fmt.Printf("%s: %d bins at %.1f fps, %.1f mm bin spacing\n",
				verb, h.NumBins, h.FrameRate, h.BinSpacing*1000)
			if monitor == nil {
				return buildMonitor(h)
			}
			return nil
		},
		OnHelloChange: func(prev, next transport.StreamHello) error {
			fmt.Printf("stream geometry changed (%d -> %d bins); resetting pipeline\n",
				prev.NumBins, next.NumBins)
			return buildMonitor(next)
		},
	})

	err := client.Run(ctx, func(f transport.Frame) error {
		if got := monitor.Detector().NumBins(); got != len(f.Bins) {
			// Mid-stream geometry change without a reconnect (the
			// radio was reconfigured under the daemon): rebuild, as a
			// hello change would.
			fmt.Printf("frame width changed (%d -> %d bins); resetting pipeline\n", got, len(f.Bins))
			h, _ := client.Hello()
			h.NumBins = uint32(len(f.Bins))
			if err := buildMonitor(h); err != nil {
				return err
			}
		}
		ev, ok, assessment, err := monitor.Feed(f.Bins)
		if err != nil {
			return err
		}
		if ok {
			fmt.Printf("[%8.2fs] blink  duration %3.0f ms  amplitude %.3f (bin %d)\n",
				ev.Time, ev.Duration*1000, ev.Amplitude, ev.Bin)
		}
		if assessment != nil {
			state := "uncalibrated"
			if assessment.Calibrated {
				state = "awake"
				if assessment.Drowsy {
					state = "DROWSY"
				}
			}
			line := fmt.Sprintf("[%8.2fs] window %.1f blinks/min (mean %3.0f ms) -> %s",
				assessment.WindowEnd, assessment.Features.BlinkRate,
				assessment.Features.MeanBlinkDuration*1000, state)
			if v := assessment.Vitals; v != nil {
				line += fmt.Sprintf("  [resp %.1f bpm", v.RespirationBPM())
				if v.HeartHz > 0 {
					line += fmt.Sprintf(", heart %.0f bpm", v.HeartBPM())
				}
				line += "]"
			}
			fmt.Println(line)
		}
		return nil
	})

	stats := client.Stats()
	fmt.Printf("session: %d frames, %d reconnects, %d frames lost in %d gaps, %d corrupt frames resynced\n",
		stats.Frames, stats.Reconnects, stats.SeqGapFrames, stats.SeqGaps, stats.Resyncs)
	if monitor != nil {
		in := monitor.InputStats()
		fmt.Printf("pipeline: health %s, %d frames rejected, %d bins repaired, %d gap resets\n",
			monitor.Health(), in.Rejected, in.RepairedBins, in.GapResets)
	}
	switch {
	case err == nil, errors.Is(err, context.Canceled):
		fmt.Println("stream ended")
	default:
		log.Fatal(err)
	}
}
