// Command goldengen regenerates testdata/golden_events.json, the
// end-to-end blink-event fixtures enforced by golden_test.go. Run it
// from the repo root and redirect stdout over the fixture file ONLY
// when the detector's observable behaviour is meant to change; the
// fixtures exist to prove refactors keep events bit-stable.
//
//	go run ./cmd/goldengen > testdata/golden_events.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"blinkradar"
	"blinkradar/internal/core"
)

type fixture struct {
	Name     string            `json:"name"`
	Seed     int64             `json:"seed"`
	Duration float64           `json:"duration_sec"`
	Subject  int               `json:"subject"`
	Drowsy   bool              `json:"drowsy"`
	EyeBin   int               `json:"eye_bin"`
	Events   []core.BlinkEvent `json:"events"`
}

func main() {
	cfg := core.DefaultConfig()
	var out []fixture
	for _, fx := range []fixture{
		{Name: "fig7-awake", Seed: 7, Duration: 60, Subject: 1},
		{Name: "fig10-low-blink", Seed: 10, Duration: 45, Subject: 3},
		{Name: "drowsy-long", Seed: 21, Duration: 90, Subject: 2, Drowsy: true},
	} {
		spec := blinkradar.DefaultSpec()
		spec.Seed = fx.Seed
		spec.Duration = fx.Duration
		spec.Subject = blinkradar.NewSubject(fx.Subject)
		if fx.Drowsy {
			spec.State = blinkradar.Drowsy
		}
		if fx.Name == "fig10-low-blink" {
			spec.Subject.AwakeStats.RatePerMin = 0.2
			spec.Subject.AwakeStats.LongGapProb = 0
		}
		capture, err := blinkradar.Generate(spec)
		if err != nil {
			panic(err)
		}
		events, _, err := core.Detect(cfg, capture.Frames)
		if err != nil {
			panic(err)
		}
		fx.EyeBin = capture.EyeBin
		fx.Events = events
		out = append(out, fx)
		fmt.Fprintf(os.Stderr, "%s: %d events\n", fx.Name, len(events))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		panic(err)
	}
}
