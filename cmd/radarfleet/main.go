// Command radarfleet is the chaos soak harness: it replays a capture
// corpus across hundreds (or thousands) of concurrent ingest sessions,
// each stream run through its own seeded fault injector and flapped
// (disconnected and reconnected with the production backoff schedule)
// partway through, and emits a machine-readable soak verdict.
//
// The target is embedded: radarfleet starts the same ingest listener
// cmd/radard's -ingest mode uses (internal/ingest on a
// session.Manager), bound to a loopback port, so the soak exercises
// exactly the code path production runs while keeping exact visibility
// into per-session accounting. The verdict checks, per connection:
//
//   - exact loss accounting: every frame the injector emitted was
//     accepted by the daemon (Submitted == emitted), fed through the
//     detection pipeline (Processed == Submitted), and none were lost
//     to backpressure (Dropped == 0) or rate limiting (Limited == 0);
//   - gap agreement: the sequence gaps the daemon reported upstream
//     (GapFrames) equal a client-side replay of the ingest gap rule
//     over the exact frame order sent;
//   - recovery: after the last flap, the session ends back at
//     HealthTracking — every session gets a clean tail of at least
//     ColdStartFrames+slack fault-free frames to converge in;
//
// plus fleet-level totals (injector == client == detector frame
// accounting) and an aggregate replay speed floor (sum of capture
// seconds over wall seconds, default 100x realtime). Any violation
// makes the verdict fail and the process exit nonzero.
//
// Usage:
//
//	radarfleet -corpus a.brc,b.brc -sessions 200 -flaps 2 \
//	    -chaos 'drop=0.02;drop=0.05,burst=3;nan=0.005' [-out verdict.json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"blinkradar"
	"blinkradar/internal/chaos"
	"blinkradar/internal/ingest"
	"blinkradar/internal/session"
	"blinkradar/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("radarfleet: ")
	var (
		corpus     = flag.String("corpus", "", "comma-separated capture files to replay (required)")
		sessions   = flag.Int("sessions", 200, "concurrent replay sessions")
		flaps      = flag.Int("flaps", 1, "forced disconnect/reconnect cycles per session")
		chaosSpecs = flag.String("chaos", "", "semicolon-separated fault specs assigned round-robin, e.g. 'drop=0.02;nan=0.01,dup=0.01' (see internal/chaos.ParseSpec); empty replays clean")
		seed       = flag.Int64("seed", 1, "base rng seed; session i uses seed+i")
		deadline   = flag.Duration("deadline", 2*time.Minute, "soak time budget; exceeding it is a verdict violation")
		minSpeedup = flag.Float64("min-speedup", 100, "aggregate replay speed floor: sum of capture seconds over wall seconds")
		slack      = flag.Int("slack", 10, "clean frames beyond ColdStartFrames each session gets after its last flap")
		out        = flag.String("out", "", "also write the verdict JSON to this file")

		shards = flag.Int("shards", 0, "manager worker shards (0 = GOMAXPROCS)")
		queue  = flag.Int("queue", 256, "per-session frame-queue depth")
		window = flag.Float64("window", 60, "assessment window in seconds")
	)
	flag.Parse()
	if *corpus == "" {
		log.Fatal("-corpus is required (generate captures with radarsim)")
	}

	v, err := runSoak(soakConfig{
		CorpusPaths: strings.Split(*corpus, ","),
		Sessions:    *sessions,
		Flaps:       *flaps,
		ChaosSpecs:  *chaosSpecs,
		Seed:        *seed,
		Deadline:    *deadline,
		MinSpeedup:  *minSpeedup,
		Slack:       *slack,
		Shards:      *shards,
		QueueFrames: *queue,
		WindowSec:   *window,
		Logger:      log.Default(),
	})
	if err != nil {
		log.Fatal(err)
	}
	data, merr := json.MarshalIndent(v, "", "  ")
	if merr != nil {
		log.Fatal(merr)
	}
	fmt.Println(string(data))
	if *out != "" {
		if werr := os.WriteFile(*out, append(data, '\n'), 0o644); werr != nil {
			log.Fatal(werr)
		}
	}
	if !v.Pass {
		os.Exit(1)
	}
}

// soakConfig parameterises one soak run; runSoak is the whole harness
// behind the flag surface so tests drive it in-process.
type soakConfig struct {
	CorpusPaths []string
	Sessions    int
	Flaps       int
	ChaosSpecs  string // semicolon-separated; "" = clean replay
	Seed        int64
	Deadline    time.Duration
	MinSpeedup  float64
	Slack       int
	Shards      int
	QueueFrames int
	WindowSec   float64
	Logger      *log.Logger
}

// Verdict is the machine-readable soak outcome. Every violation is a
// human-readable sentence naming the session and check that failed;
// Pass is true iff there are none.
type Verdict struct {
	Pass        bool `json:"pass"`
	Sessions    int  `json:"sessions"`
	Connections int  `json:"connections"`

	// Frame accounting, summed over all sessions. Emitted counts what
	// the clients sent after fault injection; Accepted/Processed/
	// Dropped/Limited are the manager's fleet totals. A green soak has
	// Emitted == Accepted == Processed and zero Dropped/Limited.
	FramesEmitted   uint64 `json:"frames_emitted"`
	FramesAccepted  uint64 `json:"frames_accepted"`
	FramesProcessed uint64 `json:"frames_processed"`
	FramesDropped   uint64 `json:"frames_dropped"`
	FramesLimited   uint64 `json:"frames_limited"`

	// Gap agreement: what the clients' replay of the ingest gap rule
	// predicts vs what the sessions reported via NoteGap.
	GapFramesExpected uint64 `json:"gap_frames_expected"`
	GapFramesSeen     uint64 `json:"gap_frames_seen"`

	// Recovered counts sessions whose final connection ended at
	// HealthTracking; a green soak recovers every session.
	Recovered int `json:"sessions_recovered"`

	// Throughput: capture time replayed per wall second.
	CaptureSeconds float64 `json:"capture_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Speedup        float64 `json:"speedup"`
	MinSpeedup     float64 `json:"min_speedup"`
	StreamsPerCore float64 `json:"streams_per_core"`

	// Violations lists up to maxViolations failures verbatim;
	// ViolationsTotal is the uncapped count.
	Violations      []string `json:"violations"`
	ViolationsTotal int      `json:"violations_total"`
}

// maxViolations caps the verdict's violation list so a systemic
// failure across thousands of sessions stays readable.
const maxViolations = 50

// corpusEntry is one pre-loaded capture: frames are decoded once and
// shared read-only by every session replaying this file.
type corpusEntry struct {
	path    string
	hello   transport.StreamHello
	frames  []transport.Frame
	seconds float64
}

// sessionResult is one pump goroutine's accounting.
type sessionResult struct {
	emitted        uint64
	expectedGaps   uint64
	seenGaps       uint64
	captureSeconds float64
	connections    int
	recovered      bool
	violations     []string
}

func runSoak(cfg soakConfig) (Verdict, error) {
	if cfg.Sessions <= 0 {
		return Verdict{}, fmt.Errorf("sessions must be positive, got %d", cfg.Sessions)
	}
	if cfg.Flaps < 0 {
		return Verdict{}, fmt.Errorf("flaps must be non-negative, got %d", cfg.Flaps)
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 2 * time.Minute
	}
	if cfg.QueueFrames < 130 {
		// The throttle holds each connection's outstanding frames at
		// half the queue and can overshoot by at most 65 before the next
		// check; any shallower queue could fill and drop.
		cfg.QueueFrames = 130
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(os.Stderr, "radarfleet: ", 0)
	}

	corpus, err := loadCorpus(cfg.CorpusPaths, cfg.Logger)
	if err != nil {
		return Verdict{}, err
	}
	specs, err := parseChaosSpecs(cfg.ChaosSpecs)
	if err != nil {
		return Verdict{}, err
	}

	core := blinkradar.DefaultConfig()
	tail := core.ColdStartFrames + cfg.Slack
	for _, c := range corpus {
		if need := tail + cfg.Flaps + 1; len(c.frames) < need {
			return Verdict{}, fmt.Errorf("capture %s has %d frames; %d flaps with a %d-frame recovery tail needs at least %d",
				c.path, len(c.frames), cfg.Flaps, tail, need)
		}
	}

	hello := corpus[0].hello
	mgr, err := session.NewManager(session.Config{
		NumBins:     int(hello.NumBins),
		FrameRate:   hello.FrameRate,
		WindowSec:   cfg.WindowSec,
		Core:        core,
		Shards:      cfg.Shards,
		QueueFrames: cfg.QueueFrames,
	})
	if err != nil {
		return Verdict{}, err
	}
	defer mgr.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Verdict{}, err
	}
	addr := ln.Addr().String()

	// The collector receives each session's final accounting as its
	// connection detaches; pump goroutines poll it by session ID (the
	// client's local address, which is the server's view of the remote).
	col := &collector{stats: make(map[string]session.SessionStats)}

	serveCtx, stopServe := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ingest.Serve(serveCtx, ln, mgr, ingest.Options{
			NumBins:  int(hello.NumBins),
			OnDetach: col.put,
		})
	}()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
	defer cancel()

	cfg.Logger.Printf("soaking %d sessions x %d flaps against %s (%d captures, %d specs, seed %d, deadline %s)",
		cfg.Sessions, cfg.Flaps, addr, len(corpus), len(specs), cfg.Seed, cfg.Deadline)

	start := time.Now()
	results := make([]sessionResult, cfg.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		p := &pump{
			idx:   i,
			entry: corpus[i%len(corpus)],
			mgr:   mgr,
			col:   col,
			addr:  addr,
			flaps: cfg.Flaps,
			tail:  tail,
			queue: cfg.QueueFrames,
			rng:   rand.New(rand.NewSource(cfg.Seed + int64(i))),
			boff:  transport.Backoff{}.WithDefaults(),
		}
		if len(specs) > 0 {
			sc := specs[i%len(specs)]
			sc.Seed = cfg.Seed + int64(i)
			if sc.Enabled() {
				inj, ierr := chaos.New(sc)
				if ierr != nil {
					stopServe()
					<-serveDone
					return Verdict{}, ierr
				}
				p.inj = inj
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = p.run(ctx)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	stopServe()
	if serr := <-serveDone; serr != nil && !errors.Is(serr, context.Canceled) {
		cfg.Logger.Printf("ingest listener: %v", serr)
	}

	return buildVerdict(cfg, mgr, results, wall), nil
}

// buildVerdict folds the per-session results and the manager's fleet
// totals into the soak outcome.
func buildVerdict(cfg soakConfig, mgr *session.Manager, results []sessionResult, wall time.Duration) Verdict {
	v := Verdict{
		Sessions:       len(results),
		WallSeconds:    wall.Seconds(),
		MinSpeedup:     cfg.MinSpeedup,
		StreamsPerCore: float64(len(results)) / float64(runtime.NumCPU()),
	}
	var violations []string
	for _, r := range results {
		v.Connections += r.connections
		v.FramesEmitted += r.emitted
		v.GapFramesExpected += r.expectedGaps
		v.GapFramesSeen += r.seenGaps
		v.CaptureSeconds += r.captureSeconds
		if r.recovered {
			v.Recovered++
		}
		violations = append(violations, r.violations...)
	}

	st := mgr.Stats()
	v.FramesAccepted = st.Frames
	v.FramesProcessed = st.Processed
	v.FramesDropped = st.Dropped
	v.FramesLimited = st.Limited
	if st.Sessions != 0 {
		violations = append(violations, fmt.Sprintf("fleet: %d sessions still attached after soak", st.Sessions))
	}
	if st.Frames != v.FramesEmitted {
		violations = append(violations, fmt.Sprintf("fleet: clients emitted %d frames but the manager accounted %d", v.FramesEmitted, st.Frames))
	}
	if st.Processed+st.Dropped != st.Frames {
		violations = append(violations, fmt.Sprintf("fleet: processed %d + dropped %d != accepted %d", st.Processed, st.Dropped, st.Frames))
	}

	if v.WallSeconds > 0 {
		v.Speedup = v.CaptureSeconds / v.WallSeconds
	}
	if cfg.MinSpeedup > 0 && v.Speedup < cfg.MinSpeedup {
		violations = append(violations, fmt.Sprintf("fleet: replayed %.0f capture seconds in %.1f wall seconds (%.0fx), below the %.0fx floor",
			v.CaptureSeconds, v.WallSeconds, v.Speedup, cfg.MinSpeedup))
	}

	v.ViolationsTotal = len(violations)
	if len(violations) > maxViolations {
		violations = append(violations[:maxViolations],
			fmt.Sprintf("... %d more violations elided", v.ViolationsTotal-maxViolations))
	}
	v.Violations = violations
	v.Pass = v.ViolationsTotal == 0
	return v
}

// parseChaosSpecs splits the semicolon-separated spec list. Bin-count
// changes are refused: every connection's hello pins the geometry.
func parseChaosSpecs(s string) ([]chaos.Config, error) {
	if s == "" {
		return nil, nil
	}
	var specs []chaos.Config
	for _, one := range strings.Split(s, ";") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		c, err := chaos.ParseSpec(one)
		if err != nil {
			return nil, err
		}
		if c.BinChangeAfter > 0 {
			return nil, errors.New("binchange is not soakable: the stream hello pins the bin count for the connection's lifetime")
		}
		specs = append(specs, c)
	}
	return specs, nil
}

// loadCorpus decodes every capture up front so replay touches no disk.
// Torn captures are served from their intact prefix, like radard; all
// entries must share one geometry because the soak target is a single
// manager.
func loadCorpus(paths []string, logger *log.Logger) ([]corpusEntry, error) {
	if len(paths) == 0 {
		return nil, errors.New("empty corpus")
	}
	var corpus []corpusEntry
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		e, err := loadCapture(path, logger)
		if err != nil {
			return nil, err
		}
		if len(corpus) > 0 && (e.hello.NumBins != corpus[0].hello.NumBins || e.hello.FrameRate != corpus[0].hello.FrameRate) {
			return nil, fmt.Errorf("capture %s (%d bins at %g fps) does not match %s (%d bins at %g fps): the soak manager pins one geometry",
				path, e.hello.NumBins, e.hello.FrameRate,
				corpus[0].path, corpus[0].hello.NumBins, corpus[0].hello.FrameRate)
		}
		corpus = append(corpus, e)
	}
	if len(corpus) == 0 {
		return nil, errors.New("empty corpus")
	}
	return corpus, nil
}

func loadCapture(path string, logger *log.Logger) (corpusEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return corpusEntry{}, err
	}
	defer f.Close()
	cr, err := transport.NewCaptureReader(f)
	if err != nil {
		return corpusEntry{}, fmt.Errorf("read capture %s: %w", path, err)
	}
	if terr := cr.Truncated(); terr != nil {
		logger.Printf("capture %s does not end cleanly (%v); replaying its %d intact frames", path, terr, cr.NumFrames())
	}
	e := corpusEntry{
		path:   path,
		hello:  cr.Header().Hello,
		frames: make([]transport.Frame, 0, cr.NumFrames()),
	}
	if err := cr.Seek(0); err != nil {
		return corpusEntry{}, err
	}
	for i := 0; i < cr.NumFrames(); i++ {
		fr, err := cr.Next()
		if err != nil {
			return corpusEntry{}, fmt.Errorf("capture %s frame %d: %w", path, i, err)
		}
		// Next reuses its decode scratch; replaying needs owned bins.
		fr.Bins = append([]complex128(nil), fr.Bins...)
		e.frames = append(e.frames, fr)
	}
	e.seconds = float64(len(e.frames)) / e.hello.FrameRate
	return e, nil
}

// pump replays one session: its capture split into flaps+1 connection
// segments, frames run through the session's fault injector, with a
// backoff-jittered outage between connections and exact client-side
// accounting checked against the daemon's detach stats after every
// segment.
type pump struct {
	idx   int
	entry corpusEntry
	mgr   *session.Manager
	col   *collector
	addr  string
	flaps int
	tail  int
	queue int
	rng   *rand.Rand
	boff  transport.Backoff
	inj   *chaos.Injector
}

func (p *pump) run(ctx context.Context) sessionResult {
	res := sessionResult{captureSeconds: p.entry.seconds}
	frames := p.entry.frames
	// Cut points: flaps evenly spaced across the pre-tail region, so
	// the final segment always keeps at least the clean recovery tail.
	usable := len(frames) - p.tail
	bounds := make([]int, 0, p.flaps+2)
	bounds = append(bounds, 0)
	for j := 1; j <= p.flaps; j++ {
		cut := j * usable / (p.flaps + 1)
		if cut <= bounds[len(bounds)-1] {
			res.violations = append(res.violations,
				fmt.Sprintf("session %d: capture %s too short to flap %d times", p.idx, p.entry.path, p.flaps))
			return res
		}
		bounds = append(bounds, cut)
	}
	bounds = append(bounds, len(frames))
	// Faults stop at the tail boundary so the last tail frames arrive
	// clean and in order, whatever the spec says.
	stopIdx := len(frames) - p.tail

	for seg := 0; seg+1 < len(bounds); seg++ {
		if seg > 0 {
			// The flap outage: the production reconnect schedule's
			// initial delay, jittered per connection.
			sleepCtx(ctx, p.boff.Jittered(p.boff.Initial, p.rng))
		}
		final := seg+2 == len(bounds)
		if !p.segment(ctx, &res, bounds[seg], bounds[seg+1], stopIdx, final) {
			return res
		}
	}
	if p.inj != nil {
		// Injector self-check: everything it emitted (plus the clean
		// tail sent around it) must equal what the client counted.
		st := p.inj.Stats()
		if want := st.Emitted + uint64(p.tail); want != res.emitted {
			res.violations = append(res.violations,
				fmt.Sprintf("session %d: injector emitted %d + %d clean tail frames but the client sent %d",
					p.idx, st.Emitted, p.tail, res.emitted))
		}
	}
	return res
}

// segment runs one connection: dial, hello, inject-and-send, drain,
// close, then reconcile the daemon's detach accounting. It reports
// whether the session should continue to its next segment.
func (p *pump) segment(ctx context.Context, res *sessionResult, lo, hi, stopIdx int, final bool) bool {
	fail := func(format string, args ...any) bool {
		res.violations = append(res.violations,
			fmt.Sprintf("session %d conn %d: %s", p.idx, res.connections, fmt.Sprintf(format, args...)))
		return false
	}

	conn, err := p.dial(ctx)
	if err != nil {
		return fail("dial: %v", err)
	}
	defer conn.Close()
	res.connections++
	id := conn.LocalAddr().String()
	if err := transport.EncodeHello(conn, p.entry.hello); err != nil {
		return fail("hello: %v", err)
	}
	enc := transport.NewEncoder(conn)

	// Client-side replay of the ingest gap rule, reset per connection
	// exactly like the server's per-session decoder state.
	var lastSeq uint64
	haveSeq := false
	var emitted, expGaps, sinceThrottle uint64
	send := func(f transport.Frame) error {
		if haveSeq && f.Seq > lastSeq+1 {
			expGaps += f.Seq - lastSeq - 1
		}
		lastSeq, haveSeq = f.Seq, true
		emitted++
		sinceThrottle++
		return enc.Encode(f)
	}

	for k := lo; k < hi; k++ {
		f := p.entry.frames[k]
		switch {
		case p.inj == nil || k > stopIdx:
			if err := send(f); err != nil {
				return fail("frame %d: %v", k, err)
			}
		case k == stopIdx:
			// Tail boundary: release anything the injector still holds,
			// then bypass it so the recovery tail is untouched.
			for _, out := range p.inj.Flush() {
				if err := send(out); err != nil {
					return fail("flush: %v", err)
				}
			}
			if err := send(f); err != nil {
				return fail("frame %d: %v", k, err)
			}
		default:
			for _, out := range p.inj.Apply(f) {
				if err := send(out); err != nil {
					return fail("frame %d: %v", k, err)
				}
			}
		}
		if sinceThrottle >= 64 {
			sinceThrottle = 0
			if err := p.throttle(ctx, enc, id, emitted); err != nil {
				return fail("throttle: %v", err)
			}
		}
	}
	if err := enc.Flush(); err != nil {
		return fail("flush: %v", err)
	}
	res.emitted += emitted
	res.expectedGaps += expGaps

	// Drain before disconnecting: a flap must not race the queue, or
	// Detach folds still-queued frames into Dropped and the loss
	// accounting can no longer distinguish a bug from the race.
	if err := p.drain(ctx, id, emitted); err != nil {
		return fail("drain: %v", err)
	}
	conn.Close()
	st, ok := p.col.wait(ctx, id)
	if !ok {
		return fail("no detach stats for %s before deadline", id)
	}
	res.seenGaps += st.GapFrames

	if st.Submitted != emitted {
		fail("sent %d frames, daemon submitted %d", emitted, st.Submitted)
	}
	if st.Dropped != 0 {
		fail("%d frames dropped to backpressure", st.Dropped)
	}
	if st.Limited != 0 {
		fail("%d frames rate-limited", st.Limited)
	}
	if st.Processed+st.Dropped != st.Submitted {
		fail("processed %d + dropped %d != submitted %d", st.Processed, st.Dropped, st.Submitted)
	}
	if st.GapFrames != expGaps {
		fail("daemon saw %d gap frames, client replay expected %d", st.GapFrames, expGaps)
	}
	if final {
		if st.Health == blinkradar.HealthTracking {
			res.recovered = true
		} else {
			fail("ended %v after %d clean tail frames, want tracking", st.Health, p.tail)
		}
	}
	// Accounting violations are recorded but do not abort the session:
	// later segments may still reveal more.
	return ctx.Err() == nil
}

// dial connects with the production backoff schedule; repeated refusals
// surface as an error once the context expires.
func (p *pump) dial(ctx context.Context) (net.Conn, error) {
	d := net.Dialer{}
	delay := p.boff.Initial
	for {
		conn, err := d.DialContext(ctx, "tcp", p.addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		sleepCtx(ctx, p.boff.Jittered(delay, p.rng))
		delay = p.boff.Next(delay)
	}
}

// throttle flushes buffered frames and, when too much of this
// connection's output is still unprocessed, waits for the daemon to
// catch up. The bound counts queued frames plus frames still in the
// socket (emitted but not yet submitted): between throttle points at
// most 65 more frames can be sent, so holding the outstanding total at
// half the queue keeps the session's queue from ever filling — which
// would drop frames and make real loss indistinguishable from
// self-inflicted backpressure.
func (p *pump) throttle(ctx context.Context, enc *transport.Encoder, id string, emitted uint64) error {
	if err := enc.Flush(); err != nil {
		return err
	}
	high := uint64(p.queue / 2)
	for {
		st, err := p.mgr.SessionStats(id)
		switch {
		case errors.Is(err, session.ErrSessionNotFound):
			// The server has not read our hello and attached yet; the
			// frames are parked in the socket. Wait for admission.
		case err != nil:
			return err
		case st.Queued+(emitted-st.Submitted) <= high:
			return nil
		}
		if !sleepCtx(ctx, 200*time.Microsecond) {
			return ctx.Err()
		}
	}
}

// drain waits until the daemon has accepted and fully processed every
// frame this connection sent, so closing it cannot lose queued work.
func (p *pump) drain(ctx context.Context, id string, emitted uint64) error {
	for {
		st, err := p.mgr.SessionStats(id)
		switch {
		case errors.Is(err, session.ErrSessionNotFound):
			// Not attached yet (hello still in flight) — keep waiting.
		case err != nil:
			return err
		case st.Submitted >= emitted && st.Queued == 0:
			return nil
		}
		if !sleepCtx(ctx, 200*time.Microsecond) {
			return fmt.Errorf("deadline with %d frames expected, session state %+v (%v)", emitted, st, err)
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the
// full sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// collector gathers each session's final accounting from the ingest
// listener's OnDetach hook; pumps poll for their connection's entry.
type collector struct {
	mu    sync.Mutex
	stats map[string]session.SessionStats
}

func (c *collector) put(id string, st session.SessionStats) {
	c.mu.Lock()
	c.stats[id] = st
	c.mu.Unlock()
}

// wait polls for the detach stats of id until ctx expires. The entry is
// removed once claimed, so a recycled ephemeral port cannot read a
// predecessor's accounting.
func (c *collector) wait(ctx context.Context, id string) (session.SessionStats, bool) {
	for {
		c.mu.Lock()
		st, ok := c.stats[id]
		if ok {
			delete(c.stats, id)
		}
		c.mu.Unlock()
		if ok {
			return st, true
		}
		if !sleepCtx(ctx, time.Millisecond) {
			return session.SessionStats{}, false
		}
	}
}
