package main

import (
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blinkradar"
	"blinkradar/internal/session"
	"blinkradar/internal/transport"
)

// newIdleManager builds a small manager with nothing attached, for
// verdict-shape tests that need real fleet totals.
func newIdleManager(t *testing.T) *session.Manager {
	t.Helper()
	mgr, err := session.NewManager(session.Config{NumBins: 40, FrameRate: 25})
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// writeSoakCapture generates a deterministic synthetic capture on disk,
// the same way radarsim -format v1 does.
func writeSoakCapture(t *testing.T, path string, seed int64, duration float64) {
	t.Helper()
	spec := blinkradar.DefaultSpec()
	spec.Duration = duration
	spec.Seed = seed
	capture, err := blinkradar.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m := capture.Frames
	cw, err := transport.NewCaptureWriter(f, transport.StreamHello{
		FrameRate:  m.FrameRate,
		BinSpacing: m.BinSpacing,
		NumBins:    uint32(m.NumBins()),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, bins := range m.Data {
		err := cw.WriteFrame(transport.Frame{
			Seq:             uint64(k),
			TimestampMicros: transport.TimestampMicros(m.FrameTime(k)),
			Bins:            bins,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSoakSmallFleet runs the whole harness in-process: a two-capture
// corpus, chaos-flapped sessions, and a verdict that must come back
// green with exact accounting.
func TestSoakSmallFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is seconds-long; skipped in -short")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.brc")
	b := filepath.Join(dir, "b.brc")
	writeSoakCapture(t, a, 7, 24)
	writeSoakCapture(t, b, 8, 20)

	v, err := runSoak(soakConfig{
		CorpusPaths: []string{a, b},
		Sessions:    24,
		Flaps:       2,
		ChaosSpecs:  "drop=0.02;dup=0.02,reorder=0.02;drop=0.05,burst=3;nan=0.004",
		Seed:        42,
		Deadline:    90 * time.Second,
		MinSpeedup:  1, // CI machines vary; the speed floor is exercised in CI's real soak
		Logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, viol := range v.Violations {
		t.Errorf("violation: %s", viol)
	}
	if !v.Pass {
		t.Fatalf("soak verdict failed: %+v", v)
	}
	if want := 24 * 3; v.Connections != want {
		t.Errorf("Connections = %d, want %d", v.Connections, want)
	}
	if v.Recovered != 24 {
		t.Errorf("Recovered = %d, want 24", v.Recovered)
	}
	if v.FramesEmitted == 0 || v.FramesProcessed != v.FramesEmitted {
		t.Errorf("processed %d of %d emitted frames", v.FramesProcessed, v.FramesEmitted)
	}
	if v.FramesDropped != 0 || v.FramesLimited != 0 {
		t.Errorf("dropped %d, limited %d, want 0/0", v.FramesDropped, v.FramesLimited)
	}
	// The drop specs must have actually removed frames, and the daemon
	// must have agreed with the client replay about every hole.
	if v.GapFramesSeen == 0 {
		t.Error("chaos drops produced no sequence gaps; the injectors were not engaged")
	}
	if v.GapFramesSeen != v.GapFramesExpected {
		t.Errorf("GapFramesSeen = %d, GapFramesExpected = %d", v.GapFramesSeen, v.GapFramesExpected)
	}
	if v.Speedup <= 0 {
		t.Errorf("Speedup = %g, want positive", v.Speedup)
	}
}

// TestSoakCleanReplayHasNoGaps: without chaos every counter must agree
// and no session may report a single gap frame.
func TestSoakCleanReplayHasNoGaps(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is seconds-long; skipped in -short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "clean.brc")
	writeSoakCapture(t, path, 3, 16)

	v, err := runSoak(soakConfig{
		CorpusPaths: []string{path},
		Sessions:    8,
		Flaps:       1,
		Seed:        1,
		Deadline:    60 * time.Second,
		MinSpeedup:  1,
		Logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("clean soak failed: %v", v.Violations)
	}
	if v.GapFramesSeen != 0 || v.GapFramesExpected != 0 {
		t.Errorf("clean replay reported gaps: seen %d, expected %d", v.GapFramesSeen, v.GapFramesExpected)
	}
	if v.FramesAccepted != v.FramesEmitted {
		t.Errorf("accepted %d of %d emitted", v.FramesAccepted, v.FramesEmitted)
	}
}

// TestSoakRefusesShortCapture: a capture without room for the flaps
// plus the recovery tail is a configuration error, not a soak failure.
func TestSoakRefusesShortCapture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short.brc")
	writeSoakCapture(t, path, 1, 2) // 50 frames: less than the 60-frame tail

	_, err := runSoak(soakConfig{
		CorpusPaths: []string{path},
		Sessions:    1,
		Flaps:       1,
		Logger:      log.New(io.Discard, "", 0),
	})
	if err == nil || !strings.Contains(err.Error(), "recovery tail") {
		t.Fatalf("err = %v, want a recovery-tail length complaint", err)
	}
}

func TestParseChaosSpecs(t *testing.T) {
	specs, err := parseChaosSpecs("drop=0.1; dup=0.2 ;;nan=0.01,sat=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs, want 3", len(specs))
	}
	if specs[0].DropRate != 0.1 || specs[1].DupProb != 0.2 || specs[2].PoisonProb != 0.01 {
		t.Errorf("specs parsed wrong: %+v", specs)
	}
	if _, err := parseChaosSpecs("drop=0.1;binchange=100"); err == nil {
		t.Error("binchange spec accepted; the hello pins geometry, it must be refused")
	}
	if _, err := parseChaosSpecs("bogus=1"); err == nil {
		t.Error("bogus spec key accepted")
	}
}

// TestVerdictViolationCap keeps a systemic failure readable: the list
// is capped but the total is exact.
func TestVerdictViolationCap(t *testing.T) {
	results := make([]sessionResult, maxViolations+20)
	for i := range results {
		results[i].violations = []string{"session failed"}
		results[i].recovered = true
	}
	// No manager totals in play: a nil manager is not usable here, so
	// build the fleet-total checks from a real (empty) manager.
	mgr := newIdleManager(t)
	defer mgr.Close()
	v := buildVerdict(soakConfig{}, mgr, results, time.Second)
	if v.Pass {
		t.Fatal("verdict passed despite violations")
	}
	if v.ViolationsTotal != len(results) {
		t.Errorf("ViolationsTotal = %d, want %d", v.ViolationsTotal, len(results))
	}
	if len(v.Violations) != maxViolations+1 {
		t.Errorf("violation list has %d entries, want %d plus the elision line", len(v.Violations), maxViolations)
	}
	last := v.Violations[len(v.Violations)-1]
	if !strings.Contains(last, "more violations elided") {
		t.Errorf("last entry %q is not the elision marker", last)
	}
}
