package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"blinkradar/internal/obs"
	"blinkradar/internal/session"
	"blinkradar/internal/transport"
)

// ingestOptions collects the multi-session listener flags.
type ingestOptions struct {
	addr        string
	shards      int
	maxSessions int
	perShard    int
	queueFrames int
	rateLimit   float64
	numBins     int
	frameRate   float64
	windowSec   float64
}

// runIngest is radard's fleet mode: instead of broadcasting one
// simulated capture outward, it accepts inbound radar streams — one TCP
// connection per vehicle, speaking the same hello+frame codec in the
// reverse direction — and runs every stream through its own pooled
// detection pipeline on the session manager's per-core shards.
//
// The connection is the session: its remote address is the session ID,
// a decoded sequence gap becomes Manager.NoteGap, EOF detaches. The
// manager's typed rejections map to connection handling — admission
// refusals close the connection immediately; rate-limited frames are
// discarded and the stream carries on.
func runIngest(ctx context.Context, opts ingestOptions, reg *obs.Registry, logger *log.Logger) error {
	mgr, err := session.NewManager(session.Config{
		NumBins:             opts.numBins,
		FrameRate:           opts.frameRate,
		WindowSec:           opts.windowSec,
		Shards:              opts.shards,
		MaxSessions:         opts.maxSessions,
		MaxSessionsPerShard: opts.perShard,
		QueueFrames:         opts.queueFrames,
		RateLimit:           opts.rateLimit,
		Registry:            reg,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	logger.Printf("ingesting %d-bin streams at %.1f fps on %s (%d shards)",
		opts.numBins, opts.frameRate, ln.Addr(), opts.shards)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ctx.Done()
		ln.Close()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				st := mgr.Stats()
				logger.Printf("fleet: %d sessions, %d queued, %d frames (%d dropped, %d limited), %d widened, %d degraded",
					st.Sessions, st.Queued, st.Frames, st.Dropped, st.Limited, st.Widens, st.Degrades)
			}
		}
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := serveStream(ctx, conn, mgr, opts); err != nil &&
				!errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && ctx.Err() == nil {
				logger.Printf("stream %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// serveStream runs one inbound radar stream: hello, geometry check,
// attach, decode/submit loop, detach.
func serveStream(ctx context.Context, conn net.Conn, mgr *session.Manager, opts ingestOptions) error {
	defer conn.Close()
	// Tie the blocking reads to the daemon lifetime.
	unhook := context.AfterFunc(ctx, func() { conn.Close() })
	defer unhook()

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hello, err := transport.DecodeHello(conn)
	if err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	if int(hello.NumBins) != opts.numBins {
		return fmt.Errorf("%w: stream announces %d bins, daemon expects %d",
			session.ErrGeometry, hello.NumBins, opts.numBins)
	}
	conn.SetReadDeadline(time.Time{})

	id := conn.RemoteAddr().String()
	if err := mgr.Attach(id); err != nil {
		return fmt.Errorf("attach: %w", err)
	}
	defer mgr.Detach(id)

	dec := transport.NewDecoder(conn)
	dec.SetExpectedBins(hello.NumBins)
	var lastSeq uint64
	haveSeq := false
	for {
		f, err := dec.Decode()
		if err != nil {
			return err
		}
		if haveSeq && f.Seq > lastSeq+1 {
			mgr.NoteGap(id, f.Seq-lastSeq-1)
		}
		lastSeq, haveSeq = f.Seq, true
		switch err := mgr.Submit(id, f.Bins); {
		case err == nil:
		case errors.Is(err, session.ErrRateLimited):
			// Over budget: the frame is discarded, the stream lives on.
		default:
			return err
		}
	}
}
