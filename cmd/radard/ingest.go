package main

import (
	"context"
	"log"
	"net"
	"time"

	"blinkradar/internal/ingest"
	"blinkradar/internal/obs"
	"blinkradar/internal/session"
)

// ingestOptions collects the multi-session listener flags.
type ingestOptions struct {
	addr        string
	shards      int
	maxSessions int
	perShard    int
	queueFrames int
	rateLimit   float64
	numBins     int
	frameRate   float64
	windowSec   float64
}

// runIngest is radard's fleet mode: instead of broadcasting one
// simulated capture outward, it accepts inbound radar streams — one TCP
// connection per vehicle, speaking the same hello+frame codec in the
// reverse direction — and runs every stream through its own pooled
// detection pipeline on the session manager's per-core shards. The
// serving loop itself lives in internal/ingest, shared with the
// radarfleet soak harness.
func runIngest(ctx context.Context, opts ingestOptions, reg *obs.Registry, logger *log.Logger) error {
	mgr, err := session.NewManager(session.Config{
		NumBins:             opts.numBins,
		FrameRate:           opts.frameRate,
		WindowSec:           opts.windowSec,
		Shards:              opts.shards,
		MaxSessions:         opts.maxSessions,
		MaxSessionsPerShard: opts.perShard,
		QueueFrames:         opts.queueFrames,
		RateLimit:           opts.rateLimit,
		Registry:            reg,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	logger.Printf("ingesting %d-bin streams at %.1f fps on %s (%d shards)",
		opts.numBins, opts.frameRate, ln.Addr(), opts.shards)

	return ingest.Serve(ctx, ln, mgr, ingest.Options{
		NumBins:    opts.numBins,
		Logger:     logger,
		StatsEvery: 10 * time.Second,
	})
}
