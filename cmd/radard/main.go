// Command radard is the radar daemon: the stand-in for the Raspberry Pi
// attached to the impulse radio. It either simulates a live capture or
// replays a file written by radarsim, and broadcasts frames over TCP to
// any number of radarwatch clients, paced at the radio frame rate.
//
// Alongside the frame stream it serves an admin HTTP port with
// /metrics (JSON snapshot of the daemon's counters, gauges and
// latency histograms), /healthz, and the standard pprof handlers —
// the field-diagnostics surface of the in-vehicle deployment.
//
// Usage:
//
//	radard -addr :7341 [-admin :7342] [-file capture.brc] [-loop] [flags]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"blinkradar"
	"blinkradar/internal/chaos"
	"blinkradar/internal/obs"
	"blinkradar/internal/transport"
)

func main() {
	logger := log.New(os.Stderr, "radard: ", log.LstdFlags)
	var (
		addr       = flag.String("addr", ":7341", "TCP listen address")
		adminAddr  = flag.String("admin", ":7342", "admin HTTP address for /metrics, /healthz and pprof (empty disables)")
		file       = flag.String("file", "", "replay a radarsim capture instead of simulating")
		loop       = flag.Bool("loop", true, "repeat the capture indefinitely")
		pace       = flag.Bool("pace", true, "pace frames to the radio frame rate")
		speed      = flag.Float64("speed", 1, "playback speed multiplier when pacing (100 serves a capture at 100x realtime)")
		startFrame = flag.Int("start-frame", 0, "replay the capture from this frame index (seeks via the v1 footer index)")
		startSeq   = flag.Uint64("start-seq", 0, "initial frame sequence number (lets restarts preserve gap accounting downstream)")
		subjectID  = flag.Int("subject", 1, "participant profile id (simulated mode)")
		duration   = flag.Float64("duration", 120, "simulated capture length in seconds")
		drowsy     = flag.Bool("drowsy-state", false, "simulate a drowsy driver")
		seed       = flag.Int64("seed", 1, "scenario seed (simulated mode)")

		chaosSpec       = flag.String("chaos", "", "frame-level fault spec, e.g. seed=7,drop=0.05,nan=0.01 (see internal/chaos.ParseSpec)")
		faultSeed       = flag.Int64("fault-seed", 0, "rng seed for byte-level connection faults")
		faultCorrupt    = flag.Float64("fault-corrupt", 0, "per-byte corruption probability on client connections")
		faultResetBytes = flag.Int("fault-reset-bytes", 0, "abruptly reset a connection after this many bytes (0 = off)")
		faultResetConns = flag.Int("fault-reset-conns", 0, "only reset the first N connections (0 = all)")
		faultStallEvery = flag.Int("fault-stall-every", 0, "stall writes every N bytes (0 = off)")
		faultStallMs    = flag.Int("fault-stall-ms", 0, "stall duration in milliseconds")

		writeTimeout = flag.Duration("write-timeout", 0, "per-frame client write deadline (0 disables)")
		slowPolicy   = flag.String("slow-policy", "disconnect", "slow-client treatment: disconnect or drop-frames")

		ingestAddr     = flag.String("ingest", "", "fleet mode: accept inbound radar streams on this address instead of broadcasting (one session per connection)")
		ingestShards   = flag.Int("ingest-shards", 0, "worker shards in fleet mode (0 = GOMAXPROCS)")
		ingestMax      = flag.Int("ingest-max-sessions", 0, "admission cap on concurrent sessions (0 = unlimited)")
		ingestPerShard = flag.Int("ingest-max-per-shard", 0, "admission cap per shard (0 = unlimited)")
		ingestQueue    = flag.Int("ingest-queue", 0, "per-session frame-queue depth (0 = default 64)")
		ingestRate     = flag.Float64("ingest-rate", 0, "per-session frame budget in frames/s (0 disables rate limiting)")
		ingestBins     = flag.Int("ingest-bins", 40, "range bins every inbound stream must announce")
		ingestFPS      = flag.Float64("ingest-fps", 25, "slow-time frame rate of inbound streams")
		ingestWindow   = flag.Float64("ingest-window", 60, "assessment window in seconds")
	)
	flag.Parse()

	if *ingestAddr != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		reg := obs.NewRegistry()
		startAdmin(ctx, *adminAddr, reg, nil, logger)
		err := runIngest(ctx, ingestOptions{
			addr:        *ingestAddr,
			shards:      *ingestShards,
			maxSessions: *ingestMax,
			perShard:    *ingestPerShard,
			queueFrames: *ingestQueue,
			rateLimit:   *ingestRate,
			numBins:     *ingestBins,
			frameRate:   *ingestFPS,
			windowSec:   *ingestWindow,
		}, reg, logger)
		if err != nil && !errors.Is(err, context.Canceled) {
			logger.Fatal(err)
		}
		return
	}

	matrix, err := loadMatrix(*file, *startFrame, *subjectID, *duration, *drowsy, *seed, logger)
	if err != nil {
		logger.Fatal(err)
	}
	src := transport.NewMatrixSource(matrix, *pace, *loop)
	if *pace && *speed != 1 {
		if err := src.SetSpeed(*speed); err != nil {
			logger.Fatal(err)
		}
	}
	defer src.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("serving %d-bin frames at %.1f fps on %s", matrix.NumBins(), matrix.FrameRate, ln.Addr())

	connFaults := chaos.ConnFaults{
		Seed:            *faultSeed,
		SkipBytes:       64, // never corrupt the stream hello
		CorruptProb:     *faultCorrupt,
		ResetAfterBytes: *faultResetBytes,
		ResetConns:      *faultResetConns,
		StallEvery:      *faultStallEvery,
		StallFor:        time.Duration(*faultStallMs) * time.Millisecond,
	}
	if connFaults.Enabled() {
		logger.Printf("injecting connection faults: %+v", connFaults)
		ln = chaos.WrapListener(ln, connFaults)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	srv := transport.NewServer(src, logger)
	srv.SetRegistry(reg)
	if *startSeq > 0 {
		srv.SetStartSeq(*startSeq)
	}
	srv.SetWriteTimeout(*writeTimeout)
	switch *slowPolicy {
	case "disconnect":
		srv.SetSlowPolicy(transport.DisconnectSlowClients)
	case "drop-frames":
		srv.SetSlowPolicy(transport.DropFramesForSlowClients)
	default:
		logger.Fatalf("unknown -slow-policy %q (want disconnect or drop-frames)", *slowPolicy)
	}
	if *chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			logger.Fatal(err)
		}
		if ccfg.Enabled() {
			inj, err := chaos.New(ccfg)
			if err != nil {
				logger.Fatal(err)
			}
			logger.Printf("injecting frame faults: %s", ccfg.Spec())
			srv.SetFrameHook(inj.Apply)
		}
	}

	// streaming flips once the pump is live; /healthz reports 503 until
	// then and again after the stream dies.
	var streaming atomic.Bool
	startAdmin(ctx, *adminAddr, reg, func() error {
		if !streaming.Load() {
			return errors.New("frame stream not running")
		}
		return nil
	}, logger)

	streaming.Store(true)
	err = srv.Serve(ctx, ln)
	streaming.Store(false)
	if err != nil && !errors.Is(err, context.Canceled) {
		logger.Fatal(err)
	}
}

// startAdmin serves /metrics, /healthz and pprof when addr is set. A
// nil health func reports healthy unconditionally.
func startAdmin(ctx context.Context, addr string, reg *obs.Registry, health func() error, logger *log.Logger) {
	if addr == "" {
		return
	}
	if health == nil {
		health = func() error { return nil }
	}
	admin := obs.NewAdmin(reg, health)
	adminLn, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatal(err)
	}
	go func() {
		if err := admin.Serve(ctx, adminLn); err != nil {
			logger.Printf("admin server: %v", err)
		}
	}()
	logger.Printf("admin endpoints on %s (/metrics, /healthz, /debug/pprof/)", adminLn.Addr())
}

// loadMatrix replays a capture file or simulates a fresh one. Capture
// files go through CaptureReader, which handles both the indexed v1
// format and legacy v0 dumps, serves the intact prefix of a torn file
// (with a warning) instead of refusing it, and seeks -start-frame via
// the footer index.
func loadMatrix(path string, startFrame, subjectID int, duration float64, drowsy bool, seed int64, logger *log.Logger) (*blinkradar.FrameMatrix, error) {
	if path == "" {
		if startFrame != 0 {
			return nil, fmt.Errorf("-start-frame needs a capture file to seek in")
		}
		spec := blinkradar.DefaultSpec()
		spec.Subject = blinkradar.NewSubject(subjectID)
		spec.Environment = blinkradar.Driving
		spec.Duration = duration
		spec.Seed = seed
		if drowsy {
			spec.State = blinkradar.Drowsy
		}
		logger.Printf("simulating subject %d, %s, %.0f s", subjectID, spec.State, duration)
		capture, err := blinkradar.Generate(spec)
		if err != nil {
			return nil, err
		}
		return capture.Frames, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open capture: %w", err)
	}
	defer f.Close()
	cr, err := transport.NewCaptureReader(f)
	if err != nil {
		return nil, fmt.Errorf("read capture: %w", err)
	}
	if terr := cr.Truncated(); terr != nil {
		logger.Printf("capture %s does not end cleanly (%v); serving its %d intact frames", path, terr, cr.NumFrames())
	}
	return cr.ReadMatrixFrom(startFrame)
}
