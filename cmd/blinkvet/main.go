// Command blinkvet runs the repo's project-specific static analyzers —
// the machine-checked form of the invariants the hot-path refactor
// established. It is wired into CI next to build/vet/test; run it
// locally with:
//
//	go run ./cmd/blinkvet ./...
//
// Analyzers:
//
//	hotpathalloc   //blinkradar:hotpath functions must not allocate
//	intocontract   exported ...Into APIs must guard dst/src aliasing
//	goroutineleak  goroutines must be joined or cancellable
//	metrichygiene  obs metrics registered once, constant names
//
// A finding is waived with a trailing or preceding line comment:
//
//	//blinkvet:ignore <analyzer>[,<analyzer>...] [reason]
//
// Exit status: 0 clean, 1 findings or type errors, 2 usage/load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"blinkradar/internal/analysis"
	"blinkradar/internal/analysis/goroutineleak"
	"blinkradar/internal/analysis/hotpathalloc"
	"blinkradar/internal/analysis/intocontract"
	"blinkradar/internal/analysis/metrichygiene"
)

var analyzers = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	intocontract.Analyzer,
	goroutineleak.Analyzer,
	metrichygiene.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: blinkvet [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the blinkradar analyzer suite over the packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	os.Exit(run(flag.Args()))
}

func run(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "blinkvet:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blinkvet:", err)
		return 2
	}
	status := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "blinkvet: %s: type error: %v\n", pkg.ImportPath, terr)
			status = 1
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blinkvet:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			status = 1
		}
	}
	return status
}
