// Command blinkvet runs the repo's project-specific static analyzers —
// the machine-checked form of the invariants the hot-path refactor and
// the fleet layer established. It is wired into CI next to
// build/vet/test; run it locally with:
//
//	go run ./cmd/blinkvet ./...
//
// Analyzers:
//
//	hotpathalloc   //blinkradar:hotpath functions must not allocate or
//	               block, directly or through any statically resolvable
//	               callee (call-graph facts)
//	intocontract   exported ...Into APIs must guard dst/src aliasing
//	goroutineleak  goroutines must be joined or cancellable
//	metrichygiene  obs metrics registered once, constant names
//	shardconfine   //blinkradar:confined fields only reachable from
//	               their domain's //blinkradar:entry functions
//	atomicfield    fields touched via sync/atomic, or declared atomic.*,
//	               must never be plainly read or written
//	timeunit       //blinkradar:unit quantities (frames, seconds, bins)
//	               cross only through the frame-rate helpers
//	ignorehygiene  suppressions must name analyzers and carry a reason
//
// A finding is waived with a trailing or preceding line comment:
//
//	//blinkvet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// With -json, findings are emitted as a JSON array of
// {file,line,col,analyzer,message} objects on stdout (machine
// consumers, editor integrations); the default output is the
// file:line:col: analyzer: message lines the CI problem matcher parses.
//
// Exit status: 0 clean, 1 findings or type errors, 2 usage/load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"blinkradar/internal/analysis"
	"blinkradar/internal/analysis/atomicfield"
	"blinkradar/internal/analysis/goroutineleak"
	"blinkradar/internal/analysis/hotpathalloc"
	"blinkradar/internal/analysis/ignorehygiene"
	"blinkradar/internal/analysis/intocontract"
	"blinkradar/internal/analysis/metrichygiene"
	"blinkradar/internal/analysis/shardconfine"
	"blinkradar/internal/analysis/timeunit"
)

var analyzers = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	intocontract.Analyzer,
	goroutineleak.Analyzer,
	metrichygiene.Analyzer,
	shardconfine.Analyzer,
	atomicfield.Analyzer,
	timeunit.Analyzer,
	ignorehygiene.Analyzer,
}

func init() {
	for _, a := range analyzers {
		ignorehygiene.Known[a.Name] = true
	}
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: blinkvet [-list] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the blinkradar analyzer suite over the packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "blinkvet:", err)
		os.Exit(2)
	}
	os.Exit(vet(cwd, flag.Args(), *jsonOut, os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire shape of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// vet loads the patterns relative to dir, runs the suite with shared
// facts, writes findings to stdout (human or JSON) and errors to
// stderr, and returns the process exit status.
func vet(dir string, patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "blinkvet:", err)
		return 2
	}
	status := 0
	facts := analysis.ComputeFacts(pkgs)
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "blinkvet: %s: type error: %v\n", pkg.ImportPath, terr)
			status = 1
		}
		diags, err := analysis.RunAnalyzersFacts(pkg, facts, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "blinkvet:", err)
			return 2
		}
		all = append(all, diags...)
	}
	if len(all) > 0 {
		status = 1
	}
	if jsonOut {
		out := make([]jsonDiag, len(all))
		for i, d := range all {
			out[i] = jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "blinkvet:", err)
			return 2
		}
		return status
	}
	for _, d := range all {
		fmt.Fprintln(stdout, d)
	}
	return status
}
