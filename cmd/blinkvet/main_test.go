package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot locates the module root relative to this source file so the
// tree-wide vet run works regardless of the test working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestTreeClean is the regression gate the CI lint job relies on: the
// whole repository must stay clean under every analyzer in the suite.
// A failure here means a new finding (fix it or waive it with a
// reasoned //blinkvet:ignore), never a reason to drop the analyzer.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	if status := vet(repoRoot(t), []string{"./..."}, false, &stdout, &stderr); status != 0 {
		t.Fatalf("blinkvet ./... exited %d\nstdout:\n%s\nstderr:\n%s", status, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("unexpected findings:\n%s", stdout.String())
	}
}

// TestJSONOutput pins the -json wire shape on a package with a known
// clean result: a valid (possibly empty) JSON array, never null.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	var stdout, stderr bytes.Buffer
	status := vet(repoRoot(t), []string{"blinkradar/internal/dsp"}, true, &stdout, &stderr)
	if status != 0 {
		t.Fatalf("vet exited %d, stderr:\n%s", status, stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Fatalf("expected a clean package, got %d findings", len(diags))
	}
	if trimmed := bytes.TrimSpace(stdout.Bytes()); len(trimmed) == 0 || trimmed[0] != '[' {
		t.Fatalf("JSON output must be an array, got: %q", trimmed)
	}
}

// TestListedAnalyzers pins the suite composition: the eight analyzers
// the documentation promises, in the order they run.
func TestListedAnalyzers(t *testing.T) {
	want := []string{
		"hotpathalloc", "intocontract", "goroutineleak", "metrichygiene",
		"shardconfine", "atomicfield", "timeunit", "ignorehygiene",
	}
	if len(analyzers) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(analyzers), len(want))
	}
	for i, a := range analyzers {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
	}
}
