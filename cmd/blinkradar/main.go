// Command blinkradar runs the end-to-end pipeline on a simulated drive:
// it generates a synthetic capture (or an awake/drowsy pair for the
// drowsiness demo), runs blink detection, scores against ground truth
// and prints a report.
//
// Usage:
//
//	blinkradar [flags]
//
// Examples:
//
//	blinkradar -subject 3 -duration 90 -road bumpy -env driving
//	blinkradar -drowsy -subject 5
package main

import (
	"flag"
	"fmt"
	"log"

	"blinkradar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blinkradar: ")

	var (
		subjectID = flag.Int("subject", 1, "participant profile id (deterministic)")
		duration  = flag.Float64("duration", 60, "capture length in seconds")
		distance  = flag.Float64("distance", 0.4, "radar-to-eye distance in metres")
		azimuth   = flag.Float64("azimuth", 0, "azimuth off-axis angle in degrees")
		elevation = flag.Float64("elevation", 0, "elevation off-axis angle in degrees")
		road      = flag.String("road", "smooth", "road type: smooth|urban|manoeuvre|bumpy")
		env       = flag.String("env", "lab", "environment: lab|driving")
		state     = flag.String("state", "awake", "driver state: awake|drowsy")
		glasses   = flag.String("glasses", "none", "eyewear: none|myopia|sunglasses")
		seed      = flag.Int64("seed", 42, "scenario random seed")
		drowsy    = flag.Bool("drowsy", false, "run the calibrate-then-classify drowsiness demo")
		verbose   = flag.Bool("v", false, "print each detected blink")
	)
	flag.Parse()

	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(*subjectID)
	spec.Duration = *duration
	spec.EyeDistance = *distance
	spec.AzimuthDeg = *azimuth
	spec.ElevationDeg = *elevation
	spec.Seed = *seed

	switch *env {
	case "lab":
		spec.Environment = blinkradar.Lab
	case "driving":
		spec.Environment = blinkradar.Driving
	default:
		log.Fatalf("unknown environment %q", *env)
	}
	switch *road {
	case "smooth":
		spec.Road = blinkradar.SmoothHighway
	case "urban":
		spec.Road = blinkradar.UrbanRoad
	case "manoeuvre":
		spec.Road = blinkradar.ManoeuvreHeavy
	case "bumpy":
		spec.Road = blinkradar.BumpyRoad
	default:
		log.Fatalf("unknown road type %q", *road)
	}
	switch *state {
	case "awake":
		spec.State = blinkradar.Awake
	case "drowsy":
		spec.State = blinkradar.Drowsy
	default:
		log.Fatalf("unknown state %q", *state)
	}
	switch *glasses {
	case "none":
		spec.Subject.Glasses = blinkradar.NoGlasses
	case "myopia":
		spec.Subject.Glasses = blinkradar.MyopiaGlasses
	case "sunglasses":
		spec.Subject.Glasses = blinkradar.Sunglasses
	default:
		log.Fatalf("unknown glasses %q", *glasses)
	}

	if *drowsy {
		if err := runDrowsyDemo(spec); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runDetection(spec, *verbose); err != nil {
		log.Fatal(err)
	}
}

func runDetection(spec blinkradar.Spec, verbose bool) error {
	fmt.Printf("Simulating %s capture: subject %d, %s, %.0f s at %.2f m (seed %d)\n",
		spec.Environment, spec.Subject.ID, spec.State, spec.Duration, spec.EyeDistance, spec.Seed)
	capture, err := blinkradar.Generate(spec)
	if err != nil {
		return err
	}
	events, det, err := blinkradar.Detect(blinkradar.DefaultConfig(), capture.Frames)
	if err != nil {
		return err
	}
	truth := blinkradar.TrimWarmup(capture.Truth, blinkradar.DefaultWarmup)
	m := blinkradar.Match(truth, events, 0)
	fmt.Printf("Ground truth: %d blinks (%d scored after %.0f s warm-up)\n",
		len(capture.Truth), len(truth), blinkradar.DefaultWarmup)
	fmt.Printf("Detected:     %d blinks on range bin %d (true eye bin %d)\n",
		len(events), det.Bin(), capture.EyeBin)
	fmt.Printf("Accuracy:     %.1f%%   Precision: %.1f%%   F1: %.2f\n",
		m.Accuracy()*100, m.Precision()*100, m.F1())
	fmt.Printf("Pipeline:     %d restarts, %d bin switches\n", det.Restarts(), det.BinSwitches())
	if verbose {
		for _, e := range events {
			fmt.Printf("  blink at %6.2f s  duration %3.0f ms  amplitude %.3f\n",
				e.Time, e.Duration*1000, e.Amplitude)
		}
	}
	return nil
}

// runDrowsyDemo calibrates a per-driver model on one awake and one
// drowsy recording, then classifies held-out windows of both states.
func runDrowsyDemo(spec blinkradar.Spec) error {
	cfg := blinkradar.DefaultConfig()
	const windowSec = 60

	session := func(state blinkradar.State, seedOffset int64, dur float64) ([]blinkradar.WindowFeatures, error) {
		s := spec
		s.State = state
		s.Environment = blinkradar.Driving
		s.Duration = dur
		s.Seed = spec.Seed + seedOffset
		capture, err := blinkradar.Generate(s)
		if err != nil {
			return nil, err
		}
		events, _, err := blinkradar.Detect(cfg, capture.Frames)
		if err != nil {
			return nil, err
		}
		return blinkradar.ExtractWindows(events, dur, windowSec)
	}

	fmt.Printf("Calibrating driver %d (3 min awake + 3 min drowsy)...\n", spec.Subject.ID)
	trainAwake, err := session(blinkradar.Awake, 1, 180)
	if err != nil {
		return err
	}
	trainDrowsy, err := session(blinkradar.Drowsy, 2, 180)
	if err != nil {
		return err
	}
	var model blinkradar.DrowsinessModel
	if err := model.Train(trainAwake, trainDrowsy); err != nil {
		return err
	}
	ar, dr, ad, dd := model.Thresholds()
	fmt.Printf("Model: awake %.1f blinks/min (%.0f ms), drowsy %.1f blinks/min (%.0f ms)\n",
		ar, ad*1000, dr, dd*1000)

	correct, total := 0, 0
	for _, tc := range []struct {
		state blinkradar.State
		name  string
	}{{blinkradar.Awake, "awake"}, {blinkradar.Drowsy, "drowsy"}} {
		windows, err := session(tc.state, 10+int64(tc.state), 240)
		if err != nil {
			return err
		}
		for i, w := range windows {
			got, posterior, err := model.Classify(w)
			if err != nil {
				return err
			}
			want := tc.state == blinkradar.Drowsy
			mark := "OK "
			if got == want {
				correct++
			} else {
				mark = "ERR"
			}
			total++
			fmt.Printf("  [%s] %s window %d: %4.1f blinks/min -> drowsy=%v (p=%.2f)\n",
				mark, tc.name, i+1, w.BlinkRate, got, posterior)
		}
	}
	if total > 0 {
		fmt.Printf("Drowsiness detection accuracy: %.1f%% over %d windows\n",
			float64(correct)/float64(total)*100, total)
	}
	return nil
}
