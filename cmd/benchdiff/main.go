// Command benchdiff gates CI on benchmark allocation budgets. It parses
// the output of `go test -bench -benchmem` (as captured in bench.txt)
// and fails when a named benchmark's allocs/op exceeds its budget — or
// when a budgeted benchmark is missing from the output entirely, so a
// renamed or deleted benchmark cannot silently disarm the gate.
//
// Usage:
//
//	go run ./cmd/benchdiff -input bench.txt \
//	    -max Fig7NoiseReduction=0 -max Fig10BinSelection=37
//
// Benchmark names are matched without the "Benchmark" prefix and the
// -GOMAXPROCS suffix, so budgets stay stable across machines. When a
// benchmark appears several times (e.g. -count > 1), the worst run is
// compared against the budget.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// budgets is a repeatable -max Name=N flag.
type budgets map[string]uint64

func (b budgets) String() string {
	parts := make([]string, 0, len(b))
	for name, lim := range b {
		parts = append(parts, fmt.Sprintf("%s=%d", name, lim))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (b budgets) Set(s string) error {
	name, limStr, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want Name=N, got %q", s)
	}
	lim, err := strconv.ParseUint(limStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad allocation budget in %q: %v", s, err)
	}
	b[name] = lim
	return nil
}

func main() {
	lim := budgets{}
	input := flag.String("input", "bench.txt", "benchmark output to check (- for stdin)")
	flag.Var(lim, "max", "allocation budget Name=N (repeatable)")
	flag.Parse()
	if len(lim) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no -max budgets given")
		os.Exit(2)
	}
	r := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	results, err := parseBench(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	violations := check(results, lim)
	for name, allocs := range results {
		if limit, ok := lim[name]; ok {
			fmt.Printf("benchdiff: %s: %d allocs/op (budget %d)\n", name, allocs, limit)
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", v)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: all allocation budgets met")
}

// parseBench extracts allocs/op per benchmark from -benchmem output.
// Names are normalised by stripping the Benchmark prefix and the
// -GOMAXPROCS suffix; repeated runs keep the worst figure.
func parseBench(r io.Reader) (map[string]uint64, error) {
	results := make(map[string]uint64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i < len(fields); i++ {
			if fields[i] != "allocs/op" {
				continue
			}
			allocs, err := strconv.ParseUint(fields[i-1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in line %q: %v", sc.Text(), err)
			}
			name := normalize(fields[0])
			if prev, ok := results[name]; !ok || allocs > prev {
				results[name] = allocs
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// normalize strips the Benchmark prefix and the -GOMAXPROCS suffix:
// "BenchmarkFig7NoiseReduction-8" -> "Fig7NoiseReduction".
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// check returns one violation per budgeted benchmark that is either
// missing from the results or above its allocation budget.
func check(results map[string]uint64, lim budgets) []string {
	names := make([]string, 0, len(lim))
	for name := range lim {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		allocs, ok := results[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("benchmark %s not found in input", name))
			continue
		}
		if allocs > lim[name] {
			violations = append(violations, fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, allocs, lim[name]))
		}
	}
	return violations
}
