// Command benchdiff gates CI on benchmark allocation budgets. It parses
// the output of `go test -bench -benchmem` (as captured in bench.txt)
// and fails when a named benchmark's allocs/op exceeds its budget — or
// when a budgeted benchmark is missing from the output entirely, so a
// renamed or deleted benchmark cannot silently disarm the gate.
//
// Usage:
//
//	go run ./cmd/benchdiff -input bench.txt \
//	    -max Fig7NoiseReduction=0 -max Fig10BinSelection=37 \
//	    -json baseline.json
//
// Benchmark names are matched without the "Benchmark" prefix and the
// -GOMAXPROCS suffix, so budgets stay stable across machines. When a
// benchmark appears several times (e.g. -count > 1), the worst run is
// compared against the budget.
//
// Alongside allocs/op the parser records ns/op, and -json writes every
// parsed benchmark to a baseline file. Committed baselines (BENCH_*.json)
// document each PR's measured figures.
//
// Timing is gated loosely: with -baseline pointing at a committed
// BENCH_*.json and -nsratio R, every benchmark in the baseline must run
// within R times its recorded ns/op (and must be present, so renames
// cannot disarm the gate). The ratio is deliberately generous — the
// baseline machine and the CI runner differ, and wall time is noisy —
// so this is a tripwire for order-of-magnitude regressions (an
// accidental O(n²), a debug path left enabled, a -benchtime=1x cold
// artifact), not a precision gate. Allocation budgets (-max) remain
// exact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds the parsed figures of one benchmark: the worst run's
// wall time and allocation count.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// budgets is a repeatable -max Name=N flag.
type budgets map[string]uint64

func (b budgets) String() string {
	parts := make([]string, 0, len(b))
	for name, lim := range b {
		parts = append(parts, fmt.Sprintf("%s=%d", name, lim))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (b budgets) Set(s string) error {
	name, limStr, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want Name=N, got %q", s)
	}
	lim, err := strconv.ParseUint(limStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad allocation budget in %q: %v", s, err)
	}
	b[name] = lim
	return nil
}

func main() {
	lim := budgets{}
	input := flag.String("input", "bench.txt", "benchmark output to check (- for stdin)")
	jsonOut := flag.String("json", "", "write parsed results to this JSON baseline file")
	baseline := flag.String("baseline", "", "committed BENCH_*.json to gate ns/op against")
	nsRatio := flag.Float64("nsratio", 0, "fail when ns/op exceeds this multiple of the baseline (requires -baseline)")
	flag.Var(lim, "max", "allocation budget Name=N (repeatable)")
	flag.Parse()
	if len(lim) == 0 && *jsonOut == "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: no -max budgets, -baseline, or -json output given")
		os.Exit(2)
	}
	if (*baseline == "") != (*nsRatio <= 0) {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -nsratio must be given together")
		os.Exit(2)
	}
	r := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	results, err := parseBench(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writeBaseline(*jsonOut, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(results), *jsonOut)
	}
	violations := check(results, lim)
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		nsViolations, report := checkTiming(results, base, *nsRatio)
		for _, line := range report {
			fmt.Println("benchdiff:", line)
		}
		violations = append(violations, nsViolations...)
	}
	for name, res := range results {
		if limit, ok := lim[name]; ok {
			fmt.Printf("benchdiff: %s: %d allocs/op (budget %d), %.0f ns/op\n",
				name, res.AllocsPerOp, limit, res.NsPerOp)
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", v)
		}
		os.Exit(1)
	}
	if len(lim) > 0 {
		fmt.Println("benchdiff: all allocation budgets met")
	}
}

// parseBench extracts ns/op and allocs/op per benchmark from -benchmem
// output. Names are normalised by stripping the Benchmark prefix and
// the -GOMAXPROCS suffix; repeated runs keep the worst figure of each
// metric independently.
func parseBench(r io.Reader) (map[string]result, error) {
	results := make(map[string]result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var res result
		var sawAllocs bool
		for i := 2; i < len(fields); i++ {
			switch fields[i] {
			case "ns/op":
				ns, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in line %q: %v", sc.Text(), err)
				}
				res.NsPerOp = ns
			case "allocs/op":
				allocs, err := strconv.ParseUint(fields[i-1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in line %q: %v", sc.Text(), err)
				}
				res.AllocsPerOp = allocs
				sawAllocs = true
			}
		}
		if !sawAllocs {
			continue
		}
		name := normalize(fields[0])
		if prev, ok := results[name]; ok {
			if prev.AllocsPerOp > res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.NsPerOp > res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
		}
		results[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// writeBaseline marshals the results to an indented JSON object keyed
// by benchmark name (encoding/json sorts map keys, so the file diffs
// cleanly across runs).
func writeBaseline(path string, results map[string]result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readBaseline loads a committed BENCH_*.json baseline.
func readBaseline(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base map[string]result
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %v", path, err)
	}
	return base, nil
}

// checkTiming compares each baseline benchmark's ns/op against the
// measured results: missing benchmarks and runs slower than
// ratio × baseline are violations. Benchmarks measured but absent from
// the baseline pass silently (new benchmarks gate from the next
// committed baseline on). Zero-ns baseline entries are skipped — there
// is no meaningful ratio against zero.
func checkTiming(results, base map[string]result, ratio float64) (violations, report []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		if b.NsPerOp <= 0 {
			continue
		}
		res, ok := results[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("benchmark %s in baseline but not in input", name))
			continue
		}
		limit := ratio * b.NsPerOp
		report = append(report, fmt.Sprintf("%s: %.0f ns/op (baseline %.0f, limit %.0fx = %.0f)",
			name, res.NsPerOp, b.NsPerOp, ratio, limit))
		if res.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf("%s: %.0f ns/op exceeds %.0fx baseline %.0f",
				name, res.NsPerOp, ratio, b.NsPerOp))
		}
	}
	return violations, report
}

// normalize strips the Benchmark prefix and the -GOMAXPROCS suffix:
// "BenchmarkFig7NoiseReduction-8" -> "Fig7NoiseReduction".
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// check returns one violation per budgeted benchmark that is either
// missing from the results or above its allocation budget.
func check(results map[string]result, lim budgets) []string {
	names := make([]string, 0, len(lim))
	for name := range lim {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		res, ok := results[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("benchmark %s not found in input", name))
			continue
		}
		if res.AllocsPerOp > lim[name] {
			violations = append(violations, fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, res.AllocsPerOp, lim[name]))
		}
	}
	return violations
}
