package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: blinkradar
cpu: Test CPU
BenchmarkFig7NoiseReduction-8    	     120	   9876543 ns/op	         3.210 dB-gain	       0 B/op	       0 allocs/op
BenchmarkFig10BinSelection-8     	       4	 250000000 ns/op	        12.00 selected-bin	    2048 B/op	      37 allocs/op
BenchmarkFig8BackgroundSubtraction-8 	 2	 500000000 ns/op	        41.00 dB-suppression	 9999999 B/op	   12345 allocs/op
PASS
ok  	blinkradar	3.210s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]result{
		"Fig7NoiseReduction":        {NsPerOp: 9876543, AllocsPerOp: 0},
		"Fig10BinSelection":         {NsPerOp: 250000000, AllocsPerOp: 37},
		"Fig8BackgroundSubtraction": {NsPerOp: 500000000, AllocsPerOp: 12345},
	}
	for name, res := range want {
		if got := results[name]; got != res {
			t.Errorf("%s: got %+v, want %+v", name, got, res)
		}
	}
}

func TestParseBenchKeepsWorstRun(t *testing.T) {
	repeated := "BenchmarkX-4 10 5 ns/op 0 B/op 2 allocs/op\n" +
		"BenchmarkX-4 10 9 ns/op 0 B/op 7 allocs/op\n" +
		"BenchmarkX-4 10 6 ns/op 0 B/op 3 allocs/op\n"
	results, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if got := results["X"]; got.AllocsPerOp != 7 || got.NsPerOp != 9 {
		t.Errorf("got %+v, want worst run {9 7}", got)
	}
}

func TestParseBenchSkipsLinesWithoutAllocs(t *testing.T) {
	// Without -benchmem there is no allocs/op column; such lines must
	// not produce half-filled results that a budget could match against.
	noMem := "BenchmarkX-4 10 5 ns/op\n"
	results, err := parseBench(strings.NewReader(noMem))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("want no results without allocs/op, got %v", results)
	}
}

func TestCheckWithinBudgets(t *testing.T) {
	results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	lim := budgets{"Fig7NoiseReduction": 0, "Fig10BinSelection": 37}
	if v := check(results, lim); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestCheckOverBudget(t *testing.T) {
	results := map[string]result{"Fig7NoiseReduction": {AllocsPerOp: 4}}
	v := check(results, budgets{"Fig7NoiseReduction": 0})
	if len(v) != 1 || !strings.Contains(v[0], "exceeds budget") {
		t.Errorf("want one exceeds-budget violation, got %v", v)
	}
}

func TestCheckMissingBenchmark(t *testing.T) {
	v := check(map[string]result{}, budgets{"Fig10BinSelection": 37})
	if len(v) != 1 || !strings.Contains(v[0], "not found") {
		t.Errorf("want one not-found violation, got %v", v)
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaseline(path, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip lost entries: %d vs %d", len(back), len(results))
	}
	for name, res := range results {
		if back[name] != res {
			t.Errorf("%s: %+v round-tripped to %+v", name, res, back[name])
		}
	}
}

func TestBudgetsFlagParsing(t *testing.T) {
	lim := budgets{}
	if err := lim.Set("Fig7NoiseReduction=0"); err != nil {
		t.Fatal(err)
	}
	if err := lim.Set("Fig10BinSelection=37"); err != nil {
		t.Fatal(err)
	}
	if lim["Fig7NoiseReduction"] != 0 || lim["Fig10BinSelection"] != 37 {
		t.Errorf("budgets not recorded: %v", lim)
	}
	if err := lim.Set("bogus"); err == nil {
		t.Error("want error for budget without =")
	}
	if err := lim.Set("X=notanumber"); err == nil {
		t.Error("want error for non-numeric budget")
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFig7NoiseReduction-8": "Fig7NoiseReduction",
		"BenchmarkFig10BinSelection":    "Fig10BinSelection",
		"BenchmarkUTF-8":                "UTF", // GOMAXPROCS suffix is indistinguishable; documented
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckTimingWithinRatio(t *testing.T) {
	results := map[string]result{
		"Fig7NoiseReduction": {NsPerOp: 30000, AllocsPerOp: 0},
		"NewBenchmark":       {NsPerOp: 1e9, AllocsPerOp: 0},
	}
	base := map[string]result{
		"Fig7NoiseReduction": {NsPerOp: 17000, AllocsPerOp: 0},
	}
	violations, report := checkTiming(results, base, 4)
	if len(violations) != 0 {
		t.Errorf("unexpected violations: %v", violations)
	}
	// Benchmarks absent from the baseline (NewBenchmark) pass silently.
	if len(report) != 1 || !strings.Contains(report[0], "Fig7NoiseReduction") {
		t.Errorf("want one report line for the gated benchmark, got %v", report)
	}
}

func TestCheckTimingOverRatio(t *testing.T) {
	results := map[string]result{"Fig7NoiseReduction": {NsPerOp: 90000}}
	base := map[string]result{"Fig7NoiseReduction": {NsPerOp: 17000}}
	violations, _ := checkTiming(results, base, 4)
	if len(violations) != 1 || !strings.Contains(violations[0], "exceeds 4x baseline") {
		t.Errorf("want one exceeds-baseline violation, got %v", violations)
	}
}

func TestCheckTimingMissingBenchmark(t *testing.T) {
	// A baseline entry with no measurement is a violation: renaming or
	// dropping a benchmark must not silently disarm the timing gate.
	base := map[string]result{"Fig7NoiseReduction": {NsPerOp: 17000}}
	violations, _ := checkTiming(map[string]result{}, base, 4)
	if len(violations) != 1 || !strings.Contains(violations[0], "not in input") {
		t.Errorf("want one missing-benchmark violation, got %v", violations)
	}
}

func TestCheckTimingSkipsZeroBaseline(t *testing.T) {
	base := map[string]result{"Weird": {NsPerOp: 0}}
	violations, report := checkTiming(map[string]result{}, base, 4)
	if len(violations) != 0 || len(report) != 0 {
		t.Errorf("zero-ns baseline entries must be skipped, got %v %v", violations, report)
	}
}

func TestReadBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	results := map[string]result{"X": {NsPerOp: 42, AllocsPerOp: 3}}
	if err := writeBaseline(path, results); err != nil {
		t.Fatal(err)
	}
	back, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if back["X"] != results["X"] {
		t.Errorf("got %+v, want %+v", back["X"], results["X"])
	}
	if _, err := readBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("want error for missing baseline file")
	}
}
