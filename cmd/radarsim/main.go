// Command radarsim generates a synthetic radar capture and writes it to
// disk in the transport wire format (stream hello followed by encoded
// frames), together with a JSON ground-truth sidecar. The output can be
// replayed by cmd/radard or analysed offline.
//
// Usage:
//
//	radarsim -out capture.brc [-truth capture.json] [flags]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"blinkradar"
	"blinkradar/internal/transport"
)

// truthFile is the JSON sidecar layout.
type truthFile struct {
	// Spec echo for reproducibility.
	SubjectID int     `json:"subject_id"`
	State     string  `json:"state"`
	Seed      int64   `json:"seed"`
	Duration  float64 `json:"duration_sec"`
	// EyeBin is the true eye range bin.
	EyeBin int `json:"eye_bin"`
	// Blinks are the ground-truth events.
	Blinks []blinkJSON `json:"blinks"`
}

type blinkJSON struct {
	Start    float64 `json:"start_sec"`
	Duration float64 `json:"duration_sec"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("radarsim: ")
	var (
		out       = flag.String("out", "capture.brc", "output capture file")
		truthOut  = flag.String("truth", "", "ground-truth JSON sidecar (default <out>.json)")
		subjectID = flag.Int("subject", 1, "participant profile id")
		duration  = flag.Float64("duration", 60, "capture length in seconds")
		drowsy    = flag.Bool("drowsy-state", false, "simulate a drowsy driver")
		driving   = flag.Bool("driving", false, "on-road capture instead of lab")
		seed      = flag.Int64("seed", 1, "scenario seed")
	)
	flag.Parse()
	if *truthOut == "" {
		*truthOut = *out + ".json"
	}

	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(*subjectID)
	spec.Duration = *duration
	spec.Seed = *seed
	if *drowsy {
		spec.State = blinkradar.Drowsy
	}
	if *driving {
		spec.Environment = blinkradar.Driving
	}

	capture, err := blinkradar.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeCapture(*out, capture); err != nil {
		log.Fatal(err)
	}
	if err := writeTruth(*truthOut, spec, capture); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d frames (%.0f s, %d bins) to %s, ground truth (%d blinks) to %s\n",
		capture.Frames.NumFrames(), capture.Frames.Duration(), capture.Frames.NumBins(),
		*out, len(capture.Truth), *truthOut)
}

func writeCapture(path string, capture *blinkradar.Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create capture: %w", err)
	}
	defer f.Close()
	m := capture.Frames
	if err := transport.EncodeHello(f, transport.StreamHello{
		FrameRate:  m.FrameRate,
		BinSpacing: m.BinSpacing,
		NumBins:    uint32(m.NumBins()),
	}); err != nil {
		return err
	}
	enc := transport.NewEncoder(f)
	for k, frame := range m.Data {
		err := enc.Encode(transport.Frame{
			Seq:             uint64(k),
			TimestampMicros: uint64(m.FrameTime(k) * 1e6),
			Bins:            frame,
		})
		if err != nil {
			return err
		}
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeTruth(path string, spec blinkradar.Spec, capture *blinkradar.Capture) error {
	t := truthFile{
		SubjectID: spec.Subject.ID,
		State:     spec.State.String(),
		Seed:      spec.Seed,
		Duration:  spec.Duration,
		EyeBin:    capture.EyeBin,
	}
	for _, b := range capture.Truth {
		t.Blinks = append(t.Blinks, blinkJSON{Start: b.Start, Duration: b.Duration})
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal truth: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write truth: %w", err)
	}
	return nil
}
