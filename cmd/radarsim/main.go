// Command radarsim generates a synthetic radar capture and writes it to
// disk in the .brc capture format — by default v1 (versioned header,
// per-frame CRC, seekable index footer, torn-write recovery; see
// internal/transport/capture.go), or the legacy v0 wire dump (stream
// hello followed by encoded frames) with -format v0 — together with a
// JSON ground-truth sidecar. The output can be replayed by cmd/radard
// or cmd/radarfleet, or analysed offline.
//
// Usage:
//
//	radarsim -out capture.brc [-truth capture.json] [-format v1] [flags]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"blinkradar"
	"blinkradar/internal/chaos"
	"blinkradar/internal/transport"
)

// truthFile is the JSON sidecar layout.
type truthFile struct {
	// Spec echo for reproducibility.
	SubjectID int     `json:"subject_id"`
	State     string  `json:"state"`
	Seed      int64   `json:"seed"`
	Duration  float64 `json:"duration_sec"`
	// EyeBin is the true eye range bin.
	EyeBin int `json:"eye_bin"`
	// Blinks are the ground-truth events.
	Blinks []blinkJSON `json:"blinks"`
}

type blinkJSON struct {
	Start    float64 `json:"start_sec"`
	Duration float64 `json:"duration_sec"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("radarsim: ")
	var (
		out       = flag.String("out", "capture.brc", "output capture file")
		truthOut  = flag.String("truth", "", "ground-truth JSON sidecar (default <out>.json)")
		subjectID = flag.Int("subject", 1, "participant profile id")
		duration  = flag.Float64("duration", 60, "capture length in seconds")
		drowsy    = flag.Bool("drowsy-state", false, "simulate a drowsy driver")
		driving   = flag.Bool("driving", false, "on-road capture instead of lab")
		seed      = flag.Int64("seed", 1, "scenario seed")
		chaosSpec = flag.String("chaos", "", "fault spec applied to the written frames, e.g. seed=7,drop=0.05,nan=0.01 (see internal/chaos.ParseSpec)")
		format    = flag.String("format", "v1", "capture format: v1 (indexed, crash-safe) or v0 (legacy hello+frames)")
	)
	flag.Parse()
	if *format != "v1" && *format != "v0" {
		log.Fatalf("unknown -format %q (want v1 or v0)", *format)
	}
	if *truthOut == "" {
		*truthOut = *out + ".json"
	}

	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(*subjectID)
	spec.Duration = *duration
	spec.Seed = *seed
	if *drowsy {
		spec.State = blinkradar.Drowsy
	}
	if *driving {
		spec.Environment = blinkradar.Driving
	}

	capture, err := blinkradar.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	inj, err := buildInjector(*chaosSpec)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeCapture(*out, *format, capture, inj); err != nil {
		log.Fatal(err)
	}
	if inj != nil {
		st := inj.Stats()
		fmt.Printf("chaos: %d frames dropped, %d duplicated, %d reordered, %d poisoned, %d saturated\n",
			st.Dropped, st.Duplicated, st.Reordered, st.Poisoned, st.Saturated)
	}
	if err := writeTruth(*truthOut, spec, capture); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d frames (%.0f s, %d bins) to %s, ground truth (%d blinks) to %s\n",
		capture.Frames.NumFrames(), capture.Frames.Duration(), capture.Frames.NumBins(),
		*out, len(capture.Truth), *truthOut)
}

// buildInjector parses the -chaos spec into a frame injector, or nil
// when no faults are requested. Bin-count changes are refused: the
// capture header pins a single geometry for the whole file.
func buildInjector(spec string) (*chaos.Injector, error) {
	if spec == "" {
		return nil, nil
	}
	cfg, err := chaos.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if cfg.BinChangeAfter > 0 {
		return nil, errors.New("binchange is not representable in a capture file (the hello pins the bin count); use radard -chaos for mid-stream geometry changes")
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return chaos.New(cfg)
}

func writeCapture(path, format string, capture *blinkradar.Capture, inj *chaos.Injector) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create capture: %w", err)
	}
	defer f.Close()
	m := capture.Frames
	hello := transport.StreamHello{
		FrameRate:  m.FrameRate,
		BinSpacing: m.BinSpacing,
		NumBins:    uint32(m.NumBins()),
	}

	var write func(out transport.Frame) error
	var finish func() error
	if format == "v1" {
		// Start time 0: synthetic captures carry no wall-clock epoch, and
		// a byte-identical file for identical flags lets CI cache the
		// generated corpus by content.
		cw, err := transport.NewCaptureWriter(f, hello, 0)
		if err != nil {
			return err
		}
		write = cw.WriteFrame
		finish = cw.Close
	} else {
		if err := transport.EncodeHello(f, hello); err != nil {
			return err
		}
		enc := transport.NewEncoder(f)
		write = enc.Encode
		finish = enc.Flush
	}

	for k, frame := range m.Data {
		in := transport.Frame{
			Seq:             uint64(k),
			TimestampMicros: transport.TimestampMicros(m.FrameTime(k)),
			Bins:            frame,
		}
		if inj == nil {
			if err := write(in); err != nil {
				return err
			}
			continue
		}
		// Dropped frames keep their sequence number out of the file, so
		// replaying it downstream shows the same gaps a lossy link would.
		for _, out := range inj.Apply(in) {
			if err := write(out); err != nil {
				return err
			}
		}
	}
	if inj != nil {
		for _, out := range inj.Flush() {
			if err := write(out); err != nil {
				return err
			}
		}
	}
	if err := finish(); err != nil {
		return err
	}
	return f.Close()
}

func writeTruth(path string, spec blinkradar.Spec, capture *blinkradar.Capture) error {
	t := truthFile{
		SubjectID: spec.Subject.ID,
		State:     spec.State.String(),
		Seed:      spec.Seed,
		Duration:  spec.Duration,
		EyeBin:    capture.EyeBin,
	}
	for _, b := range capture.Truth {
		t.Blinks = append(t.Blinks, blinkJSON{Start: b.Start, Duration: b.Duration})
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal truth: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write truth: %w", err)
	}
	return nil
}
