// Command experiments reproduces every table and figure from the
// paper's evaluation and prints a report suitable for EXPERIMENTS.md.
//
// Usage:
//
//	experiments            # run everything
//	experiments -only fig13a,fig15b
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"blinkradar/internal/core"
	"blinkradar/internal/experiments"
)

// experiment couples a name with its runner.
type experiment struct {
	name string
	desc string
	run  func(cfg core.Config) (fmt.Stringer, error)
}

// stringerFunc adapts plain strings.
type stringerFunc string

func (s stringerFunc) String() string { return string(s) }

func registry() []experiment {
	return []experiment{
		{"table1", "Table I: blink frequency awake vs drowsy", func(core.Config) (fmt.Stringer, error) {
			r, err := experiments.Table1(1)
			return r, err
		}},
		{"table1-detected", "Table I end-to-end: detected blink rates", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Table1Detected(cfg)
			return r, err
		}},
		{"fig5", "Fig 5: transmitted pulse time/frequency", func(core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig5()
			return r, err
		}},
		{"fig6", "Fig 6b: multipath range profile", func(core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig6(6)
			return r, err
		}},
		{"fig7", "Fig 7: noise-reduction cascade SNR", func(core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig7(7)
			return r, err
		}},
		{"fig8", "Fig 8: background subtraction", func(core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig8(8)
			return r, err
		}},
		{"fig9", "Fig 9: blink I/Q signature", func(core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig9(9)
			return r, err
		}},
		{"fig10", "Fig 10: variance-based eye-bin identification", func(core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig10(10)
			return r, err
		}},
		{"fig11", "Fig 11: real-time detection trace", func(core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig11(11)
			return r, err
		}},
		{"fig13a", "Fig 13a: blink accuracy CDF", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig13a(cfg)
			return r, err
		}},
		{"fig13b", "Fig 13b: drowsy accuracy CDF", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig13b(cfg)
			return r, err
		}},
		{"fig15a", "Fig 15a: consecutive missed detections", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig15a(cfg)
			return r, err
		}},
		{"fig15b", "Fig 15b: distance sweep", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig15b(cfg)
			return r, err
		}},
		{"fig15c", "Fig 15c: elevation sweep", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig15c(cfg)
			return r, err
		}},
		{"fig15d", "Fig 15d: azimuth sweep", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig15d(cfg)
			return r, err
		}},
		{"fig16a", "Fig 16a: glasses", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig16a(cfg)
			return r, err
		}},
		{"fig16b", "Fig 16b: road types", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig16b(cfg)
			return r, err
		}},
		{"fig16c", "Fig 16c: eye size", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig16c(cfg)
			return r, err
		}},
		{"fig16d", "Fig 16d: detection window length", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.Fig16d(cfg)
			return r, err
		}},
		{"ext-vitals", "Extension: vital signs from the blink stream", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.ExtVitals(cfg)
			return r, err
		}},
		{"ext-devicevib", "Extension: device vibration (Discussion)", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.ExtDeviceVibration(cfg)
			return r, err
		}},
		{"ablation-binselect", "Ablation: variance vs naive bin selection", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.AblationBinSelection(cfg)
			return r, err
		}},
		{"ablation-waveform", "Ablation: I/Q distance vs amplitude/phase-only", func(cfg core.Config) (fmt.Stringer, error) {
			rs, err := experiments.AblationWaveform(cfg)
			if err != nil {
				return nil, err
			}
			var lines []string
			for _, r := range rs {
				lines = append(lines, r.String())
			}
			return stringerFunc(strings.Join(lines, "\n")), nil
		}},
		{"ablation-adaptive", "Ablation: adaptive update disabled", func(cfg core.Config) (fmt.Stringer, error) {
			r, err := experiments.AblationAdaptiveUpdate(cfg)
			return r, err
		}},
		{"ablation-threshold", "Ablation: LEVD threshold off 5-sigma", func(cfg core.Config) (fmt.Stringer, error) {
			rs, err := experiments.AblationThreshold(cfg)
			if err != nil {
				return nil, err
			}
			var lines []string
			for _, r := range rs {
				lines = append(lines, r.String())
			}
			return stringerFunc(strings.Join(lines, "\n")), nil
		}},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		only = flag.String("only", "", "comma-separated experiment names (default all)")
		list = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-20s %s\n", e.name, e.desc)
		}
		return
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(n)] = true
		}
		known := map[string]bool{}
		for _, e := range exps {
			known[e.name] = true
		}
		var unknown []string
		for n := range selected {
			if !known[n] {
				unknown = append(unknown, n)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			log.Fatalf("unknown experiments: %s", strings.Join(unknown, ", "))
		}
	}

	cfg := core.DefaultConfig()
	start := time.Now()
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		t0 := time.Now()
		res, err := e.run(cfg)
		if err != nil {
			log.Fatalf("%s failed: %v", e.name, err)
		}
		fmt.Printf("=== %s — %s (%.1fs)\n%s\n\n", e.name, e.desc, time.Since(t0).Seconds(), res)
	}
	fmt.Printf("total runtime: %.1fs\n", time.Since(start).Seconds())
}
