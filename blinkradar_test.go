package blinkradar_test

import (
	"math"
	"testing"

	"blinkradar"
)

// TestPublicAPIEndToEnd exercises the documented quickstart flow through
// the public facade only.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(2)
	spec.Duration = 60
	spec.Seed = 7

	capture, err := blinkradar.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	events, det, err := blinkradar.Detect(blinkradar.DefaultConfig(), capture.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if det.Bin() < 0 {
		t.Fatal("no bin selected")
	}
	truth := blinkradar.TrimWarmup(capture.Truth, blinkradar.DefaultWarmup)
	m := blinkradar.Match(truth, events, 0)
	if m.Accuracy() < 0.6 {
		t.Fatalf("public-API accuracy %.2f unexpectedly low", m.Accuracy())
	}
}

func TestPublicConstants(t *testing.T) {
	if blinkradar.Awake.String() != "awake" || blinkradar.Drowsy.String() != "drowsy" {
		t.Fatal("state aliases broken")
	}
	if blinkradar.Lab.String() != "lab" || blinkradar.Driving.String() != "driving" {
		t.Fatal("environment aliases broken")
	}
	if blinkradar.BumpyRoad.String() != "bumpy" {
		t.Fatal("road aliases broken")
	}
	if blinkradar.Sunglasses.Attenuation() >= blinkradar.NoGlasses.Attenuation() {
		t.Fatal("glasses aliases broken")
	}
}

func TestMonitorLifecycle(t *testing.T) {
	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(3)
	spec.Environment = blinkradar.Driving
	spec.Duration = 150
	spec.Seed = 9
	capture, err := blinkradar.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := blinkradar.NewMonitor(blinkradar.DefaultConfig(), capture.Frames.NumBins(), capture.Frames.FrameRate, 60)
	if err != nil {
		t.Fatal(err)
	}
	if monitor.Calibrated() {
		t.Fatal("fresh monitor reports calibrated")
	}

	var blinks int
	var assessments []blinkradar.Assessment
	for _, frame := range capture.Frames.Data {
		ev, ok, a, err := monitor.Feed(frame)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			blinks++
			if ev.Time < 0 {
				t.Fatal("negative event time")
			}
		}
		if a != nil {
			assessments = append(assessments, *a)
		}
	}
	if blinks == 0 {
		t.Fatal("monitor detected no blinks over 2.5 minutes")
	}
	if len(assessments) != 2 {
		t.Fatalf("%d assessments over 150 s with 60 s windows, want 2", len(assessments))
	}
	for _, a := range assessments {
		if a.Calibrated {
			t.Fatal("uncalibrated monitor produced calibrated assessments")
		}
		if a.Posterior != 0.5 {
			t.Fatalf("uncalibrated posterior %g, want 0.5", a.Posterior)
		}
	}
	// The second window's blink rate must be plausible for an awake
	// driver pipeline (detections plus a tolerable false-positive rate).
	rate := assessments[1].Features.BlinkRate
	if rate <= 0 || rate > 60 {
		t.Fatalf("window blink rate %g implausible", rate)
	}
}

func TestMonitorCalibrationFlow(t *testing.T) {
	mk := func(rate, dur float64, n int) []blinkradar.WindowFeatures {
		out := make([]blinkradar.WindowFeatures, n)
		for i := range out {
			out[i] = blinkradar.WindowFeatures{
				BlinkRate:         rate + float64(i%3) - 1,
				MeanBlinkDuration: dur,
			}
		}
		return out
	}
	monitor, err := blinkradar.NewMonitor(blinkradar.DefaultConfig(), 150, 25, 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := monitor.Calibrate(mk(18, 0.25, 4), mk(28, 0.55, 4)); err != nil {
		t.Fatal(err)
	}
	if !monitor.Calibrated() {
		t.Fatal("calibration did not take")
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := blinkradar.NewMonitor(blinkradar.DefaultConfig(), 150, 25, 0); err == nil {
		t.Fatal("zero window must be rejected")
	}
	if _, err := blinkradar.NewMonitor(blinkradar.DefaultConfig(), 0, 25, 60); err == nil {
		t.Fatal("zero bins must be rejected")
	}
}

func TestDeterministicPublicPipeline(t *testing.T) {
	run := func() []blinkradar.BlinkEvent {
		spec := blinkradar.DefaultSpec()
		spec.Duration = 40
		spec.Seed = 5
		capture, err := blinkradar.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		events, _, err := blinkradar.Detect(blinkradar.DefaultConfig(), capture.Frames)
		if err != nil {
			t.Fatal(err)
		}
		return events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i].Time-b[i].Time) > 1e-12 {
			t.Fatalf("event %d times differ", i)
		}
	}
}

func TestMonitorSurfacesVitals(t *testing.T) {
	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(12)
	spec.Duration = 120
	spec.Seed = 21
	capture, err := blinkradar.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := blinkradar.NewMonitor(blinkradar.DefaultConfig(), capture.Frames.NumBins(), capture.Frames.FrameRate, 60)
	if err != nil {
		t.Fatal(err)
	}
	var last *blinkradar.Assessment
	for _, frame := range capture.Frames.Data {
		_, _, a, err := monitor.Feed(frame)
		if err != nil {
			t.Fatal(err)
		}
		if a != nil {
			last = a
		}
	}
	if last == nil {
		t.Fatal("no assessments over 2 minutes")
	}
	if last.Vitals == nil {
		t.Fatal("assessment carries no vital signs after a full window")
	}
	wantResp := spec.Subject.Respiration.RateHz * 60
	if got := last.Vitals.RespirationBPM(); math.Abs(got-wantResp) > 4 {
		t.Fatalf("monitor respiration %.1f bpm, subject's true rate %.1f", got, wantResp)
	}
}
