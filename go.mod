module blinkradar

go 1.24

// The blinkvet analyzer suite (internal/analysis, cmd/blinkvet) is
// intentionally dependency-free: it was built against the stdlib
// (go/ast, go/types, go/importer over `go list -export` data) instead
// of golang.org/x/tools/go/analysis because the build environment is
// offline and the module must keep building with an empty module
// cache. The framework mirrors the x/tools Analyzer/Pass/Diagnostic
// shape, so migrating to the upstream driver later is mechanical.
