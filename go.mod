module blinkradar

go 1.22
