package blinkradar_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blinkradar"
	"blinkradar/internal/transport"
)

// buildTool compiles one of the cmd binaries into dir and returns its
// path. Skips the test when the toolchain is unavailable.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestRadarsimCaptureRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI round trip skipped in -short mode")
	}
	dir := t.TempDir()
	radarsim := buildTool(t, dir, "radarsim")

	capturePath := filepath.Join(dir, "capture.brc")
	truthPath := filepath.Join(dir, "capture.json")
	cmd := exec.Command(radarsim,
		"-out", capturePath,
		"-truth", truthPath,
		"-subject", "4",
		"-duration", "45",
		"-seed", "99",
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("radarsim: %v\n%s", err, out)
	}

	// The capture file must be a clean indexed v1 .brc that decodes into
	// the exact frame matrix the library produces for the same spec.
	f, err := os.Open(capturePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cr, err := transport.NewCaptureReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Header().Version != transport.CaptureVersion {
		t.Fatalf("radarsim wrote capture version %d, want %d", cr.Header().Version, transport.CaptureVersion)
	}
	if !cr.Indexed() {
		t.Fatal("radarsim capture has no valid footer index")
	}
	if err := cr.Truncated(); err != nil {
		t.Fatalf("fresh radarsim capture reports truncation: %v", err)
	}
	m, err := cr.ReadMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFrames() != 45*25 {
		t.Fatalf("capture has %d frames, want %d", m.NumFrames(), 45*25)
	}

	// The legacy writer remains reachable, and its output still loads
	// through the legacy reader.
	v0Path := filepath.Join(dir, "capture_v0.brc")
	cmd = exec.Command(radarsim,
		"-out", v0Path,
		"-truth", filepath.Join(dir, "capture_v0.json"),
		"-format", "v0",
		"-duration", "5",
		"-seed", "99",
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("radarsim -format v0: %v\n%s", err, out)
	}
	v0f, err := os.Open(v0Path)
	if err != nil {
		t.Fatal(err)
	}
	defer v0f.Close()
	if _, err := transport.ReadCapture(v0f); err != nil {
		t.Fatalf("v0 capture through the legacy reader: %v", err)
	}

	// The truth sidecar must parse and line up with detection results.
	raw, err := os.ReadFile(truthPath)
	if err != nil {
		t.Fatal(err)
	}
	var truth struct {
		SubjectID int `json:"subject_id"`
		EyeBin    int `json:"eye_bin"`
		Blinks    []struct {
			Start    float64 `json:"start_sec"`
			Duration float64 `json:"duration_sec"`
		} `json:"blinks"`
	}
	if err := json.Unmarshal(raw, &truth); err != nil {
		t.Fatalf("truth sidecar: %v", err)
	}
	if truth.SubjectID != 4 || len(truth.Blinks) == 0 {
		t.Fatalf("sidecar content %+v", truth)
	}

	events, _, err := blinkradar.Detect(blinkradar.DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	blinks := make([]blinkradar.Blink, 0, len(truth.Blinks))
	for _, b := range truth.Blinks {
		blinks = append(blinks, blinkradar.Blink{Start: b.Start, Duration: b.Duration})
	}
	scored := blinkradar.TrimWarmup(blinks, blinkradar.DefaultWarmup)
	match := blinkradar.Match(scored, events, 0)
	if match.Accuracy() < 0.5 {
		t.Fatalf("detection on the file round trip scored %.2f", match.Accuracy())
	}
}

// TestRadardAdminEndpoints boots the daemon and scrapes its admin
// port: /healthz must go healthy once the stream is pumping, and
// /metrics must export a JSON snapshot with live counters.
func TestRadardAdminEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI admin test skipped in -short mode")
	}
	dir := t.TempDir()
	radard := buildTool(t, dir, "radard")

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	daemon := exec.CommandContext(ctx, radard,
		"-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0",
		"-duration", "10",
		"-pace=true",
		"-speed", "8",
		"-loop=true",
		"-seed", "7",
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	// Parse the announced admin address off stderr.
	adminAddr := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stderr)
		for scanner.Scan() {
			line := scanner.Text()
			if i := strings.Index(line, "admin endpoints on "); i >= 0 {
				rest := line[i+len("admin endpoints on "):]
				adminAddr <- strings.Fields(rest)[0]
				return
			}
		}
	}()
	var base string
	select {
	case a := <-adminAddr:
		base = "http://" + a
	case <-time.After(30 * time.Second):
		t.Fatal("radard never announced its admin address")
	}

	httpClient := &http.Client{Timeout: 5 * time.Second}
	getJSON := func(path string, out any) (int, error) {
		resp, err := httpClient.Get(base + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}

	// /healthz reports ok once the pump is live.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var health struct {
			Status string `json:"status"`
		}
		code, err := getJSON("/healthz", &health)
		if err == nil && code == http.StatusOK && health.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never went healthy (last: code %d, err %v)", code, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// /metrics exports the counters and shows frames flowing.
	for {
		var snap struct {
			Counters map[string]uint64 `json:"counters"`
		}
		code, err := getJSON("/metrics", &snap)
		if err != nil || code != http.StatusOK {
			t.Fatalf("/metrics: code %d, err %v", code, err)
		}
		if _, ok := snap.Counters["transport_server_frames_pumped_total"]; !ok {
			t.Fatalf("/metrics missing frame counter: %v", snap.Counters)
		}
		if snap.Counters["transport_server_frames_pumped_total"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never pumped a frame")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestRadardRadarwatchPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline skipped in -short mode")
	}
	dir := t.TempDir()
	radard := buildTool(t, dir, "radard")
	radarwatch := buildTool(t, dir, "radarwatch")

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// Paced at 4x real time: fast enough for the test, slow enough
	// that the monitoring client never becomes a dropped slow client.
	daemon := exec.CommandContext(ctx, radard,
		"-addr", "127.0.0.1:0",
		"-admin", "", // keep this test focused on the frame stream
		"-duration", "45",
		"-pace=true",
		"-speed", "4",
		"-loop=true",
		"-seed", "7",
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	// The daemon logs its listen address; parse it.
	var addr string
	scanner := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	found := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			line := scanner.Text()
			if i := strings.Index(line, "on 127.0.0.1:"); i >= 0 {
				found <- strings.TrimSpace(line[i+3:])
				break
			}
		}
	}()
	select {
	case addr = <-found:
	case <-deadline:
		t.Fatal("radard never announced its address")
	}

	// radarwatch must connect, decode the hello, and report blinks;
	// kill it as soon as the first blink line appears.
	watchCtx, watchCancel := context.WithTimeout(ctx, 45*time.Second)
	defer watchCancel()
	watch := exec.CommandContext(watchCtx, radarwatch, "-addr", addr)
	stdout, err := watch.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := watch.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		watch.Process.Kill()
		watch.Wait()
	}()
	var connected, blinked bool
	lines := bufio.NewScanner(stdout)
	for lines.Scan() {
		line := lines.Text()
		if strings.Contains(line, "connected: 150 bins") {
			connected = true
		}
		if strings.Contains(line, "blink") {
			blinked = true
			break
		}
	}
	if !connected {
		t.Fatal("radarwatch never connected")
	}
	if !blinked {
		t.Fatal("radarwatch reported no blinks before the stream ended")
	}
}

// TestRadardIngestFleet boots radard in fleet mode and pushes several
// concurrent radar streams into it over the wire: hello, frames with a
// deliberate sequence gap, disconnect. The admin metrics must show
// every stream attached, every frame ingested, and every session
// detached once the connections close.
func TestRadardIngestFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI ingest test skipped in -short mode")
	}
	dir := t.TempDir()
	radard := buildTool(t, dir, "radard")

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	daemon := exec.CommandContext(ctx, radard,
		"-ingest", "127.0.0.1:0",
		"-admin", "127.0.0.1:0",
		"-ingest-bins", "16",
		"-ingest-fps", "25",
		"-ingest-shards", "2",
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	// Parse both announced addresses off stderr.
	ingestAddr := make(chan string, 1)
	adminAddr := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stderr)
		for scanner.Scan() {
			line := scanner.Text()
			if i := strings.Index(line, " fps on "); i >= 0 {
				rest := line[i+len(" fps on "):]
				ingestAddr <- strings.Fields(rest)[0]
			}
			if i := strings.Index(line, "admin endpoints on "); i >= 0 {
				rest := line[i+len("admin endpoints on "):]
				adminAddr <- strings.Fields(rest)[0]
			}
		}
	}()
	var addr, base string
	for addr == "" || base == "" {
		select {
		case a := <-ingestAddr:
			addr = a
		case a := <-adminAddr:
			base = "http://" + a
		case <-time.After(30 * time.Second):
			t.Fatal("radard never announced its ingest/admin addresses")
		}
	}

	// Push 4 concurrent streams of 100 frames each, every stream with
	// one 5-frame sequence gap.
	const streams, frames, gapAt, gapLen = 4, 100, 40, 5
	push := func(stream int) error {
		conn, err := netDial(addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		hello := transport.StreamHello{FrameRate: 25, BinSpacing: 0.0107, NumBins: 16}
		if err := transport.EncodeHello(conn, hello); err != nil {
			return err
		}
		enc := transport.NewEncoder(conn)
		bins := make([]complex128, 16)
		seq := uint64(1)
		for k := 0; k < frames; k++ {
			for b := range bins {
				bins[b] = complex(float64(stream)*1e-4, float64(k%7)*1e-4)
			}
			if k == gapAt {
				seq += gapLen
			}
			f := transport.Frame{Seq: seq, TimestampMicros: uint64(k) * 40_000, Bins: bins}
			if err := enc.Encode(f); err != nil {
				return err
			}
			seq++
		}
		return enc.Flush()
	}
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		go func(i int) { errs <- push(i) }(i)
	}
	for i := 0; i < streams; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("stream push: %v", err)
		}
	}

	// The daemon must account every stream: attached, ingested frame by
	// frame, and detached when the connections closed.
	httpClient := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var snap struct {
			Counters map[string]uint64 `json:"counters"`
		}
		resp, err := httpClient.Get(base + "/metrics")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
		}
		if err == nil &&
			snap.Counters["session_attaches_total"] == streams &&
			snap.Counters["session_frames_total"] == streams*frames &&
			snap.Counters["session_detaches_total"] == streams {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet accounting never converged: %v", snap.Counters)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// netDial dials with a bounded timeout.
func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}
