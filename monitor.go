package blinkradar

import (
	"fmt"

	"blinkradar/internal/core"
	"blinkradar/internal/obs"
	"blinkradar/internal/vitals"
)

// Monitor is the highest-level API: a streaming drowsy-driving monitor
// that consumes radar frames, detects blinks, maintains the rolling
// blink-rate window, and — once calibrated — raises drowsiness
// assessments. It composes a Detector with a DrowsinessModel exactly as
// the in-car deployment does. Monitor is not safe for concurrent use.
type Monitor struct {
	det       *Detector
	model     *DrowsinessModel
	frameRate float64

	// Window accounting. Boundaries are tracked as exact wall-clock
	// seconds (winStart/winEnd), not a truncated frame count: for
	// non-integer windowSec*frameRate products an integer frame window
	// both shortens every window and drifts its boundary away from the
	// wall clock while BlinkRate still divides by windowSec. Frames only
	// *trigger* assessment, once their timeline passes the boundary.
	// The core.Seconds/core.Frames unit types keep the two clocks from
	// mixing without a rate: that exact confusion was the drift bug.
	baseWindowSec    core.Seconds // as-constructed span, restored by Reset
	windowSec        core.Seconds // span of the window currently open
	pendingWindowSec core.Seconds // takes effect at the next boundary; 0 = none
	winStart         core.Seconds // start of the open window
	winEnd           core.Seconds // end of the open window
	// lagSec defers each window's assessment past its end by the
	// detector's delivery lag: LEVD stamps events in the past (smoother
	// group delay, refractory hold), so a blink delivered just after a
	// boundary can carry Time < winStart of the new window. Assessing
	// only once every event for the window must have been delivered
	// lands each event in exactly one window.
	lagSec core.Seconds

	vitals    *vitals.Monitor
	vitalsBin core.Bin

	events []BlinkEvent
	frame  core.Frames

	// Metrics (nil-safe no-ops until SetRegistry attaches a registry).
	mAssessments *obs.Counter
	mDrowsy      *obs.Counter
	gBlinkRate   *obs.Gauge
}

// Assessment is the monitor's rolling judgement for the latest
// completed window.
type Assessment struct {
	// WindowEnd is the end time of the assessed window in seconds.
	WindowEnd float64
	// Features are the window's blink statistics.
	Features WindowFeatures
	// Drowsy is the classification (false when the model is not
	// calibrated).
	Drowsy bool
	// Posterior is the drowsy probability under equal priors (0.5
	// when uncalibrated).
	Posterior float64
	// Calibrated reports whether a trained model produced the
	// judgement.
	Calibrated bool
	// Vitals carries the latest vital-sign estimate from the same
	// radar stream, when one is available.
	Vitals *VitalsEstimate
}

// NewMonitor builds a monitor for frames with numBins range bins at
// frameRate frames per second, assessing drowsiness over windows of
// windowSec seconds (the paper uses 60).
func NewMonitor(cfg Config, numBins int, frameRate, windowSec float64, opts ...Option) (*Monitor, error) {
	if windowSec <= 0 {
		return nil, fmt.Errorf("blinkradar: window must be positive, got %g", windowSec)
	}
	det, err := NewDetector(cfg, numBins, frameRate, opts...)
	if err != nil {
		return nil, err
	}
	vm, err := vitals.NewMonitor(frameRate, 30, 5)
	if err != nil {
		return nil, err
	}
	span := core.SecondsOf(windowSec)
	return &Monitor{
		det:           det,
		model:         &DrowsinessModel{},
		baseWindowSec: span,
		windowSec:     span,
		winEnd:        span,
		lagSec:        core.SecondsOf(det.DeliveryLagSec()),
		frameRate:     frameRate,
		vitals:        vm,
		vitalsBin:     -1,
	}, nil
}

// WindowSec returns the span of the assessment window currently open.
func (m *Monitor) WindowSec() float64 { return m.windowSec.Float64() }

// SetWindowSec schedules a new assessment-window span. It takes effect
// at the next window boundary, so the accounting of the window already
// open stays exact. The fleet layer uses it to widen windows when
// backpressure thins a session's frame stream: a wider window keeps
// enough blinks for the rate feature to stay meaningful.
func (m *Monitor) SetWindowSec(sec float64) error {
	if sec <= 0 {
		return fmt.Errorf("blinkradar: window must be positive, got %g", sec)
	}
	m.pendingWindowSec = core.SecondsOf(sec)
	return nil
}

// Reset returns the monitor to its just-constructed state without
// allocating, so a session pool can recycle monitors across stream
// churn. The per-driver drowsiness calibration is cleared too: recycled
// state serves a different driver.
func (m *Monitor) Reset() {
	m.det.Reset()
	m.vitals.Reset()
	m.vitalsBin = -1
	m.events = m.events[:0]
	m.frame = 0
	m.windowSec = m.baseWindowSec
	m.pendingWindowSec = 0
	m.winStart, m.winEnd = 0, m.baseWindowSec
	*m.model = DrowsinessModel{}
}

// SetRegistry attaches an observability registry to the monitor and
// its detector. Call before feeding frames. Exported metrics (plus the
// core_* set from the Detector):
//
//	monitor_assessments_total    completed window assessments
//	monitor_drowsy_total         windows classified drowsy
//	monitor_window_blink_rate    blinks/min of the latest window
func (m *Monitor) SetRegistry(r *obs.Registry) {
	m.mAssessments = r.Counter("monitor_assessments_total")
	m.mDrowsy = r.Counter("monitor_drowsy_total")
	m.gBlinkRate = r.Gauge("monitor_window_blink_rate")
	m.det.SetRegistry(r)
}

// Calibrate trains the per-driver drowsiness model from labelled
// enrolment windows (paper Section V: one awake and one drowsy
// recording per participant).
func (m *Monitor) Calibrate(awake, drowsy []WindowFeatures) error {
	return m.model.Train(awake, drowsy)
}

// Calibrated reports whether drowsiness classification is active.
func (m *Monitor) Calibrated() bool { return m.model.Trained() }

// Feed consumes one radar frame. It returns a detected blink (ok true)
// and, once each completed window's delivery lag has expired, a non-nil
// Assessment. When the assessment fails (a calibration-model error) the
// detected blink — already recorded — is still returned alongside the
// error rather than swallowed.
func (m *Monitor) Feed(frame []complex128) (ev BlinkEvent, ok bool, assessment *Assessment, err error) {
	ev, ok, err = m.det.Feed(frame)
	return m.afterFeed(ev, ok, err)
}

// FeedPlanes is Feed for a frame already split into float32 I/Q planes
// (pi and q planes of equal length) — the native layout of both the
// wire codec and the detection pipeline — so service-layer callers
// never materialise a []complex128 frame on the hot path.
func (m *Monitor) FeedPlanes(pi, pq []float32) (ev BlinkEvent, ok bool, assessment *Assessment, err error) {
	ev, ok, err = m.det.FeedPlanes(pi, pq)
	return m.afterFeed(ev, ok, err)
}

// afterFeed is the shared post-detector half of Feed and FeedPlanes:
// vital-sign sampling from the tracked bin, then window accounting.
func (m *Monitor) afterFeed(ev BlinkEvent, ok bool, err error) (BlinkEvent, bool, *Assessment, error) {
	if err != nil {
		return BlinkEvent{}, false, nil, err
	}
	// Feed the vital-sign estimator from the tracked bin; a bin change
	// invalidates its window.
	if z, bin, sampled := m.det.CurrentSample(); sampled {
		if core.BinOf(bin) != m.vitalsBin {
			m.vitals.Reset()
			m.vitalsBin = core.BinOf(bin)
		}
		m.vitals.Push(z)
	}
	return m.ingest(ev, ok)
}

// ingest records one delivered detection result and advances the window
// clock by one frame. It is the whole of Feed's accounting, split out so
// the window semantics can be driven directly by tests.
func (m *Monitor) ingest(ev BlinkEvent, ok bool) (BlinkEvent, bool, *Assessment, error) {
	if ok {
		e := ev
		if e.Time < m.winStart.Float64() {
			// Delivered later than the detector's documented lag bound
			// (pathological sustained ringing): its window is already
			// closed. Clamp it into the open window so it is counted
			// exactly once rather than in no window at all.
			e.Time = m.winStart.Float64()
		}
		m.events = append(m.events, e)
	}
	m.frame++
	var assessment *Assessment
	for m.windowComplete(ev, ok) {
		a, aerr := m.assess()
		if aerr != nil {
			return ev, ok, assessment, aerr
		}
		assessment = &a
	}
	return ev, ok, assessment, nil
}

// windowComplete reports whether every event belonging to the open
// window must have been delivered, so it can be assessed. That holds
// once the frame clock passes the boundary by the detector's delivery
// lag — or earlier, as soon as an event stamped past the boundary
// arrives: LEVD emits events in stamped order, so nothing earlier is
// still pending.
func (m *Monitor) windowComplete(ev BlinkEvent, ok bool) bool {
	if ok && ev.Time >= m.winEnd.Float64() {
		return true
	}
	return m.frame.SecondsAt(m.frameRate)-m.lagSec >= m.winEnd
}

// assess summarises the completed window [winStart, winEnd) and opens
// the next one. The rate divides by the window's actual span, so it
// stays a true blinks-per-minute whatever span a pending SetWindowSec
// gave this window.
func (m *Monitor) assess() (Assessment, error) {
	start, end := m.winStart, m.winEnd
	span := end - start
	var count int
	var durSum float64
	for _, e := range m.events {
		if e.Time >= start.Float64() && e.Time < end.Float64() {
			count++
			durSum += e.Duration
		}
	}
	f := WindowFeatures{BlinkRate: float64(count) / span.Float64() * 60}
	if count > 0 {
		f.MeanBlinkDuration = durSum / float64(count)
	}
	a := Assessment{WindowEnd: end.Float64(), Features: f, Posterior: 0.5}
	if est, ok := m.vitals.Last(); ok {
		a.Vitals = &est
	}
	if m.model.Trained() {
		drowsy, posterior, err := m.model.Classify(f)
		if err != nil {
			return Assessment{}, err
		}
		a.Drowsy = drowsy
		a.Posterior = posterior
		a.Calibrated = true
	}
	m.mAssessments.Inc()
	if a.Drowsy {
		m.mDrowsy.Inc()
	}
	m.gBlinkRate.Set(f.BlinkRate)
	// Open the next window, applying any pending span change at the
	// boundary so the accounting of the window just closed stayed exact.
	m.winStart = end
	if m.pendingWindowSec > 0 {
		m.windowSec = m.pendingWindowSec
		m.pendingWindowSec = 0
	}
	m.winEnd = end + m.windowSec
	// Trim events that can no longer affect any window (everything
	// before the just-closed window is history; keep roughly one span
	// of it for the Events accessor).
	cutoff := end - 2*span
	trimmed := m.events[:0]
	for _, e := range m.events {
		if e.Time >= cutoff.Float64() {
			trimmed = append(trimmed, e)
		}
	}
	m.events = trimmed
	return a, nil
}

// Events returns the blinks detected in the retained history (roughly
// the last two windows).
func (m *Monitor) Events() []BlinkEvent {
	out := make([]BlinkEvent, len(m.events))
	copy(out, m.events)
	return out
}

// NoteGap forwards an upstream frame loss (e.g. a transport sequence
// gap) to the detector. When the gap was too long to bridge and the
// detector discarded tracking state, the vital-sign window — which
// would otherwise silently span the hole — is invalidated too.
func (m *Monitor) NoteGap(missed uint64) {
	m.det.NoteGap(missed)
	if m.det.Health() != HealthTracking {
		m.vitals.Reset()
		m.vitalsBin = -1
	}
}

// Health reports the detector's operating state. Safe to call from any
// goroutine while Feed runs.
func (m *Monitor) Health() HealthState { return m.det.Health() }

// InputStats reports the detector's input-sanitization counters.
func (m *Monitor) InputStats() InputStats { return m.det.InputStats() }

// Detector exposes the underlying pipeline for diagnostics.
func (m *Monitor) Detector() *Detector { return m.det }
