package blinkradar

import (
	"fmt"

	"blinkradar/internal/obs"
	"blinkradar/internal/vitals"
)

// Monitor is the highest-level API: a streaming drowsy-driving monitor
// that consumes radar frames, detects blinks, maintains the rolling
// blink-rate window, and — once calibrated — raises drowsiness
// assessments. It composes a Detector with a DrowsinessModel exactly as
// the in-car deployment does. Monitor is not safe for concurrent use.
type Monitor struct {
	det       *Detector
	model     *DrowsinessModel
	windowSec float64
	frameRate float64

	vitals    *vitals.Monitor
	vitalsBin int

	events []BlinkEvent
	frame  int

	// Metrics (nil-safe no-ops until SetRegistry attaches a registry).
	mAssessments *obs.Counter
	mDrowsy      *obs.Counter
	gBlinkRate   *obs.Gauge
}

// Assessment is the monitor's rolling judgement for the latest
// completed window.
type Assessment struct {
	// WindowEnd is the end time of the assessed window in seconds.
	WindowEnd float64
	// Features are the window's blink statistics.
	Features WindowFeatures
	// Drowsy is the classification (false when the model is not
	// calibrated).
	Drowsy bool
	// Posterior is the drowsy probability under equal priors (0.5
	// when uncalibrated).
	Posterior float64
	// Calibrated reports whether a trained model produced the
	// judgement.
	Calibrated bool
	// Vitals carries the latest vital-sign estimate from the same
	// radar stream, when one is available.
	Vitals *VitalsEstimate
}

// NewMonitor builds a monitor for frames with numBins range bins at
// frameRate frames per second, assessing drowsiness over windows of
// windowSec seconds (the paper uses 60).
func NewMonitor(cfg Config, numBins int, frameRate, windowSec float64, opts ...Option) (*Monitor, error) {
	if windowSec <= 0 {
		return nil, fmt.Errorf("blinkradar: window must be positive, got %g", windowSec)
	}
	det, err := NewDetector(cfg, numBins, frameRate, opts...)
	if err != nil {
		return nil, err
	}
	vm, err := vitals.NewMonitor(frameRate, 30, 5)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		det:       det,
		model:     &DrowsinessModel{},
		windowSec: windowSec,
		frameRate: frameRate,
		vitals:    vm,
		vitalsBin: -1,
	}, nil
}

// SetRegistry attaches an observability registry to the monitor and
// its detector. Call before feeding frames. Exported metrics (plus the
// core_* set from the Detector):
//
//	monitor_assessments_total    completed window assessments
//	monitor_drowsy_total         windows classified drowsy
//	monitor_window_blink_rate    blinks/min of the latest window
func (m *Monitor) SetRegistry(r *obs.Registry) {
	m.mAssessments = r.Counter("monitor_assessments_total")
	m.mDrowsy = r.Counter("monitor_drowsy_total")
	m.gBlinkRate = r.Gauge("monitor_window_blink_rate")
	m.det.SetRegistry(r)
}

// Calibrate trains the per-driver drowsiness model from labelled
// enrolment windows (paper Section V: one awake and one drowsy
// recording per participant).
func (m *Monitor) Calibrate(awake, drowsy []WindowFeatures) error {
	return m.model.Train(awake, drowsy)
}

// Calibrated reports whether drowsiness classification is active.
func (m *Monitor) Calibrated() bool { return m.model.Trained() }

// Feed consumes one radar frame. It returns a detected blink (ok true)
// and, at each window boundary, a non-nil Assessment.
func (m *Monitor) Feed(frame []complex128) (ev BlinkEvent, ok bool, assessment *Assessment, err error) {
	ev, ok, err = m.det.Feed(frame)
	if err != nil {
		return BlinkEvent{}, false, nil, err
	}
	if ok {
		m.events = append(m.events, ev)
	}
	// Feed the vital-sign estimator from the tracked bin; a bin change
	// invalidates its window.
	if z, bin, sampled := m.det.CurrentSample(); sampled {
		if bin != m.vitalsBin {
			m.vitals.Reset()
			m.vitalsBin = bin
		}
		m.vitals.Push(z)
	}
	m.frame++
	windowFrames := int(m.windowSec * m.frameRate)
	if windowFrames > 0 && m.frame%windowFrames == 0 {
		a, aerr := m.assess()
		if aerr != nil {
			return BlinkEvent{}, false, nil, aerr
		}
		assessment = &a
	}
	return ev, ok, assessment, nil
}

// assess summarises the just-completed window.
func (m *Monitor) assess() (Assessment, error) {
	end := float64(m.frame) / m.frameRate
	start := end - m.windowSec
	var count int
	var durSum float64
	for _, e := range m.events {
		if e.Time >= start && e.Time < end {
			count++
			durSum += e.Duration
		}
	}
	f := WindowFeatures{BlinkRate: float64(count) / m.windowSec * 60}
	if count > 0 {
		f.MeanBlinkDuration = durSum / float64(count)
	}
	a := Assessment{WindowEnd: end, Features: f, Posterior: 0.5}
	if est, ok := m.vitals.Last(); ok {
		a.Vitals = &est
	}
	if m.model.Trained() {
		drowsy, posterior, err := m.model.Classify(f)
		if err != nil {
			return Assessment{}, err
		}
		a.Drowsy = drowsy
		a.Posterior = posterior
		a.Calibrated = true
	}
	m.mAssessments.Inc()
	if a.Drowsy {
		m.mDrowsy.Inc()
	}
	m.gBlinkRate.Set(f.BlinkRate)
	// Trim events that can no longer affect any window.
	cutoff := end - 2*m.windowSec
	trimmed := m.events[:0]
	for _, e := range m.events {
		if e.Time >= cutoff {
			trimmed = append(trimmed, e)
		}
	}
	m.events = trimmed
	return a, nil
}

// Events returns the blinks detected in the retained history (roughly
// the last two windows).
func (m *Monitor) Events() []BlinkEvent {
	out := make([]BlinkEvent, len(m.events))
	copy(out, m.events)
	return out
}

// NoteGap forwards an upstream frame loss (e.g. a transport sequence
// gap) to the detector. When the gap was too long to bridge and the
// detector discarded tracking state, the vital-sign window — which
// would otherwise silently span the hole — is invalidated too.
func (m *Monitor) NoteGap(missed uint64) {
	m.det.NoteGap(missed)
	if m.det.Health() != HealthTracking {
		m.vitals.Reset()
		m.vitalsBin = -1
	}
}

// Health reports the detector's operating state. Safe to call from any
// goroutine while Feed runs.
func (m *Monitor) Health() HealthState { return m.det.Health() }

// InputStats reports the detector's input-sanitization counters.
func (m *Monitor) InputStats() InputStats { return m.det.InputStats() }

// Detector exposes the underlying pipeline for diagnostics.
func (m *Monitor) Detector() *Detector { return m.det }
