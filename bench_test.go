// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks of the pipeline's hot paths. Each
// experiment bench runs the same code as cmd/experiments and reports
// the headline statistic through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as a results regeneration pass. The heavyweight population
// sweeps iterate full synthetic captures; expect seconds per bench.
package blinkradar_test

import (
	"math"
	"math/rand"
	"testing"

	"blinkradar"
	"blinkradar/internal/core"
	"blinkradar/internal/dsp"
	"blinkradar/internal/experiments"
	"blinkradar/internal/iq"
)

// benchCfg is the paper-faithful pipeline configuration shared by all
// experiment benches.
var benchCfg = core.DefaultConfig()

func BenchmarkTable1BlinkFrequency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		var night float64
		for _, n := range r.Night {
			night += float64(n)
		}
		b.ReportMetric(night/float64(len(r.Night)), "drowsy-blinks/min")
	}
}

func BenchmarkFig5TransmitPulse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BandwidthHz/1e9, "GHz-bandwidth")
	}
}

func BenchmarkFig6RangeProfile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Peaks)), "profile-peaks")
	}
}

// BenchmarkFig7NoiseReduction times the noise-reduction cascade itself:
// the Fig. 7 waveforms are built once outside the timed loop and the
// reusable Cascade filters them with caller-owned buffers, so the loop
// body is the pipeline's actual per-profile denoising cost.
func BenchmarkFig7NoiseReduction(b *testing.B) {
	clean, noisy := experiments.Fig7Waveforms(1)
	cascade, err := core.NewCascade(26, 0.04, 50)
	if err != nil {
		b.Fatal(err)
	}
	filtered := make([]float64, len(noisy))
	// Warm-up sizes the cascade's lazily-allocated scratch so the timed
	// loop measures the steady-state cost even at -benchtime=1x (the CI
	// benchdiff gate holds this at 0 allocs/op).
	if err := cascade.Apply(filtered, noisy); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cascade.Apply(filtered, noisy); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(dsp.SNRdB(clean, filtered)-dsp.SNRdB(clean, noisy), "dB-gain")
}

func BenchmarkFig8BackgroundSubtraction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SuppressionDB(), "dB-suppression")
	}
}

func BenchmarkFig9IQTrajectory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ClosingAmpDelta, "closing-amp-delta")
	}
}

// BenchmarkFig10BinSelection times eye-bin selection itself: the
// blink-free capture is generated and preprocessed once outside the
// timed loop, so the loop body is the variance-plus-arc-scoring sweep
// the streaming detector pays at each (re)selection.
func BenchmarkFig10BinSelection(b *testing.B) {
	spec := blinkradar.DefaultSpec()
	spec.Seed = 1
	spec.Duration = 30
	// As in Fig. 10: essentially blink-free, selection must work from
	// the embedded interference alone.
	spec.Subject.AwakeStats.RatePerMin = 0.2
	spec.Subject.AwakeStats.LongGapProb = 0
	capture, err := blinkradar.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	pre, err := core.PreprocessMatrix(benchCfg, capture.Frames)
	if err != nil {
		b.Fatal(err)
	}
	var best core.BinScore
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, err = core.SelectBinMatrix(benchCfg, pre)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	diff := best.Bin - capture.EyeBin
	if diff < 0 {
		diff = -diff
	}
	b.ReportMetric(float64(diff), "bins-off")
}

func BenchmarkFig11RealtimeTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Detections)), "detections")
	}
}

func BenchmarkFig13aBlinkAccuracyCDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13a(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary.Median*100, "median-acc-%")
	}
}

func BenchmarkFig13bDrowsyAccuracyCDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13b(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Summary.Median*100, "median-acc-%")
	}
}

func BenchmarkFig15aMissedRuns(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15a(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.RunRates) > 0 {
			b.ReportMetric(r.RunRates[0]*100, "single-miss-%")
		}
	}
}

func BenchmarkFig15bDistance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15b(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[len(r.Points)-1].Summary.Median*100, "acc-at-0.8m-%")
	}
}

func BenchmarkFig15cElevation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15c(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[2].Summary.Median*100, "acc-at-30deg-%")
	}
}

func BenchmarkFig15dAngle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15d(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[1].Summary.Median*100, "acc-at-15deg-%")
	}
}

func BenchmarkFig16aGlasses(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16a(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[2].Summary.Median*100, "acc-sunglasses-%")
	}
}

func BenchmarkFig16bRoadTypes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16b(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[len(r.Points)-1].Summary.Median*100, "acc-bumpy-%")
	}
}

func BenchmarkFig16cEyeSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16c(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Summary.Median*100, "acc-smallest-eye-%")
	}
}

func BenchmarkFig16dWindow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16d(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Accuracy[0]*100, "acc-1min-window-%")
	}
}

func BenchmarkAblationBinSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBinSelection(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((r.Full.Median-r.Variant.Median)*100, "advantage-pp")
	}
}

func BenchmarkAblationWaveform(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationWaveform(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((rs[0].Full.Median-rs[0].Variant.Median)*100, "advantage-pp")
	}
}

func BenchmarkAblationAdaptive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationAdaptiveUpdate(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((r.Full.Median-r.Variant.Median)*100, "advantage-pp")
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationThreshold(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((rs[len(rs)-1].Full.Median-rs[len(rs)-1].Variant.Median)*100, "advantage-pp")
	}
}

func BenchmarkExtVitals(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtVitals(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.RespWithinBPM), "resp-within-2bpm")
	}
}

func BenchmarkExtDeviceVibration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtDeviceVibration(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[1].Summary.Median*100, "acc-at-0.05mm-%")
	}
}

// --- Microbenchmarks of the pipeline hot paths ---

// benchCapture caches one capture for the micro benches.
func benchCapture(b *testing.B, duration float64) *blinkradar.Capture {
	b.Helper()
	spec := blinkradar.DefaultSpec()
	spec.Duration = duration
	spec.Seed = 1234
	capture, err := blinkradar.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return capture
}

func BenchmarkScenarioGenerate(b *testing.B) {
	spec := blinkradar.DefaultSpec()
	spec.Duration = 60
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i)
		if _, err := blinkradar.Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorFeedFrame times the production per-frame cost: the
// wire codec decodes float32 I/Q planes and the fleet path feeds them
// straight through FeedPlanes, so the planes are pre-split outside the
// timed loop exactly as DecodePlanes would hand them over. The legacy
// complex boundary (which pays an extra narrowing copy) is measured
// separately by BenchmarkDetectorFeedComplex.
func BenchmarkDetectorFeedFrame(b *testing.B) {
	capture := benchCapture(b, 120)
	det, err := blinkradar.NewDetector(benchCfg, capture.Frames.NumBins(), capture.Frames.FrameRate)
	if err != nil {
		b.Fatal(err)
	}
	frames := capture.Frames.Data
	bins := capture.Frames.NumBins()
	planeI := make([][]float32, len(frames))
	planeQ := make([][]float32, len(frames))
	for k, frame := range frames {
		planeI[k] = make([]float32, bins)
		planeQ[k] = make([]float32, bins)
		for i, z := range frame {
			planeI[k][i] = float32(real(z))
			planeQ[k][i] = float32(imag(z))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(frames)
		if _, _, err := det.FeedPlanes(planeI[k], planeQ[k]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorFeedComplex is the compatibility []complex128 Feed
// boundary: FeedPlanes plus one narrowing split of the frame.
func BenchmarkDetectorFeedComplex(b *testing.B) {
	capture := benchCapture(b, 120)
	det, err := blinkradar.NewDetector(benchCfg, capture.Frames.NumBins(), capture.Frames.FrameRate)
	if err != nil {
		b.Fatal(err)
	}
	frames := capture.Frames.Data
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.Feed(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusedCascade isolates the fused float32 Fig. 7 kernel (the
// folded Hamming FIR with the in-line ring moving average) on one
// 2048-sample profile — the same shape Fig7NoiseReduction pushes
// through the float64 reference cascade.
func BenchmarkFusedCascade(b *testing.B) {
	_, noisy := experiments.Fig7Waveforms(1)
	fused, err := dsp.NewFusedCascade(26, 0.04, 50)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, len(noisy))
	for i, v := range noisy {
		x[i] = float32(v)
	}
	dst := make([]float32, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fused.ApplyInto32(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineDetect60s(b *testing.B) {
	capture := benchCapture(b, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := blinkradar.Detect(benchCfg, capture.Frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreprocessorProcess isolates the per-frame preprocessing
// cost; with reused scratch buffers it must run allocation-free.
func BenchmarkPreprocessorProcess(b *testing.B) {
	capture := benchCapture(b, 20)
	p, err := core.NewPreprocessor(benchCfg, capture.Frames.NumBins(), capture.Frames.FrameRate)
	if err != nil {
		b.Fatal(err)
	}
	frames := capture.Frames.Data
	frame := make([]complex128, capture.Frames.NumBins())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(frame, frames[i%len(frames)])
		if err := p.Process(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlidingMoments measures the tracker's steady-state moment
// kernel at the deployed window size: one push/evict pair per frame, an
// O(1) Pratt solve from the cached sums every refit interval, and the
// periodic exact renormalization pass, all amortised into the per-frame
// figure. The batch fit this replaces costs O(window) per refit.
func BenchmarkSlidingMoments(b *testing.B) {
	cfg := core.DefaultConfig()
	window := cfg.FitWindowFrames
	refitEvery := cfg.RefitIntervalFrames
	win := make([]complex128, window)
	for i := range win {
		// A noisy arc, the geometry the tracker actually sees.
		th := 0.4 * math.Sin(2*math.Pi*float64(i)/float64(window))
		win[i] = complex(2+math.Cos(th)+1e-3*float64(i%7), 1+math.Sin(th))
	}
	mom := iq.NewSlidingMoments(window)
	for _, z := range win {
		mom.Push(z)
	}
	pos := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mom.Evict(win[pos])
		mom.Push(win[pos])
		pos++
		if pos == window {
			pos = 0
		}
		if mom.NeedsRenorm() {
			mom.Renormalize(win)
		}
		if i%refitEvery == 0 {
			if _, err := mom.FitPratt(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamingMedian measures the motion-restart gate's median
// kernel at the deployed window size (two seconds of frames): one
// sorted-ring remove/insert plus a median read per frame.
func BenchmarkStreamingMedian(b *testing.B) {
	capacity := int(core.DefaultConfig().ColdStartFrames) // ~2 s of frames
	if capacity%2 == 0 {
		capacity++
	}
	med, err := dsp.NewStreamingMedian(capacity)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for i := 0; i < capacity; i++ {
		med.Push(vals[i])
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		med.Push(vals[i%len(vals)])
		sink += med.Median()
	}
	if math.IsNaN(sink) {
		b.Fatal("median went NaN")
	}
}

// benchBatch runs DetectBatch over 8 independent 20 s captures at the
// given parallelism. Comparing the serial and parallel variants gives
// the batch-throughput speedup on multicore hosts.
func benchBatch(b *testing.B, parallelism int) {
	b.Helper()
	captures := make([]*blinkradar.FrameMatrix, 8)
	for i := range captures {
		spec := blinkradar.DefaultSpec()
		spec.Subject = blinkradar.NewSubject(i + 1)
		spec.Duration = 20
		spec.Seed = int64(1000 + i)
		capture, err := blinkradar.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		captures[i] = capture.Frames
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blinkradar.DetectBatch(benchCfg, captures, parallelism); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectBatch8Serial(b *testing.B)   { benchBatch(b, 1) }
func BenchmarkDetectBatch8Parallel(b *testing.B) { benchBatch(b, 0) }
