package blinkradar_test

import (
	"fmt"
	"log"

	"blinkradar"
)

// Example demonstrates the minimal simulate-detect-score loop. The
// output is deterministic because the scenario seed fixes every random
// draw in the capture.
func Example() {
	spec := blinkradar.DefaultSpec()
	spec.Subject = blinkradar.NewSubject(2)
	spec.Duration = 60
	spec.Seed = 7

	capture, err := blinkradar.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	events, _, err := blinkradar.Detect(blinkradar.DefaultConfig(), capture.Frames)
	if err != nil {
		log.Fatal(err)
	}
	truth := blinkradar.TrimWarmup(capture.Truth, blinkradar.DefaultWarmup)
	m := blinkradar.Match(truth, events, 0)
	fmt.Printf("accuracy %.0f%% over %d blinks\n", m.Accuracy()*100, len(truth))
	// Output: accuracy 100% over 14 blinks
}

// ExampleDrowsinessModel shows per-driver calibration from labelled
// windows and classification of a fresh window.
func ExampleDrowsinessModel() {
	awake := []blinkradar.WindowFeatures{
		{BlinkRate: 18, MeanBlinkDuration: 0.25},
		{BlinkRate: 20, MeanBlinkDuration: 0.28},
		{BlinkRate: 19, MeanBlinkDuration: 0.22},
	}
	drowsy := []blinkradar.WindowFeatures{
		{BlinkRate: 27, MeanBlinkDuration: 0.55},
		{BlinkRate: 25, MeanBlinkDuration: 0.60},
		{BlinkRate: 29, MeanBlinkDuration: 0.52},
	}
	var model blinkradar.DrowsinessModel
	if err := model.Train(awake, drowsy); err != nil {
		log.Fatal(err)
	}
	isDrowsy, _, err := model.Classify(blinkradar.WindowFeatures{BlinkRate: 28, MeanBlinkDuration: 0.57})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("drowsy:", isDrowsy)
	// Output: drowsy: true
}

// ExampleNewPulse inspects the paper's transmit pulse parameters.
func ExampleNewPulse() {
	p := blinkradar.NewPulse()
	fmt.Printf("carrier %.1f GHz, bandwidth %.1f GHz, resolution %.3f m\n",
		p.CarrierHz/1e9, p.BandwidthHz/1e9, p.RangeResolution())
	// Output: carrier 7.3 GHz, bandwidth 1.4 GHz, resolution 0.107 m
}
