// Package physio models the human signals that modulate the radar
// return: the aperiodic, sparse eye-blink process with distinct awake
// and drowsy statistics, eyelid closure kinematics, respiration,
// heartbeat-driven ballistocardiographic (BCG) head motion and
// voluntary posture shifts. The paper's detection pipeline never sees
// these models directly — they drive the rf channel's reflectors, and
// ground-truth blink timestamps are exported for evaluation.
package physio

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// State is the driver's alertness state.
type State int

const (
	// Awake is a vigilant driver: ~18-22 blinks/min, blink duration
	// typically under 400 ms (Caffier et al., paper Section II-A).
	Awake State = iota + 1
	// Drowsy is a fatigued driver: ~24-30 blinks/min with blink
	// durations of 400 ms and beyond (paper Table I).
	Drowsy
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Awake:
		return "awake"
	case Drowsy:
		return "drowsy"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Blink is a single ground-truth eye-blink event.
type Blink struct {
	// Start is the blink onset time in seconds from capture start.
	Start float64
	// Duration is the full blink duration (closing through reopening)
	// in seconds.
	Duration float64
}

// End returns the time the eye is fully reopened.
func (b Blink) End() float64 { return b.Start + b.Duration }

// BlinkStats parameterises the stochastic blink process.
type BlinkStats struct {
	// RatePerMin is the mean blink rate in blinks per minute.
	RatePerMin float64
	// RateJitter is the relative standard deviation of inter-blink
	// intervals (0.3 means intervals vary by ~30%).
	RateJitter float64
	// MeanDuration is the mean blink duration in seconds.
	MeanDuration float64
	// DurationJitter is the relative standard deviation of durations.
	DurationJitter float64
	// MinDuration floors the sampled duration (75 ms physiological
	// minimum per the paper).
	MinDuration float64
	// LongGapProb is the probability that any inter-blink interval is
	// replaced by a long staring gap, reproducing the "hundreds of ms
	// to tens of seconds" spread the paper highlights.
	LongGapProb float64
	// LongGapScale multiplies the base interval for long gaps.
	LongGapScale float64
}

// DefaultStats returns representative blink statistics for the given
// state, matching Table I (awake ~20/min, drowsy ~26/min) and the
// duration discussion in Section II-A.
func DefaultStats(s State) BlinkStats {
	switch s {
	case Drowsy:
		return BlinkStats{
			RatePerMin:     26,
			RateJitter:     0.35,
			MeanDuration:   0.50,
			DurationJitter: 0.25,
			MinDuration:    0.30,
			LongGapProb:    0.02,
			LongGapScale:   4,
		}
	default:
		return BlinkStats{
			RatePerMin:     20,
			RateJitter:     0.40,
			MeanDuration:   0.22,
			DurationJitter: 0.30,
			MinDuration:    0.075,
			LongGapProb:    0.06,
			LongGapScale:   5,
		}
	}
}

// Validate reports whether the statistics are usable.
func (s BlinkStats) Validate() error {
	switch {
	case s.RatePerMin <= 0:
		return fmt.Errorf("physio: blink rate must be positive, got %g", s.RatePerMin)
	case s.MeanDuration <= 0:
		return fmt.Errorf("physio: mean blink duration must be positive, got %g", s.MeanDuration)
	case s.MinDuration < 0 || s.MinDuration > s.MeanDuration*2:
		return fmt.Errorf("physio: min duration %g inconsistent with mean %g", s.MinDuration, s.MeanDuration)
	case s.RateJitter < 0 || s.DurationJitter < 0:
		return fmt.Errorf("physio: jitters must be non-negative")
	case s.LongGapProb < 0 || s.LongGapProb > 1:
		return fmt.Errorf("physio: long gap probability must be in [0,1], got %g", s.LongGapProb)
	}
	return nil
}

// GenerateBlinks samples a blink event sequence covering [0, duration)
// seconds. Events never overlap; each inter-blink interval is sampled
// as a jittered mean interval, occasionally replaced by a long staring
// gap. The result is sorted by start time.
func GenerateBlinks(stats BlinkStats, duration float64, rng *rand.Rand) ([]Blink, error) {
	if err := stats.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("physio: duration must be positive, got %g", duration)
	}
	meanInterval := 60 / stats.RatePerMin
	var blinks []Blink
	// Start at a random phase so captures do not all begin with an
	// immediate blink.
	t := rng.Float64() * meanInterval
	for t < duration {
		d := stats.MeanDuration * (1 + stats.DurationJitter*rng.NormFloat64())
		if d < stats.MinDuration {
			d = stats.MinDuration
		}
		if t+d > duration {
			break
		}
		blinks = append(blinks, Blink{Start: t, Duration: d})
		gap := meanInterval * (1 + stats.RateJitter*rng.NormFloat64())
		if rng.Float64() < stats.LongGapProb {
			gap *= stats.LongGapScale
		}
		// Physiological refractory: the eye stays open at least ~0.8 s
		// between spontaneous blinks.
		if gap < d+0.8 {
			gap = d + 0.8
		}
		t += gap
	}
	sort.Slice(blinks, func(i, j int) bool { return blinks[i].Start < blinks[j].Start })
	return blinks, nil
}

// Eyelid converts a blink sequence into a continuous closure waveform.
// Closure(t) is 0 with the eye fully open and 1 fully closed. A blink
// has three stages (paper Section II-B): a fast closing stage (~1/3 of
// the duration), a closed plateau, and a slower opening stage. Raised-
// cosine ramps keep the waveform differentiable like real lid motion.
type Eyelid struct {
	blinks []Blink
}

// NewEyelid returns an eyelid over the given (sorted, non-overlapping)
// blink events. The slice is copied.
func NewEyelid(blinks []Blink) *Eyelid {
	b := make([]Blink, len(blinks))
	copy(b, blinks)
	sort.Slice(b, func(i, j int) bool { return b[i].Start < b[j].Start })
	return &Eyelid{blinks: b}
}

// Blinks returns a copy of the underlying blink events.
func (e *Eyelid) Blinks() []Blink {
	out := make([]Blink, len(e.blinks))
	copy(out, e.blinks)
	return out
}

// Closure returns the lid closure fraction in [0, 1] at time t.
func (e *Eyelid) Closure(t float64) float64 {
	// Binary search for the last blink starting at or before t.
	i := sort.Search(len(e.blinks), func(i int) bool { return e.blinks[i].Start > t })
	if i == 0 {
		return 0
	}
	b := e.blinks[i-1]
	if t >= b.End() {
		return 0
	}
	frac := (t - b.Start) / b.Duration
	const (
		closeEnd = 0.30 // closing stage ends
		openBeg  = 0.60 // opening stage begins
	)
	switch {
	case frac < closeEnd:
		// Raised-cosine rise 0 -> 1.
		return 0.5 * (1 - math.Cos(math.Pi*frac/closeEnd))
	case frac < openBeg:
		return 1
	default:
		// Raised-cosine fall 1 -> 0 over the opening stage.
		p := (frac - openBeg) / (1 - openBeg)
		return 0.5 * (1 + math.Cos(math.Pi*p))
	}
}

// CountInWindow returns the number of blinks starting within
// [from, from+window).
func CountInWindow(blinks []Blink, from, window float64) int {
	count := 0
	for _, b := range blinks {
		if b.Start >= from && b.Start < from+window {
			count++
		}
	}
	return count
}

// RatePerMinute returns the mean blink rate of the event sequence over
// the given capture duration in seconds.
func RatePerMinute(blinks []Blink, duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(len(blinks)) / duration * 60
}

// MeanDuration returns the mean blink duration of the sequence, or 0
// when empty.
func MeanDuration(blinks []Blink) float64 {
	if len(blinks) == 0 {
		return 0
	}
	var sum float64
	for _, b := range blinks {
		sum += b.Duration
	}
	return sum / float64(len(blinks))
}
