package physio

import (
	"fmt"
	"math/rand"
)

// Glasses enumerates eyewear conditions evaluated in the paper
// (Fig. 16a).
type Glasses int

const (
	// NoGlasses is the default bare-eye condition.
	NoGlasses Glasses = iota + 1
	// MyopiaGlasses are clear corrective lenses (94% accuracy in the
	// paper).
	MyopiaGlasses
	// Sunglasses are tinted lenses (93% accuracy in the paper).
	Sunglasses
)

// String implements fmt.Stringer.
func (g Glasses) String() string {
	switch g {
	case NoGlasses:
		return "none"
	case MyopiaGlasses:
		return "myopia"
	case Sunglasses:
		return "sunglasses"
	default:
		return fmt.Sprintf("Glasses(%d)", int(g))
	}
}

// Attenuation returns the one-way amplitude transmission factor of the
// lens. RF at 7.3 GHz passes glass and plastic with modest loss;
// metal-coated sunglass lenses attenuate slightly more.
func (g Glasses) Attenuation() float64 {
	switch g {
	case MyopiaGlasses:
		return 0.93
	case Sunglasses:
		return 0.88
	default:
		return 1
	}
}

// Subject is one simulated participant: the anthropometric and
// physiological parameters that shape their radar signature.
type Subject struct {
	// ID labels the subject (1-based, as in the paper's S1..S12).
	ID int
	// EyeWidthM and EyeHeightM give the palpebral fissure dimensions
	// in metres (paper Fig. 16c: smallest tested 3.5 x 0.8 cm).
	EyeWidthM, EyeHeightM float64
	// EyelidReflectivity and EyeballReflectivity are the amplitude
	// reflection factors of closed lid skin versus the open-eye
	// cornea/sclera surface. Their contrast produces the blink
	// amplitude signature (Section II-B).
	EyelidReflectivity, EyeballReflectivity float64
	// BlinkPathDelta is the effective change in reflection path length
	// as the lid sweeps over the eye, in metres. The moving lid edge
	// dominates the return during closure, so the effective scatterer
	// advances by a few millimetres — more than the 0.5 mm lid
	// thickness alone.
	BlinkPathDelta float64
	// Respiration and Heartbeat describe the subject's vital signs.
	Respiration Respiration
	// Heartbeat drives the BCG head motion.
	Heartbeat Heartbeat
	// AwakeStats and DrowsyStats parameterise the subject's blink
	// process in each state.
	AwakeStats, DrowsyStats BlinkStats
	// Glasses is the eyewear condition.
	Glasses Glasses
}

// ReferenceEyeArea is the nominal eye area (m^2) that maps to a
// reflectivity scale of 1.
const ReferenceEyeArea = 0.045 * 0.012 // 4.5 cm x 1.2 cm

// EyeArea returns the exposed eye area in square metres.
func (s Subject) EyeArea() float64 { return s.EyeWidthM * s.EyeHeightM }

// EyeSizeScale returns the reflectivity scale relative to the reference
// eye area. The blink return comes from the whole moving periorbital
// patch whose extent grows sub-linearly with the palpebral fissure, so
// the scale follows the square root of the area ratio.
func (s Subject) EyeSizeScale() float64 {
	return sqrt(s.EyeArea() / ReferenceEyeArea)
}

// Stats returns the subject's blink statistics for the given state.
func (s Subject) Stats(state State) BlinkStats {
	if state == Drowsy {
		return s.DrowsyStats
	}
	return s.AwakeStats
}

// Validate reports whether the subject parameters are physically
// plausible.
func (s Subject) Validate() error {
	switch {
	case s.EyeWidthM <= 0 || s.EyeHeightM <= 0:
		return fmt.Errorf("physio: eye dimensions must be positive, got %g x %g", s.EyeWidthM, s.EyeHeightM)
	case s.EyelidReflectivity <= 0 || s.EyeballReflectivity <= 0:
		return fmt.Errorf("physio: reflectivities must be positive")
	case s.BlinkPathDelta <= 0:
		return fmt.Errorf("physio: blink path delta must be positive, got %g", s.BlinkPathDelta)
	}
	if err := s.AwakeStats.Validate(); err != nil {
		return fmt.Errorf("awake stats: %w", err)
	}
	if err := s.DrowsyStats.Validate(); err != nil {
		return fmt.Errorf("drowsy stats: %w", err)
	}
	return nil
}

// NewSubject deterministically generates subject number id. The same id
// always yields the same profile, so experiment populations are
// reproducible. Subjects vary in eye size, reflectivity contrast,
// vital-sign rates and blink habits.
func NewSubject(id int) Subject {
	rng := rand.New(rand.NewSource(int64(id)*7919 + 13))
	awake := DefaultStats(Awake)
	drowsy := DefaultStats(Drowsy)
	// Individual blink-habit variation (around Table I's spread).
	awake.RatePerMin += rng.NormFloat64() * 1.5
	drowsy.RatePerMin += rng.NormFloat64() * 2.0
	if awake.RatePerMin < 14 {
		awake.RatePerMin = 14
	}
	if drowsy.RatePerMin < awake.RatePerMin+3 {
		drowsy.RatePerMin = awake.RatePerMin + 3
	}
	return Subject{
		ID:                  id,
		EyeWidthM:           0.035 + 0.015*rng.Float64(), // 3.5-5.0 cm
		EyeHeightM:          0.008 + 0.006*rng.Float64(), // 0.8-1.4 cm
		EyelidReflectivity:  0.72 + 0.10*rng.Float64(),
		EyeballReflectivity: 0.38 + 0.08*rng.Float64(),
		BlinkPathDelta:      0.0110 + 0.0040*rng.Float64(), // 11-15 mm specular-point migration
		Respiration:         NewRespiration(rng),
		Heartbeat:           NewHeartbeat(rng),
		AwakeStats:          awake,
		DrowsyStats:         drowsy,
		Glasses:             NoGlasses,
	}
}

// Roster returns n deterministic subjects numbered 1..n.
func Roster(n int) []Subject {
	out := make([]Subject, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, NewSubject(i))
	}
	return out
}
