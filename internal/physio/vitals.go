package physio

import (
	"fmt"
	"math"
	"math/rand"
)

func sqrt(v float64) float64 { return math.Sqrt(v) }

// Respiration models chest breathing motion and its attenuated coupling
// into the head/eye region. The chest displaces 3-5 cm per breath
// (paper Section IV-D); the head sways by a small fraction of that.
// This periodic motion is the "embedded interference" the paper
// exploits: it makes the eye's I/Q samples trace an arc even when no
// blink occurs, which is how the eye's range bin is identified quickly.
type Respiration struct {
	// RateHz is the breathing rate in hertz (typical 0.2-0.3 Hz).
	RateHz float64
	// ChestAmplitude is the chest displacement amplitude in metres.
	ChestAmplitude float64
	// HeadCoupling is the fraction of chest motion reaching the head.
	HeadCoupling float64
	// Phase is the initial phase in radians.
	Phase float64
	// Harmonic2 is the relative amplitude of the second harmonic,
	// capturing the asymmetric inhale/exhale shape.
	Harmonic2 float64
}

// NewRespiration samples a plausible respiration profile.
func NewRespiration(rng *rand.Rand) Respiration {
	return Respiration{
		RateHz:         0.20 + 0.10*rng.Float64(),
		ChestAmplitude: 0.015 + 0.010*rng.Float64(), // 3-5 cm peak-to-peak
		HeadCoupling:   0.03 + 0.02*rng.Float64(),
		Phase:          rng.Float64() * 2 * math.Pi,
		Harmonic2:      0.15 + 0.10*rng.Float64(),
	}
}

// Chest returns the chest displacement in metres at time t.
func (r Respiration) Chest(t float64) float64 {
	w := 2 * math.Pi * r.RateHz
	return r.ChestAmplitude * (math.Sin(w*t+r.Phase) + r.Harmonic2*math.Sin(2*w*t+1.3*r.Phase))
}

// Head returns the respiration-coupled head displacement in metres.
func (r Respiration) Head(t float64) float64 {
	return r.HeadCoupling * r.Chest(t)
}

// Heartbeat models the ballistocardiographic (BCG) head motion: blood
// ejection moves the head by roughly 1 mm in sync with the heartbeat
// (paper Section IV-D).
type Heartbeat struct {
	// RateHz is the heart rate in hertz (typical 1.0-1.5 Hz).
	RateHz float64
	// Amplitude is the BCG head displacement amplitude in metres.
	Amplitude float64
	// Phase is the initial phase in radians.
	Phase float64
	// Harmonic2 and Harmonic3 shape the BCG waveform, which is far
	// from sinusoidal.
	Harmonic2, Harmonic3 float64
}

// NewHeartbeat samples a plausible heartbeat profile.
func NewHeartbeat(rng *rand.Rand) Heartbeat {
	return Heartbeat{
		RateHz:    1.0 + 0.5*rng.Float64(),
		Amplitude: 0.0008 + 0.0004*rng.Float64(), // ~1 mm
		Phase:     rng.Float64() * 2 * math.Pi,
		Harmonic2: 0.4 + 0.2*rng.Float64(),
		Harmonic3: 0.15 + 0.1*rng.Float64(),
	}
}

// Head returns the BCG head displacement in metres at time t.
func (h Heartbeat) Head(t float64) float64 {
	w := 2 * math.Pi * h.RateHz
	return h.Amplitude * (math.Sin(w*t+h.Phase) +
		h.Harmonic2*math.Sin(2*w*t+0.7*h.Phase) +
		h.Harmonic3*math.Sin(3*w*t+1.9*h.Phase))
}

// PostureShift is a single voluntary body movement: the driver settles
// into a new position over a short transition.
type PostureShift struct {
	// Time is the shift onset in seconds.
	Time float64
	// Delta is the change in radar-to-body range in metres (signed).
	Delta float64
	// Transition is how long the shift takes in seconds.
	Transition float64
}

// BodyMotion models the sequence of posture shifts over a capture. The
// cumulative displacement is a sum of smooth steps; large shifts are
// what force the tracker to re-acquire its viewing position.
type BodyMotion struct {
	shifts []PostureShift
}

// BodyMotionConfig parameterises posture-shift generation.
type BodyMotionConfig struct {
	// MeanInterval is the mean time between shifts in seconds.
	MeanInterval float64
	// MaxDelta bounds the per-shift range change in metres.
	MaxDelta float64
	// Transition is the shift transition time in seconds.
	Transition float64
}

// DefaultBodyMotionConfig returns small, occasional posture adjustments
// typical of a seated driver.
func DefaultBodyMotionConfig() BodyMotionConfig {
	return BodyMotionConfig{
		MeanInterval: 45,
		MaxDelta:     0.010,
		Transition:   1.2,
	}
}

// GenerateBodyMotion samples posture shifts over [0, duration).
func GenerateBodyMotion(cfg BodyMotionConfig, duration float64, rng *rand.Rand) (*BodyMotion, error) {
	if cfg.MeanInterval <= 0 {
		return nil, fmt.Errorf("physio: mean shift interval must be positive, got %g", cfg.MeanInterval)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("physio: duration must be positive, got %g", duration)
	}
	var shifts []PostureShift
	var cumulative float64
	t := cfg.MeanInterval * (0.5 + rng.Float64())
	for t < duration {
		// Mean-reverting: a seated driver adjusts around an equilibrium
		// posture rather than drifting away from the seat, so each
		// shift partially cancels the accumulated displacement.
		delta := -0.6*cumulative + (2*rng.Float64()-1)*cfg.MaxDelta
		cumulative += delta
		shifts = append(shifts, PostureShift{
			Time:       t,
			Delta:      delta,
			Transition: cfg.Transition,
		})
		t += cfg.MeanInterval * (0.5 + rng.Float64())
	}
	return &BodyMotion{shifts: shifts}, nil
}

// Shifts returns a copy of the posture shifts.
func (b *BodyMotion) Shifts() []PostureShift {
	out := make([]PostureShift, len(b.shifts))
	copy(out, b.shifts)
	return out
}

// Displacement returns the cumulative posture displacement in metres at
// time t. Each shift ramps in with a raised-cosine profile.
func (b *BodyMotion) Displacement(t float64) float64 {
	var d float64
	for _, s := range b.shifts {
		switch {
		case t <= s.Time:
			// Not started yet; later shifts start even later.
			return d
		case t >= s.Time+s.Transition:
			d += s.Delta
		default:
			p := (t - s.Time) / s.Transition
			d += s.Delta * 0.5 * (1 - math.Cos(math.Pi*p))
		}
	}
	return d
}
