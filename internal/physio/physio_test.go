package physio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateBlinksStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, state := range []State{Awake, Drowsy} {
		stats := DefaultStats(state)
		blinks, err := GenerateBlinks(stats, 600, rng)
		if err != nil {
			t.Fatal(err)
		}
		rate := RatePerMinute(blinks, 600)
		if math.Abs(rate-stats.RatePerMin) > stats.RatePerMin*0.3 {
			t.Errorf("%v rate %g/min, want ~%g", state, rate, stats.RatePerMin)
		}
		dur := MeanDuration(blinks)
		if math.Abs(dur-stats.MeanDuration) > stats.MeanDuration*0.4 {
			t.Errorf("%v mean duration %g, want ~%g", state, dur, stats.MeanDuration)
		}
	}
}

func TestDrowsyBlinksLongerAndMoreFrequent(t *testing.T) {
	// The core physiological contrast behind the whole system.
	rng := rand.New(rand.NewSource(2))
	awake, err := GenerateBlinks(DefaultStats(Awake), 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	drowsy, err := GenerateBlinks(DefaultStats(Drowsy), 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(drowsy) <= len(awake) {
		t.Errorf("drowsy blinks %d not above awake %d", len(drowsy), len(awake))
	}
	if MeanDuration(drowsy) <= MeanDuration(awake) {
		t.Errorf("drowsy duration %g not above awake %g", MeanDuration(drowsy), MeanDuration(awake))
	}
	if MeanDuration(drowsy) < 0.4 {
		t.Errorf("drowsy mean duration %g below the 400 ms threshold the paper cites", MeanDuration(drowsy))
	}
}

func TestGenerateBlinksInvariantsProperty(t *testing.T) {
	// Sorted, non-overlapping, refractory-separated, inside [0, dur].
	f := func(seed int64, drowsy bool) bool {
		rng := rand.New(rand.NewSource(seed))
		state := Awake
		if drowsy {
			state = Drowsy
		}
		const duration = 120.0
		blinks, err := GenerateBlinks(DefaultStats(state), duration, rng)
		if err != nil {
			return false
		}
		for i, b := range blinks {
			if b.Start < 0 || b.End() > duration {
				return false
			}
			if b.Duration < DefaultStats(state).MinDuration {
				return false
			}
			if i > 0 {
				gap := b.Start - blinks[i-1].End()
				if gap < 0.8-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateBlinksErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateBlinks(BlinkStats{}, 60, rng); err == nil {
		t.Fatal("zero stats must be rejected")
	}
	if _, err := GenerateBlinks(DefaultStats(Awake), 0, rng); err == nil {
		t.Fatal("zero duration must be rejected")
	}
}

func TestEyelidClosure(t *testing.T) {
	lid := NewEyelid([]Blink{{Start: 1, Duration: 0.4}})
	cases := []struct {
		t    float64
		want float64
	}{
		{0.5, 0},   // before
		{1.0, 0},   // onset
		{1.18, 1},  // plateau (30-60% of duration)
		{1.4, 0},   // fully reopened
		{2.0, 0},   // after
		{1.06, .5}, // mid-closing (raised cosine hits 0.5 at half stage)
	}
	for _, tc := range cases {
		if got := lid.Closure(tc.t); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("closure(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestEyelidClosureBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blinks, err := GenerateBlinks(DefaultStats(Awake), 60, rng)
		if err != nil {
			return false
		}
		lid := NewEyelid(blinks)
		for i := 0; i < 500; i++ {
			c := lid.Closure(rng.Float64() * 60)
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountInWindow(t *testing.T) {
	blinks := []Blink{{Start: 1}, {Start: 5}, {Start: 59}, {Start: 61}}
	if got := CountInWindow(blinks, 0, 60); got != 3 {
		t.Fatalf("count %d, want 3", got)
	}
	if got := CountInWindow(blinks, 60, 60); got != 1 {
		t.Fatalf("count %d, want 1", got)
	}
}

func TestRespirationAndHeartbeatBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRespiration(rng)
	h := NewHeartbeat(rng)
	maxChest := r.ChestAmplitude * (1 + r.Harmonic2)
	maxHead := h.Amplitude * (1 + h.Harmonic2 + h.Harmonic3)
	for i := 0; i < 1000; i++ {
		tt := float64(i) * 0.04
		if math.Abs(r.Chest(tt)) > maxChest+1e-9 {
			t.Fatalf("chest displacement %g beyond bound %g", r.Chest(tt), maxChest)
		}
		if math.Abs(r.Head(tt)) > r.HeadCoupling*maxChest+1e-9 {
			t.Fatal("head coupling bound violated")
		}
		if math.Abs(h.Head(tt)) > maxHead+1e-9 {
			t.Fatalf("BCG displacement %g beyond bound %g", h.Head(tt), maxHead)
		}
	}
	// Physiological ranges.
	if r.RateHz < 0.2 || r.RateHz > 0.3 {
		t.Errorf("respiration rate %g outside 0.2-0.3 Hz", r.RateHz)
	}
	if h.RateHz < 1.0 || h.RateHz > 1.5 {
		t.Errorf("heart rate %g outside 1.0-1.5 Hz", h.RateHz)
	}
	if h.Amplitude < 0.0005 || h.Amplitude > 0.002 {
		t.Errorf("BCG amplitude %g outside ~1 mm", h.Amplitude)
	}
}

func TestRespirationPeriodicity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := NewRespiration(rng)
	period := 1 / r.RateHz
	for i := 0; i < 50; i++ {
		tt := float64(i) * 0.13
		if math.Abs(r.Chest(tt)-r.Chest(tt+period)) > 1e-9 {
			t.Fatalf("chest not periodic at t=%g", tt)
		}
	}
}

func TestBodyMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultBodyMotionConfig()
	bm, err := GenerateBodyMotion(cfg, 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm.Shifts()) == 0 {
		t.Fatal("no posture shifts over 10 minutes")
	}
	if got := bm.Displacement(0); got != 0 {
		t.Fatalf("initial displacement %g, want 0", got)
	}
	// Mean reversion keeps the cumulative displacement bounded.
	for i := 0; i <= 600; i++ {
		if d := bm.Displacement(float64(i)); math.Abs(d) > 4*cfg.MaxDelta {
			t.Fatalf("displacement %g at t=%d escapes the mean-reverting bound", d, i)
		}
	}
}

func TestBodyMotionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateBodyMotion(BodyMotionConfig{}, 60, rng); err == nil {
		t.Fatal("zero interval must be rejected")
	}
	if _, err := GenerateBodyMotion(DefaultBodyMotionConfig(), 0, rng); err == nil {
		t.Fatal("zero duration must be rejected")
	}
}

func TestSubjectDeterminism(t *testing.T) {
	a := NewSubject(5)
	b := NewSubject(5)
	if a.EyeWidthM != b.EyeWidthM || a.Respiration.RateHz != b.Respiration.RateHz {
		t.Fatal("same id produced different subjects")
	}
	c := NewSubject(6)
	if a.EyeWidthM == c.EyeWidthM && a.BlinkPathDelta == c.BlinkPathDelta {
		t.Fatal("different ids produced identical subjects")
	}
}

func TestSubjectValidate(t *testing.T) {
	s := NewSubject(1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.EyeWidthM = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero eye width must be rejected")
	}
}

func TestRoster(t *testing.T) {
	r := Roster(12)
	if len(r) != 12 {
		t.Fatalf("roster size %d", len(r))
	}
	for i, s := range r {
		if s.ID != i+1 {
			t.Fatalf("roster[%d].ID = %d", i, s.ID)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("subject %d invalid: %v", s.ID, err)
		}
	}
}

func TestEyeSizeScaleMonotone(t *testing.T) {
	small := Subject{EyeWidthM: 0.035, EyeHeightM: 0.008}
	big := Subject{EyeWidthM: 0.05, EyeHeightM: 0.014}
	if small.EyeSizeScale() >= big.EyeSizeScale() {
		t.Fatal("eye size scale must grow with area")
	}
	ref := Subject{EyeWidthM: 0.045, EyeHeightM: 0.012}
	if math.Abs(ref.EyeSizeScale()-1) > 1e-9 {
		t.Fatalf("reference scale %g, want 1", ref.EyeSizeScale())
	}
}

func TestGlassesAttenuation(t *testing.T) {
	if NoGlasses.Attenuation() != 1 {
		t.Fatal("bare eye must not attenuate")
	}
	if !(Sunglasses.Attenuation() < MyopiaGlasses.Attenuation()) {
		t.Fatal("sunglasses must attenuate more than clear lenses")
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Awake.String():         "awake",
		Drowsy.String():        "drowsy",
		NoGlasses.String():     "none",
		MyopiaGlasses.String(): "myopia",
		Sunglasses.String():    "sunglasses",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("stringer %q, want %q", got, want)
		}
	}
	if State(99).String() == "" || Glasses(99).String() == "" {
		t.Error("unknown values must still render")
	}
}
