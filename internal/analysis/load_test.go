package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot locates the module root relative to this source file so the
// loader tests work regardless of the test working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func mustParse(t *testing.T, fset *token.FileSet, name, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLoadTypeChecksPackage(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "blinkradar/internal/dsp")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "blinkradar/internal/dsp" {
		t.Fatalf("import path = %q", p.ImportPath)
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if len(p.Files) == 0 || p.Types == nil {
		t.Fatal("package not populated")
	}
	if obj := p.Types.Scope().Lookup("MovingAverageInto"); obj == nil {
		t.Fatal("MovingAverageInto not in package scope")
	}
	if len(p.Info.Uses) == 0 {
		t.Fatal("no type info recorded")
	}
}

func TestLoadResolvesInternalImports(t *testing.T) {
	// core imports dsp, iq and rf; export-data importing must resolve
	// module-local packages, not only the standard library.
	pkgs, err := Load(repoRoot(t), "blinkradar/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
}

func TestSuppressionFiltering(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

//blinkvet:ignore demo -- amortised growth
var x = 1

var y = 2
`
	f := mustParse(t, fset, "demo.go", src)
	diags := []Diagnostic{
		{Analyzer: "demo", Pos: fset.Position(f.Decls[0].Pos()), Message: "on annotated line's successor"},
		{Analyzer: "other", Pos: fset.Position(f.Decls[0].Pos()), Message: "different analyzer"},
		{Analyzer: "demo", Pos: fset.Position(f.Decls[1].Pos()), Message: "unrelated line"},
	}
	got := filterSuppressed(fset, []*ast.File{f}, diags)
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics after filtering, want 2: %v", len(got), got)
	}
	for _, d := range got {
		if d.Message == "on annotated line's successor" {
			t.Fatalf("suppressed diagnostic survived: %v", d)
		}
	}
}
