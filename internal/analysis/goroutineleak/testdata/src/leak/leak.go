package leak

import (
	"context"
	"sync"
)

func worker(n int)                      {}
func serve(ctx context.Context) error   { return nil }
func pump(ch chan int)                  {}
func tracked(wg *sync.WaitGroup, n int) {}

// WaitGroupJoin is the canonical bounded-pool shape: compliant.
func WaitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(1)
		}()
	}
	wg.Wait()
}

// ChannelJoin signals completion through a channel: compliant.
func ChannelJoin() <-chan error {
	done := make(chan error, 1)
	go func() {
		done <- nil
	}()
	return done
}

// ContextTied passes its context into the body: compliant.
func ContextTied(ctx context.Context) {
	go func() {
		_ = serve(ctx)
	}()
}

// SelectLoop watches a cancellation channel: compliant.
func SelectLoop(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				worker(1)
			}
		}
	}()
}

// RangeDrain consumes a channel until it is closed: compliant.
func RangeDrain(ch chan int) {
	go func() {
		for v := range ch {
			worker(v)
		}
	}()
}

// Orphan has no join or cancellation path at all.
func Orphan() {
	go func() { // want "no join or cancellation path"
		worker(1)
	}()
}

// NamedOrphan launches a named call with only plain data arguments.
func NamedOrphan() {
	go worker(1) // want "passes no context, channel, or WaitGroup"
}

// NamedWithContext hands the callee a cancellable context: compliant.
func NamedWithContext(ctx context.Context) {
	go serve(ctx)
}

// NamedWithChannel hands the callee its feed channel: compliant.
func NamedWithChannel(ch chan int) {
	go pump(ch)
}

// NamedWithWaitGroup hands the callee the join handle: compliant.
func NamedWithWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go tracked(wg, 1)
}

// Waived is a deliberately detached goroutine.
func Waived() {
	//blinkvet:ignore goroutineleak -- fire-and-forget diagnostics flush
	go worker(1)
}
