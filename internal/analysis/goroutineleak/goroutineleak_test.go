package goroutineleak_test

import (
	"testing"

	"blinkradar/internal/analysis/analysistest"
	"blinkradar/internal/analysis/goroutineleak"
)

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goroutineleak.Analyzer, "leak")
}
