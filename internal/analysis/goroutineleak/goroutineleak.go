// Package goroutineleak flags `go` statements whose goroutine has no
// visible join or cancellation path — the bug class fixed twice in the
// streaming stack (the Server.Serve context watcher and the reconnect
// pump) before this analyzer existed.
//
// A goroutine launched as a function literal passes when its body
// contains any of:
//
//   - a channel send, close, receive, or range over a channel
//   - a select statement
//   - a call to (*sync.WaitGroup).Done
//   - any reference to a context.Context value (the lifetime is then
//     tied to a cancellable context, typically by passing it on)
//
// A goroutine launched as a named call passes when one of its
// arguments is a context.Context, a channel, or a *sync.WaitGroup —
// otherwise the analyzer cannot see a join path and reports it. Wrap
// such calls in a literal that calls wg.Done, or waive a genuinely
// detached goroutine with //blinkvet:ignore goroutineleak.
//
// The heuristic is deliberately syntactic and local: it cannot prove
// liveness, but every leak fixed in this repo so far would have been
// caught by it, and compliant code stays compliant by construction.
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"blinkradar/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "goroutines must be joined (WaitGroup/channel) or tied to a cancellable context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !litHasJoin(pass, lit) {
					pass.Reportf(g.Pos(), "goroutine has no join or cancellation path; tie it to a WaitGroup, channel, or context")
				}
				return true
			}
			if !callHasJoinArg(pass, g.Call) {
				pass.Reportf(g.Pos(), "goroutine call passes no context, channel, or WaitGroup; the caller cannot join or cancel it")
			}
			return true
		})
	}
	return nil
}

// litHasJoin scans a goroutine body for any construct that ties its
// lifetime to the launcher.
func litHasJoin(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					found = true
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isWaitGroup(t) {
					found = true
				}
			}
		case ast.Expr:
			if t := pass.TypesInfo.TypeOf(n); t != nil && isContext(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// callHasJoinArg reports whether a named `go f(args...)` call passes a
// context, channel, or WaitGroup the callee can use to terminate.
func callHasJoinArg(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if isContext(t) || isWaitGroup(t) {
			return true
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	return types.TypeString(t, nil) == "context.Context"
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.TypeString(t, nil) == "sync.WaitGroup"
}
