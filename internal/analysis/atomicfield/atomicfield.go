// Package atomicfield flags mixed atomic/plain access to struct
// fields — the race class go vet does not catch. Two rules, both
// per package:
//
//  1. A plain-typed field that is ever passed by address to a
//     sync/atomic function (atomic.AddUint64(&s.gen, 1)) is an atomic
//     field everywhere: any other plain read or write of it races with
//     the atomic accesses. This is the pre-PR-6 shape of the
//     Submit-vs-recycle generation counter bug.
//  2. A field declared with one of the typed atomics (atomic.Int32,
//     atomic.Uint64, ...) may only be touched through its methods or
//     by taking its address (which preserves the atomic-only API);
//     copying or reassigning the value reads and writes the underlying
//     word non-atomically.
//
// Seed sites in this repo: session.Session's generation and accounting
// counters, core.Detector.health, and the internal/obs metric types.
// A deliberate exception is waived with
// //blinkvet:ignore atomicfield -- <why>.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"blinkradar/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "forbid plain reads/writes of fields that are accessed atomically or declared atomic.*",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Fields declared with a typed atomic.
	typed := make(map[*types.Var]bool)
	for _, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && v.IsField() && isAtomicType(v.Type()) {
			typed[v] = true
		}
	}

	// Fields whose address is passed to a sync/atomic function, plus
	// the selector nodes sanctioned by appearing in such a call.
	atomicUsed := make(map[*types.Var]token.Position)
	sanctioned := make(map[token.Pos]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v := fieldOf(info, sel)
				if v == nil {
					continue
				}
				sanctioned[sel.Pos()] = true
				if _, seen := atomicUsed[v]; !seen {
					atomicUsed[v] = pass.Fset.Position(un.Pos())
				}
			}
			return true
		})
	}

	// Flag every unsanctioned use.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldOf(info, sel)
			if v == nil {
				return true
			}
			parent := parentOf(stack)
			if pos, ok := atomicUsed[v]; ok && !sanctioned[sel.Pos()] {
				pass.Reportf(sel.Sel.Pos(),
					"field %s is accessed with sync/atomic at %s; this plain access races with it — use sync/atomic everywhere",
					v.Name(), pos)
				return true
			}
			if typed[v] && !typedUseOK(parent) {
				pass.Reportf(sel.Sel.Pos(),
					"atomic field %s is copied or reassigned as a plain value; use its Load/Store/Add methods",
					v.Name())
			}
			return true
		})
	}
	return nil
}

// fieldOf resolves a selector to the struct field it reads, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// typedUseOK reports whether the parent node of an atomic.*-typed
// field selector keeps access inside the atomic API: a further
// selection (method call or method value) or an address-of.
func typedUseOK(parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// parentOf returns the node enclosing the top of the stack (the stack
// ends with the current node itself).
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// isAtomicType reports whether t is one of sync/atomic's typed
// wrappers (atomic.Int32, atomic.Uint64, atomic.Bool, atomic.Pointer,
// ...). atomic.Value counts too.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
