package atomicfield_test

import (
	"testing"

	"blinkradar/internal/analysis/analysistest"
	"blinkradar/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "atomicmix")
}
