// Package atomicmix reproduces the pre-PR-6 shape of the
// Submit-vs-recycle generation-counter race: a plain uint64 field
// incremented through sync/atomic in one place and read bare in
// another, plus misuse of the typed atomics.
package atomicmix

import "sync/atomic"

type session struct {
	gen    uint64
	epoch  uint64
	health atomic.Int32
	slots  int
}

// recycle bumps the generation atomically — this is the access that
// makes gen an atomic field everywhere.
func recycle(s *session) {
	atomic.AddUint64(&s.gen, 1)
	s.slots = 0
}

// submit is the racing half: the bare read go vet never flags.
func submit(s *session) bool {
	return s.gen&1 == 0 // want "field gen is accessed with sync/atomic at .*atomicmix.go:\\d+:\\d+; this plain access races with it"
}

// reset writes it bare, racing the same way.
func reset(s *session) {
	s.gen = 0 // want "field gen is accessed with sync/atomic"
}

// loadGen stays inside the atomic API: no finding.
func loadGen(s *session) uint64 {
	return atomic.LoadUint64(&s.gen)
}

// epoch is never touched atomically, so plain access is fine.
func bump(s *session) {
	s.epoch++
}

// typed-atomic rules: method calls and address-of keep the atomic API;
// value copies and reassignment do not.
func probe(s *session) int32 {
	return s.health.Load()
}

func probePtr(s *session) *atomic.Int32 {
	return &s.health
}

func snapshot(s *session) atomic.Int32 {
	return s.health // want "atomic field health is copied or reassigned as a plain value"
}

func clobber(s *session, v atomic.Int32) {
	s.health = v // want "atomic field health is copied or reassigned as a plain value"
}

// waived documents a deliberate pre-publication bare write.
func fresh() *session {
	s := &session{}
	s.gen = 0 //blinkvet:ignore atomicfield -- not yet published, no concurrent readers
	return s
}
