// Package confine mirrors the fleet layer's ownership shape: a
// session whose monitor and applied-window state belong to the feed
// worker, accessed from outside the domain by code that should have
// gone through an atomic.
package confine

// monitor stands in for the per-session Monitor owned by the worker.
type monitor struct{ frames int }

// Session's confined fields may only be touched by code reachable
// from the feed domain's entry points.
type Session struct {
	id  int
	mon *monitor //blinkradar:confined feed
	win float64  //blinkradar:confined feed
}

// newSession runs before the session is published: inside the domain.
//
//blinkradar:entry feed
func newSession(id int) *Session {
	return &Session{id: id, mon: &monitor{}, win: 1}
}

// drain is the worker entry; everything it reaches is in-domain.
//
//blinkradar:entry feed
func drain(s *Session) {
	feedOne(s)
}

func feedOne(s *Session) {
	s.mon.frames++
	s.win += 0.5
}

// Snapshot runs on the caller's goroutine: reading win races with the
// worker.
func Snapshot(s *Session) float64 {
	return s.win // want "field Session.win is confined to domain \"feed\"; Snapshot is not reachable from its entry points"
}

// Poke writes through the confined pointer from outside the domain.
func Poke(s *Session) {
	s.mon.frames = 0 // want "field Session.mon is confined to domain \"feed\"; Poke is not reachable"
}

// Clone initializes a confined field outside the domain via a
// composite literal.
func Clone(s *Session) *Session {
	return &Session{id: s.id, win: 0} // want "field Session.win is confined to domain \"feed\"; Clone is not reachable"
}

// Waived reads the pointer deliberately: the pointee is documented as
// internally synchronized.
func Waived(s *Session) *monitor {
	return s.mon //blinkvet:ignore shardconfine -- monitor offers its own atomic accessors
}

// ID touches only unconfined state: no finding.
func ID(s *Session) int { return s.id }

// orphan has a confined field whose domain declares no entries — a
// misconfiguration flagged at every access.
type orphan struct {
	state int //blinkradar:confined iso
}

func touch(o *orphan) int {
	return o.state // want "field orphan.state is confined to domain \"iso\", which has no //blinkradar:entry functions"
}
