// Package shardconfine enforces goroutine-confinement of struct
// fields. The fleet layer's correctness rests on state that is owned
// by exactly one execution domain — session.Session's monitor and
// applied-window state belong to the shard worker (under feedMu), the
// shard's drain scratch belongs to the worker goroutine — and the
// Submit-vs-recycle race PR 6 fixed was exactly a cross-domain access
// that slipped through review. This analyzer turns that class into a
// build break.
//
// A field is confined by annotating it
//
//	appliedWindow float64 //blinkradar:confined feed
//
// and the domain's owning code is rooted at functions annotated
//
//	//blinkradar:entry feed
//
// (the worker entry points: the code that runs on the owning
// goroutine, or that provably holds the ownership lock, such as a
// constructor before publication). Every access to a confined field —
// selector read or write, or composite-literal initialization — must
// occur in a function reachable from one of the domain's entries over
// the call graph. All other code must communicate through sync/atomic
// fields or the submit queue; a deliberate exception (for example a
// field whose pointee offers its own atomic, cross-goroutine-safe
// accessors) is waived with //blinkvet:ignore shardconfine -- <why>.
package shardconfine

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"blinkradar/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardconfine",
	Doc:  "restrict //blinkradar:confined fields to code reachable from their domain's //blinkradar:entry functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := pass.Facts
	if facts == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc flags confined-field accesses in one function unless the
// function is reachable from the field's domain entries.
func checkFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	fnObj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	id := analysis.FuncID(fnObj)
	facts := pass.Facts
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			owner := namedOf(sel.Recv())
			if owner == nil {
				return true
			}
			key := analysis.FieldKey(owner.Obj(), n.Sel.Name)
			report(pass, facts, id, decl.Name.Name, key, n.Sel.Pos(), owner.Obj().Name()+"."+n.Sel.Name)
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			owner := namedOf(t)
			if owner == nil {
				return true
			}
			if _, ok := owner.Underlying().(*types.Struct); !ok {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyID, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				key := analysis.FieldKey(owner.Obj(), keyID.Name)
				report(pass, facts, id, decl.Name.Name, key, kv.Key.Pos(), owner.Obj().Name()+"."+keyID.Name)
			}
		}
		return true
	})
}

// report emits the diagnostic when key names a confined field and the
// accessing function is outside the domain's reachable set.
func report(pass *analysis.Pass, facts *analysis.Facts, fnID, fnName, key string, pos token.Pos, display string) {
	domain, ok := facts.ConfinedDomain(key)
	if !ok {
		return
	}
	entries := facts.Entries(domain)
	if len(entries) == 0 {
		pass.Reportf(pos, "field %s is confined to domain %q, which has no //blinkradar:entry functions", display, domain)
		return
	}
	if facts.Reachable(domain)[fnID] {
		return
	}
	short := make([]string, len(entries))
	for i, e := range entries {
		short[i] = analysis.ShortFuncID(e)
	}
	pass.Reportf(pos,
		"field %s is confined to domain %q; %s is not reachable from its entry points (%s) — route this through an atomic or the submit queue",
		display, domain, fnName, strings.Join(short, ", "))
}

// namedOf unwraps pointers and aliases to the defined type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
