package shardconfine_test

import (
	"testing"

	"blinkradar/internal/analysis/analysistest"
	"blinkradar/internal/analysis/shardconfine"
)

func TestShardConfine(t *testing.T) {
	analysistest.Run(t, "testdata", shardconfine.Analyzer, "confine")
}
