package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds any type-checking problems. Analysis proceeds on
	// the partial information go/types still provides, but drivers
	// should surface these: findings in a package that does not compile
	// are best-effort.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves the patterns with the go tool and returns every
// matched package parsed and type-checked. Dependencies — including
// the standard library — are imported from compiler export data
// produced by `go list -export`, so loading works offline and needs
// nothing beyond the toolchain that built the module.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, t listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Info:       NewInfo(),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the first error too; the Error hook above already
	// recorded it, and partial type information remains usable.
	pkg.Types, _ = conf.Check(t.ImportPath, fset, files, pkg.Info)
	return pkg, nil
}

// NewInfo returns a types.Info with every map analyzers rely on
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
