// Facts: cross-function, cross-package knowledge for the analyzers.
//
// The per-function-body checks of PR 3 stop at every call: a
// //blinkradar:hotpath function calling an un-annotated helper that
// allocates passed silently. ComputeFacts closes that hole. It builds
// an intra-module call graph over the typed ASTs of every loaded
// package, extracts per-function local facts — allocates, blocks,
// spawns — from each body, and propagates them over the graph to a
// fixpoint, so a fact anywhere on a call chain is visible at every
// caller. Analyzers reach the result through Pass.Facts.
//
// Identity is by types.Func.FullName(), which is stable between a
// package type-checked from source and the same package imported from
// export data, so edges resolve across package boundaries within the
// module. Dynamic calls (func values, interface methods) cannot be
// resolved statically and contribute no edges; a short table assigns
// facts to the standard-library calls that matter (fmt/errors/log
// allocate, time.Sleep and WaitGroup/Cond waits block).
//
// ComputeFacts also collects the repo's source annotations in one
// place, because several analyzers need annotations from *other*
// packages (whose comments are not in the export data):
//
//	//blinkradar:hotpath            function: allocation-checked hot path
//	//blinkradar:coldpath           function: reviewed cold branch; the
//	                                transitive hot-path check does not
//	                                descend into it
//	//blinkradar:entry <domain>     function: entry point of a
//	                                confinement domain (shardconfine)
//	//blinkradar:confined <domain>  struct field: only reachable code of
//	                                the domain may touch it
//	//blinkradar:unit <name>        type: slow-time unit type (timeunit)
//	//blinkradar:convert            function: sanctioned unit conversion
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FactSet is a bitset of function facts.
type FactSet uint8

const (
	// FactAllocates: the function (or something it calls) performs a
	// heap allocation — append, make/new, map/slice literals, string
	// concatenation, interface boxing, capturing closures, go
	// statements, or a call into an allocating stdlib package.
	FactAllocates FactSet = 1 << iota
	// FactBlocks: the function may block — channel send/receive outside
	// a select with a default case, a select without default, or a call
	// into a known-blocking stdlib function.
	FactBlocks
	// FactSpawns: the function starts a goroutine.
	FactSpawns
)

// factNames orders the bits for String and ParseFact.
var factNames = []struct {
	bit  FactSet
	name string
}{
	{FactAllocates, "allocates"},
	{FactBlocks, "blocks"},
	{FactSpawns, "spawns"},
}

// Has reports whether every bit of q is set.
func (fs FactSet) Has(q FactSet) bool { return fs&q == q }

// String renders the set as "allocates|blocks|spawns" ("-" when empty).
func (fs FactSet) String() string {
	var parts []string
	for _, fn := range factNames {
		if fs&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// ParseFact resolves a fact name ("allocates", "blocks", "spawns").
func ParseFact(name string) (FactSet, bool) {
	for _, fn := range factNames {
		if fn.name == name {
			return fn.bit, true
		}
	}
	return 0, false
}

// Source-annotation markers shared by the analyzers.
const (
	MarkerHotPath  = "//blinkradar:hotpath"
	MarkerColdPath = "//blinkradar:coldpath"
	MarkerEntry    = "//blinkradar:entry"
	MarkerConfined = "//blinkradar:confined"
	MarkerUnit     = "//blinkradar:unit"
	MarkerConvert  = "//blinkradar:convert"
)

// FuncID is the stable cross-package identity of a function:
// types.Func.FullName(), e.g. "blinkradar/internal/core.tail" or
// "(*blinkradar/internal/session.Session).push".
func FuncID(fn *types.Func) string { return fn.FullName() }

// ShortFuncID compresses a FuncID for diagnostics by dropping the
// directory components of the package path:
// "(*blinkradar/internal/session.Session).push" → "(*session.Session).push".
func ShortFuncID(id string) string {
	open := ""
	s := id
	for len(s) > 0 && (s[0] == '(' || s[0] == '*') {
		open += s[:1]
		s = s[1:]
	}
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return open + s
}

// Facts is the suite-wide result of ComputeFacts.
type Facts struct {
	local   map[string]FactSet // facts from the function's own body
	set     map[string]FactSet // local ∪ facts of everything reachable
	defined map[string]bool    // has a source body in the analyzed set
	hot     map[string]bool    // //blinkradar:hotpath
	cold    map[string]bool    // //blinkradar:coldpath
	convert map[string]bool    // //blinkradar:convert

	edges   map[string][]string // caller → callees (static calls only)
	via     map[string]map[FactSet]string
	entries map[string][]string // confinement domain → entry FuncIDs
	reach   map[string]map[string]bool

	confined map[string]string // "pkgpath.Type.field" → domain
	units    map[string]string // "pkgpath.Type" → unit name
}

// Of returns the propagated fact set of fn.
func (f *Facts) Of(fn *types.Func) FactSet { return f.Set(FuncID(fn)) }

// Set returns the propagated fact set of a FuncID.
func (f *Facts) Set(id string) FactSet { return f.set[id] }

// Local returns only the facts derived from the function's own body.
func (f *Facts) Local(id string) FactSet { return f.local[id] }

// Defined reports whether the function's body was in the analyzed set,
// i.e. its facts are computed rather than assumed absent.
func (f *Facts) Defined(id string) bool { return f.defined[id] }

// Hot and Cold report the function's hot-path / cold-path annotation.
func (f *Facts) Hot(id string) bool  { return f.hot[id] }
func (f *Facts) Cold(id string) bool { return f.cold[id] }

// Convert reports the //blinkradar:convert annotation (timeunit).
func (f *Facts) Convert(id string) bool { return f.convert[id] }

// ConfinedDomain returns the confinement domain of a struct field,
// keyed as "pkgpath.Type.field" (see FieldKey).
func (f *Facts) ConfinedDomain(key string) (string, bool) {
	d, ok := f.confined[key]
	return d, ok
}

// Entries returns the //blinkradar:entry FuncIDs of a domain.
func (f *Facts) Entries(domain string) []string { return f.entries[domain] }

// UnitName resolves a type to its //blinkradar:unit name. Aliases and
// pointers are looked through; only defined (named) types match.
func (f *Facts) UnitName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	name, ok := f.units[typeKey(n.Obj())]
	return name, ok
}

// Reachable returns the set of FuncIDs reachable from the domain's
// entry points over the call graph (entries included). The closure is
// computed once per domain and cached.
func (f *Facts) Reachable(domain string) map[string]bool {
	if r, ok := f.reach[domain]; ok {
		return r
	}
	r := make(map[string]bool)
	work := append([]string(nil), f.entries[domain]...)
	for _, id := range work {
		r[id] = true
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range f.edges[id] {
			if !r[callee] {
				r[callee] = true
				work = append(work, callee)
			}
		}
	}
	if f.reach == nil {
		f.reach = make(map[string]map[string]bool)
	}
	f.reach[domain] = r
	return r
}

// Chain reconstructs a call chain from id to the origin of fact bit —
// the function whose own body (or stdlib table entry) introduced it.
// The returned names are ShortFuncIDs starting with id itself; nil when
// the function does not carry the fact.
func (f *Facts) Chain(id string, bit FactSet) []string {
	if f.set[id]&bit == 0 {
		return nil
	}
	out := []string{ShortFuncID(id)}
	cur := id
	for i := 0; i < 64; i++ { // bound against via-map cycles
		if f.local[cur]&bit != 0 || !f.defined[cur] {
			return out
		}
		next, ok := f.via[cur][bit]
		if !ok {
			return out
		}
		out = append(out, ShortFuncID(next))
		cur = next
	}
	return out
}

// FieldKey builds the confined-field identity for a field of a named
// struct type: "pkgpath.Type.field".
func FieldKey(obj *types.TypeName, field string) string {
	return typeKey(obj) + "." + field
}

func typeKey(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// ComputeFacts builds the call graph and fact sets over every package
// in pkgs. Facts are only as complete as the package set: run over the
// whole module (./...) for cross-package precision; a partial load
// simply leaves callees outside it undefined (no facts).
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		local:    make(map[string]FactSet),
		set:      make(map[string]FactSet),
		defined:  make(map[string]bool),
		hot:      make(map[string]bool),
		cold:     make(map[string]bool),
		convert:  make(map[string]bool),
		edges:    make(map[string][]string),
		via:      make(map[string]map[FactSet]string),
		entries:  make(map[string][]string),
		confined: make(map[string]string),
		units:    make(map[string]string),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			f.collectFile(pkg, file)
		}
	}
	f.propagate()
	return f
}

// markerArg returns the first argument of a marker comment line, or ""
// plus whether the marker is present at all.
func markerArg(cg *ast.CommentGroup, marker string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), marker)
		if !ok {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // longer marker, e.g. ":hotpathx"
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", true
		}
		return fields[0], true
	}
	return "", false
}

func (f *Facts) collectFile(pkg *Package, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			f.collectFunc(pkg, d)
		case *ast.GenDecl:
			if d.Tok == token.TYPE {
				f.collectTypes(pkg, d)
			}
		}
	}
}

func (f *Facts) collectTypes(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		for _, cg := range []*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment} {
			if name, ok := markerArg(cg, MarkerUnit); ok {
				if name == "" {
					name = ts.Name.Name
				}
				f.units[typeKey(obj)] = name
			}
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			domain := ""
			found := false
			for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if d, ok := markerArg(cg, MarkerConfined); ok && d != "" {
					domain, found = d, true
				}
			}
			if !found {
				continue
			}
			for _, name := range field.Names {
				f.confined[FieldKey(obj, name.Name)] = domain
			}
		}
	}
}

func (f *Facts) collectFunc(pkg *Package, decl *ast.FuncDecl) {
	fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	id := FuncID(fn)
	f.defined[id] = true
	if _, ok := markerArg(decl.Doc, MarkerHotPath); ok {
		f.hot[id] = true
	}
	if _, ok := markerArg(decl.Doc, MarkerColdPath); ok {
		f.cold[id] = true
	}
	if _, ok := markerArg(decl.Doc, MarkerConvert); ok {
		f.convert[id] = true
	}
	if domain, ok := markerArg(decl.Doc, MarkerEntry); ok && domain != "" {
		f.entries[domain] = append(f.entries[domain], id)
	}
	if decl.Body == nil {
		return
	}
	f.local[id] |= f.scanBody(pkg.Info, id, decl.Body)
}

// nonBlockingComms marks the communication statements of selects that
// carry a default case: those channel operations never block.
func nonBlockingComms(body ast.Node) map[ast.Node]bool {
	exempt := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			exempt[cc.Comm] = true
			// The receive expression inside an assignment or
			// expression-statement comm.
			switch s := cc.Comm.(type) {
			case *ast.AssignStmt:
				for _, rhs := range s.Rhs {
					exempt[ast.Unparen(rhs)] = true
				}
			case *ast.ExprStmt:
				exempt[ast.Unparen(s.X)] = true
			}
		}
		return true
	})
	return exempt
}

// scanBody extracts local facts and call edges from one function body.
// Function-literal bodies are folded into the enclosing declaration:
// for defer/argument closures that is exact, for stored/returned
// closures it over-approximates, which is the safe direction for a
// linter.
func (f *Facts) scanBody(info *types.Info, caller string, body ast.Node) FactSet {
	var facts FactSet
	exempt := nonBlockingComms(body)
	seen := make(map[string]bool)
	addEdge := func(callee string) {
		if callee == caller || seen[callee] {
			return
		}
		seen[callee] = true
		f.edges[caller] = append(f.edges[caller], callee)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append", "make", "new":
						facts |= FactAllocates
					}
					return true
				}
			}
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				// Conversion: boxing into an interface allocates.
				if types.IsInterface(tv.Type) && len(n.Args) == 1 {
					if at := info.TypeOf(n.Args[0]); at != nil && !types.IsInterface(at) {
						facts |= FactAllocates
					}
				}
				return true
			}
			if callee := Callee(info, n); callee != nil {
				id := FuncID(callee)
				if ext := stdlibFacts(callee); ext != 0 {
					// Seed the table entry as an undefined leaf node so
					// propagation and chain printing see it.
					f.set[id] |= ext
					f.local[id] |= ext
				}
				addEdge(id)
			}
			if boxesVariadic(info, n) {
				facts |= FactAllocates
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					facts |= FactAllocates
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						facts |= FactAllocates
					}
				}
			}
		case *ast.FuncLit:
			if CapturedVar(info, n) != "" {
				facts |= FactAllocates
			}
		case *ast.GoStmt:
			facts |= FactSpawns | FactAllocates
		case *ast.SendStmt:
			if !exempt[ast.Node(n)] {
				facts |= FactBlocks
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !exempt[ast.Node(n)] {
				facts |= FactBlocks
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					facts |= FactBlocks
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				facts |= FactBlocks
			}
		}
		return true
	})
	return facts
}

// Callee resolves a call expression to the static *types.Func it
// invokes: a package-level function, a method (by static receiver
// type), or a builtin-free identifier. Dynamic calls — func values,
// interface methods bound at runtime — return the interface method or
// nil; interface methods are never Defined, so they contribute no
// facts.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // qualified pkg.Func
		}
	}
	return nil
}

// boxesVariadic reports whether the call implicitly boxes arguments
// into a ...interface{} parameter.
func boxesVariadic(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis != token.NoPos {
		return false
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	return ok && types.IsInterface(slice.Elem()) && len(call.Args) >= sig.Params().Len()
}

// CapturedVar returns the name of a variable the closure captures from
// an enclosing function scope, or "" when the closure is capture-free
// (package-level and universe names are not captures).
func CapturedVar(info *types.Info, lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if p := v.Parent(); p == nil || p == types.Universe || p.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// stdlibFacts assigns facts to standard-library functions whose bodies
// are not analyzed. The table is deliberately small: entries the hot
// path plausibly meets, not a model of the whole library.
func stdlibFacts(fn *types.Func) FactSet {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0
	}
	switch pkg.Path() {
	case "fmt", "errors", "log":
		return FactAllocates
	case "time":
		if fn.Name() == "Sleep" {
			return FactBlocks
		}
		if fn.Name() == "After" || fn.Name() == "NewTimer" || fn.Name() == "NewTicker" {
			return FactAllocates
		}
	case "sync":
		switch FuncID(fn) {
		case "(*sync.WaitGroup).Wait", "(*sync.Cond).Wait":
			return FactBlocks
		}
	}
	return 0
}

// propagate closes the fact sets over the call graph: a worklist
// fixpoint in O(edges × facts).
func (f *Facts) propagate() {
	// Seed with local facts (table leaves were seeded during the scan).
	for id, fs := range f.local {
		f.set[id] |= fs
	}
	// Reverse edges for change-driven propagation.
	callers := make(map[string][]string)
	for caller, callees := range f.edges {
		for _, callee := range callees {
			callers[callee] = append(callers[callee], caller)
		}
	}
	work := make([]string, 0, len(f.set))
	for id := range f.set {
		work = append(work, id)
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		fs := f.set[id]
		for _, caller := range callers[id] {
			missing := fs &^ f.set[caller]
			if missing == 0 {
				continue
			}
			f.set[caller] |= missing
			for _, fn := range factNames {
				if missing&fn.bit == 0 {
					continue
				}
				if f.via[caller] == nil {
					f.via[caller] = make(map[FactSet]string)
				}
				if _, ok := f.via[caller][fn.bit]; !ok {
					f.via[caller][fn.bit] = id
				}
			}
			work = append(work, caller)
		}
	}
}
