// Package intocontract enforces the dsp package's buffer-reuse
// convention: an exported `...Into(dst, src)` function writes through a
// caller-owned destination, and overlapping dst/src silently corrupts
// the output (the FIR kernels read neighbouring input samples after
// their output positions have been written). Every exported Into API
// must therefore either
//
//   - guard against aliasing — compare &dst[0] == &src[0] (any
//     comparison of element addresses of two distinct slice
//     parameters counts), or call a helper whose name contains
//     "alias" — or
//   - declare itself alias-tolerant with //blinkradar:alias-unsafe in
//     its doc comment (for kernels that are genuinely in-place safe).
//
// Functions with fewer than two slice parameters are exempt: there is
// nothing to alias.
package intocontract

import (
	"go/ast"
	"go/types"
	"strings"

	"blinkradar/internal/analysis"
)

// Marker waives the check for a documented alias-tolerant API.
const Marker = "//blinkradar:alias-unsafe"

var Analyzer = &analysis.Analyzer{
	Name: "intocontract",
	Doc:  "exported ...Into APIs must check dst/src aliasing or declare //blinkradar:alias-unsafe",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !strings.HasSuffix(fn.Name.Name, "Into") || !fn.Name.IsExported() {
				continue
			}
			if hasMarker(fn) {
				continue
			}
			sliceParams := sliceParamNames(pass, fn)
			if len(sliceParams) < 2 {
				continue
			}
			if !hasAliasGuard(pass, fn, sliceParams) {
				pass.Reportf(fn.Name.Pos(),
					"exported %s writes through caller buffers without an aliasing check; compare element addresses of its slice parameters or annotate %s",
					fn.Name.Name, Marker)
			}
		}
	}
	return nil
}

func hasMarker(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Marker) {
			return true
		}
	}
	return false
}

// sliceParamNames returns the set of parameter objects with slice type.
func sliceParamNames(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// hasAliasGuard reports whether the body compares element addresses of
// two distinct slice parameters, or delegates to an alias helper.
func hasAliasGuard(pass *analysis.Pass, fn *ast.FuncDecl, params map[types.Object]bool) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			a, aok := elementAddrOf(pass, n.X, params)
			b, bok := elementAddrOf(pass, n.Y, params)
			if aok && bok && a != b {
				found = true
				return false
			}
		case *ast.CallExpr:
			name := calleeName(n)
			if !strings.Contains(strings.ToLower(name), "alias") {
				return true
			}
			distinct := make(map[types.Object]bool)
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil && params[obj] {
						distinct[obj] = true
					}
				}
			}
			if len(distinct) >= 2 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// elementAddrOf matches &p[i] where p is one of the slice parameters,
// returning the parameter object.
func elementAddrOf(pass *analysis.Pass, e ast.Expr, params map[types.Object]bool) (types.Object, bool) {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op.String() != "&" {
		return nil, false
	}
	idx, ok := u.X.(*ast.IndexExpr)
	if !ok {
		return nil, false
	}
	id, ok := idx.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !params[obj] {
		return nil, false
	}
	return obj, true
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
