package intocontract_test

import (
	"testing"

	"blinkradar/internal/analysis/analysistest"
	"blinkradar/internal/analysis/intocontract"
)

func TestIntoContract(t *testing.T) {
	analysistest.Run(t, "testdata", intocontract.Analyzer, "into")
}
