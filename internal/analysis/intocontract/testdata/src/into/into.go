package into

import "errors"

var errAlias = errors.New("dst aliases src")

// GuardedInto checks element addresses before writing: compliant.
func GuardedInto(dst, src []float64) error {
	if len(dst) == 0 || len(src) == 0 {
		return nil
	}
	if &dst[0] == &src[0] {
		return errAlias
	}
	copy(dst, src)
	return nil
}

// HelperInto delegates the check to an alias helper: compliant.
func HelperInto(dst, src []float64) error {
	if sliceAliases(dst, src) {
		return errAlias
	}
	copy(dst, src)
	return nil
}

// UncheckedInto writes without any guard.
func UncheckedInto(dst, src []float64) { // want "without an aliasing check"
	for i := range src {
		dst[i] = 2 * src[i]
	}
}

// DocumentedInto is explicitly in-place tolerant.
//
//blinkradar:alias-unsafe the loop reads src[i] before writing dst[i]
func DocumentedInto(dst, src []float64) {
	for i := range src {
		dst[i] = 2 * src[i]
	}
}

// ScaleInto has a single slice parameter: nothing to alias, exempt.
func ScaleInto(dst []float64, k float64) {
	for i := range dst {
		dst[i] *= k
	}
}

// unexportedInto is not part of the exported contract surface.
func unexportedInto(dst, src []float64) {
	copy(dst, src)
}

// SelfGuardInto compares the same parameter with itself, which proves
// nothing.
func SelfGuardInto(dst, src []float64) { // want "without an aliasing check"
	if len(dst) > 0 && &dst[0] == &dst[0] {
		return
	}
	copy(dst, src)
}

func sliceAliases(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}
