package ignorehygiene_test

import (
	"testing"

	"blinkradar/internal/analysis/analysistest"
	"blinkradar/internal/analysis/ignorehygiene"
)

func TestIgnoreHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", ignorehygiene.Analyzer, "ignores")
}
