// Package ignorehygiene keeps the suppression ledger honest. A
// //blinkvet:ignore comment silences an analyzer forever; the only
// thing standing between that and silent invariant rot is the comment
// explaining itself. Every suppression must therefore name the
// analyzers it waives and carry a reason:
//
//	//blinkvet:ignore hotpathalloc -- amortised warm-up growth
//
// Bare ignores still suppress (so a cleanup never un-silences old
// findings mid-flight) but are themselves diagnostics here, as are
// suppressions naming analyzers the driver does not know about —
// usually a typo that silences nothing while looking load-bearing.
package ignorehygiene

import (
	"blinkradar/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ignorehygiene",
	Doc:  "require //blinkvet:ignore comments to name analyzers and carry a ' -- <reason>' trailer",
	Run:  run,
}

// Known is the registry of analyzer names a suppression may cite. The
// driver populates it at start-up; when empty (for example under a
// fixture harness that registers nothing) unknown-name checking is
// skipped and only the structural rules apply.
var Known = map[string]bool{}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, _, hasReason, ok := analysis.ParseIgnore(c.Text)
				if !ok {
					continue
				}
				if len(names) == 0 {
					pass.Reportf(c.Pos(),
						"suppression names no analyzer; write %s <analyzer> -- <why>",
						analysis.IgnorePrefix)
					continue
				}
				if !hasReason {
					pass.Reportf(c.Pos(),
						"suppression of %v has no reason; append ' -- <why this finding is a false positive or accepted risk>'",
						names)
				}
				if len(Known) > 0 {
					for _, name := range names {
						if !Known[name] {
							pass.Reportf(c.Pos(), "suppression names unknown analyzer %q", name)
						}
					}
				}
			}
		}
	}
	return nil
}
