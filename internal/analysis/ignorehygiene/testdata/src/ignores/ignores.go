// Package ignores exercises suppression hygiene: every waiver must
// name its analyzers and justify itself.
package ignores

func good(n int) []int {
	return make([]int, n) //blinkvet:ignore hotpathalloc -- amortised growth, fixture
}

func goodMulti(n int) []int {
	return make([]int, n) //blinkvet:ignore hotpathalloc,metrichygiene -- shared scratch registered once
}

func bareNames(n int) []int {
	return make([]int, n) //blinkvet:ignore hotpathalloc // want "suppression of \\[hotpathalloc\\] has no reason"
}

func anonymous(n int) []int {
	return make([]int, n) //blinkvet:ignore // want "suppression names no analyzer"
}

func reasonOnly(n int) []int {
	return make([]int, n) //blinkvet:ignore -- looks justified but silences nothing // want "suppression names no analyzer"
}
