// Package metrichygiene enforces the obs registry discipline: metric
// handles are looked up once, at construction, under compile-time
// constant names. The registry's get-or-create lookup takes a lock and
// hashes the name — cheap at wiring time, poison in per-frame code —
// and dynamic names fragment dashboards and unbounded-grow the
// registry.
//
// For every call to (*obs.Registry).Counter, Gauge, or Histogram the
// analyzer requires:
//
//   - the metric name argument is a compile-time constant;
//   - the call is not inside a for/range loop;
//   - the call is not inside a //blinkradar:hotpath function (cache
//     the handle on the owning struct at construction instead).
package metrichygiene

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"blinkradar/internal/analysis"
	"blinkradar/internal/analysis/hotpathalloc"
)

var Analyzer = &analysis.Analyzer{
	Name: "metrichygiene",
	Doc:  "obs metrics must be registered at construction with constant names, never per-frame",
	Run:  run,
}

// registryMethods are the get-or-create lookups on obs.Registry.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	hot := isHotPath(fn)
	// loopDepth tracks how many enclosing for/range statements surround
	// the node being visited; a manual stack-walk keeps it exact.
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.CallExpr:
			checkCall(pass, fn, n, hot, loopDepth)
		}
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			walk(child, loopDepth)
			return false
		})
	}
	walk(fn.Body, 0)
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, hot bool, loopDepth int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || !isRegistry(recv) || len(call.Args) == 0 {
		return
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(), "metric name passed to %s must be a compile-time constant", sel.Sel.Name)
	}
	if loopDepth > 0 {
		pass.Reportf(call.Pos(), "metric registered inside a loop; look the handle up once at construction")
	}
	if hot {
		pass.Reportf(call.Pos(), "registry lookup in hot path %s; cache the %s handle on the owning struct", fn.Name.Name, sel.Sel.Name)
	}
}

// isRegistry matches obs.Registry (optionally behind a pointer) by
// package name and type name, so the check also applies to fixture
// packages that model the registry.
func isRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathalloc.Marker) {
			return true
		}
	}
	return false
}
