// Package obs models the real observability registry surface for the
// metrichygiene fixtures.
package obs

type Counter struct{ n uint64 }

func (c *Counter) Inc() { c.n++ }

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) { g.v = v }

type Histogram struct{ sum float64 }

func (h *Histogram) Observe(v float64) { h.sum += v }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter                       { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge                           { return &Gauge{} }
func (r *Registry) Histogram(name string, bounds []float64) *Histogram { return &Histogram{} }
