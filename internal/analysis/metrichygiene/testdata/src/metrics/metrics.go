package metrics

import (
	"fmt"

	"obs"
)

const histName = "pipeline_stage_seconds"

type pipeline struct {
	frames  *obs.Counter
	latency *obs.Histogram
}

// newPipeline registers once at construction with constant names:
// compliant.
func newPipeline(r *obs.Registry) *pipeline {
	return &pipeline{
		frames:  r.Counter("pipeline_frames_total"),
		latency: r.Histogram(histName, []float64{0.001, 0.01}),
	}
}

// process uses the cached handles per frame: compliant.
//
//blinkradar:hotpath
func (p *pipeline) process(v float64) {
	p.frames.Inc()
	p.latency.Observe(v)
}

// dynamicName builds the metric name at run time.
func dynamicName(r *obs.Registry, shard int) *obs.Counter {
	return r.Counter(fmt.Sprintf("shard_%d_frames", shard)) // want "compile-time constant"
}

// inLoop registers per iteration.
func inLoop(r *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("loop_frames_total").Inc() // want "inside a loop"
	}
}

// hotLookup re-resolves the handle on the per-frame path.
//
//blinkradar:hotpath
func hotLookup(r *obs.Registry, v float64) {
	r.Gauge("frame_value").Set(v) // want "registry lookup in hot path"
}

// otherReceiver has the same method names on an unrelated type: no
// findings.
type fake struct{}

func (fake) Counter(name string) int { return len(name) }

func unrelated(f fake, names []string) int {
	total := 0
	for _, n := range names {
		total += f.Counter(n)
	}
	return total
}
