package metrichygiene_test

import (
	"testing"

	"blinkradar/internal/analysis/analysistest"
	"blinkradar/internal/analysis/metrichygiene"
)

func TestMetricHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", metrichygiene.Analyzer, "metrics")
}
