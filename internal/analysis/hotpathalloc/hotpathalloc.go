// Package hotpathalloc flags allocating constructs inside functions
// annotated //blinkradar:hotpath. The per-frame pipeline budget (40 ms
// per frame in the paper, 0 allocs/frame since the in-place DSP
// refactor) survives only if nobody reintroduces a hidden allocation;
// this analyzer makes that a build break instead of a benchmark
// regression.
//
// Inside an annotated function the following are reported:
//
//   - append (may grow the backing array)
//   - make and new
//   - map and slice composite literals
//   - string concatenation
//   - any call into package fmt
//   - closures that capture variables, including in defer/go
//   - go statements (spawning allocates)
//   - explicit conversions to interface types and implicit boxing into
//     variadic ...interface{} parameters
//
// The check is per-function-body: calls into helpers are not followed,
// so either annotate the helpers on the hot call chain too (the repo
// does, from Preprocessor.Process down to the DSP kernels) or keep
// cold-path work — error construction, logging — in unannotated
// helpers. Intentional amortised growth is waived with
// //blinkvet:ignore hotpathalloc.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"blinkradar/internal/analysis"
)

// Marker is the doc-comment annotation that opts a function into the
// check.
const Marker = "//blinkradar:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //blinkradar:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Marker) {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n) {
				pass.Reportf(n.OpPos, "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		case *ast.FuncLit:
			if capt := capturedVar(pass, n); capt != "" {
				pass.Reportf(n.Pos(), "closure captures %q and allocates in hot path %s", capt, fn.Name.Name)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in hot path %s", fn.Name.Name)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Builtins: append, make, new.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array; reuse a pre-sized buffer")
			case "make":
				pass.Reportf(call.Pos(), "make allocates; hoist the buffer to the owning struct")
			case "new":
				pass.Reportf(call.Pos(), "new allocates; hoist the value to the owning struct")
			}
			return
		}
	}
	// Conversions to interface types.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if argT := pass.TypesInfo.TypeOf(call.Args[0]); argT != nil && !types.IsInterface(argT) {
				pass.Reportf(call.Pos(), "conversion to interface %s boxes its operand", tv.Type)
			}
		}
		return
	}
	// Calls into package fmt.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s allocates; move formatting off the hot path", sel.Sel.Name)
				return
			}
		}
	}
	// Implicit boxing into ...interface{} variadics (print-style APIs).
	if sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok && sig.Variadic() && call.Ellipsis == token.NoPos {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok && types.IsInterface(slice.Elem()) {
			if len(call.Args) >= sig.Params().Len() {
				pass.Reportf(call.Pos(), "arguments are boxed into %s; avoid interface variadics on the hot path", slice.Elem())
			}
		}
	}
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates; hoist it out of the hot path")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates; reuse a pre-sized buffer")
	}
}

func isString(pass *analysis.Pass, n *ast.BinaryExpr) bool {
	t := pass.TypesInfo.TypeOf(n)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVar returns the name of a variable the closure captures from
// an enclosing scope, or "" when the closure is capture-free.
// Package-level variables are not captures: referencing them costs no
// closure cell.
func capturedVar(pass *analysis.Pass, lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-scope variables (of any package) and universe names
		// are not closure captures.
		if p := v.Parent(); p == nil || p == types.Universe || p.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}
