// Package hotpathalloc flags allocating constructs inside functions
// annotated //blinkradar:hotpath. The per-frame pipeline budget (40 ms
// per frame in the paper, 0 allocs/frame since the in-place DSP
// refactor) survives only if nobody reintroduces a hidden allocation;
// this analyzer makes that a build break instead of a benchmark
// regression.
//
// Inside an annotated function the following are reported:
//
//   - append (may grow the backing array)
//   - make and new
//   - map and slice composite literals
//   - string concatenation
//   - any call into package fmt
//   - closures that capture variables, including in defer/go
//   - go statements (spawning allocates)
//   - explicit conversions to interface types and implicit boxing into
//     variadic ...interface{} parameters
//
// The check is transitive: beyond the per-body constructs above, every
// static call out of an annotated function is looked up in the
// suite-wide fact sets (analysis.ComputeFacts). A call to a function
// that is neither //blinkradar:hotpath (checked itself) nor
// //blinkradar:coldpath (a reviewed cold branch — error construction,
// restart paths) and whose fact set includes allocates or blocks is a
// diagnostic, with the offending call chain printed. Dynamic calls
// (func values, interface methods) cannot be followed and are the
// check's documented blind spot. Intentional amortised growth is
// waived with //blinkvet:ignore hotpathalloc -- <reason>.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"blinkradar/internal/analysis"
)

// Marker is the doc-comment annotation that opts a function into the
// check. ColdMarker waives a callee: a reviewed cold branch the
// transitive check does not descend into.
const (
	Marker     = analysis.MarkerHotPath
	ColdMarker = analysis.MarkerColdPath
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating or blocking constructs, direct or via callees, in //blinkradar:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkBody(pass, fn)
			checkCallees(pass, fn)
		}
	}
	return nil
}

func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Marker) {
			return true
		}
	}
	return false
}

// checkCallees is the transitive half: resolve every static call in
// the hot function and consult the propagated fact sets.
func checkCallees(pass *analysis.Pass, fn *ast.FuncDecl) {
	facts := pass.Facts
	if facts == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		id := analysis.FuncID(callee)
		if facts.Hot(id) || facts.Cold(id) {
			return true
		}
		if p := callee.Pkg(); p != nil && p.Path() == "fmt" {
			return true // checkCall already reports fmt directly
		}
		bad := facts.Set(id) & (analysis.FactAllocates | analysis.FactBlocks)
		if bad == 0 {
			return true
		}
		for _, f := range []analysis.FactSet{analysis.FactAllocates, analysis.FactBlocks} {
			if bad&f == 0 {
				continue
			}
			chain := facts.Chain(id, f)
			pass.Reportf(call.Pos(),
				"hot path %s calls %s, which %s (%s); annotate the chain %s or mark the helper %s",
				fn.Name.Name, analysis.ShortFuncID(id), f,
				strings.Join(chain, " → "), Marker, ColdMarker)
		}
		return true
	})
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n) {
				pass.Reportf(n.OpPos, "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		case *ast.FuncLit:
			if capt := analysis.CapturedVar(pass.TypesInfo, n); capt != "" {
				pass.Reportf(n.Pos(), "closure captures %q and allocates in hot path %s", capt, fn.Name.Name)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in hot path %s", fn.Name.Name)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Builtins: append, make, new.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array; reuse a pre-sized buffer")
			case "make":
				pass.Reportf(call.Pos(), "make allocates; hoist the buffer to the owning struct")
			case "new":
				pass.Reportf(call.Pos(), "new allocates; hoist the value to the owning struct")
			}
			return
		}
	}
	// Conversions to interface types.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if argT := pass.TypesInfo.TypeOf(call.Args[0]); argT != nil && !types.IsInterface(argT) {
				pass.Reportf(call.Pos(), "conversion to interface %s boxes its operand", tv.Type)
			}
		}
		return
	}
	// Calls into package fmt.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s allocates; move formatting off the hot path", sel.Sel.Name)
				return
			}
		}
	}
	// Implicit boxing into ...interface{} variadics (print-style APIs).
	if sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok && sig.Variadic() && call.Ellipsis == token.NoPos {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok && types.IsInterface(slice.Elem()) {
			if len(call.Args) >= sig.Params().Len() {
				pass.Reportf(call.Pos(), "arguments are boxed into %s; avoid interface variadics on the hot path", slice.Elem())
			}
		}
	}
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates; hoist it out of the hot path")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates; reuse a pre-sized buffer")
	}
}

func isString(pass *analysis.Pass, n *ast.BinaryExpr) bool {
	t := pass.TypesInfo.TypeOf(n)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
