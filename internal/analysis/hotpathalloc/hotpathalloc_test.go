package hotpathalloc_test

import (
	"testing"

	"blinkradar/internal/analysis/analysistest"
	"blinkradar/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hot", "transitive")
}
