// Package dep is the helper package the transitive fixture calls
// into; the want:fact comments pin the propagated fact sets the
// diagnostics in the parent package depend on.
package dep

import "time"

// Grow allocates one hop down, so the printed chain has two links.
func Grow(buf []float64, n int) []float64 { // want:fact allocates !blocks
	return grow(buf, n)
}

func grow(buf []float64, n int) []float64 { // want:fact allocates
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// Settle parks the goroutine; the blocks fact comes from the stdlib
// table entry for time.Sleep.
func Settle() { // want:fact blocks !allocates
	time.Sleep(time.Millisecond)
}

// Sum is pure: in-place arithmetic only.
func Sum(xs []float64) float64 { // want:fact !allocates !blocks !spawns
	var acc float64
	for _, x := range xs {
		acc += x
	}
	return acc
}

// ColdFallback allocates but is a reviewed cold branch: the transitive
// check does not descend into it.
//
//blinkradar:coldpath
func ColdFallback() float64 { // want:fact allocates
	out := make([]float64, 1)
	return out[0]
}
