// Package transitive exercises the call-graph half of hotpathalloc:
// the hot function below is locally clean — every finding comes from
// the propagated fact sets of the dep package.
package transitive

import "transitive/dep"

//blinkradar:hotpath
func Hot(buf []float64) float64 {
	grown := dep.Grow(buf, 16) // want "hot path Hot calls dep.Grow, which allocates .dep.Grow → dep.grow."
	dep.Settle()               // want "hot path Hot calls dep.Settle, which blocks .dep.Settle."
	return dep.Sum(grown) + dep.ColdFallback()
}

// HotWaived pins that the transitive finding is suppressible like any
// other.
//
//blinkradar:hotpath
func HotWaived(buf []float64) []float64 {
	return dep.Grow(buf, 16) //blinkvet:ignore hotpathalloc -- amortised growth, fixture
}
