package hot

import "fmt"

func sink(args ...interface{}) int { return len(args) }

// Bad exercises every allocating construct the analyzer knows.
//
//blinkradar:hotpath
func Bad(xs []float64, n int, name string) float64 {
	buf := make([]float64, n)    // want "make allocates"
	xs = append(xs, 1)           // want "append may grow"
	m := map[string]int{}        // want "map literal allocates"
	s := []int{1, 2}             // want "slice literal allocates"
	label := name + "!"          // want "string concatenation allocates"
	fmt.Println(n)               // want "Println allocates"
	sink(n)                      // want "boxed into"
	_ = interface{}(n)           // want "conversion to interface"
	f := func() int { return n } // want "closure captures"
	go f()                       // want "go statement"
	_, _, _, _ = m, s, label, buf
	return xs[0] + float64(f())
}

// Clean is annotated but allocation-free: in-place writes, struct
// values, arithmetic, calls into helpers, capture-free closures.
//
//blinkradar:hotpath
func Clean(dst, src []float64, k float64) float64 {
	type pair struct{ a, b float64 }
	p := pair{a: k}
	copy(dst, src)
	var acc float64
	for i := range dst {
		dst[i] *= k
		acc += dst[i]
	}
	f := func(x float64) float64 { return x * x }
	return f(acc) + p.a + helper(len(dst))
}

// Waived shows an intentional amortised-growth allocation.
//
//blinkradar:hotpath
func Waived(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n) //blinkvet:ignore hotpathalloc -- amortised growth, BinSeries contract
	}
	return buf[:n]
}

// unannotated may allocate freely without findings.
func unannotated(n int) []float64 {
	out := make([]float64, n)
	out = append(out, 1)
	fmt.Println(len(out))
	return out
}

func helper(n int) float64 { return float64(n) }
