// Package analysis is a small, dependency-free static-analysis
// framework modelled on golang.org/x/tools/go/analysis. It exists so
// the repo's correctness invariants — allocation-free hot paths,
// buffer-aliasing contracts, joined goroutines, metric hygiene — can be
// machine-checked by `cmd/blinkvet` without pulling x/tools onto the
// embedded target: the loader shells out to the already-present go
// tool for package metadata and export data, and everything else is
// go/ast + go/types.
//
// Analyzers inspect one type-checked package at a time through a Pass
// and report findings as Diagnostics. Cross-function knowledge — the
// call graph and the allocates/blocks/spawns fact sets computed by
// ComputeFacts over the whole loaded package set — arrives on the Pass
// as Facts. Findings are suppressed by a trailing or preceding line
// comment of the form
//
//	//blinkvet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// which the driver (and the analysistest harness) honour uniformly.
// The reason after " -- " is mandatory; the ignorehygiene analyzer
// flags suppressions without one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in output and in
	// //blinkvet:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer's Run function, plus the suite-wide Facts.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts holds the call-graph fact sets and annotation registry
	// computed over every loaded package. Never nil under the standard
	// drivers; analyzers should still tolerate an empty Facts.
	Facts *Facts

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies every analyzer to the package and returns the
// findings with //blinkvet:ignore suppressions already filtered out,
// sorted by position. Facts are computed over the single package; use
// ComputeFacts + RunAnalyzersFacts when analyzing a multi-package set
// so cross-package call chains resolve.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersFacts(pkg, ComputeFacts([]*Package{pkg}), analyzers)
}

// RunAnalyzersFacts is RunAnalyzers with externally computed Facts,
// shared across the packages of one load.
func RunAnalyzersFacts(pkg *Package, facts *Facts, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	diags = filterSuppressed(pkg.Fset, pkg.Files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// IgnorePrefix marks a suppression comment.
const IgnorePrefix = "//blinkvet:ignore"

// ParseIgnore splits a comment's text into the suppressed analyzer
// names and the mandatory " -- " reason. ok is false when the comment
// is not a suppression at all. A suppression without a reason still
// suppresses (so a stale waiver never un-silences old findings during
// a cleanup) but is itself flagged by the ignorehygiene analyzer.
func ParseIgnore(text string) (names []string, reason string, hasReason bool, ok bool) {
	rest, ok := strings.CutPrefix(text, IgnorePrefix)
	if !ok {
		return nil, "", false, false
	}
	if i := strings.Index(rest, " -- "); i >= 0 {
		reason = strings.TrimSpace(rest[i+4:])
		hasReason = reason != ""
		rest = rest[:i]
	}
	// A nested // starts an ordinary comment (fixture want-markers,
	// trailing notes); it is not part of the analyzer list.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		for _, name := range strings.Split(fields[0], ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	return names, reason, hasReason, true
}

// suppressionsByLine maps file:line to the set of analyzer names
// suppressed there. A suppression on line N waives findings on line N
// and line N+1, so both trailing and preceding comments work.
func suppressionsByLine(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, _, _, ok := ParseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range names {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if out[key] == nil {
							out[key] = make(map[string]bool)
						}
						out[key][name] = true
					}
				}
			}
		}
	}
	return out
}

func filterSuppressed(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	supp := suppressionsByLine(fset, files)
	if len(supp) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if supp[key][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
