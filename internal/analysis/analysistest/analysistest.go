// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest without the
// dependency.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. A line that should be
// flagged carries a trailing comment of the form
//
//	// want "regexp"
//	// want "regexp1" "regexp2"
//
// where each quoted Go string is a regular expression that must match
// the message of a distinct diagnostic reported on that line. Lines
// with no want comment must produce no diagnostics. Fixture imports
// resolve against the standard library and against sibling fixture
// packages in the same src tree; facts are computed over the whole
// loaded set, so cross-package call chains resolve exactly as under
// the real driver.
//
// A function declaration line may additionally assert its propagated
// fact set:
//
//	func helper() []int { // want:fact allocates
//	func pure(x int) int { // want:fact !allocates !blocks
//
// Each bare name must be present in the function's suite-wide fact
// set; a !-prefixed name must be absent. Fact assertions are checked
// in every package of the fixture's import closure, so a dependency
// package can pin the facts the target package's diagnostics rely on.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"blinkradar/internal/analysis"
)

// Run loads each fixture package, applies the analyzer, and reports
// mismatches between expected and actual diagnostics through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	for _, name := range pkgNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Helper()
			pkg, all, err := loadFixture(testdata, name)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrors) != 0 {
				t.Fatalf("fixture %s does not type-check: %v", name, pkg.TypeErrors)
			}
			facts := analysis.ComputeFacts(all)
			diags, err := analysis.RunAnalyzersFacts(pkg, facts, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatal(err)
			}
			checkExpectations(t, pkg, diags)
			for _, p := range all {
				checkFactExpectations(t, p, facts)
			}
		})
	}
}

// expectation is one want-regexp at a file line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					pattern, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, raw, err)
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.rx)
		}
	}
}

var wantFactRe = regexp.MustCompile(`// want:fact (.*)$`)

// checkFactExpectations verifies // want:fact comments against the
// propagated fact sets. Each comment must share a line with a function
// declaration's name; bare fact names assert presence, !-prefixed
// names assert absence.
func checkFactExpectations(t *testing.T, pkg *analysis.Package, facts *analysis.Facts) {
	t.Helper()
	for _, f := range pkg.Files {
		// Index function declarations by the line their name sits on.
		fnAt := make(map[int]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fnAt[pkg.Fset.Position(fd.Name.Pos()).Line] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantFactRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fd := fnAt[pos.Line]
				if fd == nil {
					t.Errorf("%s: want:fact comment is not on a function declaration line", pos)
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					t.Errorf("%s: cannot resolve function %s", pos, fd.Name.Name)
					continue
				}
				got := facts.Of(fn)
				for _, tok := range strings.Fields(m[1]) {
					name, negate := strings.CutPrefix(tok, "!")
					bit, ok := analysis.ParseFact(name)
					if !ok {
						t.Errorf("%s: unknown fact %q", pos, name)
						continue
					}
					if has := got.Has(bit); has == negate {
						t.Errorf("%s: %s: facts are %q, want %s=%v", pos, fd.Name.Name, got, name, !negate)
					}
				}
			}
		}
	}
}

// splitQuoted extracts the double-quoted Go string literals of a want
// comment's payload.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start:]
		// Find the closing quote, honouring backslash escapes.
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			return out
		}
		out = append(out, rest[:end+1])
		s = rest[end+1:]
	}
}

// loadFixture parses and type-checks one fixture package. It returns
// the target package and every fixture package pulled in through its
// imports (target included), for suite-wide fact computation.
func loadFixture(testdata, name string) (*analysis.Package, []*analysis.Package, error) {
	imp := &fixtureImporter{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*fixturePkg),
	}
	fp, err := imp.load(name)
	if err != nil {
		return nil, nil, err
	}
	paths := make([]string, 0, len(imp.pkgs))
	for path := range imp.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	all := make([]*analysis.Package, 0, len(paths))
	for _, path := range paths {
		all = append(all, imp.pkgs[path].pkg)
	}
	return fp.pkg, all, nil
}

type fixturePkg struct {
	pkg *analysis.Package
}

// fixtureImporter resolves fixture-local imports from the src tree by
// type-checking them from source, and everything else from toolchain
// export data.
type fixtureImporter struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
	std  types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(fi.src, path)) {
		fp, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		if len(fp.pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("fixture dependency %s: %v", path, fp.pkg.TypeErrors[0])
		}
		return fp.pkg.Types, nil
	}
	if fi.std == nil {
		fi.std = stdImporter(fi.fset)
	}
	return fi.std.Import(path)
}

func (fi *fixtureImporter) load(path string) (*fixturePkg, error) {
	if fp, ok := fi.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(fi.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: fixture %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: fixture %s has no Go files", path)
	}
	pkg := &analysis.Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fi.fset,
		Files:      files,
		Info:       analysis.NewInfo(),
	}
	fp := &fixturePkg{pkg: pkg}
	fi.pkgs[path] = fp
	conf := types.Config{
		Importer: fi,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, fi.fset, files, pkg.Info)
	return fp, nil
}

func dirExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

// stdExports caches `go list -export` lookups of standard-library
// export data across fixtures and tests in the process.
var stdExports sync.Map // import path -> export file path

func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if file, ok := stdExports.Load(path); ok {
			return os.Open(file.(string))
		}
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("analysistest: go list -export %s: %v\n%s", path, err, stderr.Bytes())
		}
		file := strings.TrimSpace(stdout.String())
		if file == "" {
			return nil, fmt.Errorf("analysistest: no export data for %q", path)
		}
		stdExports.Store(path, file)
		return os.Open(file)
	})
}
