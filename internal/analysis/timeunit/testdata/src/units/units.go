// Package units reproduces the PR-6 window-drift bug class: frame
// counts and wall-clock seconds are both "just numbers" until a
// conversion silently drops the frame rate.
package units

// Frames counts slow-time frames.
//
//blinkradar:unit frames
type Frames int

// Seconds is wall-clock slow time.
//
//blinkradar:unit seconds
type Seconds float64

// Bin indexes a range bin.
//
//blinkradar:unit bin
type Bin int

// SecondsAt is the sanctioned frames→seconds crossing: it needs the
// rate.
func (f Frames) SecondsAt(rate float64) Seconds {
	if rate <= 0 {
		return 0
	}
	return Seconds(float64(f) / rate)
}

// Float64 escapes the unit system at an API boundary.
func (s Seconds) Float64() float64 { return float64(s) }

// SecondsOf admits a raw value at an API boundary.
//
//blinkradar:convert
func SecondsOf(v float64) Seconds { return Seconds(v) }

// drift is the bug: a frame count reinterpreted as seconds, no rate
// in sight.
func drift(frame Frames) Seconds {
	return Seconds(frame) // want "conversion mixes units frames and seconds; cross units through the frame-rate helpers"
}

// leak escapes a unit without going through its accessor.
func leak(s Seconds) float64 {
	return float64(s) // want "unit seconds escapes to float64; use the unit type's accessor methods"
}

// smuggle casts a raw variable into a unit outside any convert helper.
func smuggle(v float64) Seconds {
	return Seconds(v) // want "raw float64 cast into unit seconds; construct it through a //blinkradar:convert helper"
}

// fine shows every allowed shape: untyped constants, same-unit
// conversion, the rate helpers, accessor escapes, convert
// constructors, and arithmetic within one unit.
func fine(frame Frames, rate float64) float64 {
	deadline := Seconds(1.5)
	span := frame.SecondsAt(rate) + deadline
	frame += Frames(10)
	b := Bin(3)
	_ = b
	return span.Float64() + SecondsOf(0.25).Float64()
}

// waived keeps an intentional raw cast with a reason.
func waived(v float64) Seconds {
	return Seconds(v) //blinkvet:ignore timeunit -- checked against the config schema upstream
}
