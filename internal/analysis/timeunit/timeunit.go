// Package timeunit enforces dimensional discipline on the slow-time
// quantities the pipeline juggles: frame counts, wall-clock seconds
// and range-bin indices. PR 6's window-drift bug was exactly a
// frame-count quantity used where wall-clock seconds were meant, with
// nothing in the types to object. internal/core now declares named
// unit types for these quantities, annotated
//
//	//blinkradar:unit frames
//	type Frames int
//
// and this analyzer polices the boundaries between them:
//
//   - a conversion from one unit type directly to another
//     (core.Seconds(f) where f is core.Frames) is flagged — crossing
//     units requires a rate, so it must go through the frame-rate
//     conversion helpers (Frames.SecondsAt, Seconds.FramesAt);
//   - a conversion from a unit type to a raw basic type
//     (float64(span)) is flagged — escaping the unit system goes
//     through the unit's accessor methods;
//   - a conversion from a raw non-constant value into a unit type
//     (core.Seconds(x)) is flagged — raw values enter through the
//     //blinkradar:convert constructors at API boundaries.
//
// Conversions are permitted inside methods declared on a unit type and
// inside functions annotated //blinkradar:convert: that is where the
// helpers themselves live. Untyped constants (core.Frames(10)) are
// always fine.
package timeunit

import (
	"go/ast"
	"go/types"

	"blinkradar/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "timeunit",
	Doc:  "forbid conversions that mix //blinkradar:unit types without the frame-rate helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := pass.Facts
	if facts == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	facts := pass.Facts
	allowed := conversionContext(pass, decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() || len(call.Args) != 1 {
			return true
		}
		arg := call.Args[0]
		dst := tv.Type
		src := pass.TypesInfo.TypeOf(arg)
		dstUnit, dstIsUnit := facts.UnitName(dst)
		srcUnit, srcIsUnit := facts.UnitName(src)
		if dstIsUnit && srcIsUnit {
			if types.Identical(dst, src) {
				return true
			}
			pass.Reportf(call.Pos(),
				"conversion mixes units %s and %s; cross units through the frame-rate helpers (SecondsAt/FramesAt)",
				srcUnit, dstUnit)
			return true
		}
		if allowed {
			return true
		}
		if srcIsUnit && !dstIsUnit && isBasic(dst) {
			pass.Reportf(call.Pos(),
				"unit %s escapes to %s; use the unit type's accessor methods instead of a raw conversion",
				srcUnit, dst)
			return true
		}
		if dstIsUnit && !srcIsUnit && isBasic(src) {
			if av, ok := pass.TypesInfo.Types[arg]; ok && av.Value != nil {
				return true // untyped constant, e.g. Frames(10)
			}
			pass.Reportf(call.Pos(),
				"raw %s cast into unit %s; construct it through a //blinkradar:convert helper",
				src, dstUnit)
		}
		return true
	})
}

// conversionContext reports whether decl is a sanctioned place for
// raw↔unit conversions: a method declared on a unit type, or a
// function annotated //blinkradar:convert.
func conversionContext(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	if pass.Facts.Convert(analysis.FuncID(fn)) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isUnit := pass.Facts.UnitName(sig.Recv().Type())
	return isUnit
}

func isBasic(t types.Type) bool {
	if t == nil {
		return false
	}
	// A named non-unit type over a basic kind does not count: the
	// conversion target carries its own meaning.
	_, ok := t.(*types.Basic)
	return ok
}
