package timeunit_test

import (
	"testing"

	"blinkradar/internal/analysis/analysistest"
	"blinkradar/internal/analysis/timeunit"
)

func TestTimeUnit(t *testing.T) {
	analysistest.Run(t, "testdata", timeunit.Analyzer, "units")
}
