package iq

// SlidingMoments maintains, under push and evict, the raw power sums a
// Pratt or Taubin circle fit needs over a sliding window of I/Q
// samples: with x = I, y = Q and z = x^2 + y^2 it tracks
// Σx, Σy, Σxx, Σxy, Σyy, Σxz, Σyz and Σzz. The centred moments of
// Chernov's formulation are recovered from these sums in O(1), so the
// characteristic polynomial can be solved without touching the sample
// window — turning each O(window) refit into an O(1)-amortised update.
//
// Floating-point drift: every Push/Evict pair leaves O(eps) rounding
// residue in the sums, so the accumulator counts evictions and reports
// NeedsRenorm once renormEvery of them have passed; the owner then
// calls Renormalize with the current window contents for an exact
// recompute. With renormEvery equal to the window length the exact
// pass amortises to O(1) per frame and bounds the relative drift to
// ~window·eps of the raw-sum scale, far inside the tolerance of the
// differential tests.
//
// Numerical caveat: recovering centred moments from raw sums cancels
// catastrophically when the cloud's mean is many orders of magnitude
// larger than its spread. The pipeline feeds background-subtracted
// samples whose means are comparable to their spread, where the
// recovered moments match the two-pass batch reference to ~1e-9
// relative (enforced by FuzzSlidingMoments).
//
// The zero value is an empty accumulator that never requests
// renormalization; use NewSlidingMoments to set a renormalization
// interval.
type SlidingMoments struct {
	n                                    int
	sx, sy, sxx, sxy, syy, sxz, syz, szz float64
	evictions, renormEvery               int
}

// NewSlidingMoments returns an empty accumulator that requests an
// exact recompute every renormEvery evictions (<= 0 disables the
// request; the sums then drift unboundedly and the caller owns the
// renormalization policy).
func NewSlidingMoments(renormEvery int) SlidingMoments {
	return SlidingMoments{renormEvery: renormEvery}
}

// Push folds one sample into the sums.
//
//blinkradar:hotpath
func (s *SlidingMoments) Push(z complex128) {
	x, y := real(z), imag(z)
	zz := x*x + y*y
	s.sx += x
	s.sy += y
	s.sxx += x * x
	s.sxy += x * y
	s.syy += y * y
	s.sxz += x * zz
	s.syz += y * zz
	s.szz += zz * zz
	s.n++
}

// Evict removes one sample from the sums. The value must be one that
// was previously pushed and has not yet been evicted (the caller's
// window ring knows which sample is leaving).
//
//blinkradar:hotpath
func (s *SlidingMoments) Evict(z complex128) {
	if s.n <= 1 {
		// Emptying the window: clear the residue exactly rather than
		// leaving O(eps) garbage sums behind.
		every := s.renormEvery
		*s = SlidingMoments{renormEvery: every}
		return
	}
	x, y := real(z), imag(z)
	zz := x*x + y*y
	s.sx -= x
	s.sy -= y
	s.sxx -= x * x
	s.sxy -= x * y
	s.syy -= y * y
	s.sxz -= x * zz
	s.syz -= y * zz
	s.szz -= zz * zz
	s.n--
	s.evictions++
}

// Accumulate pushes every sample of z; with a zero-value accumulator
// this is the one-pass batch entry point used by bin scoring.
//
//blinkradar:hotpath
func (s *SlidingMoments) Accumulate(z []complex128) {
	for _, c := range z {
		s.Push(c)
	}
}

// Count returns the number of samples currently summed.
func (s *SlidingMoments) Count() int { return s.n }

// NeedsRenorm reports whether enough evictions have accumulated that
// the owner should call Renormalize with the current window.
func (s *SlidingMoments) NeedsRenorm() bool {
	return s.renormEvery > 0 && s.evictions >= s.renormEvery
}

// Renormalize recomputes the sums exactly from the current window
// contents (order irrelevant) and clears the eviction counter.
//
//blinkradar:hotpath
func (s *SlidingMoments) Renormalize(window []complex128) {
	every := s.renormEvery
	*s = SlidingMoments{renormEvery: every}
	for _, c := range window {
		s.Push(c)
	}
}

// Reset empties the accumulator, keeping the renormalization interval.
func (s *SlidingMoments) Reset() {
	every := s.renormEvery
	*s = SlidingMoments{renormEvery: every}
}

// Variance2D returns the total 2-D variance of the summed samples
// about their centroid, matching Variance2D on the window contents.
//
//blinkradar:hotpath
func (s *SlidingMoments) Variance2D() float64 {
	if s.n < 2 {
		return 0
	}
	fn := float64(s.n)
	mx := s.sx / fn
	my := s.sy / fn
	v := (s.sxx+s.syy)/fn - mx*mx - my*my
	if v < 0 {
		// Rounding can push a near-zero variance fractionally negative.
		v = 0
	}
	return v
}

// Eccentricity returns the elongation of the summed cloud in [0, 1],
// matching Eccentricity on the window contents.
func (s *SlidingMoments) Eccentricity() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.moments()
	return eccentricityOf(m.mxx, m.myy, m.mxy)
}

// moments recovers the centred moments of Chernov's formulation from
// the raw sums. Call only with n >= 1.
func (s *SlidingMoments) moments() moments {
	var m moments
	m.n = s.n
	fn := float64(s.n)
	a := s.sx / fn
	b := s.sy / fn
	m.meanI = a
	m.meanQ = b
	m.mxx = s.sxx/fn - a*a
	m.myy = s.syy/fn - b*b
	m.mxy = s.sxy/fn - a*b
	sz := s.sxx + s.syy
	m.mxz = (s.sxz-a*sz)/fn - 2*a*m.mxx - 2*b*m.mxy
	m.myz = (s.syz-b*sz)/fn - 2*b*m.myy - 2*a*m.mxy
	c := a*a + b*b
	m.mzz = (s.szz+4*a*a*s.sxx+4*b*b*s.syy-4*a*s.sxz-4*b*s.syz+8*a*b*s.sxy+2*c*sz)/fn - 3*c*c
	m.mz = m.mxx + m.myy
	m.covXY = m.mxx*m.myy - m.mxy*m.mxy
	m.varZ = m.mzz - m.mz*m.mz
	return m
}

// FitPratt fits a circle to the summed window by Pratt's method,
// solving the characteristic polynomial directly from the cached
// moments — no pass over the samples. The returned RMSE is the O(1)
// algebraic estimate of rmseEstimate, not the exact sample RMSE;
// centre and radius match FitCirclePratt on the same window to
// floating-point tolerance.
//
//blinkradar:hotpath
func (s *SlidingMoments) FitPratt() (Circle, error) {
	if s.n < 3 {
		return Circle{}, ErrDegenerateFit
	}
	m := s.moments()
	x := m.prattRoot()
	c, err := m.circle(x, 2*x)
	if err != nil {
		return Circle{}, err
	}
	c.RMSE = m.rmseEstimate(c)
	return c, nil
}

// FitPrattExcluding fits a circle by Pratt's method to the summed
// window minus the samples accumulated in sub — the moment-space
// complement of filtering the window and refitting. The trim pass of a
// tracker refit rejects a small fraction of off-circle samples; with
// their sums subtracted, the trimmed fit stays O(rejected) instead of
// O(window), with no pass over the kept samples at all.
//
// Numerics: the difference of raw sums loses at most the rejected
// fraction's worth of magnitude, so for trims that discard a minority
// of the window the recovered moments carry the same ~1e-9 relative
// agreement with the batch reference as the plain sliding fit
// (enforced by FuzzSlidingMoments's exclusion case).
//
//blinkradar:hotpath
func (s *SlidingMoments) FitPrattExcluding(sub *SlidingMoments) (Circle, error) {
	d := SlidingMoments{
		n:   s.n - sub.n,
		sx:  s.sx - sub.sx,
		sy:  s.sy - sub.sy,
		sxx: s.sxx - sub.sxx,
		sxy: s.sxy - sub.sxy,
		syy: s.syy - sub.syy,
		sxz: s.sxz - sub.sxz,
		syz: s.syz - sub.syz,
		szz: s.szz - sub.szz,
	}
	return d.FitPratt()
}

// FitTaubin is FitPratt with Taubin's normalisation, for
// cross-validation in tests and ablations.
func (s *SlidingMoments) FitTaubin() (Circle, error) {
	if s.n < 3 {
		return Circle{}, ErrDegenerateFit
	}
	m := s.moments()
	c, err := m.circle(m.taubinRoot(), 0)
	if err != nil {
		return Circle{}, err
	}
	c.RMSE = m.rmseEstimate(c)
	return c, nil
}
