package iq

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// momentScales returns the tolerance scales for centred moments of
// order 2, 3 and 4, anchored on the raw mean-square magnitude of the
// window. Recovering centred moments from raw sums cancels digits
// proportional to these scales, so a fixed absolute tolerance would be
// meaningless across magnitudes; 1e-9 of the raw scale is ~1e7 times
// the worst rounding drift a renormalized accumulator can carry.
func momentScales(window []complex128) (s2, s3, s4 float64) {
	if len(window) == 0 {
		return 1, 1, 1
	}
	var acc float64
	for _, z := range window {
		acc += real(z)*real(z) + imag(z)*imag(z)
	}
	s2 = acc / float64(len(window))
	return s2, s2 * math.Sqrt(s2), s2 * s2
}

// requireMomentsMatch compares the accumulator's recovered centred
// moments against the two-pass batch reference over the same window,
// with tolerances anchored on the current window's own scales.
func requireMomentsMatch(t *testing.T, s *SlidingMoments, window []complex128) {
	t.Helper()
	requireMomentsMatchDrift(t, s, window, 0)
}

// requireMomentsMatchDrift is requireMomentsMatch for accumulators
// that have lived through evictions: residue2 is the peak per-sample
// squared magnitude pushed since the last exact recompute (0 if none).
// Push/evict residue scales with the raw-sum magnitude at the time of
// the operation — a huge sample that has since left the window leaves
// O(eps·peak^k) garbage in the order-k sums — so drift tolerances must
// reference the historical peak, not just whatever the window holds
// now.
func requireMomentsMatchDrift(t *testing.T, s *SlidingMoments, window []complex128, residue2 float64) {
	t.Helper()
	if s.Count() != len(window) {
		t.Fatalf("accumulator holds %d samples, window has %d", s.Count(), len(window))
	}
	if len(window) < 3 {
		return
	}
	want, err := computeMoments(window)
	if err != nil {
		t.Fatalf("batch moments: %v", err)
	}
	got := s.moments()
	s2, s3, s4 := momentScales(window)
	if residue2 > s2 {
		s2 = residue2
		s3 = residue2 * math.Sqrt(residue2)
		s4 = residue2 * residue2
	}
	const rel = 1e-9
	check := func(name string, g, w, scale float64) {
		t.Helper()
		if math.Abs(g-w) > rel*(1+scale) {
			t.Fatalf("%s = %g, batch reference %g (diff %g, tol %g, n=%d)",
				name, g, w, math.Abs(g-w), rel*(1+scale), len(window))
		}
	}
	check("meanI", got.meanI, want.meanI, math.Sqrt(s2))
	check("meanQ", got.meanQ, want.meanQ, math.Sqrt(s2))
	check("mxx", got.mxx, want.mxx, s2)
	check("myy", got.myy, want.myy, s2)
	check("mxy", got.mxy, want.mxy, s2)
	check("mxz", got.mxz, want.mxz, s3)
	check("myz", got.myz, want.myz, s3)
	check("mzz", got.mzz, want.mzz, s4)
	check("mz", got.mz, want.mz, s2)
	check("covXY", got.covXY, want.covXY, s2*s2)
	check("varZ", got.varZ, want.varZ, s4)
	// Variance2D must agree with the allocating batch helper too.
	if v, w := s.Variance2D(), Variance2D(window); math.Abs(v-w) > rel*(1+s2) {
		t.Fatalf("Variance2D = %g, batch %g", v, w)
	}
	// Eccentricity is a ratio of second moments, so its error is the
	// moment cancellation noise divided by the spread; only compare when
	// the spread is large enough relative to the raw scale for the ratio
	// to carry signal (fuzz inputs can put the whole cloud at 1e12 with
	// spread 1, where both values are rounding noise).
	if want.mz > 1e-4*(1+s2) {
		if e, w := s.Eccentricity(), Eccentricity(window); math.Abs(e-w) > 1e-6 {
			t.Fatalf("Eccentricity = %g, batch %g", e, w)
		}
	}
}

// slide pushes stream through a window of the given capacity, evicting
// oldest-first, checking the accumulator against the batch reference
// after every step and renormalizing whenever the accumulator asks.
func slide(t *testing.T, stream []complex128, capacity, renormEvery int) {
	t.Helper()
	s := NewSlidingMoments(renormEvery)
	window := make([]complex128, 0, capacity)
	renorms := 0
	for _, z := range stream {
		if len(window) == capacity {
			s.Evict(window[0])
			window = window[:copy(window, window[1:])]
		}
		s.Push(z)
		window = append(window, z)
		if s.NeedsRenorm() {
			s.Renormalize(window)
			renorms++
		}
		requireMomentsMatch(t, &s, window)
	}
	// capacity 1 evicts-to-empty every step, which resets exactly and
	// never accrues drift, so no renormalization is ever requested.
	if renormEvery > 0 && capacity > 1 && len(stream) > capacity+renormEvery && renorms == 0 {
		t.Fatalf("no renormalization over %d evictions (interval %d)", len(stream)-capacity, renormEvery)
	}
}

func TestSlidingMomentsMatchesBatchOnArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	stream := make([]complex128, 600)
	center := complex(1.2, -0.7)
	for i := range stream {
		a := 0.6 * math.Sin(float64(i)*0.05)
		stream[i] = center + cmplx.Rect(1.5, a) +
			complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
	}
	slide(t, stream, 120, 60)
}

func TestSlidingMomentsMatchesBatchOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	stream := make([]complex128, 400)
	for i := range stream {
		stream[i] = complex(rng.NormFloat64()*3, rng.NormFloat64()*3)
	}
	slide(t, stream, 50, 25)
}

func TestSlidingMomentsTinyWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	stream := make([]complex128, 60)
	for i := range stream {
		stream[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for _, capacity := range []int{1, 2, 3, 5} {
		slide(t, stream, capacity, 4)
	}
}

func TestSlidingMomentsFitMatchesBatchFit(t *testing.T) {
	// On well-conditioned arcs the moment-based Pratt/Taubin fits must
	// reproduce the sample-based fits' centre and radius; only RMSE is
	// allowed to differ (algebraic estimate vs exact), and on clean
	// arcs even that must agree closely.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		center := complex(rng.NormFloat64()*2, rng.NormFloat64()*2)
		radius := 0.5 + rng.Float64()*2
		span := 0.5 + rng.Float64()*2
		n := 30 + rng.Intn(200)
		window := make([]complex128, n)
		for i := range window {
			a := span * math.Sin(float64(i)*0.07)
			window[i] = center + cmplx.Rect(radius, a) +
				complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
		}
		var s SlidingMoments
		s.Accumulate(window)

		inc, errInc := s.FitPratt()
		batch, errBatch := FitCirclePratt(window)
		if errInc != nil || errBatch != nil {
			t.Fatalf("trial %d: fit errors inc=%v batch=%v", trial, errInc, errBatch)
		}
		tol := 1e-9 * (1 + cmplx.Abs(batch.Center) + batch.Radius)
		if cmplx.Abs(inc.Center-batch.Center) > tol {
			t.Fatalf("trial %d: centre %v, batch %v (diff %g)",
				trial, inc.Center, batch.Center, cmplx.Abs(inc.Center-batch.Center))
		}
		if math.Abs(inc.Radius-batch.Radius) > tol {
			t.Fatalf("trial %d: radius %g, batch %g", trial, inc.Radius, batch.Radius)
		}
		// Clean arc: residuals ~1% of radius, where the algebraic RMSE
		// estimate is accurate to first order.
		if batch.RMSE > 0 && math.Abs(inc.RMSE-batch.RMSE) > 0.2*batch.RMSE+1e-12 {
			t.Fatalf("trial %d: RMSE estimate %g far from exact %g", trial, inc.RMSE, batch.RMSE)
		}

		incT, errInc := s.FitTaubin()
		batchT, errBatch := FitCircleTaubin(window)
		if errInc != nil || errBatch != nil {
			t.Fatalf("trial %d: taubin errors inc=%v batch=%v", trial, errInc, errBatch)
		}
		if cmplx.Abs(incT.Center-batchT.Center) > tol || math.Abs(incT.Radius-batchT.Radius) > tol {
			t.Fatalf("trial %d: taubin fit diverged: %+v vs %+v", trial, incT, batchT)
		}
	}
}

func TestSlidingMomentsEvictToEmpty(t *testing.T) {
	s := NewSlidingMoments(8)
	vals := []complex128{1 + 2i, -3 + 0.5i, 0.25 - 4i}
	for _, v := range vals {
		s.Push(v)
	}
	for _, v := range vals {
		s.Evict(v)
	}
	if s.Count() != 0 {
		t.Fatalf("count %d after evicting everything", s.Count())
	}
	// Emptying must clear rounding residue exactly: refilling with one
	// sample then reading the mean must be exact.
	s.Push(2 - 1i)
	m := s.moments()
	if m.meanI != 2 || m.meanQ != -1 {
		t.Fatalf("residue after evict-to-empty: mean (%g, %g)", m.meanI, m.meanQ)
	}
}

func TestSlidingMomentsDegenerate(t *testing.T) {
	var s SlidingMoments
	if _, err := s.FitPratt(); err == nil {
		t.Fatal("empty accumulator must not fit")
	}
	s.Push(1)
	s.Push(1)
	if _, err := s.FitPratt(); err == nil {
		t.Fatal("two samples must not fit")
	}
	s.Push(1)
	if _, err := s.FitPratt(); err == nil {
		t.Fatal("coincident samples must be a degenerate fit")
	}
	if s.Variance2D() != 0 {
		t.Fatalf("coincident cloud variance %g", s.Variance2D())
	}
}

func TestSlidingMomentsResetKeepsInterval(t *testing.T) {
	s := NewSlidingMoments(2)
	for i := 0; i < 8; i++ {
		s.Push(complex(float64(i), 1))
		if i >= 3 {
			s.Evict(complex(float64(i-3), 1))
		}
	}
	if !s.NeedsRenorm() {
		t.Fatal("renorm not requested after enough evictions")
	}
	s.Reset()
	if s.Count() != 0 || s.NeedsRenorm() {
		t.Fatal("reset must empty the accumulator and clear the request")
	}
	// The interval survives: evictions accumulate toward it again.
	for i := 0; i < 6; i++ {
		s.Push(complex(0.5*float64(i), -1))
		if i >= 2 {
			s.Evict(complex(0.5*float64(i-2), -1))
		}
	}
	if !s.NeedsRenorm() {
		t.Fatal("renorm interval lost across Reset")
	}
}
