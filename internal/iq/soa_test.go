package iq

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randCloud(seed int64, n int) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex(2+0.3*rng.NormFloat64(), -1+0.3*rng.NormFloat64())
	}
	return z
}

func TestPlanes32RoundTrip(t *testing.T) {
	z := randCloud(1, 64)
	p := ComplexToPlanes(z)
	if p.Len() != len(z) {
		t.Fatalf("len %d, want %d", p.Len(), len(z))
	}
	back := p.ToComplex(make([]complex128, len(z)))
	for i := range z {
		if cmplx.Abs(back[i]-z[i]) > 1e-6*cmplx.Abs(z[i]) {
			t.Fatalf("sample %d: %v -> %v", i, z[i], back[i])
		}
		if p.At(i) != back[i] {
			t.Fatalf("At(%d) disagrees with ToComplex", i)
		}
	}
	p.Set(3, 5+7i)
	if p.At(3) != 5+7i {
		t.Fatalf("Set/At: got %v", p.At(3))
	}
}

func TestMomentSums32MatchesComplexMoments(t *testing.T) {
	z := randCloud(2, 500)
	p := ComplexToPlanes(z)
	sumI, sumQ, sumII, sumQQ, sumIQ := MomentSums32(p.I, p.Q)
	var wI, wQ, wII, wQQ, wIQ float64
	for i := range z {
		// Reference over the same float32-quantised samples: the kernel
		// under test is the accumulation, not the narrowing.
		x := float64(p.I[i])
		y := float64(p.Q[i])
		wI += x
		wQ += y
		wII += x * x
		wQQ += y * y
		wIQ += x * y
	}
	for _, d := range []struct{ got, want float64 }{
		{sumI, wI}, {sumQ, wQ}, {sumII, wII}, {sumQQ, wQQ}, {sumIQ, wIQ},
	} {
		if d.got != d.want {
			t.Fatalf("moment sum %g, want %g", d.got, d.want)
		}
	}
}

func TestVariance2DPlanesMatchesVariance2D(t *testing.T) {
	z := randCloud(3, 400)
	p := ComplexToPlanes(z)
	want := Variance2D(z)
	got := Variance2DPlanes(p.I, p.Q)
	if math.Abs(got-want) > 1e-5*math.Abs(want) {
		t.Fatalf("variance %g, want %g", got, want)
	}
	if Variance2DPlanes(p.I[:1], p.Q[:1]) != 0 {
		t.Fatal("single sample must have zero variance")
	}
}

func TestFinitePlanes(t *testing.T) {
	p := ComplexToPlanes(randCloud(4, 16))
	if !FinitePlanes(p.I, p.Q) {
		t.Fatal("finite planes reported non-finite")
	}
	p.I[7] = float32(math.NaN())
	if FinitePlanes(p.I, p.Q) {
		t.Fatal("NaN slipped through")
	}
	p.I[7] = 0
	p.Q[2] = float32(math.Inf(-1))
	if FinitePlanes(p.I, p.Q) {
		t.Fatal("-Inf slipped through")
	}
}
