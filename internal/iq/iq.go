// Package iq provides complex in-phase/quadrature signal utilities:
// amplitude and phase extraction, phase unwrapping, two-dimensional
// variance of I/Q point clouds, and algebraic circle fitting (Kåsa,
// Pratt and Taubin). BlinkRadar's core insight is that eye reflections
// trace arc-shaped trajectories in the I/Q plane — the dynamic vector
// rotating around the static multipath vector — so the eye's range bin
// is found by 2-D variance and the blink waveform is recovered as the
// distance of each sample from a Pratt-fitted circle centre.
package iq

import (
	"math"
	"math/cmplx"
)

// Amplitudes returns |z| for each sample.
func Amplitudes(z []complex128) []float64 {
	out := make([]float64, len(z))
	for i, c := range z {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// Phases returns the wrapped phase of each sample in (-pi, pi].
func Phases(z []complex128) []float64 {
	out := make([]float64, len(z))
	for i, c := range z {
		out[i] = cmplx.Phase(c)
	}
	return out
}

// UnwrapPhases returns the phase of each sample with 2*pi discontinuities
// removed, so small physical displacements produce a continuous phase
// track (Eq. 9 of the paper: delta-phi = -4*pi*f0*delta-d/c).
func UnwrapPhases(z []complex128) []float64 {
	return Unwrap(Phases(z))
}

// Unwrap removes 2*pi jumps from a wrapped phase sequence in a new
// slice.
func Unwrap(phase []float64) []float64 {
	out := make([]float64, len(phase))
	if len(phase) == 0 {
		return out
	}
	out[0] = phase[0]
	offset := 0.0
	for i := 1; i < len(phase); i++ {
		d := phase[i] - phase[i-1]
		if d > math.Pi {
			offset -= 2 * math.Pi
		} else if d < -math.Pi {
			offset += 2 * math.Pi
		}
		out[i] = phase[i] + offset
	}
	return out
}

// Mean returns the centroid of the samples, or 0 for an empty slice.
func Mean(z []complex128) complex128 {
	if len(z) == 0 {
		return 0
	}
	var sum complex128
	for _, c := range z {
		sum += c
	}
	return sum / complex(float64(len(z)), 0)
}

// Variance2D returns the total two-dimensional variance of the samples
// about their centroid: E[|z - mean|^2]. This is the statistic the
// paper maximises over range bins to find the eye: embedded respiration
// and BCG interference makes the eye bin's I/Q cloud spread into an arc
// even between blinks, while pure-noise bins stay compact.
func Variance2D(z []complex128) float64 {
	if len(z) < 2 {
		return 0
	}
	m := Mean(z)
	var acc float64
	for _, c := range z {
		d := c - m
		acc += real(d)*real(d) + imag(d)*imag(d)
	}
	return acc / float64(len(z))
}

// Covariance returns the 2x2 covariance matrix entries (varI, varQ,
// covIQ) of the I/Q point cloud about its centroid.
func Covariance(z []complex128) (varI, varQ, covIQ float64) {
	if len(z) < 2 {
		return 0, 0, 0
	}
	m := Mean(z)
	n := float64(len(z))
	for _, c := range z {
		di := real(c) - real(m)
		dq := imag(c) - imag(m)
		varI += di * di
		varQ += dq * dq
		covIQ += di * dq
	}
	return varI / n, varQ / n, covIQ / n
}

// Eccentricity returns a measure in [0, 1] of how elongated the I/Q
// point cloud is: 0 for an isotropic cloud, approaching 1 for a
// degenerate line. Arc-shaped trajectories from small-displacement
// motion are strongly anisotropic, which helps distinguish them from
// circular thermal-noise clouds of similar variance.
func Eccentricity(z []complex128) float64 {
	varI, varQ, covIQ := Covariance(z)
	return eccentricityOf(varI, varQ, covIQ)
}

// EccentricityFromCov is Eccentricity on precomputed covariance
// entries, for callers that maintain sliding covariance sums and need
// the elongation without a pass over the samples.
func EccentricityFromCov(varI, varQ, covIQ float64) float64 {
	return eccentricityOf(varI, varQ, covIQ)
}

// eccentricityOf is Eccentricity on precomputed covariance entries, so
// moment accumulators can reuse it without a pass over the samples.
func eccentricityOf(varI, varQ, covIQ float64) float64 {
	tr := varI + varQ
	if tr <= 0 {
		return 0
	}
	// Eigenvalues of the symmetric 2x2 covariance matrix.
	d := math.Sqrt((varI-varQ)*(varI-varQ) + 4*covIQ*covIQ)
	l1 := (tr + d) / 2
	l2 := (tr - d) / 2
	if l1 <= 0 {
		return 0
	}
	if l2 < 0 {
		l2 = 0
	}
	return math.Sqrt(1 - l2/l1)
}

// DistancesFrom returns |z[i] - center| for each sample: the relative
// distance waveform the tracker feeds to the LEVD detector.
func DistancesFrom(z []complex128, center complex128) []float64 {
	out := make([]float64, len(z))
	for i, c := range z {
		out[i] = cmplx.Abs(c - center)
	}
	return out
}

// AngularExtent returns the angle in radians subtended at center by the
// sample cloud: the spread between the minimum and maximum sample angle
// measured around center. It quantifies how much of the fitted circle an
// arc trajectory covers. The phases are unwrapped in a single streaming
// pass (same arithmetic as Unwrap) so the bin-selection hot path stays
// allocation-free.
//
//blinkradar:hotpath
func AngularExtent(z []complex128, center complex128) float64 {
	if len(z) < 2 {
		return 0
	}
	prev := cmplx.Phase(z[0] - center)
	lo, hi := prev, prev
	offset := 0.0
	for _, c := range z[1:] {
		p := cmplx.Phase(c - center)
		d := p - prev
		if d > math.Pi {
			offset -= 2 * math.Pi
		} else if d < -math.Pi {
			offset += 2 * math.Pi
		}
		u := p + offset
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
		prev = p
	}
	ext := hi - lo
	if ext > 2*math.Pi {
		ext = 2 * math.Pi
	}
	return ext
}
