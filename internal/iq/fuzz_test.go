package iq

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeSamples interprets the fuzz payload as a stream of float64
// pairs (I, Q), discarding non-finite or absurdly large values that no
// radar front end can produce.
func decodeSamples(data []byte) []complex128 {
	const sampleBytes = 16
	n := len(data) / sampleBytes
	if n > 4096 {
		n = 4096
	}
	z := make([]complex128, 0, n)
	for i := 0; i < n; i++ {
		re := math.Float64frombits(binary.LittleEndian.Uint64(data[i*sampleBytes:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(data[i*sampleBytes+8:]))
		if !finite(re) || !finite(im) {
			continue
		}
		z = append(z, complex(re, im))
	}
	return z
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12
}

// offlineExtent is the reference implementation of AngularExtent: take
// every sample's phase around center, unwrap the whole sequence with
// the allocating Unwrap, and measure the spread. The streaming version
// must agree because it performs the same arithmetic in one pass.
func offlineExtent(z []complex128, center complex128) float64 {
	if len(z) < 2 {
		return 0
	}
	phases := make([]float64, len(z))
	for i, c := range z {
		phases[i] = math.Atan2(imag(c-center), real(c-center))
	}
	u := Unwrap(phases)
	lo, hi := u[0], u[0]
	for _, p := range u[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	ext := hi - lo
	if ext > 2*math.Pi {
		ext = 2 * math.Pi
	}
	return ext
}

// FuzzAngularExtent cross-checks the streaming single-pass extent
// against the offline unwrap-then-scan reference on arbitrary I/Q
// clouds and centres.
func FuzzAngularExtent(f *testing.F) {
	seed := make([]byte, 0, 8*16)
	for _, v := range []float64{1, 0, 0, 1, -1, 0.5, 0.25, -1, 1, 1, -0.5, -0.5, 0.1, 0.9, 2, -2} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed, 0.0, 0.0)
	f.Add(seed, 0.25, -0.75)
	f.Add([]byte{}, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, data []byte, cre, cim float64) {
		if !finite(cre) || !finite(cim) {
			t.Skip("non-finite centre")
		}
		z := decodeSamples(data)
		center := complex(cre, cim)
		got := AngularExtent(z, center)
		want := offlineExtent(z, center)
		if got < 0 || got > 2*math.Pi+1e-9 {
			t.Fatalf("extent %g outside [0, 2pi]", got)
		}
		// Identical arithmetic, so only representation-level noise is
		// tolerated.
		tol := 1e-9 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("streaming extent %g, offline reference %g (diff %g) on %d samples",
				got, want, math.Abs(got-want), len(z))
		}
	})
}

// FuzzSlidingMoments drives a SlidingMoments accumulator through a
// fuzz-chosen push/evict/renormalize schedule and cross-checks the
// recovered centred moments against the two-pass batch reference after
// every step. Non-finite and absurdly large payload values are dropped
// by decodeSamples, mirroring the upstream frame sanitizer.
func FuzzSlidingMoments(f *testing.F) {
	seed := make([]byte, 0, 16*16)
	for i := 0; i < 16; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(math.Cos(float64(i))))
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(math.Sin(float64(i))))
	}
	f.Add(seed, uint8(4), uint8(8))
	f.Add(seed, uint8(1), uint8(0))
	f.Add(seed, uint8(200), uint8(3))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, capSeed, renormSeed uint8) {
		stream := decodeSamples(data)
		capacity := 1 + int(capSeed)%64
		renormEvery := int(renormSeed) % 64 // 0 disables renormalization
		s := NewSlidingMoments(renormEvery)
		window := make([]complex128, 0, capacity)
		// peak2 tracks the largest per-sample squared magnitude the sums
		// have absorbed since their last exact recompute; eviction residue
		// scales with it, so the drift tolerances must too.
		peak2 := 0.0
		for _, z := range stream {
			if len(window) == capacity {
				s.Evict(window[0])
				window = window[:copy(window, window[1:])]
			}
			s.Push(z)
			window = append(window, z)
			if zz := real(z)*real(z) + imag(z)*imag(z); zz > peak2 {
				peak2 = zz
			}
			if s.NeedsRenorm() {
				s.Renormalize(window)
				// The sums are exact again; only the current window's
				// contents can seed future residue.
				peak2 = 0
				for _, w := range window {
					if zz := real(w)*real(w) + imag(w)*imag(w); zz > peak2 {
						peak2 = zz
					}
				}
			}
			requireMomentsMatchDrift(t, &s, window, peak2)
			checkExclusion(t, &s, window, peak2)
		}
	})
}

// checkExclusion is FuzzSlidingMoments's exclusion case: subtract a
// minority subset's sums from the accumulator the way
// FitPrattExcluding does (every 4th sample, mirroring the ~15-25%
// trim fraction of a tracker refit) and demand the difference
// accumulator's recovered moments match the two-pass batch reference
// over the kept samples. Tolerances are referenced to the FULL
// window's moment scales, not the kept subset's: the difference of
// raw sums carries cancellation residue proportional to the full
// window's magnitude, which is exactly the guarantee FitPrattExcluding
// documents.
func checkExclusion(t *testing.T, s *SlidingMoments, window []complex128, residue2 float64) {
	t.Helper()
	if len(window) < 8 {
		return
	}
	var sub SlidingMoments
	kept := make([]complex128, 0, len(window))
	for i, z := range window {
		if i%4 == 0 {
			sub.Push(z)
		} else {
			kept = append(kept, z)
		}
	}
	d := SlidingMoments{
		n:   s.n - sub.n,
		sx:  s.sx - sub.sx,
		sy:  s.sy - sub.sy,
		sxx: s.sxx - sub.sxx,
		sxy: s.sxy - sub.sxy,
		syy: s.syy - sub.syy,
		sxz: s.sxz - sub.sxz,
		syz: s.syz - sub.syz,
		szz: s.szz - sub.szz,
	}
	want, err := computeMoments(kept)
	if err != nil {
		t.Fatalf("batch moments over kept: %v", err)
	}
	got := d.moments()
	s2, s3, s4 := momentScales(window)
	if residue2 > s2 {
		s2 = residue2
		s3 = residue2 * math.Sqrt(residue2)
		s4 = residue2 * residue2
	}
	const rel = 1e-9
	check := func(name string, g, w, scale float64) {
		t.Helper()
		if math.Abs(g-w) > rel*(1+scale) {
			t.Fatalf("exclusion %s = %g, batch reference %g (diff %g, tol %g, kept=%d of %d)",
				name, g, w, math.Abs(g-w), rel*(1+scale), len(kept), len(window))
		}
	}
	check("meanI", got.meanI, want.meanI, math.Sqrt(s2))
	check("meanQ", got.meanQ, want.meanQ, math.Sqrt(s2))
	check("mxx", got.mxx, want.mxx, s2)
	check("myy", got.myy, want.myy, s2)
	check("mxy", got.mxy, want.mxy, s2)
	check("mxz", got.mxz, want.mxz, s3)
	check("myz", got.myz, want.myz, s3)
	check("mzz", got.mzz, want.mzz, s4)
}
