package iq

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeSamples interprets the fuzz payload as a stream of float64
// pairs (I, Q), discarding non-finite or absurdly large values that no
// radar front end can produce.
func decodeSamples(data []byte) []complex128 {
	const sampleBytes = 16
	n := len(data) / sampleBytes
	if n > 4096 {
		n = 4096
	}
	z := make([]complex128, 0, n)
	for i := 0; i < n; i++ {
		re := math.Float64frombits(binary.LittleEndian.Uint64(data[i*sampleBytes:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(data[i*sampleBytes+8:]))
		if !finite(re) || !finite(im) {
			continue
		}
		z = append(z, complex(re, im))
	}
	return z
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12
}

// offlineExtent is the reference implementation of AngularExtent: take
// every sample's phase around center, unwrap the whole sequence with
// the allocating Unwrap, and measure the spread. The streaming version
// must agree because it performs the same arithmetic in one pass.
func offlineExtent(z []complex128, center complex128) float64 {
	if len(z) < 2 {
		return 0
	}
	phases := make([]float64, len(z))
	for i, c := range z {
		phases[i] = math.Atan2(imag(c-center), real(c-center))
	}
	u := Unwrap(phases)
	lo, hi := u[0], u[0]
	for _, p := range u[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	ext := hi - lo
	if ext > 2*math.Pi {
		ext = 2 * math.Pi
	}
	return ext
}

// FuzzAngularExtent cross-checks the streaming single-pass extent
// against the offline unwrap-then-scan reference on arbitrary I/Q
// clouds and centres.
func FuzzAngularExtent(f *testing.F) {
	seed := make([]byte, 0, 8*16)
	for _, v := range []float64{1, 0, 0, 1, -1, 0.5, 0.25, -1, 1, 1, -0.5, -0.5, 0.1, 0.9, 2, -2} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed, 0.0, 0.0)
	f.Add(seed, 0.25, -0.75)
	f.Add([]byte{}, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, data []byte, cre, cim float64) {
		if !finite(cre) || !finite(cim) {
			t.Skip("non-finite centre")
		}
		z := decodeSamples(data)
		center := complex(cre, cim)
		got := AngularExtent(z, center)
		want := offlineExtent(z, center)
		if got < 0 || got > 2*math.Pi+1e-9 {
			t.Fatalf("extent %g outside [0, 2pi]", got)
		}
		// Identical arithmetic, so only representation-level noise is
		// tolerated.
		tol := 1e-9 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("streaming extent %g, offline reference %g (diff %g) on %d samples",
				got, want, math.Abs(got-want), len(z))
		}
	})
}

// FuzzSlidingMoments drives a SlidingMoments accumulator through a
// fuzz-chosen push/evict/renormalize schedule and cross-checks the
// recovered centred moments against the two-pass batch reference after
// every step. Non-finite and absurdly large payload values are dropped
// by decodeSamples, mirroring the upstream frame sanitizer.
func FuzzSlidingMoments(f *testing.F) {
	seed := make([]byte, 0, 16*16)
	for i := 0; i < 16; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(math.Cos(float64(i))))
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(math.Sin(float64(i))))
	}
	f.Add(seed, uint8(4), uint8(8))
	f.Add(seed, uint8(1), uint8(0))
	f.Add(seed, uint8(200), uint8(3))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, capSeed, renormSeed uint8) {
		stream := decodeSamples(data)
		capacity := 1 + int(capSeed)%64
		renormEvery := int(renormSeed) % 64 // 0 disables renormalization
		s := NewSlidingMoments(renormEvery)
		window := make([]complex128, 0, capacity)
		for _, z := range stream {
			if len(window) == capacity {
				s.Evict(window[0])
				window = window[:copy(window, window[1:])]
			}
			s.Push(z)
			window = append(window, z)
			if s.NeedsRenorm() {
				s.Renormalize(window)
			}
			requireMomentsMatch(t, &s, window)
		}
	})
}
