package iq

import (
	"errors"
	"math"
)

// Circle is a fitted circle in the I/Q plane. Center is complex(I, Q).
type Circle struct {
	// Center of the fitted circle.
	Center complex128
	// Radius of the fitted circle.
	Radius float64
	// RMSE is the root-mean-square of the radial residuals
	// | |z-Center| - Radius | over the fitted samples.
	RMSE float64
}

// ErrDegenerateFit is returned when the sample cloud does not determine
// a circle (fewer than three points, coincident points, or collinear
// points with a vanishing covariance determinant).
var ErrDegenerateFit = errors.New("iq: degenerate circle fit")

// moments holds the centred second- and third-order moments shared by
// the algebraic fits, following Chernov's formulation.
type moments struct {
	meanI, meanQ    float64
	mxx, myy, mxy   float64
	mxz, myz, mzz   float64
	mz, covXY, varZ float64
	n               int
}

func computeMoments(z []complex128) (moments, error) {
	var m moments
	m.n = len(z)
	if m.n < 3 {
		return m, ErrDegenerateFit
	}
	for _, c := range z {
		m.meanI += real(c)
		m.meanQ += imag(c)
	}
	fn := float64(m.n)
	m.meanI /= fn
	m.meanQ /= fn
	for _, c := range z {
		xi := real(c) - m.meanI
		yi := imag(c) - m.meanQ
		zi := xi*xi + yi*yi
		m.mxx += xi * xi
		m.myy += yi * yi
		m.mxy += xi * yi
		m.mxz += xi * zi
		m.myz += yi * zi
		m.mzz += zi * zi
	}
	m.mxx /= fn
	m.myy /= fn
	m.mxy /= fn
	m.mxz /= fn
	m.myz /= fn
	m.mzz /= fn
	m.mz = m.mxx + m.myy
	m.covXY = m.mxx*m.myy - m.mxy*m.mxy
	m.varZ = m.mzz - m.mz*m.mz
	return m, nil
}

// circle converts a characteristic root x into a Circle, translating
// the centre back from centred coordinates. radiusExtra adds the
// root-dependent term that differs between Pratt (+2x) and Taubin (+0).
// RMSE is left zero for the caller to fill in.
func (m moments) circle(x, radiusExtra float64) (Circle, error) {
	det := x*x - x*m.mz + m.covXY
	if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
		return Circle{}, ErrDegenerateFit
	}
	ci := (m.mxz*(m.myy-x) - m.myz*m.mxy) / det / 2
	cq := (m.myz*(m.mxx-x) - m.mxz*m.mxy) / det / 2
	r2 := ci*ci + cq*cq + m.mz + radiusExtra
	if r2 <= 0 || math.IsNaN(r2) {
		return Circle{}, ErrDegenerateFit
	}
	return Circle{
		Center: complex(ci+m.meanI, cq+m.meanQ),
		Radius: math.Sqrt(r2),
	}, nil
}

// finish converts a characteristic root x into a Circle and stamps the
// exact sample-based RMSE.
func (m moments) finish(z []complex128, x, radiusExtra float64) (Circle, error) {
	c, err := m.circle(x, radiusExtra)
	if err != nil {
		return Circle{}, err
	}
	c.RMSE = radialRMSE(z, c)
	return c, nil
}

// rmseEstimate approximates the radial RMSE of c over the point cloud
// summarised by m, without touching the samples. It is exact for the
// algebraic residual E[(|p-c|^2 - R^2)^2] and divides by 2R, which
// matches the geometric RMSE to first order when residuals are small
// against the radius — the regime every accepted arc fit lives in.
// Degenerate clouds (residuals comparable to R) overestimate slightly,
// which only makes the tracker's degenerate-fit gate more conservative.
func (m moments) rmseEstimate(c Circle) float64 {
	cx := real(c.Center) - m.meanI
	cy := imag(c.Center) - m.meanQ
	q := cx*cx + cy*cy
	// E[|p-c|^2] and E[|p-c|^4] in centred coordinates, from the same
	// moments the fit consumed.
	e2 := m.mz + q
	e4 := m.mzz + 4*cx*cx*m.mxx + 4*cy*cy*m.myy + q*q -
		4*cx*m.mxz - 4*cy*m.myz + 2*q*m.mz + 8*cx*cy*m.mxy
	r2 := c.Radius * c.Radius
	msr := e4 - 2*r2*e2 + r2*r2
	if msr <= 0 || c.Radius <= 0 {
		return 0
	}
	return math.Sqrt(msr) / (2 * c.Radius)
}

func radialRMSE(z []complex128, c Circle) float64 {
	if len(z) == 0 {
		return 0
	}
	var acc float64
	for _, p := range z {
		dx := real(p) - real(c.Center)
		dy := imag(p) - imag(c.Center)
		d := math.Hypot(dx, dy) - c.Radius
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(z)))
}

// FitCirclePratt fits a circle to the I/Q samples using Pratt's
// algebraic method (minimising the algebraic distance under the
// constraint B^2 + C^2 - 4AD = 1). The paper selects this fit because it
// is "lightweight and robust" for short arcs — exactly the regime of
// blink- and BCG-induced trajectories, which subtend only a small
// angular extent of the circle.
func FitCirclePratt(z []complex128) (Circle, error) {
	m, err := computeMoments(z)
	if err != nil {
		return Circle{}, err
	}
	x := m.prattRoot()
	return m.finish(z, x, 2*x)
}

// prattRoot solves Pratt's characteristic polynomial
// P(x) = A0 + A1 x + A2 x^2 + 4 x^4 by a guarded Newton iteration from
// x = 0 (Chernov).
func (m moments) prattRoot() float64 {
	a2 := -3*m.mz*m.mz - m.mzz
	a1 := m.varZ*m.mz + 4*m.covXY*m.mz - m.mxz*m.mxz - m.myz*m.myz
	a0 := m.mxz*(m.mxz*m.myy-m.myz*m.mxy) + m.myz*(m.myz*m.mxx-m.mxz*m.mxy) - m.varZ*m.covXY
	a22 := a2 + a2

	x := 0.0
	y := a0
	for iter := 0; iter < 50; iter++ {
		dy := a1 + x*(a22+16*x*x)
		if dy == 0 {
			break
		}
		xNew := x - y/dy
		if xNew == x || math.IsNaN(xNew) || math.IsInf(xNew, 0) {
			break
		}
		yNew := a0 + xNew*(a1+xNew*(a2+4*xNew*xNew))
		if math.Abs(yNew) >= math.Abs(y) {
			break
		}
		x, y = xNew, yNew
	}
	return x
}

// FitCircleTaubin fits a circle using Taubin's method, a slightly
// different algebraic normalisation with near-identical accuracy to
// Pratt. Provided for cross-validation in tests and ablations.
func FitCircleTaubin(z []complex128) (Circle, error) {
	m, err := computeMoments(z)
	if err != nil {
		return Circle{}, err
	}
	return m.finish(z, m.taubinRoot(), 0)
}

// taubinRoot solves Taubin's characteristic polynomial by the same
// guarded Newton iteration as prattRoot.
func (m moments) taubinRoot() float64 {
	a3 := 4 * m.mz
	a2 := -3*m.mz*m.mz - m.mzz
	a1 := m.varZ*m.mz + 4*m.covXY*m.mz - m.mxz*m.mxz - m.myz*m.myz
	a0 := m.mxz*(m.mxz*m.myy-m.myz*m.mxy) + m.myz*(m.myz*m.mxx-m.mxz*m.mxy) - m.varZ*m.covXY
	a22 := a2 + a2
	a33 := a3 + a3 + a3

	x := 0.0
	y := a0
	for iter := 0; iter < 50; iter++ {
		dy := a1 + x*(a22+a33*x)
		if dy == 0 {
			break
		}
		xNew := x - y/dy
		if xNew == x || math.IsNaN(xNew) || math.IsInf(xNew, 0) {
			break
		}
		yNew := a0 + xNew*(a1+xNew*(a2+xNew*a3))
		if math.Abs(yNew) >= math.Abs(y) {
			break
		}
		x, y = xNew, yNew
	}
	return x
}

// FitCircleKasa fits a circle with the Kåsa linear least-squares method.
// It is the cheapest of the three fits but biased toward smaller radii
// on short arcs; included as an ablation baseline.
func FitCircleKasa(z []complex128) (Circle, error) {
	m, err := computeMoments(z)
	if err != nil {
		return Circle{}, err
	}
	det := 2 * m.covXY
	if det == 0 {
		return Circle{}, ErrDegenerateFit
	}
	ci := (m.mxz*m.myy - m.myz*m.mxy) / det
	cq := (m.myz*m.mxx - m.mxz*m.mxy) / det
	r2 := ci*ci + cq*cq + m.mz
	if r2 <= 0 || math.IsNaN(r2) {
		return Circle{}, ErrDegenerateFit
	}
	c := Circle{
		Center: complex(ci+m.meanI, cq+m.meanQ),
		Radius: math.Sqrt(r2),
	}
	c.RMSE = radialRMSE(z, c)
	return c, nil
}
