package iq

import "math"

// Planes32 is the struct-of-arrays frame layout of the real-time
// pipeline: the in-phase and quadrature components of a complex series
// stored as two separate float32 planes. Splitting the components keeps
// each plane's memory traffic half of the equivalent []complex128 and
// lets the per-plane DSP kernels (dsp.FusedCascade and friends) run as
// plain real-valued passes instead of complex arithmetic. Precision
// policy: raw radar samples carry far fewer significant bits than a
// float32 mantissa, so the planes hold samples and every accumulated
// statistic is kept in float64 (see MomentSums32).
type Planes32 struct {
	I []float32
	Q []float32
}

// MakePlanes32 allocates an n-sample plane pair.
func MakePlanes32(n int) Planes32 {
	return Planes32{I: make([]float32, n), Q: make([]float32, n)}
}

// Len returns the number of samples (the shorter plane if they differ).
func (p Planes32) Len() int {
	if len(p.I) < len(p.Q) {
		return len(p.I)
	}
	return len(p.Q)
}

// At returns sample i as a complex128.
func (p Planes32) At(i int) complex128 {
	return complex(float64(p.I[i]), float64(p.Q[i]))
}

// Set stores z at index i.
func (p Planes32) Set(i int, z complex128) {
	p.I[i] = float32(real(z))
	p.Q[i] = float32(imag(z))
}

// FromComplex fills the planes from a complex frame. Lengths must
// match; this is the sanctioned float64→float32 narrowing boundary of
// the pipeline (raw samples, never accumulated statistics).
//
//blinkradar:convert
func (p Planes32) FromComplex(frame []complex128) {
	_ = p.I[len(frame)-1]
	_ = p.Q[len(frame)-1]
	for i, z := range frame {
		p.I[i] = float32(real(z))
		p.Q[i] = float32(imag(z))
	}
}

// ToComplex widens the planes into dst, which must have at least Len
// samples, and returns the filled prefix.
//
//blinkradar:convert
func (p Planes32) ToComplex(dst []complex128) []complex128 {
	n := p.Len()
	dst = dst[:n]
	for i := range dst {
		dst[i] = complex(float64(p.I[i]), float64(p.Q[i]))
	}
	return dst
}

// ComplexToPlanes splits a complex series into freshly allocated
// planes: the offline/test-path convenience mirror of FromComplex.
//
//blinkradar:convert
func ComplexToPlanes(z []complex128) Planes32 {
	p := MakePlanes32(len(z))
	p.FromComplex(z)
	return p
}

// MomentSums32 accumulates the five I/Q moment sums of a plane pair in
// one pass: Σi, Σq, Σi², Σq², Σi·q. Accumulation is float64 — a
// float32 running sum would random-walk its rounding error with the
// window length — which is why the return values, and every statistic
// derived from them, stay in float64 on the SoA path.
//
//blinkradar:hotpath
func MomentSums32(ip, qp []float32) (sumI, sumQ, sumII, sumQQ, sumIQ float64) {
	n := len(ip)
	if len(qp) < n {
		n = len(qp)
	}
	for k := 0; k < n; k++ {
		x := float64(ip[k])
		y := float64(qp[k])
		sumI += x
		sumQ += y
		sumII += x * x
		sumQQ += y * y
		sumIQ += x * y
	}
	return
}

// Variance2DPlanes is Variance2D over a float32 plane pair: the total
// 2-D variance of the I/Q cloud about its centroid, computed from one
// MomentSums32 pass.
func Variance2DPlanes(ip, qp []float32) float64 {
	n := len(ip)
	if len(qp) < n {
		n = len(qp)
	}
	if n < 2 {
		return 0
	}
	sumI, sumQ, sumII, sumQQ, _ := MomentSums32(ip, qp)
	fn := float64(n)
	mi, mq := sumI/fn, sumQ/fn
	varI := sumII/fn - mi*mi
	varQ := sumQQ/fn - mq*mq
	if varI < 0 {
		varI = 0
	}
	if varQ < 0 {
		varQ = 0
	}
	return varI + varQ
}

// FinitePlanes reports whether every sample of the plane pair is
// finite in both components (the SoA mirror of a per-sample isFinite
// sweep). NaN propagates through float64→float32 narrowing and ±Inf
// stays infinite, so checking the narrowed planes catches exactly the
// samples the complex-path sweep would.
//
//blinkradar:hotpath
func FinitePlanes(ip, qp []float32) bool {
	for _, v := range ip {
		d := float64(v)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return false
		}
	}
	for _, v := range qp {
		d := float64(v)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return false
		}
	}
	return true
}
