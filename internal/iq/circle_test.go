package iq

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// circlePoints samples an arc of the circle (center, radius) spanning
// [a0, a1] radians with n points and additive noise sigma.
func circlePoints(center complex128, radius, a0, a1 float64, n int, sigma float64, rng *rand.Rand) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		a := a0 + (a1-a0)*float64(i)/float64(n-1)
		p := center + cmplx.Rect(radius, a)
		if sigma > 0 {
			p += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
		out[i] = p
	}
	return out
}

// fitters enumerates the three algebraic fits under test.
var fitters = map[string]func([]complex128) (Circle, error){
	"pratt":  FitCirclePratt,
	"taubin": FitCircleTaubin,
	"kasa":   FitCircleKasa,
}

func TestCircleFitsExactFullCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := circlePoints(3-2i, 1.7, 0, 2*math.Pi, 90, 0, rng)
	for name, fit := range fitters {
		t.Run(name, func(t *testing.T) {
			c, err := fit(pts)
			if err != nil {
				t.Fatal(err)
			}
			if cmplx.Abs(c.Center-(3-2i)) > 1e-9 {
				t.Fatalf("center %v, want 3-2i", c.Center)
			}
			if !approx(c.Radius, 1.7, 1e-9) {
				t.Fatalf("radius %g, want 1.7", c.Radius)
			}
			if c.RMSE > 1e-9 {
				t.Fatalf("RMSE %g on exact data", c.RMSE)
			}
		})
	}
}

func TestCircleFitsRandomCirclesProperty(t *testing.T) {
	// Pratt and Taubin must recover randomly placed circles from clean
	// half arcs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		center := complex(rng.NormFloat64()*5, rng.NormFloat64()*5)
		radius := 0.5 + rng.Float64()*4
		a0 := rng.Float64() * 2 * math.Pi
		pts := circlePoints(center, radius, a0, a0+math.Pi, 60, 0, rng)
		for _, fit := range []func([]complex128) (Circle, error){FitCirclePratt, FitCircleTaubin} {
			c, err := fit(pts)
			if err != nil {
				return false
			}
			if cmplx.Abs(c.Center-center) > 1e-6*(1+cmplx.Abs(center)) {
				return false
			}
			if !approx(c.Radius, radius, 1e-6*(1+radius)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrattNoisyShortArc(t *testing.T) {
	// The regime the tracker lives in: a short arc with noise. Pratt
	// must land near the truth; Kåsa is known to shrink the radius.
	rng := rand.New(rand.NewSource(7))
	center := complex(1, 2)
	const radius = 2.0
	pts := circlePoints(center, radius, 0.3, 1.5, 400, 0.01, rng)
	pratt, err := FitCirclePratt(pts)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(pratt.Center-center) > 0.1 {
		t.Fatalf("pratt center error %g", cmplx.Abs(pratt.Center-center))
	}
	if math.Abs(pratt.Radius-radius) > 0.1 {
		t.Fatalf("pratt radius %g, want %g", pratt.Radius, radius)
	}
	if pratt.RMSE > 0.05 {
		t.Fatalf("pratt RMSE %g too large", pratt.RMSE)
	}
}

func TestCircleFitDegenerate(t *testing.T) {
	cases := []struct {
		name string
		pts  []complex128
	}{
		{"too few", []complex128{1, 2}},
		{"coincident", []complex128{1 + 1i, 1 + 1i, 1 + 1i, 1 + 1i}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for name, fit := range fitters {
				if _, err := fit(tc.pts); err == nil {
					t.Errorf("%s accepted %s input", name, tc.name)
				}
			}
		})
	}
}

func TestKasaCollinearRejected(t *testing.T) {
	pts := []complex128{0, 1 + 1i, 2 + 2i, 3 + 3i}
	if _, err := FitCircleKasa(pts); err == nil {
		t.Fatal("Kåsa must reject collinear points")
	}
}

func TestCircleRMSEMeasuresNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const sigma = 0.05
	pts := circlePoints(0, 3, 0, 2*math.Pi, 720, sigma, rng)
	c, err := FitCirclePratt(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Radial residuals of isotropic noise have sigma ~= noise sigma.
	if c.RMSE < sigma*0.7 || c.RMSE > sigma*1.3 {
		t.Fatalf("RMSE %g, want ~%g", c.RMSE, sigma)
	}
}
