package iq

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAmplitudesPhases(t *testing.T) {
	z := []complex128{3 + 4i, 0 - 2i}
	amp := Amplitudes(z)
	if !approx(amp[0], 5, 1e-12) || !approx(amp[1], 2, 1e-12) {
		t.Fatalf("amplitudes %v", amp)
	}
	ph := Phases(z)
	if !approx(ph[1], -math.Pi/2, 1e-12) {
		t.Fatalf("phase %g, want -pi/2", ph[1])
	}
}

// unwrapRecoversTruth is the unwrap round-trip property: unwrapping the
// wrapped version of any slowly-varying phase track recovers it up to a
// constant 2*pi multiple. The truth walk draws Gaussian steps and
// clamps them to ±3.0: unwrapping is only well-defined for step
// magnitudes below pi, and an unclamped sigma=0.8 walk exceeds pi on
// rare tails (seed -4341268289692037633 used to flake this test).
func unwrapRecoversTruth(seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	n := 10 + rng.Intn(200)
	truth := make([]float64, n)
	truth[0] = rng.Float64() * 2 * math.Pi
	for i := 1; i < n; i++ {
		step := rng.NormFloat64() * 0.8
		if step > 3.0 {
			step = 3.0
		} else if step < -3.0 {
			step = -3.0
		}
		truth[i] = truth[i-1] + step
	}
	wrapped := make([]float64, n)
	for i, v := range truth {
		wrapped[i] = math.Atan2(math.Sin(v), math.Cos(v))
	}
	un := Unwrap(wrapped)
	offset := truth[0] - un[0]
	if r := math.Mod(offset, 2*math.Pi); math.Abs(r) > 1e-9 && math.Abs(math.Abs(r)-2*math.Pi) > 1e-9 {
		return false
	}
	for i := range un {
		if !approx(un[i]+offset, truth[i], 1e-9) {
			return false
		}
	}
	return true
}

func TestUnwrapContinuousProperty(t *testing.T) {
	if err := quick.Check(unwrapRecoversTruth, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnwrapContinuousRegressionSeed(t *testing.T) {
	// This seed draws a Gaussian step past pi early in the walk and
	// failed the property before the clamp was added.
	if !unwrapRecoversTruth(-4341268289692037633) {
		t.Fatal("unwrap property failed for the regression seed")
	}
}

func TestUnwrapPhasesJump(t *testing.T) {
	// Crossing the -pi/pi boundary must not produce a 2*pi hop.
	z := []complex128{
		cmplx.Rect(1, math.Pi-0.1),
		cmplx.Rect(1, math.Pi+0.1), // wraps to -pi+0.1
	}
	u := UnwrapPhases(z)
	if got := u[1] - u[0]; !approx(got, 0.2, 1e-9) {
		t.Fatalf("unwrapped step %g, want 0.2", got)
	}
}

func TestMeanVariance2D(t *testing.T) {
	z := []complex128{1 + 1i, 3 + 1i, 1 + 3i, 3 + 3i}
	if m := Mean(z); !approx(real(m), 2, 1e-12) || !approx(imag(m), 2, 1e-12) {
		t.Fatalf("mean %v, want 2+2i", m)
	}
	// Each point is at squared distance 2 from the centroid.
	if v := Variance2D(z); !approx(v, 2, 1e-12) {
		t.Fatalf("variance %g, want 2", v)
	}
	if Variance2D(z[:1]) != 0 {
		t.Fatal("variance of one sample should be 0")
	}
}

func TestVariance2DInvarianceProperty(t *testing.T) {
	// 2-D variance is invariant to rotation and translation.
	f := func(seed int64, angleRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		z := make([]complex128, n)
		for i := range z {
			z[i] = complex(rng.NormFloat64()*3, rng.NormFloat64())
		}
		base := Variance2D(z)
		angle := float64(angleRaw) / 65535 * 2 * math.Pi
		rot := cmplx.Rect(1, angle)
		shift := complex(rng.NormFloat64()*10, rng.NormFloat64()*10)
		moved := make([]complex128, n)
		for i := range z {
			moved[i] = z[i]*rot + shift
		}
		return approx(Variance2D(moved), base, 1e-7*(1+base))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEccentricity(t *testing.T) {
	// A straight-line cloud is maximally eccentric.
	var line []complex128
	for i := 0; i < 40; i++ {
		line = append(line, complex(float64(i), 2*float64(i)))
	}
	if e := Eccentricity(line); e < 0.999 {
		t.Fatalf("line eccentricity %g, want ~1", e)
	}
	// A symmetric circular cloud is nearly isotropic.
	var ring []complex128
	for i := 0; i < 360; i++ {
		a := float64(i) * math.Pi / 180
		ring = append(ring, cmplx.Rect(1, a))
	}
	if e := Eccentricity(ring); e > 0.05 {
		t.Fatalf("ring eccentricity %g, want ~0", e)
	}
	if Eccentricity(nil) != 0 {
		t.Fatal("empty eccentricity should be 0")
	}
}

func TestDistancesFrom(t *testing.T) {
	z := []complex128{1, 1i, -1}
	d := DistancesFrom(z, 0)
	for i, v := range d {
		if !approx(v, 1, 1e-12) {
			t.Fatalf("distance %d = %g, want 1", i, v)
		}
	}
}

func TestAngularExtent(t *testing.T) {
	// A 90-degree arc subtends pi/2 at its centre.
	var arc []complex128
	for i := 0; i <= 90; i++ {
		a := float64(i) * math.Pi / 180
		arc = append(arc, cmplx.Rect(2, a))
	}
	if got := AngularExtent(arc, 0); !approx(got, math.Pi/2, 1e-9) {
		t.Fatalf("arc extent %g, want %g", got, math.Pi/2)
	}
	// Multiple full turns are reported capped at 2*pi.
	var spins []complex128
	for i := 0; i < 1000; i++ {
		a := float64(i) * 0.05
		spins = append(spins, cmplx.Rect(1, a))
	}
	if got := AngularExtent(spins, 0); !approx(got, 2*math.Pi, 1e-9) {
		t.Fatalf("multi-turn extent %g, want capped 2*pi", got)
	}
	if AngularExtent(arc[:1], 0) != 0 {
		t.Fatal("single-sample extent should be 0")
	}
}
