package scenario

import (
	"math"
	"math/cmplx"
	"testing"

	"blinkradar/internal/physio"
	"blinkradar/internal/vehicle"
)

func TestSpecValidate(t *testing.T) {
	good := DefaultSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"bad state", func(s *Spec) { s.State = 0 }},
		{"bad environment", func(s *Spec) { s.Environment = 0 }},
		{"zero duration", func(s *Spec) { s.Duration = 0 }},
		{"too close", func(s *Spec) { s.EyeDistance = 0.01 }},
		{"silly azimuth", func(s *Spec) { s.AzimuthDeg = 120 }},
		{"bad subject", func(s *Spec) { s.Subject.EyeWidthM = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := DefaultSpec()
			tc.mutate(&spec)
			if err := spec.Validate(); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestGenerateBasics(t *testing.T) {
	spec := DefaultSpec()
	spec.Duration = 20
	cap, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := cap.Frames.NumFrames(); got != 500 {
		t.Fatalf("frames %d, want 500 (20 s at 25 fps)", got)
	}
	if cap.EyeBin != cap.Frames.DistanceBin(spec.EyeDistance) {
		t.Fatalf("eye bin %d inconsistent", cap.EyeBin)
	}
	if len(cap.Truth) == 0 {
		t.Fatal("no ground-truth blinks in 20 s")
	}
	for i, b := range cap.Truth {
		if b.Start < 0 || b.End() > spec.Duration {
			t.Fatalf("blink %d outside the capture: %+v", i, b)
		}
	}
	if cap.State != spec.State {
		t.Fatal("state not recorded")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec := DefaultSpec()
	spec.Duration = 10
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Truth) != len(b.Truth) {
		t.Fatal("truth differs for identical specs")
	}
	for k := range a.Frames.Data {
		for bin := range a.Frames.Data[k] {
			if a.Frames.Data[k][bin] != b.Frames.Data[k][bin] {
				t.Fatalf("frame %d bin %d differs", k, bin)
			}
		}
	}
	spec.Seed++
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Frames.Data[100][a.EyeBin] == c.Frames.Data[100][c.EyeBin] {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestGenerateEyeBinCarriesSignal(t *testing.T) {
	spec := DefaultSpec()
	spec.Duration = 10
	cap, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	power := cap.Frames.MeanPowerPerBin()
	// The face region must out-power remote empty bins by orders of
	// magnitude.
	remote := cap.Frames.DistanceBin(1.4)
	if power[cap.EyeBin] < 100*power[remote] {
		t.Fatalf("eye bin power %g not dominating empty bin %g", power[cap.EyeBin], power[remote])
	}
}

func TestGlassesAttenuateEyePath(t *testing.T) {
	base := DefaultSpec()
	base.Duration = 10
	bare, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	shaded := base
	shaded.Subject.Glasses = physio.Sunglasses
	dark, err := Generate(shaded)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: the only change is the lens, so the eye-bin return
	// should differ while the far clutter stays identical.
	if bare.Frames.Data[50][bare.EyeBin] == dark.Frames.Data[50][dark.EyeBin] {
		t.Fatal("sunglasses did not change the eye-bin return")
	}
}

func TestAngleReducesSignal(t *testing.T) {
	on := DefaultSpec()
	on.Duration = 5
	offAxis := on
	offAxis.AzimuthDeg = 45
	a, err := Generate(on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(offAxis)
	if err != nil {
		t.Fatal(err)
	}
	pa := a.Frames.MeanPowerPerBin()[a.EyeBin]
	pb := b.Frames.MeanPowerPerBin()[b.EyeBin]
	if pb >= pa {
		t.Fatalf("45-degree off-axis power %g not below boresight %g", pb, pa)
	}
}

func TestDrivingAddsVibration(t *testing.T) {
	lab := DefaultSpec()
	lab.Duration = 30
	drive := lab
	drive.Environment = Driving
	drive.Road = vehicle.BumpyRoad
	a, err := Generate(lab)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(drive)
	if err != nil {
		t.Fatal(err)
	}
	// Vibration sweeps the phase of the face return far more on the
	// bumpy drive; compare total phase path length at the eye bin.
	path := func(c *Capture) float64 {
		z := c.Frames.SlowTime(c.EyeBin)
		var acc float64
		for i := 1; i < len(z); i++ {
			d := cmplx.Phase(z[i]) - cmplx.Phase(z[i-1])
			for d > math.Pi {
				d -= 2 * math.Pi
			}
			for d < -math.Pi {
				d += 2 * math.Pi
			}
			acc += math.Abs(d)
		}
		return acc
	}
	if path(b) < 2*path(a) {
		t.Fatalf("bumpy drive phase path %g not well above lab %g", path(b), path(a))
	}
}

func TestEnvironmentString(t *testing.T) {
	if Lab.String() != "lab" || Driving.String() != "driving" {
		t.Fatal("environment stringer broken")
	}
	if Environment(9).String() == "" {
		t.Fatal("unknown environment must still render")
	}
}

func TestGenerateWithPassenger(t *testing.T) {
	spec := DefaultSpec()
	spec.Duration = 10
	spec.WithPassenger = true
	cap, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The passenger at 0.95 m adds power near its bin.
	pBin := cap.Frames.DistanceBin(0.95)
	without := spec
	without.WithPassenger = false
	capNo, err := Generate(without)
	if err != nil {
		t.Fatal(err)
	}
	with := cap.Frames.MeanPowerPerBin()[pBin]
	sans := capNo.Frames.MeanPowerPerBin()[pBin]
	if with <= sans {
		t.Fatalf("passenger bin power %g not above %g", with, sans)
	}
}
