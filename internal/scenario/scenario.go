// Package scenario composes the physiological, vehicle and RF substrate
// models into labelled synthetic radar captures: the stand-in for the
// paper's data collection with 12 participants in a Volkswagen Sagitar.
// A Spec fully determines a capture (all randomness flows from the
// seed), and every capture carries its ground-truth blink events.
package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"blinkradar/internal/physio"
	"blinkradar/internal/rf"
	"blinkradar/internal/vehicle"
)

// Environment selects between the paper's two evaluation settings.
type Environment int

const (
	// Lab is the static feasibility setup of Section II: subject
	// seated, radar 40 cm from the eyes, no vehicle.
	Lab Environment = iota + 1
	// Driving is the on-road setup of Section VI: radar on the
	// windshield, vehicle moving.
	Driving
)

// String implements fmt.Stringer.
func (e Environment) String() string {
	switch e {
	case Lab:
		return "lab"
	case Driving:
		return "driving"
	default:
		return fmt.Sprintf("Environment(%d)", int(e))
	}
}

// Antenna beamwidth parameters: the paper finds elevation tolerant to
// about 30 degrees but azimuth degrading sharply past 15-30 degrees
// (Sections VI-E/F and the Discussion's "limited angular range of the
// antenna").
const (
	azimuthSigmaDeg   = 26.0
	elevationSigmaDeg = 40.0
)

// Spec describes one capture to generate.
type Spec struct {
	// Subject is the simulated participant.
	Subject physio.Subject
	// State is the driver's alertness state (drives blink statistics).
	State physio.State
	// Environment selects lab versus on-road conditions.
	Environment Environment
	// Road is the road/traffic class (Driving only).
	Road vehicle.RoadType
	// Duration is the capture length in seconds.
	Duration float64
	// EyeDistance is the radar-to-eye range in metres (paper default
	// 0.4; evaluated at 0.2/0.4/0.8 in Fig. 15b).
	EyeDistance float64
	// AzimuthDeg is the horizontal off-axis angle of the eye relative
	// to antenna boresight (Fig. 15d).
	AzimuthDeg float64
	// ElevationDeg is the vertical off-axis angle (Fig. 15c).
	ElevationDeg float64
	// WithPassenger adds a fidgeting passenger reflector.
	WithPassenger bool
	// DeviceVibrationRMS adds vibration of the radar unit itself, in
	// metres RMS. Unlike road-induced body motion it displaces EVERY
	// path — including the static clutter the background filter is
	// supposed to cancel — which is why the paper's Discussion calls
	// device vibration "a real challenge for wireless sensing".
	DeviceVibrationRMS float64
	// Seed drives all randomness in the capture.
	Seed int64
	// Channel optionally overrides the radio configuration; the zero
	// value selects rf.DefaultChannelConfig.
	Channel rf.ChannelConfig
}

// DefaultSpec returns a 60 s awake lab capture of subject 1 at 0.4 m,
// boresight, with a fresh deterministic seed.
func DefaultSpec() Spec {
	return Spec{
		Subject:     physio.NewSubject(1),
		State:       physio.Awake,
		Environment: Lab,
		Road:        vehicle.SmoothHighway,
		Duration:    60,
		EyeDistance: 0.4,
		Seed:        1,
	}
}

// Validate reports whether the spec can be generated.
func (s Spec) Validate() error {
	if err := s.Subject.Validate(); err != nil {
		return fmt.Errorf("scenario: subject: %w", err)
	}
	switch {
	case s.State != physio.Awake && s.State != physio.Drowsy:
		return fmt.Errorf("scenario: invalid state %v", s.State)
	case s.Environment != Lab && s.Environment != Driving:
		return fmt.Errorf("scenario: invalid environment %v", s.Environment)
	case s.Duration <= 0:
		return fmt.Errorf("scenario: duration must be positive, got %g", s.Duration)
	case s.EyeDistance <= 0.05:
		return fmt.Errorf("scenario: eye distance must exceed 5 cm, got %g", s.EyeDistance)
	case math.Abs(s.AzimuthDeg) > 90 || math.Abs(s.ElevationDeg) > 90:
		return fmt.Errorf("scenario: angles must be within +/-90 degrees")
	case s.DeviceVibrationRMS < 0:
		return fmt.Errorf("scenario: device vibration must be non-negative, got %g", s.DeviceVibrationRMS)
	}
	return nil
}

// Capture is a generated synthetic recording with its ground truth.
type Capture struct {
	// Frames is the radar frame matrix the detector consumes.
	Frames *rf.FrameMatrix
	// Truth is the ground-truth blink sequence.
	Truth []physio.Blink
	// Spec records the generating parameters.
	Spec Spec
	// EyeBin is the true range bin of the eye at capture start
	// (diagnostic only; the detector must find it itself).
	EyeBin int
	// State is the ground-truth alertness state.
	State physio.State
}

// antennaGain returns the one-way amplitude gain of the antenna toward
// (azimuth, elevation) in degrees: a separable Gaussian beam.
func antennaGain(azDeg, elDeg float64) float64 {
	a := azDeg / azimuthSigmaDeg
	e := elDeg / elevationSigmaDeg
	return math.Exp(-0.5 * (a*a + e*e))
}

// Generate renders the capture described by spec.
func Generate(spec Spec) (*Capture, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := spec.Channel
	if cfg.NumBins == 0 {
		cfg = rf.DefaultChannelConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: channel config: %w", err)
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	sub := spec.Subject

	// Ground-truth blink process and eyelid kinematics.
	blinks, err := physio.GenerateBlinks(sub.Stats(spec.State), spec.Duration, rng)
	if err != nil {
		return nil, err
	}
	eyelid := physio.NewEyelid(blinks)

	// Posture shifts: more frequent while driving.
	motionCfg := physio.DefaultBodyMotionConfig()
	if spec.Environment == Driving {
		motionCfg.MeanInterval = 30
	}
	body, err := physio.GenerateBodyMotion(motionCfg, spec.Duration, rng)
	if err != nil {
		return nil, err
	}

	// Road vibration (zero-amplitude waveform in the lab).
	vibCfg := spec.Road.Profile()
	if spec.Environment == Lab {
		vibCfg.VibrationRMS = 0
		vibCfg.ManoeuvreRate = 0
	}
	vib, err := vehicle.GenerateVibration(vibCfg, spec.Duration, cfg.FrameRate, rng)
	if err != nil {
		return nil, err
	}

	// Angular gain applies twice (transmit and receive paths) to every
	// body reflector; lens attenuation twice to the eye path only.
	gain := antennaGain(spec.AzimuthDeg, spec.ElevationDeg)
	gain2 := gain * gain
	lens2 := sub.Glasses.Attenuation() * sub.Glasses.Attenuation()

	// headMotion is the common small-scale displacement of the head:
	// respiration coupling, BCG, vibration and posture drift.
	headMotion := func(t float64) float64 {
		return sub.Respiration.Head(t) + sub.Heartbeat.Head(t) + vib.At(t) + body.Displacement(t)
	}

	// The facial skin around the eyes is essentially coplanar with the
	// eye at radar resolution, but its sub-bin depth structure sets the
	// relative I/Q phases between the blink-modulated component and the
	// skin return — a geometry that varies from session to session and
	// spreads per-capture accuracy, as in Fig. 13a. The skin is a
	// continuum of scatterer depths, modelled as three sub-reflectors
	// with randomised offsets.
	faceOffsets := [3]float64{
		0.001 + 0.006*rng.Float64(),
		0.007 + 0.006*rng.Float64(),
		0.013 + 0.007*rng.Float64(),
	}
	faceAmps := [3]float64{
		0.55 + 0.2*rng.Float64(),
		0.45 + 0.2*rng.Float64(),
		0.35 + 0.2*rng.Float64(),
	}

	eyeBase := spec.EyeDistance
	reflectors := []rf.Reflector{
		// The eye: reflectivity blends eyeball and eyelid with lid
		// closure, and the sweeping lid edge shortens the effective
		// reflection path (Section II-B / Eq. 8-9).
		rf.FuncReflector{
			Name: "eye",
			Fn: func(t float64) (float64, float64) {
				closure := eyelid.Closure(t)
				rho := sub.EyeballReflectivity + (sub.EyelidReflectivity-sub.EyeballReflectivity)*closure
				rho *= sub.EyeSizeScale() * gain2 * lens2 * eyeReflectivityScale
				r := eyeBase + headMotion(t) - sub.BlinkPathDelta*closure
				return r, rho
			},
		},
		// Periocular/forehead skin in the same range bin as the eye:
		// strong, moves with the head, but carries no blink signature.
		rf.FuncReflector{
			Name: "face-near",
			Fn: func(t float64) (float64, float64) {
				return eyeBase + faceOffsets[0] + headMotion(t), faceAmps[0] * gain2
			},
		},
		rf.FuncReflector{
			Name: "face-mid",
			Fn: func(t float64) (float64, float64) {
				return eyeBase + faceOffsets[1] + headMotion(t), faceAmps[1] * gain2
			},
		},
		rf.FuncReflector{
			Name: "face-far",
			Fn: func(t float64) (float64, float64) {
				return eyeBase + faceOffsets[2] + headMotion(t), faceAmps[2] * gain2
			},
		},
		// Chin/lower face a little deeper.
		rf.FuncReflector{
			Name: "chin",
			Fn: func(t float64) (float64, float64) {
				return eyeBase + 0.09 + headMotion(t), 0.8 * gain2
			},
		},
		// Chest: a large reflector many bins away, but the windshield
		// radar is aimed at the face, so the chest sits 30-40 degrees
		// below boresight and is partially occluded by the steering
		// wheel — hence the strong depression-angle attenuation.
		rf.FuncReflector{
			Name: "chest",
			Fn: func(t float64) (float64, float64) {
				const chestBeamFactor = 0.35
				return eyeBase + 0.27 + sub.Respiration.Chest(t) + vib.At(t) + body.Displacement(t), 2.4 * chestBeamFactor * gain2
			},
		},
	}
	if sub.Glasses != physio.NoGlasses {
		// The lens itself reflects: a head-locked return just in front
		// of the eye.
		reflectors = append(reflectors, rf.FuncReflector{
			Name: "lens",
			Fn: func(t float64) (float64, float64) {
				return eyeBase - 0.018 + headMotion(t), 0.5 * gain2
			},
		})
	}
	for _, c := range scaleCabin(spec) {
		reflectors = append(reflectors, rf.StaticReflector{
			Name:         c.Name,
			Range:        c.Range,
			Reflectivity: c.Reflectivity,
		})
	}
	if spec.WithPassenger {
		reflectors = append(reflectors, vehicle.NewPassenger(0.95, spec.Duration, rng))
	}

	// Device vibration: the radar unit itself shakes, shifting every
	// path by the same time-varying offset (clutter included).
	if spec.DeviceVibrationRMS > 0 {
		devVib, err := vehicle.GenerateVibration(vehicle.VibrationConfig{
			VibrationRMS:    spec.DeviceVibrationRMS,
			VibrationBandHz: [2]float64{2, 14},
		}, spec.Duration, cfg.FrameRate, rng)
		if err != nil {
			return nil, err
		}
		shaken := make([]rf.Reflector, len(reflectors))
		for i, r := range reflectors {
			r := r
			shaken[i] = rf.FuncReflector{
				Name: r.Label() + "+device-vib",
				Fn: func(t float64) (float64, float64) {
					dist, rho := r.State(t)
					return dist + devVib.At(t), rho
				},
			}
		}
		reflectors = shaken
	}

	ch, err := rf.NewChannel(cfg, spec.Seed^0x5eed)
	if err != nil {
		return nil, err
	}
	frames, err := ch.Render(reflectors, spec.Duration)
	if err != nil {
		return nil, err
	}
	return &Capture{
		Frames: frames,
		Truth:  blinks,
		Spec:   spec,
		EyeBin: frames.DistanceBin(eyeBase),
		State:  spec.State,
	}, nil
}

// eyeReflectivityScale converts the subject's surface reflectivity to
// the small effective radar cross-section of the eye itself: the eye is
// a weak reflector compared to the face, chest and cabin clutter
// (paper Section IV-D: "the magnitude of eye reflections may be weaker
// than reflections from other surrounding objects").
const eyeReflectivityScale = 1.20

// scaleCabin returns the cabin clutter for the spec's geometry,
// shifting the default clutter so its spacing relative to the driver is
// preserved when the eye distance changes.
func scaleCabin(spec Spec) []vehicle.Clutter {
	cabin := vehicle.DefaultCabin()
	shift := spec.EyeDistance - 0.4
	out := make([]vehicle.Clutter, 0, len(cabin))
	for _, c := range cabin {
		c.Range += shift
		if c.Range > 0.05 {
			out = append(out, c)
		}
	}
	return out
}
