package rf

import (
	"fmt"
	"math"
	"math/rand"
)

// Reflector is anything that returns radar energy: the driver's eye,
// head, chest, cabin clutter, or a fidgeting passenger. Implementations
// live in the physio, vehicle and scenario packages.
type Reflector interface {
	// Label identifies the reflector in diagnostics.
	Label() string
	// State returns the instantaneous radar-to-reflector range in
	// metres and the dimensionless reflectivity (amplitude factor,
	// already including antenna gain and any lens attenuation) at
	// capture time t seconds.
	State(t float64) (rangeM, reflectivity float64)
}

// StaticReflector is a fixed-position reflector such as the dashboard,
// seat back or steering wheel (the clutter that background subtraction
// removes).
type StaticReflector struct {
	// Name identifies the reflector.
	Name string
	// Range is the constant radar-to-reflector distance in metres.
	Range float64
	// Reflectivity is the constant amplitude factor.
	Reflectivity float64
}

// Label implements Reflector.
func (s StaticReflector) Label() string { return s.Name }

// State implements Reflector.
func (s StaticReflector) State(float64) (float64, float64) {
	return s.Range, s.Reflectivity
}

// FuncReflector adapts a closure to the Reflector interface.
type FuncReflector struct {
	// Name identifies the reflector.
	Name string
	// Fn returns (range, reflectivity) at time t.
	Fn func(t float64) (float64, float64)
}

// Label implements Reflector.
func (f FuncReflector) Label() string { return f.Name }

// State implements Reflector.
func (f FuncReflector) State(t float64) (float64, float64) { return f.Fn(t) }

// ChannelConfig parameterises the simulated radar channel and receiver.
type ChannelConfig struct {
	// Pulse is the transmitted impulse (Eq. 1-3 parameters).
	Pulse Pulse
	// FrameRate is the slow-time rate in frames per second
	// (paper: 1/40 ms = 25 fps).
	FrameRate float64
	// NumBins is the number of fast-time range bins per frame.
	NumBins int
	// BinSpacing is the range covered by one bin in metres. The
	// paper quotes 1.07 cm separable distance; the default matches it.
	BinSpacing float64
	// ReferenceRange is the range at which a reflectivity of 1 yields
	// a unit-amplitude return; amplitudes scale as (ReferenceRange/R)^2
	// (two-way spreading).
	ReferenceRange float64
	// NoiseSigma is the per-bin complex thermal noise standard
	// deviation (per real component).
	NoiseSigma float64
	// PhaseNoiseSigma is the common per-frame oscillator phase jitter
	// standard deviation in radians.
	PhaseNoiseSigma float64
	// DirectPathAmplitude is the magnitude of the transmit-to-receive
	// antenna leakage that appears at bin 0 (the strongest peak in
	// Fig. 6(b)).
	DirectPathAmplitude float64
	// KernelSigmaBins is the standard deviation, in bins, of the
	// Gaussian kernel that spreads each reflector's return across
	// neighbouring range bins. The real radio applies matched-filter
	// pulse compression, so the post-compression profile is much
	// narrower than the raw envelope. The default of 4 bins
	// (about 4.3 cm sigma, or ~10 cm at -3 dB) matches the c/(2B)
	// resolution of the 1.4 GHz pulse. Zero selects the default.
	KernelSigmaBins float64
}

// DefaultChannelConfig returns the paper's radio configuration: 25 fps,
// 1.07 cm bins covering about 1.6 m, reference range 0.4 m.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		Pulse:               NewPulse(),
		FrameRate:           1 / DefaultFramePeriod,
		NumBins:             150,
		BinSpacing:          0.0107,
		ReferenceRange:      0.4,
		NoiseSigma:          0.005,
		PhaseNoiseSigma:     0.002,
		DirectPathAmplitude: 1.8,
		KernelSigmaBins:     4.0,
	}
}

// Validate reports whether the configuration is usable.
func (c ChannelConfig) Validate() error {
	if err := c.Pulse.Validate(); err != nil {
		return err
	}
	switch {
	case c.FrameRate <= 0:
		return fmt.Errorf("rf: frame rate must be positive, got %g", c.FrameRate)
	case c.NumBins <= 0:
		return fmt.Errorf("rf: number of bins must be positive, got %d", c.NumBins)
	case c.BinSpacing <= 0:
		return fmt.Errorf("rf: bin spacing must be positive, got %g", c.BinSpacing)
	case c.ReferenceRange <= 0:
		return fmt.Errorf("rf: reference range must be positive, got %g", c.ReferenceRange)
	case c.NoiseSigma < 0:
		return fmt.Errorf("rf: noise sigma must be non-negative, got %g", c.NoiseSigma)
	case c.PhaseNoiseSigma < 0:
		return fmt.Errorf("rf: phase noise sigma must be non-negative, got %g", c.PhaseNoiseSigma)
	case c.KernelSigmaBins < 0:
		return fmt.Errorf("rf: kernel sigma must be non-negative, got %g", c.KernelSigmaBins)
	}
	return nil
}

// MaxRange returns the largest range covered by the configured bins.
func (c ChannelConfig) MaxRange() float64 {
	return float64(c.NumBins) * c.BinSpacing
}

// Channel renders reflectors into frame matrices. It owns a random
// source for noise generation, so captures are reproducible given the
// same seed. Channel is not safe for concurrent use.
type Channel struct {
	cfg ChannelConfig
	rng *rand.Rand
	// kernelSigmaBins is the pulse energy spread (in bins) applied
	// around each reflector's fractional bin position.
	kernelSigmaBins float64
}

// NewChannel constructs a channel with the given configuration and
// deterministic seed.
func NewChannel(cfg ChannelConfig, seed int64) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sigma := cfg.KernelSigmaBins
	if sigma == 0 {
		sigma = 4
	}
	return &Channel{
		cfg:             cfg,
		rng:             rand.New(rand.NewSource(seed)),
		kernelSigmaBins: sigma,
	}, nil
}

// Config returns the channel configuration.
func (ch *Channel) Config() ChannelConfig { return ch.cfg }

// Render simulates a capture of the given duration over the supplied
// reflectors and returns the resulting frame matrix (Eq. 6: each
// reflector contributes alpha_p * exp(-j*4*pi*fc*R_p/c) spread over the
// bins its pulse envelope covers, plus receiver noise).
func (ch *Channel) Render(reflectors []Reflector, duration float64) (*FrameMatrix, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("rf: capture duration must be positive, got %g", duration)
	}
	frames := int(duration * ch.cfg.FrameRate)
	if frames == 0 {
		return nil, fmt.Errorf("rf: duration %g shorter than one frame period", duration)
	}
	m, err := NewFrameMatrix(frames, ch.cfg.NumBins, ch.cfg.FrameRate, ch.cfg.BinSpacing)
	if err != nil {
		return nil, err
	}
	waveNumber := 4 * math.Pi * ch.cfg.Pulse.CarrierHz / SpeedOfLight
	halfWidth := int(3*ch.kernelSigmaBins) + 1
	for k := 0; k < frames; k++ {
		t := float64(k) / ch.cfg.FrameRate
		row := m.Data[k]
		// Direct antenna leakage at bin 0.
		if ch.cfg.DirectPathAmplitude > 0 {
			ch.deposit(row, 0, ch.cfg.DirectPathAmplitude, 0, halfWidth)
		}
		for _, r := range reflectors {
			dist, rho := r.State(t)
			if rho == 0 || dist <= 0 || dist >= ch.cfg.MaxRange() {
				continue
			}
			spread := ch.cfg.ReferenceRange / dist
			amp := rho * spread * spread
			phase := -waveNumber * dist
			binPos := dist / ch.cfg.BinSpacing
			ch.deposit(row, binPos, amp, phase, halfWidth)
		}
		// Receiver impairments: common oscillator phase jitter plus
		// additive complex white noise.
		if ch.cfg.PhaseNoiseSigma > 0 {
			jitter := ch.rng.NormFloat64() * ch.cfg.PhaseNoiseSigma
			rot := complex(math.Cos(jitter), math.Sin(jitter))
			for b := range row {
				row[b] *= rot
			}
		}
		if ch.cfg.NoiseSigma > 0 {
			for b := range row {
				row[b] += complex(ch.rng.NormFloat64()*ch.cfg.NoiseSigma, ch.rng.NormFloat64()*ch.cfg.NoiseSigma)
			}
		}
	}
	return m, nil
}

// deposit adds a complex return of the given amplitude and phase,
// spread across bins around the fractional position binPos with the
// pulse-shaped Gaussian kernel.
func (ch *Channel) deposit(row []complex128, binPos, amp, phase float64, halfWidth int) {
	centre := int(math.Round(binPos))
	sigma := ch.kernelSigmaBins
	c := complex(amp*math.Cos(phase), amp*math.Sin(phase))
	for b := centre - halfWidth; b <= centre+halfWidth; b++ {
		if b < 0 || b >= len(row) {
			continue
		}
		d := (float64(b) - binPos) / sigma
		row[b] += c * complex(math.Exp(-0.5*d*d), 0)
	}
}
