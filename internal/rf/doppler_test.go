package rf

import (
	"math"
	"testing"
)

func TestRangeDopplerStaticScene(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.NoiseSigma = 0
	cfg.PhaseNoiseSigma = 0
	cfg.DirectPathAmplitude = 0
	ch, err := NewChannel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ch.Render([]Reflector{StaticReflector{Range: 0.5, Reflectivity: 1}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ComputeRangeDoppler(m, 0, 64, cfg.Pulse.CarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	// All energy must sit in the zero-Doppler row at the right range.
	vel, rng, _ := rd.Peak(false)
	if vel != 0 {
		t.Fatalf("static scene peak at %g m/s, want 0", vel)
	}
	if math.Abs(rng-0.5) > 2*cfg.BinSpacing {
		t.Fatalf("peak range %g, want 0.5", rng)
	}
	profile := rd.RangeProfile()
	if profile == nil {
		t.Fatal("no zero-Doppler profile")
	}
	// Hann sidelobes sit ~31 dB down; outside the main lobe the
	// static target must be strongly suppressed.
	if got := rd.Power[5][m.DistanceBin(0.5)]; got > profile[m.DistanceBin(0.5)]*1e-2 {
		t.Fatalf("static target leaks %g into a moving bin", got)
	}
}

func TestRangeDopplerMovingTarget(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.NoiseSigma = 0
	cfg.PhaseNoiseSigma = 0
	cfg.DirectPathAmplitude = 0
	ch, err := NewChannel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Approaching at 5 mm/s: phase advances at 2 v fc / c ~ 0.24 Hz,
	// well inside the 12.5 Hz Doppler span at 25 fps.
	const v = -0.005
	target := FuncReflector{
		Name: "walker",
		Fn: func(tt float64) (float64, float64) {
			return 0.8 + v*tt, 1
		},
	}
	m, err := ch.Render([]Reflector{target}, 11)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ComputeRangeDoppler(m, 0, 256, cfg.Pulse.CarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	vel, rng, _ := rd.Peak(true)
	if math.Abs(vel-v) > 0.002 {
		t.Fatalf("velocity %g m/s, want %g", vel, v)
	}
	if math.Abs(rng-0.78) > 0.06 {
		t.Fatalf("range %g, want ~0.78", rng)
	}
}

func TestRangeDopplerErrors(t *testing.T) {
	m, _ := NewFrameMatrix(16, 4, 25, 0.01)
	if _, err := ComputeRangeDoppler(m, 0, 16, 0); err == nil {
		t.Fatal("zero carrier must be rejected")
	}
	if _, err := ComputeRangeDoppler(m, 20, 16, 7.3e9); err == nil {
		t.Fatal("out-of-range start must be rejected")
	}
	if _, err := ComputeRangeDoppler(m, 12, 16, 7.3e9); err == nil {
		t.Fatal("too few frames must be rejected")
	}
}
