// Package rf simulates the IR-UWB radar front end used by BlinkRadar:
// Gaussian impulse synthesis (paper Eq. 1-3), a multipath reflection
// channel (Eq. 4-6), an I/Q receiver with thermal and phase noise, and
// the complex baseband frame matrix (slow time x range bins) that every
// downstream stage consumes. The real system uses a commercial X4-class
// system-on-chip impulse radio; this package substitutes a physics-level
// model that produces the same data product.
package rf

import (
	"fmt"
	"math"
)

// SpeedOfLight is the propagation speed of the radar signal in m/s.
const SpeedOfLight = 299792458.0

// Default radio parameters from the paper (Section IV-A / V).
const (
	// DefaultCarrierHz is the carrier frequency: 7.3 GHz.
	DefaultCarrierHz = 7.3e9
	// DefaultBandwidthHz is the -10 dB bandwidth: 1.4 GHz.
	DefaultBandwidthHz = 1.4e9
	// DefaultFramePeriod is the chirp/frame period: 40 ms (25 fps).
	DefaultFramePeriod = 0.040
)

// Pulse describes the transmitted Gaussian impulse
//
//	s(t) = Vtx * exp(-(t - Tp/2)^2 / (2*sigma_p^2))             (Eq. 1)
//	x_k(t) = s(t) * cos(2*pi*fc*(t - k*Ts))                     (Eq. 3)
//
// where sigma_p is derived from the -10 dB bandwidth.
type Pulse struct {
	// Amplitude is Vtx, the peak pulse amplitude in volts.
	Amplitude float64
	// Duration is Tp, the pulse duration in seconds.
	Duration float64
	// CarrierHz is fc, the up-conversion carrier frequency.
	CarrierHz float64
	// BandwidthHz is the -10 dB bandwidth of the pulse.
	BandwidthHz float64
}

// NewPulse returns the paper's transmit pulse: 7.3 GHz carrier, 1.4 GHz
// bandwidth, 2 ns duration, unit amplitude.
func NewPulse() Pulse {
	return Pulse{
		Amplitude:   1,
		Duration:    2e-9,
		CarrierHz:   DefaultCarrierHz,
		BandwidthHz: DefaultBandwidthHz,
	}
}

// Sigma returns sigma_p, the Gaussian envelope standard deviation
// corresponding to the -10 dB bandwidth. For a Gaussian envelope the
// -10 dB (power) bandwidth B satisfies
// sigma_t = sqrt(ln 10) / (pi * B) * ... ; we use the standard relation
// B_-10dB = (2*sqrt(ln(10)/2)) / (2*pi*sigma_t) * 2, simplified to
// sigma_t = sqrt(2*ln(10)) / (2*pi*B/2).
func (p Pulse) Sigma() float64 {
	// Gaussian envelope g(t)=exp(-t^2/(2 sigma^2)) has spectrum
	// G(f) proportional to exp(-2 (pi f sigma)^2). Power drops 10 dB when
	// 4 (pi f sigma)^2 = ln(10), i.e. f10 = sqrt(ln 10)/(2 pi sigma).
	// Two-sided -10 dB bandwidth B = 2 f10 => sigma = sqrt(ln 10)/(pi B).
	return math.Sqrt(math.Log(10)) / (math.Pi * p.BandwidthHz)
}

// Envelope evaluates the baseband Gaussian envelope s(t) at time t
// within the pulse window [0, Duration] (Eq. 1).
func (p Pulse) Envelope(t float64) float64 {
	s := p.Sigma()
	d := t - p.Duration/2
	return p.Amplitude * math.Exp(-d*d/(2*s*s))
}

// Transmitted evaluates the up-converted transmit waveform x(t) at time
// t within the pulse window (Eq. 3 with k = 0).
func (p Pulse) Transmitted(t float64) float64 {
	return p.Envelope(t) * math.Cos(2*math.Pi*p.CarrierHz*t)
}

// Waveform samples the transmitted pulse at the given sample rate over
// the full pulse duration. Used to regenerate Fig. 5(a).
func (p Pulse) Waveform(sampleRate float64) ([]float64, error) {
	if sampleRate <= 2*p.CarrierHz {
		return nil, fmt.Errorf("rf: sample rate %g Hz under-samples the %g Hz carrier", sampleRate, p.CarrierHz)
	}
	n := int(p.Duration * sampleRate)
	if n <= 0 {
		return nil, fmt.Errorf("rf: pulse duration %g too short for sample rate %g", p.Duration, sampleRate)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Transmitted(float64(i) / sampleRate)
	}
	return out, nil
}

// RangeResolution returns the paper's range resolution delta-r = c/(2B):
// about 10.7 cm for the 1.4 GHz bandwidth. Note that range *bin spacing*
// of the sampled profile is finer (set by the receiver sampling), which
// is how the system distinguishes eye motion from chest motion a few
// bins away.
func (p Pulse) RangeResolution() float64 {
	return SpeedOfLight / (2 * p.BandwidthHz)
}

// SpectrumPeakHz returns the centre frequency of the transmitted
// spectrum, which for this modulation is simply the carrier.
func (p Pulse) SpectrumPeakHz() float64 { return p.CarrierHz }

// Validate reports whether the pulse parameters are physically usable.
func (p Pulse) Validate() error {
	switch {
	case p.Amplitude <= 0:
		return fmt.Errorf("rf: pulse amplitude must be positive, got %g", p.Amplitude)
	case p.Duration <= 0:
		return fmt.Errorf("rf: pulse duration must be positive, got %g", p.Duration)
	case p.CarrierHz <= 0:
		return fmt.Errorf("rf: carrier frequency must be positive, got %g", p.CarrierHz)
	case p.BandwidthHz <= 0:
		return fmt.Errorf("rf: bandwidth must be positive, got %g", p.BandwidthHz)
	case p.BandwidthHz >= 2*p.CarrierHz:
		return fmt.Errorf("rf: bandwidth %g exceeds twice the carrier %g", p.BandwidthHz, p.CarrierHz)
	}
	return nil
}
