package rf

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPulseDefaults(t *testing.T) {
	p := NewPulse()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.CarrierHz != DefaultCarrierHz || p.BandwidthHz != DefaultBandwidthHz {
		t.Fatalf("unexpected defaults %+v", p)
	}
	// c / (2 * 1.4 GHz) ~ 10.7 cm.
	if got := p.RangeResolution(); !approx(got, 0.107, 0.001) {
		t.Fatalf("range resolution %g, want ~0.107", got)
	}
	if p.SpectrumPeakHz() != p.CarrierHz {
		t.Fatal("spectrum peak should be the carrier")
	}
}

func TestPulseSigmaBandwidthRelation(t *testing.T) {
	// The envelope spectrum must drop 10 dB at +/- B/2 around DC.
	p := NewPulse()
	sigma := p.Sigma()
	f10 := p.BandwidthHz / 2
	// |G(f)|^2 = exp(-4 (pi f sigma)^2); at f10 this is -10 dB.
	att := -10 * (4 * math.Pi * math.Pi * f10 * f10 * sigma * sigma) / math.Ln10
	if !approx(att, -10, 1e-6) {
		t.Fatalf("attenuation at B/2 = %g dB, want -10", att)
	}
}

func TestPulseEnvelopePeak(t *testing.T) {
	p := NewPulse()
	if got := p.Envelope(p.Duration / 2); !approx(got, p.Amplitude, 1e-12) {
		t.Fatalf("envelope centre %g, want %g", got, p.Amplitude)
	}
	if got := p.Envelope(0); got >= p.Amplitude/2 {
		t.Fatalf("envelope at pulse start %g, want well below peak", got)
	}
}

func TestPulseWaveformErrors(t *testing.T) {
	p := NewPulse()
	if _, err := p.Waveform(1e9); err == nil {
		t.Fatal("under-sampling the carrier must be rejected")
	}
	w, err := p.Waveform(64e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != int(p.Duration*64e9) {
		t.Fatalf("waveform length %d", len(w))
	}
}

func TestPulseValidate(t *testing.T) {
	cases := []func(*Pulse){
		func(p *Pulse) { p.Amplitude = 0 },
		func(p *Pulse) { p.Duration = -1 },
		func(p *Pulse) { p.CarrierHz = 0 },
		func(p *Pulse) { p.BandwidthHz = 0 },
		func(p *Pulse) { p.BandwidthHz = 3 * p.CarrierHz },
	}
	for i, mutate := range cases {
		p := NewPulse()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid pulse accepted", i)
		}
	}
}

func TestFrameMatrixBasics(t *testing.T) {
	m, err := NewFrameMatrix(10, 4, 25, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFrames() != 10 || m.NumBins() != 4 {
		t.Fatalf("dims %dx%d", m.NumFrames(), m.NumBins())
	}
	if !approx(m.Duration(), 0.4, 1e-12) {
		t.Fatalf("duration %g", m.Duration())
	}
	if !approx(m.FrameTime(5), 0.2, 1e-12) {
		t.Fatalf("frame time %g", m.FrameTime(5))
	}
	if !approx(m.BinDistance(2), 0.025, 1e-12) {
		t.Fatalf("bin distance %g", m.BinDistance(2))
	}
	if m.DistanceBin(0.025) != 2 {
		t.Fatalf("distance bin %d", m.DistanceBin(0.025))
	}
	if m.DistanceBin(-1) != 0 || m.DistanceBin(100) != 3 {
		t.Fatal("distance bin must clamp")
	}
}

func TestNewFrameMatrixErrors(t *testing.T) {
	if _, err := NewFrameMatrix(0, 4, 25, 0.01); err == nil {
		t.Fatal("zero frames must be rejected")
	}
	if _, err := NewFrameMatrix(4, 4, 0, 0.01); err == nil {
		t.Fatal("zero frame rate must be rejected")
	}
}

func TestFrameMatrixSlowTimeAndStats(t *testing.T) {
	m, err := NewFrameMatrix(3, 2, 25, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		m.Data[k][0] = complex(float64(k), 0)
		m.Data[k][1] = 2i
	}
	st := m.SlowTime(0)
	if st[0] != 0 || st[2] != 2 {
		t.Fatalf("slow time %v", st)
	}
	power := m.MeanPowerPerBin()
	if !approx(power[1], 4, 1e-12) {
		t.Fatalf("bin 1 power %g, want 4", power[1])
	}
	v := m.VariancePerBin()
	if v[1] != 0 {
		t.Fatalf("static bin variance %g, want 0", v[1])
	}
	if v[0] <= 0 {
		t.Fatalf("dynamic bin variance %g, want > 0", v[0])
	}
}

func TestFrameMatrixCloneIndependent(t *testing.T) {
	m, _ := NewFrameMatrix(2, 2, 25, 0.01)
	m.Data[0][0] = 1
	cp := m.Clone()
	cp.Data[0][0] = 99
	if m.Data[0][0] != 1 {
		t.Fatal("clone shares storage with the original")
	}
}

func TestFrameMatrixSlice(t *testing.T) {
	m, _ := NewFrameMatrix(10, 2, 25, 0.01)
	s, err := m.Slice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFrames() != 3 {
		t.Fatalf("slice frames %d, want 3", s.NumFrames())
	}
	if _, err := m.Slice(5, 2); err == nil {
		t.Fatal("inverted slice must be rejected")
	}
	if _, err := m.Slice(0, 11); err == nil {
		t.Fatal("overlong slice must be rejected")
	}
}

func TestChannelStaticReflectorGeometry(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.NoiseSigma = 0
	cfg.PhaseNoiseSigma = 0
	cfg.DirectPathAmplitude = 0
	ch, err := NewChannel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.4 // the reference range: unit spreading
	m, err := ch.Render([]Reflector{StaticReflector{Name: "t", Range: r, Reflectivity: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	bin := m.DistanceBin(r)
	z := m.Data[0][bin]
	// Amplitude: kernel weight at the fractional offset.
	binPos := r / cfg.BinSpacing
	off := (float64(bin) - binPos) / cfg.KernelSigmaBins
	wantAmp := math.Exp(-0.5 * off * off)
	if !approx(cmplx.Abs(z), wantAmp, 1e-9) {
		t.Fatalf("amplitude %g, want %g", cmplx.Abs(z), wantAmp)
	}
	// Phase: -4*pi*fc*r/c modulo 2*pi (Eq. 6).
	wantPhase := math.Mod(-4*math.Pi*cfg.Pulse.CarrierHz*r/SpeedOfLight, 2*math.Pi)
	d := cmplx.Phase(z) - wantPhase
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	if math.Abs(d) > 1e-9 {
		t.Fatalf("phase error %g rad", d)
	}
	// A static scene is constant across frames.
	for k := range m.Data {
		if m.Data[k][bin] != z {
			t.Fatalf("frame %d differs for a static scene", k)
		}
	}
}

func TestChannelSpreadingLaw(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.NoiseSigma = 0
	cfg.PhaseNoiseSigma = 0
	cfg.DirectPathAmplitude = 0
	ch, _ := NewChannel(cfg, 1)
	near, err := ch.Render([]Reflector{StaticReflector{Range: 0.4, Reflectivity: 1}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	far, err := ch.Render([]Reflector{StaticReflector{Range: 0.8, Reflectivity: 1}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Peak amplitude must fall by (0.4/0.8)^2 = 4x.
	peak := func(m *FrameMatrix) float64 {
		var best float64
		for _, c := range m.Data[0] {
			if a := cmplx.Abs(c); a > best {
				best = a
			}
		}
		return best
	}
	ratio := peak(near) / peak(far)
	if !approx(ratio, 4, 0.05) {
		t.Fatalf("spreading ratio %g, want ~4", ratio)
	}
}

func TestChannelDeterminism(t *testing.T) {
	cfg := DefaultChannelConfig()
	refl := []Reflector{StaticReflector{Range: 0.4, Reflectivity: 1}}
	ch1, _ := NewChannel(cfg, 42)
	ch2, _ := NewChannel(cfg, 42)
	m1, err := ch1.Render(refl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ch2.Render(refl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m1.Data {
		for b := range m1.Data[k] {
			if m1.Data[k][b] != m2.Data[k][b] {
				t.Fatalf("same seed diverged at frame %d bin %d", k, b)
			}
		}
	}
}

func TestChannelValidation(t *testing.T) {
	bad := DefaultChannelConfig()
	bad.NumBins = 0
	if _, err := NewChannel(bad, 1); err == nil {
		t.Fatal("zero bins must be rejected")
	}
	cfg := DefaultChannelConfig()
	ch, _ := NewChannel(cfg, 1)
	if _, err := ch.Render(nil, 0); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	if _, err := ch.Render(nil, 0.001); err == nil {
		t.Fatal("sub-frame duration must be rejected")
	}
}

func TestChannelOutOfRangeReflectorIgnored(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.NoiseSigma = 0
	cfg.PhaseNoiseSigma = 0
	cfg.DirectPathAmplitude = 0
	ch, _ := NewChannel(cfg, 1)
	m, err := ch.Render([]Reflector{StaticReflector{Range: cfg.MaxRange() + 1, Reflectivity: 5}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalPower() != 0 {
		t.Fatalf("out-of-range reflector deposited %g power", m.TotalPower())
	}
}

func TestFuncReflector(t *testing.T) {
	f := FuncReflector{Name: "x", Fn: func(t float64) (float64, float64) { return t, 2 * t }}
	if f.Label() != "x" {
		t.Fatal("label mismatch")
	}
	r, rho := f.State(3)
	if r != 3 || rho != 6 {
		t.Fatalf("state (%g, %g)", r, rho)
	}
}

func TestChannelConfigValidateProperty(t *testing.T) {
	// The default config must validate regardless of harmless kernel
	// overrides.
	f := func(raw uint8) bool {
		cfg := DefaultChannelConfig()
		cfg.KernelSigmaBins = float64(raw) / 16
		return cfg.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
