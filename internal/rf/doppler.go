package rf

import (
	"fmt"
	"math/cmplx"

	"blinkradar/internal/dsp"
)

// RangeDopplerMap is the classic two-dimensional radar product the
// paper invokes in Section IV-A: a slow-time FFT per range bin turns
// the frame matrix into power over (range, radial velocity). BlinkRadar
// itself works in the I/Q domain instead — blinks are too sparse and
// aperiodic for Doppler analysis — but the map remains useful for scene
// inspection and for separating moving interferers.
type RangeDopplerMap struct {
	// Power is indexed [doppler bin][range bin].
	Power [][]float64
	// Velocities holds the range rate of each Doppler bin in m/s
	// (negative = approaching), in the same order as Power's rows.
	Velocities []float64
	// BinSpacing is the range-bin spacing in metres.
	BinSpacing float64
}

// ComputeRangeDoppler builds the map from up to `frames` consecutive
// frames of m starting at `start`. The slow-time window is Hann-
// weighted; frames is rounded down to the available count and must
// cover at least 8 frames.
func ComputeRangeDoppler(m *FrameMatrix, start, frames int, carrierHz float64) (*RangeDopplerMap, error) {
	if carrierHz <= 0 {
		return nil, fmt.Errorf("rf: carrier must be positive, got %g", carrierHz)
	}
	if start < 0 || start >= m.NumFrames() {
		return nil, fmt.Errorf("rf: start frame %d out of range", start)
	}
	if start+frames > m.NumFrames() {
		frames = m.NumFrames() - start
	}
	if frames < 8 {
		return nil, fmt.Errorf("rf: need at least 8 frames, got %d", frames)
	}
	n := dsp.NextPow2(frames)
	bins := m.NumBins()
	window := dsp.Hann(frames)

	power := make([][]float64, n)
	for d := range power {
		power[d] = make([]float64, bins)
	}
	buf := make([]complex128, n)
	for b := 0; b < bins; b++ {
		for i := range buf {
			buf[i] = 0
		}
		for k := 0; k < frames; k++ {
			buf[k] = m.Data[start+k][b] * complex(window[k], 0)
		}
		spec := dsp.FFT(buf)
		for d, c := range spec {
			a := cmplx.Abs(c)
			power[d][b] = a * a
		}
	}
	// Doppler frequency f maps to range rate v = -f * c / (2 fc): an
	// approaching target (shrinking delay) advances the phase, giving
	// positive Doppler, so its range rate is negative. The two-way
	// path modulates the phase at twice the motion rate.
	freqs := dsp.FFTFreq(n, m.FrameRate)
	vel := make([]float64, n)
	for i, f := range freqs {
		vel[i] = -f * SpeedOfLight / (2 * carrierHz)
	}
	return &RangeDopplerMap{
		Power:      power,
		Velocities: vel,
		BinSpacing: m.BinSpacing,
	}, nil
}

// Peak returns the (velocity, range, power) of the strongest cell,
// optionally excluding the zero-Doppler row where static clutter lives.
func (rd *RangeDopplerMap) Peak(excludeStatic bool) (velocity, rangeM, power float64) {
	best := -1.0
	for d, row := range rd.Power {
		if excludeStatic && rd.Velocities[d] == 0 {
			continue
		}
		for b, p := range row {
			if p > best {
				best = p
				velocity = rd.Velocities[d]
				rangeM = (float64(b) + 0.5) * rd.BinSpacing
			}
		}
	}
	return velocity, rangeM, best
}

// RangeProfile returns the zero-Doppler power per range bin — the
// static scene, equivalent to Fig. 6(b).
func (rd *RangeDopplerMap) RangeProfile() []float64 {
	for d, v := range rd.Velocities {
		if v == 0 {
			out := make([]float64, len(rd.Power[d]))
			copy(out, rd.Power[d])
			return out
		}
	}
	return nil
}
