package rf

import (
	"fmt"
	"math/cmplx"
)

// FrameMatrix is the fundamental radar data product: a complex baseband
// range profile per frame. Data[k][b] is the I/Q sample of range bin b
// in frame k (slow-time index). This is exactly what the commercial
// impulse radio delivers over SPI in the real system.
type FrameMatrix struct {
	// Data is indexed [frame][bin].
	Data [][]complex128
	// FrameRate is the slow-time sampling rate in frames per second.
	FrameRate float64
	// BinSpacing is the range extent of one fast-time bin in metres.
	BinSpacing float64
}

// NewFrameMatrix allocates a zeroed frame matrix with the given
// dimensions. A single backing allocation keeps the rows contiguous.
func NewFrameMatrix(frames, bins int, frameRate, binSpacing float64) (*FrameMatrix, error) {
	if frames <= 0 || bins <= 0 {
		return nil, fmt.Errorf("rf: frame matrix dimensions must be positive, got %dx%d", frames, bins)
	}
	if frameRate <= 0 || binSpacing <= 0 {
		return nil, fmt.Errorf("rf: frame rate and bin spacing must be positive, got %g, %g", frameRate, binSpacing)
	}
	backing := make([]complex128, frames*bins)
	data := make([][]complex128, frames)
	for i := range data {
		data[i], backing = backing[:bins:bins], backing[bins:]
	}
	return &FrameMatrix{Data: data, FrameRate: frameRate, BinSpacing: binSpacing}, nil
}

// NumFrames returns the number of slow-time frames.
func (m *FrameMatrix) NumFrames() int { return len(m.Data) }

// NumBins returns the number of fast-time range bins.
func (m *FrameMatrix) NumBins() int {
	if len(m.Data) == 0 {
		return 0
	}
	return len(m.Data[0])
}

// FrameTime returns the capture time in seconds of frame k.
func (m *FrameMatrix) FrameTime(k int) float64 {
	return float64(k) / m.FrameRate
}

// BinDistance returns the range in metres at the centre of bin b.
func (m *FrameMatrix) BinDistance(b int) float64 {
	return (float64(b) + 0.5) * m.BinSpacing
}

// DistanceBin returns the bin index containing range r, clamped to the
// valid bin range.
func (m *FrameMatrix) DistanceBin(r float64) int {
	b := int(r / m.BinSpacing)
	if b < 0 {
		b = 0
	}
	if n := m.NumBins(); b >= n {
		b = n - 1
	}
	return b
}

// Duration returns the capture length in seconds.
func (m *FrameMatrix) Duration() float64 {
	return float64(m.NumFrames()) / m.FrameRate
}

// SlowTime extracts the slow-time complex series of a single range bin:
// Data[0][bin], Data[1][bin], ... as a new slice.
func (m *FrameMatrix) SlowTime(bin int) []complex128 {
	out := make([]complex128, m.NumFrames())
	for k, frame := range m.Data {
		out[k] = frame[bin]
	}
	return out
}

// MeanPowerPerBin returns the time-averaged power of each range bin,
// i.e. the static range profile of Fig. 6(b).
func (m *FrameMatrix) MeanPowerPerBin() []float64 {
	bins := m.NumBins()
	out := make([]float64, bins)
	if m.NumFrames() == 0 {
		return out
	}
	for _, frame := range m.Data {
		for b, c := range frame {
			re, im := real(c), imag(c)
			out[b] += re*re + im*im
		}
	}
	inv := 1 / float64(m.NumFrames())
	for b := range out {
		out[b] *= inv
	}
	return out
}

// VariancePerBin returns the slow-time 2-D I/Q variance of each bin:
// the statistic the paper maximises to find the eye's range bin.
func (m *FrameMatrix) VariancePerBin() []float64 {
	frames := m.NumFrames()
	bins := m.NumBins()
	out := make([]float64, bins)
	if frames < 2 {
		return out
	}
	for b := 0; b < bins; b++ {
		var sumRe, sumIm, sumSq float64
		for _, frame := range m.Data {
			re, im := real(frame[b]), imag(frame[b])
			sumRe += re
			sumIm += im
			sumSq += re*re + im*im
		}
		n := float64(frames)
		meanRe := sumRe / n
		meanIm := sumIm / n
		v := sumSq/n - (meanRe*meanRe + meanIm*meanIm)
		if v < 0 {
			v = 0
		}
		out[b] = v
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *FrameMatrix) Clone() *FrameMatrix {
	cp, err := NewFrameMatrix(m.NumFrames(), m.NumBins(), m.FrameRate, m.BinSpacing)
	if err != nil {
		// The receiver was valid, so its dimensions are valid too.
		panic(fmt.Sprintf("rf: cloning valid matrix failed: %v", err))
	}
	for k, frame := range m.Data {
		copy(cp.Data[k], frame)
	}
	return cp
}

// Slice returns a view of frames [from, to) sharing the underlying
// storage with the receiver.
func (m *FrameMatrix) Slice(from, to int) (*FrameMatrix, error) {
	if from < 0 || to > m.NumFrames() || from >= to {
		return nil, fmt.Errorf("rf: invalid frame slice [%d, %d) of %d frames", from, to, m.NumFrames())
	}
	return &FrameMatrix{
		Data:       m.Data[from:to],
		FrameRate:  m.FrameRate,
		BinSpacing: m.BinSpacing,
	}, nil
}

// TotalPower returns the sum of |Data[k][b]|^2 over the whole matrix.
func (m *FrameMatrix) TotalPower() float64 {
	var acc float64
	for _, frame := range m.Data {
		for _, c := range frame {
			a := cmplx.Abs(c)
			acc += a * a
		}
	}
	return acc
}
