// Package vitals estimates respiration and heart rate from the same
// radar stream BlinkRadar uses for blink detection. The paper exploits
// the "embedded interference" of breathing-coupled head sway and
// ballistocardiographic (BCG) motion only to locate the eye's range
// bin; this package extracts the interference itself, following the
// in-vehicle vital-sign systems the paper builds on (V2iFi, MoRe-Fi).
//
// The estimator unwraps the phase of the selected bin's I/Q trajectory
// around its Pratt-fitted centre — displacement maps linearly to phase
// (Eq. 9) — and reads the respiration and heartbeat fundamentals from
// the spectrum of that displacement waveform.
package vitals

import (
	"fmt"
	"math"

	"blinkradar/internal/dsp"
	"blinkradar/internal/iq"
)

// Physiological search bands in hertz.
const (
	// RespLowHz and RespHighHz bound plausible breathing rates for a
	// seated adult (9-30 breaths/min). The lower bound deliberately
	// sits above the posture-drift band, which otherwise bleeds into
	// the slowest respiration bins.
	RespLowHz  = 0.15
	RespHighHz = 0.5
	// HeartLowHz and HeartHighHz bound plausible heart rates
	// (48-120 beats/min).
	HeartLowHz  = 0.8
	HeartHighHz = 2.0
)

// Estimate is the output of a vital-sign analysis window.
type Estimate struct {
	// RespirationHz is the estimated breathing rate in hertz (0 when
	// not found).
	RespirationHz float64
	// HeartHz is the estimated heart rate in hertz (0 when not found).
	HeartHz float64
	// RespirationSNR and HeartSNR compare each spectral peak against
	// the median in-band power; higher is more trustworthy.
	RespirationSNR, HeartSNR float64
}

// RespirationBPM returns the breathing rate in breaths per minute.
func (e Estimate) RespirationBPM() float64 { return e.RespirationHz * 60 }

// HeartBPM returns the heart rate in beats per minute.
func (e Estimate) HeartBPM() float64 { return e.HeartHz * 60 }

// minWindowSec is the shortest analysis window that resolves the
// respiration band (a couple of breath cycles).
const minWindowSec = 15.0

// EstimateFromSeries analyses the slow-time I/Q samples of one range
// bin sampled at fps frames per second. The series should already be
// background-subtracted (static clutter removed).
func EstimateFromSeries(series []complex128, fps float64) (Estimate, error) {
	if fps <= 0 {
		return Estimate{}, fmt.Errorf("vitals: fps must be positive, got %g", fps)
	}
	if float64(len(series)) < minWindowSec*fps {
		return Estimate{}, fmt.Errorf("vitals: need at least %.0f s of samples, got %.1f s",
			minWindowSec, float64(len(series))/fps)
	}
	// Displacement waveform: the angle around the fitted arc centre
	// scales linearly with radial motion (delta-phi = -4 pi f0 d / c).
	c, err := iq.FitCirclePratt(series)
	if err != nil {
		return Estimate{}, fmt.Errorf("vitals: arc fit: %w", err)
	}
	angles := make([]float64, len(series))
	for i, z := range series {
		d := z - c.Center
		angles[i] = math.Atan2(imag(d), real(d))
	}
	disp := iq.Unwrap(angles)
	// Remove drift slower than any plausible breath: posture settling
	// and tracker wander otherwise dominate the lowest respiration
	// bins. A 10 s moving-average baseline acts as a gentle high-pass
	// at ~0.1 Hz.
	baseline, err := dsp.MovingAverage(disp, int(10*fps)|1)
	if err != nil {
		return Estimate{}, fmt.Errorf("vitals: detrend: %w", err)
	}
	for i := range disp {
		disp[i] -= baseline[i]
	}

	// Zero-pad to a power of two for frequency resolution.
	n := dsp.NextPow2(4 * len(disp))
	padded := make([]float64, n)
	copy(padded, dsp.ApplyWindow(disp, dsp.Hann(len(disp))))
	power := dsp.PowerSpectrum(padded)
	freqs := dsp.FFTFreq(n, fps)

	var est Estimate
	est.RespirationHz, est.RespirationSNR = bandPeak(power, freqs, RespLowHz, RespHighHz, nil)
	// Exclude respiration harmonics from the heart band: breathing at
	// rate f leaks power at 2f..5f which can sit inside 0.8-2 Hz.
	var exclude []float64
	if est.RespirationHz > 0 {
		for h := 2.0; h <= 6; h++ {
			exclude = append(exclude, est.RespirationHz*h)
		}
	}
	est.HeartHz, est.HeartSNR = bandPeak(power, freqs, HeartLowHz, HeartHighHz, exclude)
	return est, nil
}

// harmonicGuardHz is how close to a respiration harmonic a heart-band
// peak may sit before it is rejected as leakage.
const harmonicGuardHz = 0.06

// bandPeak finds the strongest spectral peak in [lo, hi] hertz,
// skipping bins within harmonicGuardHz of any excluded frequency. It
// returns (0, 0) when the band is empty or the peak does not rise above
// the in-band median.
func bandPeak(power, freqs []float64, lo, hi float64, exclude []float64) (float64, float64) {
	var inBand []float64
	bestIdx := -1
	for i, f := range freqs {
		if f < lo || f > hi {
			continue
		}
		inBand = append(inBand, power[i])
		skip := false
		for _, ex := range exclude {
			if math.Abs(f-ex) < harmonicGuardHz {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if bestIdx < 0 || power[i] > power[bestIdx] {
			bestIdx = i
		}
	}
	if bestIdx < 0 || len(inBand) == 0 {
		return 0, 0
	}
	med := dsp.Median(inBand)
	if med <= 0 {
		return 0, 0
	}
	snr := power[bestIdx] / med
	if snr < 3 {
		// No clear line in the band.
		return 0, 0
	}
	return freqs[bestIdx], snr
}

// Monitor accumulates slow-time samples of a tracked bin and produces
// rolling vital-sign estimates — the streaming counterpart of
// EstimateFromSeries, for use alongside the blink detector.
type Monitor struct {
	fps      float64
	window   int
	every    int
	buf      []complex128
	pos      int
	count    int
	sincePos int
	last     Estimate
	haveLast bool
}

// NewMonitor creates a streaming estimator with the given analysis
// window and update interval in seconds.
func NewMonitor(fps, windowSec, updateSec float64) (*Monitor, error) {
	if fps <= 0 {
		return nil, fmt.Errorf("vitals: fps must be positive, got %g", fps)
	}
	if windowSec < minWindowSec {
		return nil, fmt.Errorf("vitals: window must be at least %.0f s, got %g", minWindowSec, windowSec)
	}
	if updateSec <= 0 {
		return nil, fmt.Errorf("vitals: update interval must be positive, got %g", updateSec)
	}
	return &Monitor{
		fps:    fps,
		window: int(windowSec * fps),
		every:  int(updateSec * fps),
		buf:    make([]complex128, int(windowSec*fps)),
	}, nil
}

// Push adds one background-subtracted I/Q sample of the tracked bin.
// It returns a fresh estimate and true at each update interval once the
// window has filled.
func (m *Monitor) Push(z complex128) (Estimate, bool) {
	m.buf[m.pos] = z
	m.pos = (m.pos + 1) % len(m.buf)
	if m.count < len(m.buf) {
		m.count++
	}
	m.sincePos++
	if m.count < len(m.buf) || m.sincePos < m.every {
		return Estimate{}, false
	}
	m.sincePos = 0
	series := make([]complex128, 0, m.count)
	start := m.pos - m.count
	for i := 0; i < m.count; i++ {
		idx := start + i
		if idx < 0 {
			idx += len(m.buf)
		}
		series = append(series, m.buf[idx%len(m.buf)])
	}
	est, err := EstimateFromSeries(series, m.fps)
	if err != nil {
		return Estimate{}, false
	}
	m.last = est
	m.haveLast = true
	return est, true
}

// Last returns the most recent estimate and whether one exists.
func (m *Monitor) Last() (Estimate, bool) { return m.last, m.haveLast }

// Reset clears the sample window (e.g. after the tracked bin changes).
func (m *Monitor) Reset() {
	m.pos, m.count, m.sincePos = 0, 0, 0
	m.haveLast = false
}
