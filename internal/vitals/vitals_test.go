package vitals

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"blinkradar/internal/core"
	"blinkradar/internal/scenario"
)

// syntheticVitalSeries builds an arc trajectory whose angle is driven
// by a respiration sinusoid plus a weaker heartbeat component.
func syntheticVitalSeries(n int, fps, respHz, heartHz float64, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	center := complex(1.5, -0.8)
	out := make([]complex128, n)
	for i := range out {
		t := float64(i) / fps
		angle := 0.4*math.Sin(2*math.Pi*respHz*t) + 0.08*math.Sin(2*math.Pi*heartHz*t)
		out[i] = center + cmplx.Rect(1.2, angle) +
			complex(rng.NormFloat64()*0.004, rng.NormFloat64()*0.004)
	}
	return out
}

func TestEstimateFromSeriesSynthetic(t *testing.T) {
	const fps = 25.0
	const respHz, heartHz = 0.25, 1.2
	series := syntheticVitalSeries(int(60*fps), fps, respHz, heartHz, 1)
	est, err := EstimateFromSeries(series, fps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.RespirationHz-respHz) > 0.03 {
		t.Fatalf("respiration %g Hz, want %g", est.RespirationHz, respHz)
	}
	if math.Abs(est.HeartHz-heartHz) > 0.06 {
		t.Fatalf("heart %g Hz, want %g", est.HeartHz, heartHz)
	}
	if est.RespirationSNR < 3 || est.HeartSNR < 3 {
		t.Fatalf("weak SNRs %g/%g", est.RespirationSNR, est.HeartSNR)
	}
	if est.RespirationBPM() != est.RespirationHz*60 {
		t.Fatal("BPM conversion broken")
	}
}

func TestEstimateRejectsHarmonicLeakage(t *testing.T) {
	// Respiration at 0.45 Hz puts harmonics at 0.9/1.35/1.8 Hz inside
	// the heart band; with a true heartbeat at 1.1 Hz the estimator
	// must not report a harmonic.
	const fps = 25.0
	series := syntheticVitalSeries(int(90*fps), fps, 0.45, 1.1, 2)
	est, err := EstimateFromSeries(series, fps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.HeartHz-1.1) > 0.08 {
		t.Fatalf("heart estimate %g Hz captured by a respiration harmonic, want 1.1", est.HeartHz)
	}
}

func TestEstimateErrors(t *testing.T) {
	series := syntheticVitalSeries(100, 25, 0.25, 1.2, 3)
	if _, err := EstimateFromSeries(series, 0); err == nil {
		t.Fatal("zero fps must be rejected")
	}
	if _, err := EstimateFromSeries(series, 25); err == nil {
		t.Fatal("short window must be rejected")
	}
}

func TestEstimateNoSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	series := make([]complex128, 800)
	for i := range series {
		series[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	est, err := EstimateFromSeries(series, 25)
	if err != nil {
		// A degenerate fit on pure noise is acceptable.
		return
	}
	// Zero-padded periodograms of white noise show peak-to-median
	// ratios of ~5-20; anything far beyond that would mean the
	// estimator manufactures confidence from nothing.
	if est.RespirationSNR > 60 || est.HeartSNR > 60 {
		t.Fatalf("confident vital signs on pure noise: %+v", est)
	}
}

func TestMonitorStreaming(t *testing.T) {
	const fps = 25.0
	m, err := NewMonitor(fps, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	series := syntheticVitalSeries(int(70*fps), fps, 0.3, 1.3, 5)
	var updates int
	var last Estimate
	for _, z := range series {
		if est, ok := m.Push(z); ok {
			updates++
			last = est
		}
	}
	if updates == 0 {
		t.Fatal("no streaming estimates in 70 s")
	}
	if math.Abs(last.RespirationHz-0.3) > 0.04 {
		t.Fatalf("streaming respiration %g, want 0.3", last.RespirationHz)
	}
	if got, ok := m.Last(); !ok || got != last {
		t.Fatal("Last() does not match the final update")
	}
	m.Reset()
	if _, ok := m.Last(); ok {
		t.Fatal("reset monitor retains an estimate")
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0, 30, 5); err == nil {
		t.Fatal("zero fps must be rejected")
	}
	if _, err := NewMonitor(25, 5, 5); err == nil {
		t.Fatal("short window must be rejected")
	}
	if _, err := NewMonitor(25, 30, 0); err == nil {
		t.Fatal("zero update interval must be rejected")
	}
}

func TestVitalsOnScenarioCapture(t *testing.T) {
	// End to end: the subject's true respiration and heart rates must
	// be recoverable from the radar capture's face bin.
	spec := scenario.DefaultSpec()
	spec.Duration = 90
	spec.Seed = 31
	cap, err := scenario.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	pre, err := core.PreprocessMatrix(cfg, cap.Frames)
	if err != nil {
		t.Fatal(err)
	}
	best, err := core.SelectBinMatrix(cfg, pre)
	if err != nil {
		t.Fatal(err)
	}
	skip := int(cfg.BackgroundTauSec*cap.Frames.FrameRate) + 1
	est, err := EstimateFromSeries(pre.SlowTime(best.Bin)[skip:], cap.Frames.FrameRate)
	if err != nil {
		t.Fatal(err)
	}
	wantResp := spec.Subject.Respiration.RateHz
	if math.Abs(est.RespirationHz-wantResp) > 0.05 {
		t.Fatalf("respiration %g Hz, subject's true rate %g", est.RespirationHz, wantResp)
	}
	wantHeart := spec.Subject.Heartbeat.RateHz
	if est.HeartHz > 0 && math.Abs(est.HeartHz-wantHeart) > 0.15 {
		t.Fatalf("heart %g Hz, subject's true rate %g", est.HeartHz, wantHeart)
	}
}
