// Package session is the fleet service layer: one radard process
// serving thousands of concurrent radar streams. A Manager shards
// sessions across per-core worker goroutines (session → shard by ID
// hash), recycles detector/monitor state through a free-list pool so
// stream churn costs no steady-state allocations, admits new sessions
// against hard capacity limits, rate-limits each stream with a token
// bucket, and degrades gracefully under backpressure: first frames are
// dropped (and accounted as sequence gaps the pipeline is told about),
// then the session's assessment window is widened so the blink-rate
// feature stays meaningful on a thinned stream, and finally the session
// is marked degraded.
package session

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	blinkradar "blinkradar"
)

// PressureState is a session's backpressure level. Escalation is
// immediate (a single bad evaluation window can jump straight to
// degraded); de-escalation steps down one level per completely
// drop-free evaluation window, which is the hysteresis that keeps a
// session from oscillating at a threshold.
type PressureState int32

const (
	// PressureNormal: drops, if any, are below the widen threshold.
	PressureNormal PressureState = iota
	// PressureWidened: sustained drops; the assessment window has been
	// widened by the configured factor so enough blinks still land in
	// each window for the rate feature to be meaningful.
	PressureWidened
	// PressureDegraded: severe drops; the session's health is reported
	// as degraded and its assessments should not be trusted.
	PressureDegraded
)

func (p PressureState) String() string {
	switch p {
	case PressureNormal:
		return "normal"
	case PressureWidened:
		return "widened"
	case PressureDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// Session is one attached radar stream: a pooled Monitor plus a fixed
// frame queue between the submitting goroutine (transport reader) and
// the shard worker that feeds the pipeline. All state is recycled on
// detach; the struct is only ever allocated on a pool miss.
type Session struct {
	id string
	// mon belongs to the feed domain: the Monitor is not concurrent-safe,
	// so only the shard worker (under feedMu) and the recycle path may
	// touch it. Health() is the one documented cross-goroutine-safe call.
	mon *blinkradar.Monitor //blinkradar:confined feed

	// Frame queue: a flat ring of slots×bins samples held as float32
	// I/Q planes — the wire's own representation, so queueing a decoded
	// frame is two plain copies with no complex widening. Slot i carries
	// gaps[i], the frames known lost immediately before it (upstream
	// sequence gaps plus local backpressure drops), delivered to the
	// pipeline as NoteGap before the frame is fed so slow-time state is
	// never silently concatenated across a hole.
	qmu        sync.Mutex
	bufI       []float32
	bufQ       []float32
	gaps       []uint64
	head, n    int
	slots      int
	bins       int
	pendingGap uint64

	// Token bucket (under qmu). Refilled from the manager clock.
	tokens     float64
	lastRefill time.Time

	// Backpressure evaluation window (under qmu).
	winSubmitted, winDropped int

	// pressure and wantWindow cross the submitter→worker boundary:
	// the submitter decides the level, the worker applies the window
	// change (the Monitor is not concurrent-safe).
	pressure   atomic.Int32
	wantWindow atomic.Uint64 // math.Float64bits of the desired span
	// appliedWindow is worker-only (guarded by feedMu).
	appliedWindow float64 //blinkradar:confined feed

	// feedMu is held by the shard worker around each feed batch and by
	// attach/detach around recycling, so pooled state never changes
	// hands mid-feed.
	feedMu sync.Mutex

	// gen increments on every recycle. A submitter captures it at map
	// lookup and re-checks under qmu, so a Submit racing a Detach can
	// never push into a recycled (or re-attached) session.
	gen atomic.Uint64

	// Lifetime accounting, readable from any goroutine.
	submitted   atomic.Uint64
	processed   atomic.Uint64
	dropped     atomic.Uint64
	limited     atomic.Uint64
	gapFrames   atomic.Uint64
	blinks      atomic.Uint64
	assessments atomic.Uint64
	assessErrs  atomic.Uint64
}

// newSession runs before the session is published to any shard map:
// no other goroutine can see the state it initializes.
//
//blinkradar:entry feed
func newSession(bins, slots int, mon *blinkradar.Monitor, windowSec float64) *Session {
	s := &Session{
		mon:   mon,
		bufI:  make([]float32, bins*slots),
		bufQ:  make([]float32, bins*slots),
		gaps:  make([]uint64, slots),
		slots: slots,
		bins:  bins,
	}
	s.appliedWindow = windowSec
	s.wantWindow.Store(math.Float64bits(windowSec))
	return s
}

// push enqueues one frame of I/Q planes, or — when the queue is full —
// drops it and folds it into the gap preceding whatever frame is
// accepted next. Caller holds qmu.
//
//blinkradar:hotpath
func (s *Session) push(pi, pq []float32) bool {
	slot, ok := s.claimSlot()
	if !ok {
		return false
	}
	copy(s.bufI[slot*s.bins:(slot+1)*s.bins], pi)
	copy(s.bufQ[slot*s.bins:(slot+1)*s.bins], pq)
	return true
}

// pushComplex is push for the compatibility Submit boundary: the frame
// is narrowed into the plane ring bin by bin. Caller holds qmu.
//
//blinkradar:convert -- sanctioned float64→float32 narrowing at the legacy complex Submit boundary
//blinkradar:hotpath
func (s *Session) pushComplex(frame []complex128) bool {
	slot, ok := s.claimSlot()
	if !ok {
		return false
	}
	off := slot * s.bins
	for i, z := range frame {
		s.bufI[off+i] = float32(real(z))
		s.bufQ[off+i] = float32(imag(z))
	}
	return true
}

// claimSlot reserves the next free queue slot and stamps its preceding
// gap, or accrues a pending gap when the queue is full. Caller holds
// qmu.
//
//blinkradar:hotpath
func (s *Session) claimSlot() (int, bool) {
	if s.n == s.slots {
		s.pendingGap++
		return 0, false
	}
	slot := s.head + s.n
	if slot >= s.slots {
		slot -= s.slots
	}
	s.gaps[slot] = s.pendingGap
	s.pendingGap = 0
	s.n++
	return slot, true
}

// peek returns the oldest queued frame's planes without dequeueing it.
// The slot stays occupied until commitPop, so a concurrent push can
// never write over a frame the worker is feeding: push only touches
// slot head+n with n < slots, which is never head while n ≥ 1.
//
//blinkradar:hotpath
func (s *Session) peek() (pi, pq []float32, gap uint64, ok bool) {
	s.qmu.Lock()
	if s.n == 0 {
		s.qmu.Unlock()
		return nil, nil, 0, false
	}
	slot := s.head
	pi = s.bufI[slot*s.bins : (slot+1)*s.bins]
	pq = s.bufQ[slot*s.bins : (slot+1)*s.bins]
	gap = s.gaps[slot]
	s.qmu.Unlock()
	return pi, pq, gap, true
}

// commitPop frees the slot returned by the last peek.
//
//blinkradar:hotpath
func (s *Session) commitPop() {
	s.qmu.Lock()
	s.head++
	if s.head == s.slots {
		s.head = 0
	}
	s.n--
	s.qmu.Unlock()
}

// takeToken refills from the wall clock and spends one token. Caller
// holds qmu.
//
//blinkradar:hotpath
func (s *Session) takeToken(now time.Time, rate, burst float64) bool {
	if el := now.Sub(s.lastRefill).Seconds(); el > 0 {
		s.tokens += el * rate
		if s.tokens > burst {
			s.tokens = burst
		}
		s.lastRefill = now
	}
	if s.tokens >= 1 {
		s.tokens--
		return true
	}
	return false
}

// noteSubmit advances the backpressure evaluation window and, at its
// end, moves the pressure level: up to whatever the drop fraction
// demands immediately, down one level only after a completely clean
// window. Returns the level transition, if any. Caller holds qmu.
//
//blinkradar:hotpath
func (s *Session) noteSubmit(accepted bool, evalWindow int, widenFrac, degradeFrac float64) (from, to PressureState, changed bool) {
	s.winSubmitted++
	if !accepted {
		s.winDropped++
	}
	if s.winSubmitted < evalWindow {
		return 0, 0, false
	}
	frac := float64(s.winDropped) / float64(s.winSubmitted)
	s.winSubmitted, s.winDropped = 0, 0
	cur := PressureState(s.pressure.Load())
	next := cur
	switch {
	case frac >= degradeFrac:
		next = PressureDegraded
	case frac >= widenFrac:
		if next < PressureWidened {
			next = PressureWidened
		}
	case frac == 0:
		if next > PressureNormal {
			next--
		}
	}
	if next == cur {
		return cur, cur, false
	}
	s.pressure.Store(int32(next))
	return cur, next, true
}

// Pressure returns the session's current backpressure level.
func (s *Session) Pressure() PressureState {
	return PressureState(s.pressure.Load())
}

// queued returns the number of frames waiting for the worker.
func (s *Session) queued() int {
	s.qmu.Lock()
	n := s.n
	s.qmu.Unlock()
	return n
}

// loadWantWindow returns the window span the backpressure controller
// currently wants applied.
func (s *Session) loadWantWindow() float64 {
	return math.Float64frombits(s.wantWindow.Load())
}

// recycle returns the session to pooled idle state and reports its
// final accounting. Frames still queued were never fed; they are folded
// into the dropped count so submitted == processed + dropped holds at
// detach. Caller holds feedMu and has already removed the session from
// its shard map, so neither the worker nor a submitter can race this —
// which is exactly the ownership the feed domain requires.
//
//blinkradar:entry feed
func (s *Session) recycle(windowSec float64) SessionStats {
	s.qmu.Lock()
	s.gen.Add(1)
	s.dropped.Add(uint64(s.n))
	s.head, s.n = 0, 0
	s.pendingGap = 0
	s.tokens = 0
	s.lastRefill = time.Time{}
	s.winSubmitted, s.winDropped = 0, 0
	s.qmu.Unlock()

	stats := s.snapshot()
	stats.Queued = 0

	s.mon.Reset()
	s.id = ""
	s.pressure.Store(int32(PressureNormal))
	s.wantWindow.Store(math.Float64bits(windowSec))
	s.appliedWindow = windowSec
	s.submitted.Store(0)
	s.processed.Store(0)
	s.dropped.Store(0)
	s.limited.Store(0)
	s.gapFrames.Store(0)
	s.blinks.Store(0)
	s.assessments.Store(0)
	s.assessErrs.Store(0)
	return stats
}

// snapshot collects the session's accounting without the queue depth.
func (s *Session) snapshot() SessionStats {
	st := SessionStats{
		ID:          s.id,
		Submitted:   s.submitted.Load(),
		Processed:   s.processed.Load(),
		Dropped:     s.dropped.Load(),
		Limited:     s.limited.Load(),
		GapFrames:   s.gapFrames.Load(),
		Blinks:      s.blinks.Load(),
		Assessments: s.assessments.Load(),
		AssessErrs:  s.assessErrs.Load(),
		Pressure:    s.Pressure(),
		WindowSec:   s.loadWantWindow(),
		Health:      s.mon.Health(),
	}
	if st.Pressure == PressureDegraded {
		st.Health = blinkradar.HealthDegraded
	}
	return st
}

// SessionStats is a point-in-time view of one session's accounting.
// The invariant Submitted == Processed + Dropped + Queued holds at
// every instant; rate-limited frames are counted in Limited only and
// never enter the queue.
type SessionStats struct {
	// ID is the session identifier.
	ID string
	// Submitted counts frames accepted past the rate limiter.
	Submitted uint64
	// Processed counts frames fed through the pipeline.
	Processed uint64
	// Dropped counts frames lost to backpressure (queue full, plus
	// frames still queued at detach).
	Dropped uint64
	// Limited counts frames rejected by the token bucket.
	Limited uint64
	// GapFrames counts frames the transport reported lost upstream via
	// NoteGap — sequence holes the pipeline was told about, as opposed
	// to local backpressure drops (Dropped). A soak harness that knows
	// exactly how many frames its chaos injector removed can check this
	// for equality.
	GapFrames uint64
	// Queued is the current queue depth.
	Queued uint64
	// Blinks counts blink events the pipeline delivered.
	Blinks uint64
	// Assessments counts completed window assessments.
	Assessments uint64
	// AssessErrs counts pipeline feed/assessment errors.
	AssessErrs uint64
	// Pressure is the backpressure level.
	Pressure PressureState
	// WindowSec is the assessment-window span the backpressure
	// controller currently wants (widened under pressure).
	WindowSec float64
	// Health is the detector health, overridden to HealthDegraded when
	// the session is pressure-degraded.
	Health blinkradar.HealthState
}
