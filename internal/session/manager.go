package session

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blinkradar"
	"blinkradar/internal/obs"
)

// Typed rejection errors. Callers (the radard ingest listener) switch
// on these to pick a wire-level response; none of them is transient
// except ErrRateLimited, which clears as the bucket refills.
var (
	// ErrManagerClosed: the manager has been shut down.
	ErrManagerClosed = errors.New("session: manager closed")
	// ErrSessionExists: Attach with an ID that is already attached.
	ErrSessionExists = errors.New("session: id already attached")
	// ErrSessionNotFound: the ID is not attached.
	ErrSessionNotFound = errors.New("session: no such session")
	// ErrSessionLimit: admission control refused the attach (process or
	// shard capacity reached).
	ErrSessionLimit = errors.New("session: session limit reached")
	// ErrRateLimited: the session's token bucket is empty; the frame
	// was rejected, not queued.
	ErrRateLimited = errors.New("session: rate limited")
	// ErrGeometry: the frame's bin count does not match the manager's.
	ErrGeometry = errors.New("session: frame geometry mismatch")
)

// Config parameterises a Manager. The zero value of every tuning field
// picks a sensible default; NumBins and FrameRate are mandatory.
type Config struct {
	// NumBins is the range-bin count every stream must announce.
	NumBins int
	// FrameRate is the slow-time frame rate in frames per second.
	FrameRate float64
	// WindowSec is the base assessment-window span (default 60, the
	// paper's setting).
	WindowSec float64
	// Core is the detection pipeline configuration. The zero value
	// selects the paper-faithful blinkradar.DefaultConfig().
	Core blinkradar.Config
	// Shards is the number of worker shards (default GOMAXPROCS).
	// Sessions map to shards by ID hash, so a session's frames are
	// always fed by the same goroutine.
	Shards int
	// MaxSessions caps attached sessions process-wide; 0 = unlimited.
	MaxSessions int
	// MaxSessionsPerShard caps one shard's sessions; 0 = unlimited. A
	// hash-unlucky shard rejects rather than silently serving a
	// disproportionate share with one core.
	MaxSessionsPerShard int
	// QueueFrames is each session's frame-queue depth (default 64).
	QueueFrames int
	// RateLimit is the per-session sustained frame budget in frames
	// per second; 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket depth (default 2×RateLimit).
	RateBurst float64
	// DropWindowFrames is the backpressure evaluation window: the drop
	// fraction is measured over this many submitted frames (default
	// 256).
	DropWindowFrames int
	// WidenAtDropFrac escalates a session to PressureWidened when its
	// drop fraction reaches this value (default 0.25).
	WidenAtDropFrac float64
	// DegradeAtDropFrac escalates to PressureDegraded (default 0.5).
	DegradeAtDropFrac float64
	// WidenFactor multiplies the assessment window while widened
	// (default 2).
	WidenFactor float64
	// DrainBatchFrames bounds how many frames a worker feeds one
	// session before moving to the next, so a busy stream cannot
	// starve its shard-mates (default 16).
	DrainBatchFrames int
	// Registry, when non-nil, exports fleet metrics.
	Registry *obs.Registry
	// Now supplies the rate-limiter clock (default time.Now); tests
	// inject a fake.
	Now func() time.Time
	// OnBlink, when non-nil, runs on the shard worker for every blink.
	// It must be fast and must not call Manager methods (the worker
	// holds the session's feed lock).
	OnBlink func(id string, ev blinkradar.BlinkEvent)
	// OnAssessment is OnBlink's counterpart for window assessments.
	OnAssessment func(id string, a blinkradar.Assessment)
}

func (c Config) withDefaults() Config {
	if c.Core == (blinkradar.Config{}) {
		c.Core = blinkradar.DefaultConfig()
	}
	if c.WindowSec <= 0 {
		c.WindowSec = 60
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueFrames <= 0 {
		c.QueueFrames = 64
	}
	if c.DropWindowFrames <= 0 {
		c.DropWindowFrames = 256
	}
	if c.WidenAtDropFrac <= 0 {
		c.WidenAtDropFrac = 0.25
	}
	if c.DegradeAtDropFrac <= 0 {
		c.DegradeAtDropFrac = 0.5
	}
	if c.WidenFactor < 1 {
		c.WidenFactor = 2
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = 2 * c.RateLimit
	}
	if c.DrainBatchFrames <= 0 {
		c.DrainBatchFrames = 16
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// shard is one worker goroutine plus the sessions hashed to it.
type shard struct {
	mgr      *Manager
	idx      int
	mu       sync.RWMutex
	sessions map[string]*Session
	free     []*Session // free-list pool, guarded by mgr.admit
	wake     chan struct{}
	scratch  []*Session //blinkradar:confined shard

	gSessions   *obs.Gauge
	gQueued     *obs.Gauge
	gSaturation *obs.Gauge
}

// Manager shards radar sessions across per-core workers. All methods
// are safe for concurrent use; Submit for distinct sessions contends
// only within a shard.
type Manager struct {
	cfg    Config
	shards []*shard

	// admit serialises attach/detach and guards the free lists and the
	// session count. Churn is not the hot path; frames are.
	admit     sync.Mutex
	nSessions int

	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup

	// Aggregate accounting.
	attaches   atomic.Uint64
	detaches   atomic.Uint64
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
	rejects    atomic.Uint64
	framesIn   atomic.Uint64
	frDropped  atomic.Uint64
	frLimited  atomic.Uint64
	frDone     atomic.Uint64
	widens     atomic.Uint64
	degrades   atomic.Uint64

	mAttaches   *obs.Counter
	mDetaches   *obs.Counter
	mPoolHits   *obs.Counter
	mPoolMisses *obs.Counter
	mRejects    *obs.Counter
	mFrames     *obs.Counter
	mDropped    *obs.Counter
	mLimited    *obs.Counter
	mWidens     *obs.Counter
	mDegrades   *obs.Counter
}

// NewManager validates the configuration, builds the shards, and
// starts one worker goroutine per shard. Close joins them.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.NumBins <= 0 {
		return nil, fmt.Errorf("session: NumBins must be positive, got %d", cfg.NumBins)
	}
	if cfg.FrameRate <= 0 {
		return nil, fmt.Errorf("session: FrameRate must be positive, got %g", cfg.FrameRate)
	}
	// Probe-build one monitor now so a bad core config fails loudly at
	// construction, not on the first attach.
	if _, err := blinkradar.NewMonitor(cfg.Core, cfg.NumBins, cfg.FrameRate, cfg.WindowSec); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	if r := cfg.Registry; r != nil {
		m.mAttaches = r.Counter("session_attaches_total")
		m.mDetaches = r.Counter("session_detaches_total")
		m.mPoolHits = r.Counter("session_pool_hits_total")
		m.mPoolMisses = r.Counter("session_pool_misses_total")
		m.mRejects = r.Counter("session_rejects_total")
		m.mFrames = r.Counter("session_frames_total")
		m.mDropped = r.Counter("session_frames_dropped_total")
		m.mLimited = r.Counter("session_frames_limited_total")
		m.mWidens = r.Counter("session_widen_total")
		m.mDegrades = r.Counter("session_degrade_total")
	}
	for i := range m.shards {
		sh := &shard{
			mgr:      m,
			idx:      i,
			sessions: make(map[string]*Session),
			wake:     make(chan struct{}, 1),
		}
		if r := cfg.Registry; r != nil {
			// Bounded construction-time loop: one gauge set per shard,
			// shard count fixed for the manager's lifetime.
			name := shardGaugeName(i)
			sh.gSessions = r.Gauge(name + "_sessions")     //blinkvet:ignore metrichygiene -- per-shard gauges, bounded at construction
			sh.gQueued = r.Gauge(name + "_queued_frames")  //blinkvet:ignore metrichygiene -- per-shard gauges, bounded at construction
			sh.gSaturation = r.Gauge(name + "_saturation") //blinkvet:ignore metrichygiene -- per-shard gauges, bounded at construction
		}
		m.shards[i] = sh
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			sh.run()
		}()
	}
	return m, nil
}

// shardGaugeName is the per-shard metric name prefix.
func shardGaugeName(idx int) string {
	return fmt.Sprintf("session_shard%d", idx)
}

// shardFor hashes the session ID (FNV-1a) onto a shard.
//
//blinkradar:hotpath
func (m *Manager) shardFor(id string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return m.shards[h%uint64(len(m.shards))]
}

// Attach admits a new session. Steady-state churn performs no
// allocations: detached sessions park on their shard's free list and
// are recycled, monitor state and queue storage included.
func (m *Manager) Attach(id string) error {
	if id == "" {
		return fmt.Errorf("session: empty id")
	}
	m.admit.Lock()
	defer m.admit.Unlock()
	if m.closed.Load() {
		return ErrManagerClosed
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	_, exists := sh.sessions[id]
	nShard := len(sh.sessions)
	sh.mu.RUnlock()
	if exists {
		return ErrSessionExists
	}
	if m.cfg.MaxSessions > 0 && m.nSessions >= m.cfg.MaxSessions {
		m.rejects.Add(1)
		m.mRejects.Inc()
		return ErrSessionLimit
	}
	if m.cfg.MaxSessionsPerShard > 0 && nShard >= m.cfg.MaxSessionsPerShard {
		m.rejects.Add(1)
		m.mRejects.Inc()
		return ErrSessionLimit
	}
	var s *Session
	if k := len(sh.free); k > 0 {
		s = sh.free[k-1]
		sh.free[k-1] = nil
		sh.free = sh.free[:k-1]
		m.poolHits.Add(1)
		m.mPoolHits.Inc()
	} else {
		mon, err := blinkradar.NewMonitor(m.cfg.Core, m.cfg.NumBins, m.cfg.FrameRate, m.cfg.WindowSec)
		if err != nil {
			return err
		}
		s = newSession(m.cfg.NumBins, m.cfg.QueueFrames, mon, m.cfg.WindowSec)
		m.poolMisses.Add(1)
		m.mPoolMisses.Inc()
	}
	s.id = id
	s.tokens = m.cfg.RateBurst
	s.lastRefill = m.cfg.Now()
	sh.mu.Lock()
	sh.sessions[id] = s
	nShard = len(sh.sessions)
	sh.mu.Unlock()
	m.nSessions++
	m.attaches.Add(1)
	m.mAttaches.Inc()
	sh.gSessions.Set(float64(nShard))
	return nil
}

// Detach removes a session, recycles its state into the shard pool, and
// returns its final accounting (frames still queued are folded into
// Dropped, so Submitted == Processed + Dropped in the result).
func (m *Manager) Detach(id string) (SessionStats, error) {
	m.admit.Lock()
	defer m.admit.Unlock()
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	nShard := len(sh.sessions)
	sh.mu.Unlock()
	if !ok {
		return SessionStats{}, ErrSessionNotFound
	}
	// Wait out any in-flight feed batch, then recycle under the lock.
	s.feedMu.Lock()
	discarded := uint64(s.queued())
	stats := s.recycle(m.cfg.WindowSec)
	s.feedMu.Unlock()
	stats.ID = id
	if discarded > 0 {
		// Frames still queued were never fed; fold them into the
		// fleet-level drop accounting like the session-level recycle
		// does, so Frames == Processed + Dropped + Queued stays exact.
		m.frDropped.Add(discarded)
		m.mDropped.Add(discarded)
	}
	sh.free = append(sh.free, s)
	m.nSessions--
	m.detaches.Add(1)
	m.mDetaches.Inc()
	sh.gSessions.Set(float64(nShard))
	return stats, nil
}

// Submit offers one frame to a session. The frame is copied into the
// session's queue; the caller may reuse the slice immediately. A full
// queue drops the frame (accounted, and surfaced to the pipeline as a
// gap); an empty token bucket rejects it with ErrRateLimited.
//
// The queue holds float32 planes, so this complex boundary narrows on
// copy; SubmitPlanes skips the conversion entirely and is what the
// wire-facing ingest path uses.
//
//blinkradar:hotpath
func (m *Manager) Submit(id string, frame []complex128) error {
	return m.submit(id, nil, nil, frame)
}

// SubmitPlanes is Submit for a frame already split into float32 I/Q
// planes (the wire codec's native decode), copied into the session
// queue with no complex materialisation; the caller may reuse both
// slices immediately.
//
//blinkradar:hotpath
func (m *Manager) SubmitPlanes(id string, pi, pq []float32) error {
	return m.submit(id, pi, pq, nil)
}

// submit is the shared admission path: exactly one of (pi, pq) or
// frame carries the payload.
//
//blinkradar:hotpath
func (m *Manager) submit(id string, pi, pq []float32, frame []complex128) error {
	if m.closed.Load() {
		return ErrManagerClosed
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	s := sh.sessions[id]
	var gen uint64
	if s != nil {
		gen = s.gen.Load()
	}
	sh.mu.RUnlock()
	if s == nil {
		return ErrSessionNotFound
	}
	if frame != nil {
		if len(frame) != s.bins {
			return ErrGeometry
		}
	} else if len(pi) != s.bins || len(pq) != s.bins {
		return ErrGeometry
	}
	limit, burst := m.cfg.RateLimit, m.cfg.RateBurst
	s.qmu.Lock()
	if s.gen.Load() != gen {
		// The session was detached (and possibly recycled for another
		// stream) between lookup and here.
		s.qmu.Unlock()
		return ErrSessionNotFound
	}
	if limit > 0 && !s.takeToken(m.cfg.Now(), limit, burst) {
		s.qmu.Unlock()
		s.limited.Add(1)
		m.frLimited.Add(1)
		m.mLimited.Inc()
		return ErrRateLimited
	}
	var accepted bool
	if frame != nil {
		accepted = s.pushComplex(frame)
	} else {
		accepted = s.push(pi, pq)
	}
	from, to, changed := s.noteSubmit(accepted, m.cfg.DropWindowFrames, m.cfg.WidenAtDropFrac, m.cfg.DegradeAtDropFrac)
	s.qmu.Unlock()
	s.submitted.Add(1)
	m.framesIn.Add(1)
	m.mFrames.Inc()
	if !accepted {
		s.dropped.Add(1)
		m.frDropped.Add(1)
		m.mDropped.Inc()
	}
	if changed {
		m.applyPressure(s, from, to)
	}
	sh.wakeWorker()
	return nil
}

// applyPressure records a level transition and posts the window span it
// implies; the shard worker applies the span to the monitor.
func (m *Manager) applyPressure(s *Session, from, to PressureState) {
	span := m.cfg.WindowSec
	if to >= PressureWidened {
		span = m.cfg.WindowSec * m.cfg.WidenFactor
	}
	s.wantWindow.Store(math.Float64bits(span))
	if to > from {
		if to == PressureDegraded {
			m.degrades.Add(1)
			m.mDegrades.Inc()
		} else {
			m.widens.Add(1)
			m.mWidens.Inc()
		}
	}
}

// NoteGap reports an upstream frame loss (e.g. a transport sequence
// gap) for a session. It is attached to the next accepted frame and
// delivered to the pipeline before that frame is fed.
func (m *Manager) NoteGap(id string, missed uint64) error {
	if missed == 0 {
		return nil
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	s := sh.sessions[id]
	var gen uint64
	if s != nil {
		gen = s.gen.Load()
	}
	sh.mu.RUnlock()
	if s == nil {
		return ErrSessionNotFound
	}
	s.qmu.Lock()
	if s.gen.Load() != gen {
		s.qmu.Unlock()
		return ErrSessionNotFound
	}
	s.pendingGap += missed
	s.qmu.Unlock()
	s.gapFrames.Add(missed)
	return nil
}

// SessionStats returns a point-in-time view of one session.
func (m *Manager) SessionStats(id string) (SessionStats, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s := sh.sessions[id]
	sh.mu.RUnlock()
	if s == nil {
		return SessionStats{}, ErrSessionNotFound
	}
	st := s.snapshot()
	st.ID = id
	st.Queued = uint64(s.queued())
	return st, nil
}

// ManagerStats is the fleet-wide accounting aggregate.
type ManagerStats struct {
	// Sessions is the number of sessions currently attached.
	Sessions int
	// Queued is the total frame backlog across all sessions.
	Queued uint64
	// Attaches and Detaches count lifetime churn.
	Attaches, Detaches uint64
	// PoolHits and PoolMisses split attaches by whether state was
	// recycled from the pool or newly allocated.
	PoolHits, PoolMisses uint64
	// Rejects counts admission refusals.
	Rejects uint64
	// Frames, Dropped, Limited, Processed count frames across all
	// sessions' lifetimes (detached sessions included).
	Frames, Dropped, Limited, Processed uint64
	// Widens and Degrades count backpressure escalations.
	Widens, Degrades uint64
}

// Stats aggregates accounting across every shard. The per-session walk
// (for Queued) takes each shard's read lock briefly.
func (m *Manager) Stats() ManagerStats {
	st := ManagerStats{
		Attaches:   m.attaches.Load(),
		Detaches:   m.detaches.Load(),
		PoolHits:   m.poolHits.Load(),
		PoolMisses: m.poolMisses.Load(),
		Rejects:    m.rejects.Load(),
		Frames:     m.framesIn.Load(),
		Dropped:    m.frDropped.Load(),
		Limited:    m.frLimited.Load(),
		Processed:  m.frDone.Load(),
		Widens:     m.widens.Load(),
		Degrades:   m.degrades.Load(),
	}
	for _, sh := range m.shards {
		sh.mu.RLock()
		st.Sessions += len(sh.sessions)
		for _, s := range sh.sessions {
			st.Queued += uint64(s.queued())
		}
		sh.mu.RUnlock()
	}
	return st
}

// Sessions returns the number of sessions currently attached.
func (m *Manager) Sessions() int {
	m.admit.Lock()
	n := m.nSessions
	m.admit.Unlock()
	return n
}

// Close stops every shard worker and waits for them. Attached sessions
// are not detached; their queues simply stop draining. Close is
// idempotent in effect but returns ErrManagerClosed after the first
// call.
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return ErrManagerClosed
	}
	close(m.stop)
	m.wg.Wait()
	return nil
}

// wakeWorker nudges the shard worker; a pending nudge is enough.
//
//blinkradar:hotpath
func (sh *shard) wakeWorker() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// run is the shard worker: drain every session's queue in bounded
// batches until nothing is left, then sleep on the wake channel. It is
// the root of the shard domain — the scratch snapshot below is touched
// only from here.
//
//blinkradar:entry shard
func (sh *shard) run() {
	for {
		select {
		case <-sh.mgr.stop:
			return
		case <-sh.wake:
		}
		for sh.drainPass() > 0 {
			select {
			case <-sh.mgr.stop:
				return
			default:
			}
		}
	}
}

// drainPass feeds up to DrainBatchFrames frames from every session and
// reports the total fed. The session snapshot is taken under the read
// lock into a reused scratch slice so the map is never held across
// pipeline work.
func (sh *shard) drainPass() int {
	sh.scratch = sh.scratch[:0]
	sh.mu.RLock()
	for _, s := range sh.sessions {
		sh.scratch = append(sh.scratch, s)
	}
	sh.mu.RUnlock()
	total, queued := 0, 0
	for _, s := range sh.scratch {
		total += sh.drainSession(s)
		queued += s.queued()
	}
	sh.gQueued.Set(float64(queued))
	if capacity := len(sh.scratch) * sh.mgr.cfg.QueueFrames; capacity > 0 {
		sh.gSaturation.Set(float64(queued) / float64(capacity))
	} else {
		sh.gSaturation.Set(0)
	}
	for i := range sh.scratch {
		sh.scratch[i] = nil
	}
	return total
}

// drainSession feeds one bounded batch from a session's queue through
// its pipeline. peek/commitPop bracket each feed so the slot cannot be
// overwritten mid-feed; feedMu keeps detach from recycling state under
// the worker — making this the worker-side entry of the feed domain.
//
//blinkradar:entry feed
func (sh *shard) drainSession(s *Session) int {
	s.feedMu.Lock()
	defer s.feedMu.Unlock()
	if want := s.loadWantWindow(); want != s.appliedWindow {
		if err := s.mon.SetWindowSec(want); err == nil {
			s.appliedWindow = want
		}
	}
	cfg := &sh.mgr.cfg
	fed := 0
	for fed < cfg.DrainBatchFrames {
		pi, pq, gap, ok := s.peek()
		if !ok {
			break
		}
		if gap > 0 {
			s.mon.NoteGap(gap)
		}
		ev, okEv, a, err := s.mon.FeedPlanes(pi, pq)
		s.commitPop()
		s.processed.Add(1)
		sh.mgr.frDone.Add(1)
		fed++
		if err != nil {
			s.assessErrs.Add(1)
		}
		if okEv {
			s.blinks.Add(1)
			if cfg.OnBlink != nil {
				cfg.OnBlink(s.id, ev)
			}
		}
		if a != nil {
			s.assessments.Add(1)
			if cfg.OnAssessment != nil {
				cfg.OnAssessment(s.id, *a)
			}
		}
	}
	return fed
}
