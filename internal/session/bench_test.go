package session

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"blinkradar"
)

// BenchmarkFleet measures the multi-session service layer end to end:
// 512 concurrent sessions sharded across GOMAXPROCS workers, each frame
// submitted through admission, queueing, and the full detection
// pipeline. One op is one frame through one session. The derived
// streams/core metric is how many real-time radar streams (at the
// configured frame rate) one core sustains; the allocation budget in CI
// is zero — the pool and the flat queues make the steady state
// alloc-free however many sessions churn through.
func BenchmarkFleet(b *testing.B) {
	const (
		sessions = 512
		bins     = 40
		prime    = 160 // frames fed per session before timing starts
	)
	cfg := Config{
		NumBins:   bins,
		FrameRate: 25,
		WindowSec: 60,
		Core:      blinkradar.DefaultConfig(),
	}
	m, err := NewManager(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	// A small bank of deterministic frames: enough variation that the
	// pipeline does real work, no allocation during the timed loop.
	bank := make([][]complex128, 64)
	for i := range bank {
		f := make([]complex128, bins)
		for j := range f {
			ph := float64(i)*0.31 + float64(j)*0.7
			f[j] = complex(math.Cos(ph), math.Sin(ph)) * 1e-3
		}
		bank[i] = f
	}
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("veh-%04d", i)
		if err := m.Attach(ids[i]); err != nil {
			b.Fatal(err)
		}
	}
	// Prime every session past cold start so the timed region measures
	// steady state, not amortised warm-up growth.
	for f := 0; f < prime; f++ {
		for _, id := range ids {
			if err := m.Submit(id, bank[f%len(bank)]); err != nil {
				b.Fatal(err)
			}
		}
		pace(m, sessions*16)
	}
	waitIdle(b, m)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Submit(ids[i%sessions], bank[i%len(bank)]); err != nil {
			b.Fatal(err)
		}
		pace(m, sessions*16)
	}
	waitIdle(b, m)
	b.StopTimer()

	if secs := b.Elapsed().Seconds(); secs > 0 {
		framesPerSec := float64(b.N) / secs
		streams := framesPerSec / cfg.FrameRate
		b.ReportMetric(streams/float64(runtime.GOMAXPROCS(0)), "streams/core")
	}
	st := m.Stats()
	if st.Dropped > 0 {
		b.Fatalf("paced benchmark dropped %d frames; queues overflowed", st.Dropped)
	}
}

// pace bounds the submit-side lead over the workers so queues never
// overflow (drops would understate the per-frame cost).
func pace(m *Manager, maxInFlight uint64) {
	for m.framesIn.Load()-m.frDone.Load() > maxInFlight {
		runtime.Gosched()
	}
}

// waitIdle blocks until the workers have drained every queue.
func waitIdle(b *testing.B, m *Manager) {
	b.Helper()
	for m.frDone.Load() < m.framesIn.Load() {
		runtime.Gosched()
	}
}
