package session

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"blinkradar"
	"blinkradar/internal/obs"
)

// testConfig is a small-geometry manager config that keeps unit tests
// fast; individual tests override fields.
func testConfig() Config {
	return Config{
		NumBins:   16,
		FrameRate: 25,
		WindowSec: 2,
		Core:      blinkradar.DefaultConfig(),
		Shards:    2,
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// testFrame fills a deterministic, finite radar frame.
func testFrame(bins int, seed int) []complex128 {
	f := make([]complex128, bins)
	for b := range f {
		ph := float64(seed)*0.13 + float64(b)*0.7
		f[b] = complex(math.Cos(ph), math.Sin(ph)) * 1e-3
	}
	return f
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// lookup fetches the live session object for white-box assertions.
func lookup(t *testing.T, m *Manager, id string) *Session {
	t.Helper()
	sh := m.shardFor(id)
	sh.mu.RLock()
	s := sh.sessions[id]
	sh.mu.RUnlock()
	if s == nil {
		t.Fatalf("session %q not attached", id)
	}
	return s
}

func TestSubmitFeedsPipeline(t *testing.T) {
	m := newTestManager(t, testConfig())
	if err := m.Attach("car-1"); err != nil {
		t.Fatal(err)
	}
	frame := testFrame(16, 1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := m.Submit("car-1", frame); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "queue drain", func() bool {
		st, err := m.SessionStats("car-1")
		return err == nil && st.Processed+st.Dropped == n && st.Queued == 0
	})
	st, err := m.SessionStats("car-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != n {
		t.Fatalf("submitted %d, want %d", st.Submitted, n)
	}
	if st.Submitted != st.Processed+st.Dropped+st.Queued {
		t.Fatalf("accounting broken: %+v", st)
	}
	final, err := m.Detach("car-1")
	if err != nil {
		t.Fatal(err)
	}
	if final.Submitted != final.Processed+final.Dropped {
		t.Fatalf("detach accounting broken: %+v", final)
	}
}

func TestAdmissionControl(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 3
	m := newTestManager(t, cfg)
	for _, id := range []string{"a", "b", "c"} {
		if err := m.Attach(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Attach("d"); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("over-capacity attach: got %v, want ErrSessionLimit", err)
	}
	if err := m.Attach("a"); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate attach: got %v, want ErrSessionExists", err)
	}
	if _, err := m.Detach("nope"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("detach of unknown id: got %v, want ErrSessionNotFound", err)
	}
	if err := m.Submit("nope", testFrame(16, 0)); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("submit to unknown id: got %v, want ErrSessionNotFound", err)
	}
	if err := m.Submit("a", testFrame(8, 0)); !errors.Is(err, ErrGeometry) {
		t.Fatalf("wrong-geometry submit: got %v, want ErrGeometry", err)
	}
	if _, err := m.Detach("c"); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach("d"); err != nil {
		t.Fatalf("attach after detach freed capacity: %v", err)
	}
	if got := m.Stats().Rejects; got != 1 {
		t.Fatalf("rejects counter %d, want 1", got)
	}
}

func TestPerShardAdmissionLimit(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 2
	cfg.MaxSessionsPerShard = 2
	m := newTestManager(t, cfg)
	// Fill one specific shard to its cap using IDs that hash to it.
	target := m.shardFor("seed")
	attached := 0
	rejected := false
	for i := 0; attached < 4 && i < 4096; i++ {
		id := "s" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		if m.shardFor(id) != target {
			continue
		}
		err := m.Attach(id)
		switch {
		case err == nil:
			attached++
		case errors.Is(err, ErrSessionLimit):
			rejected = true
		default:
			t.Fatal(err)
		}
		if rejected {
			break
		}
	}
	if !rejected {
		t.Fatal("per-shard limit never rejected an attach")
	}
	if attached != 2 {
		t.Fatalf("shard admitted %d sessions, want 2", attached)
	}
}

func TestShardAffinity(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	m := newTestManager(t, cfg)
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		id := "veh-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if err := m.Attach(id); err != nil {
			t.Fatal(err)
		}
		// The session must live in exactly the shard the hash names,
		// and repeat lookups must agree (stable affinity).
		sh := m.shardFor(id)
		if sh != m.shardFor(id) {
			t.Fatalf("shardFor(%q) unstable", id)
		}
		sh.mu.RLock()
		_, ok := sh.sessions[id]
		sh.mu.RUnlock()
		if !ok {
			t.Fatalf("session %q not in its hash shard", id)
		}
		used[sh.idx] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 sessions landed in %d shard(s); hash is not spreading", len(used))
	}
}

func TestAttachDetachChurnAllocFree(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 1
	m := newTestManager(t, cfg)
	frame := testFrame(16, 7)

	// First attach allocates the pooled state (a pool miss)...
	if err := m.Attach("churn"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := m.Submit("churn", frame); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "drain before churn", func() bool {
		st, _ := m.SessionStats("churn")
		return st.Queued == 0
	})
	if _, err := m.Detach("churn"); err != nil {
		t.Fatal(err)
	}

	// ...after which churn on the same shard recycles it: zero allocs
	// per attach/detach cycle is the pool's contract.
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.Attach("churn"); err != nil {
			panic(err)
		}
		if _, err := m.Detach("churn"); err != nil {
			panic(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("attach/detach churn allocates %.1f per cycle, want 0", allocs)
	}
	st := m.Stats()
	if st.PoolMisses != 1 {
		t.Fatalf("pool misses %d, want 1 (only the cold attach)", st.PoolMisses)
	}
	if st.PoolHits < 200 {
		t.Fatalf("pool hits %d, want >= 200", st.PoolHits)
	}
}

func TestDetachResetsRecycledState(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 1
	m := newTestManager(t, cfg)
	frame := testFrame(16, 3)
	if err := m.Attach("first"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := m.Submit("first", frame); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "drain", func() bool {
		st, _ := m.SessionStats("first")
		return st.Queued == 0
	})
	if _, err := m.Detach("first"); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach("second"); err != nil {
		t.Fatal(err)
	}
	st, err := m.SessionStats("second")
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 0 || st.Processed != 0 || st.Dropped != 0 || st.Blinks != 0 {
		t.Fatalf("recycled session leaked accounting: %+v", st)
	}
	if st.Pressure != PressureNormal {
		t.Fatalf("recycled session pressure %v, want normal", st.Pressure)
	}
	s := lookup(t, m, "second")
	if s.mon.Detector().Frame() != 0 {
		t.Fatalf("recycled detector carries %d frames of the previous stream", s.mon.Detector().Frame())
	}
}

func TestRateLimiting(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	cfg := testConfig()
	cfg.Shards = 1
	cfg.RateLimit = 10
	cfg.RateBurst = 5
	cfg.Now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m := newTestManager(t, cfg)
	if err := m.Attach("limited"); err != nil {
		t.Fatal(err)
	}
	frame := testFrame(16, 9)
	for i := 0; i < 5; i++ {
		if err := m.Submit("limited", frame); err != nil {
			t.Fatalf("within burst, frame %d: %v", i, err)
		}
	}
	if err := m.Submit("limited", frame); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst exhausted: got %v, want ErrRateLimited", err)
	}
	mu.Lock()
	now = now.Add(300 * time.Millisecond) // refills 3 tokens at 10/s
	mu.Unlock()
	for i := 0; i < 3; i++ {
		if err := m.Submit("limited", frame); err != nil {
			t.Fatalf("after refill, frame %d: %v", i, err)
		}
	}
	if err := m.Submit("limited", frame); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("refill overspent: got %v, want ErrRateLimited", err)
	}
	st, err := m.SessionStats("limited")
	if err != nil {
		t.Fatal(err)
	}
	if st.Limited != 2 {
		t.Fatalf("limited count %d, want 2", st.Limited)
	}
	if st.Submitted != 8 {
		t.Fatalf("submitted %d, want 8 (limited frames never enter accounting)", st.Submitted)
	}
}

// TestBackpressureTransitions drives the full graceful-degradation
// ladder deterministically: the worker is parked on the session's feed
// lock so queue overflow is exact, then released so drop-free windows
// step the level back down.
func TestBackpressureTransitions(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 1
	cfg.WindowSec = 2
	cfg.WidenFactor = 2
	cfg.QueueFrames = 12
	cfg.DropWindowFrames = 16
	cfg.WidenAtDropFrac = 0.25
	cfg.DegradeAtDropFrac = 0.5
	m := newTestManager(t, cfg)
	if err := m.Attach("bp"); err != nil {
		t.Fatal(err)
	}
	s := lookup(t, m, "bp")
	frame := testFrame(16, 5)

	// Park the worker: nothing drains while we overflow the queue.
	s.feedMu.Lock()
	// Window 1: 12 accepted + 4 dropped = 25% -> widened.
	for i := 0; i < 16; i++ {
		if err := m.Submit("bp", frame); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Pressure(); got != PressureWidened {
		s.feedMu.Unlock()
		t.Fatalf("after 25%% drops: pressure %v, want widened", got)
	}
	if st, _ := m.SessionStats("bp"); st.WindowSec != 4 {
		s.feedMu.Unlock()
		t.Fatalf("widened window %g s, want 4 (2 s × factor 2)", st.WindowSec)
	}
	// Window 2: queue still full, 16/16 dropped -> degraded, and the
	// session's health reports degraded regardless of the detector.
	for i := 0; i < 16; i++ {
		if err := m.Submit("bp", frame); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Pressure(); got != PressureDegraded {
		s.feedMu.Unlock()
		t.Fatalf("after 100%% drops: pressure %v, want degraded", got)
	}
	if st, _ := m.SessionStats("bp"); st.Health != blinkradar.HealthDegraded {
		s.feedMu.Unlock()
		t.Fatalf("degraded session health %v, want HealthDegraded", st.Health)
	}
	s.feedMu.Unlock()

	// Recovery: drop-free evaluation windows step down one level each.
	cleanWindow := func() {
		t.Helper()
		for i := 0; i < 16; i++ {
			var before uint64
			waitFor(t, "queue space", func() bool {
				st, err := m.SessionStats("bp")
				if err != nil {
					return false
				}
				before = st.Dropped
				return st.Queued < uint64(cfg.QueueFrames)
			})
			if err := m.Submit("bp", frame); err != nil {
				t.Fatal(err)
			}
			if st, _ := m.SessionStats("bp"); st.Dropped != before {
				t.Fatal("paced submit still dropped a frame")
			}
		}
	}
	cleanWindow()
	if got := s.Pressure(); got != PressureWidened {
		t.Fatalf("after one clean window: pressure %v, want widened (one step down)", got)
	}
	cleanWindow()
	if got := s.Pressure(); got != PressureNormal {
		t.Fatalf("after two clean windows: pressure %v, want normal", got)
	}
	if st, _ := m.SessionStats("bp"); st.WindowSec != 2 {
		t.Fatalf("restored window %g s, want 2", st.WindowSec)
	}
	// The worker must also have applied the restored span to the
	// monitor once it drained post-recovery frames.
	waitFor(t, "window restore to reach the monitor", func() bool {
		st, err := m.SessionStats("bp")
		if err != nil || st.Queued > 0 {
			return false
		}
		s.feedMu.Lock()
		applied := s.appliedWindow
		s.feedMu.Unlock()
		return applied == 2
	})
}

// TestDroppedFramesSurfaceAsGaps verifies backpressure drops are not
// silent: the pipeline is told about the hole before the next frame.
func TestDroppedFramesSurfaceAsGaps(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 1
	cfg.QueueFrames = 4
	m := newTestManager(t, cfg)
	if err := m.Attach("gappy"); err != nil {
		t.Fatal(err)
	}
	s := lookup(t, m, "gappy")
	frame := testFrame(16, 11)

	s.feedMu.Lock()
	for i := 0; i < 7; i++ { // 4 queued, 3 dropped
		if err := m.Submit("gappy", frame); err != nil {
			s.feedMu.Unlock()
			t.Fatal(err)
		}
	}
	// An upstream transport gap folds into the same pending hole.
	if err := m.NoteGap("gappy", 5); err != nil {
		s.feedMu.Unlock()
		t.Fatal(err)
	}
	s.qmu.Lock()
	pending := s.pendingGap
	s.qmu.Unlock()
	s.feedMu.Unlock()
	if pending != 8 {
		t.Fatalf("pending gap %d, want 8 (3 dropped + 5 upstream)", pending)
	}
	waitFor(t, "drain", func() bool {
		st, _ := m.SessionStats("gappy")
		return st.Queued == 0
	})
	// The next accepted frame carries the hole to the pipeline.
	if err := m.Submit("gappy", frame); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "gap delivery", func() bool {
		st, _ := m.SessionStats("gappy")
		return st.Queued == 0
	})
	// The detector saw the gap: its input accounting matches exactly.
	if gaps := s.mon.InputStats(); gaps.GapFrames != 8 {
		t.Fatalf("pipeline heard about %d lost frames, want 8: %+v", gaps.GapFrames, gaps)
	}
}

func TestCloseRejectsFurtherWork(t *testing.T) {
	m, err := NewManager(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Attach("x"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("second close: got %v, want ErrManagerClosed", err)
	}
	if err := m.Submit("x", testFrame(16, 0)); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("submit after close: got %v, want ErrManagerClosed", err)
	}
	if err := m.Attach("y"); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("attach after close: got %v, want ErrManagerClosed", err)
	}
}

// TestConcurrentChurnAndSubmit hammers attach/detach/submit from many
// goroutines; run with -race this is the aliasing/liveness check for
// the shard maps, free lists, and queues.
func TestConcurrentChurnAndSubmit(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	m := newTestManager(t, cfg)
	ids := make([]string, 32)
	for i := range ids {
		ids[i] = "fleet-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := m.Attach(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			frame := testFrame(16, w)
			for i := 0; i < 400; i++ {
				id := ids[(w*400+i)%len(ids)]
				switch {
				case i%97 == 0:
					// Churn: flap the session under live traffic.
					if _, err := m.Detach(id); err == nil {
						for m.Attach(id) != nil {
							time.Sleep(time.Microsecond)
						}
					}
				default:
					err := m.Submit(id, frame)
					if err != nil && !errors.Is(err, ErrSessionNotFound) {
						panic(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	waitFor(t, "drain after churn", func() bool {
		return m.Stats().Queued == 0
	})
	st := m.Stats()
	if st.Frames != st.Processed+st.Dropped {
		t.Fatalf("fleet accounting broken after churn: %+v", st)
	}
	if st.Sessions != len(ids) {
		t.Fatalf("%d sessions attached after churn, want %d", st.Sessions, len(ids))
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Shards = 2
	cfg.Registry = reg
	m := newTestManager(t, cfg)
	if err := m.Attach("metered"); err != nil {
		t.Fatal(err)
	}
	frame := testFrame(16, 2)
	for i := 0; i < 10; i++ {
		if err := m.Submit("metered", frame); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "drain", func() bool {
		st, _ := m.SessionStats("metered")
		return st.Queued == 0
	})
	if got := reg.Counter("session_attaches_total").Value(); got != 1 {
		t.Fatalf("session_attaches_total = %d, want 1", got)
	}
	if got := reg.Counter("session_frames_total").Value(); got != 10 {
		t.Fatalf("session_frames_total = %d, want 10", got)
	}
	sh := m.shardFor("metered")
	if got := reg.Gauge(shardGaugeName(sh.idx) + "_sessions").Value(); got != 1 {
		t.Fatalf("shard session gauge = %g, want 1", got)
	}
}
