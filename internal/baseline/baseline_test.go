package baseline

import (
	"testing"

	"blinkradar/internal/core"
	"blinkradar/internal/eval"
	"blinkradar/internal/rf"
	"blinkradar/internal/scenario"
)

func TestNaiveBinSelectPicksStrongest(t *testing.T) {
	m, err := rf.NewFrameMatrix(10, 5, 25, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m.Data {
		m.Data[k][1] = 0.5
		m.Data[k][3] = 2.0 // strongest
	}
	bin, err := NaiveBinSelect(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bin != 3 {
		t.Fatalf("selected bin %d, want 3", bin)
	}
	// Guard can exclude the winner.
	bin, err = NaiveBinSelect(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bin != 4 {
		t.Fatalf("guarded selection %d, want 4", bin)
	}
	if _, err := NaiveBinSelect(m, 5); err == nil {
		t.Fatal("all-guarded selection must fail")
	}
}

func TestNaiveBinSelectLocksOntoClutter(t *testing.T) {
	// On a realistic cabin capture, the naive amplitude heuristic must
	// NOT find the face region — that is exactly the paper's argument
	// for variance-based selection.
	spec := scenario.DefaultSpec()
	spec.Duration = 20
	cap, err := scenario.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := NaiveBinSelect(cap.Frames, core.DefaultConfig().GuardBins)
	if err != nil {
		t.Fatal(err)
	}
	if diff := bin - cap.EyeBin; diff > -3 && diff < 3 {
		t.Fatalf("naive selection landed on the face region (bin %d, eye %d): the ablation premise is broken", bin, cap.EyeBin)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.ThresholdK = 0 },
		func(c *Config) { c.SmoothFrames = 0 },
		func(c *Config) { c.RefractorySec = -1 },
		func(c *Config) { c.DetrendFrames = 1 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAmplitudeBaselineWithVarianceSelection(t *testing.T) {
	// With the proper bin, amplitude-only detection still works to a
	// degree — it shares half the signature — but must run end to end.
	spec := scenario.DefaultSpec()
	spec.Duration = 60
	spec.Seed = 11
	cap, err := scenario.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := DefaultConfig()
	bcfg.UseVarianceBinSelect = true
	events, err := DetectAmplitude(bcfg, core.DefaultConfig(), cap.Frames)
	if err != nil {
		t.Fatal(err)
	}
	truth := eval.TrimWarmup(cap.Truth, eval.DefaultWarmup)
	m := eval.Match(truth, events, 0)
	// Sanity only: it runs and detects something.
	if m.TruePositives == 0 && len(truth) > 3 {
		t.Fatalf("amplitude baseline detected nothing over %d blinks", len(truth))
	}
}

func TestBaselinesUnderperformFullPipeline(t *testing.T) {
	// The headline ablation: the naive amplitude-peak baseline must
	// lose badly to the full pipeline on the same captures.
	coreCfg := core.DefaultConfig()
	var fullSum, naiveSum float64
	const sessions = 2
	for i := 0; i < sessions; i++ {
		spec := scenario.DefaultSpec()
		spec.Duration = 90
		spec.Seed = int64(100 + i)
		cap, err := scenario.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		truth := eval.TrimWarmup(cap.Truth, eval.DefaultWarmup)
		full, _, err := core.Detect(coreCfg, cap.Frames)
		if err != nil {
			t.Fatal(err)
		}
		fullSum += eval.Match(truth, full, 0).Accuracy()
		naive, err := DetectAmplitude(DefaultConfig(), coreCfg, cap.Frames)
		if err != nil {
			t.Fatal(err)
		}
		naiveSum += eval.Match(truth, naive, 0).Accuracy()
	}
	if fullSum <= naiveSum {
		t.Fatalf("full pipeline %.2f not above naive baseline %.2f", fullSum/sessions, naiveSum/sessions)
	}
}

func TestPhaseBaselineRuns(t *testing.T) {
	spec := scenario.DefaultSpec()
	spec.Duration = 40
	spec.Seed = 12
	cap, err := scenario.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := DefaultConfig()
	bcfg.UseVarianceBinSelect = true
	if _, err := DetectPhase(bcfg, core.DefaultConfig(), cap.Frames); err != nil {
		t.Fatal(err)
	}
}
