// Package baseline implements the comparison detectors that BlinkRadar's
// design choices are evaluated against:
//
//   - NaiveBinSelect: picks the range bin with the strongest mean
//     amplitude — the "naive approach" the paper rejects because the
//     eye's return is weaker than seats and steering wheel.
//   - AmplitudeDetector: thresholds the 1-D amplitude waveform of a bin
//     instead of the I/Q distance-from-viewing-position waveform.
//   - PhaseDetector: thresholds the unwrapped phase waveform, losing the
//     amplitude half of the blink signature.
//
// All baselines share the paper's preprocessing so differences isolate
// the contribution under study.
package baseline

import (
	"fmt"
	"math"

	"blinkradar/internal/core"
	"blinkradar/internal/dsp"
	"blinkradar/internal/iq"
	"blinkradar/internal/rf"
)

// NaiveBinSelect returns the non-guard bin with the highest time-mean
// power: the amplitude-peak heuristic for locating the eye. In a cabin
// this usually locks onto the seat back or steering wheel (Fig. 6b).
func NaiveBinSelect(m *rf.FrameMatrix, guard int) (int, error) {
	if m.NumBins() <= guard {
		return 0, fmt.Errorf("baseline: no bins beyond guard %d", guard)
	}
	power := m.MeanPowerPerBin()
	best := guard
	for b := guard + 1; b < len(power); b++ {
		if power[b] > power[best] {
			best = b
		}
	}
	return best, nil
}

// Config parameterises the waveform baselines. Thresholds follow the
// same K-times-robust-sigma rule as the main pipeline so the comparison
// is about the waveform, not the rule.
type Config struct {
	// ThresholdK is the detection threshold multiplier.
	ThresholdK float64
	// SmoothFrames is the waveform moving-average width.
	SmoothFrames int
	// RefractorySec merges triggers closer than this.
	RefractorySec float64
	// DetrendFrames is the trailing-median detrend window.
	DetrendFrames int
	// UseVarianceBinSelect selects the bin with BlinkRadar's variance
	// method instead of the naive amplitude peak.
	UseVarianceBinSelect bool
}

// DefaultConfig mirrors the main pipeline's LEVD settings.
func DefaultConfig() Config {
	return Config{
		ThresholdK:    5,
		SmoothFrames:  3,
		RefractorySec: 0.5,
		DetrendFrames: 25,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.ThresholdK <= 0:
		return fmt.Errorf("baseline: threshold multiplier must be positive, got %g", c.ThresholdK)
	case c.SmoothFrames <= 0:
		return fmt.Errorf("baseline: smoothing width must be positive, got %d", c.SmoothFrames)
	case c.RefractorySec < 0:
		return fmt.Errorf("baseline: refractory must be non-negative, got %g", c.RefractorySec)
	case c.DetrendFrames <= 2:
		return fmt.Errorf("baseline: detrend window must exceed 2, got %d", c.DetrendFrames)
	}
	return nil
}

// selectBin picks the analysis bin per the configuration.
func selectBin(cfg Config, coreCfg core.Config, pre *rf.FrameMatrix) (int, error) {
	if cfg.UseVarianceBinSelect {
		best, err := core.SelectBinMatrix(coreCfg, pre)
		if err != nil {
			return 0, err
		}
		return best.Bin, nil
	}
	return NaiveBinSelect(pre, coreCfg.GuardBins)
}

// detectOnWaveform runs the shared extremum-threshold rule on a scalar
// waveform sampled at fps and returns detected events.
func detectOnWaveform(cfg Config, w []float64, fps float64, bin int) ([]core.BlinkEvent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	smoothed, err := dsp.MovingAverage(w, cfg.SmoothFrames)
	if err != nil {
		return nil, err
	}
	// Trailing-median detrend, offline form.
	resid := make([]float64, len(smoothed))
	for i := range smoothed {
		lo := i - cfg.DetrendFrames
		if lo < 0 {
			lo = 0
		}
		resid[i] = smoothed[i] - dsp.Median(smoothed[lo:i+1])
	}
	sigma := 1.4826 * dsp.MAD(resid)
	if sigma == 0 {
		return nil, nil
	}
	thr := cfg.ThresholdK * sigma
	ext := dsp.LocalExtrema(resid)
	var events []core.BlinkEvent
	last := math.Inf(-1)
	for i := 1; i < len(ext); i++ {
		diff := math.Abs(ext[i].Value - ext[i-1].Value)
		if diff <= thr {
			continue
		}
		t := float64(ext[i-1].Index) / fps
		if t-last < cfg.RefractorySec {
			if t > last {
				last = t
			}
			continue
		}
		last = t
		span := float64(ext[i].Index-ext[i-1].Index) / fps
		dur := span * 3
		if dur < 0.075 {
			dur = 0.075
		}
		if dur > 1.5 {
			dur = 1.5
		}
		events = append(events, core.BlinkEvent{Time: t, Duration: dur, Amplitude: diff, Bin: bin})
	}
	return events, nil
}

// DetectAmplitude runs the amplitude-only baseline over a capture: the
// bin's |z| waveform replaces the distance-from-viewing-position
// waveform, so phase information is discarded.
func DetectAmplitude(cfg Config, coreCfg core.Config, m *rf.FrameMatrix) ([]core.BlinkEvent, error) {
	pre, err := core.PreprocessMatrix(coreCfg, m)
	if err != nil {
		return nil, err
	}
	bin, err := selectBin(cfg, coreCfg, pre)
	if err != nil {
		return nil, err
	}
	amp := iq.Amplitudes(pre.SlowTime(bin))
	return detectOnWaveform(cfg, amp, m.FrameRate, bin)
}

// DetectPhase runs the phase-only baseline over a capture: the bin's
// unwrapped phase waveform is thresholded, discarding the amplitude
// half of the blink signature and leaving the detector exposed to every
// phase-modulating interference (respiration, BCG, vibration).
func DetectPhase(cfg Config, coreCfg core.Config, m *rf.FrameMatrix) ([]core.BlinkEvent, error) {
	pre, err := core.PreprocessMatrix(coreCfg, m)
	if err != nil {
		return nil, err
	}
	bin, err := selectBin(cfg, coreCfg, pre)
	if err != nil {
		return nil, err
	}
	ph := iq.UnwrapPhases(pre.SlowTime(bin))
	return detectOnWaveform(cfg, ph, m.FrameRate, bin)
}
