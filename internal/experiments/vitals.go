package experiments

import (
	"fmt"
	"math"

	"blinkradar/internal/core"
	"blinkradar/internal/scenario"
	"blinkradar/internal/vitals"
)

// ExtVitalsResult validates the "embedded interference" quantitatively:
// the respiration and heartbeat that the paper only exploits for bin
// selection must be recoverable from the very same stream (as the
// in-vehicle vital-sign systems the paper cites do). This is an
// extension experiment beyond the paper's tables.
type ExtVitalsResult struct {
	// Rows hold one entry per subject.
	Rows []ExtVitalsRow
	// RespWithinBPM and HeartWithinBPM count subjects whose estimate
	// landed within 2 breaths/min and 6 beats/min of ground truth.
	RespWithinBPM, HeartWithinBPM int
}

// ExtVitalsRow is one subject's estimate versus ground truth.
type ExtVitalsRow struct {
	// Subject is the participant id.
	Subject int
	// TrueRespBPM and EstRespBPM compare breathing rates.
	TrueRespBPM, EstRespBPM float64
	// TrueHeartBPM and EstHeartBPM compare heart rates (0 estimate
	// when no confident line was found).
	TrueHeartBPM, EstHeartBPM float64
}

// ExtVitals runs the blink pipeline's own preprocessing and bin
// selection, then estimates vital signs from the selected bin for every
// subject.
func ExtVitals(cfg core.Config) (ExtVitalsResult, error) {
	var res ExtVitalsResult
	for id := 1; id <= DefaultSubjects; id++ {
		spec := SessionSpec(id, 9, scenario.Lab, func(s *scenario.Spec) {
			s.Duration = 90
		})
		cap, err := scenario.Generate(spec)
		if err != nil {
			return res, err
		}
		pre, err := core.PreprocessMatrix(cfg, cap.Frames)
		if err != nil {
			return res, err
		}
		best, err := core.SelectBinMatrix(cfg, pre)
		if err != nil {
			return res, err
		}
		skip := int(cfg.BackgroundTauSec*cap.Frames.FrameRate) + 1
		est, err := vitals.EstimateFromSeries(pre.SlowTime(best.Bin)[skip:], cap.Frames.FrameRate)
		if err != nil {
			return res, fmt.Errorf("subject %d: %w", id, err)
		}
		row := ExtVitalsRow{
			Subject:      id,
			TrueRespBPM:  spec.Subject.Respiration.RateHz * 60,
			EstRespBPM:   est.RespirationBPM(),
			TrueHeartBPM: spec.Subject.Heartbeat.RateHz * 60,
			EstHeartBPM:  est.HeartBPM(),
		}
		res.Rows = append(res.Rows, row)
		if math.Abs(row.EstRespBPM-row.TrueRespBPM) <= 2 {
			res.RespWithinBPM++
		}
		if row.EstHeartBPM > 0 && math.Abs(row.EstHeartBPM-row.TrueHeartBPM) <= 6 {
			res.HeartWithinBPM++
		}
	}
	return res, nil
}

// String renders the per-subject table.
func (r ExtVitalsResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		heart := "-"
		if row.EstHeartBPM > 0 {
			heart = fmt.Sprintf("%.0f", row.EstHeartBPM)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Subject),
			fmt.Sprintf("%.1f", row.TrueRespBPM),
			fmt.Sprintf("%.1f", row.EstRespBPM),
			fmt.Sprintf("%.0f", row.TrueHeartBPM),
			heart,
		})
	}
	return fmt.Sprintf("Extension: vital signs from the blink stream (%d/%d respiration within 2 bpm, %d/%d heart within 6 bpm)\n",
		r.RespWithinBPM, len(r.Rows), r.HeartWithinBPM, len(r.Rows)) +
		Table([]string{"subject", "true resp", "est resp", "true heart", "est heart"}, rows)
}

// ExtDeviceVibration sweeps vibration of the radar unit itself — the
// open challenge of the paper's Discussion ("the detected motion
// information comes from both the target and the device"). Device
// shake defeats the static-clutter assumption behind background
// subtraction, so accuracy should degrade faster than with the same
// RMS of body-only vibration.
func ExtDeviceVibration(cfg core.Config) (SweepResult, error) {
	levels := []float64{0, 0.00005, 0.0002, 0.001}
	labels := make([]string, len(levels))
	muts := make([]func(*scenario.Spec), len(levels))
	for i, l := range levels {
		l := l
		labels[i] = fmt.Sprintf("%.2f mm", l*1000)
		muts[i] = func(s *scenario.Spec) { s.DeviceVibrationRMS = l }
	}
	return runSweep(cfg, "Extension: device vibration",
		"sub-millimetre device shake already breaks the static-clutter assumption", scenario.Driving, labels, muts)
}
