package experiments

import (
	"strings"
	"testing"

	"blinkradar/internal/core"
	"blinkradar/internal/scenario"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 0.9, 0.7, 1.0, 0.8})
	if s.N != 5 || s.Min != 0.5 || s.Max != 1.0 || s.Median != 0.8 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean < 0.77 || s.Mean > 0.79 {
		t.Fatalf("mean %g", s.Mean)
	}
	if empty := Summarize(nil); empty.N != 0 {
		t.Fatal("empty summary must be zero")
	}
	if !strings.Contains(s.String(), "median=0.800") {
		t.Fatalf("summary string %q", s.String())
	}
}

func TestTableFormatting(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"x", "1"}, {"yy", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestTable1Contrast(t *testing.T) {
	r, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Morning) != 8 || len(r.Night) != 8 {
		t.Fatalf("participants %d/%d", len(r.Morning), len(r.Night))
	}
	var morning, night int
	for i := range r.Morning {
		morning += r.Morning[i]
		night += r.Night[i]
	}
	if night <= morning {
		t.Fatalf("drowsy total %d not above awake %d (Table I contrast)", night, morning)
	}
	if !strings.Contains(r.String(), "10:00") {
		t.Fatal("report must carry the table rows")
	}
}

func TestFig5PulseCharacteristics(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if r.SpectrumPeakHz < 7.0e9 || r.SpectrumPeakHz > 7.6e9 {
		t.Fatalf("spectrum peak %g, want ~7.3 GHz", r.SpectrumPeakHz)
	}
	if r.BandwidthHz < 1.0e9 || r.BandwidthHz > 2.0e9 {
		t.Fatalf("bandwidth %g, want ~1.4 GHz", r.BandwidthHz)
	}
}

func TestFig6FindsFaceAndClutter(t *testing.T) {
	r, err := Fig6(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Peaks) < 2 {
		t.Fatalf("only %d profile peaks", len(r.Peaks))
	}
}

func TestFig7CascadeGains(t *testing.T) {
	r, err := Fig7(7)
	if err != nil {
		t.Fatal(err)
	}
	if r.SNRAfterDB-r.SNRBeforeDB < 6 {
		t.Fatalf("cascade gain %.1f dB, want > 6", r.SNRAfterDB-r.SNRBeforeDB)
	}
}

func TestFig8Suppression(t *testing.T) {
	r, err := Fig8(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.SuppressionDB() < 20 {
		t.Fatalf("clutter suppression %.1f dB, want > 20", r.SuppressionDB())
	}
	if r.DynamicPowerAfter < r.DynamicPowerBefore*0.5 {
		t.Fatalf("motion signal lost: %g -> %g", r.DynamicPowerBefore, r.DynamicPowerAfter)
	}
}

func TestFig9BlinkSignature(t *testing.T) {
	r, err := Fig9(9)
	if err != nil {
		t.Fatal(err)
	}
	// Closing and opening must move the amplitude in opposite
	// directions (Fig. 9's signature).
	if r.ClosingAmpDelta*r.OpeningAmpDelta >= 0 {
		t.Fatalf("closing %+.3f and opening %+.3f not opposite", r.ClosingAmpDelta, r.OpeningAmpDelta)
	}
	if r.PhaseDeltaRad == 0 {
		t.Fatal("no phase signature")
	}
	if len(r.Trajectory) == 0 {
		t.Fatal("no trajectory exported")
	}
}

func TestFig10Selection(t *testing.T) {
	r, err := Fig10(10)
	if err != nil {
		t.Fatal(err)
	}
	if !r.InFaceRegion {
		t.Fatalf("selected bin %d outside the face region (eye %d)", r.SelectedBin, r.TrueEyeBin)
	}
	if r.EyeVariance < 10*r.BestNoiseVariance {
		t.Fatalf("embedded interference variance %g vs noise %g: contrast too weak", r.EyeVariance, r.BestNoiseVariance)
	}
}

func TestFig11Trace(t *testing.T) {
	r, err := Fig11(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Distance) != len(r.Threshold) {
		t.Fatal("trace lengths differ")
	}
	if len(r.Detections) == 0 {
		t.Fatal("no detections in the showcase trace")
	}
}

func TestSessionSpecDeterminism(t *testing.T) {
	a := SessionSpec(3, 1, scenario.Driving, nil)
	b := SessionSpec(3, 1, scenario.Driving, nil)
	if a.Seed != b.Seed || a.Subject.ID != b.Subject.ID {
		t.Fatal("session specs must be deterministic")
	}
	c := SessionSpec(3, 2, scenario.Driving, nil)
	if a.Seed == c.Seed {
		t.Fatal("different sessions must differ in seed")
	}
}

func TestRunSessionScores(t *testing.T) {
	spec := SessionSpec(1, 0, scenario.Lab, func(s *scenario.Spec) { s.Duration = 60 })
	out, err := RunSession(spec, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Truth) == 0 {
		t.Fatal("no scored truth")
	}
	if out.Accuracy() < 0 || out.Accuracy() > 1 {
		t.Fatalf("accuracy %g out of range", out.Accuracy())
	}
}
