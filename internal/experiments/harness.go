// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VI) plus the feasibility figures of Sections II
// and IV, on synthetic captures from the scenario package. Each
// experiment is a pure function of its seed, returns a typed result,
// and renders the same rows/series the paper reports. cmd/experiments
// runs them all and writes EXPERIMENTS.md-ready output; bench_test.go
// exposes one benchmark per experiment.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"blinkradar/internal/core"
	"blinkradar/internal/eval"
	"blinkradar/internal/physio"
	"blinkradar/internal/scenario"
	"blinkradar/internal/vehicle"
)

// SessionsPerSubject is the default number of captures per subject in
// the accuracy experiments.
const SessionsPerSubject = 2

// DefaultSubjects is the participant count of the paper (Section VI-A).
const DefaultSubjects = 12

// SessionDuration is the default capture length in seconds.
const SessionDuration = 120

// Session is one evaluated capture.
type Session struct {
	// Spec is the generating scenario.
	Spec scenario.Spec
	// Match is the detection-vs-truth outcome (warm-up excluded).
	Match eval.MatchResult
	// Events are the detected blinks.
	Events []core.BlinkEvent
	// Truth is the scored ground truth (warm-up excluded).
	Truth []physio.Blink
	// Restarts and BinSwitches are pipeline diagnostics.
	Restarts, BinSwitches int
}

// Accuracy is the session's blink-detection accuracy.
func (s Session) Accuracy() float64 { return s.Match.Accuracy() }

// RunSession generates the capture and runs the full pipeline on it.
func RunSession(spec scenario.Spec, cfg core.Config) (Session, error) {
	cap, err := scenario.Generate(spec)
	if err != nil {
		return Session{}, fmt.Errorf("experiments: generate: %w", err)
	}
	events, det, err := core.Detect(cfg, cap.Frames)
	if err != nil {
		return Session{}, fmt.Errorf("experiments: detect: %w", err)
	}
	truth := eval.TrimWarmup(cap.Truth, eval.DefaultWarmup)
	return Session{
		Spec:        spec,
		Match:       eval.Match(truth, events, 0),
		Events:      events,
		Truth:       truth,
		Restarts:    det.Restarts(),
		BinSwitches: det.BinSwitches(),
	}, nil
}

// SessionSpec builds the spec for one (subject, session) pair with the
// given environment defaults. mutate customises the spec before
// generation (nil for none).
func SessionSpec(subjectID int, session int, env scenario.Environment, mutate func(*scenario.Spec)) scenario.Spec {
	spec := scenario.DefaultSpec()
	spec.Subject = physio.NewSubject(subjectID)
	spec.Environment = env
	if env == scenario.Driving {
		spec.Road = vehicle.SmoothHighway
	}
	spec.Duration = SessionDuration
	spec.Seed = int64(subjectID)*1_000_003 + int64(session)*7_723 + 11
	if mutate != nil {
		mutate(&spec)
	}
	return spec
}

// RunPopulation evaluates all subjects x sessions under the mutation
// and returns the sessions in (subject, session) order. Sessions are
// independent and deterministic, so they run on all available cores.
func RunPopulation(cfg core.Config, subjects, sessions int, env scenario.Environment, mutate func(*scenario.Spec)) ([]Session, error) {
	type job struct{ idx, subject, session int }
	jobs := make([]job, 0, subjects*sessions)
	for id := 1; id <= subjects; id++ {
		for s := 0; s < sessions; s++ {
			jobs = append(jobs, job{idx: len(jobs), subject: id, session: s})
		}
	}
	out := make([]Session, len(jobs))
	errs := make([]error, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	next := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				sess, err := RunSession(SessionSpec(j.subject, j.session, env, mutate), cfg)
				out[j.idx] = sess
				errs[j.idx] = err
			}
		}()
	}
	for _, j := range jobs {
		next <- j
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Accuracies extracts the per-session accuracy values.
func Accuracies(sessions []Session) []float64 {
	out := make([]float64, len(sessions))
	for i, s := range sessions {
		out[i] = s.Accuracy()
	}
	return out
}

// Summary condenses a sample of accuracies.
type Summary struct {
	// N is the sample size.
	N int
	// Min, Median, P90 and Max describe the distribution.
	Min, Median, P90, Max float64
	// Mean is the arithmetic mean.
	Mean float64
}

// Summarize computes the distribution summary of values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	n := len(s)
	return Summary{
		N:      n,
		Min:    s[0],
		Median: s[n/2],
		P90:    s[n*9/10],
		Max:    s[n-1],
		Mean:   sum / float64(n),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f median=%.3f p90=%.3f max=%.3f mean=%.3f",
		s.N, s.Min, s.Median, s.P90, s.Max, s.Mean)
}

// Table renders rows of label/value pairs with aligned columns, for the
// experiment reports.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// fmtPct renders a fraction as a percentage with one decimal.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
