package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"blinkradar/internal/report"

	"blinkradar/internal/core"
	"blinkradar/internal/eval"
	"blinkradar/internal/physio"
	"blinkradar/internal/scenario"
)

// parallelSubjects evaluates fn for subjects 1..n concurrently and
// returns the results in subject order.
func parallelSubjects(n int, fn func(id int) (float64, error)) ([]float64, error) {
	out := make([]float64, n)
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for id := 1; id <= n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[id-1], errs[id-1] = fn(id)
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// drowsySession runs one long capture in the given state, slices the
// detected blinks into windows of windowSec, and splits them into
// calibration and evaluation halves. The split is within-session, as in
// the paper's deployment: each participant's training data is recorded
// in the same installation the system then monitors.
func drowsySession(cfg core.Config, subjectID int, state physio.State, windowSec float64) (train, test []core.WindowFeatures, err error) {
	// Long enough for a warm-up window plus at least six usable
	// windows at the requested length.
	durationSec := 12 * 60.0
	if need := windowSec*7 + 60; need > durationSec {
		durationSec = need
	}
	spec := SessionSpec(subjectID, 0, scenario.Driving, func(s *scenario.Spec) {
		s.State = state
		s.Duration = durationSec
	})
	// Distinguish state in the seed so awake/drowsy captures differ.
	if state == physio.Drowsy {
		spec.Seed ^= 0x5a5a5a
	}
	out, err := RunSession(spec, cfg)
	if err != nil {
		return nil, nil, err
	}
	windows, err := core.ExtractWindows(out.Events, durationSec, windowSec)
	if err != nil {
		return nil, nil, err
	}
	if len(windows) < 4 {
		return nil, nil, fmt.Errorf("experiments: only %d windows for subject %d", len(windows), subjectID)
	}
	// Drop the warm-up window, calibrate on the next chunk, evaluate on
	// the rest.
	usable := windows[1:]
	split := len(usable) / 2
	if split < 2 {
		split = 2
	}
	return usable[:split], usable[split:], nil
}

// SubjectDrowsyAccuracy trains the per-driver model on the calibration
// halves of one awake and one drowsy recording and classifies the
// held-out windows, returning the fraction classified correctly (paper
// Section IV-F / V protocol: per-participant awake and drowsy training
// sets).
func SubjectDrowsyAccuracy(cfg core.Config, subjectID int, windowSec float64) (float64, error) {
	trainAwake, testAwake, err := drowsySession(cfg, subjectID, physio.Awake, windowSec)
	if err != nil {
		return 0, err
	}
	trainDrowsy, testDrowsy, err := drowsySession(cfg, subjectID, physio.Drowsy, windowSec)
	if err != nil {
		return 0, err
	}
	var model core.DrowsinessModel
	if err := model.Train(trainAwake, trainDrowsy); err != nil {
		return 0, err
	}
	correct, total := 0, 0
	for _, w := range testAwake {
		drowsy, _, err := model.Classify(w)
		if err != nil {
			return 0, err
		}
		if !drowsy {
			correct++
		}
		total++
	}
	for _, w := range testDrowsy {
		drowsy, _, err := model.Classify(w)
		if err != nil {
			return 0, err
		}
		if drowsy {
			correct++
		}
		total++
	}
	if total == 0 {
		return 0, fmt.Errorf("experiments: no test windows for subject %d", subjectID)
	}
	return float64(correct) / float64(total), nil
}

// Fig13bResult is the drowsy-driving detection accuracy CDF (paper
// median 92.2%).
type Fig13bResult struct {
	// Accuracies holds one value per subject.
	Accuracies []float64
	// Summary condenses the distribution.
	Summary Summary
	// CDFX and CDFY are the empirical CDF points.
	CDFX, CDFY []float64
}

// Fig13b evaluates per-subject drowsiness classification with the
// paper's one-minute window.
func Fig13b(cfg core.Config) (Fig13bResult, error) {
	accs, err := parallelSubjects(DefaultSubjects, func(id int) (float64, error) {
		return SubjectDrowsyAccuracy(cfg, id, 60)
	})
	if err != nil {
		return Fig13bResult{}, err
	}
	cdf, err := eval.NewCDF(accs)
	if err != nil {
		return Fig13bResult{}, err
	}
	xs, ys := cdf.Points()
	return Fig13bResult{
		Accuracies: accs,
		Summary:    Summarize(accs),
		CDFX:       xs,
		CDFY:       ys,
	}, nil
}

// String reports the distribution against the paper's headline,
// including the rendered CDF curve.
func (r Fig13bResult) String() string {
	return fmt.Sprintf("Fig 13b: drowsy-driving detection accuracy CDF: %s (paper median 92.2%%)\n", r.Summary) +
		report.CDFChart("", r.Accuracies, 56, 10)
}

// Fig16dResult sweeps the drowsiness detection window length.
type Fig16dResult struct {
	// WindowsMin are the evaluated window lengths in minutes.
	WindowsMin []float64
	// Accuracy holds the mean subject accuracy per window length.
	Accuracy []float64
}

// Fig16d evaluates window lengths of 1-4 minutes (paper: 1-2 min best;
// longer windows delay detection and shrink the sample count).
func Fig16d(cfg core.Config) (Fig16dResult, error) {
	windows := []float64{1, 1.5, 2, 3, 4}
	res := Fig16dResult{WindowsMin: windows}
	for _, w := range windows {
		w := w
		// A smaller panel keeps the sweep tractable; window length is a
		// per-driver-model property, so panel size only adds variance.
		accs, err := parallelSubjects(6, func(id int) (float64, error) {
			return SubjectDrowsyAccuracy(cfg, id, w*60)
		})
		if err != nil {
			return Fig16dResult{}, err
		}
		var sum float64
		for _, a := range accs {
			sum += a
		}
		res.Accuracy = append(res.Accuracy, sum/float64(len(accs)))
	}
	return res, nil
}

// String renders the window sweep.
func (r Fig16dResult) String() string {
	rows := make([][]string, 0, len(r.WindowsMin))
	for i := range r.WindowsMin {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f min", r.WindowsMin[i]),
			fmtPct(r.Accuracy[i]),
		})
	}
	return "Fig 16d: drowsiness detection window (paper: 1-2 min best)\n" +
		Table([]string{"window", "mean acc"}, rows)
}

// Table1DetectedResult verifies the Table I contrast end-to-end: blink
// rates measured by the radar pipeline (not ground truth) for awake and
// drowsy states.
type Table1DetectedResult struct {
	// AwakeRates and DrowsyRates are detected blinks/min per subject.
	AwakeRates, DrowsyRates []float64
}

// Table1Detected measures the detected blink-rate separation that the
// drowsiness classifier relies on.
func Table1Detected(cfg core.Config) (Table1DetectedResult, error) {
	var res Table1DetectedResult
	const dur = 120
	for id := 1; id <= 8; id++ {
		for _, state := range []physio.State{physio.Awake, physio.Drowsy} {
			state := state
			spec := SessionSpec(id, 5, scenario.Driving, func(s *scenario.Spec) {
				s.State = state
				s.Duration = dur
			})
			out, err := RunSession(spec, cfg)
			if err != nil {
				return res, err
			}
			rate := float64(len(out.Events)) / dur * 60
			if state == physio.Awake {
				res.AwakeRates = append(res.AwakeRates, rate)
			} else {
				res.DrowsyRates = append(res.DrowsyRates, rate)
			}
		}
	}
	return res, nil
}

// String renders both rows.
func (r Table1DetectedResult) String() string {
	header := []string{"participant"}
	rowA := []string{"awake det/min"}
	rowD := []string{"drowsy det/min"}
	for i := range r.AwakeRates {
		header = append(header, fmt.Sprintf("%d", i+1))
		rowA = append(rowA, fmt.Sprintf("%.0f", r.AwakeRates[i]))
		rowD = append(rowD, fmt.Sprintf("%.0f", r.DrowsyRates[i]))
	}
	return Table(header, [][]string{rowA, rowD})
}
