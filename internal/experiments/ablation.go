package experiments

import (
	"fmt"

	"blinkradar/internal/baseline"
	"blinkradar/internal/core"
	"blinkradar/internal/eval"
	"blinkradar/internal/scenario"
)

// AblationResult compares the full pipeline against a weakened variant
// or baseline.
type AblationResult struct {
	// Name identifies the ablation.
	Name string
	// Full and Variant summarise per-session accuracy for the complete
	// pipeline and the ablated one.
	Full, Variant Summary
	// Description states what was removed or replaced.
	Description string
}

// String renders the comparison.
func (r AblationResult) String() string {
	return fmt.Sprintf("%s: full median %s vs variant median %s (%s)",
		r.Name, fmtPct(r.Full.Median), fmtPct(r.Variant.Median), r.Description)
}

// ablationSubjects trades population size for speed in ablations.
const ablationSubjects = 6

// runBaselineVariant evaluates a baseline detector over the population.
func runBaselineVariant(coreCfg core.Config, detect func(*scenario.Capture) ([]core.BlinkEvent, error)) ([]float64, error) {
	var accs []float64
	for id := 1; id <= ablationSubjects; id++ {
		for sess := 0; sess < SessionsPerSubject; sess++ {
			spec := SessionSpec(id, sess, scenario.Lab, nil)
			cap, err := scenario.Generate(spec)
			if err != nil {
				return nil, err
			}
			events, err := detect(cap)
			if err != nil {
				return nil, err
			}
			truth := eval.TrimWarmup(cap.Truth, eval.DefaultWarmup)
			accs = append(accs, eval.Match(truth, events, 0).Accuracy())
		}
	}
	return accs, nil
}

// runFull evaluates the complete pipeline over the same population.
func runFull(cfg core.Config, opts ...core.Option) ([]float64, error) {
	var accs []float64
	for id := 1; id <= ablationSubjects; id++ {
		for sess := 0; sess < SessionsPerSubject; sess++ {
			spec := SessionSpec(id, sess, scenario.Lab, nil)
			cap, err := scenario.Generate(spec)
			if err != nil {
				return nil, err
			}
			events, _, err := core.Detect(cfg, cap.Frames, opts...)
			if err != nil {
				return nil, err
			}
			truth := eval.TrimWarmup(cap.Truth, eval.DefaultWarmup)
			accs = append(accs, eval.Match(truth, events, 0).Accuracy())
		}
	}
	return accs, nil
}

// AblationBinSelection compares variance-based eye-bin identification
// against the naive amplitude-peak selection (the paper's central
// argument for exploiting embedded interference).
func AblationBinSelection(cfg core.Config) (AblationResult, error) {
	full, err := runFull(cfg)
	if err != nil {
		return AblationResult{}, err
	}
	bcfg := baseline.DefaultConfig() // naive amplitude-peak bin
	variant, err := runBaselineVariant(cfg, func(cap *scenario.Capture) ([]core.BlinkEvent, error) {
		return baseline.DetectAmplitude(bcfg, cfg, cap.Frames)
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:        "Ablation: bin selection",
		Full:        Summarize(full),
		Variant:     Summarize(variant),
		Description: "variance/arc selection replaced by strongest-amplitude bin (locks onto seat/steering wheel)",
	}, nil
}

// AblationWaveform compares the I/Q distance-from-viewing-position
// waveform against amplitude-only and phase-only detection on the
// correctly selected bin.
func AblationWaveform(cfg core.Config) (ablations []AblationResult, err error) {
	full, err := runFull(cfg)
	if err != nil {
		return nil, err
	}
	fullSummary := Summarize(full)
	bcfg := baseline.DefaultConfig()
	bcfg.UseVarianceBinSelect = true

	amp, err := runBaselineVariant(cfg, func(cap *scenario.Capture) ([]core.BlinkEvent, error) {
		return baseline.DetectAmplitude(bcfg, cfg, cap.Frames)
	})
	if err != nil {
		return nil, err
	}
	ablations = append(ablations, AblationResult{
		Name:        "Ablation: amplitude-only waveform",
		Full:        fullSummary,
		Variant:     Summarize(amp),
		Description: "|z| thresholding on the selected bin, discarding phase",
	})

	ph, err := runBaselineVariant(cfg, func(cap *scenario.Capture) ([]core.BlinkEvent, error) {
		return baseline.DetectPhase(bcfg, cfg, cap.Frames)
	})
	if err != nil {
		return nil, err
	}
	ablations = append(ablations, AblationResult{
		Name:        "Ablation: phase-only waveform",
		Full:        fullSummary,
		Variant:     Summarize(ph),
		Description: "unwrapped-phase thresholding, exposed to all phase interference",
	})
	return ablations, nil
}

// AblationAdaptiveUpdate disables the adaptive viewing-position update
// (periodic refits, bin reselection and motion restarts).
func AblationAdaptiveUpdate(cfg core.Config) (AblationResult, error) {
	full, err := runFull(cfg)
	if err != nil {
		return AblationResult{}, err
	}
	variant, err := runFull(cfg, core.WithAdaptiveUpdate(false))
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:        "Ablation: adaptive update",
		Full:        Summarize(full),
		Variant:     Summarize(variant),
		Description: "viewing position frozen after the first fit; no reselection or restart",
	}, nil
}

// AblationThreshold sweeps the LEVD multiplier around the paper's five
// sigma.
func AblationThreshold(cfg core.Config) ([]AblationResult, error) {
	full, err := runFull(cfg)
	if err != nil {
		return nil, err
	}
	fullSummary := Summarize(full)
	var out []AblationResult
	for _, k := range []float64{2.5, 10} {
		variant, err := runFull(cfg, core.WithThresholdK(k))
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Name:        fmt.Sprintf("Ablation: threshold K=%.1f", k),
			Full:        fullSummary,
			Variant:     Summarize(variant),
			Description: "LEVD multiplier moved off the paper's 5x no-blink sigma",
		})
	}
	return out, nil
}
