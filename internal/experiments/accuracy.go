package experiments

import (
	"fmt"
	"strings"

	"blinkradar/internal/report"

	"blinkradar/internal/core"
	"blinkradar/internal/eval"
	"blinkradar/internal/physio"
	"blinkradar/internal/scenario"
	"blinkradar/internal/vehicle"
)

// Fig13aResult is the eye-blink detection accuracy CDF (paper median
// 95.5%).
type Fig13aResult struct {
	// Accuracies holds one value per session.
	Accuracies []float64
	// Summary condenses the distribution.
	Summary Summary
	// CDFX and CDFY are the empirical CDF points.
	CDFX, CDFY []float64
}

// Fig13a evaluates the full population over lab and driving sessions.
func Fig13a(cfg core.Config) (Fig13aResult, error) {
	var sessions []Session
	for _, env := range []scenario.Environment{scenario.Lab, scenario.Driving} {
		part, err := RunPopulation(cfg, DefaultSubjects, SessionsPerSubject, env, nil)
		if err != nil {
			return Fig13aResult{}, err
		}
		sessions = append(sessions, part...)
	}
	acc := Accuracies(sessions)
	cdf, err := eval.NewCDF(acc)
	if err != nil {
		return Fig13aResult{}, err
	}
	xs, ys := cdf.Points()
	return Fig13aResult{
		Accuracies: acc,
		Summary:    Summarize(acc),
		CDFX:       xs,
		CDFY:       ys,
	}, nil
}

// String reports the distribution against the paper's headline,
// including the rendered CDF curve.
func (r Fig13aResult) String() string {
	return fmt.Sprintf("Fig 13a: eye-blink detection accuracy CDF: %s (paper median 95.5%%)\n", r.Summary) +
		report.CDFChart("", r.Accuracies, 56, 10)
}

// SweepPoint is one x-axis point of a parameter-sweep experiment.
type SweepPoint struct {
	// Label names the sweep value ("0.4 m", "30 deg", ...).
	Label string
	// Summary condenses the per-session accuracies at this value.
	Summary Summary
}

// SweepResult is a labelled accuracy sweep.
type SweepResult struct {
	// Name identifies the experiment ("Fig 15b: distance", ...).
	Name string
	// Points are the sweep values in axis order.
	Points []SweepPoint
	// PaperShape describes the expected qualitative behaviour.
	PaperShape string
}

// String renders the sweep as a table plus a curve over the sweep
// positions.
func (r SweepResult) String() string {
	rows := make([][]string, 0, len(r.Points))
	xs := make([]float64, 0, len(r.Points))
	ys := make([]float64, 0, len(r.Points))
	for i, p := range r.Points {
		rows = append(rows, []string{p.Label, fmtPct(p.Summary.Median), fmtPct(p.Summary.Mean), fmt.Sprintf("%d", p.Summary.N)})
		xs = append(xs, float64(i))
		ys = append(ys, p.Summary.Median)
	}
	return r.Name + " (" + r.PaperShape + ")\n" +
		Table([]string{"value", "median acc", "mean acc", "n"}, rows) +
		report.SweepChart("", "sweep position", xs, ys, 48, 8)
}

// runSweep evaluates the population at each mutation and labels the
// results.
func runSweep(cfg core.Config, name, shape string, env scenario.Environment, labels []string, mutations []func(*scenario.Spec)) (SweepResult, error) {
	if len(labels) != len(mutations) {
		return SweepResult{}, fmt.Errorf("experiments: %d labels for %d mutations", len(labels), len(mutations))
	}
	res := SweepResult{Name: name, PaperShape: shape}
	for i, mutate := range mutations {
		sessions, err := RunPopulation(cfg, DefaultSubjects, SessionsPerSubject, env, mutate)
		if err != nil {
			return SweepResult{}, err
		}
		res.Points = append(res.Points, SweepPoint{
			Label:   labels[i],
			Summary: Summarize(Accuracies(sessions)),
		})
	}
	return res, nil
}

// Fig15b sweeps the radar-to-eye distance over 0.2/0.4/0.8 m.
// Paper: >95% at 0.4 m, ~91% at 0.8 m.
func Fig15b(cfg core.Config) (SweepResult, error) {
	distances := []float64{0.2, 0.4, 0.8}
	labels := make([]string, len(distances))
	muts := make([]func(*scenario.Spec), len(distances))
	for i, d := range distances {
		d := d
		labels[i] = fmt.Sprintf("%.1f m", d)
		muts[i] = func(s *scenario.Spec) { s.EyeDistance = d }
	}
	return runSweep(cfg, "Fig 15b: distance", "accuracy degrades with range; keep within 0.4 m", scenario.Lab, labels, muts)
}

// Fig15c sweeps elevation 0-60 degrees. Paper: >=95% within 30 deg,
// degrading beyond.
func Fig15c(cfg core.Config) (SweepResult, error) {
	angles := []float64{0, 15, 30, 45, 60}
	labels := make([]string, len(angles))
	muts := make([]func(*scenario.Spec), len(angles))
	for i, a := range angles {
		a := a
		labels[i] = fmt.Sprintf("%.0f deg", a)
		muts[i] = func(s *scenario.Spec) { s.ElevationDeg = a }
	}
	return runSweep(cfg, "Fig 15c: elevation", "tolerant to ~30 deg, drops beyond", scenario.Lab, labels, muts)
}

// Fig15d sweeps azimuth 0-60 degrees. Paper: >90% within 15 deg,
// significant drop past 30 deg.
func Fig15d(cfg core.Config) (SweepResult, error) {
	angles := []float64{0, 15, 30, 45, 60}
	labels := make([]string, len(angles))
	muts := make([]func(*scenario.Spec), len(angles))
	for i, a := range angles {
		a := a
		labels[i] = fmt.Sprintf("%.0f deg", a)
		muts[i] = func(s *scenario.Spec) { s.AzimuthDeg = a }
	}
	return runSweep(cfg, "Fig 15d: azimuth", ">90% within 15 deg, steep drop past 30 deg", scenario.Lab, labels, muts)
}

// Fig16a compares eyewear conditions. Paper: myopia 94%, sunglasses 93%.
func Fig16a(cfg core.Config) (SweepResult, error) {
	glasses := []physio.Glasses{physio.NoGlasses, physio.MyopiaGlasses, physio.Sunglasses}
	labels := make([]string, len(glasses))
	muts := make([]func(*scenario.Spec), len(glasses))
	for i, g := range glasses {
		g := g
		labels[i] = g.String()
		muts[i] = func(s *scenario.Spec) { s.Subject.Glasses = g }
	}
	return runSweep(cfg, "Fig 16a: glasses", "slight degradation with lenses, sunglasses worst", scenario.Lab, labels, muts)
}

// Fig16b compares road types. Paper: smooth best; bumps and manoeuvres
// raise the error.
func Fig16b(cfg core.Config) (SweepResult, error) {
	roads := vehicle.AllRoadTypes()
	labels := make([]string, len(roads))
	muts := make([]func(*scenario.Spec), len(roads))
	for i, r := range roads {
		r := r
		labels[i] = r.String()
		muts[i] = func(s *scenario.Spec) { s.Road = r }
	}
	return runSweep(cfg, "Fig 16b: road types", "smooth roads best; vibration and manoeuvres degrade", scenario.Driving, labels, muts)
}

// Fig16cResult groups accuracy by eye size.
type Fig16cResult struct {
	// Rows pair the eye dimensions with the achieved accuracy, sorted
	// by ascending eye area (S1..S6 as in the paper).
	Rows []Fig16cRow
}

// Fig16cRow is one subject-size group.
type Fig16cRow struct {
	// Label is S1..S6.
	Label string
	// EyeWidthCm and EyeHeightCm give the group's eye dimensions.
	EyeWidthCm, EyeHeightCm float64
	// Summary condenses the group's session accuracies.
	Summary Summary
}

// Fig16c evaluates six synthetic subjects spanning the paper's eye-size
// range (smallest 3.5 x 0.8 cm) and reports accuracy per size.
func Fig16c(cfg core.Config) (Fig16cResult, error) {
	sizes := []struct{ w, h float64 }{
		{0.035, 0.008}, {0.038, 0.009}, {0.041, 0.010},
		{0.044, 0.011}, {0.047, 0.012}, {0.050, 0.014},
	}
	var res Fig16cResult
	for i, sz := range sizes {
		sz := sz
		var accs []float64
		for id := 1; id <= 4; id++ {
			for sess := 0; sess < SessionsPerSubject; sess++ {
				spec := SessionSpec(id*6+i, sess, scenario.Lab, func(s *scenario.Spec) {
					s.Subject.EyeWidthM = sz.w
					s.Subject.EyeHeightM = sz.h
				})
				out, err := RunSession(spec, cfg)
				if err != nil {
					return Fig16cResult{}, err
				}
				accs = append(accs, out.Accuracy())
			}
		}
		res.Rows = append(res.Rows, Fig16cRow{
			Label:       fmt.Sprintf("S%d", i+1),
			EyeWidthCm:  sz.w * 100,
			EyeHeightCm: sz.h * 100,
			Summary:     Summarize(accs),
		})
	}
	return res, nil
}

// String renders the size table.
func (r Fig16cResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label,
			fmt.Sprintf("%.1fx%.1f cm", row.EyeWidthCm, row.EyeHeightCm),
			fmtPct(row.Summary.Median),
			fmtPct(row.Summary.Mean),
		})
	}
	return "Fig 16c: eye size (accuracy grows with eye area; smallest stays usable)\n" +
		Table([]string{"group", "eye size", "median acc", "mean acc"}, rows)
}

// Fig15aResult is the consecutive-miss statistic of Fig. 15a.
type Fig15aResult struct {
	// RunRates[k] is the fraction of blinks lost in miss-runs of
	// exactly length k+1 (paper: 4.9% / 2.1% / 0.2%).
	RunRates []float64
	// TotalBlinks is the pooled ground-truth count.
	TotalBlinks int
}

// Fig15a pools miss runs over the whole population under default
// conditions.
func Fig15a(cfg core.Config) (Fig15aResult, error) {
	var stats eval.MissRunStats
	for _, env := range []scenario.Environment{scenario.Lab, scenario.Driving} {
		sessions, err := RunPopulation(cfg, DefaultSubjects, SessionsPerSubject, env, nil)
		if err != nil {
			return Fig15aResult{}, err
		}
		for _, s := range sessions {
			eval.CountRuns(&stats, s.Match.Missed)
		}
	}
	rates := make([]float64, 3)
	for i := range rates {
		rates[i] = stats.RateOfRunLength(i + 1)
	}
	// Include any longer runs in the report tail.
	for n := 4; n <= len(stats.Runs); n++ {
		rates = append(rates, stats.RateOfRunLength(n))
	}
	return Fig15aResult{RunRates: rates, TotalBlinks: stats.Total}, nil
}

// String renders the run-length histogram.
func (r Fig15aResult) String() string {
	parts := make([]string, len(r.RunRates))
	for i, v := range r.RunRates {
		parts[i] = fmt.Sprintf("%dx: %s", i+1, fmtPct(v))
	}
	return fmt.Sprintf("Fig 15a: consecutive missed detections over %d blinks: %s (paper: 4.9%% / 2.1%% / 0.2%%)",
		r.TotalBlinks, strings.Join(parts, ", "))
}
