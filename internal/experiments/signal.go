package experiments

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"

	"blinkradar/internal/core"
	"blinkradar/internal/dsp"
	"blinkradar/internal/iq"
	"blinkradar/internal/physio"
	"blinkradar/internal/report"
	"blinkradar/internal/rf"
	"blinkradar/internal/scenario"
)

// Table1Result reproduces Table I: per-participant one-minute blink
// counts at 10:00 (rested) and 22:00 (drowsy).
type Table1Result struct {
	// Morning and Night hold one blink count per participant.
	Morning, Night []int
}

// Table1 samples the blink process for eight participants in both
// states, as in the paper's feasibility study (Section II-C).
func Table1(seed int64) (Table1Result, error) {
	const participants = 8
	var res Table1Result
	for id := 1; id <= participants; id++ {
		sub := physio.NewSubject(id)
		rng := rand.New(rand.NewSource(seed + int64(id)))
		morning, err := physio.GenerateBlinks(sub.Stats(physio.Awake), 60, rng)
		if err != nil {
			return res, err
		}
		night, err := physio.GenerateBlinks(sub.Stats(physio.Drowsy), 60, rng)
		if err != nil {
			return res, err
		}
		res.Morning = append(res.Morning, len(morning))
		res.Night = append(res.Night, len(night))
	}
	return res, nil
}

// String renders the two table rows.
func (r Table1Result) String() string {
	header := []string{"participant"}
	rowM := []string{"10:00 (awake)"}
	rowN := []string{"22:00 (drowsy)"}
	for i := range r.Morning {
		header = append(header, fmt.Sprintf("%d", i+1))
		rowM = append(rowM, fmt.Sprintf("%d", r.Morning[i]))
		rowN = append(rowN, fmt.Sprintf("%d", r.Night[i]))
	}
	return Table([]string{"Table I: blinks per minute"}, nil) +
		Table(header, [][]string{rowM, rowN})
}

// Fig5Result describes the transmitted pulse in time and frequency.
type Fig5Result struct {
	// Samples is the sample count of the rendered waveform.
	Samples int
	// PeakAmplitude is the waveform peak.
	PeakAmplitude float64
	// SpectrumPeakHz is the measured spectral peak (should sit at the
	// 7.3 GHz carrier).
	SpectrumPeakHz float64
	// BandwidthHz is the measured -10 dB bandwidth (nominal 1.4 GHz).
	BandwidthHz float64
}

// Fig5 renders Eq. 1-3's pulse at 64 GS/s and measures its spectrum.
func Fig5() (Fig5Result, error) {
	pulse := rf.NewPulse()
	const fs = 64e9
	w, err := pulse.Waveform(fs)
	if err != nil {
		return Fig5Result{}, err
	}
	var peak float64
	for _, v := range w {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	// Zero-pad for frequency resolution.
	padded := make([]float64, dsp.NextPow2(8*len(w)))
	copy(padded, w)
	mag := dsp.MagnitudeSpectrum(padded)
	freqs := dsp.FFTFreq(len(padded), fs)
	half := len(padded) / 2
	peakIdx := dsp.ArgMax(mag[:half])
	peakMag := mag[peakIdx]
	// -10 dB points around the peak.
	thr := peakMag * math.Pow(10, -10.0/20)
	lo, hi := peakIdx, peakIdx
	for lo > 0 && mag[lo] >= thr {
		lo--
	}
	for hi < half-1 && mag[hi] >= thr {
		hi++
	}
	return Fig5Result{
		Samples:        len(w),
		PeakAmplitude:  peak,
		SpectrumPeakHz: freqs[peakIdx],
		BandwidthHz:    freqs[hi] - freqs[lo],
	}, nil
}

// String renders the measured pulse characteristics.
func (r Fig5Result) String() string {
	return fmt.Sprintf("Fig 5: pulse %d samples, peak %.2f; spectrum peak %.2f GHz (nominal 7.30), -10 dB bandwidth %.2f GHz (nominal 1.40)",
		r.Samples, r.PeakAmplitude, r.SpectrumPeakHz/1e9, r.BandwidthHz/1e9)
}

// Fig6Result is the static range profile with its multipath peaks.
type Fig6Result struct {
	// Profile is the mean power per range bin.
	Profile []float64
	// BinSpacing is the bin spacing in metres.
	BinSpacing float64
	// Peaks are the detected profile peaks, nearest first.
	Peaks []dsp.Peak
}

// Fig6 renders a static in-cabin scene and extracts the range profile:
// the direct antenna path, the driver's face, and surrounding clutter
// should appear as distinct peaks (Fig. 6b).
func Fig6(seed int64) (Fig6Result, error) {
	spec := scenario.DefaultSpec()
	spec.Seed = seed
	spec.Duration = 10
	cap, err := scenario.Generate(spec)
	if err != nil {
		return Fig6Result{}, err
	}
	profile := cap.Frames.MeanPowerPerBin()
	_, maxPower := dsp.MinMax(profile)
	peaks := dsp.FindPeaks(profile, maxPower*0.003, 6)
	return Fig6Result{
		Profile:    profile,
		BinSpacing: cap.Frames.BinSpacing,
		Peaks:      peaks,
	}, nil
}

// String lists the dominant peaks with their ranges.
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6b: range profile peaks (bin spacing %.1f mm):\n", r.BinSpacing*1000)
	for _, p := range r.Peaks {
		fmt.Fprintf(&b, "  range %.2f m  power %.3f\n", (float64(p.Index)+0.5)*r.BinSpacing, p.Value)
	}
	return b.String()
}

// Fig7Result compares SNR before and after the noise-reduction cascade.
type Fig7Result struct {
	// SNRBeforeDB and SNRAfterDB measure the noisy and filtered
	// waveforms against the clean reference.
	SNRBeforeDB, SNRAfterDB float64
}

// Fig7Waveforms builds the clean fast-time baseband profile used by
// Fig. 7 (a few Gaussian echoes, as in the paper's received signal) and
// its noise-corrupted counterpart. Exposed so benchmarks can construct
// the waveforms once and time only the filtering cascade.
func Fig7Waveforms(seed int64) (clean, noisy []float64) {
	rng := rand.New(rand.NewSource(seed))
	const n = 2048
	clean = make([]float64, n)
	// Echoes at increasing delay with decreasing strength.
	for _, e := range []struct{ pos, width, amp float64 }{
		{300, 40, 1.0}, {700, 50, 0.55}, {1200, 60, 0.3}, {1600, 70, 0.18},
	} {
		for i := range clean {
			d := (float64(i) - e.pos) / e.width
			clean[i] += e.amp * math.Exp(-0.5*d*d)
		}
	}
	noisy = make([]float64, n)
	for i := range noisy {
		noisy[i] = clean[i] + rng.NormFloat64()*0.12
	}
	return clean, noisy
}

// Fig7 builds a clean fast-time baseband profile (a few Gaussian
// echoes, as in Fig. 7's received signal), corrupts it with noise, and
// applies the paper's cascade: order-26 Hamming FIR plus a 50-point
// smoothing filter.
func Fig7(seed int64) (Fig7Result, error) {
	clean, noisy := Fig7Waveforms(seed)
	filtered, err := core.CascadeFilter(noisy, 26, 0.04, 50)
	if err != nil {
		return Fig7Result{}, err
	}
	return Fig7Result{
		SNRBeforeDB: dsp.SNRdB(clean, noisy),
		SNRAfterDB:  dsp.SNRdB(clean, filtered),
	}, nil
}

// String reports the SNR gain.
func (r Fig7Result) String() string {
	return fmt.Sprintf("Fig 7: SNR %.1f dB -> %.1f dB after cascade (gain %.1f dB)",
		r.SNRBeforeDB, r.SNRAfterDB, r.SNRAfterDB-r.SNRBeforeDB)
}

// Fig8Result quantifies background subtraction.
type Fig8Result struct {
	// StaticPowerBefore and StaticPowerAfter are the total power in
	// clutter-dominated bins before and after subtraction.
	StaticPowerBefore, StaticPowerAfter float64
	// DynamicPowerBefore and DynamicPowerAfter are the face-bin
	// variance (the motion signal) before and after: it must survive.
	DynamicPowerBefore, DynamicPowerAfter float64
}

// SuppressionDB is the static clutter suppression achieved.
func (r Fig8Result) SuppressionDB() float64 {
	if r.StaticPowerAfter == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(r.StaticPowerBefore/r.StaticPowerAfter)
}

// Fig8 renders a cabin scene and measures per-bin static power before
// and after the loopback background filter.
func Fig8(seed int64) (Fig8Result, error) {
	spec := scenario.DefaultSpec()
	spec.Seed = seed
	spec.Duration = 30
	cap, err := scenario.Generate(spec)
	if err != nil {
		return Fig8Result{}, err
	}
	cfg := core.DefaultConfig()
	after, err := core.PreprocessMatrix(cfg, cap.Frames)
	if err != nil {
		return Fig8Result{}, err
	}
	// Static bins: direct path region; dynamic: the eye's bin.
	staticBins := []int{0, 1, 2}
	var res Fig8Result
	// Skip the priming frames in the "after" accounting.
	skip := int(cfg.BackgroundTauSec*cap.Frames.FrameRate) + 1
	for _, b := range staticBins {
		for k, frame := range cap.Frames.Data {
			p := cmplx.Abs(frame[b])
			res.StaticPowerBefore += p * p
			if k >= skip {
				q := cmplx.Abs(after.Data[k][b])
				res.StaticPowerAfter += q * q
			}
		}
	}
	res.DynamicPowerBefore = iq.Variance2D(cap.Frames.SlowTime(cap.EyeBin))
	res.DynamicPowerAfter = iq.Variance2D(after.SlowTime(cap.EyeBin)[skip:])
	return res, nil
}

// String reports suppression and signal survival.
func (r Fig8Result) String() string {
	return fmt.Sprintf("Fig 8: static clutter suppressed %.1f dB; eye-bin motion variance %.4f -> %.4f (survives)",
		r.SuppressionDB(), r.DynamicPowerBefore, r.DynamicPowerAfter)
}

// Fig9Result captures the I/Q signature of a single blink.
type Fig9Result struct {
	// ClosingAmpDelta is the amplitude change from the eye-open
	// baseline to full closure; OpeningAmpDelta the reverse.
	ClosingAmpDelta, OpeningAmpDelta float64
	// PhaseDeltaRad is the open-to-closed phase change.
	PhaseDeltaRad float64
	// Trajectory is the blink's I/Q samples at the eye bin.
	Trajectory []complex128
}

// Fig9 places one long blink in an otherwise still capture and measures
// the amplitude and phase transitions of closing versus opening
// (Section II-B / Fig. 9).
func Fig9(seed int64) (Fig9Result, error) {
	spec := scenario.DefaultSpec()
	spec.Seed = seed
	spec.Duration = 20
	cap, err := scenario.Generate(spec)
	if err != nil {
		return Fig9Result{}, err
	}
	if len(cap.Truth) == 0 {
		return Fig9Result{}, fmt.Errorf("experiments: capture has no blinks")
	}
	// Choose the blink farthest from the capture edges.
	blink := cap.Truth[0]
	bestMargin := -1.0
	for _, b := range cap.Truth {
		margin := math.Min(b.Start, spec.Duration-b.End())
		if margin > bestMargin {
			bestMargin = margin
			blink = b
		}
	}
	fps := cap.Frames.FrameRate
	z := cap.Frames.SlowTime(cap.EyeBin)
	at := func(t float64) complex128 {
		k := int(t * fps)
		if k < 0 {
			k = 0
		}
		if k >= len(z) {
			k = len(z) - 1
		}
		return z[k]
	}
	open1 := at(blink.Start - 0.2)
	closed := at(blink.Start + 0.45*blink.Duration)
	open2 := at(blink.End() + 0.2)
	lo := int((blink.Start - 0.3) * fps)
	hi := int((blink.End() + 0.3) * fps)
	if lo < 0 {
		lo = 0
	}
	if hi > len(z) {
		hi = len(z)
	}
	return Fig9Result{
		ClosingAmpDelta: cmplx.Abs(closed) - cmplx.Abs(open1),
		OpeningAmpDelta: cmplx.Abs(open2) - cmplx.Abs(closed),
		PhaseDeltaRad:   phaseDiff(closed, open1),
		Trajectory:      append([]complex128(nil), z[lo:hi]...),
	}, nil
}

// phaseDiff returns the wrapped phase difference arg(a)-arg(b).
func phaseDiff(a, b complex128) float64 {
	d := cmplx.Phase(a) - cmplx.Phase(b)
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// String reports the closing/opening signature.
func (r Fig9Result) String() string {
	return fmt.Sprintf("Fig 9: closing amp delta %+.3f, opening amp delta %+.3f (opposite), phase delta %+.2f rad",
		r.ClosingAmpDelta, r.OpeningAmpDelta, r.PhaseDeltaRad)
}

// Fig10Result validates variance-based eye-bin identification.
type Fig10Result struct {
	// SelectedBin is the pipeline's choice; TrueEyeBin the ground
	// truth.
	SelectedBin, TrueEyeBin int
	// EyeVariance and BestNoiseVariance compare the eye bin's 2-D
	// variance against the strongest pure-noise bin.
	EyeVariance, BestNoiseVariance float64
	// EyeArcExtentRad is the angular extent of the eye bin's
	// trajectory: embedded interference traces an arc even without
	// blinks.
	EyeArcExtentRad float64
	// CorrectWithinBins is |SelectedBin - TrueEyeBin|.
	CorrectWithinBins int
	// InFaceRegion reports whether the selected bin lies within the
	// face region (10 cm of the eye): without blinks every head bin
	// carries the same embedded interference, so any of them is a
	// valid observation position.
	InFaceRegion bool
}

// Fig10 renders a blink-free capture segment (embedded interference
// only) and checks that variance-based selection still finds the eye.
func Fig10(seed int64) (Fig10Result, error) {
	spec := scenario.DefaultSpec()
	spec.Seed = seed
	spec.Duration = 30
	// No blinks at all: selection must work from respiration/BCG alone.
	spec.Subject.AwakeStats.RatePerMin = 0.2
	spec.Subject.AwakeStats.LongGapProb = 0
	cap, err := scenario.Generate(spec)
	if err != nil {
		return Fig10Result{}, err
	}
	cfg := core.DefaultConfig()
	pre, err := core.PreprocessMatrix(cfg, cap.Frames)
	if err != nil {
		return Fig10Result{}, err
	}
	best, err := core.SelectBinMatrix(cfg, pre)
	if err != nil {
		return Fig10Result{}, err
	}
	skip := int(cfg.BackgroundTauSec*cap.Frames.FrameRate) + 1
	eyeSeries := pre.SlowTime(cap.EyeBin)[skip:]
	eyeVar := iq.Variance2D(eyeSeries)
	// Strongest bin far from any reflector (>1.3 m).
	noiseVar := 0.0
	firstNoise := pre.DistanceBin(1.35)
	for b := firstNoise; b < pre.NumBins(); b++ {
		if v := iq.Variance2D(pre.SlowTime(b)[skip:]); v > noiseVar {
			noiseVar = v
		}
	}
	var extent float64
	if c, err := iq.FitCirclePratt(eyeSeries); err == nil {
		extent = iq.AngularExtent(eyeSeries, c.Center)
	}
	diff := best.Bin - cap.EyeBin
	if diff < 0 {
		diff = -diff
	}
	return Fig10Result{
		SelectedBin:       best.Bin,
		TrueEyeBin:        cap.EyeBin,
		EyeVariance:       eyeVar,
		BestNoiseVariance: noiseVar,
		EyeArcExtentRad:   extent,
		CorrectWithinBins: diff,
		InFaceRegion:      float64(diff)*pre.BinSpacing <= 0.10,
	}, nil
}

// String reports the selection outcome.
func (r Fig10Result) String() string {
	return fmt.Sprintf("Fig 10: selected bin %d (true eye bin %d, off by %d, face region: %v); eye var %.4f vs best noise var %.6f (x%.0f); arc extent %.2f rad",
		r.SelectedBin, r.TrueEyeBin, r.CorrectWithinBins, r.InFaceRegion, r.EyeVariance, r.BestNoiseVariance, r.EyeVariance/math.Max(r.BestNoiseVariance, 1e-12), r.EyeArcExtentRad)
}

// Fig11Result is the real-time detection trace of Fig. 11.
type Fig11Result struct {
	// Distance is the distance-from-viewing-position waveform.
	Distance []float64
	// Threshold is the per-frame LEVD threshold.
	Threshold []float64
	// FrameRate is the trace sample rate.
	FrameRate float64
	// Detections are the detected blink times in seconds.
	Detections []float64
	// TruthTimes are the ground-truth blink times.
	TruthTimes []float64
}

// Fig11 runs the real-time detector over a short capture and exports
// the annotated waveform.
func Fig11(seed int64) (Fig11Result, error) {
	spec := scenario.DefaultSpec()
	spec.Seed = seed
	spec.Duration = 40
	cap, err := scenario.Generate(spec)
	if err != nil {
		return Fig11Result{}, err
	}
	det, err := core.NewDetector(core.DefaultConfig(), cap.Frames.NumBins(), cap.Frames.FrameRate)
	if err != nil {
		return Fig11Result{}, err
	}
	det.EnableTrace()
	var res Fig11Result
	for _, frame := range cap.Frames.Data {
		ev, ok, err := det.Feed(frame)
		if err != nil {
			return Fig11Result{}, err
		}
		if ok {
			res.Detections = append(res.Detections, ev.Time)
		}
	}
	res.Distance, res.Threshold = det.Trace()
	res.FrameRate = cap.Frames.FrameRate
	for _, b := range cap.Truth {
		res.TruthTimes = append(res.TruthTimes, b.Start)
	}
	return res, nil
}

// String summarises the trace and renders the annotated waveform.
func (r Fig11Result) String() string {
	marks := make([]int, 0, len(r.Detections))
	for _, t := range r.Detections {
		marks = append(marks, int(t*r.FrameRate))
	}
	return fmt.Sprintf("Fig 11: %.0f s trace, %d ground-truth blinks, %d detections at %v\n",
		float64(len(r.Distance))/r.FrameRate, len(r.TruthTimes), len(r.Detections), compactTimes(r.Detections)) +
		report.WaveformStrip("", r.Distance, marks, 72, 10)
}

func compactTimes(ts []float64) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%.1fs", t)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
