package report

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPlotClampsSize(t *testing.T) {
	p := NewPlot(2, 1, "tiny")
	out := p.String()
	if !strings.Contains(out, "tiny") {
		t.Fatal("title missing")
	}
	if len(strings.Split(out, "\n")) < 6 {
		t.Fatal("clamped plot too small")
	}
}

func TestPlotPointInsideRange(t *testing.T) {
	p := NewPlot(20, 5, "")
	p.SetRange(0, 10, 0, 1)
	p.Point(5, 0.5, 'X')
	if !strings.Contains(p.String(), "X") {
		t.Fatal("in-range point not rendered")
	}
	p2 := NewPlot(20, 5, "")
	p2.SetRange(0, 10, 0, 1)
	p2.Point(50, 0.5, 'X') // outside
	if strings.Contains(p2.String(), "X") {
		t.Fatal("out-of-range point rendered")
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	p := NewPlot(20, 5, "")
	p.SetRange(3, 3, 7, 7)
	p.Point(3, 7, 'X')
	if !strings.Contains(p.String(), "X") {
		t.Fatal("degenerate range must be widened, not dropped")
	}
}

func TestCDFChart(t *testing.T) {
	out := CDFChart("accuracy CDF", []float64{0.7, 0.9, 0.95, 1.0}, 40, 8)
	if !strings.Contains(out, "accuracy CDF") || !strings.Contains(out, "#") {
		t.Fatalf("CDF chart malformed:\n%s", out)
	}
	if CDFChart("empty", nil, 40, 8) != "empty: (no data)\n" {
		t.Fatal("empty CDF should degrade gracefully")
	}
	// Identical values must still render.
	if out := CDFChart("flat", []float64{0.5, 0.5, 0.5}, 40, 8); !strings.Contains(out, "#") {
		t.Fatalf("flat CDF malformed:\n%s", out)
	}
}

func TestSweepChart(t *testing.T) {
	out := SweepChart("distance", "m", []float64{0.2, 0.4, 0.8}, []float64{0.92, 0.97, 0.90}, 40, 8)
	if !strings.Contains(out, "o") || !strings.Contains(out, "accuracy") {
		t.Fatalf("sweep chart malformed:\n%s", out)
	}
	if !strings.Contains(SweepChart("bad", "m", []float64{1}, nil, 40, 8), "(no data)") {
		t.Fatal("mismatched series should degrade gracefully")
	}
}

func TestWaveformStrip(t *testing.T) {
	w := make([]float64, 200)
	for i := range w {
		w[i] = float64(i % 17)
	}
	out := WaveformStrip("trace", w, []int{50, 150}, 60, 8)
	if !strings.Contains(out, "*") {
		t.Fatal("waveform not rendered")
	}
	if !strings.Contains(out, "^") || !strings.Contains(out, "blinks") {
		t.Fatal("blink markers missing")
	}
	// Out-of-range marks are ignored, not fatal.
	if out := WaveformStrip("trace", w, []int{-5, 900}, 60, 8); !strings.Contains(out, "blinks") {
		t.Fatal("bad marks must not break rendering")
	}
}

func TestInsertionSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, rng.Intn(50))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		insertionSort(x)
		for i := 1; i < len(x); i++ {
			if x[i] < x[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
