// Package report renders experiment results as terminal figures:
// line charts for parameter sweeps, empirical CDF curves, and labelled
// waveform strips. cmd/experiments uses it so the regenerated "figures"
// are actually figures, not just tables.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Plot is a fixed-size character canvas with axes.
type Plot struct {
	width, height int
	cells         [][]rune
	xMin, xMax    float64
	yMin, yMax    float64
	xLabel        string
	yLabel        string
	title         string
}

// NewPlot creates a canvas of the given interior size (excluding axis
// decoration). Sizes are clamped to a sane minimum.
func NewPlot(width, height int, title string) *Plot {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	cells := make([][]rune, height)
	for i := range cells {
		cells[i] = make([]rune, width)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	return &Plot{
		width:  width,
		height: height,
		cells:  cells,
		title:  title,
	}
}

// SetRange fixes the data ranges mapped onto the canvas. Degenerate
// ranges are widened slightly so single-valued data still renders.
func (p *Plot) SetRange(xMin, xMax, yMin, yMax float64) {
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	p.xMin, p.xMax, p.yMin, p.yMax = xMin, xMax, yMin, yMax
}

// SetLabels sets the axis captions.
func (p *Plot) SetLabels(x, y string) {
	p.xLabel, p.yLabel = x, y
}

// cell maps a data point to canvas coordinates; ok is false outside the
// range.
func (p *Plot) cell(x, y float64) (col, row int, ok bool) {
	if x < p.xMin || x > p.xMax || y < p.yMin || y > p.yMax {
		return 0, 0, false
	}
	col = int((x - p.xMin) / (p.xMax - p.xMin) * float64(p.width-1))
	row = p.height - 1 - int((y-p.yMin)/(p.yMax-p.yMin)*float64(p.height-1))
	return col, row, true
}

// Point plots a marker at (x, y).
func (p *Plot) Point(x, y float64, marker rune) {
	if col, row, ok := p.cell(x, y); ok {
		p.cells[row][col] = marker
	}
}

// Line draws a polyline through the points with the given marker,
// interpolating between consecutive samples.
func (p *Plot) Line(xs, ys []float64, marker rune) {
	n := min(len(xs), len(ys))
	for i := 0; i < n; i++ {
		p.Point(xs[i], ys[i], marker)
		if i == 0 {
			continue
		}
		// Dense interpolation keeps steep segments connected.
		const steps = 64
		for s := 1; s < steps; s++ {
			f := float64(s) / steps
			x := xs[i-1] + (xs[i]-xs[i-1])*f
			y := ys[i-1] + (ys[i]-ys[i-1])*f
			if col, row, ok := p.cell(x, y); ok && p.cells[row][col] == ' ' {
				p.cells[row][col] = '.'
			}
		}
	}
}

// String renders the canvas with a frame, range annotations and labels.
func (p *Plot) String() string {
	var b strings.Builder
	if p.title != "" {
		fmt.Fprintf(&b, "%s\n", p.title)
	}
	fmt.Fprintf(&b, "%10.3g +", p.yMax)
	b.WriteString(strings.Repeat("-", p.width))
	b.WriteString("+\n")
	for _, row := range p.cells {
		b.WriteString(strings.Repeat(" ", 11))
		b.WriteByte('|')
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%10.3g +", p.yMin)
	b.WriteString(strings.Repeat("-", p.width))
	b.WriteString("+\n")
	fmt.Fprintf(&b, "%11s %-.3g%s%.3g", "", p.xMin,
		strings.Repeat(" ", max(1, p.width-12)), p.xMax)
	if p.xLabel != "" {
		fmt.Fprintf(&b, "  (%s)", p.xLabel)
	}
	if p.yLabel != "" {
		fmt.Fprintf(&b, "  [y: %s]", p.yLabel)
	}
	b.WriteByte('\n')
	return b.String()
}

// CDFChart renders an empirical CDF curve from sorted-or-not sample
// values.
func CDFChart(title string, values []float64, width, height int) string {
	if len(values) == 0 {
		return title + ": (no data)\n"
	}
	sorted := append([]float64(nil), values...)
	insertionSort(sorted)
	xs := make([]float64, len(sorted))
	ys := make([]float64, len(sorted))
	for i, v := range sorted {
		xs[i] = v
		ys[i] = float64(i+1) / float64(len(sorted))
	}
	p := NewPlot(width, height, title)
	lo := sorted[0]
	hi := sorted[len(sorted)-1]
	span := hi - lo
	if span == 0 {
		span = math.Max(math.Abs(hi), 0.01)
	}
	p.SetRange(lo-0.02*span, hi+0.02*span, 0, 1)
	p.SetLabels("value", "P(X<=x)")
	p.Line(xs, ys, '#')
	return p.String()
}

// SweepChart renders accuracy (0..1) against a numeric sweep axis.
func SweepChart(title, xLabel string, xs, accuracies []float64, width, height int) string {
	if len(xs) == 0 || len(xs) != len(accuracies) {
		return title + ": (no data)\n"
	}
	p := NewPlot(width, height, title)
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	p.SetRange(lo, hi, 0, 1)
	p.SetLabels(xLabel, "accuracy")
	p.Line(xs, accuracies, 'o')
	return p.String()
}

// WaveformStrip renders a waveform with event markers, for Fig. 11-
// style traces. Marks are sample indices highlighted on a marker row.
func WaveformStrip(title string, w []float64, marks []int, width, height int) string {
	if len(w) == 0 {
		return title + ": (no data)\n"
	}
	p := NewPlot(width, height, title)
	lo, hi := w[0], w[0]
	for _, v := range w {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	p.SetRange(0, float64(len(w)-1), lo, hi)
	p.SetLabels("frame", "distance")
	// Downsample onto the canvas width.
	for col := 0; col < width; col++ {
		idx := col * (len(w) - 1) / max(width-1, 1)
		p.Point(float64(idx), w[idx], '*')
	}
	out := p.String()
	// Marker row underneath.
	markerRow := make([]rune, width)
	for i := range markerRow {
		markerRow[i] = ' '
	}
	for _, m := range marks {
		if m < 0 || m >= len(w) {
			continue
		}
		col := m * (width - 1) / max(len(w)-1, 1)
		markerRow[col] = '^'
	}
	return out + strings.Repeat(" ", 12) + string(markerRow) + " blinks\n"
}

// insertionSort avoids importing sort for a handful of values and keeps
// the package allocation-free beyond its outputs.
func insertionSort(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
