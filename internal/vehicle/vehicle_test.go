package vehicle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoadTypeProfilesOrdering(t *testing.T) {
	smooth := SmoothHighway.Profile()
	urban := UrbanRoad.Profile()
	manoeuvre := ManoeuvreHeavy.Profile()
	bumpy := BumpyRoad.Profile()
	if !(smooth.VibrationRMS < urban.VibrationRMS && urban.VibrationRMS < bumpy.VibrationRMS) {
		t.Fatal("vibration RMS must grow with road roughness")
	}
	if !(manoeuvre.ManoeuvreRate > smooth.ManoeuvreRate) {
		t.Fatal("manoeuvre-heavy roads must manoeuvre more often")
	}
	if manoeuvre.ManoeuvreSwayM <= urban.ManoeuvreSwayM {
		t.Fatal("manoeuvre-heavy sway must exceed urban")
	}
}

func TestRoadTypeStrings(t *testing.T) {
	want := map[RoadType]string{
		SmoothHighway:  "smooth-highway",
		UrbanRoad:      "urban",
		ManoeuvreHeavy: "manoeuvre-heavy",
		BumpyRoad:      "bumpy",
	}
	for rt, s := range want {
		if rt.String() != s {
			t.Errorf("%d.String() = %q, want %q", rt, rt.String(), s)
		}
	}
	if RoadType(42).String() == "" {
		t.Error("unknown road type must still render")
	}
	if len(AllRoadTypes()) != 4 {
		t.Error("AllRoadTypes must list the four paper classes")
	}
	// Unknown values degrade to the smooth profile rather than panic.
	if RoadType(42).Profile().VibrationRMS != SmoothHighway.Profile().VibrationRMS {
		t.Error("unknown road type should fall back to the smooth profile")
	}
}

func TestGenerateVibrationRMS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := BumpyRoad.Profile()
	cfg.ManoeuvreRate = 0 // isolate the texture component
	v, err := GenerateVibration(cfg, 120, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := v.RMS()
	if got < cfg.VibrationRMS*0.5 || got > cfg.VibrationRMS*2 {
		t.Fatalf("vibration RMS %g, want ~%g", got, cfg.VibrationRMS)
	}
}

func TestGenerateVibrationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateVibration(SmoothHighway.Profile(), 0, 25, rng); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	if _, err := GenerateVibration(SmoothHighway.Profile(), 10, 0, rng); err == nil {
		t.Fatal("zero sample rate must be rejected")
	}
}

func TestVibrationAtInterpolatesAndClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v, err := GenerateVibration(UrbanRoad.Profile(), 10, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if v.At(-5) != v.At(0) {
		t.Fatal("negative time must clamp to the first sample")
	}
	if v.At(100) != v.At(10) {
		t.Fatal("beyond-capture time must clamp to the last sample")
	}
	// Interpolation lies between neighbouring samples.
	a, b := v.At(1.0), v.At(1.04)
	mid := v.At(1.02)
	lo, hi := math.Min(a, b), math.Max(a, b)
	if mid < lo-1e-12 || mid > hi+1e-12 {
		t.Fatalf("interpolated %g outside [%g, %g]", mid, lo, hi)
	}
}

func TestVibrationDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		a, err := GenerateVibration(BumpyRoad.Profile(), 20, 25, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		b, err := GenerateVibration(BumpyRoad.Profile(), 20, 25, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			tt := float64(i) * 0.04
			if a.At(tt) != b.At(tt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCabin(t *testing.T) {
	cabin := DefaultCabin()
	if len(cabin) < 4 {
		t.Fatalf("cabin has %d reflectors, want a realistic set", len(cabin))
	}
	for _, c := range cabin {
		if c.Range <= 0 || c.Reflectivity <= 0 {
			t.Fatalf("invalid clutter %+v", c)
		}
	}
}

func TestPassengerFidgets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPassenger(0.9, 300, rng)
	if p.Label() != "passenger" {
		t.Fatal("label mismatch")
	}
	var moved bool
	base, rho := p.State(0)
	if rho <= 0 {
		t.Fatal("passenger must reflect")
	}
	for i := 0; i < 3000; i++ {
		r, _ := p.State(float64(i) * 0.1)
		if math.Abs(r-base) > 1e-6 {
			moved = true
		}
		if math.Abs(r-base) > 0.06 {
			t.Fatalf("fidget displacement %g too large", r-base)
		}
	}
	if !moved {
		t.Fatal("passenger never fidgeted in 5 minutes")
	}
}
