// Package vehicle models the driving environment that interferes with
// radar blink sensing: road-induced body vibration, driving manoeuvres
// that sway the driver, and the static cabin clutter (dashboard, seats,
// steering wheel) that background subtraction must remove. The paper
// evaluates nine road/traffic conditions (Fig. 16b); this package maps
// them onto four roughness/manoeuvre classes as in the figure.
package vehicle

import (
	"fmt"
	"math"
	"math/rand"
)

// RoadType enumerates the road and traffic conditions of the paper's
// Section VI-H evaluation.
type RoadType int

const (
	// SmoothHighway is a smooth road with no manoeuvres (road type 1).
	SmoothHighway RoadType = iota + 1
	// UrbanRoad has mild roughness and occasional slow manoeuvres
	// (road type 2: uphill/downhill/intersection).
	UrbanRoad
	// ManoeuvreHeavy includes turns, roundabouts and U-turns
	// (road type 3).
	ManoeuvreHeavy
	// BumpyRoad is a rough surface with sustained vibration
	// (road type 4).
	BumpyRoad
)

// String implements fmt.Stringer.
func (r RoadType) String() string {
	switch r {
	case SmoothHighway:
		return "smooth-highway"
	case UrbanRoad:
		return "urban"
	case ManoeuvreHeavy:
		return "manoeuvre-heavy"
	case BumpyRoad:
		return "bumpy"
	default:
		return fmt.Sprintf("RoadType(%d)", int(r))
	}
}

// AllRoadTypes lists the four evaluated classes in figure order.
func AllRoadTypes() []RoadType {
	return []RoadType{SmoothHighway, UrbanRoad, ManoeuvreHeavy, BumpyRoad}
}

// Profile returns the vibration/manoeuvre parameters of the road type.
func (r RoadType) Profile() VibrationConfig {
	switch r {
	case UrbanRoad:
		return VibrationConfig{
			VibrationRMS:      0.0009,
			VibrationBandHz:   [2]float64{1.5, 9},
			ManoeuvreRate:     1.0 / 30,
			ManoeuvreSwayM:    0.008,
			ManoeuvreDuration: 3,
		}
	case ManoeuvreHeavy:
		return VibrationConfig{
			VibrationRMS:      0.0012,
			VibrationBandHz:   [2]float64{1.5, 9},
			ManoeuvreRate:     1.0 / 12,
			ManoeuvreSwayM:    0.020,
			ManoeuvreDuration: 4,
		}
	case BumpyRoad:
		return VibrationConfig{
			VibrationRMS:      0.0030,
			VibrationBandHz:   [2]float64{2, 12},
			ManoeuvreRate:     1.0 / 25,
			ManoeuvreSwayM:    0.012,
			ManoeuvreDuration: 3,
		}
	default: // SmoothHighway and unknown values degrade gracefully.
		return VibrationConfig{
			VibrationRMS:      0.0004,
			VibrationBandHz:   [2]float64{1.5, 8},
			ManoeuvreRate:     1.0 / 90,
			ManoeuvreSwayM:    0.004,
			ManoeuvreDuration: 3,
		}
	}
}

// VibrationConfig parameterises the body motion a road induces.
type VibrationConfig struct {
	// VibrationRMS is the RMS radar-to-body range modulation from
	// road texture, in metres.
	VibrationRMS float64
	// VibrationBandHz is the vibration band [low, high] in hertz.
	VibrationBandHz [2]float64
	// ManoeuvreRate is the mean number of manoeuvres per second.
	ManoeuvreRate float64
	// ManoeuvreSwayM is the peak body sway per manoeuvre in metres.
	ManoeuvreSwayM float64
	// ManoeuvreDuration is the manoeuvre length in seconds.
	ManoeuvreDuration float64
}

// manoeuvre is one turn/brake event swaying the driver's body.
type manoeuvre struct {
	start, duration, sway float64
}

// Vibration is a precomputed, deterministic body-vibration waveform for
// one capture: band-limited road texture plus manoeuvre sway. Sampled
// at construction so evaluation is pure and O(1) per call.
type Vibration struct {
	samples    []float64
	sampleRate float64
}

// GenerateVibration renders the vibration waveform for a capture of the
// given duration at the given sample rate (use the radar frame rate).
func GenerateVibration(cfg VibrationConfig, duration, sampleRate float64, rng *rand.Rand) (*Vibration, error) {
	if duration <= 0 || sampleRate <= 0 {
		return nil, fmt.Errorf("vehicle: duration and sample rate must be positive, got %g, %g", duration, sampleRate)
	}
	n := int(duration*sampleRate) + 1
	samples := make([]float64, n)

	// Band-limited noise: sum of randomly-phased tones across the band.
	// A handful of tones gives a realistic, non-repeating texture.
	const tones = 24
	lo, hi := cfg.VibrationBandHz[0], cfg.VibrationBandHz[1]
	if hi <= lo {
		hi = lo + 1
	}
	amp := cfg.VibrationRMS * math.Sqrt(2.0/float64(tones))
	type tone struct{ f, phase, a float64 }
	ts := make([]tone, tones)
	for i := range ts {
		ts[i] = tone{
			f:     lo + (hi-lo)*rng.Float64(),
			phase: rng.Float64() * 2 * math.Pi,
			a:     amp * (0.5 + rng.Float64()),
		}
	}

	// Manoeuvres: Poisson arrivals with raised-cosine sway profiles.
	var events []manoeuvre
	if cfg.ManoeuvreRate > 0 {
		t := rng.ExpFloat64() / cfg.ManoeuvreRate
		for t < duration {
			events = append(events, manoeuvre{
				start:    t,
				duration: cfg.ManoeuvreDuration * (0.7 + 0.6*rng.Float64()),
				sway:     cfg.ManoeuvreSwayM * (2*rng.Float64() - 1),
			})
			t += rng.ExpFloat64() / cfg.ManoeuvreRate
		}
	}

	for i := range samples {
		t := float64(i) / sampleRate
		var v float64
		for _, tn := range ts {
			v += tn.a * math.Sin(2*math.Pi*tn.f*t+tn.phase)
		}
		for _, e := range events {
			if t < e.start || t > e.start+e.duration {
				continue
			}
			p := (t - e.start) / e.duration
			// Half-sine bump: sway out and back.
			v += e.sway * math.Sin(math.Pi*p)
		}
		samples[i] = v
	}
	return &Vibration{samples: samples, sampleRate: sampleRate}, nil
}

// At returns the body displacement in metres at time t, with linear
// interpolation between precomputed samples.
func (v *Vibration) At(t float64) float64 {
	if len(v.samples) == 0 {
		return 0
	}
	pos := t * v.sampleRate
	if pos <= 0 {
		return v.samples[0]
	}
	lo := int(pos)
	if lo >= len(v.samples)-1 {
		return v.samples[len(v.samples)-1]
	}
	frac := pos - float64(lo)
	return v.samples[lo]*(1-frac) + v.samples[lo+1]*frac
}

// RMS returns the root-mean-square of the rendered waveform.
func (v *Vibration) RMS() float64 {
	if len(v.samples) == 0 {
		return 0
	}
	var acc float64
	for _, s := range v.samples {
		acc += s * s
	}
	return math.Sqrt(acc / float64(len(v.samples)))
}
