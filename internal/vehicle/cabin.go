package vehicle

import (
	"math"
	"math/rand"
)

// Clutter is one static in-cabin reflector.
type Clutter struct {
	// Name identifies the reflector (for diagnostics).
	Name string
	// Range is the radar-to-reflector distance in metres.
	Range float64
	// Reflectivity is the amplitude reflection factor. Seats and the
	// steering wheel reflect far more strongly than the eye (paper
	// Section IV-B2), which is why amplitude-based bin selection
	// fails.
	Reflectivity float64
}

// DefaultCabin returns the static clutter of a windshield-mounted radar
// facing the driver: steering wheel, seat back, headrest, B-pillar.
// Ranges assume the paper's 0.4 m radar-to-eye geometry.
func DefaultCabin() []Clutter {
	return []Clutter{
		{Name: "steering-wheel", Range: 0.28, Reflectivity: 2.6},
		{Name: "dashboard-edge", Range: 0.16, Reflectivity: 1.9},
		{Name: "seat-back", Range: 0.78, Reflectivity: 3.1},
		{Name: "headrest", Range: 0.66, Reflectivity: 2.2},
		{Name: "b-pillar", Range: 1.05, Reflectivity: 1.5},
	}
}

// Passenger models a fidgeting passenger: a moving ambient-interference
// source at a different range from the driver. Movement is sparse
// random fidgets over an otherwise static position.
type Passenger struct {
	baseRange    float64
	reflectivity float64
	fidgets      []fidget
}

type fidget struct {
	start, duration, amplitude, freq float64
}

// NewPassenger creates a passenger at the given range with sparse
// fidgeting over [0, duration) seconds.
func NewPassenger(baseRange, duration float64, rng *rand.Rand) *Passenger {
	p := &Passenger{
		baseRange:    baseRange,
		reflectivity: 1.4 + 0.6*rng.Float64(),
	}
	const meanInterval = 20.0
	t := rng.ExpFloat64() * meanInterval
	for t < duration {
		p.fidgets = append(p.fidgets, fidget{
			start:     t,
			duration:  1 + 2*rng.Float64(),
			amplitude: 0.01 + 0.04*rng.Float64(),
			freq:      0.5 + 1.5*rng.Float64(),
		})
		t += rng.ExpFloat64() * meanInterval
	}
	return p
}

// State returns the passenger's range and reflectivity at time t,
// matching the rf.Reflector contract.
func (p *Passenger) State(t float64) (float64, float64) {
	r := p.baseRange
	for _, f := range p.fidgets {
		if t < f.start || t > f.start+f.duration {
			continue
		}
		env := math.Sin(math.Pi * (t - f.start) / f.duration)
		r += f.amplitude * env * math.Sin(2*math.Pi*f.freq*(t-f.start))
	}
	return r, p.reflectivity
}

// Label returns the reflector name.
func (p *Passenger) Label() string { return "passenger" }
