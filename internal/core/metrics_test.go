package core

import (
	"testing"

	"blinkradar/internal/obs"
)

func TestDetectorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	det, err := NewDetector(DefaultConfig(), 32, 25)
	if err != nil {
		t.Fatal(err)
	}
	det.SetRegistry(reg)
	frame := make([]complex128, 32)
	for i := 0; i < 100; i++ {
		if _, _, err := det.Feed(frame); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("core_frames_total").Value(); got != 100 {
		t.Fatalf("core_frames_total = %d, want 100", got)
	}
	h := reg.Histogram("core_frame_latency_seconds", nil)
	if h.Count() != 100 {
		t.Fatalf("latency observations = %d, want 100", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("latency sum = %g, want > 0", h.Sum())
	}
	// The uninstrumented counters exist but are untouched on a silent
	// stream.
	if got := reg.Counter("core_blinks_total").Value(); got != 0 {
		t.Fatalf("core_blinks_total = %d on a silent stream", got)
	}
}

func TestDetectorWithoutRegistry(t *testing.T) {
	// No registry attached: instrumentation must be a no-op, not a
	// panic.
	det, err := NewDetector(DefaultConfig(), 32, 25)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]complex128, 32)
	for i := 0; i < 10; i++ {
		if _, _, err := det.Feed(frame); err != nil {
			t.Fatal(err)
		}
	}
}
