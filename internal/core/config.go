// Package core implements BlinkRadar's detection pipeline — the paper's
// primary contribution. The stages mirror Section IV:
//
//  1. preprocessing: a cascading noise-reduction filter (order-26
//     Hamming-window low-pass FIR plus a smoothing filter) and
//     loopback-filter background subtraction;
//  2. eye range-bin identification by the 2-D I/Q variance of each bin,
//     exploiting embedded respiration/BCG interference;
//  3. viewing-position tracking by Pratt circle fitting with adaptive
//     updates and restart on large body motion;
//  4. blink detection by local extreme value detection (LEVD) on the
//     distance-from-viewing-position waveform, thresholded at five
//     times the no-blink standard deviation;
//  5. drowsy-driving classification from the blink rate (and duration)
//     over one-minute windows.
package core

import "fmt"

// Config parameterises the detection pipeline. The zero value is not
// usable; start from DefaultConfig and override fields or use the
// functional options accepted by NewDetector.
type Config struct {
	// ColdStartFrames is the number of frames accumulated before the
	// first viewing-position fit (paper: 50 chirps x 40 ms = 2 s).
	ColdStartFrames int
	// FitWindowFrames is the number of recent samples used for each
	// Pratt arc fit. Longer windows cover more of the embedded-
	// interference arc and condition the fit far better; fits begin as
	// soon as ColdStartFrames samples are available.
	FitWindowFrames int
	// RefitIntervalFrames is how often the viewing position is
	// re-fitted once tracking (paper: "updated as soon as enough
	// samples are accumulated").
	RefitIntervalFrames int
	// DetrendWindowFrames is the trailing moving-median window
	// subtracted from the distance waveform before extremum detection,
	// removing slow wander while preserving blink transients.
	DetrendWindowFrames int
	// SigmaWindowSec is the span of the robust (MAD-based) estimate of
	// the no-blink standard deviation.
	SigmaWindowSec float64
	// CenterBlend in (0, 1] is the fraction of each refit's centre
	// update that is applied. Short-arc circle fits are radially
	// ill-conditioned, so jumping to each new centre would step the
	// distance waveform; blending keeps the viewing position smooth.
	CenterBlend float64
	// ThresholdK is the LEVD threshold multiplier: a blink is declared
	// when a local max/min difference exceeds ThresholdK times the
	// no-blink standard deviation (paper: five).
	ThresholdK float64
	// TailGuardK keeps the threshold above this multiple of the 80th
	// percentile of recent baseline deviations, suppressing periodic
	// interference whose heavy tail a MAD-based sigma underestimates.
	TailGuardK float64
	// MinThreshold floors the LEVD threshold so an implausibly quiet
	// sigma estimate cannot make the detector fire on noise.
	MinThreshold float64
	// MinThresholdFrac floors the LEVD threshold at this fraction of
	// the fitted arc radius. Sub-bin body motion modulates the tracked
	// bin's amplitude in proportion to the return strength, so the
	// usable noise floor scales with the radius.
	MinThresholdFrac float64
	// RefractorySec is the minimum separation between two detected
	// blinks; extrema pairs inside it are merged into one event.
	RefractorySec float64
	// DistanceSmoothFrames is the moving-average width applied to the
	// distance waveform before extremum detection.
	DistanceSmoothFrames int
	// FIROrder and FIRCutoff configure the slow-time low-pass FIR
	// stage of the preprocessing cascade (paper: order 26, Hamming).
	FIROrder int
	// FIRCutoff is the normalised cutoff in (0, 0.5].
	FIRCutoff float64
	// FastTimeSmoothBins is the smoothing width across range bins
	// applied per frame (the paper's 50-point smoother, scaled to the
	// profile length used here). Width 1 disables smoothing — the
	// right choice when the radio already delivers pulse-compressed
	// profiles, where extra smoothing only widens reflector tails into
	// neighbouring bins.
	FastTimeSmoothBins int
	// EnableFastTimeFIR applies the low-pass FIR across range bins of
	// every frame. As with the smoother, enable it only for raw
	// (uncompressed) profiles.
	EnableFastTimeFIR bool
	// BackgroundTauSec is the priming duration, in seconds, of the
	// loopback background filter that removes static clutter. The
	// clutter estimate is frozen after priming.
	BackgroundTauSec float64
	// GuardBins excludes the first bins (antenna direct path) from bin
	// selection.
	GuardBins int
	// SelectWindowFrames is the number of samples over which per-bin
	// variance is computed for eye-bin identification.
	SelectWindowFrames int
	// CandidateTopK is how many highest-variance bins are scored with
	// an arc fit before picking the best.
	CandidateTopK int
	// ReselectIntervalFrames is how often bin selection is revisited.
	ReselectIntervalFrames int
	// SwitchScoreRatio is the advantage a challenger bin needs over
	// the current bin before the tracker migrates to it.
	SwitchScoreRatio float64
	// RestartVarRatio triggers a full restart when the distance
	// waveform stays more than RestartVarRatio times the no-blink
	// sigma away from its running median for MotionSustainFrames
	// consecutive frames (paper: "restarts the whole eye-blink
	// detection process when a significant body movement happens").
	// Blinks are transient, so they never sustain the deviation.
	RestartVarRatio float64
	// MotionSustainFrames is how long the deviation must persist
	// before a restart is declared.
	MotionSustainFrames int
	// SettleFrames suppresses detection immediately after a restart
	// while the tracker re-acquires.
	SettleFrames int
	// Parallelism bounds the worker pool used by the embarrassingly
	// parallel stages (candidate scoring in bin selection, matrix
	// preprocessing, batch detection). Zero selects GOMAXPROCS; the
	// results are identical for any value, only the wall-clock time
	// changes.
	Parallelism int
	// SaturationLimit clamps each I/Q component of the input to
	// ±SaturationLimit before processing (ADC rail-out repair). Zero
	// disables clamping — the right default for the simulated radio,
	// whose output is already bounded.
	SaturationLimit float64
	// MaxBadBinFrac is the largest fraction of non-finite bins a frame
	// may carry and still be repaired in place (bad bins patched with
	// the last good value); frames above it are rejected whole.
	MaxBadBinFrac float64
	// MaxGapFrames is the longest input gap — a transport sequence gap
	// reported via NoteGap, or a run of rejected frames — bridged
	// without discarding tracking state. Longer gaps re-run cold start
	// (the slow-time series has a hole the filters must not paper
	// over). Default 50 frames = 2 s at 25 fps, matching the cold-start
	// span.
	MaxGapFrames int
	// DegradedAfterRejects consecutive rejected frames switch the
	// health state to Degraded, signalling that the input stream itself
	// is unusable rather than momentarily glitched.
	DegradedAfterRejects int
}

// DefaultConfig returns the paper-faithful configuration for the 25 fps
// default radio.
func DefaultConfig() Config {
	return Config{
		ColdStartFrames:        50,
		FitWindowFrames:        750,
		RefitIntervalFrames:    25,
		CenterBlend:            0.08,
		DetrendWindowFrames:    25,
		SigmaWindowSec:         15,
		ThresholdK:             5,
		TailGuardK:             1.5,
		MinThreshold:           0.004,
		MinThresholdFrac:       0.025,
		RefractorySec:          0.50,
		DistanceSmoothFrames:   3,
		FIROrder:               26,
		FIRCutoff:              0.34,
		FastTimeSmoothBins:     1,
		BackgroundTauSec:       1.0,
		GuardBins:              8,
		SelectWindowFrames:     100,
		CandidateTopK:          24,
		ReselectIntervalFrames: 125,
		SwitchScoreRatio:       1.8,
		RestartVarRatio:        12,
		MotionSustainFrames:    30,
		SettleFrames:           25,
		SaturationLimit:        0,
		MaxBadBinFrac:          0.25,
		MaxGapFrames:           50,
		DegradedAfterRejects:   25,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.ColdStartFrames <= 2:
		return fmt.Errorf("core: cold start must exceed 2 frames, got %d", c.ColdStartFrames)
	case c.FitWindowFrames < 5:
		return fmt.Errorf("core: fit window must be at least 5 frames, got %d", c.FitWindowFrames)
	case c.RefitIntervalFrames <= 0:
		return fmt.Errorf("core: refit interval must be positive, got %d", c.RefitIntervalFrames)
	case c.CenterBlend <= 0 || c.CenterBlend > 1:
		return fmt.Errorf("core: centre blend must be in (0, 1], got %g", c.CenterBlend)
	case c.DetrendWindowFrames <= 2:
		return fmt.Errorf("core: detrend window must exceed 2 frames, got %d", c.DetrendWindowFrames)
	case c.SigmaWindowSec <= 0:
		return fmt.Errorf("core: sigma window must be positive, got %g", c.SigmaWindowSec)
	case c.ThresholdK <= 0:
		return fmt.Errorf("core: threshold multiplier must be positive, got %g", c.ThresholdK)
	case c.TailGuardK < 0:
		return fmt.Errorf("core: tail guard must be non-negative, got %g", c.TailGuardK)
	case c.MinThreshold < 0:
		return fmt.Errorf("core: minimum threshold must be non-negative, got %g", c.MinThreshold)
	case c.MinThresholdFrac < 0 || c.MinThresholdFrac >= 1:
		return fmt.Errorf("core: threshold fraction must be in [0, 1), got %g", c.MinThresholdFrac)
	case c.RefractorySec < 0:
		return fmt.Errorf("core: refractory period must be non-negative, got %g", c.RefractorySec)
	case c.DistanceSmoothFrames <= 0:
		return fmt.Errorf("core: distance smoothing must be positive, got %d", c.DistanceSmoothFrames)
	case c.FIROrder <= 0 || c.FIRCutoff <= 0 || c.FIRCutoff > 0.5:
		return fmt.Errorf("core: invalid FIR design order=%d cutoff=%g", c.FIROrder, c.FIRCutoff)
	case c.FastTimeSmoothBins <= 0:
		return fmt.Errorf("core: fast-time smoothing must be positive, got %d", c.FastTimeSmoothBins)
	case c.BackgroundTauSec <= 0:
		return fmt.Errorf("core: background time constant must be positive, got %g", c.BackgroundTauSec)
	case c.GuardBins < 0:
		return fmt.Errorf("core: guard bins must be non-negative, got %d", c.GuardBins)
	case c.SelectWindowFrames < 10:
		return fmt.Errorf("core: selection window must be at least 10 frames, got %d", c.SelectWindowFrames)
	case c.CandidateTopK <= 0:
		return fmt.Errorf("core: candidate count must be positive, got %d", c.CandidateTopK)
	case c.ReselectIntervalFrames <= 0:
		return fmt.Errorf("core: reselect interval must be positive, got %d", c.ReselectIntervalFrames)
	case c.SwitchScoreRatio < 1:
		return fmt.Errorf("core: switch ratio must be at least 1, got %g", c.SwitchScoreRatio)
	case c.RestartVarRatio <= 1:
		return fmt.Errorf("core: restart ratio must exceed 1, got %g", c.RestartVarRatio)
	case c.MotionSustainFrames <= 0:
		return fmt.Errorf("core: motion sustain must be positive, got %d", c.MotionSustainFrames)
	case c.SettleFrames < 0:
		return fmt.Errorf("core: settle frames must be non-negative, got %d", c.SettleFrames)
	case c.Parallelism < 0:
		return fmt.Errorf("core: parallelism must be non-negative (0 = GOMAXPROCS), got %d", c.Parallelism)
	case c.SaturationLimit < 0:
		return fmt.Errorf("core: saturation limit must be non-negative (0 = off), got %g", c.SaturationLimit)
	case c.MaxBadBinFrac < 0 || c.MaxBadBinFrac > 1:
		return fmt.Errorf("core: bad-bin fraction must be in [0, 1], got %g", c.MaxBadBinFrac)
	case c.MaxGapFrames <= 0:
		return fmt.Errorf("core: max gap must be positive, got %d", c.MaxGapFrames)
	case c.DegradedAfterRejects <= 0:
		return fmt.Errorf("core: degraded threshold must be positive, got %d", c.DegradedAfterRejects)
	}
	return nil
}

// Option mutates a Config; used by NewDetector.
type Option func(*Config)

// WithThresholdK overrides the LEVD threshold multiplier.
func WithThresholdK(k float64) Option {
	return func(c *Config) { c.ThresholdK = k }
}

// WithColdStart overrides the cold-start length in frames.
func WithColdStart(frames int) Option {
	return func(c *Config) { c.ColdStartFrames = frames }
}

// WithFitWindow overrides the arc-fit window length in frames.
func WithFitWindow(frames int) Option {
	return func(c *Config) { c.FitWindowFrames = frames }
}

// WithAdaptiveUpdate enables or disables periodic viewing-position
// refits and bin reselection (the paper's adaptive update; disabling it
// is the ablation of Section "Real-time Eye-Blink Detection").
func WithAdaptiveUpdate(enabled bool) Option {
	return func(c *Config) {
		if !enabled {
			c.RefitIntervalFrames = 1 << 30
			c.ReselectIntervalFrames = 1 << 30
			c.RestartVarRatio = 1e12
		}
	}
}

// WithBackgroundTau overrides the loopback-filter time constant.
func WithBackgroundTau(sec float64) Option {
	return func(c *Config) { c.BackgroundTauSec = sec }
}

// WithParallelism bounds the worker pool of the parallel stages
// (0 = GOMAXPROCS, 1 = serial).
func WithParallelism(workers int) Option {
	return func(c *Config) { c.Parallelism = workers }
}
