package core

import "math"

// InputStats summarises the input-sanitization and gap-handling stage.
// All counts are cumulative since construction.
type InputStats struct {
	// Accepted frames passed sanitization and entered the pipeline.
	Accepted uint64
	// Rejected frames were discarded whole (too many non-finite bins).
	Rejected uint64
	// RepairedBins is how many non-finite bins were patched with the
	// last good value for that bin.
	RepairedBins uint64
	// ClampedBins is how many saturated bins were clamped to
	// ±SaturationLimit.
	ClampedBins uint64
	// GapFrames is the total frames reported lost upstream via NoteGap.
	GapFrames uint64
	// GapResets is how many times tracking state was discarded because
	// a gap or reject run was too long to bridge.
	GapResets uint64
}

// InputStats returns the sanitization counters.
func (d *Detector) InputStats() InputStats { return d.in }

// isFinite reports whether both components of c are finite.
//
//blinkradar:hotpath
func isFinite(c complex128) bool {
	re, im := real(c), imag(c)
	return !math.IsNaN(re) && !math.IsInf(re, 0) && !math.IsNaN(im) && !math.IsInf(im, 0)
}

// sanitizeFrame validates and repairs the raw frame in buf, in place.
// Non-finite bins are patched with the last accepted value for that bin
// (zero before any frame has been accepted); when more than
// MaxBadBinFrac of the frame is non-finite the frame is rejected whole.
// With SaturationLimit > 0, component magnitudes beyond the limit are
// clamped (ADC rail-out repair). Returns false when the frame must be
// discarded.
//
//blinkradar:hotpath
func (d *Detector) sanitizeFrame(buf []complex128) bool {
	bad := 0
	for _, c := range buf {
		if !isFinite(c) {
			bad++
		}
	}
	if bad > 0 {
		if float64(bad) > d.cfg.MaxBadBinFrac*float64(len(buf)) {
			return false
		}
		for i, c := range buf {
			if !isFinite(c) {
				if d.haveGood {
					buf[i] = d.lastGood[i]
				} else {
					buf[i] = 0
				}
				d.in.RepairedBins++
				d.mBinsRepaired.Inc()
			}
		}
	}
	if lim := d.cfg.SaturationLimit; lim > 0 {
		for i, c := range buf {
			re, im := real(c), imag(c)
			clamped := false
			if re > lim {
				re, clamped = lim, true
			} else if re < -lim {
				re, clamped = -lim, true
			}
			if im > lim {
				im, clamped = lim, true
			} else if im < -lim {
				im, clamped = -lim, true
			}
			if clamped {
				buf[i] = complex(re, im)
				d.in.ClampedBins++
				d.mBinsClamped.Inc()
			}
		}
	}
	copy(d.lastGood, buf)
	d.haveGood = true
	return true
}

// noteReject accounts one discarded frame. A reject run longer than
// MaxGapFrames is an input gap like any other (the slow-time series has
// a hole), so it forces re-acquisition; a run reaching
// DegradedAfterRejects flags the stream itself as unusable.
func (d *Detector) noteReject() {
	d.in.Rejected++
	d.mFramesRejected.Inc()
	d.consecRejects++
	if d.consecRejects == d.cfg.MaxGapFrames+1 {
		d.reacquire()
	}
	if d.consecRejects >= d.cfg.DegradedAfterRejects {
		d.setHealth(HealthDegraded)
	}
}

// noteAccept accounts one accepted frame and, if the detector was
// degraded, restores the appropriate working state.
func (d *Detector) noteAccept() {
	d.in.Accepted++
	if d.consecRejects == 0 {
		return
	}
	d.consecRejects = 0
	if d.Health() != HealthDegraded {
		return
	}
	switch {
	case d.haveBin:
		d.setHealth(HealthTracking)
	case d.everSelected:
		d.setHealth(HealthReacquiring)
	default:
		d.setHealth(HealthAcquiring)
	}
}

// NoteGap informs the detector that missed frames were lost upstream
// (e.g. a transport sequence gap). Gaps of at most MaxGapFrames are
// bridged: the slow-time filters absorb the discontinuity. Longer gaps
// discard tracking state and re-run cold start — concatenating across a
// multi-second hole would hand the tracker and threshold estimator a
// phantom step. The background clutter estimate is deliberately kept:
// transport losses do not move the cabin.
//
// Like Feed, NoteGap must be called from the detector's owning
// goroutine.
func (d *Detector) NoteGap(missed uint64) {
	if missed == 0 {
		return
	}
	d.in.GapFrames += missed
	d.mGapFrames.Add(missed)
	if missed > uint64(d.cfg.MaxGapFrames) {
		d.reacquire()
	}
}

// reacquire discards all slow-time state (ring, tracker, LEVD, motion
// median) while keeping the primed background estimate, and re-enters
// cold start. The next bin selection fires once ColdStartFrames clean
// frames have refilled the ring.
func (d *Detector) reacquire() {
	d.in.GapResets++
	d.mGapResets.Inc()
	d.ring.reset()
	d.tracker.Reset()
	d.levd.Reset()
	d.haveBin = false
	d.matured = false
	d.challenger = -1
	d.sustain = 0
	d.med.Reset()
	d.setHealth(HealthReacquiring)
}
