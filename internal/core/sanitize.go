package core

import "math"

// InputStats summarises the input-sanitization and gap-handling stage.
// All counts are cumulative since construction.
type InputStats struct {
	// Accepted frames passed sanitization and entered the pipeline.
	Accepted uint64
	// Rejected frames were discarded whole (too many non-finite bins).
	Rejected uint64
	// RepairedBins is how many non-finite bins were patched with the
	// last good value for that bin.
	RepairedBins uint64
	// ClampedBins is how many saturated bins were clamped to
	// ±SaturationLimit.
	ClampedBins uint64
	// GapFrames is the total frames reported lost upstream via NoteGap.
	GapFrames uint64
	// GapResets is how many times tracking state was discarded because
	// a gap or reject run was too long to bridge.
	GapResets uint64
}

// InputStats returns the sanitization counters.
func (d *Detector) InputStats() InputStats { return d.in }

// isFinite reports whether both components of c are finite.
//
//blinkradar:hotpath
func isFinite(c complex128) bool {
	re, im := real(c), imag(c)
	return !math.IsNaN(re) && !math.IsInf(re, 0) && !math.IsNaN(im) && !math.IsInf(im, 0)
}

// finite32 reports whether v is finite. NaN survives float64→float32
// narrowing and ±Inf stays infinite, so checking the narrowed sample
// catches exactly what the complex-path sweep would — except a finite
// float64 beyond ±MaxFloat32, which narrows to Inf and is repaired as
// non-finite rather than clamped (see DESIGN.md §13).
//
//blinkradar:hotpath
func finite32(v float32) bool {
	d := float64(v)
	return !math.IsNaN(d) && !math.IsInf(d, 0)
}

// sanitizeFrame validates and repairs the raw frame's I/Q planes in
// place. Non-finite bins are patched with the last accepted value for
// that bin (zero before any frame has been accepted); when more than
// MaxBadBinFrac of the frame is non-finite the frame is rejected whole.
// With SaturationLimit > 0, component magnitudes beyond the limit are
// clamped (ADC rail-out repair); a finite float64 component beyond
// ±MaxFloat32 arrives here already narrowed to Inf and is repaired
// instead. Returns false when the frame must be discarded.
//
//blinkradar:hotpath
func (d *Detector) sanitizeFrame(pi, pq []float32) bool {
	// Branchless screen first: v-v is exactly 0 for every finite v and
	// NaN for NaN/±Inf, so a NaN accumulator after the sweep means the
	// frame needs the per-bin repair scan. Clean frames — the
	// overwhelmingly common case — pay two subtract-adds per bin and no
	// data-dependent branches.
	var acc float32
	for i := range pi {
		acc += (pi[i] - pi[i]) + (pq[i] - pq[i])
	}
	bad := 0
	if acc != acc {
		for i := range pi {
			if !finite32(pi[i]) || !finite32(pq[i]) {
				bad++
			}
		}
	}
	if bad > 0 {
		if float64(bad) > d.cfg.MaxBadBinFrac*float64(len(pi)) {
			return false
		}
		for i := range pi {
			if !finite32(pi[i]) || !finite32(pq[i]) {
				if d.haveGood {
					pi[i] = d.lastGood.I[i]
					pq[i] = d.lastGood.Q[i]
				} else {
					pi[i] = 0
					pq[i] = 0
				}
				d.in.RepairedBins++
				d.mBinsRepaired.Inc()
			}
		}
	}
	if lim := d.cfg.SaturationLimit; lim > 0 {
		lim32 := float32(lim)
		for i := range pi {
			re, im := pi[i], pq[i]
			clamped := false
			if re > lim32 {
				re, clamped = lim32, true
			} else if re < -lim32 {
				re, clamped = -lim32, true
			}
			if im > lim32 {
				im, clamped = lim32, true
			} else if im < -lim32 {
				im, clamped = -lim32, true
			}
			if clamped {
				pi[i] = re
				pq[i] = im
				d.in.ClampedBins++
				d.mBinsClamped.Inc()
			}
		}
	}
	copy(d.lastGood.I, pi)
	copy(d.lastGood.Q, pq)
	d.haveGood = true
	return true
}

// noteReject accounts one discarded frame. A reject run longer than
// MaxGapFrames is an input gap like any other (the slow-time series has
// a hole), so it forces re-acquisition; a run reaching
// DegradedAfterRejects flags the stream itself as unusable.
func (d *Detector) noteReject() {
	d.in.Rejected++
	d.mFramesRejected.Inc()
	d.consecRejects++
	if d.consecRejects == d.cfg.MaxGapFrames+1 {
		d.reacquire()
	}
	if d.consecRejects >= d.cfg.DegradedAfterRejects {
		d.setHealth(HealthDegraded)
	}
}

// noteAccept accounts one accepted frame and, if the detector was
// degraded, restores the appropriate working state.
func (d *Detector) noteAccept() {
	d.in.Accepted++
	if d.consecRejects == 0 {
		return
	}
	d.consecRejects = 0
	if d.Health() != HealthDegraded {
		return
	}
	switch {
	case d.haveBin:
		d.setHealth(HealthTracking)
	case d.everSelected:
		d.setHealth(HealthReacquiring)
	default:
		d.setHealth(HealthAcquiring)
	}
}

// NoteGap informs the detector that missed frames were lost upstream
// (e.g. a transport sequence gap). Gaps of at most MaxGapFrames are
// bridged: the slow-time filters absorb the discontinuity. Longer gaps
// discard tracking state and re-run cold start — concatenating across a
// multi-second hole would hand the tracker and threshold estimator a
// phantom step. The background clutter estimate is deliberately kept:
// transport losses do not move the cabin.
//
// Like Feed, NoteGap must be called from the detector's owning
// goroutine.
func (d *Detector) NoteGap(missed uint64) {
	if missed == 0 {
		return
	}
	d.in.GapFrames += missed
	d.mGapFrames.Add(missed)
	if missed > uint64(d.cfg.MaxGapFrames) {
		d.reacquire()
	}
}

// reacquire discards all slow-time state (ring, tracker, LEVD, motion
// median) while keeping the primed background estimate, and re-enters
// cold start. The next bin selection fires once ColdStartFrames clean
// frames have refilled the ring.
func (d *Detector) reacquire() {
	d.in.GapResets++
	d.mGapResets.Inc()
	d.ring.reset()
	d.tracker.Reset()
	d.levd.Reset()
	d.haveBin = false
	d.matured = false
	d.challenger = -1
	d.sustain = 0
	d.med.Reset()
	d.setHealth(HealthReacquiring)
}
