package core

import (
	"math"
	"math/cmplx"
	"testing"
)

// feedClean runs n frames of the synthetic capture through det starting
// at frame offset, failing the test on any Feed error.
func feedClean(t *testing.T, det *Detector, data [][]complex128, from, n int) {
	t.Helper()
	for k := from; k < from+n; k++ {
		if _, _, err := det.Feed(data[k]); err != nil {
			t.Fatalf("frame %d: %v", k, err)
		}
	}
}

func TestDetectorRepairsSparseNonFinite(t *testing.T) {
	m, faceBin := syntheticCapture(t, 400, []int{200}, 11)
	det, err := NewDetector(DefaultConfig(), m.NumBins(), m.FrameRate)
	if err != nil {
		t.Fatal(err)
	}
	// Establish tracking on clean frames first.
	feedClean(t, det, m.Data, 0, 150)
	if det.Health() != HealthTracking {
		t.Fatalf("health %s after clean warmup, want tracking", det.Health())
	}
	// Poison a handful of bins per frame — NaN and both infinities —
	// staying under MaxBadBinFrac so each frame is repaired, not
	// rejected. The detector must keep tracking straight through.
	for k := 150; k < 250; k++ {
		frame := append([]complex128(nil), m.Data[k]...)
		frame[2] = complex(math.NaN(), 0)
		frame[7] = complex(0, math.Inf(1))
		frame[11] = complex(math.Inf(-1), math.NaN())
		if _, _, err := det.Feed(frame); err != nil {
			t.Fatalf("frame %d: %v", k, err)
		}
	}
	in := det.InputStats()
	if in.Rejected != 0 {
		t.Fatalf("%d frames rejected, want 0 (sparse damage is repairable)", in.Rejected)
	}
	if want := uint64(3 * 100); in.RepairedBins != want {
		t.Fatalf("%d bins repaired, want %d", in.RepairedBins, want)
	}
	if det.Health() != HealthTracking {
		t.Fatalf("health %s after repairable damage, want tracking", det.Health())
	}
	if got := det.Bin(); got != faceBin {
		t.Fatalf("tracking bin %d after repairs, want %d", got, faceBin)
	}
}

func TestDetectorRejectsNonFiniteFlood(t *testing.T) {
	m, _ := syntheticCapture(t, 400, nil, 12)
	cfg := DefaultConfig()
	det, err := NewDetector(cfg, m.NumBins(), m.FrameRate)
	if err != nil {
		t.Fatal(err)
	}
	feedClean(t, det, m.Data, 0, 100)
	frameBefore := det.Frame()
	// A frame where every bin is non-finite is unsalvageable.
	poison := make([]complex128, m.NumBins())
	for i := range poison {
		poison[i] = complex(math.NaN(), math.Inf(1))
	}
	for i := 0; i < 5; i++ {
		ev, ok, err := det.Feed(poison)
		if err != nil {
			t.Fatalf("rejected frame must not error: %v", err)
		}
		if ok {
			t.Fatalf("rejected frame produced blink event %+v", ev)
		}
	}
	in := det.InputStats()
	if in.Rejected != 5 {
		t.Fatalf("%d frames rejected, want 5", in.Rejected)
	}
	if det.Frame() != frameBefore {
		t.Fatal("rejected frames must not advance the slow-time clock")
	}
	// A short reject run bridges: clean frames resume tracking and the
	// consecutive-reject counter rearms.
	feedClean(t, det, m.Data, 100, 50)
	if det.Health() != HealthTracking {
		t.Fatalf("health %s after short reject run, want tracking", det.Health())
	}
	if got := det.InputStats().GapResets; got != 0 {
		t.Fatalf("%d gap resets after a 5-frame reject run, want 0", got)
	}
}

func TestDetectorDegradedEntryAndExit(t *testing.T) {
	m, _ := syntheticCapture(t, 600, nil, 13)
	cfg := DefaultConfig()
	det, err := NewDetector(cfg, m.NumBins(), m.FrameRate)
	if err != nil {
		t.Fatal(err)
	}
	feedClean(t, det, m.Data, 0, 150)
	if det.Health() != HealthTracking {
		t.Fatalf("health %s after warmup, want tracking", det.Health())
	}
	poison := make([]complex128, m.NumBins())
	for i := range poison {
		poison[i] = complex(math.NaN(), 0)
	}
	for i := 0; i < cfg.DegradedAfterRejects+cfg.MaxGapFrames+5; i++ {
		if _, _, err := det.Feed(poison); err != nil {
			t.Fatal(err)
		}
		if i+1 == cfg.DegradedAfterRejects && det.Health() != HealthDegraded {
			t.Fatalf("health %s after %d rejects, want degraded", det.Health(), i+1)
		}
	}
	// The run crossed both thresholds: DegradedAfterRejects flagged the
	// stream, and MaxGapFrames forced re-acquisition (Degraded outranks
	// the transient Reacquiring state, so the reset is visible only in
	// the counter).
	if det.Health() != HealthDegraded {
		t.Fatalf("health %s after sustained poison, want degraded", det.Health())
	}
	if got := det.InputStats().GapResets; got != 1 {
		t.Fatalf("%d gap resets, want 1", got)
	}
	// First clean frame exits Degraded; tracking state was discarded, so
	// the detector is re-acquiring, and a full cold-start window of
	// clean frames brings it back to Tracking.
	if _, _, err := det.Feed(m.Data[150]); err != nil {
		t.Fatal(err)
	}
	if det.Health() != HealthReacquiring {
		t.Fatalf("health %s after first clean frame, want reacquiring", det.Health())
	}
	feedClean(t, det, m.Data, 151, cfg.ColdStartFrames+10)
	if det.Health() != HealthTracking {
		t.Fatalf("health %s after recovery window, want tracking", det.Health())
	}
}

func TestDetectorDegradedBeforeFirstSelection(t *testing.T) {
	// A stream that is broken from the very first frame must degrade
	// and, once clean input appears, fall back to Acquiring — there is
	// no previous bin to re-acquire.
	cfg := DefaultConfig()
	det, err := NewDetector(cfg, 40, 25)
	if err != nil {
		t.Fatal(err)
	}
	poison := make([]complex128, 40)
	for i := range poison {
		poison[i] = complex(math.Inf(1), math.NaN())
	}
	for i := 0; i < cfg.DegradedAfterRejects+cfg.MaxGapFrames+5; i++ {
		if _, _, err := det.Feed(poison); err != nil {
			t.Fatal(err)
		}
	}
	if det.Health() != HealthDegraded {
		t.Fatalf("health %s, want degraded", det.Health())
	}
	if _, _, err := det.Feed(make([]complex128, 40)); err != nil {
		t.Fatal(err)
	}
	if det.Health() != HealthAcquiring {
		t.Fatalf("health %s after first clean frame, want acquiring (never selected)", det.Health())
	}
}

func TestDetectorAllZeroFrames(t *testing.T) {
	// An all-zero stream (radio muted, cable pulled at the ADC) must be
	// digested without panics, errors, spurious blinks, or non-finite
	// internal state — zeros are finite and therefore valid input.
	cfg := DefaultConfig()
	det, err := NewDetector(cfg, 40, 25)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]complex128, 40)
	for i := 0; i < cfg.ColdStartFrames*3; i++ {
		ev, ok, err := det.Feed(zero)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ok {
			t.Fatalf("frame %d: blink %+v from an all-zero stream", i, ev)
		}
	}
	in := det.InputStats()
	if in.Rejected != 0 || in.RepairedBins != 0 {
		t.Fatalf("zero frames mis-sanitized: %+v", in)
	}
	if det.Health() == HealthDegraded {
		t.Fatal("all-zero input is valid and must not degrade the stream")
	}
	if z, _, ok := det.CurrentSample(); ok && !isFinite(z) {
		t.Fatalf("non-finite internal sample %v on zero input", z)
	}
}

func TestDetectorSaturationClamp(t *testing.T) {
	m, _ := syntheticCapture(t, 300, nil, 14)
	cfg := DefaultConfig()
	cfg.SaturationLimit = 2.0 // the synthetic face return peaks below this
	det, err := NewDetector(cfg, m.NumBins(), m.FrameRate)
	if err != nil {
		t.Fatal(err)
	}
	feedClean(t, det, m.Data, 0, 150)
	if got := det.InputStats().ClampedBins; got != 0 {
		t.Fatalf("%d bins clamped on an in-range capture, want 0", got)
	}
	// Rail one bin far past the limit on both components.
	for k := 150; k < 170; k++ {
		frame := append([]complex128(nil), m.Data[k]...)
		frame[5] = complex(1e9, -1e9)
		if _, _, err := det.Feed(frame); err != nil {
			t.Fatal(err)
		}
	}
	in := det.InputStats()
	if in.ClampedBins != 20 {
		t.Fatalf("%d bins clamped, want 20", in.ClampedBins)
	}
	if in.Rejected != 0 {
		t.Fatalf("%d frames rejected, want 0 (saturation is repaired, not fatal)", in.Rejected)
	}
	if det.Health() != HealthTracking {
		t.Fatalf("health %s through saturation, want tracking", det.Health())
	}
	// The clamp must actually bound what enters the pipeline: the last
	// accepted copy of the railed bin sits at the limit.
	if got := cmplx.Abs(det.lastGood.At(5)); got > cfg.SaturationLimit*math.Sqrt2+1e-9 {
		t.Fatalf("railed bin entered pipeline at magnitude %g, limit %g", got, cfg.SaturationLimit)
	}
}

func TestHealthStateString(t *testing.T) {
	want := map[HealthState]string{
		HealthAcquiring:   "acquiring",
		HealthTracking:    "tracking",
		HealthReacquiring: "reacquiring",
		HealthDegraded:    "degraded",
		HealthState(99):   "unknown",
	}
	for h, s := range want {
		if h.String() != s {
			t.Fatalf("HealthState(%d).String() = %q, want %q", h, h.String(), s)
		}
	}
}
