package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// arcSample returns a point on the circle (center, radius) at angle a
// plus isotropic noise.
func arcSample(center complex128, radius, a, sigma float64, rng *rand.Rand) complex128 {
	p := center + cmplx.Rect(radius, a)
	if sigma > 0 {
		p += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return p
}

func TestTrackerRecoversCircleCenter(t *testing.T) {
	tr, err := NewTracker(200, 10, 50, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	center := complex(2, -1)
	const radius = 1.5
	var lastDist float64
	var tracking bool
	for i := 0; i < 600; i++ {
		// Oscillating arc phase, like respiration-driven rotation.
		a := 0.5 * math.Sin(float64(i)*0.05)
		d, ok := tr.Push(arcSample(center, radius, a, 0.005, rng))
		if ok {
			tracking = true
			lastDist = d
		}
	}
	if !tracking {
		t.Fatal("tracker never produced distances")
	}
	c, ok := tr.Center()
	if !ok {
		t.Fatal("no centre after 600 samples")
	}
	if cmplx.Abs(c-center) > 0.15 {
		t.Fatalf("centre error %g", cmplx.Abs(c-center))
	}
	if math.Abs(tr.Radius()-radius) > 0.15 {
		t.Fatalf("radius %g, want %g", tr.Radius(), radius)
	}
	if math.Abs(lastDist-radius) > 0.15 {
		t.Fatalf("distance %g, want ~radius %g", lastDist, radius)
	}
	if !tr.Mature() {
		t.Fatal("tracker should be mature after filling its window")
	}
	if tr.FitCount() == 0 {
		t.Fatal("no fits recorded")
	}
}

func TestTrackerNoOutputBeforeMinFit(t *testing.T) {
	tr, err := NewTracker(100, 10, 50, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 49; i++ {
		if _, ok := tr.Push(arcSample(1, 1, float64(i)*0.02, 0.01, rng)); ok {
			t.Fatalf("distance produced at sample %d, before minFit", i)
		}
	}
}

func TestTrackerSeedStartsImmediately(t *testing.T) {
	tr, err := NewTracker(100, 10, 50, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	history := make([]complex128, 80)
	for i := range history {
		history[i] = arcSample(0, 2, float64(i)*0.01, 0.005, rng)
	}
	tr.Seed(history)
	if _, ok := tr.Center(); !ok {
		t.Fatal("seeded tracker should have a fit")
	}
	if _, ok := tr.Push(arcSample(0, 2, 0.5, 0.005, rng)); !ok {
		t.Fatal("seeded tracker should emit distances immediately")
	}
}

func TestTrackerReset(t *testing.T) {
	tr, _ := NewTracker(100, 10, 50, 0.25)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 120; i++ {
		tr.Push(arcSample(0, 1, float64(i)*0.01, 0.01, rng))
	}
	tr.Reset()
	if _, ok := tr.Center(); ok {
		t.Fatal("reset tracker should have no fit")
	}
	if tr.Mature() {
		t.Fatal("reset tracker should not be mature")
	}
	if tr.Radius() != 0 {
		t.Fatal("reset tracker should have zero radius")
	}
}

func TestTrackerRejectsRadiusJumps(t *testing.T) {
	// Feed a clean arc, then inject a window of wildly different
	// geometry: the first few refits must hold the old estimate.
	tr, _ := NewTracker(100, 10, 30, 0.5)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		tr.Push(arcSample(0, 1, float64(i)*0.02, 0.002, rng))
	}
	r0 := tr.Radius()
	// A handful of far-out samples within one refit interval.
	for i := 0; i < 10; i++ {
		tr.Push(arcSample(50, 30, float64(i)*0.3, 0.002, rng))
	}
	if math.Abs(tr.Radius()-r0) > r0*0.9 {
		t.Fatalf("radius leapt from %g to %g despite the sanity gate", r0, tr.Radius())
	}
}

func TestTrackerConstructorErrors(t *testing.T) {
	if _, err := NewTracker(3, 10, 5, 0.2); err == nil {
		t.Fatal("tiny window must be rejected")
	}
	if _, err := NewTracker(100, 0, 5, 0.2); err == nil {
		t.Fatal("zero refit interval must be rejected")
	}
	if _, err := NewTracker(100, 10, 5, 0); err == nil {
		t.Fatal("zero blend must be rejected")
	}
	if _, err := NewTracker(100, 10, 5, 1.2); err == nil {
		t.Fatal("blend > 1 must be rejected")
	}
}

func TestTrackerBlinkVisibleInDistance(t *testing.T) {
	// The whole point: a radial excursion (amplitude change) shows in
	// the distance waveform while arc rotation does not.
	tr, _ := NewTracker(300, 10, 50, 0.25)
	rng := rand.New(rand.NewSource(6))
	center := complex(1, 1)
	var quiet []float64
	for i := 0; i < 500; i++ {
		a := 0.4 * math.Sin(float64(i)*0.04)
		if d, ok := tr.Push(arcSample(center, 2, a, 0.003, rng)); ok && i > 300 {
			quiet = append(quiet, d)
		}
	}
	// Radial excursion of 0.2 (10% of the radius).
	var bump float64
	for i := 0; i < 5; i++ {
		d, ok := tr.Push(center + cmplx.Rect(2.2, 0.1))
		if ok {
			bump = d
		}
	}
	var mean float64
	for _, v := range quiet {
		mean += v
	}
	mean /= float64(len(quiet))
	if bump-mean < 0.15 {
		t.Fatalf("blink excursion %g barely above quiet mean %g", bump, mean)
	}
}
