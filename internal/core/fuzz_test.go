package core

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzLEVD drives the blink detector with arbitrary distance waveforms
// and checks its structural invariants: it never panics, event times
// are non-negative and non-decreasing, durations stay inside the
// physiological clamp, and confidence always exceeds one (an event
// fires only above threshold).
func FuzzLEVD(f *testing.F) {
	ramp := make([]byte, 0, 512*8)
	for i := 0; i < 512; i++ {
		v := 0.001 * math.Sin(float64(i)/7)
		if i%100 < 8 {
			v += 0.02 // blink-like bumps
		}
		ramp = binary.LittleEndian.AppendUint64(ramp, math.Float64bits(v))
	}
	f.Add(ramp)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f}) // +Inf sample
	f.Fuzz(func(t *testing.T, data []byte) {
		const fps = 100.0
		l, err := NewLEVD(DefaultConfig(), fps)
		if err != nil {
			t.Fatal(err)
		}
		// 2048 samples is 20 s at the test fps — enough to cover sigma
		// priming, detection and refractory. Longer inputs hit the
		// detector's worst case (sigma pinned at zero re-sorts the full
		// MAD window every frame) and stall fuzzing throughput.
		n := len(data) / 8
		if n > 2048 {
			n = 2048
		}
		lastTime := math.Inf(-1)
		checkEvent := func(ev BlinkEvent) {
			if ev.Time < 0 {
				t.Fatalf("event time %g is negative", ev.Time)
			}
			if ev.Time < lastTime {
				t.Fatalf("event time %g precedes previous event %g", ev.Time, lastTime)
			}
			lastTime = ev.Time
			if ev.Duration < 0.075 || ev.Duration > 1.5 {
				t.Fatalf("duration %g outside physiological clamp [0.075, 1.5]", ev.Duration)
			}
			if !(ev.Confidence > 1) && !math.IsNaN(ev.Confidence) {
				t.Fatalf("confidence %g not above 1", ev.Confidence)
			}
		}
		for i := 0; i < n; i++ {
			d := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			if math.IsNaN(d) || math.IsInf(d, 0) {
				// The tracker feeds the detector |z - center|, which is
				// finite by construction; clamp rather than skip so the
				// stream keeps exercising state transitions.
				d = 0
			}
			if ev, ok := l.Push(d, i); ok {
				checkEvent(ev)
			}
		}
		if ev, ok := l.Flush(); ok {
			checkEvent(ev)
		}
	})
}
