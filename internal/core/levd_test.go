package core

import (
	"math"
	"math/rand"
	"testing"
)

// levdForTest builds an LEVD with a small detrend/sigma setup at 25 fps.
func levdForTest(t *testing.T, mutate func(*Config)) *LEVD {
	t.Helper()
	cfg := DefaultConfig()
	// A clean separation floor: these tests exercise the detection
	// mechanics, not threshold statistics.
	cfg.MinThreshold = 0.1
	cfg.MinThresholdFrac = 0
	if mutate != nil {
		mutate(&cfg)
	}
	l, err := NewLEVD(cfg, 25)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// feedWaveform pushes samples and collects emitted events.
func feedWaveform(l *LEVD, w []float64) []BlinkEvent {
	var events []BlinkEvent
	for i, v := range w {
		if ev, ok := l.Push(v, i); ok {
			events = append(events, ev)
		}
	}
	if ev, ok := l.Flush(); ok {
		events = append(events, ev)
	}
	return events
}

// syntheticWaveform builds a noisy baseline with raised-cosine bumps at
// the given frame indices.
func syntheticWaveform(n int, noise float64, bumps []int, bumpAmp float64, bumpWidth int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 + rng.NormFloat64()*noise
	}
	for _, b := range bumps {
		for i := 0; i < bumpWidth; i++ {
			idx := b + i
			if idx >= n {
				break
			}
			w[idx] += bumpAmp * 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(bumpWidth)))
		}
	}
	return w
}

func TestLEVDDetectsBumps(t *testing.T) {
	l := levdForTest(t, nil)
	bumps := []int{200, 350, 500, 700}
	w := syntheticWaveform(900, 0.004, bumps, 0.3, 8, 1)
	events := feedWaveform(l, w)
	if len(events) != len(bumps) {
		t.Fatalf("detected %d events, want %d: %+v", len(events), len(bumps), events)
	}
	for i, ev := range events {
		if math.Abs(ev.Time*25-float64(bumps[i])) > 12 {
			t.Fatalf("event %d at frame %.0f, want near %d", i, ev.Time*25, bumps[i])
		}
		if ev.Amplitude < 0.1 {
			t.Fatalf("event %d amplitude %g too small", i, ev.Amplitude)
		}
		if ev.Confidence <= 1 {
			t.Fatalf("event %d confidence %g, want > 1", i, ev.Confidence)
		}
	}
}

func TestLEVDQuietSignalNoEvents(t *testing.T) {
	l := levdForTest(t, nil)
	w := syntheticWaveform(1500, 0.005, nil, 0, 0, 2)
	if events := feedWaveform(l, w); len(events) != 0 {
		t.Fatalf("%d false events on pure noise", len(events))
	}
}

func TestLEVDQuietSignalDefaultFloors(t *testing.T) {
	// With the production floors, pure noise at the thermal level must
	// trigger at most a stray event or two per minute.
	cfg := DefaultConfig()
	l, err := NewLEVD(cfg, 25)
	if err != nil {
		t.Fatal(err)
	}
	w := syntheticWaveform(1500, 0.002, nil, 0, 0, 2)
	events := feedWaveform(l, w)
	if len(events) > 6 {
		t.Fatalf("%d false events per minute on thermal noise", len(events))
	}
	for _, e := range events {
		if e.Confidence > 3 {
			t.Fatalf("noise event with confidence %g: downstream gating would trust it", e.Confidence)
		}
	}
}

func TestLEVDRefractoryMergesDoubleEdges(t *testing.T) {
	// One wide bump (slow closure and reopening) must yield exactly
	// one event, with a duration reflecting its extent.
	l := levdForTest(t, nil)
	w := syntheticWaveform(800, 0.003, []int{400}, 0.4, 12, 3)
	events := feedWaveform(l, w)
	if len(events) != 1 {
		t.Fatalf("wide bump produced %d events, want 1", len(events))
	}
	if events[0].Duration < 0.3 {
		t.Fatalf("wide bump duration %g, want > 0.3 s", events[0].Duration)
	}
}

func TestLEVDDurationSeparatesWidths(t *testing.T) {
	// Drowsy-length bumps must report longer durations than short
	// awake blinks.
	short := feedWaveform(levdForTest(t, nil), syntheticWaveform(600, 0.003, []int{300}, 0.4, 6, 4))
	long := feedWaveform(levdForTest(t, nil), syntheticWaveform(600, 0.003, []int{300}, 0.4, 20, 4))
	if len(short) != 1 || len(long) < 1 {
		t.Fatalf("events %d/%d, want 1 and >=1", len(short), len(long))
	}
	if long[0].Duration <= short[0].Duration {
		t.Fatalf("long bump duration %g not above short %g", long[0].Duration, short[0].Duration)
	}
	// An extremely long closure may leave a low-amplitude detrend echo
	// after it; the primary detection must dominate it.
	for _, e := range long[1:] {
		if e.Amplitude > long[0].Amplitude/2 {
			t.Fatalf("echo amplitude %g rivals the primary %g", e.Amplitude, long[0].Amplitude)
		}
	}
}

func TestLEVDSigmaRobustToSparseOutliers(t *testing.T) {
	l := levdForTest(t, nil)
	w := syntheticWaveform(1200, 0.004, []int{300, 600, 900}, 0.5, 8, 5)
	feedWaveform(l, w)
	// Sigma must reflect the noise floor, not the 0.5 bumps.
	if l.Sigma() > 0.05 {
		t.Fatalf("sigma %g inflated by blink outliers", l.Sigma())
	}
}

func TestLEVDThresholdFloors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinThreshold = 0.25
	l, err := NewLEVD(cfg, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Threshold(); got != 0.25 {
		t.Fatalf("threshold %g, want MinThreshold floor 0.25", got)
	}
	l.SetFloor(0.4)
	if got := l.Threshold(); got != 0.4 {
		t.Fatalf("threshold %g, want dynamic floor 0.4", got)
	}
}

func TestLEVDFrozenSigma(t *testing.T) {
	l := levdForTest(t, nil)
	feedWaveform(l, syntheticWaveform(600, 0.004, nil, 0, 0, 6))
	sigma := l.Sigma()
	if sigma == 0 {
		t.Fatal("sigma not primed")
	}
	l.SetFrozen(true)
	// Loud garbage must not move the frozen estimate.
	feedWaveform(l, syntheticWaveform(600, 0.5, nil, 0, 0, 7))
	if l.Sigma() != sigma {
		t.Fatalf("frozen sigma moved from %g to %g", sigma, l.Sigma())
	}
	l.SetFrozen(false)
	feedWaveform(l, syntheticWaveform(600, 0.5, nil, 0, 0, 8))
	if l.Sigma() == sigma {
		t.Fatal("unfrozen sigma should adapt")
	}
}

func TestLEVDResetSigma(t *testing.T) {
	l := levdForTest(t, nil)
	feedWaveform(l, syntheticWaveform(600, 0.004, nil, 0, 0, 9))
	if l.Sigma() == 0 {
		t.Fatal("sigma not primed")
	}
	l.ResetSigma()
	if l.Sigma() != 0 {
		t.Fatal("ResetSigma must clear the estimate")
	}
}

func TestLEVDFlushPending(t *testing.T) {
	// A bump right at the stream end must still come out via Flush.
	l := levdForTest(t, nil)
	w := syntheticWaveform(520, 0.003, []int{500}, 0.4, 8, 10)
	var live int
	for i, v := range w {
		if _, ok := l.Push(v, i); ok {
			live++
		}
	}
	if _, ok := l.Flush(); !ok && live == 0 {
		t.Fatal("trailing bump lost: neither emitted nor flushed")
	}
	// Flush is idempotent.
	if _, ok := l.Flush(); ok {
		t.Fatal("second flush must be empty")
	}
}

func TestLEVDTimestampAtOnset(t *testing.T) {
	l := levdForTest(t, nil)
	const bumpAt = 400
	w := syntheticWaveform(700, 0.002, []int{bumpAt}, 0.5, 10, 11)
	events := feedWaveform(l, w)
	if len(events) != 1 {
		t.Fatalf("%d events, want 1", len(events))
	}
	// The event timestamp must sit at the bump onset, not its tail.
	if f := events[0].Time * 25; f < bumpAt-8 || f > bumpAt+10 {
		t.Fatalf("event frame %.0f, want near onset %d", f, bumpAt)
	}
}

func TestNewLEVDErrors(t *testing.T) {
	if _, err := NewLEVD(DefaultConfig(), 0); err == nil {
		t.Fatal("zero fps must be rejected")
	}
	bad := DefaultConfig()
	bad.ThresholdK = -1
	if _, err := NewLEVD(bad, 25); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}
