package core

import (
	"fmt"

	"blinkradar/internal/iq"
)

// Tracker maintains the "viewing position" of Section IV-E: the centre
// of the Pratt-fitted circle through the selected bin's recent I/Q
// samples. Each new sample is reduced to its distance from that centre,
// which cancels the phase rotation caused by respiration, BCG head
// motion and vehicle vibration (all of which move samples along the
// arc) while exposing the amplitude signature of a blink (which moves
// samples radially).
//
// Short arcs constrain the circle centre poorly in the radial
// direction, so each refit's centre is blended into the running
// estimate rather than adopted outright; this keeps the distance
// waveform free of refit steps that would masquerade as blinks.
type Tracker struct {
	window    []complex128
	scratch   []complex128 // refit workspace, window-sized, tracker-owned
	mom       iq.SlidingMoments
	pos       int
	count     int
	minFit    int
	refitEach int
	blend     float64
	sinceFit  int
	center    complex128
	radius    float64
	haveFit   bool
	fitCount  int
	rejects   int
}

// NewTracker creates a tracker fitting over up to windowFrames samples,
// starting once minFit samples have arrived and refitting every
// refitInterval pushes with the given centre blend factor in (0, 1].
func NewTracker(windowFrames, refitInterval, minFit int, blend float64) (*Tracker, error) {
	if windowFrames < 5 {
		return nil, fmt.Errorf("core: tracker window must be at least 5, got %d", windowFrames)
	}
	if refitInterval <= 0 {
		return nil, fmt.Errorf("core: refit interval must be positive, got %d", refitInterval)
	}
	if minFit < 5 {
		minFit = 5
	}
	if minFit > windowFrames {
		minFit = windowFrames
	}
	if blend <= 0 || blend > 1 {
		return nil, fmt.Errorf("core: blend must be in (0, 1], got %g", blend)
	}
	return &Tracker{
		window:    make([]complex128, windowFrames),
		scratch:   make([]complex128, windowFrames),
		mom:       iq.NewSlidingMoments(windowFrames),
		minFit:    minFit,
		refitEach: refitInterval,
		blend:     blend,
	}, nil
}

// store pushes one sample into the window ring and the sliding moment
// sums, evicting the overwritten sample once full and renormalizing the
// sums on the accumulator's schedule (every window-length of evictions,
// so the exact pass amortises to O(1) per frame).
//
//blinkradar:hotpath
func (t *Tracker) store(z complex128) {
	if t.count == len(t.window) {
		t.mom.Evict(t.window[t.pos])
	} else {
		t.count++
	}
	t.window[t.pos] = z
	t.mom.Push(z)
	t.pos++
	if t.pos == len(t.window) {
		t.pos = 0
	}
	if t.mom.NeedsRenorm() {
		t.mom.Renormalize(t.samplesInto())
	}
}

// Push adds one I/Q sample. Once enough samples have accumulated to
// fit, it returns the sample's distance from the viewing position and
// true; before the first fit it returns (0, false).
//
//blinkradar:hotpath
func (t *Tracker) Push(z complex128) (float64, bool) {
	t.store(z)
	t.sinceFit++
	if !t.haveFit {
		if t.count >= t.minFit {
			t.refit()
		}
	} else if t.sinceFit >= t.refitEach {
		// Keep refitting even after convergence: the fitted circle's
		// apparent centre shifts systematically as the arc segment
		// drifts with posture (the radius varies slightly along the
		// arc), so the viewing position must track the local geometry.
		// Heavy blending keeps each update small.
		t.refit()
	}
	if !t.haveFit {
		return 0, false
	}
	d := z - t.center
	return hypot(real(d), imag(d)), true
}

// refit re-estimates the viewing position from the current window and
// blends it into the running estimate. The first-pass circle is solved
// in O(1) from the sliding moment sums — no pass over the samples — so
// the only O(window) work left is the trim: samples far off the
// first-pass circle (mostly blink transients, ~15% of frames) are
// rejected with a square-root-free band test, their sums accumulated
// into a moment-space complement, and the circle refitted from the
// difference of sums (FitPrattExcluding) — so blinks do not drag the
// centre, at O(window) comparisons but O(1) fit cost. A degenerate fit keeps the previous centre (the paper notes
// accuracy is poor with too few samples, so a stale-but-valid centre
// beats a bad one).
func (t *Tracker) refit() {
	c, err := t.mom.FitPratt()
	t.sinceFit = 0
	if err != nil {
		return
	}
	// Sanity gates: a short, noisy arc can yield a degenerate circle
	// whose centre sits inside the sample cloud (radius comparable to
	// the cloud spread), or a radius wildly different from the running
	// estimate. Such fits would scramble the distance waveform; skip
	// them, but give up after several consecutive rejections so a
	// genuinely changed geometry can still re-converge.
	// Gates only apply once the window is full: warm-up fits on short
	// arcs legitimately fluctuate, and burning the rejection budget on
	// them would let genuinely bad fits straight through later.
	// The gates run on the first-pass fit, before the trim, so a
	// rejected refit costs O(1) and never touches the sample window.
	if t.haveFit && t.count == len(t.window) {
		// Degenerate: the circle explains little of the cloud's
		// structure (radial residuals comparable to the raw spread).
		cloudStd := sqrtFast(t.mom.Variance2D())
		degenerate := c.RMSE > 0.5*cloudStd
		// Jump: the radius leapt away from the running estimate, the
		// signature of a window polluted by a large transient.
		jump := c.Radius > 1.8*t.radius || c.Radius < t.radius/1.8
		if (degenerate || jump) && t.rejects < 5 {
			t.rejects++
			return
		}
	}
	t.rejects = 0
	if c.RMSE > 0 {
		// The band test compares squared distances (no square root per
		// sample); lo2 = -1 accepts everything radially inward when the
		// band floor is negative. The window ring is scanned in storage
		// order — only the set of rejected samples matters, not their
		// order — and the rejected minority is accumulated into a
		// moment-space complement, so the trimmed refit below is solved
		// from sums without revisiting the kept samples.
		lo := c.Radius - 3*c.RMSE
		hi := c.Radius + 3*c.RMSE
		lo2 := -1.0
		if lo > 0 {
			lo2 = lo * lo
		}
		hi2 := hi * hi
		var sub iq.SlidingMoments
		for _, z := range t.window[:t.count] {
			d := z - c.Center
			r2 := real(d)*real(d) + imag(d)*imag(d)
			if r2 > lo2 && r2 < hi2 {
				continue
			}
			sub.Push(z)
		}
		if t.count-sub.Count() >= t.count/2 {
			if c2, err2 := t.mom.FitPrattExcluding(&sub); err2 == nil {
				c = c2
			}
		}
	}
	if !t.haveFit {
		t.center = c.Center
		t.radius = c.Radius
		t.haveFit = true
	} else {
		// Early fits see short, ill-conditioned arcs, so converge
		// quickly at first (blend ~ 1/fitCount) and settle to the
		// configured damping once the window has matured.
		blend := 1 / float64(t.fitCount+1)
		if blend < t.blend {
			blend = t.blend
		}
		t.center += complex(blend, 0) * (c.Center - t.center)
		t.radius += blend * (c.Radius - t.radius)
	}
	t.fitCount++
}

// samplesInto fills the tracker-owned scratch with the window contents,
// oldest first, and returns the filled prefix. The scratch is sized at
// construction, so this never allocates; callers may reorder the
// returned slice freely (the trim pass compacts it in place).
//
//blinkradar:hotpath
func (t *Tracker) samplesInto() []complex128 {
	out := t.scratch[:t.count]
	start := t.pos - t.count
	for i := 0; i < t.count; i++ {
		idx := start + i
		if idx < 0 {
			idx += len(t.window)
		}
		out[i] = t.window[idx%len(t.window)]
	}
	return out
}

// Seed pre-fills the window with historical samples (e.g. the selection
// ring) so tracking can begin without re-accumulating a full window.
func (t *Tracker) Seed(history []complex128) {
	for _, z := range history {
		t.store(z)
	}
	if t.count >= t.minFit {
		t.refit()
	}
}

// matureAt is the sample count at which the viewing position is
// considered converged (the window itself may be much longer).
const matureAt = 250

// Mature reports whether enough samples have accumulated for the
// viewing position to be past its start-up transient.
func (t *Tracker) Mature() bool {
	n := matureAt
	if n > len(t.window) {
		n = len(t.window)
	}
	return t.count >= n
}

// Center returns the current viewing position and whether a fit exists.
func (t *Tracker) Center() (complex128, bool) { return t.center, t.haveFit }

// Radius returns the current fitted radius (0 before the first fit).
func (t *Tracker) Radius() float64 { return t.radius }

// FitCount returns how many successful fits have been performed.
func (t *Tracker) FitCount() int { return t.fitCount }

// Reset clears all state for a full restart.
func (t *Tracker) Reset() {
	t.rejects = 0
	t.pos = 0
	t.count = 0
	t.sinceFit = 0
	t.center = 0
	t.radius = 0
	t.haveFit = false
	t.mom.Reset()
}

func hypot(a, b float64) float64 {
	// math.Hypot handles overflow gracefully but is slower; the
	// magnitudes here are O(1), so the direct form is safe.
	return sqrtFast(a*a + b*b)
}
