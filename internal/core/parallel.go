package core

import (
	"runtime"
	"sync"
)

// resolveWorkers maps a parallelism knob to an effective worker count:
// <= 0 selects GOMAXPROCS, and the count never exceeds the number of
// work items.
func resolveWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelChunks splits n items into contiguous chunks and runs fn on
// each chunk from a bounded worker pool. With one worker (or one item)
// fn runs inline on the calling goroutine, so serial callers pay no
// scheduling or allocation overhead. The first error wins; all workers
// finish before it is returned.
func parallelChunks(n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	workers = resolveWorkers(workers, n)
	if workers == 1 {
		return fn(0, n)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := fn(lo, hi); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}
