package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"blinkradar/internal/rf"
)

// syntheticCapture builds a frame matrix with one arc-tracing "face"
// bin carrying blink bumps, plus static clutter and noise — a minimal
// stand-in for the scenario package that keeps core tests free of the
// scenario dependency.
func syntheticCapture(t *testing.T, frames int, blinkFrames []int, seed int64) (*rf.FrameMatrix, int) {
	t.Helper()
	const bins = 40
	const faceBin = 20
	m, err := rf.NewFrameMatrix(frames, bins, 25, 0.0107)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	inBlink := func(k int) float64 {
		for _, b := range blinkFrames {
			if k >= b && k < b+6 {
				// Raised-cosine closure.
				return 0.5 * (1 - math.Cos(2*math.Pi*float64(k-b)/6))
			}
		}
		return 0
	}
	for k := 0; k < frames; k++ {
		tt := float64(k) / 25
		row := m.Data[k]
		// Static clutter across a few bins.
		row[3] += 1.5
		row[30] += complex(0.8, -0.6)
		// Face return: arc rotation from vital signs plus the blink's
		// amplitude-and-phase excursion.
		arc := 0.3*math.Sin(2*math.Pi*0.25*tt) + 0.1*math.Sin(2*math.Pi*1.2*tt)
		c := inBlink(k)
		amp := 1.4 + 0.35*c
		phase := arc + 0.8*c
		row[faceBin] += cmplx.Rect(amp, phase)
		// Thermal noise everywhere.
		for b := range row {
			row[b] += complex(rng.NormFloat64()*0.004, rng.NormFloat64()*0.004)
		}
	}
	return m, faceBin
}

func TestDetectorEndToEndSynthetic(t *testing.T) {
	blinks := []int{500, 600, 700, 820, 950, 1100, 1250, 1400}
	m, faceBin := syntheticCapture(t, 1500, blinks, 1)
	events, det, err := Detect(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if got := det.Bin(); got < faceBin-2 || got > faceBin+2 {
		t.Fatalf("selected bin %d, want near %d", got, faceBin)
	}
	// Every injected blink after warm-up must be detected within 0.5 s.
	detected := 0
	for _, b := range blinks {
		want := float64(b) / 25
		for _, e := range events {
			if math.Abs(e.Time-want) < 0.5 {
				detected++
				break
			}
		}
	}
	if detected < len(blinks)-1 {
		t.Fatalf("detected %d of %d injected blinks: %+v", detected, len(blinks), events)
	}
	if det.Frame() != 1500 {
		t.Fatalf("frame counter %d", det.Frame())
	}
}

func TestDetectorQuietScene(t *testing.T) {
	m, _ := syntheticCapture(t, 1200, nil, 2)
	events, _, err := Detect(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) > 3 {
		t.Fatalf("%d false detections on a blink-free scene", len(events))
	}
}

func TestDetectorFeedValidation(t *testing.T) {
	det, err := NewDetector(DefaultConfig(), 40, 25)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := det.Feed(make([]complex128, 39)); err == nil {
		t.Fatal("wrong frame width must be rejected")
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(DefaultConfig(), 4, 25); err == nil {
		t.Fatal("fewer bins than guard must be rejected")
	}
	if _, err := NewDetector(DefaultConfig(), 40, 0); err == nil {
		t.Fatal("zero frame rate must be rejected")
	}
	bad := DefaultConfig()
	bad.ThresholdK = 0
	if _, err := NewDetector(bad, 40, 25); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestDetectorTrace(t *testing.T) {
	m, _ := syntheticCapture(t, 600, []int{400}, 3)
	det, err := NewDetector(DefaultConfig(), m.NumBins(), m.FrameRate)
	if err != nil {
		t.Fatal(err)
	}
	det.EnableTrace()
	for _, frame := range m.Data {
		if _, _, err := det.Feed(frame); err != nil {
			t.Fatal(err)
		}
	}
	dist, thr := det.Trace()
	if len(dist) != 600 || len(thr) != 600 {
		t.Fatalf("trace lengths %d/%d, want 600", len(dist), len(thr))
	}
	// The tail of the trace must carry real distances.
	if dist[590] == 0 {
		t.Fatal("trace tail is empty")
	}
}

func TestDetectorBinBeforeSelection(t *testing.T) {
	det, err := NewDetector(DefaultConfig(), 40, 25)
	if err != nil {
		t.Fatal(err)
	}
	if det.Bin() != -1 {
		t.Fatalf("bin before selection %d, want -1", det.Bin())
	}
}

func TestDetectorInputNotRetained(t *testing.T) {
	det, err := NewDetector(DefaultConfig(), 40, 25)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]complex128, 40)
	frame[5] = 1 + 1i
	if _, _, err := det.Feed(frame); err != nil {
		t.Fatal(err)
	}
	if frame[5] != 1+1i {
		t.Fatal("Feed modified the caller's frame")
	}
}

func TestDetectOfflineMatchesStreaming(t *testing.T) {
	m, _ := syntheticCapture(t, 900, []int{500, 700}, 4)
	offline, _, err := Detect(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(DefaultConfig(), m.NumBins(), m.FrameRate)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []BlinkEvent
	for _, frame := range m.Data {
		if ev, ok, err := det.Feed(frame); err != nil {
			t.Fatal(err)
		} else if ok {
			streamed = append(streamed, ev)
		}
	}
	if ev, ok := det.Flush(); ok {
		streamed = append(streamed, ev)
	}
	if len(offline) != len(streamed) {
		t.Fatalf("offline %d events, streaming %d", len(offline), len(streamed))
	}
	for i := range offline {
		if offline[i] != streamed[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, offline[i], streamed[i])
		}
	}
}

func TestMotionRestartPathAllocFree(t *testing.T) {
	// The motion-restart gate runs the running median on every frame
	// once its two-second window fills; the old batch median copied the
	// buffer per frame, so this path specifically must stay at 0
	// allocs/frame, not just the pre-warmup frames other tests hit.
	m, _ := syntheticCapture(t, 600, nil, 7)
	cfg := DefaultConfig()
	// Keep periodic reselection (which walks candidate windows) out of
	// the measured frames so a single allocating frame can't hide in
	// the AllocsPerRun average.
	cfg.ReselectIntervalFrames = 1 << 30
	det, err := NewDetector(cfg, m.NumBins(), m.FrameRate)
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg.ColdStartFrames + int(m.FrameRate*2) + 2
	for k := 0; k < warm; k++ {
		if _, _, err := det.Feed(m.Data[k]); err != nil {
			t.Fatal(err)
		}
	}
	if !det.med.Full() {
		t.Fatalf("median window not full after %d frames: %d/%d",
			warm, det.med.Count(), det.med.Cap())
	}
	next := warm
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := det.Feed(m.Data[next]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Fatalf("motion-median frames allocate %g times/frame, want 0", allocs)
	}
}

func TestTail(t *testing.T) {
	s := []complex128{1, 2, 3}
	if got := tail(s, 2); len(got) != 2 || got[0] != 2 {
		t.Fatalf("tail %v", got)
	}
	if got := tail(s, 5); len(got) != 3 {
		t.Fatalf("overlong tail %v", got)
	}
}

// TestDetectorRecoversFromPostureJump injects a large mid-capture step
// in the face geometry (bin shift plus amplitude change) and verifies
// the adaptive machinery — reselection or restart — recovers detection
// on the far side.
func TestDetectorRecoversFromPostureJump(t *testing.T) {
	const bins = 40
	const fps = 25.0
	frames := 3000
	m, err := rf.NewFrameMatrix(frames, bins, fps, 0.0107)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	blinkFrames := []int{500, 700, 900, 2200, 2400, 2600, 2800}
	inBlink := func(k int) float64 {
		for _, b := range blinkFrames {
			if k >= b && k < b+6 {
				return 0.5 * (1 - math.Cos(2*math.Pi*float64(k-b)/6))
			}
		}
		return 0
	}
	for k := 0; k < frames; k++ {
		tt := float64(k) / fps
		row := m.Data[k]
		row[3] += 1.5
		// The face sits at bin 18 for the first minute, then jumps
		// five bins deeper (a seat-position change).
		faceBin := 18
		if k >= 1500 {
			faceBin = 23
		}
		arc := 0.3*math.Sin(2*math.Pi*0.25*tt) + 0.1*math.Sin(2*math.Pi*1.2*tt)
		c := inBlink(k)
		row[faceBin] += cmplx.Rect(1.4+0.35*c, arc+0.8*c)
		for b := range row {
			row[b] += complex(rng.NormFloat64()*0.004, rng.NormFloat64()*0.004)
		}
	}
	events, det, err := Detect(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if det.Restarts()+det.BinSwitches() == 0 {
		t.Fatal("no adaptive response to a five-bin posture jump")
	}
	// Detection must work after the jump (allow the re-acquisition
	// window to eat the first post-jump blink).
	late := 0
	for _, b := range blinkFrames[3:] {
		want := float64(b) / fps
		for _, e := range events {
			if math.Abs(e.Time-want) < 0.5 {
				late++
				break
			}
		}
	}
	if late < 3 {
		t.Fatalf("only %d of 4 post-jump blinks detected (restarts=%d switches=%d)",
			late, det.Restarts(), det.BinSwitches())
	}
	if got := det.Bin(); got < 21 || got > 25 {
		t.Fatalf("tracker ended on bin %d, want near the new face bin 23", got)
	}
}

// TestDetectorCurrentSample verifies the vital-sign tap.
func TestDetectorCurrentSample(t *testing.T) {
	det, err := NewDetector(DefaultConfig(), 40, 25)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := det.CurrentSample(); ok {
		t.Fatal("sample available before bin selection")
	}
	m, _ := syntheticCapture(t, 200, nil, 8)
	for _, frame := range m.Data {
		if _, _, err := det.Feed(frame); err != nil {
			t.Fatal(err)
		}
	}
	if _, bin, ok := det.CurrentSample(); !ok || bin != det.Bin() {
		t.Fatalf("current sample (bin %d, ok %v) inconsistent with Bin() %d", bin, ok, det.Bin())
	}
}
