package core

// Slow-time quantities come in three incompatible dimensions — frame
// counts, wall-clock seconds, and range-bin indices — and PR 6's
// window-drift bug was a frame count standing in for seconds with
// nothing in the types to object. These named unit types make the
// dimension part of the value; the timeunit analyzer forbids crossing
// them except through the rate-carrying helpers below and admits raw
// values only through the //blinkradar:convert constructors.

// Seconds is wall-clock slow time.
//
//blinkradar:unit seconds
type Seconds float64

// Frames counts slow-time radar frames.
//
//blinkradar:unit frames
type Frames int

// Bin indexes a range (fast-time) bin.
//
//blinkradar:unit bin
type Bin int

// SecondsOf admits a raw wall-clock value at an API boundary.
//
//blinkradar:convert
func SecondsOf(v float64) Seconds { return Seconds(v) }

// FramesOf admits a raw frame count at an API boundary.
//
//blinkradar:convert
func FramesOf(n int) Frames { return Frames(n) }

// BinOf admits a raw bin index at an API boundary.
//
//blinkradar:convert
func BinOf(n int) Bin { return Bin(n) }

// Float64 escapes to a raw wall-clock value at an API boundary.
func (s Seconds) Float64() float64 { return float64(s) }

// Int escapes to a raw frame count at an API boundary.
func (f Frames) Int() int { return int(f) }

// Int escapes to a raw bin index at an API boundary.
func (b Bin) Int() int { return int(b) }

// SecondsAt converts a frame count to wall-clock time at rate frames
// per second — the only sanctioned frames→seconds crossing.
func (f Frames) SecondsAt(rate float64) Seconds {
	if rate <= 0 {
		return 0
	}
	return Seconds(float64(f) / rate)
}

// FramesAt converts wall-clock time to a whole frame count at rate
// frames per second, truncating toward zero — the only sanctioned
// seconds→frames crossing.
func (s Seconds) FramesAt(rate float64) Frames {
	return Frames(float64(s) * rate)
}
