package core

import (
	"fmt"

	"blinkradar/internal/dsp"
	"blinkradar/internal/rf"
)

// Preprocessor implements the paper's signal-preprocessing module
// (Section IV-B): noise reduction by a cascading filter and background
// subtraction by a loopback filter. It operates frame by frame so the
// same code serves the offline and real-time paths.
type Preprocessor struct {
	cfg        Config
	background *BackgroundSubtractor
	fir        *dsp.FIRFilter
	scratch    []complex128
}

// NewPreprocessor builds a preprocessor for profiles with the given
// number of range bins at the given frame rate.
func NewPreprocessor(cfg Config, numBins int, frameRate float64) (*Preprocessor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numBins <= 0 || frameRate <= 0 {
		return nil, fmt.Errorf("core: bins and frame rate must be positive, got %d, %g", numBins, frameRate)
	}
	bg, err := NewBackgroundSubtractor(numBins, frameRate, cfg.BackgroundTauSec)
	if err != nil {
		return nil, err
	}
	// The noise-reduction cascade: a Hamming-window low-pass FIR
	// (paper: order 26) followed by a smoothing filter, both along the
	// fast-time (range) axis of each frame. The FIR is only applied
	// when the profile is long enough for the design to make sense.
	var fir *dsp.FIRFilter
	if cfg.EnableFastTimeFIR && numBins > 2*cfg.FIROrder {
		fir, err = dsp.LowPassFIR(cfg.FIROrder, cfg.FIRCutoff, dsp.Hamming)
		if err != nil {
			return nil, err
		}
	}
	return &Preprocessor{
		cfg:        cfg,
		background: bg,
		fir:        fir,
		scratch:    make([]complex128, numBins),
	}, nil
}

// Process denoises and background-subtracts one frame in place.
func (p *Preprocessor) Process(frame []complex128) error {
	if len(frame) != len(p.scratch) {
		return fmt.Errorf("core: frame has %d bins, preprocessor configured for %d", len(frame), len(p.scratch))
	}
	if p.fir != nil {
		copy(frame, p.fir.ApplyComplex(frame))
	}
	smoothFastTime(frame, p.scratch, p.cfg.FastTimeSmoothBins)
	p.background.Apply(frame)
	return nil
}

// Reset clears the background estimate (used after a full restart).
func (p *Preprocessor) Reset() { p.background.Reset() }

// smoothFastTime applies a centred moving average of the given width
// across range bins, writing through scratch. Width 1 is a no-op.
func smoothFastTime(frame, scratch []complex128, width int) {
	if width <= 1 {
		return
	}
	half := width / 2
	n := len(frame)
	copy(scratch, frame)
	for i := 0; i < n; i++ {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		var acc complex128
		for j := lo; j <= hi; j++ {
			acc += scratch[j]
		}
		frame[i] = acc / complex(float64(hi-lo+1), 0)
	}
}

// BackgroundSubtractor removes static clutter with a per-bin loopback
// filter (Section IV-B2): each bin's complex mean over a priming window
// is estimated once and subtracted from every subsequent frame.
// Static reflections — seats, steering wheel, direct path — have a
// time-invariant delay, so a frozen estimate removes them exactly;
// motion-modulated components pass untouched. The estimate is
// deliberately NOT tracked afterwards: a slowly-adapting filter chases
// the motion trajectory itself and smears the arc geometry the tracker
// depends on. Posture drift is the tracker's and restart logic's job.
type BackgroundSubtractor struct {
	primeFrames int
	seen        int
	mean        []complex128
}

// NewBackgroundSubtractor creates a subtractor for numBins bins priming
// over tauSec seconds of frames.
func NewBackgroundSubtractor(numBins int, frameRate, tauSec float64) (*BackgroundSubtractor, error) {
	if numBins <= 0 {
		return nil, fmt.Errorf("core: numBins must be positive, got %d", numBins)
	}
	if frameRate <= 0 || tauSec <= 0 {
		return nil, fmt.Errorf("core: frame rate and tau must be positive, got %g, %g", frameRate, tauSec)
	}
	prime := int(tauSec * frameRate)
	if prime < 1 {
		prime = 1
	}
	return &BackgroundSubtractor{
		primeFrames: prime,
		mean:        make([]complex128, numBins),
	}, nil
}

// Apply subtracts the background estimate from the frame in place.
// During the priming window the frame is accumulated into the estimate
// and the output is zeroed (the detector's cold start covers this
// period anyway).
func (b *BackgroundSubtractor) Apply(frame []complex128) {
	if b.seen < b.primeFrames {
		b.seen++
		inv := complex(1/float64(b.primeFrames), 0)
		for i, v := range frame {
			b.mean[i] += v * inv
			frame[i] = 0
		}
		return
	}
	for i, v := range frame {
		frame[i] = v - b.mean[i]
	}
}

// Background returns a copy of the current clutter estimate.
func (b *BackgroundSubtractor) Background() []complex128 {
	out := make([]complex128, len(b.mean))
	copy(out, b.mean)
	return out
}

// Reset clears the clutter estimate so the next frames re-prime it.
func (b *BackgroundSubtractor) Reset() {
	for i := range b.mean {
		b.mean[i] = 0
	}
	b.seen = 0
}

// PreprocessMatrix applies the full preprocessing chain to a copy of
// the matrix and returns it, leaving the input untouched. This is the
// offline convenience used by experiments and figures.
func PreprocessMatrix(cfg Config, m *rf.FrameMatrix) (*rf.FrameMatrix, error) {
	p, err := NewPreprocessor(cfg, m.NumBins(), m.FrameRate)
	if err != nil {
		return nil, err
	}
	out := m.Clone()
	for _, frame := range out.Data {
		if err := p.Process(frame); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CascadeFilter applies the paper's Fig. 7 noise-reduction cascade — an
// order-`order` Hamming-window low-pass FIR followed by a `smooth`-point
// moving average — to a real-valued waveform. The paper applies it to
// the received baseband fast-time signal; experiments use it to
// regenerate the before/after SNR comparison.
func CascadeFilter(x []float64, order int, cutoff float64, smooth int) ([]float64, error) {
	fir, err := dsp.LowPassFIR(order, cutoff, dsp.Hamming)
	if err != nil {
		return nil, err
	}
	return dsp.MovingAverage(fir.Apply(x), smooth)
}
