package core

import (
	"fmt"

	"blinkradar/internal/dsp"
	"blinkradar/internal/rf"
)

// Preprocessor implements the paper's signal-preprocessing module
// (Section IV-B): noise reduction by a cascading filter and background
// subtraction by a loopback filter. It operates frame by frame so the
// same code serves the offline and real-time paths.
type Preprocessor struct {
	cfg        Config
	background *BackgroundSubtractor
	fir        *dsp.FIRFilter
	scratch    []complex128
	firScratch []complex128

	// Float32 SoA mirrors of the denoise cascade for the real-time
	// planes path (ProcessPlanes). fused32 covers FIR+smoothing in one
	// pass when the fast-time FIR is enabled; ma32 covers
	// smoothing-only. Both nil means denoise is a no-op on this
	// profile.
	fused32      *dsp.FusedCascade
	ma32         *dsp.InPlaceMA32
	planeScratch []float32
}

// NewPreprocessor builds a preprocessor for profiles with the given
// number of range bins at the given frame rate.
func NewPreprocessor(cfg Config, numBins int, frameRate float64) (*Preprocessor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numBins <= 0 || frameRate <= 0 {
		return nil, fmt.Errorf("core: bins and frame rate must be positive, got %d, %g", numBins, frameRate)
	}
	bg, err := NewBackgroundSubtractor(numBins, frameRate, cfg.BackgroundTauSec)
	if err != nil {
		return nil, err
	}
	// The noise-reduction cascade: a Hamming-window low-pass FIR
	// (paper: order 26) followed by a smoothing filter, both along the
	// fast-time (range) axis of each frame. The FIR is only applied
	// when the profile is long enough for the design to make sense.
	var fir *dsp.FIRFilter
	var fused32 *dsp.FusedCascade
	var ma32 *dsp.InPlaceMA32
	smooth := cfg.FastTimeSmoothBins
	if smooth < 1 {
		smooth = 1
	}
	if cfg.EnableFastTimeFIR && numBins > 2*cfg.FIROrder {
		fir, err = dsp.LowPassFIR(cfg.FIROrder, cfg.FIRCutoff, dsp.Hamming)
		if err != nil {
			return nil, err
		}
		// The SoA mirror fuses the same FIR design with the fast-time
		// smoother into one pass per plane (window 1 degenerates to the
		// FIR alone).
		fused32, err = dsp.NewFusedCascade(cfg.FIROrder, cfg.FIRCutoff, smooth)
		if err != nil {
			return nil, err
		}
	} else if smooth > 1 {
		ma32, err = dsp.NewInPlaceMA32(smooth)
		if err != nil {
			return nil, err
		}
	}
	return &Preprocessor{
		cfg:          cfg,
		background:   bg,
		fir:          fir,
		scratch:      make([]complex128, numBins),
		firScratch:   make([]complex128, numBins),
		fused32:      fused32,
		ma32:         ma32,
		planeScratch: make([]float32, numBins),
	}, nil
}

// Process denoises and background-subtracts one frame in place. All
// intermediate buffers are owned by the preprocessor, so the per-frame
// hot path performs no allocations.
//
//blinkradar:hotpath
func (p *Preprocessor) Process(frame []complex128) error {
	if len(frame) != len(p.scratch) {
		return errFrameBins(len(frame), len(p.scratch))
	}
	p.denoise(frame)
	p.background.Apply(frame)
	return nil
}

// denoise runs the allocation-free noise-reduction cascade (fast-time
// FIR plus smoothing) on one frame in place. The frame length must
// already have been validated.
//
//blinkradar:hotpath
func (p *Preprocessor) denoise(frame []complex128) {
	if p.fir != nil {
		p.fir.ApplyComplexInto(p.firScratch, frame) // lengths match by construction
		copy(frame, p.firScratch)
	}
	smoothFastTime(frame, p.scratch, p.cfg.FastTimeSmoothBins)
}

// ProcessPlanes is Process on the float32 SoA frame layout: it
// denoises and background-subtracts one frame of I/Q planes in place.
// This is the real-time hot path — each plane runs the fused Fig. 7
// cascade (or the stand-alone smoother) as a plain real-valued pass,
// and no buffer escapes the preprocessor.
//
//blinkradar:hotpath
func (p *Preprocessor) ProcessPlanes(pi, pq []float32) error {
	if len(pi) != len(p.scratch) || len(pq) != len(p.scratch) {
		n := len(pi)
		if len(pq) != n {
			n = -1
		}
		return errFrameBins(n, len(p.scratch))
	}
	p.denoisePlanes(pi, pq)
	p.background.ApplyPlanes(pi, pq)
	return nil
}

// denoisePlanes runs the noise-reduction cascade on both planes in
// place. The fused kernel cannot run aliased (its FIR stage writes
// output while later samples still read the input), so each plane
// detours through the reusable plane scratch.
//
//blinkradar:hotpath
func (p *Preprocessor) denoisePlanes(pi, pq []float32) {
	switch {
	case p.fused32 != nil:
		copy(p.planeScratch, pi)
		p.fused32.ApplyInto32(pi, p.planeScratch[:len(pi)]) // lengths match by construction
		copy(p.planeScratch, pq)
		p.fused32.ApplyInto32(pq, p.planeScratch[:len(pq)])
	case p.ma32 != nil:
		p.ma32.Apply(pi)
		p.ma32.Apply(pq)
	}
}

// Reset clears the background estimate (used after a full restart).
func (p *Preprocessor) Reset() { p.background.Reset() }

// smoothFastTime applies a centred moving average of the given width
// across range bins, writing through scratch. Width 1 is a no-op.
//
//blinkradar:hotpath
func smoothFastTime(frame, scratch []complex128, width int) {
	if width <= 1 {
		return
	}
	half := width / 2
	n := len(frame)
	copy(scratch, frame)
	for i := 0; i < n; i++ {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		var acc complex128
		for j := lo; j <= hi; j++ {
			acc += scratch[j]
		}
		frame[i] = acc / complex(float64(hi-lo+1), 0)
	}
}

// BackgroundSubtractor removes static clutter with a per-bin loopback
// filter (Section IV-B2): each bin's complex mean over a priming window
// is estimated once and subtracted from every subsequent frame.
// Static reflections — seats, steering wheel, direct path — have a
// time-invariant delay, so a frozen estimate removes them exactly;
// motion-modulated components pass untouched. The estimate is
// deliberately NOT tracked afterwards: a slowly-adapting filter chases
// the motion trajectory itself and smears the arc geometry the tracker
// depends on. Posture drift is the tracker's and restart logic's job.
type BackgroundSubtractor struct {
	primeFrames int
	seen        int
	sum         []complex128
	mean        []complex128
	// Float32 mirrors of the frozen mean for the SoA planes path,
	// filled once at freeze so the hot subtraction never widens.
	meanI32 []float32
	meanQ32 []float32
}

// NewBackgroundSubtractor creates a subtractor for numBins bins priming
// over tauSec seconds of frames.
func NewBackgroundSubtractor(numBins int, frameRate, tauSec float64) (*BackgroundSubtractor, error) {
	if numBins <= 0 {
		return nil, fmt.Errorf("core: numBins must be positive, got %d", numBins)
	}
	if frameRate <= 0 || tauSec <= 0 {
		return nil, fmt.Errorf("core: frame rate and tau must be positive, got %g, %g", frameRate, tauSec)
	}
	prime := int(tauSec * frameRate)
	if prime < 1 {
		prime = 1
	}
	return &BackgroundSubtractor{
		primeFrames: prime,
		sum:         make([]complex128, numBins),
		mean:        make([]complex128, numBins),
		meanI32:     make([]float32, numBins),
		meanQ32:     make([]float32, numBins),
	}, nil
}

// Apply subtracts the background estimate from the frame in place.
// During the priming window the frame is accumulated into the estimate
// and the output is zeroed (the detector's cold start covers this
// period anyway). The estimate divides by the frames actually
// accumulated, so a Reset mid-prime or a capture that ends before the
// window fills never leaves a partial sum scaled as if the window had
// completed.
//
//blinkradar:hotpath
func (b *BackgroundSubtractor) Apply(frame []complex128) {
	if b.seen < b.primeFrames {
		b.seen++
		for i, v := range frame {
			b.sum[i] += v
			frame[i] = 0
		}
		if b.seen == b.primeFrames {
			b.freeze()
		}
		return
	}
	for i, v := range frame {
		frame[i] = v - b.mean[i]
	}
}

// ApplyPlanes is Apply on the float32 SoA layout. Priming accumulates
// into the shared float64 sums (narrowed samples, full-precision
// accumulation), so a subtractor primed through either layout serves
// both.
//
//blinkradar:hotpath
func (b *BackgroundSubtractor) ApplyPlanes(pi, pq []float32) {
	if b.seen < b.primeFrames {
		b.seen++
		for i := range pi {
			b.sum[i] += complex(float64(pi[i]), float64(pq[i]))
			pi[i] = 0
			pq[i] = 0
		}
		if b.seen == b.primeFrames {
			b.freeze()
		}
		return
	}
	for i := range pi {
		pi[i] -= b.meanI32[i]
		pq[i] -= b.meanQ32[i]
	}
}

// freeze finalises the clutter estimate from the priming sum and fills
// the float32 mirrors used by the planes path.
//
//blinkradar:convert
func (b *BackgroundSubtractor) freeze() {
	inv := complex(1/float64(b.seen), 0)
	for i, s := range b.sum {
		m := s * inv
		b.mean[i] = m
		b.meanI32[i] = float32(real(m))
		b.meanQ32[i] = float32(imag(m))
	}
}

// Primed reports whether the priming window has completed and the
// clutter estimate is frozen.
func (b *BackgroundSubtractor) Primed() bool { return b.seen >= b.primeFrames }

// Background returns a copy of the current clutter estimate. Before the
// priming window completes it is the mean of the frames seen so far
// (zeros when none), not the partial sum a full window would produce.
func (b *BackgroundSubtractor) Background() []complex128 {
	out := make([]complex128, len(b.mean))
	if b.Primed() {
		copy(out, b.mean)
		return out
	}
	if b.seen == 0 {
		return out
	}
	inv := complex(1/float64(b.seen), 0)
	for i, s := range b.sum {
		out[i] = s * inv
	}
	return out
}

// Reset clears the clutter estimate so the next frames re-prime it.
func (b *BackgroundSubtractor) Reset() {
	for i := range b.sum {
		b.sum[i] = 0
		b.mean[i] = 0
		b.meanI32[i] = 0
		b.meanQ32[i] = 0
	}
	b.seen = 0
}

// PreprocessMatrix applies the full preprocessing chain to a copy of
// the matrix and returns it, leaving the input untouched. This is the
// offline convenience used by experiments and figures. The denoising
// stage fans out across cfg.Parallelism workers; the result is
// identical to a serial pass.
func PreprocessMatrix(cfg Config, m *rf.FrameMatrix) (*rf.FrameMatrix, error) {
	return PreprocessMatrixParallel(cfg, m, cfg.Parallelism)
}

// PreprocessMatrixParallel is PreprocessMatrix with an explicit worker
// count (<= 0 selects GOMAXPROCS). The per-frame noise-reduction
// cascade is embarrassingly parallel, so frames are denoised in chunks
// by a bounded worker pool, each worker reusing its own scratch
// buffers; the stateful background subtraction then runs as a cheap
// serial pass in frame order. The output is bit-identical to the
// serial path regardless of the worker count.
func PreprocessMatrixParallel(cfg Config, m *rf.FrameMatrix, workers int) (*rf.FrameMatrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := m.Clone()
	frames := out.Data
	denoise := func(lo, hi int) error {
		p, err := NewPreprocessor(cfg, m.NumBins(), m.FrameRate)
		if err != nil {
			return err
		}
		for _, frame := range frames[lo:hi] {
			p.denoise(frame)
		}
		return nil
	}
	if err := parallelChunks(len(frames), workers, denoise); err != nil {
		return nil, err
	}
	bg, err := NewBackgroundSubtractor(m.NumBins(), m.FrameRate, cfg.BackgroundTauSec)
	if err != nil {
		return nil, err
	}
	for _, frame := range frames {
		bg.Apply(frame)
	}
	return out, nil
}

// Cascade is the reusable form of the paper's Fig. 7 noise-reduction
// cascade: an order-N Hamming-window low-pass FIR followed by a
// moving-average smoother. Construct once, then Apply repeatedly with
// caller-owned buffers — the hot path performs no allocations. Not safe
// for concurrent use (internal buffers are shared across calls).
//
// The windowed-sinc FIR is linear-phase, so Apply runs the fused
// folded-tap single-pass kernel (dsp.FusedCascade): half the multiplies
// of the direct form and one traversal of the series instead of two.
// The output matches the sequential FIR+smoother pipeline within
// fold-average rounding (≤1e-12 relative; see DESIGN.md §13).
type Cascade struct {
	fused  *dsp.FusedCascade
	smooth int
	// The fused kernel cannot run in place (its FIR stage writes the
	// output while later samples still read the input), so aliased
	// calls detour through a reusable copy of the input.
	scratch []float64
}

// NewCascade designs the cascade's FIR stage once so repeated
// applications avoid redesign and window allocations.
func NewCascade(order int, cutoff float64, smooth int) (*Cascade, error) {
	if smooth <= 0 {
		return nil, fmt.Errorf("core: smoothing window must be positive, got %d", smooth)
	}
	fused, err := dsp.NewFusedCascade(order, cutoff, smooth)
	if err != nil {
		return nil, err
	}
	return &Cascade{fused: fused, smooth: smooth}, nil
}

// Apply runs the cascade over x into dst (same length; dst may alias x).
func (c *Cascade) Apply(dst, x []float64) error {
	if len(dst) != len(x) {
		return fmt.Errorf("core: destination has %d samples, input %d", len(dst), len(x))
	}
	if len(x) > 0 && &dst[0] == &x[0] {
		if cap(c.scratch) < len(x) {
			c.scratch = make([]float64, len(x))
		}
		mid := c.scratch[:len(x)]
		copy(mid, x)
		return c.fused.ApplyInto(dst, mid)
	}
	return c.fused.ApplyInto(dst, x)
}

// Fused exposes the underlying fused kernel for callers that drive the
// float32 SoA path directly.
func (c *Cascade) Fused() *dsp.FusedCascade { return c.fused }

// CascadeFilter applies the paper's Fig. 7 noise-reduction cascade — an
// order-`order` Hamming-window low-pass FIR followed by a `smooth`-point
// moving average — to a real-valued waveform. The paper applies it to
// the received baseband fast-time signal; experiments use it to
// regenerate the before/after SNR comparison. For repeated application
// use Cascade, which reuses its filter design and scratch.
func CascadeFilter(x []float64, order int, cutoff float64, smooth int) ([]float64, error) {
	c, err := NewCascade(order, cutoff, smooth)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	if err := c.Apply(out, x); err != nil {
		return nil, err
	}
	return out, nil
}
