package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// seriesSets builds synthetic per-bin slow-time clouds:
// bin 0: thermal noise; bin 1: short vital-sign arc; bin 2: full-circle
// chest-like rotation; bin 3: strong static leak (near-constant).
func seriesSets(n int, seed int64) func(bin int) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	noise := func(sigma float64) complex128 {
		return complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	bins := make([][]complex128, 4)
	for i := range bins {
		bins[i] = make([]complex128, n)
	}
	for k := 0; k < n; k++ {
		tt := float64(k) / 25
		bins[0][k] = noise(0.005)
		arcPhase := 0.35 * math.Sin(2*math.Pi*0.25*tt)
		bins[1][k] = complex(0.3, 0.4) + cmplx.Rect(1.2, arcPhase) + noise(0.005)
		bins[2][k] = cmplx.Rect(0.9, 2*math.Pi*0.25*tt*12) + noise(0.005)
		bins[3][k] = complex(2.5, -1) + noise(0.005)
	}
	return func(bin int) []complex128 { return bins[bin] }
}

func TestScoreBinPrefersArc(t *testing.T) {
	series := seriesSets(300, 1)
	noiseScore := ScoreBin(0, series(0))
	arcScore := ScoreBin(1, series(1))
	chestScore := ScoreBin(2, series(2))
	staticScore := ScoreBin(3, series(3))
	if arcScore.Score <= noiseScore.Score {
		t.Fatalf("arc score %g not above noise %g", arcScore.Score, noiseScore.Score)
	}
	if arcScore.Score <= chestScore.Score {
		t.Fatalf("arc score %g not above full-rotation %g", arcScore.Score, chestScore.Score)
	}
	if arcScore.Score <= staticScore.Score {
		t.Fatalf("arc score %g not above static %g", arcScore.Score, staticScore.Score)
	}
	if arcScore.ArcQuality < 0.3 {
		t.Fatalf("arc quality %g too low for a clean arc", arcScore.ArcQuality)
	}
}

func TestSelectBinFindsArc(t *testing.T) {
	series := seriesSets(300, 2)
	best, candidates, err := SelectBin(series, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin != 1 {
		t.Fatalf("selected bin %d, want the arc bin 1 (candidates %+v)", best.Bin, candidates)
	}
	if len(candidates) == 0 {
		t.Fatal("no candidates returned")
	}
}

func TestSelectBinGuard(t *testing.T) {
	series := seriesSets(300, 3)
	// Guarding out everything must fail loudly.
	if _, _, err := SelectBin(series, 4, 4, 2); err == nil {
		t.Fatal("guard >= bins must be rejected")
	}
	// Guarding out the arc bin forces another winner.
	best, _, err := SelectBin(series, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin < 2 {
		t.Fatalf("guarded bin %d selected", best.Bin)
	}
}

func TestBinRingSeriesOrderProperty(t *testing.T) {
	// The ring must return the most recent `window` frames in order,
	// for any push count.
	f := func(seed int64, rawPushes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const bins, window = 3, 16
		r := newBinRing(bins, window)
		pushes := int(rawPushes)%60 + 1
		history := make([][]complex128, 0, pushes)
		frame := make([]complex128, bins)
		for i := 0; i < pushes; i++ {
			for b := range frame {
				frame[b] = complex(rng.NormFloat64(), float64(i))
			}
			history = append(history, append([]complex128(nil), frame...))
			r.push(frame)
		}
		lo := len(history) - window
		if lo < 0 {
			lo = 0
		}
		for b := 0; b < bins; b++ {
			got := r.series(b)
			want := history[lo:]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i][b] {
					return false
				}
			}
			if r.latest(b) != want[len(want)-1][b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinRingReset(t *testing.T) {
	r := newBinRing(2, 4)
	r.push([]complex128{1, 2})
	r.reset()
	if r.count != 0 || len(r.series(0)) != 0 {
		t.Fatal("reset ring must be empty")
	}
	if r.latest(0) != 0 {
		t.Fatal("latest of empty ring must be zero")
	}
}
