package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"blinkradar/internal/iq"
)

// seriesSets builds synthetic per-bin slow-time clouds:
// bin 0: thermal noise; bin 1: short vital-sign arc; bin 2: full-circle
// chest-like rotation; bin 3: strong static leak (near-constant). The
// returned BinSeries copies into buf, exercising the buffer-reuse
// contract of the selection fan-out.
func seriesSets(n int, seed int64) BinSeries {
	rng := rand.New(rand.NewSource(seed))
	noise := func(sigma float64) complex128 {
		return complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	bins := make([][]complex128, 4)
	for i := range bins {
		bins[i] = make([]complex128, n)
	}
	for k := 0; k < n; k++ {
		tt := float64(k) / 25
		bins[0][k] = noise(0.005)
		arcPhase := 0.35 * math.Sin(2*math.Pi*0.25*tt)
		bins[1][k] = complex(0.3, 0.4) + cmplx.Rect(1.2, arcPhase) + noise(0.005)
		bins[2][k] = cmplx.Rect(0.9, 2*math.Pi*0.25*tt*12) + noise(0.005)
		bins[3][k] = complex(2.5, -1) + noise(0.005)
	}
	return func(bin int, buf []complex128) []complex128 {
		if cap(buf) < n {
			buf = make([]complex128, n)
		}
		buf = buf[:n]
		copy(buf, bins[bin])
		return buf
	}
}

// at adapts a BinSeries for single-bin calls in tests.
func at(series BinSeries, bin int) []complex128 { return series(bin, nil) }

func TestScoreBinPrefersArc(t *testing.T) {
	series := seriesSets(300, 1)
	noiseScore := ScoreBin(0, at(series, 0))
	arcScore := ScoreBin(1, at(series, 1))
	chestScore := ScoreBin(2, at(series, 2))
	staticScore := ScoreBin(3, at(series, 3))
	if arcScore.Score <= noiseScore.Score {
		t.Fatalf("arc score %g not above noise %g", arcScore.Score, noiseScore.Score)
	}
	if arcScore.Score <= chestScore.Score {
		t.Fatalf("arc score %g not above full-rotation %g", arcScore.Score, chestScore.Score)
	}
	if arcScore.Score <= staticScore.Score {
		t.Fatalf("arc score %g not above static %g", arcScore.Score, staticScore.Score)
	}
	if arcScore.ArcQuality < 0.3 {
		t.Fatalf("arc quality %g too low for a clean arc", arcScore.ArcQuality)
	}
}

func TestSelectBinFindsArc(t *testing.T) {
	series := seriesSets(300, 2)
	best, candidates, err := SelectBin(series, nil, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin != 1 {
		t.Fatalf("selected bin %d, want the arc bin 1 (candidates %+v)", best.Bin, candidates)
	}
	if len(candidates) == 0 {
		t.Fatal("no candidates returned")
	}
}

func TestSelectBinGuard(t *testing.T) {
	series := seriesSets(300, 3)
	// Guarding out everything must fail loudly.
	if _, _, err := SelectBin(series, nil, 4, 4, 2); err == nil {
		t.Fatal("guard >= bins must be rejected")
	}
	// Guarding out the arc bin forces another winner.
	best, _, err := SelectBin(series, nil, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin < 2 {
		t.Fatalf("guarded bin %d selected", best.Bin)
	}
}

func TestSelectBinRejectsNonPositiveTopK(t *testing.T) {
	series := seriesSets(300, 4)
	// Regression: topK <= 0 used to index an empty candidate slice and
	// panic; it must be a loud error instead.
	for _, topK := range []int{0, -1, -100} {
		if _, _, err := SelectBin(series, nil, 4, 0, topK); err == nil {
			t.Fatalf("topK=%d must be rejected", topK)
		}
	}
}

func TestSelectBinSingleBinBeyondGuard(t *testing.T) {
	series := seriesSets(300, 5)
	// numBins == guard+1 leaves exactly one candidate; selection must
	// still work for any topK.
	best, candidates, err := SelectBin(series, nil, 4, 3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin != 3 {
		t.Fatalf("selected bin %d, want the only unguarded bin 3", best.Bin)
	}
	if len(candidates) != 1 {
		t.Fatalf("got %d candidates, want 1", len(candidates))
	}
}

func TestSelectBinAllZeroVariance(t *testing.T) {
	// Identical constant samples in every bin: zero variance, zero
	// scores. Selection must fall back to the variance ranking without
	// panicking.
	flat := func(bin int, buf []complex128) []complex128 {
		if cap(buf) < 50 {
			buf = make([]complex128, 50)
		}
		buf = buf[:50]
		for i := range buf {
			buf[i] = complex(1, -2)
		}
		return buf
	}
	best, candidates, err := SelectBin(flat, nil, 6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin < 2 {
		t.Fatalf("guarded bin %d selected", best.Bin)
	}
	if best.Variance != 0 || best.Score != 0 {
		t.Fatalf("flat windows must yield zero variance and score, got %+v", best)
	}
	if len(candidates) != 3 {
		t.Fatalf("got %d candidates, want 3", len(candidates))
	}
}

func TestSelectBinParallelMatchesSerial(t *testing.T) {
	// The worker-pool fan-out must pick the same winner and produce the
	// same ranked candidates as the serial path, for any worker count.
	const bins, window = 64, 200
	rng := rand.New(rand.NewSource(99))
	data := make([][]complex128, bins)
	for b := range data {
		data[b] = make([]complex128, window)
		amp := 0.01 + rng.Float64()
		for k := range data[b] {
			ph := 0.4 * math.Sin(2*math.Pi*0.25*float64(k)/25)
			data[b][k] = cmplx.Rect(amp, ph) + complex(rng.NormFloat64()*0.004, rng.NormFloat64()*0.004)
		}
	}
	series := func(bin int, buf []complex128) []complex128 {
		if cap(buf) < window {
			buf = make([]complex128, window)
		}
		buf = buf[:window]
		copy(buf, data[bin])
		return buf
	}
	serialBest, serialCands, err := SelectBin(series, nil, bins, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7, 16, 100} {
		best, cands, err := SelectBinParallel(series, nil, bins, 4, 16, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if best != serialBest {
			t.Fatalf("workers=%d: best %+v, serial %+v", workers, best, serialBest)
		}
		if len(cands) != len(serialCands) {
			t.Fatalf("workers=%d: %d candidates, serial %d", workers, len(cands), len(serialCands))
		}
		for i := range cands {
			if cands[i] != serialCands[i] {
				t.Fatalf("workers=%d: candidate %d = %+v, serial %+v", workers, i, cands[i], serialCands[i])
			}
		}
	}
}

// pushC pushes a complex frame through the ring's SoA planes, reusing
// per-call conversion buffers (tests only).
func pushC(r *binRing, frame []complex128) {
	pi := make([]float32, len(frame))
	pq := make([]float32, len(frame))
	for i, z := range frame {
		pi[i] = float32(real(z))
		pq[i] = float32(imag(z))
	}
	r.push(pi, pq)
}

// q32 quantises a complex value through the ring's float32 planes.
func q32(z complex128) complex128 {
	return complex(float64(float32(real(z))), float64(float32(imag(z))))
}

func TestBinRingSeriesInto(t *testing.T) {
	r := newBinRing(2, 8)
	for i := 0; i < 5; i++ {
		pushC(r, []complex128{complex(float64(i), 0), complex(0, float64(i))})
	}
	buf := make([]complex128, 0, 8)
	got := r.seriesInto(1, buf)
	if len(got) != 5 {
		t.Fatalf("got %d samples, want 5", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("seriesInto must reuse the provided buffer when it fits")
	}
	want := r.series(1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBinRingSeriesOrderProperty(t *testing.T) {
	// The ring must return the most recent `window` frames in order,
	// for any push count.
	f := func(seed int64, rawPushes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const bins, window = 3, 16
		r := newBinRing(bins, window)
		pushes := int(rawPushes)%60 + 1
		history := make([][]complex128, 0, pushes)
		frame := make([]complex128, bins)
		for i := 0; i < pushes; i++ {
			for b := range frame {
				frame[b] = complex(rng.NormFloat64(), float64(i))
			}
			history = append(history, append([]complex128(nil), frame...))
			pushC(r, frame)
		}
		lo := len(history) - window
		if lo < 0 {
			lo = 0
		}
		for b := 0; b < bins; b++ {
			got := r.series(b)
			want := history[lo:]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != q32(want[i][b]) {
					return false
				}
			}
			if r.latest(b) != q32(want[len(want)-1][b]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinRingReset(t *testing.T) {
	r := newBinRing(2, 4)
	pushC(r, []complex128{1, 2})
	r.reset()
	if r.count != 0 || len(r.series(0)) != 0 {
		t.Fatal("reset ring must be empty")
	}
	if r.latest(0) != 0 {
		t.Fatal("latest of empty ring must be zero")
	}
}

func TestBinRingVarianceMatchesBatch(t *testing.T) {
	// The O(1) sliding-sum variance must track the batch Variance2D of
	// the same stored window through fill, wrap-around and the
	// round-robin renormalization that starts once the ring is full.
	const bins, window = 5, 32
	rng := rand.New(rand.NewSource(31))
	r := newBinRing(bins, window)
	frame := make([]complex128, bins)
	for push := 0; push < 4*window; push++ {
		for b := range frame {
			// Per-bin offsets exercise different cancellation regimes.
			off := complex(float64(b)*3, -float64(b))
			frame[b] = off + complex(rng.NormFloat64(), rng.NormFloat64())
		}
		pushC(r, frame)
		for b := 0; b < bins; b++ {
			series := r.series(b)
			want := iq.Variance2D(series)
			got := r.variance(b)
			var scale float64
			for _, z := range series {
				scale += real(z)*real(z) + imag(z)*imag(z)
			}
			scale /= float64(len(series))
			if math.Abs(got-want) > 1e-9*(1+scale) {
				t.Fatalf("push %d bin %d: sliding variance %g, batch %g", push, b, got, want)
			}
		}
	}
}

func TestBinRingVarianceAfterReset(t *testing.T) {
	r := newBinRing(2, 4)
	for i := 0; i < 9; i++ {
		pushC(r, []complex128{complex(float64(i), 1), complex(-1, float64(i))})
	}
	r.reset()
	for b := 0; b < 2; b++ {
		if v := r.variance(b); v != 0 {
			t.Fatalf("bin %d variance %g after reset", b, v)
		}
	}
	// Sums must restart cleanly, not inherit pre-reset residue.
	pushC(r, []complex128{2 + 2i, 3 - 1i})
	pushC(r, []complex128{4 + 4i, 5 - 3i})
	for b := 0; b < 2; b++ {
		want := iq.Variance2D(r.series(b))
		if got := r.variance(b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("bin %d variance %g after reset+refill, want %g", b, got, want)
		}
	}
}

func TestSelectBinStatsSourceMatchesFallback(t *testing.T) {
	// Supplying an O(1) stats source must not change the winner
	// relative to the nil walking fallback: the eccentricity-tightened
	// bound may prune more losing candidates, but a pruned candidate by
	// construction cannot have beaten the winner, and any candidate the
	// stats path did score must carry the identical score.
	series := seriesSets(300, 6)
	statsFn := func(bin int) (float64, float64, float64) {
		return iq.Covariance(at(series, bin))
	}
	nilBest, nilCands, err := SelectBin(series, nil, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	best, cands, err := SelectBin(series, statsFn, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best != nilBest {
		t.Fatalf("stats source changed the winner: %+v vs %+v", best, nilBest)
	}
	if len(cands) != len(nilCands) {
		t.Fatalf("%d candidates with stats, %d without", len(cands), len(nilCands))
	}
	for _, c := range cands {
		if c.Score > best.Score {
			t.Fatalf("candidate %+v outscores the returned winner %+v", c, best)
		}
		if c.ArcQuality == 0 {
			continue // pruned or genuinely zero-quality: variance-only record
		}
		found := false
		for _, n := range nilCands {
			if n.Bin == c.Bin {
				found = n == c
				break
			}
		}
		if !found {
			t.Fatalf("scored candidate %+v absent or different in fallback list %+v", c, nilCands)
		}
	}
}
