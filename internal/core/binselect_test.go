package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// seriesSets builds synthetic per-bin slow-time clouds:
// bin 0: thermal noise; bin 1: short vital-sign arc; bin 2: full-circle
// chest-like rotation; bin 3: strong static leak (near-constant). The
// returned BinSeries copies into buf, exercising the buffer-reuse
// contract of the selection fan-out.
func seriesSets(n int, seed int64) BinSeries {
	rng := rand.New(rand.NewSource(seed))
	noise := func(sigma float64) complex128 {
		return complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	bins := make([][]complex128, 4)
	for i := range bins {
		bins[i] = make([]complex128, n)
	}
	for k := 0; k < n; k++ {
		tt := float64(k) / 25
		bins[0][k] = noise(0.005)
		arcPhase := 0.35 * math.Sin(2*math.Pi*0.25*tt)
		bins[1][k] = complex(0.3, 0.4) + cmplx.Rect(1.2, arcPhase) + noise(0.005)
		bins[2][k] = cmplx.Rect(0.9, 2*math.Pi*0.25*tt*12) + noise(0.005)
		bins[3][k] = complex(2.5, -1) + noise(0.005)
	}
	return func(bin int, buf []complex128) []complex128 {
		if cap(buf) < n {
			buf = make([]complex128, n)
		}
		buf = buf[:n]
		copy(buf, bins[bin])
		return buf
	}
}

// at adapts a BinSeries for single-bin calls in tests.
func at(series BinSeries, bin int) []complex128 { return series(bin, nil) }

func TestScoreBinPrefersArc(t *testing.T) {
	series := seriesSets(300, 1)
	noiseScore := ScoreBin(0, at(series, 0))
	arcScore := ScoreBin(1, at(series, 1))
	chestScore := ScoreBin(2, at(series, 2))
	staticScore := ScoreBin(3, at(series, 3))
	if arcScore.Score <= noiseScore.Score {
		t.Fatalf("arc score %g not above noise %g", arcScore.Score, noiseScore.Score)
	}
	if arcScore.Score <= chestScore.Score {
		t.Fatalf("arc score %g not above full-rotation %g", arcScore.Score, chestScore.Score)
	}
	if arcScore.Score <= staticScore.Score {
		t.Fatalf("arc score %g not above static %g", arcScore.Score, staticScore.Score)
	}
	if arcScore.ArcQuality < 0.3 {
		t.Fatalf("arc quality %g too low for a clean arc", arcScore.ArcQuality)
	}
}

func TestSelectBinFindsArc(t *testing.T) {
	series := seriesSets(300, 2)
	best, candidates, err := SelectBin(series, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin != 1 {
		t.Fatalf("selected bin %d, want the arc bin 1 (candidates %+v)", best.Bin, candidates)
	}
	if len(candidates) == 0 {
		t.Fatal("no candidates returned")
	}
}

func TestSelectBinGuard(t *testing.T) {
	series := seriesSets(300, 3)
	// Guarding out everything must fail loudly.
	if _, _, err := SelectBin(series, 4, 4, 2); err == nil {
		t.Fatal("guard >= bins must be rejected")
	}
	// Guarding out the arc bin forces another winner.
	best, _, err := SelectBin(series, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin < 2 {
		t.Fatalf("guarded bin %d selected", best.Bin)
	}
}

func TestSelectBinRejectsNonPositiveTopK(t *testing.T) {
	series := seriesSets(300, 4)
	// Regression: topK <= 0 used to index an empty candidate slice and
	// panic; it must be a loud error instead.
	for _, topK := range []int{0, -1, -100} {
		if _, _, err := SelectBin(series, 4, 0, topK); err == nil {
			t.Fatalf("topK=%d must be rejected", topK)
		}
	}
}

func TestSelectBinSingleBinBeyondGuard(t *testing.T) {
	series := seriesSets(300, 5)
	// numBins == guard+1 leaves exactly one candidate; selection must
	// still work for any topK.
	best, candidates, err := SelectBin(series, 4, 3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin != 3 {
		t.Fatalf("selected bin %d, want the only unguarded bin 3", best.Bin)
	}
	if len(candidates) != 1 {
		t.Fatalf("got %d candidates, want 1", len(candidates))
	}
}

func TestSelectBinAllZeroVariance(t *testing.T) {
	// Identical constant samples in every bin: zero variance, zero
	// scores. Selection must fall back to the variance ranking without
	// panicking.
	flat := func(bin int, buf []complex128) []complex128 {
		if cap(buf) < 50 {
			buf = make([]complex128, 50)
		}
		buf = buf[:50]
		for i := range buf {
			buf[i] = complex(1, -2)
		}
		return buf
	}
	best, candidates, err := SelectBin(flat, 6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best.Bin < 2 {
		t.Fatalf("guarded bin %d selected", best.Bin)
	}
	if best.Variance != 0 || best.Score != 0 {
		t.Fatalf("flat windows must yield zero variance and score, got %+v", best)
	}
	if len(candidates) != 3 {
		t.Fatalf("got %d candidates, want 3", len(candidates))
	}
}

func TestSelectBinParallelMatchesSerial(t *testing.T) {
	// The worker-pool fan-out must pick the same winner and produce the
	// same ranked candidates as the serial path, for any worker count.
	const bins, window = 64, 200
	rng := rand.New(rand.NewSource(99))
	data := make([][]complex128, bins)
	for b := range data {
		data[b] = make([]complex128, window)
		amp := 0.01 + rng.Float64()
		for k := range data[b] {
			ph := 0.4 * math.Sin(2*math.Pi*0.25*float64(k)/25)
			data[b][k] = cmplx.Rect(amp, ph) + complex(rng.NormFloat64()*0.004, rng.NormFloat64()*0.004)
		}
	}
	series := func(bin int, buf []complex128) []complex128 {
		if cap(buf) < window {
			buf = make([]complex128, window)
		}
		buf = buf[:window]
		copy(buf, data[bin])
		return buf
	}
	serialBest, serialCands, err := SelectBin(series, bins, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7, 16, 100} {
		best, cands, err := SelectBinParallel(series, bins, 4, 16, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if best != serialBest {
			t.Fatalf("workers=%d: best %+v, serial %+v", workers, best, serialBest)
		}
		if len(cands) != len(serialCands) {
			t.Fatalf("workers=%d: %d candidates, serial %d", workers, len(cands), len(serialCands))
		}
		for i := range cands {
			if cands[i] != serialCands[i] {
				t.Fatalf("workers=%d: candidate %d = %+v, serial %+v", workers, i, cands[i], serialCands[i])
			}
		}
	}
}

func TestBinRingSeriesInto(t *testing.T) {
	r := newBinRing(2, 8)
	for i := 0; i < 5; i++ {
		r.push([]complex128{complex(float64(i), 0), complex(0, float64(i))})
	}
	buf := make([]complex128, 0, 8)
	got := r.seriesInto(1, buf)
	if len(got) != 5 {
		t.Fatalf("got %d samples, want 5", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("seriesInto must reuse the provided buffer when it fits")
	}
	want := r.series(1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBinRingSeriesOrderProperty(t *testing.T) {
	// The ring must return the most recent `window` frames in order,
	// for any push count.
	f := func(seed int64, rawPushes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const bins, window = 3, 16
		r := newBinRing(bins, window)
		pushes := int(rawPushes)%60 + 1
		history := make([][]complex128, 0, pushes)
		frame := make([]complex128, bins)
		for i := 0; i < pushes; i++ {
			for b := range frame {
				frame[b] = complex(rng.NormFloat64(), float64(i))
			}
			history = append(history, append([]complex128(nil), frame...))
			r.push(frame)
		}
		lo := len(history) - window
		if lo < 0 {
			lo = 0
		}
		for b := 0; b < bins; b++ {
			got := r.series(b)
			want := history[lo:]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i][b] {
					return false
				}
			}
			if r.latest(b) != want[len(want)-1][b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinRingReset(t *testing.T) {
	r := newBinRing(2, 4)
	r.push([]complex128{1, 2})
	r.reset()
	if r.count != 0 || len(r.series(0)) != 0 {
		t.Fatal("reset ring must be empty")
	}
	if r.latest(0) != 0 {
		t.Fatal("latest of empty ring must be zero")
	}
}
