package core

import (
	"fmt"
	"math"
)

// WindowFeatures summarises blink behaviour over one analysis window
// (paper: one minute) for drowsiness classification.
type WindowFeatures struct {
	// BlinkRate is the blink count normalised to blinks per minute.
	BlinkRate float64
	// MeanBlinkDuration is the mean detected blink duration in
	// seconds (0 when no blinks were detected).
	MeanBlinkDuration float64
}

// RateDurationGate is the default duration filter for rate counting.
// Two effects stack: single-crossing interference has no reopening edge
// and lands at the duration floor, and drowsy blinks are much longer
// than vigilant ones (>400 ms versus ~200 ms, Section II-A) — so the
// long-blink rate is both a cleaner and a more discriminative
// drowsiness marker than the raw detection rate.
const RateDurationGate = 0.35

// ExtractWindows slices a capture's detected blinks into consecutive
// windows of windowSec seconds and computes features for each, applying
// the default duration gate. The final partial window is dropped,
// matching the paper's whole-window evaluation.
func ExtractWindows(events []BlinkEvent, captureSec, windowSec float64) ([]WindowFeatures, error) {
	return ExtractWindowsFiltered(events, captureSec, windowSec, RateDurationGate)
}

// ExtractWindowsFiltered is ExtractWindows with an explicit duration
// gate; pass 0 to count every detection. Events must be sorted by
// Time, as the detector emits them; an out-of-order slice is rejected
// rather than silently miscounted. The pass is single-sweep — O(events
// + windows), not O(events × windows) — which matters for long
// captures binned into short windows.
func ExtractWindowsFiltered(events []BlinkEvent, captureSec, windowSec, minDuration float64) ([]WindowFeatures, error) {
	if windowSec <= 0 {
		return nil, fmt.Errorf("core: window must be positive, got %g", windowSec)
	}
	n := int(captureSec / windowSec)
	if n < 0 {
		n = 0
	}
	counts := make([]int, n)
	durSums := make([]float64, n)
	last := math.Inf(-1)
	for i, e := range events {
		if e.Time < last {
			return nil, fmt.Errorf("core: events must be sorted by time: event %d at %gs precedes %gs", i, e.Time, last)
		}
		last = e.Time
		if e.Duration < minDuration || e.Time < 0 {
			continue
		}
		w := int(e.Time / windowSec)
		if w >= n { // final partial window (and anything past it) is dropped
			continue
		}
		counts[w]++
		durSums[w] += e.Duration
	}
	out := make([]WindowFeatures, n)
	for w := range out {
		out[w].BlinkRate = float64(counts[w]) / windowSec * 60
		if counts[w] > 0 {
			out[w].MeanBlinkDuration = durSums[w] / float64(counts[w])
		}
	}
	return out, nil
}

// classStats holds per-class Gaussian parameters for the two features.
type classStats struct {
	rateMean, rateStd float64
	durMean, durStd   float64
	n                 int
}

// DrowsinessModel is the paper's simple per-driver drowsiness detector:
// it is calibrated from labelled awake and drowsy windows collected
// during enrolment (Section V, "Ground truth": two training sets per
// participant) and classifies each subsequent window from its blink
// rate and mean blink duration using two-feature Gaussian likelihoods.
type DrowsinessModel struct {
	awake, drowsy classStats
	trained       bool
}

// Train fits the model from labelled windows. Both classes need at
// least two windows.
func (m *DrowsinessModel) Train(awake, drowsy []WindowFeatures) error {
	if len(awake) < 2 || len(drowsy) < 2 {
		return fmt.Errorf("core: need at least 2 windows per class, got %d awake, %d drowsy", len(awake), len(drowsy))
	}
	m.awake = fitClass(awake)
	m.drowsy = fitClass(drowsy)
	// Pool the spreads (LDA-style): with only a handful of calibration
	// windows per class, per-class variances are too noisy to trust
	// and can produce degenerate boundaries.
	rate := math.Sqrt((m.awake.rateStd*m.awake.rateStd + m.drowsy.rateStd*m.drowsy.rateStd) / 2)
	dur := math.Sqrt((m.awake.durStd*m.awake.durStd + m.drowsy.durStd*m.drowsy.durStd) / 2)
	m.awake.rateStd, m.drowsy.rateStd = rate, rate
	m.awake.durStd, m.drowsy.durStd = dur, dur
	m.trained = true
	return nil
}

func fitClass(ws []WindowFeatures) classStats {
	var s classStats
	s.n = len(ws)
	for _, w := range ws {
		s.rateMean += w.BlinkRate
		s.durMean += w.MeanBlinkDuration
	}
	fn := float64(s.n)
	s.rateMean /= fn
	s.durMean /= fn
	for _, w := range ws {
		dr := w.BlinkRate - s.rateMean
		dd := w.MeanBlinkDuration - s.durMean
		s.rateStd += dr * dr
		s.durStd += dd * dd
	}
	s.rateStd = math.Sqrt(s.rateStd / fn)
	s.durStd = math.Sqrt(s.durStd / fn)
	// Floor the spreads: tiny training sets can collapse a class, and
	// the rate feature carries capture-to-capture false-positive
	// variance beyond its within-capture spread.
	if s.rateStd < 2.5 {
		s.rateStd = 2.5
	}
	if s.durStd < 0.08 {
		s.durStd = 0.08
	}
	return s
}

// Trained reports whether the model has been calibrated.
func (m *DrowsinessModel) Trained() bool { return m.trained }

// Classify returns true when the window is more likely drowsy than
// awake under the fitted Gaussians, along with the drowsy posterior
// (equal priors).
func (m *DrowsinessModel) Classify(w WindowFeatures) (drowsy bool, posterior float64, err error) {
	if !m.trained {
		return false, 0, fmt.Errorf("core: drowsiness model not trained")
	}
	if math.IsNaN(w.BlinkRate) || math.IsInf(w.BlinkRate, 0) ||
		math.IsNaN(w.MeanBlinkDuration) || math.IsInf(w.MeanBlinkDuration, 0) {
		return false, 0, fmt.Errorf("core: non-finite window features %+v", w)
	}
	la := m.awake.logLikelihood(w)
	ld := m.drowsy.logLikelihood(w)
	// Softmax over the two log-likelihoods.
	mx := math.Max(la, ld)
	pa := math.Exp(la - mx)
	pd := math.Exp(ld - mx)
	posterior = pd / (pa + pd)
	return ld > la, posterior, nil
}

// durationWeight discounts the duration feature: LEVD's per-event
// duration estimate is far noisier than the blink count, so it
// contributes but cannot overrule the rate.
const durationWeight = 1.0

// logLikelihood sums the per-feature Gaussian log-densities. The
// duration feature is ignored for windows with no detected blinks
// (MeanBlinkDuration == 0), where it carries no information.
func (s classStats) logLikelihood(w WindowFeatures) float64 {
	ll := gaussLogPDF(w.BlinkRate, s.rateMean, s.rateStd)
	if w.MeanBlinkDuration > 0 {
		ll += durationWeight * gaussLogPDF(w.MeanBlinkDuration, s.durMean, s.durStd)
	}
	return ll
}

func gaussLogPDF(x, mean, std float64) float64 {
	d := (x - mean) / std
	return -0.5*d*d - math.Log(std)
}

// Thresholds returns the fitted class means, exposed for reporting.
func (m *DrowsinessModel) Thresholds() (awakeRate, drowsyRate, awakeDur, drowsyDur float64) {
	return m.awake.rateMean, m.drowsy.rateMean, m.awake.durMean, m.drowsy.durMean
}
