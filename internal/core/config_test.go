package core

import "testing"

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"cold start", func(c *Config) { c.ColdStartFrames = 1 }},
		{"fit window", func(c *Config) { c.FitWindowFrames = 2 }},
		{"refit interval", func(c *Config) { c.RefitIntervalFrames = 0 }},
		{"centre blend", func(c *Config) { c.CenterBlend = 0 }},
		{"centre blend high", func(c *Config) { c.CenterBlend = 1.5 }},
		{"detrend", func(c *Config) { c.DetrendWindowFrames = 1 }},
		{"threshold", func(c *Config) { c.ThresholdK = 0 }},
		{"tail guard", func(c *Config) { c.TailGuardK = -1 }},
		{"sigma window", func(c *Config) { c.SigmaWindowSec = 0 }},
		{"min threshold", func(c *Config) { c.MinThreshold = -1 }},
		{"threshold frac", func(c *Config) { c.MinThresholdFrac = 1 }},
		{"refractory", func(c *Config) { c.RefractorySec = -1 }},
		{"distance smooth", func(c *Config) { c.DistanceSmoothFrames = 0 }},
		{"fir", func(c *Config) { c.FIRCutoff = 0.9 }},
		{"fast-time smooth", func(c *Config) { c.FastTimeSmoothBins = 0 }},
		{"background tau", func(c *Config) { c.BackgroundTauSec = 0 }},
		{"guard bins", func(c *Config) { c.GuardBins = -1 }},
		{"select window", func(c *Config) { c.SelectWindowFrames = 5 }},
		{"candidates", func(c *Config) { c.CandidateTopK = 0 }},
		{"reselect", func(c *Config) { c.ReselectIntervalFrames = 0 }},
		{"switch ratio", func(c *Config) { c.SwitchScoreRatio = 0.5 }},
		{"restart ratio", func(c *Config) { c.RestartVarRatio = 1 }},
		{"motion sustain", func(c *Config) { c.MotionSustainFrames = 0 }},
		{"settle", func(c *Config) { c.SettleFrames = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestOptions(t *testing.T) {
	cfg := DefaultConfig()
	WithThresholdK(7)(&cfg)
	if cfg.ThresholdK != 7 {
		t.Fatal("WithThresholdK did not apply")
	}
	WithColdStart(99)(&cfg)
	if cfg.ColdStartFrames != 99 {
		t.Fatal("WithColdStart did not apply")
	}
	WithFitWindow(321)(&cfg)
	if cfg.FitWindowFrames != 321 {
		t.Fatal("WithFitWindow did not apply")
	}
	WithBackgroundTau(2.5)(&cfg)
	if cfg.BackgroundTauSec != 2.5 {
		t.Fatal("WithBackgroundTau did not apply")
	}
	WithAdaptiveUpdate(false)(&cfg)
	if cfg.ReselectIntervalFrames < 1<<29 {
		t.Fatal("WithAdaptiveUpdate(false) should push reselects out")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("adaptive-off config invalid: %v", err)
	}
}
