package core

// HealthState is the detector's coarse operating condition, exposed for
// operators and supervising processes. Transitions:
//
//	Acquiring   → Tracking     first successful bin selection
//	Tracking    → Reacquiring  sequence gap or reject run too long to
//	                           bridge (Detector.NoteGap, sanitization)
//	Tracking    → Degraded     sustained run of unusable input frames
//	Reacquiring → Tracking     bin re-selected after ColdStartFrames of
//	                           clean input
//	Degraded    → Tracking/Reacquiring  first accepted frame
//
// The numeric values are stable and exported on the core_health_state
// gauge.
type HealthState int32

const (
	// HealthAcquiring is the initial cold start: no eye bin selected
	// yet.
	HealthAcquiring HealthState = iota
	// HealthTracking is normal operation: an eye bin is selected and
	// blink detection is live.
	HealthTracking
	// HealthReacquiring means tracking state was discarded after an
	// unbridgeable input gap; the detector is re-running cold start on
	// clean input. Expect Tracking again within ColdStartFrames
	// accepted frames.
	HealthReacquiring
	// HealthDegraded means the input stream is currently unusable
	// (sustained non-finite or malformed frames); detection is
	// suspended until acceptable frames return.
	HealthDegraded
)

// String names the state for logs and the /healthz surface.
func (h HealthState) String() string {
	switch h {
	case HealthAcquiring:
		return "acquiring"
	case HealthTracking:
		return "tracking"
	case HealthReacquiring:
		return "reacquiring"
	case HealthDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// Health returns the detector's current operating state. Unlike the
// rest of Detector it is safe to call from any goroutine while Feed
// runs.
func (d *Detector) Health() HealthState { return HealthState(d.health.Load()) }

// setHealth records a state transition and mirrors it onto the gauge.
func (d *Detector) setHealth(h HealthState) {
	d.health.Store(int32(h))
	d.gHealth.Set(float64(h))
}
