package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"blinkradar/internal/dsp"
	"blinkradar/internal/rf"
)

func TestBackgroundSubtractorRemovesStatic(t *testing.T) {
	bg, err := NewBackgroundSubtractor(3, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	static := []complex128{1 + 2i, -3i, 0.5}
	frame := make([]complex128, 3)
	// Prime (25 frames at 25 fps) then verify exact cancellation.
	for i := 0; i < 30; i++ {
		copy(frame, static)
		bg.Apply(frame)
	}
	for b, v := range frame {
		if cmplx.Abs(v) > 1e-12 {
			t.Fatalf("bin %d residual %v after static scene", b, v)
		}
	}
	// Background accessor matches the scene.
	for b, v := range bg.Background() {
		if cmplx.Abs(v-static[b]) > 1e-9 {
			t.Fatalf("background[%d] = %v, want %v", b, v, static[b])
		}
	}
	// A dynamic component passes through untouched.
	copy(frame, static)
	frame[1] += 0.25i
	bg.Apply(frame)
	if cmplx.Abs(frame[1]-0.25i) > 1e-9 {
		t.Fatalf("dynamic component distorted: %v", frame[1])
	}
}

func TestBackgroundSubtractorPrimingOutputsZero(t *testing.T) {
	bg, err := NewBackgroundSubtractor(1, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame := []complex128{5}
	bg.Apply(frame)
	if frame[0] != 0 {
		t.Fatal("priming frames must be zeroed")
	}
}

func TestBackgroundSubtractorReset(t *testing.T) {
	bg, _ := NewBackgroundSubtractor(1, 25, 0.2)
	for i := 0; i < 10; i++ {
		f := []complex128{1}
		bg.Apply(f)
	}
	bg.Reset()
	f := []complex128{1}
	bg.Apply(f)
	if f[0] != 0 {
		t.Fatal("reset subtractor must re-prime")
	}
}

func TestBackgroundSubtractorErrors(t *testing.T) {
	if _, err := NewBackgroundSubtractor(0, 25, 1); err == nil {
		t.Fatal("zero bins must be rejected")
	}
	if _, err := NewBackgroundSubtractor(3, 0, 1); err == nil {
		t.Fatal("zero rate must be rejected")
	}
	if _, err := NewBackgroundSubtractor(3, 25, 0); err == nil {
		t.Fatal("zero tau must be rejected")
	}
}

func TestPreprocessorFrameSizeCheck(t *testing.T) {
	p, err := NewPreprocessor(DefaultConfig(), 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Process(make([]complex128, 9)); err == nil {
		t.Fatal("mismatched frame size must be rejected")
	}
}

func TestSmoothFastTime(t *testing.T) {
	frame := []complex128{0, 3, 0}
	scratch := make([]complex128, 3)
	smoothFastTime(frame, scratch, 3)
	if !cmplxApprox(frame[1], 1, 1e-12) {
		t.Fatalf("centre %v, want 1", frame[1])
	}
	if !cmplxApprox(frame[0], 1.5, 1e-12) {
		t.Fatalf("edge %v, want 1.5 (shrunk window)", frame[0])
	}
	// Width 1 is a no-op.
	orig := []complex128{1, 2, 3}
	cp := append([]complex128(nil), orig...)
	smoothFastTime(cp, scratch, 1)
	for i := range orig {
		if cp[i] != orig[i] {
			t.Fatal("width-1 smoothing must not modify the frame")
		}
	}
}

func cmplxApprox(a complex128, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestPreprocessMatrixLeavesInputIntact(t *testing.T) {
	m, _ := rf.NewFrameMatrix(60, 20, 25, 0.01)
	rng := rand.New(rand.NewSource(1))
	for k := range m.Data {
		for b := range m.Data[k] {
			m.Data[k][b] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	before := m.Data[10][5]
	out, err := PreprocessMatrix(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data[10][5] != before {
		t.Fatal("PreprocessMatrix modified its input")
	}
	if out == m {
		t.Fatal("PreprocessMatrix must return a copy")
	}
}

func TestCascadeFilterImprovesSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	clean := make([]float64, n)
	for i := range clean {
		d := (float64(i) - 400) / 60
		clean[i] = math.Exp(-0.5 * d * d)
	}
	noisy := make([]float64, n)
	for i := range noisy {
		noisy[i] = clean[i] + rng.NormFloat64()*0.1
	}
	filtered, err := CascadeFilter(noisy, 26, 0.04, 50)
	if err != nil {
		t.Fatal(err)
	}
	before := dsp.SNRdB(clean, noisy)
	after := dsp.SNRdB(clean, filtered)
	if after < before+6 {
		t.Fatalf("cascade gain %.1f dB (from %.1f to %.1f), want > 6 dB", after-before, before, after)
	}
}

func TestCascadeFilterErrors(t *testing.T) {
	if _, err := CascadeFilter([]float64{1, 2}, 0, 0.1, 5); err == nil {
		t.Fatal("bad FIR order must be rejected")
	}
	if _, err := CascadeFilter([]float64{1, 2}, 8, 0.1, 0); err == nil {
		t.Fatal("bad smoothing window must be rejected")
	}
}
