package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"blinkradar/internal/dsp"
	"blinkradar/internal/rf"
)

func TestBackgroundSubtractorRemovesStatic(t *testing.T) {
	bg, err := NewBackgroundSubtractor(3, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	static := []complex128{1 + 2i, -3i, 0.5}
	frame := make([]complex128, 3)
	// Prime (25 frames at 25 fps) then verify exact cancellation.
	for i := 0; i < 30; i++ {
		copy(frame, static)
		bg.Apply(frame)
	}
	for b, v := range frame {
		if cmplx.Abs(v) > 1e-12 {
			t.Fatalf("bin %d residual %v after static scene", b, v)
		}
	}
	// Background accessor matches the scene.
	for b, v := range bg.Background() {
		if cmplx.Abs(v-static[b]) > 1e-9 {
			t.Fatalf("background[%d] = %v, want %v", b, v, static[b])
		}
	}
	// A dynamic component passes through untouched.
	copy(frame, static)
	frame[1] += 0.25i
	bg.Apply(frame)
	if cmplx.Abs(frame[1]-0.25i) > 1e-9 {
		t.Fatalf("dynamic component distorted: %v", frame[1])
	}
}

func TestBackgroundSubtractorPrimingOutputsZero(t *testing.T) {
	bg, err := NewBackgroundSubtractor(1, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame := []complex128{5}
	bg.Apply(frame)
	if frame[0] != 0 {
		t.Fatal("priming frames must be zeroed")
	}
}

func TestBackgroundSubtractorReset(t *testing.T) {
	bg, _ := NewBackgroundSubtractor(1, 25, 0.2)
	for i := 0; i < 10; i++ {
		f := []complex128{1}
		bg.Apply(f)
	}
	bg.Reset()
	f := []complex128{1}
	bg.Apply(f)
	if f[0] != 0 {
		t.Fatal("reset subtractor must re-prime")
	}
}

func TestBackgroundSubtractorErrors(t *testing.T) {
	if _, err := NewBackgroundSubtractor(0, 25, 1); err == nil {
		t.Fatal("zero bins must be rejected")
	}
	if _, err := NewBackgroundSubtractor(3, 0, 1); err == nil {
		t.Fatal("zero rate must be rejected")
	}
	if _, err := NewBackgroundSubtractor(3, 25, 0); err == nil {
		t.Fatal("zero tau must be rejected")
	}
}

func TestPreprocessorFrameSizeCheck(t *testing.T) {
	p, err := NewPreprocessor(DefaultConfig(), 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Process(make([]complex128, 9)); err == nil {
		t.Fatal("mismatched frame size must be rejected")
	}
}

func TestSmoothFastTime(t *testing.T) {
	frame := []complex128{0, 3, 0}
	scratch := make([]complex128, 3)
	smoothFastTime(frame, scratch, 3)
	if !cmplxApprox(frame[1], 1, 1e-12) {
		t.Fatalf("centre %v, want 1", frame[1])
	}
	if !cmplxApprox(frame[0], 1.5, 1e-12) {
		t.Fatalf("edge %v, want 1.5 (shrunk window)", frame[0])
	}
	// Width 1 is a no-op.
	orig := []complex128{1, 2, 3}
	cp := append([]complex128(nil), orig...)
	smoothFastTime(cp, scratch, 1)
	for i := range orig {
		if cp[i] != orig[i] {
			t.Fatal("width-1 smoothing must not modify the frame")
		}
	}
}

func cmplxApprox(a complex128, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestPreprocessMatrixLeavesInputIntact(t *testing.T) {
	m, _ := rf.NewFrameMatrix(60, 20, 25, 0.01)
	rng := rand.New(rand.NewSource(1))
	for k := range m.Data {
		for b := range m.Data[k] {
			m.Data[k][b] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	before := m.Data[10][5]
	out, err := PreprocessMatrix(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Data[10][5] != before {
		t.Fatal("PreprocessMatrix modified its input")
	}
	if out == m {
		t.Fatal("PreprocessMatrix must return a copy")
	}
}

func TestCascadeFilterImprovesSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	clean := make([]float64, n)
	for i := range clean {
		d := (float64(i) - 400) / 60
		clean[i] = math.Exp(-0.5 * d * d)
	}
	noisy := make([]float64, n)
	for i := range noisy {
		noisy[i] = clean[i] + rng.NormFloat64()*0.1
	}
	filtered, err := CascadeFilter(noisy, 26, 0.04, 50)
	if err != nil {
		t.Fatal(err)
	}
	before := dsp.SNRdB(clean, noisy)
	after := dsp.SNRdB(clean, filtered)
	if after < before+6 {
		t.Fatalf("cascade gain %.1f dB (from %.1f to %.1f), want > 6 dB", after-before, before, after)
	}
}

func TestBackgroundSubtractorPartialPriming(t *testing.T) {
	// A capture shorter than the priming window must report the mean of
	// the frames actually seen, not a partial sum scaled by the full
	// window length (the old estimator skewed exactly this way).
	bg, err := NewBackgroundSubtractor(2, 25, 1) // primes over 25 frames
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		f := []complex128{complex(float64(i), 0), 4 - 2i}
		bg.Apply(f)
	}
	if bg.Primed() {
		t.Fatal("5 of 25 frames must not complete priming")
	}
	got := bg.Background()
	// Bin 0 saw 0..4, mean 2; bin 1 saw a constant.
	if cmplx.Abs(got[0]-2) > 1e-12 {
		t.Fatalf("partial background[0] = %v, want 2", got[0])
	}
	if cmplx.Abs(got[1]-(4-2i)) > 1e-12 {
		t.Fatalf("partial background[1] = %v, want (4-2i)", got[1])
	}
	// Empty subtractor reports zeros, not NaNs.
	bg.Reset()
	for _, v := range bg.Background() {
		if v != 0 {
			t.Fatalf("empty background must be zero, got %v", v)
		}
	}
}

func TestPreprocessorResetMidPriming(t *testing.T) {
	// Restarting the pipeline while the clutter estimate is still
	// priming must discard the partial accumulation entirely: the next
	// window re-primes from scratch and the frozen estimate reflects
	// only post-reset frames. A stale partial sum here would offset
	// every bin for the rest of the session.
	cfg := DefaultConfig() // smoothing width 1 and FIR off: Process is background-subtract only
	p, err := NewPreprocessor(cfg, 2, 25)
	if err != nil {
		t.Fatal(err)
	}
	sceneA := []complex128{10 + 10i, -7}
	sceneB := []complex128{1 + 2i, 3 - 4i}
	frame := make([]complex128, 2)
	// 10 of the 25 priming frames (tau 1 s at 25 fps), then restart.
	for i := 0; i < 10; i++ {
		copy(frame, sceneA)
		if err := p.Process(frame); err != nil {
			t.Fatal(err)
		}
	}
	if p.background.Primed() {
		t.Fatal("10 of 25 frames must not complete priming")
	}
	p.Reset()
	if p.background.seen != 0 {
		t.Fatalf("reset mid-prime left seen = %d, want 0", p.background.seen)
	}
	// The full window must re-prime: every one of the next 25 frames is
	// part of the new estimate and comes back zeroed.
	for i := 0; i < 25; i++ {
		copy(frame, sceneB)
		if err := p.Process(frame); err != nil {
			t.Fatal(err)
		}
		for b, v := range frame {
			if v != 0 {
				t.Fatalf("re-priming frame %d bin %d = %v, want 0", i, b, v)
			}
		}
	}
	if !p.background.Primed() {
		t.Fatal("25 post-reset frames must complete priming")
	}
	// The frozen estimate is scene B alone — scene A's partial sum must
	// not leak in — so a scene-B frame cancels exactly.
	for b, v := range p.background.Background() {
		if cmplx.Abs(v-sceneB[b]) > 1e-12 {
			t.Fatalf("background[%d] = %v, want %v (pre-reset frames leaked)", b, v, sceneB[b])
		}
	}
	copy(frame, sceneB)
	if err := p.Process(frame); err != nil {
		t.Fatal(err)
	}
	for b, v := range frame {
		if cmplx.Abs(v) > 1e-12 {
			t.Fatalf("bin %d residual %v after reset and re-prime", b, v)
		}
	}
}

func TestPreprocessorProcessZeroAllocs(t *testing.T) {
	cfgs := map[string]Config{"default": DefaultConfig()}
	withFIR := DefaultConfig()
	withFIR.EnableFastTimeFIR = true
	withFIR.FastTimeSmoothBins = 3
	cfgs["fastTimeFIR"] = withFIR
	for name, cfg := range cfgs {
		const bins = 64 // > 2*FIROrder so the FIR stage engages
		p, err := NewPreprocessor(cfg, bins, 25)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		frame := make([]complex128, bins)
		for i := range frame {
			frame[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := p.Process(frame); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: Process allocates %.1f objects/frame, want 0", name, allocs)
		}
	}
}

func TestPreprocessMatrixParallelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableFastTimeFIR = true
	cfg.FastTimeSmoothBins = 3
	m, _ := rf.NewFrameMatrix(200, 64, 25, 0.01)
	rng := rand.New(rand.NewSource(3))
	for k := range m.Data {
		for b := range m.Data[k] {
			m.Data[k][b] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	serial, err := PreprocessMatrixParallel(cfg, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		par, err := PreprocessMatrixParallel(cfg, m, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for k := range serial.Data {
			for b := range serial.Data[k] {
				if par.Data[k][b] != serial.Data[k][b] {
					t.Fatalf("workers=%d: frame %d bin %d = %v, serial %v",
						workers, k, b, par.Data[k][b], serial.Data[k][b])
				}
			}
		}
	}
}

func TestCascadeReuse(t *testing.T) {
	c, err := NewCascade(26, 0.04, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := CascadeFilter(x, 26, 0.04, 50)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(x))
	// Repeated application with reused buffers matches the one-shot
	// helper, and the steady state allocates nothing.
	for i := 0; i < 3; i++ {
		if err := c.Apply(dst, x); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("sample %d = %g, want %g", i, dst[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.Apply(dst, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Cascade.Apply allocates %.1f objects/run, want 0", allocs)
	}
}

func TestCascadeFilterErrors(t *testing.T) {
	if _, err := CascadeFilter([]float64{1, 2}, 0, 0.1, 5); err == nil {
		t.Fatal("bad FIR order must be rejected")
	}
	if _, err := CascadeFilter([]float64{1, 2}, 8, 0.1, 0); err == nil {
		t.Fatal("bad smoothing window must be rejected")
	}
}
