package core

import "fmt"

// errFrameBins reports a frame/preprocessor bin-count mismatch. It lives
// outside the //blinkradar:hotpath bodies so the fmt machinery stays off
// the per-frame path; the branch only fires on caller bugs.
//
//blinkradar:coldpath
func errFrameBins(got, want int) error {
	return fmt.Errorf("core: frame has %d bins, preprocessor configured for %d", got, want)
}
