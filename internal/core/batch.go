package core

import (
	"fmt"
	"sync"

	"blinkradar/internal/rf"
)

// BatchResult is the outcome of one capture in a DetectBatch run.
type BatchResult struct {
	// Events are the blinks detected in the capture, in time order.
	Events []BlinkEvent
	// Restarts and BinSwitches are the pipeline diagnostics of the
	// capture's detector.
	Restarts, BinSwitches int
	// Err is the capture's failure, nil on success.
	Err error
}

// DetectBatch runs the full offline pipeline over N independent
// captures concurrently on a bounded worker pool (parallelism <= 0
// selects GOMAXPROCS, mirroring the experiments harness). Each capture
// gets its own detector, so results are identical to calling Detect on
// each capture serially; results are returned in input order. The
// returned error is the first per-capture failure (the remaining
// results are still populated).
func DetectBatch(cfg Config, captures []*rf.FrameMatrix, parallelism int, opts ...Option) ([]BatchResult, error) {
	results := make([]BatchResult, len(captures))
	if len(captures) == 0 {
		return results, nil
	}
	workers := resolveWorkers(parallelism, len(captures))
	if workers > 1 {
		// The batch already saturates the pool; nested fan-out inside
		// each detector's bin selection would only oversubscribe the
		// scheduler. Selection results are identical either way.
		opts = append(append([]Option(nil), opts...), WithParallelism(1))
	}
	run := func(i int) {
		m := captures[i]
		if m == nil {
			results[i] = BatchResult{Err: fmt.Errorf("core: capture %d is nil", i)}
			return
		}
		events, det, err := Detect(cfg, m, opts...)
		if err != nil {
			results[i] = BatchResult{Err: fmt.Errorf("core: capture %d: %w", i, err)}
			return
		}
		results[i] = BatchResult{
			Events:      events,
			Restarts:    det.Restarts(),
			BinSwitches: det.BinSwitches(),
		}
	}
	if workers == 1 {
		for i := range captures {
			run(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		for i := range captures {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, r := range results {
		if r.Err != nil {
			return results, r.Err
		}
	}
	return results, nil
}
