package core

import (
	"math/rand"
	"testing"
)

func TestExtractWindows(t *testing.T) {
	events := []BlinkEvent{
		{Time: 10, Duration: 0.4},
		{Time: 30, Duration: 0.6},
		{Time: 70, Duration: 0.5},
		{Time: 100, Duration: 0.1}, // below the duration gate
	}
	windows, err := ExtractWindows(events, 120, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("%d windows, want 2", len(windows))
	}
	if windows[0].BlinkRate != 2 {
		t.Fatalf("window 0 rate %g, want 2", windows[0].BlinkRate)
	}
	if windows[0].MeanBlinkDuration != 0.5 {
		t.Fatalf("window 0 mean duration %g, want 0.5", windows[0].MeanBlinkDuration)
	}
	// The 0.1 s event is gated out, leaving one event in window 1.
	if windows[1].BlinkRate != 1 {
		t.Fatalf("window 1 rate %g, want 1 (gated)", windows[1].BlinkRate)
	}
}

func TestExtractWindowsFilteredNoGate(t *testing.T) {
	events := []BlinkEvent{{Time: 5, Duration: 0.05}}
	windows, err := ExtractWindowsFiltered(events, 60, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if windows[0].BlinkRate != 1 {
		t.Fatal("ungated extraction must count every event")
	}
}

func TestExtractWindowsErrors(t *testing.T) {
	if _, err := ExtractWindows(nil, 60, 0); err == nil {
		t.Fatal("zero window must be rejected")
	}
}

func TestExtractWindowsUnsortedRejected(t *testing.T) {
	events := []BlinkEvent{
		{Time: 30, Duration: 0.4},
		{Time: 10, Duration: 0.4}, // out of order
	}
	if _, err := ExtractWindows(events, 120, 60); err == nil {
		t.Fatal("out-of-order events must be rejected")
	}
	// The order check covers gated-out events too: a mis-sorted slice is
	// a caller bug regardless of which events survive the gate.
	events[1].Duration = 0.01
	if _, err := ExtractWindows(events, 120, 60); err == nil {
		t.Fatal("out-of-order gated events must still be rejected")
	}
	// Equal timestamps are fine (two detections in the same frame).
	tied := []BlinkEvent{{Time: 10, Duration: 0.4}, {Time: 10, Duration: 0.5}}
	if _, err := ExtractWindows(tied, 60, 60); err != nil {
		t.Fatalf("tied timestamps must be accepted: %v", err)
	}
}

func TestExtractWindowsBoundariesAndTail(t *testing.T) {
	events := []BlinkEvent{
		{Time: 0, Duration: 0.4},  // first instant of window 0
		{Time: 60, Duration: 0.4}, // first instant of window 1, not last of window 0
		{Time: 119.9, Duration: 0.4},
		{Time: 125, Duration: 0.4}, // partial final window: dropped
	}
	windows, err := ExtractWindows(events, 130, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("%d windows, want 2 (partial tail dropped)", len(windows))
	}
	if windows[0].BlinkRate != 1 || windows[1].BlinkRate != 2 {
		t.Fatalf("rates %g, %g; want 1, 2", windows[0].BlinkRate, windows[1].BlinkRate)
	}
	// A capture shorter than one window yields no windows and no error.
	short, err := ExtractWindows(events, 30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 0 {
		t.Fatalf("%d windows from a half-window capture, want 0", len(short))
	}
}

func TestDrowsinessModelSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mkWindows := func(rate, dur float64, n int) []WindowFeatures {
		out := make([]WindowFeatures, n)
		for i := range out {
			out[i] = WindowFeatures{
				BlinkRate:         rate + rng.NormFloat64()*1.5,
				MeanBlinkDuration: dur + rng.NormFloat64()*0.05,
			}
		}
		return out
	}
	var m DrowsinessModel
	if m.Trained() {
		t.Fatal("untrained model reports trained")
	}
	if err := m.Train(mkWindows(18, 0.25, 8), mkWindows(27, 0.55, 8)); err != nil {
		t.Fatal(err)
	}
	if !m.Trained() {
		t.Fatal("trained model reports untrained")
	}
	correct := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		awake := WindowFeatures{BlinkRate: 18 + rng.NormFloat64()*1.5, MeanBlinkDuration: 0.25 + rng.NormFloat64()*0.05}
		drowsy := WindowFeatures{BlinkRate: 27 + rng.NormFloat64()*1.5, MeanBlinkDuration: 0.55 + rng.NormFloat64()*0.05}
		if d, p, err := m.Classify(awake); err != nil {
			t.Fatal(err)
		} else if !d {
			correct++
			if p > 0.5 {
				t.Fatalf("awake classification with drowsy posterior %g", p)
			}
		}
		if d, p, err := m.Classify(drowsy); err != nil {
			t.Fatal(err)
		} else if d {
			correct++
			if p < 0.5 {
				t.Fatalf("drowsy classification with awake posterior %g", p)
			}
		}
	}
	if acc := float64(correct) / (2 * trials); acc < 0.95 {
		t.Fatalf("well-separated classes classified at %.2f, want > 0.95", acc)
	}
}

func TestDrowsinessModelWindowWithoutBlinks(t *testing.T) {
	var m DrowsinessModel
	rng := rand.New(rand.NewSource(2))
	mk := func(rate float64) []WindowFeatures {
		out := make([]WindowFeatures, 4)
		for i := range out {
			out[i] = WindowFeatures{BlinkRate: rate + rng.NormFloat64()}
		}
		return out
	}
	if err := m.Train(mk(18), mk(28)); err != nil {
		t.Fatal(err)
	}
	// Zero-duration windows (no blinks detected) must classify from
	// rate alone without error.
	if d, _, err := m.Classify(WindowFeatures{BlinkRate: 5}); err != nil || d {
		t.Fatalf("silent window classified drowsy=%v err=%v", d, err)
	}
}

func TestDrowsinessModelErrors(t *testing.T) {
	var m DrowsinessModel
	if _, _, err := m.Classify(WindowFeatures{}); err == nil {
		t.Fatal("untrained classify must fail")
	}
	if err := m.Train([]WindowFeatures{{}}, []WindowFeatures{{}, {}}); err == nil {
		t.Fatal("single-window class must be rejected")
	}
}

func TestDrowsinessModelThresholds(t *testing.T) {
	var m DrowsinessModel
	awake := []WindowFeatures{{BlinkRate: 18, MeanBlinkDuration: 0.2}, {BlinkRate: 20, MeanBlinkDuration: 0.3}}
	drowsy := []WindowFeatures{{BlinkRate: 26, MeanBlinkDuration: 0.5}, {BlinkRate: 28, MeanBlinkDuration: 0.6}}
	if err := m.Train(awake, drowsy); err != nil {
		t.Fatal(err)
	}
	ar, dr, ad, dd := m.Thresholds()
	if ar != 19 || dr != 27 {
		t.Fatalf("rate means %g/%g, want 19/27", ar, dr)
	}
	if ad != 0.25 || dd != 0.55 {
		t.Fatalf("duration means %g/%g, want 0.25/0.55", ad, dd)
	}
}
