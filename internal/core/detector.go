package core

import (
	"fmt"
	"math"
	"runtime/metrics"
	"sync/atomic"
	"time"

	"blinkradar/internal/dsp"
	"blinkradar/internal/iq"
	"blinkradar/internal/obs"
	"blinkradar/internal/rf"
)

// Detector is the complete real-time BlinkRadar pipeline. Feed frames
// as they arrive; detections are returned as soon as the corresponding
// extremum pair is confirmed (paper: one output every frame period
// after the 2 s cold start). Detector is not safe for concurrent use.
type Detector struct {
	cfg  Config
	fps  float64
	bins int

	pre     *Preprocessor
	ring    *binRing
	tracker *Tracker
	levd    *LEVD

	frame        int
	matured      bool
	everMatured  bool
	everSelected bool
	challenger   int
	bin          int
	binScore     float64
	haveBin      bool
	settleUntil  int
	restarts     int
	binSwitches  int

	// Input-sanitization and gap-handling state (see sanitize.go).
	in            InputStats
	consecRejects int
	lastGood      iq.Planes32
	haveGood      bool
	health        atomic.Int32 // HealthState; read cross-goroutine

	// Motion-restart state.
	restartAt int
	med       *dsp.StreamingMedian
	sustain   int

	// Optional diagnostics trace.
	trace      bool
	distTrace  []float64
	thrTrace   []float64
	cur        iq.Planes32 // per-frame SoA working copy
	seriesBuf  []complex128
	selScratch SelectScratch
	eventCount int

	// Metrics (nil-safe no-ops until SetRegistry attaches a registry).
	mFrames      *obs.Counter
	mBlinks      *obs.Counter
	mRestarts    *obs.Counter
	mBinSwitches *obs.Counter
	mLatency     *obs.Histogram
	mStagePre    *obs.Histogram
	mStageSelect *obs.Histogram
	mStageTrack  *obs.Histogram
	gAllocs      *obs.Gauge

	mFramesRejected *obs.Counter
	mBinsRepaired   *obs.Counter
	mBinsClamped    *obs.Counter
	mGapFrames      *obs.Counter
	mGapResets      *obs.Counter
	gHealth         *obs.Gauge

	// Allocation sampling state (process-wide heap-object deltas from
	// runtime/metrics, averaged over allocSampleEvery frames).
	allocSample     []metrics.Sample
	allocPrev       uint64
	allocPrevValid  bool
	framesSinceSamp int
}

// allocSampleEvery is how many frames pass between allocs/frame gauge
// updates; reading runtime metrics per frame would cost more than the
// hot path it watches.
const allocSampleEvery = 256

// NewDetector builds a detector for frames with numBins range bins at
// frameRate frames per second. Options override DefaultConfig-derived
// settings of cfg.
func NewDetector(cfg Config, numBins int, frameRate float64, opts ...Option) (*Detector, error) {
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numBins <= cfg.GuardBins {
		return nil, fmt.Errorf("core: need more than %d guard bins, got %d bins", cfg.GuardBins, numBins)
	}
	if frameRate <= 0 {
		return nil, fmt.Errorf("core: frame rate must be positive, got %g", frameRate)
	}
	pre, err := NewPreprocessor(cfg, numBins, frameRate)
	if err != nil {
		return nil, err
	}
	tracker, err := NewTracker(cfg.FitWindowFrames, cfg.RefitIntervalFrames, cfg.ColdStartFrames, cfg.CenterBlend)
	if err != nil {
		return nil, err
	}
	levd, err := NewLEVD(cfg, frameRate)
	if err != nil {
		return nil, err
	}
	window := cfg.SelectWindowFrames
	if window < cfg.ColdStartFrames {
		window = cfg.ColdStartFrames
	}
	med, err := dsp.NewStreamingMedian(int(frameRate*2) + 1)
	if err != nil {
		return nil, err
	}
	return &Detector{
		cfg:      cfg,
		fps:      frameRate,
		bins:     numBins,
		pre:      pre,
		ring:     newBinRing(numBins, window),
		tracker:  tracker,
		levd:     levd,
		bin:      -1,
		med:      med,
		cur:      iq.MakePlanes32(numBins),
		lastGood: iq.MakePlanes32(numBins),
	}, nil
}

// Config returns the effective configuration.
func (d *Detector) Config() Config { return d.cfg }

// DeliveryLagSec bounds how long after a blink's stamped Time the event
// can surface from Feed. Consumers that bucket events into time windows
// must hold a window open this long past its end before closing it, or
// an event delivered just after the boundary lands in no window at all.
func (d *Detector) DeliveryLagSec() float64 { return d.levd.DeliveryLagSec() }

// Reset returns the detector to its just-constructed state without
// releasing or reallocating any buffer, so a session pool can recycle
// detectors across stream churn with zero steady-state allocations.
// Unlike the internal gap-recovery path, nothing carries over: the
// background clutter estimate, sigma history, event clock and all
// counters are discarded — recycled state serves a different radar.
func (d *Detector) Reset() {
	d.pre.Reset()
	d.ring.reset()
	d.tracker.Reset()
	d.levd.ResetFull()
	d.med.Reset()
	d.frame = 0
	d.matured, d.everMatured, d.everSelected = false, false, false
	d.challenger = 0
	d.bin, d.binScore, d.haveBin = -1, 0, false
	d.settleUntil = 0
	d.restarts, d.binSwitches = 0, 0
	d.in = InputStats{}
	d.consecRejects = 0
	d.haveGood = false
	d.restartAt, d.sustain = 0, 0
	d.distTrace = d.distTrace[:0]
	d.thrTrace = d.thrTrace[:0]
	d.eventCount = 0
	d.allocPrevValid = false
	d.framesSinceSamp = 0
	d.setHealth(HealthAcquiring)
}

// SetRegistry attaches an observability registry. Call before feeding
// frames. Exported metrics:
//
//	core_frames_total            frames consumed
//	core_blinks_total            confirmed blink detections
//	core_restarts_total          motion-triggered pipeline restarts
//	core_bin_switches_total      adaptive bin migrations
//	core_frame_latency_seconds   per-frame processing latency histogram
//	core_stage_preprocess_seconds  preprocessing stage latency
//	core_stage_select_seconds    bin-selection pass latency (sparse)
//	core_stage_track_seconds     tracker+LEVD stage latency
//	core_allocs_per_frame        process heap objects allocated per frame,
//	                             sampled every allocSampleEvery frames
//	core_frames_rejected_total   frames discarded by input sanitization
//	core_bins_repaired_total     non-finite bins patched in place
//	core_bins_clamped_total      saturated bins clamped to the limit
//	core_seq_gap_frames_total    upstream frame losses reported via NoteGap
//	core_gap_resets_total        re-acquisitions forced by unbridgeable gaps
//	core_health_state            current HealthState (0=acquiring,
//	                             1=tracking, 2=reacquiring, 3=degraded)
func (d *Detector) SetRegistry(r *obs.Registry) {
	d.mFrames = r.Counter("core_frames_total")
	d.mBlinks = r.Counter("core_blinks_total")
	d.mRestarts = r.Counter("core_restarts_total")
	d.mBinSwitches = r.Counter("core_bin_switches_total")
	d.mLatency = r.Histogram("core_frame_latency_seconds", obs.DefLatencyBuckets())
	d.mStagePre = r.Histogram("core_stage_preprocess_seconds", obs.DefLatencyBuckets())
	d.mStageSelect = r.Histogram("core_stage_select_seconds", obs.DefLatencyBuckets())
	d.mStageTrack = r.Histogram("core_stage_track_seconds", obs.DefLatencyBuckets())
	d.gAllocs = r.Gauge("core_allocs_per_frame")
	d.mFramesRejected = r.Counter("core_frames_rejected_total")
	d.mBinsRepaired = r.Counter("core_bins_repaired_total")
	d.mBinsClamped = r.Counter("core_bins_clamped_total")
	d.mGapFrames = r.Counter("core_seq_gap_frames_total")
	d.mGapResets = r.Counter("core_gap_resets_total")
	d.gHealth = r.Gauge("core_health_state")
	d.gHealth.Set(float64(d.Health()))
	d.allocSample = []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
}

// sampleAllocs updates the allocs/frame gauge from the process-wide
// heap-object counter. The delta is averaged over the sampling window,
// so concurrent allocators show up as shared background noise rather
// than per-detector truth — good enough to catch a hot-path regression
// in the field.
func (d *Detector) sampleAllocs() {
	d.framesSinceSamp++
	if d.framesSinceSamp < allocSampleEvery {
		return
	}
	metrics.Read(d.allocSample)
	now := d.allocSample[0].Value.Uint64()
	if d.allocPrevValid {
		d.gAllocs.Set(float64(now-d.allocPrev) / float64(d.framesSinceSamp))
	}
	d.allocPrev = now
	d.allocPrevValid = true
	d.framesSinceSamp = 0
}

// EnableTrace records the distance waveform and threshold per frame for
// figure generation. Call before feeding frames.
func (d *Detector) EnableTrace() { d.trace = true }

// Trace returns the recorded per-frame distance waveform and threshold
// (empty unless EnableTrace was called). Frames before tracking starts
// hold zeros.
func (d *Detector) Trace() (distance, threshold []float64) {
	return d.distTrace, d.thrTrace
}

// Bin returns the currently tracked range bin (-1 before selection).
func (d *Detector) Bin() int {
	if !d.haveBin {
		return -1
	}
	return d.bin
}

// CurrentSample returns the most recent background-subtracted I/Q
// sample of the tracked bin, for consumers that analyse the same
// stream (e.g. vital-sign estimation). ok is false before bin
// selection.
func (d *Detector) CurrentSample() (z complex128, bin int, ok bool) {
	if !d.haveBin || d.ring.size() == 0 {
		return 0, -1, false
	}
	return d.ring.latest(d.bin), d.bin, true
}

// Restarts returns how many full restarts were triggered by large body
// motion.
func (d *Detector) Restarts() int { return d.restarts }

// BinSwitches returns how many adaptive bin migrations occurred.
func (d *Detector) BinSwitches() int { return d.binSwitches }

// Frame returns the number of frames consumed so far.
func (d *Detector) Frame() int { return d.frame }

// NumBins returns the per-frame bin count the detector was built for.
func (d *Detector) NumBins() int { return d.bins }

// Feed consumes one radar frame (length must equal numBins). The input
// slice is not retained or modified. It returns a detected blink and
// true when a detection is confirmed at this frame.
//
// Internally the pipeline runs on the float32 SoA layout: the frame is
// narrowed into the detector's plane scratch (the sanctioned
// float64→float32 boundary — raw samples only, never statistics) and
// every stage after that is a real-valued per-plane pass. Callers that
// already hold planes should use FeedPlanes and skip the conversion.
func (d *Detector) Feed(frame []complex128) (BlinkEvent, bool, error) {
	if len(frame) != d.bins {
		return BlinkEvent{}, false, fmt.Errorf("core: frame has %d bins, detector configured for %d", len(frame), d.bins)
	}
	timed := d.mLatency != nil
	var start time.Time
	if timed {
		start = time.Now()
		defer func() {
			d.mLatency.Observe(time.Since(start).Seconds())
			d.sampleAllocs()
		}()
	}
	d.cur.FromComplex(frame)
	return d.feedCur(timed, start)
}

// FeedPlanes is Feed for callers that already hold the frame as float32
// I/Q planes (the transport decode path), skipping the complex
// round-trip entirely. The input slices are not retained or modified.
func (d *Detector) FeedPlanes(pi, pq []float32) (BlinkEvent, bool, error) {
	if len(pi) != d.bins || len(pq) != d.bins {
		n := len(pi)
		if len(pq) != n {
			n = -1
		}
		return BlinkEvent{}, false, fmt.Errorf("core: frame has %d bins, detector configured for %d", n, d.bins)
	}
	timed := d.mLatency != nil
	var start time.Time
	if timed {
		start = time.Now()
		defer func() {
			d.mLatency.Observe(time.Since(start).Seconds())
			d.sampleAllocs()
		}()
	}
	copy(d.cur.I, pi)
	copy(d.cur.Q, pq)
	return d.feedCur(timed, start)
}

// feedCur runs the pipeline over the frame staged in d.cur.
func (d *Detector) feedCur(timed bool, start time.Time) (BlinkEvent, bool, error) {
	d.mFrames.Inc()
	if !d.sanitizeFrame(d.cur.I, d.cur.Q) {
		d.noteReject()
		return BlinkEvent{}, false, nil
	}
	d.noteAccept()
	if err := d.pre.ProcessPlanes(d.cur.I, d.cur.Q); err != nil {
		return BlinkEvent{}, false, err
	}
	if timed {
		d.mStagePre.Observe(time.Since(start).Seconds())
	}
	d.ring.push(d.cur.I, d.cur.Q)
	d.frame++

	if !d.haveBin {
		// Gate on the ring, not the absolute frame count, so that a
		// post-gap re-acquisition waits for a full window of clean
		// frames rather than firing on a near-empty ring.
		if d.ring.size() >= d.cfg.ColdStartFrames {
			d.selectBin(false)
		}
		d.pushTrace(0)
		return BlinkEvent{}, false, nil
	}

	var trackStart time.Time
	if timed {
		trackStart = time.Now()
	}
	dist, ok := d.tracker.Push(d.cur.At(d.bin))
	if !ok {
		if timed {
			d.mStageTrack.Observe(time.Since(trackStart).Seconds())
		}
		d.pushTrace(0)
		return BlinkEvent{}, false, nil
	}
	if !d.matured && d.tracker.Mature() {
		d.matured = true
		if !d.everMatured {
			// First convergence: discard the transient-contaminated
			// estimate entirely.
			d.everMatured = true
			d.levd.ResetSigma()
		}
	}
	d.levd.SetFrozen(!d.matured && d.everMatured)
	d.levd.SetFloor(d.cfg.MinThresholdFrac * d.tracker.Radius())
	ev, fired := d.levd.Push(dist, d.frame)
	if timed {
		d.mStageTrack.Observe(time.Since(trackStart).Seconds())
	}
	d.pushTrace(dist)

	d.checkMotionRestart(dist)
	if d.frame%d.cfg.ReselectIntervalFrames == 0 {
		d.maybeReselect()
	}

	if fired && d.frame >= d.settleUntil {
		ev.Bin = d.bin
		d.eventCount++
		d.mBlinks.Inc()
		return ev, true, nil
	}
	return BlinkEvent{}, false, nil
}

// pushTrace records diagnostics when tracing is enabled.
func (d *Detector) pushTrace(dist float64) {
	if !d.trace {
		return
	}
	d.distTrace = append(d.distTrace, dist)
	d.thrTrace = append(d.thrTrace, d.levd.Threshold())
}

// runSelection scores all bins over the selection ring, fanned out
// across cfg.Parallelism workers, and records the pass duration.
func (d *Detector) runSelection() (BinScore, error) {
	var start time.Time
	if d.mStageSelect != nil {
		start = time.Now()
	}
	best, _, err := SelectBinScratch(&d.selScratch, d.ring.seriesInto, d.ring.stats, d.bins, d.cfg.GuardBins, d.cfg.CandidateTopK, d.cfg.Parallelism)
	if d.mStageSelect != nil {
		d.mStageSelect.Observe(time.Since(start).Seconds())
	}
	return best, err
}

// seedTracker re-seeds the tracker from the ring history of the tracked
// bin, reusing the detector's series scratch.
func (d *Detector) seedTracker() {
	d.seriesBuf = d.ring.seriesInto(d.bin, d.seriesBuf)
	d.tracker.Reset()
	d.tracker.Seed(tail(d.seriesBuf, d.cfg.FitWindowFrames))
}

// selectBin runs eye-bin identification over the selection ring and
// seeds the tracker. reselect marks adaptive re-selection (keeps sigma).
func (d *Detector) selectBin(reselect bool) {
	best, err := d.runSelection()
	if err != nil || (best.Score <= 0 && best.Variance <= 0) {
		return
	}
	d.bin = best.Bin
	d.binScore = best.Score
	d.haveBin = true
	d.everSelected = true
	d.matured = false
	d.seedTracker()
	d.levd.Reset()
	d.setHealth(HealthTracking)
	if reselect {
		d.settleUntil = d.frame + d.cfg.SettleFrames
	}
}

// maybeReselect migrates to a clearly better bin (adaptive update of
// the observation position as the driver's posture drifts).
func (d *Detector) maybeReselect() {
	best, err := d.runSelection()
	if err != nil {
		return
	}
	d.seriesBuf = d.ring.seriesInto(d.bin, d.seriesBuf)
	d.selScratch.res = growFloats(d.selScratch.res, len(d.seriesBuf))
	current := scoreBinRes(d.bin, d.seriesBuf, d.selScratch.res[:len(d.seriesBuf)])
	d.binScore = current.Score
	if best.Bin == d.bin {
		return
	}
	if best.Score > d.cfg.SwitchScoreRatio*current.Score {
		// Demand persistence: a challenger must win two consecutive
		// evaluations, or transient interference would churn the
		// tracker through bins and keep it perpetually immature.
		if best.Bin != d.challenger {
			d.challenger = best.Bin
			return
		}
		d.challenger = -1
		d.bin = best.Bin
		d.binScore = best.Score
		d.binSwitches++
		d.mBinSwitches.Inc()
		d.matured = false
		d.seedTracker()
		d.levd.Reset()
		d.settleUntil = d.frame + d.cfg.SettleFrames
	}
}

// checkMotionRestart restarts the whole pipeline when the distance
// waveform departs from its running median for a sustained period —
// the signature of a large posture change, unlike a transient blink.
// The median window updates incrementally (O(log n) search per frame)
// instead of re-sorting a copy of the buffer every frame; the check
// itself still waits for a full window, signalled by Push's eviction
// report.
//
//blinkradar:hotpath
func (d *Detector) checkMotionRestart(dist float64) {
	if !d.med.Push(dist) {
		// Still filling the two-second window after startup.
		return
	}
	med := d.med.Median()
	sigma := d.levd.Sigma()
	if sigma <= 0 {
		return
	}
	if math.Abs(dist-med) > d.cfg.RestartVarRatio*sigma {
		d.sustain++
	} else if d.sustain > 0 {
		d.sustain--
	}
	if d.sustain >= d.cfg.MotionSustainFrames {
		d.restart()
	}
}

// restart re-runs bin selection from the current ring, re-seeds the
// tracker and clears the motion counter. A motion restart is a rare,
// deliberate stall: it re-runs the parallel bin sweep and accepts the
// allocation and the WaitGroup join, so the transitive hot-path check
// treats it as a reviewed cold branch.
//
//blinkradar:coldpath
func (d *Detector) restart() {
	d.restarts++
	d.mRestarts.Inc()
	d.sustain = 0
	d.restartAt = d.frame
	d.selectBin(true)
}

// tail returns the last n elements of s (or s itself if shorter).
func tail(s []complex128, n int) []complex128 {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

// Flush returns any event still pending at end of stream (a blink whose
// refractory window had not yet expired).
func (d *Detector) Flush() (BlinkEvent, bool) {
	ev, ok := d.levd.Flush()
	if ok {
		ev.Bin = d.bin
	}
	return ev, ok && d.frame >= d.settleUntil
}

// Detect runs the full pipeline over a recorded capture and returns all
// detected blinks. It is the offline entry point used by experiments.
func Detect(cfg Config, m *rf.FrameMatrix, opts ...Option) ([]BlinkEvent, *Detector, error) {
	det, err := NewDetector(cfg, m.NumBins(), m.FrameRate, opts...)
	if err != nil {
		return nil, nil, err
	}
	var events []BlinkEvent
	for _, frame := range m.Data {
		ev, ok, err := det.Feed(frame)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			events = append(events, ev)
		}
	}
	if ev, ok := det.Flush(); ok {
		events = append(events, ev)
	}
	return events, det, nil
}
