package core

import (
	"fmt"
	"math"
	"sort"
)

func sqrtFast(v float64) float64 { return math.Sqrt(v) }

// maxBlinkExtent is the longest plausible single blink in seconds;
// threshold crossings inside this window of a blink onset are treated
// as edges of the same blink.
const maxBlinkExtent = 1.2

// BlinkEvent is one detected eye blink.
type BlinkEvent struct {
	// Time is the blink onset/apex time in seconds from capture start
	// (the earlier extremum of the triggering pair).
	Time float64
	// Duration is the estimated full blink duration in seconds.
	Duration float64
	// Amplitude is the distance-waveform excursion that triggered the
	// detection.
	Amplitude float64
	// Confidence is Amplitude over the detection threshold at firing
	// time (always > 1). Blink transients typically score well above
	// the marginal interference crossings, so downstream consumers —
	// the drowsiness rate counter in particular — can gate on it.
	Confidence float64
	// Bin is the range bin the detection was made on.
	Bin int
}

// LEVD implements the paper's local extreme value detection
// (Section IV-E, "Extreme value separation"): find alternating local
// maxima and minima of the distance waveform and declare a blink when
// the difference between two neighbouring extrema exceeds ThresholdK
// times the no-blink standard deviation.
//
// The waveform is first smoothed and detrended with a trailing moving
// median, so the extremum comparison sees only transients; the no-blink
// sigma is a rolling MAD of the detrended residual, which sparse blink
// outliers cannot inflate.
type LEVD struct {
	k            float64
	minThreshold float64
	floor        float64
	fps          float64
	refractory   float64
	frozen       bool
	// lagFrames is the group delay of the streaming distance-waveform
	// smoother. Like dsp.FIRStream, a causal trailing window cannot be
	// delay-compensated the way the offline FIRFilter.Apply path is, so
	// features surface lagFrames after the samples that caused them;
	// event timestamps subtract it to stay aligned with the offline
	// (and camera ground-truth) timeline.
	lagFrames float64

	// Distance-waveform smoothing.
	smoothBuf []float64
	smoothPos int
	smoothCnt int

	// Trailing moving-median detrend.
	trendRing   []float64
	trendSorted []float64
	trendPos    int
	trendCnt    int

	// Rolling robust sigma of the residual.
	sigmaBuf    []float64
	sigmaPos    int
	sigmaCnt    int
	sigmaSorted []float64 // sorted mirror of sigmaBuf[:sigmaCnt]
	sigma       float64
	tail80      float64
	tailGuardK  float64
	sinceSigma  int
	sigmaEvery  int

	// Extremum tracking.
	prev     float64
	dir      int // +1 rising, -1 falling, 0 unknown
	havePrev bool
	extVal   float64
	extIdx   int
	extMax   bool
	haveExt  bool

	lastEvent float64
	frame     int

	// Pending event: a fired detection is held until the bump's
	// ringing ends (refractory expiry) so its duration can cover the
	// full rise-to-fall extent.
	pending      BlinkEvent
	pendingSpan  float64
	havePending  bool
	pendingStart float64
}

// NewLEVD constructs a detector from the pipeline configuration.
func NewLEVD(cfg Config, fps float64) (*LEVD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fps <= 0 {
		return nil, fmt.Errorf("core: fps must be positive, got %g", fps)
	}
	sigmaWin := int(cfg.SigmaWindowSec * fps)
	if sigmaWin < 10 {
		sigmaWin = 10
	}
	return &LEVD{
		k:            cfg.ThresholdK,
		tailGuardK:   cfg.TailGuardK,
		minThreshold: cfg.MinThreshold,
		fps:          fps,
		refractory:   cfg.RefractorySec,
		lagFrames:    float64((cfg.DistanceSmoothFrames - 1) / 2),
		smoothBuf:    make([]float64, cfg.DistanceSmoothFrames),
		trendRing:    make([]float64, cfg.DetrendWindowFrames),
		trendSorted:  make([]float64, 0, cfg.DetrendWindowFrames),
		sigmaBuf:     make([]float64, sigmaWin),
		sigmaEvery:   int(fps),
		sigmaSorted:  make([]float64, 0, sigmaWin),
		lastEvent:    math.Inf(-1),
	}, nil
}

// Threshold returns the current detection threshold (k * sigma, with
// the configured floors).
func (l *LEVD) Threshold() float64 {
	thr := l.k * l.sigma
	// Tail guard: respiration- and vibration-driven amplitude wobble
	// has heavy-tailed deviation statistics that a MAD underestimates.
	// Keeping the threshold above a high quantile of recent baseline
	// deviations suppresses those periodic false crossings.
	if t := l.tailGuardK * l.tail80; t > thr {
		thr = t
	}
	if thr < l.minThreshold {
		thr = l.minThreshold
	}
	if thr < l.floor {
		thr = l.floor
	}
	return thr
}

// Sigma returns the current no-blink sigma estimate.
func (l *LEVD) Sigma() float64 { return l.sigma }

// SetFloor sets an additional dynamic threshold floor (e.g. a fraction
// of the tracked arc radius).
func (l *LEVD) SetFloor(f float64) { l.floor = f }

// SetFrozen pauses (true) or resumes (false) sigma adaptation. The
// detector freezes the estimate while the tracker re-converges after a
// restart, so the transient does not inflate the threshold; the last
// converged sigma keeps gating detections meanwhile.
func (l *LEVD) SetFrozen(frozen bool) { l.frozen = frozen }

// ResetSigma discards the rolling sigma history. The detector calls it
// once the tracker first matures, so the centre-convergence transient
// does not linger in the threshold estimate.
func (l *LEVD) ResetSigma() {
	l.sigmaPos, l.sigmaCnt = 0, 0
	l.sigmaSorted = l.sigmaSorted[:0]
	l.sigma = 0
	l.tail80 = 0
	l.sinceSigma = 0
}

// Push feeds the distance sample for capture frame index frame
// (monotonically increasing across restarts). It returns a detected
// blink and true when an extremum pair crosses the threshold.
//
//blinkradar:hotpath
func (l *LEVD) Push(d float64, frame int) (BlinkEvent, bool) {
	l.frame = frame
	v := l.smooth(d)
	base, ok := l.detrend(v)
	if !ok {
		return BlinkEvent{}, false
	}
	r := v - base
	if !l.frozen || l.sigma == 0 {
		l.updateSigma(r)
	}
	l.step(r)
	// Emit the pending event once its bump has stopped ringing: no
	// above-threshold extremum for a full refractory period.
	if l.havePending && float64(frame)/l.fps-l.lastEvent > l.refractory {
		return l.finalizePending(), true
	}
	return BlinkEvent{}, false
}

// finalizePending closes the pending event, deriving its duration from
// the full extent of above-threshold activity (onset to the last
// extension). Single-crossing interference has no extension and ends up
// with the floor duration, which downstream rate counting filters out.
func (l *LEVD) finalizePending() BlinkEvent {
	ev := l.pending
	ring := l.lastEvent - l.pendingStart
	dur := ring + 0.12
	if alt := l.pendingSpan * 3; alt > dur {
		dur = alt
	}
	ev.Duration = clamp(dur, 0.075, 1.5)
	l.havePending = false
	return ev
}

// Flush returns any pending event at end of stream.
func (l *LEVD) Flush() (BlinkEvent, bool) {
	if !l.havePending {
		return BlinkEvent{}, false
	}
	return l.finalizePending(), true
}

// smooth applies the streaming moving average.
//
//blinkradar:hotpath
func (l *LEVD) smooth(d float64) float64 {
	l.smoothBuf[l.smoothPos] = d
	l.smoothPos = (l.smoothPos + 1) % len(l.smoothBuf)
	if l.smoothCnt < len(l.smoothBuf) {
		l.smoothCnt++
	}
	var acc float64
	for i := 0; i < l.smoothCnt; i++ {
		acc += l.smoothBuf[i]
	}
	return acc / float64(l.smoothCnt)
}

// detrend maintains the trailing moving median and returns it once the
// window has filled enough to be meaningful. The sorted mirror of the
// ring is edited with copy-based insert/remove inside its pre-allocated
// capacity (cap == DetrendWindowFrames, fixed at construction), so the
// per-frame path never reallocates.
//
//blinkradar:hotpath
func (l *LEVD) detrend(v float64) (float64, bool) {
	w := len(l.trendRing)
	if l.trendCnt == w {
		old := l.trendRing[l.trendPos]
		i := sort.SearchFloat64s(l.trendSorted, old)
		copy(l.trendSorted[i:], l.trendSorted[i+1:])
		l.trendSorted = l.trendSorted[:len(l.trendSorted)-1]
	} else {
		l.trendCnt++
	}
	l.trendRing[l.trendPos] = v
	l.trendPos = (l.trendPos + 1) % w
	i := sort.SearchFloat64s(l.trendSorted, v)
	l.trendSorted = l.trendSorted[:len(l.trendSorted)+1]
	copy(l.trendSorted[i+1:], l.trendSorted[i:])
	l.trendSorted[i] = v
	if l.trendCnt < w/2 {
		return 0, false
	}
	return l.trendSorted[len(l.trendSorted)/2], true
}

// updateSigma maintains the rolling MAD-based sigma estimate. The
// window ring keeps a sorted mirror, edited with copy-based
// insert/remove inside its pre-allocated capacity (the same idiom as
// detrend's median window), so each recomputation reads order
// statistics instead of sorting: the median is one indexed load, and
// the MAD plus 80th-percentile deviation come from a single outward
// two-pointer merge from the median — the absolute deviations of a
// sorted array are the merge of two sorted runs, one descending to the
// left of the median and one ascending to the right. The estimates are
// bit-identical to the sort-based implementation (same multisets, same
// ranks) at a fraction of the cost: O(log n) search plus one memmove
// per frame and one O(n) branch-light scan per recomputation, against
// two O(n log n) sorts.
//
//blinkradar:hotpath
func (l *LEVD) updateSigma(v float64) {
	if l.sigmaCnt == len(l.sigmaBuf) {
		old := l.sigmaBuf[l.sigmaPos]
		i := sort.SearchFloat64s(l.sigmaSorted, old)
		copy(l.sigmaSorted[i:], l.sigmaSorted[i+1:])
		l.sigmaSorted = l.sigmaSorted[:len(l.sigmaSorted)-1]
	} else {
		l.sigmaCnt++
	}
	l.sigmaBuf[l.sigmaPos] = v
	l.sigmaPos = (l.sigmaPos + 1) % len(l.sigmaBuf)
	i := sort.SearchFloat64s(l.sigmaSorted, v)
	l.sigmaSorted = l.sigmaSorted[:len(l.sigmaSorted)+1]
	copy(l.sigmaSorted[i+1:], l.sigmaSorted[i:])
	l.sigmaSorted[i] = v
	l.sinceSigma++
	if l.sinceSigma < l.sigmaEvery && l.sigma > 0 {
		return
	}
	l.sinceSigma = 0
	n := l.sigmaCnt
	if n < 10 {
		return
	}
	s := l.sigmaSorted
	med := s[n/2]
	// Outward merge over the deviations |s[i]-med|: rank 0 is the
	// median itself (deviation 0), then each step consumes the smaller
	// of the next deviation leftward (med-s[lp]) or rightward
	// (s[rp]-med). Exhausted sides yield +Inf so the other side drains.
	kMad := n / 2
	k80 := n * 4 / 5
	lp, rp := n/2-1, n/2+1
	cur := 0.0
	for taken := 0; taken < k80; taken++ {
		dl, dr := math.Inf(1), math.Inf(1)
		if lp >= 0 {
			dl = med - s[lp]
		}
		if rp < n {
			dr = s[rp] - med
		}
		if dl <= dr {
			cur = dl
			lp--
		} else {
			cur = dr
			rp++
		}
		if taken+1 == kMad {
			// 1.4826 scales MAD to sigma for Gaussian noise.
			l.sigma = 1.4826 * cur
		}
	}
	l.tail80 = cur
}

// step runs the extremum state machine and detection rule.
//
//blinkradar:hotpath
func (l *LEVD) step(v float64) {
	if !l.havePrev {
		l.prev = v
		l.havePrev = true
		return
	}
	var newDir int
	switch {
	case v > l.prev:
		newDir = 1
	case v < l.prev:
		newDir = -1
	default:
		newDir = l.dir
	}
	if l.dir != 0 && newDir != l.dir && newDir != 0 {
		// Direction flipped at the previous sample: it was an extremum.
		l.onExtremum(extremum{val: l.prev, idx: l.frame - 1, max: l.dir > 0})
	}
	l.prev = v
	l.dir = newDir
}

type extremum struct {
	val float64
	idx int
	max bool
}

// onExtremum compares the new extremum with the previous one of the
// opposite kind and applies the threshold rule. The previous extremum is
// captured in locals and the fields updated up front, replacing an
// earlier deferred closure that allocated on every direction flip.
//
//blinkradar:hotpath
func (l *LEVD) onExtremum(e extremum) {
	prevVal, prevIdx, prevMax, hadExt := l.extVal, l.extIdx, l.extMax, l.haveExt
	l.extVal, l.extIdx, l.extMax, l.haveExt = e.val, e.idx, e.max, true
	if !hadExt || prevMax == e.max {
		return
	}
	diff := math.Abs(e.val - prevVal)
	if l.sigma == 0 || diff <= l.Threshold() {
		return
	}
	// Timestamp at the earlier extremum of the pair: for the closing
	// edge that is the bump onset, for the reopening edge the bump
	// apex — either lies within the blink interval, whereas the later
	// extremum of a reopening pair can trail the blink entirely. The
	// smoother's group delay is subtracted so streaming timestamps match
	// the offline timeline (see the lagFrames field).
	t := (float64(prevIdx) - l.lagFrames) / l.fps
	if t < 0 {
		t = 0
	}
	// A trigger belongs to the current blink while it falls inside the
	// refractory window of the last trigger or within the maximum
	// plausible blink extent of the pending onset (a slow reopening
	// edge can trail the onset by most of a second). Once the pending
	// event has been emitted, only the refractory applies: suppressing
	// further would swallow genuine consecutive blinks, whose onsets
	// can be as close as ~1.3 s. The residual cost is a possible echo
	// detection ~1.2 s after an unusually long closure, which the
	// duration gate keeps out of the blink-rate statistics.
	samePending := l.havePending && t-l.pendingStart < maxBlinkExtent
	if t-l.lastEvent < l.refractory || samePending {
		if t > l.lastEvent {
			l.lastEvent = t
		}
		if l.havePending && diff > l.pending.Amplitude {
			l.pending.Amplitude = diff
			l.pending.Confidence = diff / l.Threshold()
		}
		return
	}
	l.lastEvent = t
	span := math.Abs(float64(e.idx-prevIdx)) / l.fps
	l.pending = BlinkEvent{Time: t, Amplitude: diff, Confidence: diff / l.Threshold()}
	l.pendingSpan = span
	l.pendingStart = t
	l.havePending = true
}

// Reset clears the waveform state (used after tracker restarts). The
// sigma estimate is retained: the noise floor of the new viewing
// position is close to the old one, and keeping it avoids a blind
// re-estimation window.
func (l *LEVD) Reset() {
	l.havePending = false
	l.smoothPos, l.smoothCnt = 0, 0
	l.trendPos, l.trendCnt = 0, 0
	l.trendSorted = l.trendSorted[:0]
	l.havePrev = false
	l.haveExt = false
	l.dir = 0
}

// ResetFull returns the detector to its as-constructed state without
// reallocating any buffer: sigma history, the event clock and the
// pending event are discarded along with the waveform state. Reset is
// for same-stream restarts, where the noise floor and refractory carry
// over; ResetFull is for recycling the detector onto a different stream
// (session pooling), where nothing may carry over.
func (l *LEVD) ResetFull() {
	l.Reset()
	l.ResetSigma()
	l.floor = 0
	l.frozen = false
	l.lastEvent = math.Inf(-1)
	l.frame = 0
	l.pending = BlinkEvent{}
	l.pendingSpan = 0
	l.pendingStart = 0
	l.prev = 0
	l.extVal, l.extIdx, l.extMax = 0, 0, false
}

// DeliveryLagSec bounds how long after an event's stamped Time the
// event can surface from Push (or Flush). An event is stamped at the
// earlier extremum of its triggering pair minus the smoother group
// delay, but is only emitted once its bump stops ringing: no further
// above-threshold extremum for a full refractory period, with ringing
// itself bounded by maxBlinkExtent past the onset. Window accounting
// that waits this long past a boundary before closing the window is
// guaranteed to have seen every event belonging to it (assuming the
// ringing bound holds; pathological sustained ringing can exceed it).
func (l *LEVD) DeliveryLagSec() float64 {
	return maxBlinkExtent + l.refractory + (l.lagFrames+2)/l.fps
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
