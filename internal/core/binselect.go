package core

import (
	"fmt"
	"math"

	"blinkradar/internal/iq"
	"blinkradar/internal/rf"
)

// BinScore is the selection diagnostics for one range bin.
type BinScore struct {
	// Bin is the range-bin index.
	Bin int
	// Variance is the 2-D I/Q variance of the bin's recent samples.
	Variance float64
	// ArcQuality in [0, 1] rewards bins whose samples lie on a clean
	// circular arc (embedded respiration/BCG interference) and
	// penalises bins whose variance comes from amplitude churn such as
	// chest bin-migration or passenger fidgeting.
	ArcQuality float64
	// Score is the combined selection score.
	Score float64
}

// ScoreBin evaluates one bin's slow-time window. The paper first ranks
// bins by 2-D variance, then validates with the arc fit that also
// yields the viewing position; combining both here folds that
// validation into a single score. One moment accumulation over the
// window feeds the variance, the Pratt fit and the eccentricity; only
// the trimmed residual and the angular extent still walk the samples.
func ScoreBin(bin int, series []complex128) BinScore {
	return scoreBinRes(bin, series, make([]float64, len(series)))
}

// scoreBinRes is ScoreBin with a caller-owned residual buffer for the
// trimmed arc fit (len(res) == len(series)).
func scoreBinRes(bin int, series []complex128, res []float64) BinScore {
	var mom iq.SlidingMoments
	mom.Accumulate(series)
	s := BinScore{Bin: bin, Variance: mom.Variance2D()}
	if s.Variance <= 0 {
		return s
	}
	c, err := mom.FitPratt()
	if err != nil || c.Radius <= 0 {
		s.ArcQuality = 0
		return s
	}
	// Judge arc quality on a trimmed residual: blinks throw ~15% of the
	// eye bin's samples off the circle, and punishing that would bias
	// selection toward blink-free neighbours (chin, forehead) whose
	// bins carry no blink signature.
	rel := trimmedRMSE(series, c, res) / (0.15 * c.Radius)
	s.ArcQuality = 1 / (1 + rel*rel)
	// Embedded vital-sign interference at the eye subtends a short arc
	// (millimetre motion -> well under a radian of phase). Bins whose
	// trajectories wrap far around the circle get their variance from
	// centimetre-scale motion — chest breathing, limb movement, a
	// fidgeting passenger — and are down-weighted hard (quadratically).
	const maxArcRad = 2.0
	if ext := iq.AngularExtent(series, c.Center); ext > maxArcRad {
		p := maxArcRad / ext
		s.ArcQuality *= p * p * p
	}
	// Short arcs are strongly anisotropic point clouds; full rotations
	// and noise balls are not. Eccentricity separates them even when
	// variance alone cannot.
	ecc := mom.Eccentricity()
	s.ArcQuality *= 0.1 + 0.9*ecc*ecc
	s.Score = s.Variance * s.ArcQuality
	return s
}

// BinSeries supplies the recent background-subtracted slow-time samples
// of one range bin. Implementations fill buf (growing it when its
// capacity is too small) and return the filled slice, so callers that
// score many bins can reuse one window buffer per worker instead of
// allocating per bin. Implementations must be safe for concurrent calls
// with distinct buffers.
type BinSeries func(bin int, buf []complex128) []complex128

// BinStats supplies the covariance entries of one bin's recent
// slow-time window in O(1), typically from sliding sums maintained on
// push (see binRing): varI and varQ are the per-axis variances about
// the centroid, covIQ the cross term. Passing nil to the selection
// entry points falls back to walking every bin's series, which is
// O(bins·window) with a copy per bin. The covariance also tightens the
// candidate pruning bound: arc quality never exceeds the eccentricity
// factor, which is a pure function of these three entries.
type BinStats func(bin int) (varI, varQ, covIQ float64)

// SelectScratch holds the reusable working storage of one selection
// sweep: the per-bin variance ranking, the candidate bound ordering,
// the gathered series window and the residual buffer of the trimmed
// arc fit. A zero value is ready to use; buffers grow on first use and
// are reused afterwards, so a caller that owns a scratch (the
// streaming detector, the offline matrix path) runs selection without
// per-call allocation. The candidate slice returned by
// SelectBinScratch aliases the scratch and is valid until the next
// call with the same scratch.
type SelectScratch struct {
	variances  []BinScore
	candidates []BinScore
	bounds     []float64
	order      []int
	series     []complex128
	res        []float64
}

// SelectBin picks the eye's range bin from per-bin slow-time windows.
// Bins below guard are excluded (antenna direct path). The topK
// highest-variance candidates are arc-scored, and the best combined
// score wins. It returns the winning score and the topK candidates
// sorted by descending score; candidates whose statistics prove they
// cannot win (a bin's score never exceeds its variance times its
// eccentricity factor) are skipped by the scoring bound and carry their
// variance with a zero score. topK must be positive; stats may be nil.
func SelectBin(series BinSeries, stats BinStats, numBins, guard, topK int) (BinScore, []BinScore, error) {
	return SelectBinParallel(series, stats, numBins, guard, topK, 1)
}

// SelectBinParallel is SelectBin with the nil-stats variance pass
// fanned out across a bounded worker pool (workers <= 0 selects
// GOMAXPROCS). With a non-nil stats source that pass is O(bins) reads
// and runs serially — forking workers would cost more than the reads.
// The candidate arc scoring itself is a sequential bound-ordered scan
// with early exit (see below), so it prunes most candidates outright
// instead of fanning them out; results are bit-identical for any
// worker count.
func SelectBinParallel(series BinSeries, stats BinStats, numBins, guard, topK, workers int) (BinScore, []BinScore, error) {
	var scr SelectScratch
	return SelectBinScratch(&scr, series, stats, numBins, guard, topK, workers)
}

// SelectBinScratch is SelectBinParallel with caller-owned working
// storage; repeated calls with the same scratch allocate nothing once
// the buffers have grown to the problem size. The returned candidate
// slice aliases the scratch.
func SelectBinScratch(scr *SelectScratch, series BinSeries, stats BinStats, numBins, guard, topK, workers int) (BinScore, []BinScore, error) {
	if numBins <= guard {
		return BinScore{}, nil, fmt.Errorf("core: no bins beyond guard (%d bins, guard %d)", numBins, guard)
	}
	if topK <= 0 {
		return BinScore{}, nil, fmt.Errorf("core: candidate count must be positive, got %d", topK)
	}
	scr.variances = growBinScores(scr.variances, numBins-guard)
	variances := scr.variances
	if stats != nil {
		for i := range variances {
			varI, varQ, _ := stats(guard + i)
			variances[i] = BinScore{Bin: guard + i, Variance: varI + varQ}
		}
	} else if err := parallelChunks(len(variances), workers, func(lo, hi int) error {
		var buf []complex128
		for i := lo; i < hi; i++ {
			buf = series(guard+i, buf)
			variances[i] = BinScore{Bin: guard + i, Variance: iq.Variance2D(buf)}
		}
		return nil
	}); err != nil {
		return BinScore{}, nil, err
	}
	if topK > len(variances) {
		topK = len(variances)
	}
	// Only the topK highest-variance bins are ever arc-scored, so a
	// partial selection beats sorting the whole ranking; topK is small
	// (tens), so insertion sorts beat sort.Slice's indirection — and
	// allocate nothing.
	partitionTopVariance(variances, topK)
	for i := 1; i < topK; i++ {
		v := variances[i]
		j := i - 1
		for j >= 0 && (variances[j].Variance < v.Variance ||
			(variances[j].Variance == v.Variance && variances[j].Bin > v.Bin)) {
			variances[j+1] = variances[j]
			j--
		}
		variances[j+1] = v
	}
	// Branch-and-bound over the candidates. Every ArcQuality factor is
	// <= 1, so Score <= Variance; with covariance stats the bound
	// tightens to Variance·(0.1+0.9·ecc²), separating short-arc bins
	// from motion clouds of larger variance but weaker elongation.
	// Candidates are visited in descending bound order, so the moment
	// one candidate's bound falls below the best realised score, every
	// remaining candidate is proven a loser and is returned with its
	// variance only, unscored. The visit order depends only on the
	// deterministic candidate ranking, never on worker scheduling, so
	// any worker count returns bit-identical results.
	scr.bounds = growFloats(scr.bounds, topK)
	scr.order = growInts(scr.order, topK)
	bounds, order := scr.bounds, scr.order
	for i := 0; i < topK; i++ {
		bounds[i] = variances[i].Variance
		if stats != nil {
			varI, varQ, covIQ := stats(variances[i].Bin)
			ecc := iq.EccentricityFromCov(varI, varQ, covIQ)
			bounds[i] *= 0.1 + 0.9*ecc*ecc
		}
		order[i] = i
	}
	for i := 1; i < topK; i++ {
		o := order[i]
		j := i - 1
		for j >= 0 && (bounds[order[j]] < bounds[o] ||
			(bounds[order[j]] == bounds[o] && variances[order[j]].Bin > variances[o].Bin)) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = o
	}
	scr.candidates = growBinScores(scr.candidates, topK)
	candidates := scr.candidates
	bestScore := math.Inf(-1)
	for _, i := range order[:topK] {
		if bounds[i] < bestScore {
			candidates[i] = variances[i]
			continue
		}
		scr.series = series(variances[i].Bin, scr.series)
		scr.res = growFloats(scr.res, len(scr.series))
		candidates[i] = scoreBinRes(variances[i].Bin, scr.series, scr.res[:len(scr.series)])
		if candidates[i].Score > bestScore {
			bestScore = candidates[i].Score
		}
	}
	for i := 1; i < topK; i++ {
		c := candidates[i]
		j := i - 1
		for j >= 0 && (candidates[j].Score < c.Score ||
			(candidates[j].Score == c.Score && candidates[j].Bin > c.Bin)) {
			candidates[j+1] = candidates[j]
			j--
		}
		candidates[j+1] = c
	}
	best := candidates[0]
	if best.Score <= 0 {
		// No arc-like bin: fall back to raw variance (still better
		// than nothing, and the tracker's restart logic will recover).
		best = variances[0]
	}
	return best, candidates[:topK], nil
}

// growBinScores, growFloats and growInts resize a scratch slice to n
// elements, reallocating only when its capacity is too small.
func growBinScores(s []BinScore, n int) []BinScore {
	if cap(s) < n {
		return make([]BinScore, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// SelectBinMatrix is the offline convenience: selects the eye bin from
// the trailing window of a preprocessed frame matrix, scoring
// candidates across cfg.Parallelism workers. The variance ranking comes
// from per-bin sums accumulated in one frame-major sweep — sequential
// in memory, no per-bin series copies — so only the topK candidates
// ever have their windows gathered.
func SelectBinMatrix(cfg Config, m *rf.FrameMatrix) (BinScore, error) {
	window := cfg.SelectWindowFrames
	if window > m.NumFrames() {
		window = m.NumFrames()
	}
	start := m.NumFrames() - window
	bins := m.NumBins()
	// One backing array for all five per-bin sums: the sweep below is
	// the only consumer, and a single allocation keeps the offline path
	// as lean as the streaming one.
	sums := make([]float64, 5*bins)
	sumI := sums[0*bins : 1*bins]
	sumQ := sums[1*bins : 2*bins]
	sumII := sums[2*bins : 3*bins]
	sumQQ := sums[3*bins : 4*bins]
	sumIQ := sums[4*bins : 5*bins]
	for k := 0; k < window; k++ {
		row := m.Data[start+k]
		for b, z := range row {
			x, y := real(z), imag(z)
			sumI[b] += x
			sumQ[b] += y
			sumII[b] += x * x
			sumQQ[b] += y * y
			sumIQ[b] += x * y
		}
	}
	stats := func(bin int) (float64, float64, float64) {
		return covFromSums(sumI[bin], sumQ[bin], sumII[bin], sumQQ[bin], sumIQ[bin], window)
	}
	best, _, err := SelectBinParallel(func(bin int, buf []complex128) []complex128 {
		if cap(buf) < window {
			buf = make([]complex128, window)
		}
		buf = buf[:window]
		for k := 0; k < window; k++ {
			buf[k] = m.Data[start+k][bin]
		}
		return buf
	}, stats, m.NumBins(), cfg.GuardBins, cfg.CandidateTopK, cfg.Parallelism)
	return best, err
}

// covFromSums recovers the centroid-centred covariance entries from
// sliding sums of I, Q, I², Q² and I·Q over n samples, clamping the
// tiny negative axis variances rounding can produce on near-constant
// bins.
//
//blinkradar:hotpath
func covFromSums(sumI, sumQ, sumII, sumQQ, sumIQ float64, n int) (varI, varQ, covIQ float64) {
	if n < 2 {
		return 0, 0, 0
	}
	fn := float64(n)
	mi := sumI / fn
	mq := sumQ / fn
	varI = sumII/fn - mi*mi
	varQ = sumQQ/fn - mq*mq
	covIQ = sumIQ/fn - mi*mq
	if varI < 0 {
		varI = 0
	}
	if varQ < 0 {
		varQ = 0
	}
	return varI, varQ, covIQ
}

// trimmedRMSE returns the RMS radial residual of the best 80% of
// samples, using res (len(series) elements) as working storage. The
// trim needs only the k smallest squared residuals, in any order, so a
// quickselect partition replaces the full sort.
func trimmedRMSE(series []complex128, c iq.Circle, res []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	for i, z := range series {
		d := z - c.Center
		// Plain sqrt, not Hypot: samples are sanitized upstream, so the
		// squared magnitude cannot overflow and the guard is pure cost.
		r := math.Sqrt(real(d)*real(d)+imag(d)*imag(d)) - c.Radius
		res[i] = r * r
	}
	keep := len(res) * 4 / 5
	if keep < 1 {
		keep = 1
	}
	partitionSmallest(res, keep)
	var acc float64
	for _, v := range res[:keep] {
		acc += v
	}
	return math.Sqrt(acc / float64(keep))
}

// partitionTopVariance reorders scores so its first k elements are the
// k best by descending variance with ascending bin index breaking ties
// (the exact order sort.Slice would produce), in unspecified relative
// order. Iterative Hoare quickselect, median-of-three pivots.
func partitionTopVariance(scores []BinScore, k int) {
	before := func(a, b BinScore) bool {
		if a.Variance != b.Variance {
			return a.Variance > b.Variance
		}
		return a.Bin < b.Bin
	}
	lo, hi := 0, len(scores)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if before(scores[mid], scores[lo]) {
			scores[mid], scores[lo] = scores[lo], scores[mid]
		}
		if before(scores[hi], scores[lo]) {
			scores[hi], scores[lo] = scores[lo], scores[hi]
		}
		if before(scores[hi], scores[mid]) {
			scores[hi], scores[mid] = scores[mid], scores[hi]
		}
		pivot := scores[mid]
		i, j := lo, hi
		for i <= j {
			for before(scores[i], pivot) {
				i++
			}
			for before(pivot, scores[j]) {
				j--
			}
			if i <= j {
				scores[i], scores[j] = scores[j], scores[i]
				i++
				j--
			}
		}
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			return
		}
	}
}

// partitionSmallest reorders res so that its first k elements are the k
// smallest values, in unspecified order: an iterative Hoare quickselect
// with median-of-three pivoting. 1 <= k <= len(res).
func partitionSmallest(res []float64, k int) {
	lo, hi := 0, len(res)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if res[mid] < res[lo] {
			res[mid], res[lo] = res[lo], res[mid]
		}
		if res[hi] < res[lo] {
			res[hi], res[lo] = res[lo], res[hi]
		}
		if res[hi] < res[mid] {
			res[hi], res[mid] = res[mid], res[hi]
		}
		pivot := res[mid]
		i, j := lo, hi
		for i <= j {
			for res[i] < pivot {
				i++
			}
			for res[j] > pivot {
				j--
			}
			if i <= j {
				res[i], res[j] = res[j], res[i]
				i++
				j--
			}
		}
		// Recurse (iteratively) only into the side holding index k-1.
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			return
		}
	}
}

// binRing stores the most recent `window` frames of every bin for
// selection scoring, as two struct-of-arrays float32 planes laid out
// frame-major: frame slot s holds bufI[s*bins : (s+1)*bins] /
// bufQ[...]. Frames arrive frame-major, so push is two contiguous
// bins-sized copies — the cheapest possible ingest — and the float32
// planes halve the ring's memory footprint against the row-major
// []complex128 layout they replace.
//
// The per-bin consumers (stats sweeps and candidate series gathers)
// read with a bins-sized stride instead of contiguously, but they run
// only at selection cadence (every ReselectIntervalFrames) plus
// cold-start, where the whole ring is a couple of L2-resident passes;
// paying stride there is far cheaper than transposing every frame on
// the per-push hot path was.
//
// No per-push statistics are maintained either. Selection stats are
// recomputed exactly from the stored samples on demand (stats), which
// at selection cadence costs less than keeping sliding sums coherent
// on every push — and leaves nothing to drift, so the old round-robin
// renormalization machinery is gone entirely.
type binRing struct {
	bufI   []float32 // window * bins, frame-major
	bufQ   []float32
	bins   int
	window int
	pos    int
	count  int
}

func newBinRing(bins, window int) *binRing {
	return &binRing{
		bufI:   make([]float32, window*bins),
		bufQ:   make([]float32, window*bins),
		bins:   bins,
		window: window,
	}
}

// push appends one frame of planes (len == bins each). The input
// slices are copied, not retained.
//
//blinkradar:hotpath
func (r *binRing) push(pi, pq []float32) {
	off := r.pos * r.bins
	copy(r.bufI[off:off+r.bins], pi)
	copy(r.bufQ[off:off+r.bins], pq)
	r.pos++
	if r.pos == r.window {
		r.pos = 0
	}
	if r.count < r.window {
		r.count++
	}
}

// size returns how many frames of history the ring holds, capped at
// the window.
func (r *binRing) size() int { return r.count }

// stats returns one bin's centred covariance entries, recomputed
// exactly from the stored window in one strided pass over each plane
// (slots are visited in storage order; the sums are
// order-independent). It satisfies the BinStats contract and is safe
// to call concurrently with other readers — it only reads.
//
//blinkradar:hotpath
func (r *binRing) stats(bin int) (varI, varQ, covIQ float64) {
	var si, sq, sii, sqq, siq float64
	for idx := bin; idx < r.count*r.bins; idx += r.bins {
		i := float64(r.bufI[idx])
		q := float64(r.bufQ[idx])
		si += i
		sq += q
		sii += i * i
		sqq += q * q
		siq += i * q
	}
	return covFromSums(si, sq, sii, sqq, siq, r.count)
}

// variance returns the total 2-D variance of one bin's stored window.
//
//blinkradar:hotpath
func (r *binRing) variance(bin int) float64 {
	varI, varQ, _ := r.stats(bin)
	return varI + varQ
}

// series returns the stored samples of one bin, oldest first, in a
// fresh slice.
func (r *binRing) series(bin int) []complex128 {
	return r.seriesInto(bin, nil)
}

// seriesInto fills buf with the stored samples of one bin, oldest
// first, growing it only when its capacity is too small, and returns
// the filled slice (widened from the float32 planes — selection
// scoring runs in float64). It satisfies the BinSeries contract:
// concurrent calls with distinct buffers are safe as long as no frame
// is pushed meanwhile (readers never mutate the ring).
//
//blinkradar:hotpath
func (r *binRing) seriesInto(bin int, buf []complex128) []complex128 {
	if cap(buf) < r.count {
		// Grows only until the ring window fills; steady state reuses
		// the caller's scratch.
		buf = make([]complex128, r.count) //blinkvet:ignore hotpathalloc -- amortised warm-up growth
	}
	buf = buf[:r.count]
	start := r.pos
	if r.count < r.window {
		start = 0
	}
	n := 0
	for s := start; s < r.window && n < r.count; s++ {
		idx := s*r.bins + bin
		buf[n] = complex(float64(r.bufI[idx]), float64(r.bufQ[idx]))
		n++
	}
	for s := 0; n < r.count; s++ {
		idx := s*r.bins + bin
		buf[n] = complex(float64(r.bufI[idx]), float64(r.bufQ[idx]))
		n++
	}
	return buf
}

// latest returns the most recent sample of one bin (zero if empty).
func (r *binRing) latest(bin int) complex128 {
	if r.count == 0 {
		return 0
	}
	s := r.pos - 1
	if s < 0 {
		s += r.window
	}
	idx := s*r.bins + bin
	return complex(float64(r.bufI[idx]), float64(r.bufQ[idx]))
}

func (r *binRing) reset() {
	r.pos = 0
	r.count = 0
}
