package core

import (
	"fmt"
	"math"
	"sort"

	"blinkradar/internal/iq"
	"blinkradar/internal/rf"
)

// BinScore is the selection diagnostics for one range bin.
type BinScore struct {
	// Bin is the range-bin index.
	Bin int
	// Variance is the 2-D I/Q variance of the bin's recent samples.
	Variance float64
	// ArcQuality in [0, 1] rewards bins whose samples lie on a clean
	// circular arc (embedded respiration/BCG interference) and
	// penalises bins whose variance comes from amplitude churn such as
	// chest bin-migration or passenger fidgeting.
	ArcQuality float64
	// Score is the combined selection score.
	Score float64
}

// ScoreBin evaluates one bin's slow-time window. The paper first ranks
// bins by 2-D variance, then validates with the arc fit that also
// yields the viewing position; combining both here folds that
// validation into a single score.
func ScoreBin(bin int, series []complex128) BinScore {
	s := BinScore{Bin: bin, Variance: iq.Variance2D(series)}
	if s.Variance <= 0 {
		return s
	}
	c, err := iq.FitCirclePratt(series)
	if err != nil || c.Radius <= 0 {
		s.ArcQuality = 0
		return s
	}
	// Judge arc quality on a trimmed residual: blinks throw ~15% of the
	// eye bin's samples off the circle, and punishing that would bias
	// selection toward blink-free neighbours (chin, forehead) whose
	// bins carry no blink signature.
	rel := trimmedRMSE(series, c) / (0.15 * c.Radius)
	s.ArcQuality = 1 / (1 + rel*rel)
	// Embedded vital-sign interference at the eye subtends a short arc
	// (millimetre motion -> well under a radian of phase). Bins whose
	// trajectories wrap far around the circle get their variance from
	// centimetre-scale motion — chest breathing, limb movement, a
	// fidgeting passenger — and are down-weighted hard (quadratically).
	const maxArcRad = 2.0
	if ext := iq.AngularExtent(series, c.Center); ext > maxArcRad {
		p := maxArcRad / ext
		s.ArcQuality *= p * p * p
	}
	// Short arcs are strongly anisotropic point clouds; full rotations
	// and noise balls are not. Eccentricity separates them even when
	// variance alone cannot.
	ecc := iq.Eccentricity(series)
	s.ArcQuality *= 0.1 + 0.9*ecc*ecc
	s.Score = s.Variance * s.ArcQuality
	return s
}

// BinSeries supplies the recent background-subtracted slow-time samples
// of one range bin. Implementations fill buf (growing it when its
// capacity is too small) and return the filled slice, so callers that
// score many bins can reuse one window buffer per worker instead of
// allocating per bin. Implementations must be safe for concurrent calls
// with distinct buffers.
type BinSeries func(bin int, buf []complex128) []complex128

// SelectBin picks the eye's range bin from per-bin slow-time windows.
// Bins below guard are excluded (antenna direct path). The topK
// highest-variance candidates are arc-scored, and the best combined
// score wins. It returns the winning score and the evaluated candidates
// sorted by descending score. topK must be positive.
func SelectBin(series BinSeries, numBins, guard, topK int) (BinScore, []BinScore, error) {
	return SelectBinParallel(series, numBins, guard, topK, 1)
}

// SelectBinParallel is SelectBin with the per-bin variance pass and the
// per-candidate arc scoring fanned out across a bounded worker pool
// (workers <= 0 selects GOMAXPROCS). Every bin's score is a pure
// function of its series and ties are broken by bin index, so the
// winner is identical to the serial path for any worker count.
func SelectBinParallel(series BinSeries, numBins, guard, topK, workers int) (BinScore, []BinScore, error) {
	if numBins <= guard {
		return BinScore{}, nil, fmt.Errorf("core: no bins beyond guard (%d bins, guard %d)", numBins, guard)
	}
	if topK <= 0 {
		return BinScore{}, nil, fmt.Errorf("core: candidate count must be positive, got %d", topK)
	}
	variances := make([]BinScore, numBins-guard)
	err := parallelChunks(len(variances), workers, func(lo, hi int) error {
		var buf []complex128
		for i := lo; i < hi; i++ {
			buf = series(guard+i, buf)
			variances[i] = BinScore{Bin: guard + i, Variance: iq.Variance2D(buf)}
		}
		return nil
	})
	if err != nil {
		return BinScore{}, nil, err
	}
	sort.Slice(variances, func(i, j int) bool {
		if variances[i].Variance != variances[j].Variance {
			return variances[i].Variance > variances[j].Variance
		}
		return variances[i].Bin < variances[j].Bin
	})
	if topK > len(variances) {
		topK = len(variances)
	}
	candidates := make([]BinScore, topK)
	err = parallelChunks(topK, workers, func(lo, hi int) error {
		var buf []complex128
		for i := lo; i < hi; i++ {
			buf = series(variances[i].Bin, buf)
			candidates[i] = ScoreBin(variances[i].Bin, buf)
		}
		return nil
	})
	if err != nil {
		return BinScore{}, nil, err
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Score != candidates[j].Score {
			return candidates[i].Score > candidates[j].Score
		}
		return candidates[i].Bin < candidates[j].Bin
	})
	best := candidates[0]
	if best.Score <= 0 {
		// No arc-like bin: fall back to raw variance (still better
		// than nothing, and the tracker's restart logic will recover).
		best = variances[0]
	}
	return best, candidates, nil
}

// SelectBinMatrix is the offline convenience: selects the eye bin from
// the trailing window of a preprocessed frame matrix, scoring
// candidates across cfg.Parallelism workers.
func SelectBinMatrix(cfg Config, m *rf.FrameMatrix) (BinScore, error) {
	window := cfg.SelectWindowFrames
	if window > m.NumFrames() {
		window = m.NumFrames()
	}
	start := m.NumFrames() - window
	best, _, err := SelectBinParallel(func(bin int, buf []complex128) []complex128 {
		if cap(buf) < window {
			buf = make([]complex128, window)
		}
		buf = buf[:window]
		for k := 0; k < window; k++ {
			buf[k] = m.Data[start+k][bin]
		}
		return buf
	}, m.NumBins(), cfg.GuardBins, cfg.CandidateTopK, cfg.Parallelism)
	return best, err
}

// trimmedRMSE returns the RMS radial residual of the best 80% of
// samples.
func trimmedRMSE(series []complex128, c iq.Circle) float64 {
	if len(series) == 0 {
		return 0
	}
	res := make([]float64, 0, len(series))
	for _, z := range series {
		d := z - c.Center
		r := math.Hypot(real(d), imag(d)) - c.Radius
		res = append(res, r*r)
	}
	sort.Float64s(res)
	keep := len(res) * 4 / 5
	if keep < 1 {
		keep = 1
	}
	var acc float64
	for _, v := range res[:keep] {
		acc += v
	}
	return math.Sqrt(acc / float64(keep))
}

// binRing stores the most recent `window` frames of every bin for
// selection scoring, in a single flat allocation.
type binRing struct {
	buf    []complex128 // window * bins, frame-major
	bins   int
	window int
	pos    int
	count  int
}

func newBinRing(bins, window int) *binRing {
	return &binRing{
		buf:    make([]complex128, bins*window),
		bins:   bins,
		window: window,
	}
}

// push stores one frame (len == bins).
//
//blinkradar:hotpath
func (r *binRing) push(frame []complex128) {
	copy(r.buf[r.pos*r.bins:(r.pos+1)*r.bins], frame)
	r.pos = (r.pos + 1) % r.window
	if r.count < r.window {
		r.count++
	}
}

// series returns the stored samples of one bin, oldest first, in a
// fresh slice.
func (r *binRing) series(bin int) []complex128 {
	return r.seriesInto(bin, nil)
}

// seriesInto fills buf with the stored samples of one bin, oldest
// first, growing it only when its capacity is too small, and returns
// the filled slice. It satisfies the BinSeries contract: concurrent
// calls with distinct buffers are safe as long as no frame is pushed
// meanwhile.
//
//blinkradar:hotpath
func (r *binRing) seriesInto(bin int, buf []complex128) []complex128 {
	if cap(buf) < r.count {
		// Grows only until the ring window fills; steady state reuses
		// the caller's scratch.
		buf = make([]complex128, r.count) //blinkvet:ignore hotpathalloc amortised warm-up growth
	}
	buf = buf[:r.count]
	start := r.pos - r.count
	for i := 0; i < r.count; i++ {
		idx := start + i
		if idx < 0 {
			idx += r.window
		}
		buf[i] = r.buf[(idx%r.window)*r.bins+bin]
	}
	return buf
}

// latest returns the most recent sample of one bin (zero if empty).
func (r *binRing) latest(bin int) complex128 {
	if r.count == 0 {
		return 0
	}
	idx := r.pos - 1
	if idx < 0 {
		idx += r.window
	}
	return r.buf[idx*r.bins+bin]
}

func (r *binRing) reset() {
	r.pos = 0
	r.count = 0
}
