package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWindowLengths(t *testing.T) {
	for _, w := range []WindowFunc{Rectangular, Hamming, Hann, Blackman, Gaussian(0.4)} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			got := w(n)
			if len(got) != max(n, 0) {
				t.Fatalf("window length %d for n=%d", len(got), n)
			}
		}
	}
}

func TestWindowSymmetryProperty(t *testing.T) {
	// All supported windows are symmetric: w[i] == w[n-1-i].
	windows := map[string]WindowFunc{
		"hamming":  Hamming,
		"hann":     Hann,
		"blackman": Blackman,
		"gaussian": Gaussian(0.4),
	}
	for name, w := range windows {
		f := func(raw uint8) bool {
			n := int(raw)%60 + 2
			win := w(n)
			for i := 0; i < n/2; i++ {
				if !approxEqual(win[i], win[n-1-i], 1e-12) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s asymmetric: %v", name, err)
		}
	}
}

func TestHammingEndpoints(t *testing.T) {
	w := Hamming(27)
	if !approxEqual(w[0], 0.08, 1e-12) {
		t.Errorf("Hamming start %g, want 0.08", w[0])
	}
	if !approxEqual(w[13], 1, 1e-12) {
		t.Errorf("Hamming midpoint %g, want 1", w[13])
	}
}

func TestHannEndpoints(t *testing.T) {
	w := Hann(11)
	if !approxEqual(w[0], 0, 1e-12) || !approxEqual(w[10], 0, 1e-12) {
		t.Errorf("Hann endpoints %g, %g, want 0", w[0], w[10])
	}
}

func TestSinglePointWindows(t *testing.T) {
	for _, w := range []WindowFunc{Hamming, Hann, Blackman, Gaussian(0.3)} {
		if got := w(1); len(got) != 1 || got[0] != 1 {
			t.Fatalf("single-point window = %v, want [1]", got)
		}
	}
}

func TestGaussianPeaksAtCentre(t *testing.T) {
	w := Gaussian(0.3)(21)
	if peak := ArgMax(w); peak != 10 {
		t.Fatalf("Gaussian peak at %d, want 10", peak)
	}
	if w[0] >= w[10] {
		t.Fatal("Gaussian edges should fall below the centre")
	}
	if math.Abs(w[10]-1) > 1e-12 {
		t.Fatalf("Gaussian centre %g, want 1", w[10])
	}
}

func TestApplyWindow(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	w := []float64{2, 0.5, 1}
	got := ApplyWindow(x, w)
	want := []float64{2, 1, 3, 4} // shorter window leaves the tail alone
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %g want %g", i, got[i], want[i])
		}
	}
}
