package dsp

import (
	"fmt"
	"math"
)

// StreamingMedian maintains the running median of the last capacity
// values pushed, in O(log n) search + O(n) memmove per push instead of
// the O(n²) copy+selection-sort of a batch median over the same window.
// It keeps two fixed-capacity views of the window: a ring in arrival
// order (so the oldest value can be identified for eviction) and a
// sorted array maintained by binary insert/remove (so the median is a
// single index read). The window sizes used by the detector are tens of
// values, where the shifting memmoves stay within a cache line or two.
//
// Unlike the sliding-moment kernels this structure is exact by
// construction — values are moved, never re-derived arithmetically — so
// it needs no renormalization interval.
//
// NaN inputs are canonicalised to +Inf on entry: NaN is unordered and
// would corrupt the binary search invariant, while +Inf sorts to the
// top and simply biases the median upward until it falls out of the
// window — the same graceful degradation the upstream frame sanitizer
// applies. The zero value is unusable; call NewStreamingMedian.
type StreamingMedian struct {
	ring   []float64 // window in arrival order
	sorted []float64 // same values, ascending; count live entries
	pos    int       // next ring write index
	count  int       // live values in both views
}

// NewStreamingMedian returns an empty window of the given fixed
// capacity.
func NewStreamingMedian(capacity int) (*StreamingMedian, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("dsp: streaming median capacity %d, need >= 1", capacity)
	}
	return &StreamingMedian{
		ring:   make([]float64, capacity),
		sorted: make([]float64, capacity),
	}, nil
}

// Push adds v to the window, evicting the oldest value once the window
// is full. It reports whether an eviction happened — i.e. whether the
// window was already full, which callers use to gate logic that needs a
// complete window.
//
//blinkradar:hotpath
func (m *StreamingMedian) Push(v float64) bool {
	if math.IsNaN(v) {
		v = math.Inf(1)
	}
	evicted := false
	if m.count == len(m.ring) {
		m.removeSorted(m.ring[m.pos])
		evicted = true
	}
	m.ring[m.pos] = v
	m.pos++
	if m.pos == len(m.ring) {
		m.pos = 0
	}
	m.insertSorted(v)
	return evicted
}

// removeSorted deletes one occurrence of v from the sorted view. v is
// always present: it came out of the ring.
func (m *StreamingMedian) removeSorted(v float64) {
	// Hand-rolled leftmost binary search; sort.SearchFloat64s would
	// wrap the slice in a closure on the hot path.
	lo, hi := 0, m.count
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(m.sorted[lo:m.count-1], m.sorted[lo+1:m.count])
	m.count--
}

// insertSorted inserts v after any equal run in the sorted view.
func (m *StreamingMedian) insertSorted(v float64) {
	lo, hi := 0, m.count
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.sorted[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(m.sorted[lo+1:m.count+1], m.sorted[lo:m.count])
	m.sorted[lo] = v
	m.count++
}

// Median returns the median of the current window: the upper median
// sorted[count/2] for an even count, matching the batch helper this
// structure replaces. An empty window yields 0.
//
//blinkradar:hotpath
func (m *StreamingMedian) Median() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sorted[m.count/2]
}

// Count returns the number of values currently in the window.
func (m *StreamingMedian) Count() int { return m.count }

// Cap returns the fixed window capacity.
func (m *StreamingMedian) Cap() int { return len(m.ring) }

// Full reports whether the window holds capacity values, i.e. whether
// the next Push will evict.
func (m *StreamingMedian) Full() bool { return m.count == len(m.ring) }

// Reset empties the window.
func (m *StreamingMedian) Reset() {
	m.pos = 0
	m.count = 0
}
