package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	cases := []struct {
		name     string
		x        []float64
		mean     float64
		variance float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{7}, 7, 0},
		{"pair", []float64{1, 3}, 2, 1},
		{"mixed", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 5, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.x); !approxEqual(got, tc.mean, floatTol) {
				t.Errorf("Mean = %g, want %g", got, tc.mean)
			}
			if got := Variance(tc.x); !approxEqual(got, tc.variance, floatTol) {
				t.Errorf("Variance = %g, want %g", got, tc.variance)
			}
			if got := Std(tc.x); !approxEqual(got, math.Sqrt(tc.variance), floatTol) {
				t.Errorf("Std = %g, want %g", got, math.Sqrt(tc.variance))
			}
		})
	}
}

func TestMedianPercentile(t *testing.T) {
	x := []float64{5, 1, 3, 2, 4}
	if got := Median(x); got != 3 {
		t.Fatalf("median %g, want 3", got)
	}
	// Input must be untouched.
	if x[0] != 5 {
		t.Fatal("Median mutated its input")
	}
	if got := Percentile(x, 0); got != 1 {
		t.Fatalf("p0 %g, want 1", got)
	}
	if got := Percentile(x, 100); got != 5 {
		t.Fatalf("p100 %g, want 5", got)
	}
	if got := Percentile(x, 25); got != 2 {
		t.Fatalf("p25 %g, want 2", got)
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Fatalf("interpolated median %g, want 1.5", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile %g, want 0", got)
	}
}

func TestMAD(t *testing.T) {
	// Median 3, deviations {2,1,0,1,2} -> MAD 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Fatalf("MAD %g, want 1", got)
	}
	// MAD is robust: one huge outlier leaves it at 1.
	if got := MAD([]float64{1, 2, 3, 4, 1e9}); got != 1 {
		t.Fatalf("MAD with outlier %g, want 1", got)
	}
}

func TestMinMaxArgMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%g, %g), want (-1, 7)", lo, hi)
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) should be -1")
	}
	if got := ArgMax([]float64{1, 5, 5, 2}); got != 1 {
		t.Fatalf("ArgMax tie = %d, want first occurrence 1", got)
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4}); !approxEqual(got, math.Sqrt(12.5), floatTol) {
		t.Fatalf("RMS %g", got)
	}
	if RMS(nil) != 0 {
		t.Fatal("RMS of empty should be 0")
	}
}

func TestDetrendLinearRemovesLineProperty(t *testing.T) {
	// Any pure line detrends to ~zero.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64()
		n := 10 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = a + b*float64(i)
		}
		for _, v := range DetrendLinear(x) {
			if math.Abs(v) > 1e-6*(1+math.Abs(a)+math.Abs(b)*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetrendLinearPreservesResidual(t *testing.T) {
	// Detrending a line plus sinusoid keeps the sinusoid's power.
	n := 200
	x := make([]float64, n)
	for i := range x {
		x[i] = 5 + 0.3*float64(i) + math.Sin(2*math.Pi*float64(i)/20)
	}
	out := DetrendLinear(x)
	if got := RMS(out); !approxEqual(got, math.Sqrt(0.5), 0.05) {
		t.Fatalf("residual RMS %g, want ~%g", got, math.Sqrt(0.5))
	}
}

func TestDemeanInPlace(t *testing.T) {
	x := []float64{1, 2, 3}
	DemeanInPlace(x)
	if !approxEqual(Mean(x), 0, floatTol) {
		t.Fatalf("mean after demean %g", Mean(x))
	}
}

func TestSNRdB(t *testing.T) {
	ref := []float64{1, 1, 1, 1}
	if got := SNRdB(ref, ref); !math.IsInf(got, 1) {
		t.Fatalf("identical signals SNR %g, want +Inf", got)
	}
	noisy := []float64{1.1, 0.9, 1.1, 0.9}
	// P_sig = 1, P_noise = 0.01 -> 20 dB.
	if got := SNRdB(ref, noisy); !approxEqual(got, 20, 1e-9) {
		t.Fatalf("SNR %g, want 20", got)
	}
	if got := SNRdB(nil, noisy); got != 0 {
		t.Fatalf("empty reference SNR %g, want 0", got)
	}
}

func TestCrossCorrelateAtLag(t *testing.T) {
	n := 64
	a := make([]float64, n)
	for i := range a {
		a[i] = math.Sin(float64(i) / 3)
	}
	if got := CrossCorrelateAtLag(a, a, 0); !approxEqual(got, 1, 1e-9) {
		t.Fatalf("self correlation %g, want 1", got)
	}
	neg := make([]float64, n)
	for i := range neg {
		neg[i] = -a[i]
	}
	if got := CrossCorrelateAtLag(a, neg, 0); !approxEqual(got, -1, 1e-9) {
		t.Fatalf("anti correlation %g, want -1", got)
	}
	// Shifted copy correlates best at the matching lag.
	shift := 5
	b := make([]float64, n)
	for i := shift; i < n; i++ {
		b[i-shift] = a[i]
	}
	if c0, cs := CrossCorrelateAtLag(a, b, 0), CrossCorrelateAtLag(a, b, shift); cs <= c0 {
		t.Fatalf("lag %d correlation %g not above lag 0 %g", shift, cs, c0)
	}
	if got := CrossCorrelateAtLag([]float64{1}, []float64{1}, 0); got != 0 {
		t.Fatalf("degenerate correlation %g, want 0", got)
	}
}
