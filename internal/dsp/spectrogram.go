package dsp

import (
	"fmt"
	"math/cmplx"
)

// Spectrogram holds the short-time Fourier transform magnitude of a
// signal: Power[t][f] is the squared magnitude of frequency bin f in
// window t.
type Spectrogram struct {
	// Power is indexed [window][bin]; bins cover 0..WindowSize/2
	// (non-negative frequencies only).
	Power [][]float64
	// WindowSize is the STFT window length in samples.
	WindowSize int
	// HopSize is the stride between consecutive windows in samples.
	HopSize int
	// SampleRate is the input sample rate in hertz.
	SampleRate float64
}

// STFT computes a magnitude spectrogram of x using the given window
// function (Hann when nil). windowSize must be a positive power of two
// and hopSize positive.
func STFT(x []float64, windowSize, hopSize int, sampleRate float64, window WindowFunc) (*Spectrogram, error) {
	if windowSize <= 0 || windowSize&(windowSize-1) != 0 {
		return nil, fmt.Errorf("dsp: STFT window size must be a positive power of two, got %d", windowSize)
	}
	if err := validateLength("hop size", hopSize); err != nil {
		return nil, err
	}
	if window == nil {
		window = Hann
	}
	w := window(windowSize)
	nBins := windowSize/2 + 1
	var frames [][]float64
	buf := make([]complex128, windowSize)
	for start := 0; start+windowSize <= len(x); start += hopSize {
		for i := 0; i < windowSize; i++ {
			buf[i] = complex(x[start+i]*w[i], 0)
		}
		radix2(buf, false)
		row := make([]float64, nBins)
		for i := 0; i < nBins; i++ {
			m := cmplx.Abs(buf[i])
			row[i] = m * m
		}
		frames = append(frames, row)
	}
	return &Spectrogram{
		Power:      frames,
		WindowSize: windowSize,
		HopSize:    hopSize,
		SampleRate: sampleRate,
	}, nil
}

// BinFrequency returns the centre frequency in hertz of spectrogram bin
// index i.
func (s *Spectrogram) BinFrequency(i int) float64 {
	return float64(i) * s.SampleRate / float64(s.WindowSize)
}

// WindowTime returns the start time in seconds of window index t.
func (s *Spectrogram) WindowTime(t int) float64 {
	return float64(t*s.HopSize) / s.SampleRate
}

// DominantFrequency returns the frequency with the highest total power
// across all windows, excluding the DC bin.
func (s *Spectrogram) DominantFrequency() float64 {
	if len(s.Power) == 0 {
		return 0
	}
	nBins := len(s.Power[0])
	total := make([]float64, nBins)
	for _, row := range s.Power {
		for i, p := range row {
			total[i] += p
		}
	}
	best := 1
	for i := 2; i < nBins; i++ {
		if total[i] > total[best] {
			best = i
		}
	}
	return s.BinFrequency(best)
}

// Resample linearly interpolates x (sampled at srcRate) onto a grid at
// dstRate. Both rates must be positive. The output covers the same time
// span as the input.
func Resample(x []float64, srcRate, dstRate float64) ([]float64, error) {
	if srcRate <= 0 || dstRate <= 0 {
		return nil, fmt.Errorf("dsp: sample rates must be positive, got src=%g dst=%g", srcRate, dstRate)
	}
	if len(x) == 0 {
		return nil, nil
	}
	dur := float64(len(x)-1) / srcRate
	n := int(dur*dstRate) + 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / dstRate * srcRate
		lo := int(t)
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := t - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out, nil
}

// Decimate keeps every factor-th sample of x after smoothing with a
// moving average of the same width to limit aliasing.
func Decimate(x []float64, factor int) ([]float64, error) {
	if err := validateLength("decimation factor", factor); err != nil {
		return nil, err
	}
	if factor == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	smoothed, err := MovingAverage(x, factor)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(x)/factor+1)
	for i := 0; i < len(smoothed); i += factor {
		out = append(out, smoothed[i])
	}
	return out, nil
}
