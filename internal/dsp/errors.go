package dsp

import "fmt"

// Error construction lives outside the //blinkradar:hotpath bodies:
// these paths are cold (they fire only on caller bugs), and keeping the
// fmt machinery out of the annotated functions lets blinkvet verify the
// per-frame path is allocation-free.

//blinkradar:coldpath
func errSampleCount(dst, n int) error {
	return fmt.Errorf("dsp: destination has %d samples, input %d", dst, n)
}

//blinkradar:coldpath
func errAliased(fn string) error {
	return fmt.Errorf("dsp: %s destination must not alias the input", fn)
}
