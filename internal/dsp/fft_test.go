package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const floatTol = 1e-9

func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func complexApproxEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestFFTImpulse(t *testing.T) {
	// The transform of a unit impulse is flat ones.
	for _, n := range []int{1, 2, 8, 12, 100} {
		x := make([]complex128, n)
		x[0] = 1
		got := FFT(x)
		for i, v := range got {
			if !complexApproxEqual(v, 1, 1e-9) {
				t.Fatalf("n=%d bin %d = %v, want 1", n, i, v)
			}
		}
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	// A pure sinusoid concentrates its energy in the matching bin.
	const n = 256
	const k = 17
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(k) * float64(i) / n)
	}
	mag := MagnitudeSpectrum(x)
	best := ArgMax(mag[:n/2])
	if best != k {
		t.Fatalf("spectral peak at bin %d, want %d", best, k)
	}
	if mag[k] < float64(n)/2*0.99 {
		t.Fatalf("peak magnitude %g, want ~%g", mag[k], float64(n)/2)
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	// Round trip for power-of-two (radix-2) and arbitrary (Bluestein)
	// lengths.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 16, 64, 3, 7, 12, 100, 129} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		back := IFFT(FFT(x))
		for i := range x {
			if !complexApproxEqual(back[i], x[i], 1e-8) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// FFT(a*x + y) = a*FFT(x) + FFT(y), for random signals.
	f := func(seed int64, scaleRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		a := complex(float64(scaleRaw)/16, 0)
		x := make([]complex128, n)
		y := make([]complex128, n)
		mixed := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			mixed[i] = a*x[i] + y[i]
		}
		fm := FFT(mixed)
		fx := FFT(x)
		fy := FFT(y)
		for i := range fm {
			if !complexApproxEqual(fm[i], a*fx[i]+fy[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Sum |x|^2 == Sum |X|^2 / N.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 48 // exercises Bluestein
		x := make([]complex128, n)
		var timePower float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timePower += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		var freqPower float64
		for _, v := range FFT(x) {
			freqPower += real(v)*real(v) + imag(v)*imag(v)
		}
		return approxEqual(timePower, freqPower/float64(n), 1e-6*(1+timePower))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFFTFreq(t *testing.T) {
	f := FFTFreq(8, 80)
	want := []float64{0, 10, 20, 30, 40, -30, -20, -10}
	for i := range want {
		if !approxEqual(f[i], want[i], floatTol) {
			t.Fatalf("bin %d: got %g want %g", i, f[i], want[i])
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestConvolveMatchesFFTConvolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 1+rng.Intn(40))
		b := make([]float64, 1+rng.Intn(40))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		direct := Convolve(a, b)
		fast := FFTConvolve(a, b)
		if len(direct) != len(fast) {
			return false
		}
		for i := range direct {
			if !approxEqual(direct[i], fast[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2}, []float64{3, 4, 5})
	want := []float64{3, 10, 13, 10}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !approxEqual(got[i], want[i], floatTol) {
			t.Fatalf("index %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil {
		t.Error("Convolve(nil, x) should be nil")
	}
	if FFTConvolve([]float64{1}, nil) != nil {
		t.Error("FFTConvolve(x, nil) should be nil")
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 64
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := FFTReal(x)
	for _, k := range []int{0, 1, 5, 31} {
		g := Goertzel(x, float64(k))
		if !complexApproxEqual(g, spec[k], 1e-8) {
			t.Fatalf("bin %d: Goertzel %v, FFT %v", k, g, spec[k])
		}
	}
}

func TestGoertzelEmpty(t *testing.T) {
	if Goertzel(nil, 1) != 0 {
		t.Error("Goertzel of empty input should be 0")
	}
}

func TestPowerSpectrumNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i, p := range PowerSpectrum(x) {
		if p < 0 {
			t.Fatalf("bin %d power %g < 0", i, p)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if got := FFT(nil); len(got) != 0 {
		t.Errorf("FFT(nil) returned %d samples", len(got))
	}
	if got := IFFT([]complex128{}); len(got) != 0 {
		t.Errorf("IFFT(empty) returned %d samples", len(got))
	}
}
