// Package dsp provides the digital-signal-processing substrate used by
// BlinkRadar: FFTs, FIR filter design, window functions, smoothing,
// detrending, descriptive statistics, peak finding and spectrogram
// computation. Everything is implemented from scratch on top of the
// standard library so the module has no external dependencies.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x and returns a newly
// allocated slice. Power-of-two lengths use an iterative radix-2
// Cooley-Tukey transform; all other lengths fall back to Bluestein's
// algorithm, so any length is accepted. An empty input yields an empty
// output.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse discrete Fourier transform of x, normalised
// by 1/N, and returns a newly allocated slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTReal transforms a real-valued signal. It is a convenience wrapper
// that widens the input to complex and calls FFT.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

// fftInPlace dispatches on the length of x. Inverse transforms are
// normalised by 1/N.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		scale := 1 / float64(n)
		for i := range x {
			x[i] *= complex(scale, 0)
		}
	}
}

// radix2 runs an iterative in-place radix-2 Cooley-Tukey FFT.
// len(x) must be a power of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein implements the chirp-z transform reduction of an arbitrary
// length DFT to a power-of-two circular convolution.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors: w[k] = exp(sign * i*pi*k^2/n).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for huge n; use modular arithmetic on 2n.
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, angle))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	b[0] = cmplx.Conj(chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(chirp[k])
		b[k] = c
		b[m-k] = c
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := 1 / float64(m)
	for k := 0; k < n; k++ {
		x[k] = a[k] * complex(invM, 0) * chirp[k]
	}
}

// FFTFreq returns the frequency in hertz associated with each FFT bin for
// a transform of length n over samples taken at sampleRate. Bins in the
// upper half are reported as negative frequencies, matching the layout of
// the FFT output.
func FFTFreq(n int, sampleRate float64) []float64 {
	f := make([]float64, n)
	for i := 0; i < n; i++ {
		k := i
		if i > n/2 {
			k = i - n
		}
		f[i] = float64(k) * sampleRate / float64(n)
	}
	return f
}

// PowerSpectrum returns |X[k]|^2 for each bin of the FFT of x.
func PowerSpectrum(x []float64) []float64 {
	spec := FFTReal(x)
	p := make([]float64, len(spec))
	for i, c := range spec {
		re, im := real(c), imag(c)
		p[i] = re*re + im*im
	}
	return p
}

// MagnitudeSpectrum returns |X[k]| for each bin of the FFT of x.
func MagnitudeSpectrum(x []float64) []float64 {
	spec := FFTReal(x)
	m := make([]float64, len(spec))
	for i, c := range spec {
		m[i] = cmplx.Abs(c)
	}
	return m
}

// NextPow2 returns the smallest power of two >= n. It returns 1 for
// n <= 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// Convolve computes the full linear convolution of a and b
// (length len(a)+len(b)-1) directly. For long inputs prefer
// FFTConvolve.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// FFTConvolve computes the same full linear convolution as Convolve but
// via the FFT, which is asymptotically faster for long inputs.
func FFTConvolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := NextPow2(n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	out := make([]float64, n)
	scale := 1 / float64(m)
	for i := 0; i < n; i++ {
		out[i] = real(fa[i]) * scale
	}
	return out
}

// Goertzel evaluates the DFT of x at a single normalised frequency
// k/n (k need not be an integer) using the Goertzel recurrence. It is
// cheaper than a full FFT when only a handful of bins are needed.
func Goertzel(x []float64, k float64) complex128 {
	n := float64(len(x))
	if len(x) == 0 {
		return 0
	}
	w := 2 * math.Pi * k / n
	cw := math.Cos(w)
	coeff := 2 * cw
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	re := s1*cw - s2
	im := s1 * math.Sin(w)
	return complex(re, im)
}

// validateLength returns an error for non-positive lengths; shared by the
// design helpers in this package.
//
//blinkradar:coldpath
func validateLength(name string, n int) error {
	if n <= 0 {
		return fmt.Errorf("dsp: %s must be positive, got %d", name, n)
	}
	return nil
}
