package dsp

import (
	"fmt"
	"math"
)

// FIRFilter is a finite-impulse-response filter described by its tap
// coefficients. The zero value is unusable; construct one with a design
// function such as LowPassFIR or NewFIRFilter.
type FIRFilter struct {
	taps []float64
}

// NewFIRFilter wraps an explicit set of tap coefficients. The taps are
// copied so the caller retains ownership of its slice.
func NewFIRFilter(taps []float64) (*FIRFilter, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("dsp: FIR filter needs at least one tap")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIRFilter{taps: t}, nil
}

// LowPassFIR designs a windowed-sinc low-pass FIR filter of the given
// order (number of taps = order+1) with normalised cutoff frequency
// cutoff in (0, 0.5], where 0.5 corresponds to the Nyquist frequency.
// The window defaults to Hamming when nil, matching the order-26
// Hamming-window filter in the paper's preprocessing cascade.
func LowPassFIR(order int, cutoff float64, window WindowFunc) (*FIRFilter, error) {
	if err := validateLength("FIR order", order); err != nil {
		return nil, err
	}
	if cutoff <= 0 || cutoff > 0.5 {
		return nil, fmt.Errorf("dsp: cutoff must be in (0, 0.5], got %g", cutoff)
	}
	if window == nil {
		window = Hamming
	}
	n := order + 1
	taps := make([]float64, n)
	w := window(n)
	mid := float64(order) / 2
	for i := 0; i < n; i++ {
		x := float64(i) - mid
		taps[i] = sinc(2*cutoff*x) * 2 * cutoff * w[i]
	}
	// Normalise to unity DC gain so the passband is not attenuated.
	var sum float64
	for _, t := range taps {
		sum += t
	}
	if sum != 0 {
		for i := range taps {
			taps[i] /= sum
		}
	}
	return &FIRFilter{taps: taps}, nil
}

// HighPassFIR designs a windowed-sinc high-pass filter by spectral
// inversion of the corresponding low-pass design. The order must be even
// so the filter has a well-defined centre tap.
func HighPassFIR(order int, cutoff float64, window WindowFunc) (*FIRFilter, error) {
	if order%2 != 0 {
		return nil, fmt.Errorf("dsp: high-pass FIR order must be even, got %d", order)
	}
	lp, err := LowPassFIR(order, cutoff, window)
	if err != nil {
		return nil, err
	}
	taps := lp.taps
	for i := range taps {
		taps[i] = -taps[i]
	}
	taps[order/2] += 1
	return &FIRFilter{taps: taps}, nil
}

// BandPassFIR designs a windowed-sinc band-pass filter passing normalised
// frequencies in [low, high], 0 < low < high <= 0.5.
func BandPassFIR(order int, low, high float64, window WindowFunc) (*FIRFilter, error) {
	if order%2 != 0 {
		return nil, fmt.Errorf("dsp: band-pass FIR order must be even, got %d", order)
	}
	if !(0 < low && low < high && high <= 0.5) {
		return nil, fmt.Errorf("dsp: need 0 < low < high <= 0.5, got low=%g high=%g", low, high)
	}
	if window == nil {
		window = Hamming
	}
	n := order + 1
	taps := make([]float64, n)
	w := window(n)
	mid := float64(order) / 2
	for i := 0; i < n; i++ {
		x := float64(i) - mid
		hp := sinc(2*high*x) * 2 * high
		lp := sinc(2*low*x) * 2 * low
		taps[i] = (hp - lp) * w[i]
	}
	// Normalise gain at the passband centre frequency.
	fc := (low + high) / 2
	var re, im float64
	for i, t := range taps {
		ang := 2 * math.Pi * fc * float64(i)
		re += t * math.Cos(ang)
		im -= t * math.Sin(ang)
	}
	gain := math.Hypot(re, im)
	if gain > 0 {
		for i := range taps {
			taps[i] /= gain
		}
	}
	return &FIRFilter{taps: taps}, nil
}

// sinc is the normalised sinc function sin(pi x)/(pi x).
func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// Order returns the filter order (number of taps minus one).
func (f *FIRFilter) Order() int { return len(f.taps) - 1 }

// Taps returns a copy of the tap coefficients.
func (f *FIRFilter) Taps() []float64 {
	t := make([]float64, len(f.taps))
	copy(t, f.taps)
	return t
}

// Apply filters x and returns a slice of the same length. The output is
// compensated for the filter's group delay (order/2 samples) so that
// features in the output remain time-aligned with the input; edges are
// handled by replicating the first and last input samples.
func (f *FIRFilter) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	f.ApplyInto(out, x) // lengths match by construction
	return out
}

// ApplyInto filters x into dst with the same delay compensation as
// Apply, performing no allocations. dst must have the same length as x
// and must not alias it: the filter reads neighbouring input samples
// after their output positions have been written.
//
//blinkradar:hotpath
func (f *FIRFilter) ApplyInto(dst, x []float64) error {
	n := len(x)
	if len(dst) != n {
		return errSampleCount(len(dst), n)
	}
	if n == 0 {
		return nil
	}
	if &dst[0] == &x[0] {
		return errAliased("ApplyInto")
	}
	delay := f.Order() / 2
	for i := 0; i < n; i++ {
		var acc float64
		for j, t := range f.taps {
			k := i + delay - j
			switch {
			case k < 0:
				k = 0
			case k >= n:
				k = n - 1
			}
			acc += t * x[k]
		}
		dst[i] = acc
	}
	return nil
}

// ApplyComplex filters a complex series by filtering the real and
// imaginary components independently, preserving I/Q structure.
func (f *FIRFilter) ApplyComplex(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	f.ApplyComplexInto(out, x) // lengths match by construction
	return out
}

// ApplyComplexInto filters a complex series into dst without allocating:
// the real and imaginary components are accumulated independently in a
// single pass, which is arithmetically identical to splitting the series
// and running ApplyInto on each part. dst must have the same length as x
// and must not alias it.
//
//blinkradar:hotpath
func (f *FIRFilter) ApplyComplexInto(dst, x []complex128) error {
	n := len(x)
	if len(dst) != n {
		return errSampleCount(len(dst), n)
	}
	if n == 0 {
		return nil
	}
	if &dst[0] == &x[0] {
		return errAliased("ApplyComplexInto")
	}
	delay := f.Order() / 2
	for i := 0; i < n; i++ {
		var accRe, accIm float64
		for j, t := range f.taps {
			k := i + delay - j
			switch {
			case k < 0:
				k = 0
			case k >= n:
				k = n - 1
			}
			accRe += t * real(x[k])
			accIm += t * imag(x[k])
		}
		dst[i] = complex(accRe, accIm)
	}
	return nil
}

// FrequencyResponse evaluates the filter's complex frequency response at
// normalised frequency fn in [0, 0.5].
func (f *FIRFilter) FrequencyResponse(fn float64) complex128 {
	var re, im float64
	for i, t := range f.taps {
		ang := 2 * math.Pi * fn * float64(i)
		re += t * math.Cos(ang)
		im -= t * math.Sin(ang)
	}
	return complex(re, im)
}

// Stream returns a streaming instance of the filter with its own delay
// line, suitable for sample-at-a-time real-time use.
func (f *FIRFilter) Stream() *FIRStream {
	return &FIRStream{taps: f.taps, delay: make([]float64, len(f.taps))}
}

// FIRStream is a stateful, sample-at-a-time FIR filter. It is not safe
// for concurrent use.
//
// Unlike FIRFilter.Apply, which shifts its output to compensate the
// filter group delay, a causal streaming filter cannot look ahead:
// every output sample lags the corresponding input feature by Delay()
// samples. Consumers that timestamp features found in the output (e.g.
// blink extrema) must subtract that lag to stay aligned with the
// offline path.
type FIRStream struct {
	taps  []float64
	delay []float64
	pos   int
	seen  int
}

// Delay returns the filter group delay in samples (order/2): how far
// output features trail the input in a causal streaming run.
func (s *FIRStream) Delay() int { return (len(s.taps) - 1) / 2 }

// Push feeds one input sample and returns one output sample. Output lags
// the input by Delay() samples (the filter group delay).
//
//blinkradar:hotpath
func (s *FIRStream) Push(v float64) float64 {
	s.delay[s.pos] = v
	s.pos = (s.pos + 1) % len(s.delay)
	if s.seen < len(s.delay) {
		s.seen++
	}
	var acc float64
	idx := s.pos - 1
	if idx < 0 {
		idx += len(s.delay)
	}
	for _, t := range s.taps {
		acc += t * s.delay[idx]
		idx--
		if idx < 0 {
			idx += len(s.delay)
		}
	}
	return acc
}

// Reset clears the delay line.
func (s *FIRStream) Reset() {
	for i := range s.delay {
		s.delay[i] = 0
	}
	s.pos = 0
	s.seen = 0
}
