package dsp

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// batchMedianRef is the reference the streaming structure must match
// exactly: sort a copy of the window, take the upper median. This is
// the same order statistic the detector's old copy+selection-sort
// helper returned.
func batchMedianRef(window []float64) float64 {
	if len(window) == 0 {
		return 0
	}
	cp := make([]float64, len(window))
	copy(cp, window)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

// driveMedian pushes stream through a StreamingMedian and a plain
// window slice side by side, checking the median, the eviction report
// and the fill state after every push. Values are canonicalised the
// same way Push canonicalises them.
func driveMedian(t *testing.T, stream []float64, capacity int) {
	t.Helper()
	m, err := NewStreamingMedian(capacity)
	if err != nil {
		t.Fatal(err)
	}
	window := make([]float64, 0, capacity)
	for i, v := range stream {
		if math.IsNaN(v) {
			v = math.Inf(1)
		}
		wantEvict := len(window) == capacity
		if wantEvict {
			window = window[:copy(window, window[1:])]
		}
		window = append(window, v)
		if got := m.Push(v); got != wantEvict {
			t.Fatalf("push %d: evicted = %v, want %v", i, got, wantEvict)
		}
		if m.Count() != len(window) {
			t.Fatalf("push %d: count %d, window %d", i, m.Count(), len(window))
		}
		if m.Full() != (len(window) == capacity) {
			t.Fatalf("push %d: Full = %v with %d/%d values", i, m.Full(), len(window), capacity)
		}
		// Exact equality: the structure moves values, it never
		// recomputes them, so there is no tolerance to grant.
		got, want := m.Median(), batchMedianRef(window)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("push %d: median %g, batch reference %g (window %v)", i, got, want, window)
		}
	}
}

func TestStreamingMedianMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	stream := make([]float64, 500)
	for i := range stream {
		stream[i] = rng.NormFloat64() * 10
	}
	for _, capacity := range []int{1, 2, 3, 4, 5, 17, 51} {
		driveMedian(t, stream, capacity)
	}
}

func TestStreamingMedianDuplicates(t *testing.T) {
	// Heavy ties exercise the equal-run paths of insert and remove.
	rng := rand.New(rand.NewSource(22))
	stream := make([]float64, 400)
	for i := range stream {
		stream[i] = float64(rng.Intn(4))
	}
	for _, capacity := range []int{2, 5, 16} {
		driveMedian(t, stream, capacity)
	}
}

func TestStreamingMedianNonFinite(t *testing.T) {
	stream := []float64{1, math.NaN(), math.Inf(1), 2, math.Inf(-1), math.NaN(), 3, 4, 5, 6, 7}
	for _, capacity := range []int{3, 5} {
		driveMedian(t, stream, capacity)
	}
}

func TestStreamingMedianReset(t *testing.T) {
	m, err := NewStreamingMedian(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		m.Push(float64(i))
	}
	m.Reset()
	if m.Count() != 0 || m.Full() || m.Median() != 0 {
		t.Fatalf("reset left count=%d full=%v median=%g", m.Count(), m.Full(), m.Median())
	}
	if m.Push(9) {
		t.Fatal("first push after reset reported an eviction")
	}
	if m.Median() != 9 {
		t.Fatalf("median %g after single push", m.Median())
	}
	if m.Cap() != 4 {
		t.Fatalf("capacity %d changed by reset", m.Cap())
	}
}

func TestStreamingMedianBadCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		if _, err := NewStreamingMedian(capacity); err == nil {
			t.Fatalf("capacity %d accepted", capacity)
		}
	}
}

// FuzzSlidingMedian drives the streaming median with fuzz-chosen
// values (including NaN and Inf bit patterns) and window capacities,
// requiring exact agreement with the sort-a-copy batch reference after
// every push.
func FuzzSlidingMedian(f *testing.F) {
	seed := make([]byte, 0, 12*8)
	for _, v := range []float64{0, 1, -1, 2, 2, 2, math.Inf(1), math.NaN(), -0.5, 3, 1e12, -1e12} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed, uint8(5))
	f.Add(seed, uint8(1))
	f.Add([]byte{}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, capSeed uint8) {
		capacity := 1 + int(capSeed)%64
		n := len(data) / 8
		if n > 4096 {
			n = 4096
		}
		stream := make([]float64, n)
		for i := range stream {
			stream[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		driveMedian(t, stream, capacity)
	})
}
