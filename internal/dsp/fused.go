package dsp

import (
	"fmt"
	"math"
)

// foldTolerance is the maximum relative asymmetry allowed when folding a
// nominally linear-phase tap set: windowed-sinc designs are symmetric in
// exact arithmetic, but the window evaluation (cos of non-negated
// arguments) leaves last-ulp differences between mirrored taps. Folding
// averages each mirror pair, which perturbs the response by at most this
// fraction of a tap — far below the cascade's documented error budget.
const foldTolerance = 1e-9

// FoldedFIR evaluates a symmetric (linear-phase) FIR with folded taps:
// the mirror symmetry t[j] == t[order-j] lets each pair of taps multiply
// the pre-summed inputs x[k+d-j] + x[k-d+j] once, halving the multiply
// count of the direct form. It carries both float64 and float32 tap
// images so the same design serves the reference and the SoA frame
// paths. Construct with NewFoldedFIR or FoldedLowPass; the zero value is
// unusable.
//
// Output semantics match FIRFilter.ApplyInto exactly: group-delay
// compensation by order/2 samples and edge handling by replicating the
// first and last input samples.
type FoldedFIR struct {
	// pairs[j] is the folded coefficient for mirror pair (j, order-j),
	// j < len(pairs); center is the unpaired middle tap (even order
	// only).
	pairs     []float64
	pairs32   []float32
	center    float64
	center32  float32
	hasCenter bool
	order     int
}

// NewFoldedFIR folds an explicit symmetric tap set. Mirror pairs must
// agree to within a relative tolerance of 1e-9 (they are averaged, so
// design-time rounding asymmetry is absorbed); genuinely asymmetric taps
// are rejected.
func NewFoldedFIR(taps []float64) (*FoldedFIR, error) {
	n := len(taps)
	if n == 0 {
		return nil, fmt.Errorf("dsp: folded FIR needs at least one tap")
	}
	order := n - 1
	var scale float64
	for _, t := range taps {
		if a := math.Abs(t); a > scale {
			scale = a
		}
	}
	npairs := n / 2
	f := &FoldedFIR{
		pairs:   make([]float64, npairs),
		pairs32: make([]float32, npairs),
		order:   order,
	}
	for j := 0; j < npairs; j++ {
		a, b := taps[j], taps[order-j]
		if math.Abs(a-b) > foldTolerance*scale {
			return nil, fmt.Errorf("dsp: taps %d and %d differ by %g: not a symmetric filter", j, order-j, a-b)
		}
		p := (a + b) / 2
		f.pairs[j] = p
		f.pairs32[j] = float32(p)
	}
	if n%2 == 1 {
		f.hasCenter = true
		f.center = taps[npairs]
		f.center32 = float32(taps[npairs])
	}
	return f, nil
}

// FoldedLowPass designs a Hamming-window low-pass FIR (as LowPassFIR)
// and folds it. This is the kernel behind the paper's Fig. 7 cascade.
func FoldedLowPass(order int, cutoff float64) (*FoldedFIR, error) {
	lp, err := LowPassFIR(order, cutoff, Hamming)
	if err != nil {
		return nil, err
	}
	return NewFoldedFIR(lp.taps)
}

// Order returns the filter order (number of taps minus one).
func (f *FoldedFIR) Order() int { return f.order }

// is26 reports whether the filter is the paper's order-26 shape, for
// which dedicated interior kernels exist.
func (f *FoldedFIR) is26() bool {
	return f.order == 26 && f.hasCenter && len(f.pairs) == 13
}

// ApplyInto filters x into dst with the same delay compensation and
// edge replication as FIRFilter.ApplyInto, using the folded form. dst
// must have the same length as x and must not alias it.
//
//blinkradar:hotpath
func (f *FoldedFIR) ApplyInto(dst, x []float64) error {
	n := len(x)
	if len(dst) != n {
		return errSampleCount(len(dst), n)
	}
	if n == 0 {
		return nil
	}
	if &dst[0] == &x[0] {
		return errAliased("FoldedFIR.ApplyInto")
	}
	kLo, kHi := foldedApplyEdges(f.pairs, f.center, f.hasCenter, f.order, dst, x)
	if f.is26() {
		foldedInterior26(f.pairs, f.center, dst, x, kLo, kHi)
	} else {
		foldedInteriorGen(f.pairs, f.center, f.hasCenter, f.order, dst, x, kLo, kHi)
	}
	return nil
}

// ApplyInto32 is ApplyInto over float32 planes: taps and accumulators
// are float32, trading last-bits accuracy (documented in DESIGN.md §13)
// for roughly half the FLOP latency on the SoA frame path.
//
//blinkradar:hotpath
func (f *FoldedFIR) ApplyInto32(dst, x []float32) error {
	n := len(x)
	if len(dst) != n {
		return errSampleCount(len(dst), n)
	}
	if n == 0 {
		return nil
	}
	if &dst[0] == &x[0] {
		return errAliased("FoldedFIR.ApplyInto32")
	}
	kLo, kHi := foldedApplyEdges(f.pairs32, f.center32, f.hasCenter, f.order, dst, x)
	if f.is26() {
		foldedInterior26f32(f.pairs32, f.center32, dst, x, kLo, kHi)
	} else {
		foldedInteriorGen(f.pairs32, f.center32, f.hasCenter, f.order, dst, x, kLo, kHi)
	}
	return nil
}

// foldedApplyEdges writes the clamped edge outputs (the first and last
// delay samples, where the window runs off the series) and returns the
// interior range [kLo, kHi] still to be filled.
func foldedApplyEdges[F float32 | float64](pairs []F, center F, hasCenter bool, order int, dst, x []F) (kLo, kHi int) {
	n := len(x)
	delay := order / 2
	// Interior outputs k read x[k+delay-order .. k+delay] unclamped.
	kLo = order - delay
	kHi = n - 1 - delay
	for k := 0; k < kLo && k < n; k++ {
		dst[k] = foldedEdgeAt(pairs, center, hasCenter, order, x, k)
	}
	for k := kHi + 1; k < n; k++ {
		if k < kLo {
			continue // already written by the prologue (tiny n)
		}
		dst[k] = foldedEdgeAt(pairs, center, hasCenter, order, x, k)
	}
	return kLo, kHi
}

// foldedInteriorGen is the generic interior: folded dual-accumulator
// direct form (the two running sums break the FP add dependency chain)
// for any symmetric design.
func foldedInteriorGen[F float32 | float64](pairs []F, center F, hasCenter bool, order int, dst, x []F, kLo, kHi int) {
	delay := order / 2
	npairs := len(pairs)
	for k := kLo; k <= kHi; k++ {
		hi := k + delay
		lo := k + delay - order
		var a0, a1 F
		j := 0
		for ; j+1 < npairs; j += 2 {
			a0 += pairs[j] * (x[hi-j] + x[lo+j])
			a1 += pairs[j+1] * (x[hi-j-1] + x[lo+j+1])
		}
		if j < npairs {
			a0 += pairs[j] * (x[hi-j] + x[lo+j])
		}
		acc := a0 + a1
		if hasCenter {
			acc += center * x[k]
		}
		dst[k] = acc
	}
}

// foldedInterior26 is the interior specialised for the paper's order-26
// design: the 13 folded taps are hoisted into scalars (they fit the
// machine's FP registers), the mirror-pair sums are fully unrolled, and
// the window is a constant-width subslice so every access is provably
// in bounds. Two accumulator chains break the FP-add latency chain.
//
// foldedInterior26 and foldedInterior26f32 are deliberately concrete
// duplicates rather than one generic function: the gcshape-stenciled
// instantiations keep the taps in a dictionary-addressed spill slot
// instead of registers, and measure ~1.7x slower than this exact code
// compiled concretely.
func foldedInterior26(pairs []float64, center float64, dst, x []float64, kLo, kHi int) {
	p0, p1, p2, p3, p4, p5, p6 := pairs[0], pairs[1], pairs[2], pairs[3], pairs[4], pairs[5], pairs[6]
	p7, p8, p9, p10, p11, p12 := pairs[7], pairs[8], pairs[9], pairs[10], pairs[11], pairs[12]
	for k := kLo; k <= kHi; k++ {
		w := x[k-13 : k+14]
		a0 := p0 * (w[26] + w[0])
		a1 := p1 * (w[25] + w[1])
		a0 += p2 * (w[24] + w[2])
		a1 += p3 * (w[23] + w[3])
		a0 += p4 * (w[22] + w[4])
		a1 += p5 * (w[21] + w[5])
		a0 += p6 * (w[20] + w[6])
		a1 += p7 * (w[19] + w[7])
		a0 += p8 * (w[18] + w[8])
		a1 += p9 * (w[17] + w[9])
		a0 += p10 * (w[16] + w[10])
		a1 += p11 * (w[15] + w[11])
		a0 += p12 * (w[14] + w[12])
		dst[k] = a0 + a1 + center*w[13]
	}
}

// foldedInterior26f32 is foldedInterior26 over float32 planes; see that
// function for why the two are concrete duplicates.
func foldedInterior26f32(pairs []float32, center float32, dst, x []float32, kLo, kHi int) {
	p0, p1, p2, p3, p4, p5, p6 := pairs[0], pairs[1], pairs[2], pairs[3], pairs[4], pairs[5], pairs[6]
	p7, p8, p9, p10, p11, p12 := pairs[7], pairs[8], pairs[9], pairs[10], pairs[11], pairs[12]
	for k := kLo; k <= kHi; k++ {
		w := x[k-13 : k+14]
		a0 := p0 * (w[26] + w[0])
		a1 := p1 * (w[25] + w[1])
		a0 += p2 * (w[24] + w[2])
		a1 += p3 * (w[23] + w[3])
		a0 += p4 * (w[22] + w[4])
		a1 += p5 * (w[21] + w[5])
		a0 += p6 * (w[20] + w[6])
		a1 += p7 * (w[19] + w[7])
		a0 += p8 * (w[18] + w[8])
		a1 += p9 * (w[17] + w[9])
		a0 += p10 * (w[16] + w[10])
		a1 += p11 * (w[15] + w[11])
		a0 += p12 * (w[14] + w[12])
		dst[k] = a0 + a1 + center*w[13]
	}
}

// foldedEdgeAt evaluates one output with both mirror indices clamped to
// the input range, matching FIRFilter.ApplyInto's edge replication.
func foldedEdgeAt[F float32 | float64](pairs []F, center F, hasCenter bool, order int, x []F, k int) F {
	n := len(x)
	delay := order / 2
	var acc F
	for j, p := range pairs {
		a := k + delay - j
		if a < 0 {
			a = 0
		} else if a >= n {
			a = n - 1
		}
		b := k + delay - order + j
		if b < 0 {
			b = 0
		} else if b >= n {
			b = n - 1
		}
		acc += p * (x[a] + x[b])
	}
	if hasCenter {
		c := k // k + delay - order/2 == k for even order
		if c >= n {
			c = n - 1
		}
		acc += center * x[c]
	}
	return acc
}

// FusedCascade runs the paper's Fig. 7 noise-reduction chain — folded
// symmetric FIR, centred edge-shrinking moving average, and optional
// scalar background subtraction — over a series with no intermediate
// buffer: the FIR stage writes the output slice directly and the
// smoothing stage then runs in place over it, buffering only a
// window-sized ring of pre-smoothing values so every sample is still
// available until the last window that needs it has been emitted. The
// input is traversed exactly once and the series-length intermediate
// array of the sequential pipeline never exists.
//
// The moving-average sum is kept in float64 on both precisions: an
// incrementally-maintained float32 sum would random-walk its rounding
// error across a long series.
//
// Not safe for concurrent use (the ring is shared across calls).
type FusedCascade struct {
	fir    *FoldedFIR
	window int
	ring   []float64
	ring32 []float32
}

// NewFusedCascade designs the folded FIR stage once (order/cutoff as
// LowPassFIR with a Hamming window) and sizes the ring for the given
// smoothing window; Apply calls are allocation-free.
func NewFusedCascade(order int, cutoff float64, smooth int) (*FusedCascade, error) {
	fir, err := FoldedLowPass(order, cutoff)
	if err != nil {
		return nil, err
	}
	return NewFusedCascadeFIR(fir, smooth)
}

// NewFusedCascadeFIR wraps an already-folded FIR with a smoothing stage.
func NewFusedCascadeFIR(fir *FoldedFIR, smooth int) (*FusedCascade, error) {
	if err := validateLength("smoothing window", smooth); err != nil {
		return nil, err
	}
	// One slot beyond the window span: the newest raw value lands
	// exactly 2·half+1 slots after the value evicted in the same
	// iteration, and insertion happens first (matching the reference
	// smoother's summation order).
	rl := 2*(smooth/2) + 2
	return &FusedCascade{
		fir:    fir,
		window: smooth,
		ring:   make([]float64, rl),
		ring32: make([]float32, rl),
	}, nil
}

// Delay returns the FIR group delay in samples.
func (c *FusedCascade) Delay() int { return c.fir.order / 2 }

// ApplyInto runs the fused FIR+smoother over x into dst (no background
// term). dst must have the same length as x and must not alias it (the
// FIR stage writes dst while later outputs still read x).
//
//blinkradar:hotpath
func (c *FusedCascade) ApplyInto(dst, x []float64) error {
	if len(dst) > 0 && len(x) > 0 && &dst[0] == &x[0] {
		return errAliased("FusedCascade.ApplyInto")
	}
	if err := c.fir.ApplyInto(dst, x); err != nil {
		return err
	}
	maSubInPlace(dst, c.ring, c.window, 0)
	return nil
}

// ApplySubInto32 runs the fused cascade over a float32 plane and
// subtracts the scalar background term from every output: the complete
// per-bin Fig. 7 chain in one traversal of the input. Aliasing rules as
// ApplyInto.
//
//blinkradar:hotpath
func (c *FusedCascade) ApplySubInto32(dst, x []float32, sub float32) error {
	if err := c.fir.ApplyInto32(dst, x); err != nil {
		return err
	}
	maSubInPlace32(dst, c.ring32, c.window, sub)
	return nil
}

// ApplyInto32 is ApplySubInto32 with a zero background term.
//
//blinkradar:hotpath
func (c *FusedCascade) ApplyInto32(dst, x []float32) error {
	return c.ApplySubInto32(dst, x, 0)
}

// InPlaceMA32 is the reusable in-place form of MovingAverageInto over a
// float32 plane: a centred edge-shrinking moving average that smooths
// the series where it lies, buffering only a window-sized ring of
// pre-smoothing values. Construct once; Apply is allocation-free. Not
// safe for concurrent use.
type InPlaceMA32 struct {
	ring   []float32
	window int
}

// NewInPlaceMA32 builds a smoother for the given window width.
func NewInPlaceMA32(window int) (*InPlaceMA32, error) {
	if err := validateLength("smoothing window", window); err != nil {
		return nil, err
	}
	return &InPlaceMA32{ring: make([]float32, 2*(window/2)+2), window: window}, nil
}

// Apply smooths y in place.
//
//blinkradar:hotpath
func (m *InPlaceMA32) Apply(y []float32) {
	maSubInPlace32(y, m.ring, m.window, 0)
}

// maSubInPlace smooths y in place with the centred edge-shrinking
// moving average of MovingAverageInto and subtracts sub from every
// output. Raw values about to be overwritten are parked in the ring
// until the last window that includes them has been emitted; inputs are
// read-ahead only (y[i+half] is always read before iteration i+half
// overwrites it), so no second buffer of the series is needed.
//
// maSubInPlace and maSubInPlace32 are concrete duplicates for the same
// measured reason as the interior FIR kernels (see foldedInterior26).
func maSubInPlace(y []float64, ring []float64, window int, sub float64) {
	n := len(y)
	if n == 0 {
		return
	}
	half := window / 2
	rl := len(ring)
	lo, hi := 0, half
	if hi >= n {
		hi = n - 1
	}
	var sum float64
	wp := 0 // ring slot of the next insert (wrapping counter, no modulo)
	for k := 0; k <= hi; k++ {
		v := y[k]
		ring[wp] = v
		if wp++; wp == rl {
			wp = 0
		}
		sum += v
	}
	ep := 0 // ring slot of the raw value at index lo
	span := hi - lo + 1
	inv := 1 / float64(span)
	y[0] = sum*inv - sub
	for i := 1; i < n; i++ {
		if nhi := i + half; nhi < n && nhi > hi {
			v := y[nhi]
			ring[wp] = v
			if wp++; wp == rl {
				wp = 0
			}
			sum += v
			hi = nhi
		}
		if nlo := i - half; nlo > lo {
			sum -= ring[ep]
			if ep++; ep == rl {
				ep = 0
			}
			lo = nlo
		}
		// The window span only changes near the series edges; the
		// steady state replaces the per-sample divide with a multiply
		// by the cached reciprocal (≤1 ulp from the reference divide).
		if s := hi - lo + 1; s != span {
			span = s
			inv = 1 / float64(span)
		}
		y[i] = sum*inv - sub
	}
}

// maSubInPlace32 is maSubInPlace over a float32 plane; the running sum
// stays float64 (see FusedCascade).
func maSubInPlace32(y []float32, ring []float32, window int, sub float32) {
	n := len(y)
	if n == 0 {
		return
	}
	half := window / 2
	rl := len(ring)
	lo, hi := 0, half
	if hi >= n {
		hi = n - 1
	}
	var sum float64
	wp := 0
	for k := 0; k <= hi; k++ {
		v := y[k]
		ring[wp] = v
		if wp++; wp == rl {
			wp = 0
		}
		sum += float64(v)
	}
	ep := 0
	span := hi - lo + 1
	inv := 1 / float64(span)
	y[0] = float32(sum*inv) - sub
	for i := 1; i < n; i++ {
		if nhi := i + half; nhi < n && nhi > hi {
			v := y[nhi]
			ring[wp] = v
			if wp++; wp == rl {
				wp = 0
			}
			sum += float64(v)
			hi = nhi
		}
		if nlo := i - half; nlo > lo {
			sum -= float64(ring[ep])
			if ep++; ep == rl {
				ep = 0
			}
			lo = nlo
		}
		if s := hi - lo + 1; s != span {
			span = s
			inv = 1 / float64(span)
		}
		y[i] = float32(sum*inv) - sub
	}
}
