package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestLowPassFIRDesignErrors(t *testing.T) {
	cases := []struct {
		name   string
		order  int
		cutoff float64
	}{
		{"zero order", 0, 0.2},
		{"negative order", -4, 0.2},
		{"zero cutoff", 10, 0},
		{"cutoff beyond nyquist", 10, 0.6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LowPassFIR(tc.order, tc.cutoff, nil); err == nil {
				t.Fatalf("expected error for order=%d cutoff=%g", tc.order, tc.cutoff)
			}
		})
	}
}

func TestLowPassFIRResponse(t *testing.T) {
	fir, err := LowPassFIR(26, 0.1, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if fir.Order() != 26 {
		t.Fatalf("order %d, want 26", fir.Order())
	}
	// Unity DC gain by construction.
	if dc := cmplx.Abs(fir.FrequencyResponse(0)); !approxEqual(dc, 1, 1e-9) {
		t.Fatalf("DC gain %g, want 1", dc)
	}
	// Passband nearly flat, stopband well attenuated.
	if g := cmplx.Abs(fir.FrequencyResponse(0.02)); g < 0.9 {
		t.Errorf("passband gain %g at 0.02, want > 0.9", g)
	}
	if g := cmplx.Abs(fir.FrequencyResponse(0.4)); g > 0.05 {
		t.Errorf("stopband gain %g at 0.4, want < 0.05", g)
	}
}

func TestHighPassFIRBlocksDC(t *testing.T) {
	fir, err := HighPassFIR(26, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(fir.FrequencyResponse(0)); g > 1e-6 {
		t.Errorf("DC gain %g, want ~0", g)
	}
	if g := cmplx.Abs(fir.FrequencyResponse(0.45)); g < 0.9 {
		t.Errorf("high-frequency gain %g, want > 0.9", g)
	}
	if _, err := HighPassFIR(25, 0.2, nil); err == nil {
		t.Error("odd order must be rejected")
	}
}

func TestBandPassFIR(t *testing.T) {
	fir, err := BandPassFIR(40, 0.1, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	centre := cmplx.Abs(fir.FrequencyResponse(0.15))
	if !approxEqual(centre, 1, 0.05) {
		t.Errorf("centre gain %g, want ~1", centre)
	}
	if g := cmplx.Abs(fir.FrequencyResponse(0.01)); g > 0.1 {
		t.Errorf("low stopband gain %g, want < 0.1", g)
	}
	if g := cmplx.Abs(fir.FrequencyResponse(0.4)); g > 0.1 {
		t.Errorf("high stopband gain %g, want < 0.1", g)
	}
	if _, err := BandPassFIR(40, 0.3, 0.2, nil); err == nil {
		t.Error("inverted band must be rejected")
	}
	if _, err := BandPassFIR(41, 0.1, 0.2, nil); err == nil {
		t.Error("odd order must be rejected")
	}
}

func TestFIRApplyDelayCompensated(t *testing.T) {
	// A filtered impulse must peak at the impulse position, not
	// shifted by the group delay.
	fir, err := LowPassFIR(26, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 101)
	x[50] = 1
	y := fir.Apply(x)
	if len(y) != len(x) {
		t.Fatalf("output length %d, want %d", len(y), len(x))
	}
	if peak := ArgMax(y); peak != 50 {
		t.Fatalf("impulse response peak at %d, want 50", peak)
	}
}

func TestFIRApplyConstant(t *testing.T) {
	// Unity-DC low-pass passes a constant unchanged (away from edges
	// it is exact; replicated edges keep it exact everywhere).
	fir, err := LowPassFIR(16, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 60)
	for i := range x {
		x[i] = 2.5
	}
	for i, v := range fir.Apply(x) {
		if !approxEqual(v, 2.5, 1e-9) {
			t.Fatalf("sample %d = %g, want 2.5", i, v)
		}
	}
}

func TestFIRApplyComplexMatchesParts(t *testing.T) {
	fir, err := LowPassFIR(12, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 40)
	re := make([]float64, len(x))
	im := make([]float64, len(x))
	for i := range x {
		re[i] = math.Sin(float64(i) / 3)
		im[i] = math.Cos(float64(i) / 5)
		x[i] = complex(re[i], im[i])
	}
	got := fir.ApplyComplex(x)
	wantRe := fir.Apply(re)
	wantIm := fir.Apply(im)
	for i := range got {
		if !approxEqual(real(got[i]), wantRe[i], 1e-12) || !approxEqual(imag(got[i]), wantIm[i], 1e-12) {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}

func TestFIRApplyIntoMatchesApply(t *testing.T) {
	fir, err := LowPassFIR(14, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	cx := make([]complex128, 64)
	for i := range x {
		x[i] = math.Sin(float64(i) / 4)
		cx[i] = complex(x[i], math.Cos(float64(i)/7))
	}
	dst := make([]float64, len(x))
	if err := fir.ApplyInto(dst, x); err != nil {
		t.Fatal(err)
	}
	for i, v := range fir.Apply(x) {
		if dst[i] != v {
			t.Fatalf("sample %d = %g, want %g", i, dst[i], v)
		}
	}
	cdst := make([]complex128, len(cx))
	if err := fir.ApplyComplexInto(cdst, cx); err != nil {
		t.Fatal(err)
	}
	for i, v := range fir.ApplyComplex(cx) {
		if cdst[i] != v {
			t.Fatalf("complex sample %d = %v, want %v", i, cdst[i], v)
		}
	}
	// The Into variants are the allocation-free hot path.
	allocs := testing.AllocsPerRun(100, func() {
		fir.ApplyInto(dst, x)
		fir.ApplyComplexInto(cdst, cx)
	})
	if allocs != 0 {
		t.Fatalf("Into variants allocate %.1f objects/run, want 0", allocs)
	}
}

func TestFIRApplyIntoErrors(t *testing.T) {
	fir, err := LowPassFIR(8, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 10)
	if err := fir.ApplyInto(make([]float64, 9), x); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if err := fir.ApplyInto(x, x); err == nil {
		t.Fatal("aliased destination must be rejected")
	}
	cx := make([]complex128, 10)
	if err := fir.ApplyComplexInto(make([]complex128, 9), cx); err == nil {
		t.Fatal("complex length mismatch must be rejected")
	}
	if err := fir.ApplyComplexInto(cx, cx); err == nil {
		t.Fatal("complex aliased destination must be rejected")
	}
	// Empty inputs are a no-op, not an error.
	if err := fir.ApplyInto(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := fir.ApplyComplexInto(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFIRStreamDelay(t *testing.T) {
	fir, err := LowPassFIR(26, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := fir.Stream()
	if s.Delay() != 13 {
		t.Fatalf("order-26 stream delay %d, want 13", s.Delay())
	}
	// An impulse pushed through the causal stream peaks Delay() samples
	// later — the lag Delay() promises to consumers.
	peakAt, peakVal := -1, 0.0
	for i := 0; i < 60; i++ {
		in := 0.0
		if i == 20 {
			in = 1
		}
		if out := s.Push(in); out > peakVal {
			peakVal, peakAt = out, i
		}
	}
	if peakAt != 20+s.Delay() {
		t.Fatalf("stream impulse peak at %d, want %d", peakAt, 20+s.Delay())
	}
}

func TestFIRStreamSteadyState(t *testing.T) {
	// After the delay line fills, the streaming filter's output on a
	// constant input equals the DC gain.
	fir, err := LowPassFIR(10, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := fir.Stream()
	var last float64
	for i := 0; i < 50; i++ {
		last = s.Push(3)
	}
	if !approxEqual(last, 3, 1e-9) {
		t.Fatalf("steady state %g, want 3", last)
	}
	s.Reset()
	if out := s.Push(3); approxEqual(out, 3, 1e-9) {
		t.Fatal("reset stream should not instantly reach steady state")
	}
}

func TestNewFIRFilter(t *testing.T) {
	if _, err := NewFIRFilter(nil); err == nil {
		t.Fatal("empty taps must be rejected")
	}
	taps := []float64{0.5, 0.5}
	f, err := NewFIRFilter(taps)
	if err != nil {
		t.Fatal(err)
	}
	taps[0] = 99 // caller mutation must not leak in
	got := f.Taps()
	if got[0] != 0.5 {
		t.Fatalf("taps not copied: %v", got)
	}
	got[1] = 99 // returned slice mutation must not leak back
	if f.Taps()[1] != 0.5 {
		t.Fatal("Taps() must return a copy")
	}
}
