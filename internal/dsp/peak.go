package dsp

// Extremum is a local maximum or minimum found in a sampled waveform.
type Extremum struct {
	// Index is the sample index of the extremum.
	Index int
	// Value is the waveform value at Index.
	Value float64
	// Max is true for a local maximum, false for a local minimum.
	Max bool
}

// LocalExtrema returns the alternating local maxima and minima of x.
// Plateaus report their midpoint. The result alternates strictly between
// maxima and minima, which is the structure the LEVD blink detector
// relies on: a blink appears as a max-min (or min-max) pair whose value
// difference exceeds the detection threshold.
func LocalExtrema(x []float64) []Extremum {
	n := len(x)
	if n < 3 {
		return nil
	}
	var out []Extremum
	i := 1
	for i < n-1 {
		// Skip forward over plateaus so each flat top counts once.
		j := i
		for j < n-1 && x[j] == x[j+1] {
			j++
		}
		if j >= n-1 {
			break
		}
		left := x[i-1]
		right := x[j+1]
		mid := (i + j) / 2
		switch {
		case x[i] > left && x[i] > right:
			out = appendAlternating(out, Extremum{Index: mid, Value: x[i], Max: true})
		case x[i] < left && x[i] < right:
			out = appendAlternating(out, Extremum{Index: mid, Value: x[i], Max: false})
		}
		i = j + 1
	}
	return out
}

// appendAlternating keeps the extrema sequence strictly alternating. If
// two maxima (or two minima) would be adjacent, the more extreme one is
// kept.
func appendAlternating(seq []Extremum, e Extremum) []Extremum {
	if len(seq) == 0 {
		return append(seq, e)
	}
	last := &seq[len(seq)-1]
	if last.Max != e.Max {
		return append(seq, e)
	}
	if e.Max && e.Value > last.Value {
		*last = e
	} else if !e.Max && e.Value < last.Value {
		*last = e
	}
	return seq
}

// Peak describes a peak found by FindPeaks.
type Peak struct {
	// Index is the sample index of the peak apex.
	Index int
	// Value is the waveform value at the apex.
	Value float64
	// Prominence is the height of the apex above the higher of the two
	// flanking valleys.
	Prominence float64
}

// FindPeaks locates local maxima of x that rise at least minProminence
// above their surrounding valleys and are separated by at least
// minDistance samples. Peaks are returned in index order. When two peaks
// violate the distance constraint the taller one wins.
func FindPeaks(x []float64, minProminence float64, minDistance int) []Peak {
	ext := LocalExtrema(x)
	if len(ext) == 0 {
		return nil
	}
	var peaks []Peak
	for i, e := range ext {
		if !e.Max {
			continue
		}
		// Flanking minima (fall back to the global edges).
		leftVal := x[0]
		if i > 0 {
			leftVal = ext[i-1].Value
		}
		rightVal := x[len(x)-1]
		if i < len(ext)-1 {
			rightVal = ext[i+1].Value
		}
		base := leftVal
		if rightVal > base {
			base = rightVal
		}
		prom := e.Value - base
		if prom >= minProminence {
			peaks = append(peaks, Peak{Index: e.Index, Value: e.Value, Prominence: prom})
		}
	}
	if minDistance <= 1 || len(peaks) < 2 {
		return peaks
	}
	return enforceDistance(peaks, minDistance)
}

// enforceDistance greedily keeps the tallest peaks subject to the
// minimum-separation constraint.
func enforceDistance(peaks []Peak, minDistance int) []Peak {
	// Sort candidate order by height (descending) without disturbing the
	// caller's slice ordering expectations; a simple selection keeps the
	// code allocation-light for the short peak lists seen in practice.
	order := make([]int, len(peaks))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if peaks[order[j]].Value > peaks[order[best]].Value {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	kept := make([]bool, len(peaks))
	suppressed := make([]bool, len(peaks))
	for _, idx := range order {
		if suppressed[idx] {
			continue
		}
		kept[idx] = true
		for j := range peaks {
			if j == idx || suppressed[j] || kept[j] {
				continue
			}
			d := peaks[j].Index - peaks[idx].Index
			if d < 0 {
				d = -d
			}
			if d < minDistance {
				suppressed[j] = true
			}
		}
	}
	out := peaks[:0:0]
	for i, p := range peaks {
		if kept[i] {
			out = append(out, p)
		}
	}
	return out
}

// ZeroCrossings counts the number of sign changes in x, ignoring exact
// zeros. It provides a cheap dominant-frequency sanity check in tests.
func ZeroCrossings(x []float64) int {
	count := 0
	prev := 0.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		if prev != 0 && (v > 0) != (prev > 0) {
			count++
		}
		prev = v
	}
	return count
}
