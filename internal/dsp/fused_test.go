package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// refCascade64 is the sequential float64 oracle: the unfolded FIR
// followed by the separate moving average, exactly the pre-fusion
// pipeline.
func refCascade64(t *testing.T, x []float64, order int, cutoff float64, smooth int) []float64 {
	t.Helper()
	fir, err := LowPassFIR(order, cutoff, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	mid := make([]float64, len(x))
	if err := fir.ApplyInto(mid, x); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(x))
	if err := MovingAverageInto(out, mid, smooth); err != nil {
		t.Fatal(err)
	}
	return out
}

func randSeries(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// maxScale returns a per-series magnitude floor for relative error
// checks: |x| can pass through zero, so errors are measured relative to
// the series' peak magnitude rather than pointwise.
func maxScale(x []float64) float64 {
	s := 1e-30
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

func TestFoldedFIRMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 5, 13, 26, 27, 64, 500} {
		for _, order := range []int{2, 4, 13, 26} {
			fir, err := LowPassFIR(order, 0.04, Hamming)
			if err != nil {
				t.Fatal(err)
			}
			folded, err := NewFoldedFIR(fir.taps)
			if err != nil {
				t.Fatalf("order %d: %v", order, err)
			}
			x := randSeries(int64(n*100+order), n)
			want := make([]float64, n)
			got := make([]float64, n)
			if err := fir.ApplyInto(want, x); err != nil {
				t.Fatal(err)
			}
			if err := folded.ApplyInto(got, x); err != nil {
				t.Fatal(err)
			}
			scale := maxScale(want)
			for i := range want {
				if rel := math.Abs(got[i]-want[i]) / scale; rel > 1e-12 {
					t.Fatalf("n=%d order=%d sample %d: folded %g vs reference %g (rel %g)",
						n, order, i, got[i], want[i], rel)
				}
			}
		}
	}
}

func TestFoldedFIROddOrder(t *testing.T) {
	// Odd order: even tap count, no centre tap. Build an explicitly
	// symmetric tap set.
	taps := []float64{0.1, 0.2, 0.3, 0.3, 0.2, 0.1}
	fir, err := NewFIRFilter(taps)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := NewFoldedFIR(taps)
	if err != nil {
		t.Fatal(err)
	}
	x := randSeries(7, 40)
	want := make([]float64, len(x))
	got := make([]float64, len(x))
	if err := fir.ApplyInto(want, x); err != nil {
		t.Fatal(err)
	}
	if err := folded.ApplyInto(got, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestNewFoldedFIRRejectsAsymmetric(t *testing.T) {
	if _, err := NewFoldedFIR([]float64{1, 2, 3}); err == nil {
		t.Fatal("asymmetric taps must be rejected")
	}
	if _, err := NewFoldedFIR(nil); err == nil {
		t.Fatal("empty taps must be rejected")
	}
}

func TestFusedCascadeMatchesSequential64(t *testing.T) {
	const order, cutoff = 26, 0.04
	for _, smooth := range []int{1, 2, 3, 50, 51} {
		for _, n := range []int{1, 10, 49, 50, 128, 2048} {
			c, err := NewFusedCascade(order, cutoff, smooth)
			if err != nil {
				t.Fatal(err)
			}
			x := randSeries(int64(n+smooth), n)
			want := refCascade64(t, x, order, cutoff, smooth)
			got := make([]float64, n)
			if err := c.ApplyInto(got, x); err != nil {
				t.Fatal(err)
			}
			scale := maxScale(want)
			for i := range want {
				if rel := math.Abs(got[i]-want[i]) / scale; rel > 1e-12 {
					t.Fatalf("smooth=%d n=%d sample %d: fused %g vs sequential %g (rel %g)",
						smooth, n, i, got[i], want[i], rel)
				}
			}
		}
	}
}

// TestFusedCascade32ErrorBudget pins the float32 SoA path to the
// documented end-to-end budget: within 1e-5 of the float64 sequential
// reference, relative to the series' peak magnitude (DESIGN.md §13).
func TestFusedCascade32ErrorBudget(t *testing.T) {
	const order, cutoff, smooth = 26, 0.04, 50
	c, err := NewFusedCascade(order, cutoff, smooth)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		x := randSeries(seed, 2048)
		want := refCascade64(t, x, order, cutoff, smooth)
		x32 := make([]float32, len(x))
		for i, v := range x {
			x32[i] = float32(v)
		}
		got := make([]float32, len(x))
		if err := c.ApplyInto32(got, x32); err != nil {
			t.Fatal(err)
		}
		scale := maxScale(want)
		for i := range want {
			if rel := math.Abs(float64(got[i])-want[i]) / scale; rel > 1e-5 {
				t.Fatalf("seed=%d sample %d: float32 %g vs float64 %g (rel %g)",
					seed, i, got[i], want[i], rel)
			}
		}
	}
}

func TestFusedCascadeSubtraction(t *testing.T) {
	c, err := NewFusedCascade(26, 0.04, 50)
	if err != nil {
		t.Fatal(err)
	}
	x := randSeries(3, 300)
	x32 := make([]float32, len(x))
	for i, v := range x {
		x32[i] = float32(v)
	}
	plain := make([]float32, len(x))
	shifted := make([]float32, len(x))
	const sub = float32(0.75)
	if err := c.ApplyInto32(plain, x32); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplySubInto32(shifted, x32, sub); err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if d := (plain[i] - sub) - shifted[i]; d != 0 {
			t.Fatalf("sample %d: subtraction not a pure shift (diff %g)", i, d)
		}
	}
}

func TestFusedCascadeAliasing(t *testing.T) {
	// The FIR stage writes dst while later outputs still read x, so the
	// fused cascade must reject aliasing on every path.
	c, err := NewFusedCascade(26, 0.04, 50)
	if err != nil {
		t.Fatal(err)
	}
	buf := randSeries(9, 400)
	if err := c.ApplyInto(buf, buf); err == nil {
		t.Fatal("aliased ApplyInto must be rejected")
	}
	buf32 := make([]float32, 400)
	if err := c.ApplyInto32(buf32, buf32); err == nil {
		t.Fatal("aliased ApplyInto32 must be rejected")
	}
	if err := c.ApplySubInto32(buf32, buf32, 0.5); err == nil {
		t.Fatal("aliased ApplySubInto32 must be rejected")
	}
	// FoldedFIR alone rejects aliasing too, like FIRFilter.
	fir, err := FoldedLowPass(26, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if err := fir.ApplyInto(buf, buf); err == nil {
		t.Fatal("FoldedFIR.ApplyInto must reject aliasing")
	}
	if err := fir.ApplyInto32(buf32, buf32); err == nil {
		t.Fatal("FoldedFIR.ApplyInto32 must reject aliasing")
	}
}

func TestFusedCascadeAllocFree(t *testing.T) {
	c, err := NewFusedCascade(26, 0.04, 50)
	if err != nil {
		t.Fatal(err)
	}
	x := randSeries(5, 2048)
	dst := make([]float64, len(x))
	x32 := make([]float32, len(x))
	dst32 := make([]float32, len(x))
	for i, v := range x {
		x32[i] = float32(v)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := c.ApplyInto(dst, x); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ApplyInto allocates %.1f objects/run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := c.ApplySubInto32(dst32, x32, 0.1); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ApplySubInto32 allocates %.1f objects/run, want 0", allocs)
	}
}

func TestFusedCascadeErrors(t *testing.T) {
	c, err := NewFusedCascade(26, 0.04, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyInto(make([]float64, 3), make([]float64, 4)); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if err := c.ApplyInto(nil, nil); err != nil {
		t.Fatalf("empty input must be a no-op, got %v", err)
	}
	if _, err := NewFusedCascade(26, 0.04, 0); err == nil {
		t.Fatal("non-positive smoothing window must be rejected")
	}
	if _, err := NewFusedCascade(0, 0.04, 50); err == nil {
		t.Fatal("bad FIR order must be rejected")
	}
}

// FuzzFusedCascade drives random series through the fused float32 path
// and checks it against the sequential float64 oracle within the
// documented error budget, for arbitrary lengths and window/order
// combinations.
func FuzzFusedCascade(f *testing.F) {
	f.Add(int64(1), uint8(128), uint8(26), uint8(50))
	f.Add(int64(2), uint8(3), uint8(4), uint8(2))
	f.Add(int64(3), uint8(255), uint8(12), uint8(51))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, orderRaw, smoothRaw uint8) {
		n := int(nRaw)
		order := 2 * (1 + int(orderRaw)%15) // even, 2..30
		smooth := 1 + int(smoothRaw)%64
		if n == 0 {
			return
		}
		c, err := NewFusedCascade(order, 0.04, smooth)
		if err != nil {
			t.Fatal(err)
		}
		x := randSeries(seed, n)
		want := refCascade64(t, x, order, 0.04, smooth)
		x32 := make([]float32, n)
		for i, v := range x {
			x32[i] = float32(v)
		}
		got := make([]float32, n)
		if err := c.ApplyInto32(got, x32); err != nil {
			t.Fatal(err)
		}
		// The float32 error budget is relative to the INPUT scale: the
		// dominant term is eps32·max|x| from narrowing the samples,
		// carried through a linear cascade with bounded per-stage gain.
		// Background subtraction can cancel the output to far below
		// max|x| (e.g. n=27, order=26, smooth=60 — regression corpus
		// 722c17465a77c9b7), where an output-relative bound would
		// spuriously amplify that fixed absolute error.
		scale := math.Max(maxScale(want), maxScale(x))
		for i := range want {
			if rel := math.Abs(float64(got[i])-want[i]) / scale; rel > 1e-5 {
				t.Fatalf("n=%d order=%d smooth=%d sample %d: float32 %g vs float64 %g (rel %g)",
					n, order, smooth, i, got[i], want[i], rel)
			}
		}
		// The float64 fused path sits within fold-average rounding of
		// the oracle.
		got64 := make([]float64, n)
		if err := c.ApplyInto(got64, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if rel := math.Abs(got64[i]-want[i]) / scale; rel > 1e-12 {
				t.Fatalf("n=%d order=%d smooth=%d sample %d: fused64 %g vs oracle %g (rel %g)",
					n, order, smooth, i, got64[i], want[i], rel)
			}
		}
	})
}
