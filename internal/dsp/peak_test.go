package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLocalExtremaAlternationProperty(t *testing.T) {
	// The extrema sequence must strictly alternate max/min for any
	// input.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 5+rng.Intn(200))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ext := LocalExtrema(x)
		for i := 1; i < len(ext); i++ {
			if ext[i].Max == ext[i-1].Max {
				return false
			}
			if ext[i].Index <= ext[i-1].Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalExtremaKnown(t *testing.T) {
	x := []float64{0, 1, 2, 1, 0, -1, 0, 1}
	ext := LocalExtrema(x)
	if len(ext) != 2 {
		t.Fatalf("got %d extrema, want 2: %v", len(ext), ext)
	}
	if !ext[0].Max || ext[0].Index != 2 || ext[0].Value != 2 {
		t.Fatalf("first extremum %+v, want max 2@2", ext[0])
	}
	if ext[1].Max || ext[1].Index != 5 || ext[1].Value != -1 {
		t.Fatalf("second extremum %+v, want min -1@5", ext[1])
	}
}

func TestLocalExtremaPlateau(t *testing.T) {
	x := []float64{0, 2, 2, 2, 0}
	ext := LocalExtrema(x)
	if len(ext) != 1 || !ext[0].Max || ext[0].Index != 2 {
		t.Fatalf("plateau extrema %+v, want single max at midpoint 2", ext)
	}
}

func TestLocalExtremaTooShort(t *testing.T) {
	if got := LocalExtrema([]float64{1, 2}); got != nil {
		t.Fatalf("short input extrema %v, want nil", got)
	}
}

func TestFindPeaksProminence(t *testing.T) {
	// Two clear peaks over a flat floor; a tiny wiggle must be
	// filtered by the prominence threshold.
	x := make([]float64, 100)
	addBump := func(pos int, amp float64) {
		for i := range x {
			d := float64(i-pos) / 3
			x[i] += amp * math.Exp(-0.5*d*d)
		}
	}
	addBump(25, 1.0)
	addBump(70, 0.8)
	addBump(50, 0.02)
	peaks := FindPeaks(x, 0.1, 5)
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks, want 2: %+v", len(peaks), peaks)
	}
	if peaks[0].Index != 25 || peaks[1].Index != 70 {
		t.Fatalf("peak positions %d, %d, want 25, 70", peaks[0].Index, peaks[1].Index)
	}
}

func TestFindPeaksMinDistance(t *testing.T) {
	// Two close peaks: the taller one wins under the separation rule.
	x := make([]float64, 60)
	for i := range x {
		d1 := float64(i-20) / 2
		d2 := float64(i-26) / 2
		x[i] = math.Exp(-0.5*d1*d1) + 0.7*math.Exp(-0.5*d2*d2)
	}
	peaks := FindPeaks(x, 0.05, 15)
	if len(peaks) != 1 {
		t.Fatalf("got %d peaks, want 1 after suppression: %+v", len(peaks), peaks)
	}
	if got := peaks[0].Index; got < 19 || got > 22 {
		t.Fatalf("surviving peak at %d, want the taller one near 20", got)
	}
}

func TestZeroCrossings(t *testing.T) {
	cases := []struct {
		x    []float64
		want int
	}{
		{[]float64{1, -1, 1, -1}, 3},
		{[]float64{1, 0, -1}, 1}, // zeros are skipped
		{[]float64{1, 2, 3}, 0},
		{nil, 0},
	}
	for _, tc := range cases {
		if got := ZeroCrossings(tc.x); got != tc.want {
			t.Errorf("ZeroCrossings(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestZeroCrossingsSinusoid(t *testing.T) {
	// A sinusoid with k cycles crosses zero ~2k times.
	n := 1000
	k := 7
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	got := ZeroCrossings(x)
	if got < 2*k-2 || got > 2*k+2 {
		t.Fatalf("zero crossings %d, want ~%d", got, 2*k)
	}
}
