package dsp

import (
	"math"
	"testing"
)

func TestSTFTDominantFrequency(t *testing.T) {
	const fs = 100.0
	const f0 = 12.5
	n := 2000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	sp, err := STFT(x, 128, 64, fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Power) == 0 {
		t.Fatal("no STFT windows")
	}
	if got := sp.DominantFrequency(); math.Abs(got-f0) > fs/128 {
		t.Fatalf("dominant frequency %g, want ~%g", got, f0)
	}
	if got := sp.BinFrequency(1); !approxEqual(got, fs/128, floatTol) {
		t.Fatalf("bin 1 frequency %g", got)
	}
	if got := sp.WindowTime(2); !approxEqual(got, 128.0/fs, floatTol) {
		t.Fatalf("window 2 time %g", got)
	}
}

func TestSTFTErrors(t *testing.T) {
	x := make([]float64, 256)
	if _, err := STFT(x, 100, 32, 1, nil); err == nil {
		t.Fatal("non-power-of-two window must be rejected")
	}
	if _, err := STFT(x, 64, 0, 1, nil); err == nil {
		t.Fatal("zero hop must be rejected")
	}
}

func TestResample(t *testing.T) {
	// Upsampling a line reproduces the line exactly under linear
	// interpolation.
	x := []float64{0, 1, 2, 3}
	out, err := Resample(x, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 7 {
		t.Fatalf("resampled length %d, want 7", len(out))
	}
	for i, v := range out {
		if !approxEqual(v, float64(i)/2, 1e-12) {
			t.Fatalf("sample %d = %g, want %g", i, v, float64(i)/2)
		}
	}
	if _, err := Resample(x, 0, 2); err == nil {
		t.Fatal("zero source rate must be rejected")
	}
	if out, err := Resample(nil, 1, 2); err != nil || out != nil {
		t.Fatal("empty input should resample to nil without error")
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1, 1}
	out, err := Decimate(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("decimated length %d, want 3", len(out))
	}
	for _, v := range out {
		if !approxEqual(v, 1, floatTol) {
			t.Fatalf("decimated constant %g, want 1", v)
		}
	}
	// Factor 1 copies.
	same, err := Decimate(x, 1)
	if err != nil || len(same) != len(x) {
		t.Fatal("factor-1 decimation should copy")
	}
	if _, err := Decimate(x, 0); err == nil {
		t.Fatal("zero factor must be rejected")
	}
}
