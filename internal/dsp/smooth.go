package dsp

import "fmt"

// MovingAverage smooths x with a centred moving-average window of the
// given size and returns a new slice of the same length. Window edges
// shrink symmetrically near the boundaries so no samples are lost. The
// paper's preprocessing cascade uses a 50-point smoothing filter after
// the FIR stage.
func MovingAverage(x []float64, window int) ([]float64, error) {
	if err := validateLength("smoothing window", window); err != nil {
		return nil, err
	}
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	half := window / 2
	// Prefix sums give O(n) smoothing independent of window size.
	prefix := make([]float64, n+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	for i := 0; i < n; i++ {
		lo := i - half
		hi := i + half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out, nil
}

// MovingAverageInto smooths x into dst with the same centred,
// edge-shrinking window as MovingAverage, performing no allocations: the
// window sum is maintained incrementally instead of through a prefix
// array. dst must have the same length as x and must not alias it.
//
//blinkradar:hotpath
func MovingAverageInto(dst, x []float64, window int) error {
	if err := validateLength("smoothing window", window); err != nil {
		return err
	}
	n := len(x)
	if len(dst) != n {
		return errSampleCount(len(dst), n)
	}
	if n == 0 {
		return nil
	}
	if &dst[0] == &x[0] {
		return errAliased("MovingAverageInto")
	}
	half := window / 2
	lo, hi := 0, half
	if hi >= n {
		hi = n - 1
	}
	var sum float64
	for i := lo; i <= hi; i++ {
		sum += x[i]
	}
	dst[0] = sum / float64(hi-lo+1)
	for i := 1; i < n; i++ {
		if nhi := i + half; nhi < n && nhi > hi {
			sum += x[nhi]
			hi = nhi
		}
		if nlo := i - half; nlo > lo {
			sum -= x[lo]
			lo = nlo
		}
		dst[i] = sum / float64(hi-lo+1)
	}
	return nil
}

// MovingAverageComplex smooths the real and imaginary parts of a complex
// series independently.
func MovingAverageComplex(x []complex128, window int) ([]complex128, error) {
	re := make([]float64, len(x))
	im := make([]float64, len(x))
	for i, c := range x {
		re[i] = real(c)
		im[i] = imag(c)
	}
	re, err := MovingAverage(re, window)
	if err != nil {
		return nil, err
	}
	im, err = MovingAverage(im, window)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	for i := range out {
		out[i] = complex(re[i], im[i])
	}
	return out, nil
}

// ExponentialSmoother is a streaming first-order IIR smoother
// y[k] = alpha*x[k] + (1-alpha)*y[k-1]. The zero value is invalid; use
// NewExponentialSmoother.
type ExponentialSmoother struct {
	alpha  float64
	value  float64
	primed bool
}

// NewExponentialSmoother returns a smoother with coefficient alpha in
// (0, 1]. Smaller alpha smooths more aggressively.
func NewExponentialSmoother(alpha float64) (*ExponentialSmoother, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("dsp: alpha must be in (0, 1], got %g", alpha)
	}
	return &ExponentialSmoother{alpha: alpha}, nil
}

// Push feeds one sample and returns the smoothed value. The first sample
// initialises the state directly to avoid a start-up transient.
func (s *ExponentialSmoother) Push(v float64) float64 {
	if !s.primed {
		s.value = v
		s.primed = true
		return v
	}
	s.value += s.alpha * (v - s.value)
	return s.value
}

// Value returns the current smoothed value (zero before the first Push).
func (s *ExponentialSmoother) Value() float64 { return s.value }

// Reset clears the smoother state.
func (s *ExponentialSmoother) Reset() {
	s.value = 0
	s.primed = false
}

// SlidingWindow is a fixed-capacity streaming window that maintains the
// running mean and variance of the most recent samples in O(1) per push.
// It backs the LEVD threshold estimate (5x the no-blink sigma) and the
// adaptive restart logic in the tracker.
type SlidingWindow struct {
	buf   []float64
	pos   int
	count int
	sum   float64
	sumSq float64
}

// NewSlidingWindow returns a window holding up to capacity samples.
func NewSlidingWindow(capacity int) (*SlidingWindow, error) {
	if err := validateLength("window capacity", capacity); err != nil {
		return nil, err
	}
	return &SlidingWindow{buf: make([]float64, capacity)}, nil
}

// Push adds a sample, evicting the oldest if the window is full.
func (w *SlidingWindow) Push(v float64) {
	if w.count == len(w.buf) {
		old := w.buf[w.pos]
		w.sum -= old
		w.sumSq -= old * old
	} else {
		w.count++
	}
	w.buf[w.pos] = v
	w.sum += v
	w.sumSq += v * v
	w.pos = (w.pos + 1) % len(w.buf)
}

// Len reports the number of samples currently held.
func (w *SlidingWindow) Len() int { return w.count }

// Full reports whether the window has reached its capacity.
func (w *SlidingWindow) Full() bool { return w.count == len(w.buf) }

// Mean returns the mean of the held samples (0 when empty).
func (w *SlidingWindow) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}

// Variance returns the population variance of the held samples. Floating
// point cancellation is clamped at zero.
func (w *SlidingWindow) Variance() float64 {
	if w.count == 0 {
		return 0
	}
	m := w.Mean()
	v := w.sumSq/float64(w.count) - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// Std returns the population standard deviation of the held samples.
func (w *SlidingWindow) Std() float64 {
	v := w.Variance()
	if v <= 0 {
		return 0
	}
	return sqrt(v)
}

// Values returns the samples currently held, oldest first.
func (w *SlidingWindow) Values() []float64 {
	out := make([]float64, 0, w.count)
	start := w.pos - w.count
	for i := 0; i < w.count; i++ {
		idx := start + i
		if idx < 0 {
			idx += len(w.buf)
		}
		out = append(out, w.buf[idx%len(w.buf)])
	}
	return out
}

// Reset empties the window.
func (w *SlidingWindow) Reset() {
	w.pos = 0
	w.count = 0
	w.sum = 0
	w.sumSq = 0
}
