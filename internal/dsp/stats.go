package dsp

import (
	"math"
	"sort"
)

// sqrt is a trivial indirection so smooth.go can avoid importing math.
func sqrt(v float64) float64 { return math.Sqrt(v) }

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// samples.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var acc float64
	for _, v := range x {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// RMS returns the root-mean-square of x, or 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var acc float64
	for _, v := range x {
		acc += v * v
	}
	return math.Sqrt(acc / float64(len(x)))
}

// Median returns the median of x, or 0 for an empty slice. The input is
// not modified.
func Median(x []float64) float64 { return Percentile(x, 50) }

// Percentile returns the p-th percentile of x (0 <= p <= 100) using
// linear interpolation between order statistics. The input is not
// modified; an empty slice yields 0.
func Percentile(x []float64, p float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, x)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAD returns the median absolute deviation of x, a robust scale
// estimate used by the tracker's restart heuristic.
func MAD(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Median(x)
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - m)
	}
	return Median(dev)
}

// MinMax returns the minimum and maximum of x. Both are 0 for an empty
// slice.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ArgMax returns the index of the largest element of x, or -1 for an
// empty slice. Ties resolve to the first occurrence.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// DemeanInPlace subtracts the mean from x in place and returns x.
func DemeanInPlace(x []float64) []float64 {
	m := Mean(x)
	for i := range x {
		x[i] -= m
	}
	return x
}

// DetrendLinear removes the least-squares straight-line fit from x and
// returns a new slice, leaving the input untouched. It is used to strip
// slow posture drift before variance estimation.
func DetrendLinear(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n < 2 {
		copy(out, x)
		return out
	}
	// Least squares fit y = a + b*t with t = 0..n-1.
	var sumT, sumY, sumTY, sumTT float64
	for i, v := range x {
		t := float64(i)
		sumT += t
		sumY += v
		sumTY += t * v
		sumTT += t * t
	}
	fn := float64(n)
	den := fn*sumTT - sumT*sumT
	var a, b float64
	if den != 0 {
		b = (fn*sumTY - sumT*sumY) / den
		a = (sumY - b*sumT) / fn
	} else {
		a = sumY / fn
	}
	for i, v := range x {
		out[i] = v - (a + b*float64(i))
	}
	return out
}

// SNRdB estimates the signal-to-noise ratio in decibels between a clean
// reference and an observed noisy version of it:
// 10*log10(P_signal / P_noise) with noise = observed - reference.
// It returns +Inf for an exact match and 0 when either input is empty.
func SNRdB(reference, observed []float64) float64 {
	n := min(len(reference), len(observed))
	if n == 0 {
		return 0
	}
	var pSig, pNoise float64
	for i := 0; i < n; i++ {
		pSig += reference[i] * reference[i]
		d := observed[i] - reference[i]
		pNoise += d * d
	}
	if pNoise == 0 {
		return math.Inf(1)
	}
	if pSig == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(pSig/pNoise)
}

// CrossCorrelateAtLag computes the normalised cross-correlation of a and
// b at the given integer lag (b shifted right by lag relative to a). The
// result is in [-1, 1]; degenerate inputs give 0.
func CrossCorrelateAtLag(a, b []float64, lag int) float64 {
	var sa, sb, sab, saa, sbb float64
	var count int
	for i := range a {
		j := i - lag
		if j < 0 || j >= len(b) {
			continue
		}
		sa += a[i]
		sb += b[j]
		count++
	}
	if count < 2 {
		return 0
	}
	ma := sa / float64(count)
	mb := sb / float64(count)
	for i := range a {
		j := i - lag
		if j < 0 || j >= len(b) {
			continue
		}
		da := a[i] - ma
		db := b[j] - mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	den := math.Sqrt(saa * sbb)
	if den == 0 {
		return 0
	}
	return sab / den
}
