package dsp

import "math"

// WindowFunc generates an n-point window. Implementations return a newly
// allocated slice of length n; n <= 0 yields an empty slice.
type WindowFunc func(n int) []float64

// Rectangular returns an n-point all-ones (boxcar) window.
func Rectangular(n int) []float64 {
	w := make([]float64, max(n, 0))
	for i := range w {
		w[i] = 1
	}
	return w
}

// Hamming returns the n-point Hamming window
// w[i] = 0.54 - 0.46*cos(2*pi*i/(n-1)), the window the paper uses for its
// order-26 FIR noise-reduction filter.
func Hamming(n int) []float64 {
	return cosineWindow(n, 0.54, 0.46)
}

// Hann returns the n-point Hann (hanning) window.
func Hann(n int) []float64 {
	return cosineWindow(n, 0.5, 0.5)
}

// cosineWindow builds a generalised two-term cosine window a - b*cos(...).
func cosineWindow(n int, a, b float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := 0; i < n; i++ {
		w[i] = a - b*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Blackman returns the n-point Blackman window.
func Blackman(n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := 0; i < n; i++ {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return w
}

// Gaussian returns an n-point Gaussian window with standard deviation
// sigma expressed as a fraction of half the window length (sigma <= 0.5
// is typical).
func Gaussian(sigma float64) WindowFunc {
	return func(n int) []float64 {
		if n <= 0 {
			return nil
		}
		w := make([]float64, n)
		if n == 1 {
			w[0] = 1
			return w
		}
		half := float64(n-1) / 2
		for i := 0; i < n; i++ {
			x := (float64(i) - half) / (sigma * half)
			w[i] = math.Exp(-0.5 * x * x)
		}
		return w
	}
}

// ApplyWindow multiplies x element-wise by the window w in place and
// returns x. If the lengths differ, the shorter prefix is used.
func ApplyWindow(x, w []float64) []float64 {
	n := min(len(x), len(w))
	for i := 0; i < n; i++ {
		x[i] *= w[i]
	}
	return x
}
