package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMovingAverageErrors(t *testing.T) {
	if _, err := MovingAverage([]float64{1}, 0); err == nil {
		t.Fatal("zero window must be rejected")
	}
	if _, err := MovingAverage([]float64{1}, -3); err == nil {
		t.Fatal("negative window must be rejected")
	}
}

func TestMovingAverageIdentity(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	got, err := MovingAverage(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("window 1 not identity at %d", i)
		}
	}
}

func TestMovingAverageConstantProperty(t *testing.T) {
	// Smoothing a constant signal returns the constant, any window.
	f := func(seed int64, rawWin uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := rng.NormFloat64()
		n := 1 + rng.Intn(100)
		win := int(rawWin)%20 + 1
		x := make([]float64, n)
		for i := range x {
			x[i] = c
		}
		out, err := MovingAverage(x, win)
		if err != nil {
			return false
		}
		for _, v := range out {
			if !approxEqual(v, c, 1e-9*(1+math.Abs(c))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverageKnown(t *testing.T) {
	got, err := MovingAverage([]float64{0, 3, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Edges shrink symmetrically: [mean(0,3), mean(0,3,6), mean(3,6)].
	want := []float64{1.5, 3, 4.5}
	for i := range want {
		if !approxEqual(got[i], want[i], floatTol) {
			t.Fatalf("index %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestMovingAverageIntoMatchesMovingAverage(t *testing.T) {
	// The incremental-sum Into variant must agree with the prefix-sum
	// version (to rounding) for any signal and window, and allocate
	// nothing.
	f := func(seed int64, rawWin uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		win := int(rawWin)%60 + 1
		x := make([]float64, n)
		var scale float64
		for i := range x {
			x[i] = rng.NormFloat64() * 10
			if a := math.Abs(x[i]); a > scale {
				scale = a
			}
		}
		want, err := MovingAverage(x, win)
		if err != nil {
			return false
		}
		dst := make([]float64, n)
		if err := MovingAverageInto(dst, x, win); err != nil {
			return false
		}
		for i := range want {
			if !approxEqual(dst[i], want[i], 1e-9*(1+scale)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 256)
	dst := make([]float64, 256)
	allocs := testing.AllocsPerRun(100, func() {
		MovingAverageInto(dst, x, 50)
	})
	if allocs != 0 {
		t.Fatalf("MovingAverageInto allocates %.1f objects/run, want 0", allocs)
	}
}

func TestMovingAverageIntoErrors(t *testing.T) {
	x := []float64{1, 2, 3}
	if err := MovingAverageInto(make([]float64, 2), x, 3); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if err := MovingAverageInto(x, x, 3); err == nil {
		t.Fatal("aliased destination must be rejected")
	}
	if err := MovingAverageInto(make([]float64, 3), x, 0); err == nil {
		t.Fatal("zero window must be rejected")
	}
	if err := MovingAverageInto(nil, nil, 3); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverageComplex(t *testing.T) {
	x := []complex128{complex(0, 6), complex(3, 0), complex(6, 6)}
	got, err := MovingAverageComplex(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !complexApproxEqual(got[1], complex(3, 4), 1e-9) {
		t.Fatalf("middle sample %v, want (3+4i)", got[1])
	}
}

func TestExponentialSmoother(t *testing.T) {
	if _, err := NewExponentialSmoother(0); err == nil {
		t.Fatal("alpha 0 must be rejected")
	}
	if _, err := NewExponentialSmoother(1.5); err == nil {
		t.Fatal("alpha > 1 must be rejected")
	}
	s, err := NewExponentialSmoother(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Push(10); got != 10 {
		t.Fatalf("first push %g, want direct 10", got)
	}
	if got := s.Push(0); got != 5 {
		t.Fatalf("second push %g, want 5", got)
	}
	if s.Value() != 5 {
		t.Fatalf("value %g, want 5", s.Value())
	}
	s.Reset()
	if got := s.Push(4); got != 4 {
		t.Fatalf("after reset, first push %g, want 4", got)
	}
}

func TestSlidingWindowStats(t *testing.T) {
	w, err := NewSlidingWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	w.Push(1)
	w.Push(2)
	if w.Full() {
		t.Fatal("window should not be full at 2/3")
	}
	w.Push(3)
	if !w.Full() || w.Len() != 3 {
		t.Fatalf("len=%d full=%v, want 3/true", w.Len(), w.Full())
	}
	if !approxEqual(w.Mean(), 2, floatTol) {
		t.Fatalf("mean %g, want 2", w.Mean())
	}
	w.Push(4) // evicts 1 -> {2,3,4}
	if !approxEqual(w.Mean(), 3, floatTol) {
		t.Fatalf("mean after eviction %g, want 3", w.Mean())
	}
	vals := w.Values()
	want := []float64{2, 3, 4}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values %v, want %v", vals, want)
		}
	}
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 || w.Std() != 0 {
		t.Fatal("reset window should be empty with zero stats")
	}
}

func TestSlidingWindowMatchesDirectProperty(t *testing.T) {
	// Streaming mean/variance equal the direct computation over the
	// retained suffix.
	f := func(seed int64, rawCap uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int(rawCap)%20 + 1
		w, err := NewSlidingWindow(capacity)
		if err != nil {
			return false
		}
		var all []float64
		for i := 0; i < 50; i++ {
			v := rng.NormFloat64() * 10
			all = append(all, v)
			w.Push(v)
			lo := len(all) - capacity
			if lo < 0 {
				lo = 0
			}
			suffix := all[lo:]
			if !approxEqual(w.Mean(), Mean(suffix), 1e-6) {
				return false
			}
			if !approxEqual(w.Variance(), Variance(suffix), 1e-6*(1+Variance(suffix))) && len(suffix) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewSlidingWindowError(t *testing.T) {
	if _, err := NewSlidingWindow(0); err == nil {
		t.Fatal("zero capacity must be rejected")
	}
}
