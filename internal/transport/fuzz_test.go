package transport

import (
	"bytes"
	"math"
	"testing"
)

// frameBytes encodes f into a fresh byte slice.
func frameBytes(tb testing.TB, f Frame) []byte {
	tb.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(f); err != nil {
		tb.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame drives the frame decoder — in strict and resync mode,
// pinned and unpinned — with arbitrary byte streams and checks its
// structural invariants: no panics, every decoded frame has a plausible
// bin count consistent with the pin, the decoder never fabricates more
// payload than the input held (its allocations are bounded by the
// input), and every accepted frame survives an encode/decode round
// trip bit-exactly.
func FuzzDecodeFrame(f *testing.F) {
	valid := frameBytes(f, Frame{Seq: 7, TimestampMicros: 12345, Bins: []complex128{1 + 2i, complex(-0.5, 0.25), 0, complex(3e4, -3e4)}})
	f.Add(valid, uint8(0))
	f.Add(valid[:len(valid)-3], uint8(1))                       // truncated tail
	f.Add(append([]byte{0xde, 0xad, 0xbe}, valid...), uint8(1)) // garbage prefix, resync recovers
	f.Add(append(append([]byte{}, valid...), valid...), uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xb1, 0x1c, 0x01, 0x00}, uint8(1)) // magic+version, then truncation
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		if len(data) > 1<<20 {
			return // decode cost is linear in the input; keep iterations fast
		}
		dec := NewDecoder(bytes.NewReader(data))
		resync := mode&1 != 0
		if resync {
			dec.EnableResync()
		}
		const pinned = 4 // matches the seed frame's bin count
		if mode&2 != 0 {
			dec.SetExpectedBins(pinned)
		}
		var consumed int
		for {
			fr, err := dec.Decode()
			if err != nil {
				break // EOF, truncation, or (strict mode) corruption
			}
			n := len(fr.Bins)
			if n < 1 || n > MaxBins {
				t.Fatalf("decoded frame with %d bins, want 1..%d", n, MaxBins)
			}
			if mode&2 != 0 && n != pinned {
				t.Fatalf("pinned decoder produced %d bins, want %d", n, pinned)
			}
			// A CRC-valid frame can only come from bytes actually present
			// in the input, so total decoded wire size is bounded by it.
			consumed += headerSize + n*8 + 4
			if consumed > len(data) {
				t.Fatalf("decoded %d wire bytes from a %d-byte input", consumed, len(data))
			}
			// Payloads are float32 on the wire, so a decoded frame
			// re-encodes bit-exactly.
			redec := NewDecoder(bytes.NewReader(frameBytes(t, fr)))
			back, err := redec.Decode()
			if err != nil {
				t.Fatalf("re-decoding an accepted frame: %v", err)
			}
			if back.Seq != fr.Seq || back.TimestampMicros != fr.TimestampMicros || len(back.Bins) != n {
				t.Fatalf("round trip changed the frame: %+v != %+v", back, fr)
			}
			for i := range fr.Bins {
				a, b := fr.Bins[i], back.Bins[i]
				same := func(x, y float64) bool {
					return math.Float64bits(x) == math.Float64bits(y)
				}
				if !same(real(a), real(b)) || !same(imag(a), imag(b)) {
					t.Fatalf("bin %d changed in round trip: %v != %v", i, a, b)
				}
			}
		}
		if !resync {
			return
		}
		// Resync accounting never exceeds the input either.
		skippedFrames, skippedBytes := dec.Resyncs()
		if skippedBytes > uint64(len(data)) {
			t.Fatalf("resync skipped %d bytes of a %d-byte input", skippedBytes, len(data))
		}
		if skippedFrames > uint64(len(data)) {
			t.Fatalf("resync skipped %d frames in a %d-byte input", skippedFrames, len(data))
		}
	})
}

// FuzzDecodeHello checks the hello decoder: no panics, anything it
// accepts is plausible (finite positive rates, in-range bin count), and
// accepted hellos survive an encode/decode round trip.
func FuzzDecodeHello(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeHello(&buf, StreamHello{FrameRate: 25, BinSpacing: 0.0107, NumBins: 40}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	corrupt := append([]byte{}, valid...)
	corrupt[5] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !(h.FrameRate > 0) || math.IsInf(h.FrameRate, 0) {
			t.Fatalf("accepted non-finite frame rate %v", h.FrameRate)
		}
		if !(h.BinSpacing > 0) || math.IsInf(h.BinSpacing, 0) {
			t.Fatalf("accepted non-finite bin spacing %v", h.BinSpacing)
		}
		if h.NumBins < 1 || h.NumBins > MaxBins {
			t.Fatalf("accepted bin count %d, want 1..%d", h.NumBins, MaxBins)
		}
		var out bytes.Buffer
		if err := EncodeHello(&out, h); err != nil {
			t.Fatalf("re-encoding an accepted hello: %v", err)
		}
		back, err := DecodeHello(&out)
		if err != nil {
			t.Fatalf("re-decoding an accepted hello: %v", err)
		}
		if back != h {
			t.Fatalf("round trip changed the hello: %+v != %+v", back, h)
		}
	})
}
