package transport

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
)

// frameBytes encodes f into a fresh byte slice.
func frameBytes(tb testing.TB, f Frame) []byte {
	tb.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(f); err != nil {
		tb.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame drives the frame decoder — in strict and resync mode,
// pinned and unpinned — with arbitrary byte streams and checks its
// structural invariants: no panics, every decoded frame has a plausible
// bin count consistent with the pin, the decoder never fabricates more
// payload than the input held (its allocations are bounded by the
// input), and every accepted frame survives an encode/decode round
// trip bit-exactly.
func FuzzDecodeFrame(f *testing.F) {
	valid := frameBytes(f, Frame{Seq: 7, TimestampMicros: 12345, Bins: []complex128{1 + 2i, complex(-0.5, 0.25), 0, complex(3e4, -3e4)}})
	f.Add(valid, uint8(0))
	f.Add(valid[:len(valid)-3], uint8(1))                       // truncated tail
	f.Add(append([]byte{0xde, 0xad, 0xbe}, valid...), uint8(1)) // garbage prefix, resync recovers
	f.Add(append(append([]byte{}, valid...), valid...), uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xb1, 0x1c, 0x01, 0x00}, uint8(1)) // magic+version, then truncation
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		if len(data) > 1<<20 {
			return // decode cost is linear in the input; keep iterations fast
		}
		dec := NewDecoder(bytes.NewReader(data))
		resync := mode&1 != 0
		if resync {
			dec.EnableResync()
		}
		const pinned = 4 // matches the seed frame's bin count
		if mode&2 != 0 {
			dec.SetExpectedBins(pinned)
		}
		var consumed int
		for {
			fr, err := dec.Decode()
			if err != nil {
				break // EOF, truncation, or (strict mode) corruption
			}
			n := len(fr.Bins)
			if n < 1 || n > MaxBins {
				t.Fatalf("decoded frame with %d bins, want 1..%d", n, MaxBins)
			}
			if mode&2 != 0 && n != pinned {
				t.Fatalf("pinned decoder produced %d bins, want %d", n, pinned)
			}
			// A CRC-valid frame can only come from bytes actually present
			// in the input, so total decoded wire size is bounded by it.
			consumed += headerSize + n*8 + 4
			if consumed > len(data) {
				t.Fatalf("decoded %d wire bytes from a %d-byte input", consumed, len(data))
			}
			// Payloads are float32 on the wire, so a decoded frame
			// re-encodes bit-exactly.
			redec := NewDecoder(bytes.NewReader(frameBytes(t, fr)))
			back, err := redec.Decode()
			if err != nil {
				t.Fatalf("re-decoding an accepted frame: %v", err)
			}
			if back.Seq != fr.Seq || back.TimestampMicros != fr.TimestampMicros || len(back.Bins) != n {
				t.Fatalf("round trip changed the frame: %+v != %+v", back, fr)
			}
			for i := range fr.Bins {
				a, b := fr.Bins[i], back.Bins[i]
				same := func(x, y float64) bool {
					return math.Float64bits(x) == math.Float64bits(y)
				}
				if !same(real(a), real(b)) || !same(imag(a), imag(b)) {
					t.Fatalf("bin %d changed in round trip: %v != %v", i, a, b)
				}
			}
		}
		if !resync {
			return
		}
		// Resync accounting never exceeds the input either.
		skippedFrames, skippedBytes := dec.Resyncs()
		if skippedBytes > uint64(len(data)) {
			t.Fatalf("resync skipped %d bytes of a %d-byte input", skippedBytes, len(data))
		}
		if skippedFrames > uint64(len(data)) {
			t.Fatalf("resync skipped %d frames in a %d-byte input", skippedFrames, len(data))
		}
	})
}

// FuzzDecodeHello checks the hello decoder: no panics, anything it
// accepts is plausible (finite positive rates, in-range bin count), and
// accepted hellos survive an encode/decode round trip.
func FuzzDecodeHello(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeHello(&buf, StreamHello{FrameRate: 25, BinSpacing: 0.0107, NumBins: 40}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	corrupt := append([]byte{}, valid...)
	corrupt[5] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !(h.FrameRate > 0) || math.IsInf(h.FrameRate, 0) {
			t.Fatalf("accepted non-finite frame rate %v", h.FrameRate)
		}
		if !(h.BinSpacing > 0) || math.IsInf(h.BinSpacing, 0) {
			t.Fatalf("accepted non-finite bin spacing %v", h.BinSpacing)
		}
		if h.NumBins < 1 || h.NumBins > MaxBins {
			t.Fatalf("accepted bin count %d, want 1..%d", h.NumBins, MaxBins)
		}
		var out bytes.Buffer
		if err := EncodeHello(&out, h); err != nil {
			t.Fatalf("re-encoding an accepted hello: %v", err)
		}
		back, err := DecodeHello(&out)
		if err != nil {
			t.Fatalf("re-decoding an accepted hello: %v", err)
		}
		if back != h {
			t.Fatalf("round trip changed the hello: %+v != %+v", back, h)
		}
	})
}

// FuzzCaptureReader drives the capture reader with arbitrary bytes and
// checks the recovery contract's structural invariants: no panics, no
// unbounded allocation (every recovered frame is CRC-framed data that
// was physically present in the input, so the recovered wire size is
// bounded by the input size), geometry always plausible, and the frame
// count stable under re-reads and seeks.
func FuzzCaptureReader(f *testing.F) {
	whole := writeTestCapture(f, testHello, 5)
	f.Add(whole)
	f.Add(whole[:len(whole)-11])        // torn footer
	f.Add(whole[:captureHeaderSize+50]) // torn mid-frame
	f.Add(whole[:captureHeaderSize])    // header only
	f.Add(whole[:9])                    // torn mid-header
	corrupt := append([]byte{}, whole...)
	corrupt[captureHeaderSize+30] ^= 0xff // frame damage under a valid footer
	f.Add(corrupt)
	var v0 bytes.Buffer
	if err := EncodeHello(&v0, testHello); err != nil {
		f.Fatal(err)
	}
	f.Add(append(v0.Bytes(), frameBytes(f, testFrame(0, int(testHello.NumBins)))...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		cr, err := NewCaptureReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		h := cr.Header()
		if !plausibleHello(h.Hello) {
			t.Fatalf("accepted implausible geometry %+v", h.Hello)
		}
		if wire := cr.NumFrames() * frameWireSize(int(h.Hello.NumBins)); wire > len(data) {
			t.Fatalf("index claims %d wire bytes of frames in a %d-byte input", wire, len(data))
		}
		read := 0
		for {
			fr, err := cr.Next()
			if err != nil {
				// A damaged footer can index bytes that do not decode; that
				// must surface as the typed error, never as a panic or a
				// fabricated frame.
				if err != io.EOF && !errors.Is(err, ErrTruncatedCapture) {
					t.Fatalf("Next: untyped failure %v", err)
				}
				break
			}
			if len(fr.Bins) != int(h.Hello.NumBins) {
				t.Fatalf("frame %d has %d bins, header pins %d", read, len(fr.Bins), h.Hello.NumBins)
			}
			read++
			if read > cr.NumFrames() {
				t.Fatalf("read %d frames from a %d-frame index", read, cr.NumFrames())
			}
		}
		// Re-seeking to 0 reproduces the first frame byte-for-byte (the
		// index is stable, and indexed reads re-validate the CRC).
		if read > 0 {
			if err := cr.Seek(0); err != nil {
				t.Fatal(err)
			}
			if _, err := cr.Next(); err != nil {
				t.Fatalf("re-read of a frame that decoded once: %v", err)
			}
		}
	})
}

// FuzzCaptureRoundTrip is the write→read property fuzz: for arbitrary
// geometry, frame count, contents, and cut point, a capture written by
// CaptureWriter reads back exactly — and its every-byte-truncation
// behaviour matches the spec (intact prefix + ErrTruncatedCapture).
func FuzzCaptureRoundTrip(f *testing.F) {
	f.Add(uint8(5), uint8(8), int64(1), uint32(1<<30))
	f.Add(uint8(1), uint8(1), int64(2), uint32(0))
	f.Add(uint8(40), uint8(3), int64(3), uint32(200))
	f.Fuzz(func(t *testing.T, nFrames, nBins uint8, seed int64, cut uint32) {
		n := int(nFrames)%48 + 1
		bins := int(nBins)%24 + 1
		hello := StreamHello{FrameRate: 25, BinSpacing: 0.0107, NumBins: uint32(bins)}
		rng := rand.New(rand.NewSource(seed))
		frames := make([]Frame, n)
		for k := range frames {
			frames[k] = Frame{Seq: rng.Uint64(), TimestampMicros: rng.Uint64()}
			frames[k].Bins = make([]complex128, bins)
			for i := range frames[k].Bins {
				// float32-exact values so the read-back comparison is ==.
				frames[k].Bins[i] = complex(float64(float32(rng.NormFloat64())), float64(float32(rng.NormFloat64())))
			}
		}
		var buf bytes.Buffer
		cw, err := NewCaptureWriter(&buf, hello, rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		cw.SetCheckpointEvery(int(seed)%5 + 1)
		for _, fr := range frames {
			if err := cw.WriteFrame(fr); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()

		verify := func(cr *CaptureReader, want int) {
			t.Helper()
			if cr.NumFrames() != want {
				t.Fatalf("NumFrames = %d, want %d", cr.NumFrames(), want)
			}
			for k := 0; k < want; k++ {
				fr, err := cr.Next()
				if err != nil {
					t.Fatalf("frame %d: %v", k, err)
				}
				if fr.Seq != frames[k].Seq || fr.TimestampMicros != frames[k].TimestampMicros {
					t.Fatalf("frame %d header mismatch", k)
				}
				for i := range fr.Bins {
					if fr.Bins[i] != frames[k].Bins[i] {
						t.Fatalf("frame %d bin %d: %v != %v", k, i, fr.Bins[i], frames[k].Bins[i])
					}
				}
			}
		}

		cr, err := NewCaptureReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("whole capture: %v", err)
		}
		if terr := cr.Truncated(); terr != nil {
			t.Fatalf("whole capture truncated: %v", terr)
		}
		verify(cr, n)

		at := int(cut) % len(data)
		cr, err = NewCaptureReader(bytes.NewReader(data[:at]))
		if at < captureHeaderSize {
			if err == nil || !errors.Is(err, ErrTruncatedCapture) {
				t.Fatalf("cut %d: open = %v", at, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("cut %d: %v", at, err)
		}
		want := (at - captureHeaderSize) / frameWireSize(bins)
		if want > n {
			want = n
		}
		if terr := cr.Truncated(); !errors.Is(terr, ErrTruncatedCapture) {
			t.Fatalf("cut %d: Truncated = %v", at, terr)
		}
		verify(cr, want)
	})
}
