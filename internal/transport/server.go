package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"blinkradar/internal/obs"
	"blinkradar/internal/rf"
)

// FrameSource produces radar frames at the radio's frame rate.
// NextFrame blocks until the next frame is available and returns the
// range profile (which the server copies before reuse is allowed), or
// an error to terminate the stream.
type FrameSource interface {
	NextFrame() ([]complex128, error)
	// Hello describes the stream geometry.
	Hello() StreamHello
}

// MatrixSource replays a recorded frame matrix, optionally pacing to
// real time and looping forever.
type MatrixSource struct {
	m    *rf.FrameMatrix
	next int
	pace bool
	loop bool

	mu      sync.Mutex
	ticker  *time.Ticker
	started bool
}

// NewMatrixSource wraps a frame matrix. With pace true, NextFrame waits
// one frame period between frames; with loop true, the capture repeats
// indefinitely.
func NewMatrixSource(m *rf.FrameMatrix, pace, loop bool) *MatrixSource {
	s := &MatrixSource{m: m, pace: pace, loop: loop}
	if pace {
		s.ticker = time.NewTicker(time.Duration(float64(time.Second) / m.FrameRate))
	}
	return s
}

// SetSpeed re-paces the source at speed times real time. The contract
// is strict: the source must be paced, speed must be positive, and
// serving must not have started (re-pacing would race the frame loop),
// otherwise SetSpeed returns an error and leaves the pacing unchanged.
func (s *MatrixSource) SetSpeed(speed float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ticker == nil {
		return errors.New("transport: SetSpeed on an unpaced source")
	}
	if speed <= 0 {
		return fmt.Errorf("transport: speed must be positive, got %g", speed)
	}
	if s.started {
		return errors.New("transport: SetSpeed after serving started")
	}
	s.ticker.Stop()
	s.ticker = time.NewTicker(time.Duration(float64(time.Second) / (s.m.FrameRate * speed)))
	return nil
}

// Hello implements FrameSource.
func (s *MatrixSource) Hello() StreamHello {
	return StreamHello{
		FrameRate:  s.m.FrameRate,
		BinSpacing: s.m.BinSpacing,
		NumBins:    uint32(s.m.NumBins()),
	}
}

// NextFrame implements FrameSource.
func (s *MatrixSource) NextFrame() ([]complex128, error) {
	s.mu.Lock()
	s.started = true
	ticker := s.ticker
	s.mu.Unlock()
	if s.next >= s.m.NumFrames() {
		if !s.loop {
			return nil, fmt.Errorf("transport: capture exhausted after %d frames", s.next)
		}
		s.next = 0
	}
	if ticker != nil {
		<-ticker.C
	}
	frame := s.m.Data[s.next]
	s.next++
	return frame, nil
}

// Close releases the pacing ticker.
func (s *MatrixSource) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// Server broadcasts a frame source to every connected TCP client — the
// radar daemon half of the deployment. Slow clients are disconnected
// rather than allowed to stall the radio.
type Server struct {
	src    FrameSource
	logger *log.Logger
	// minClients gates the pump: frames are not consumed from the
	// source until this many subscribers are connected. Useful for
	// finite replay sources that would otherwise drain before the
	// first client arrives.
	minClients int
	startSeq   uint64
	// hook is the frame middleware (fault injection, filtering); see
	// SetFrameHook.
	hook func(Frame) []Frame
	// writeTimeout bounds each per-client frame write (0 = none).
	writeTimeout time.Duration
	// slowPolicy selects what happens to a client whose queue is full.
	slowPolicy SlowPolicy

	mu      sync.Mutex
	clients map[*client]struct{}
	seq     uint64
	epoch   time.Time
	// conns joins every per-client write loop so Serve does not return
	// while goroutines it spawned still run.
	conns sync.WaitGroup

	// Metrics (nil-safe no-ops until SetRegistry attaches a registry).
	mFramesPumped   *obs.Counter
	mSlowDrops      *obs.Counter
	mSlowFrameDrops *obs.Counter
	mBytesWritten   *obs.Counter
	mConnects       *obs.Counter
	gClients        *obs.Gauge
	gQueueDepth     *obs.Gauge
}

// SlowPolicy selects how the server treats a client whose per-client
// queue is full when a frame is broadcast.
type SlowPolicy int

const (
	// DisconnectSlowClients cuts the client loose (the historical
	// behaviour): a consumer that cannot keep up with the radio is
	// better served by a clean reconnect than an ever-growing backlog.
	DisconnectSlowClients SlowPolicy = iota
	// DropFramesForSlowClients skips the frame for that client and
	// keeps the connection. The client observes the loss as a sequence
	// gap — the graceful-degradation choice for consumers that handle
	// gaps (see core.Detector.NoteGap) and for stalls that are
	// transient rather than systemic.
	DropFramesForSlowClients
)

type client struct {
	conn net.Conn
	ch   chan Frame
}

// clientQueue bounds the per-client backlog (4 s at the default rate).
const clientQueue = 100

// NewServer creates a server over the given source. A nil logger
// discards diagnostics.
func NewServer(src FrameSource, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Server{
		src:     src,
		logger:  logger,
		clients: make(map[*client]struct{}),
		epoch:   time.Now(),
	}
}

// SetRegistry attaches an observability registry. Call before Serve.
// Exported metrics:
//
//	transport_server_frames_pumped_total    frames read from the source
//	transport_server_slow_client_drops_total clients cut for falling behind
//	transport_server_slow_frame_drops_total frames skipped for slow clients
//	                                        (DropFramesForSlowClients)
//	transport_server_bytes_written_total    wire bytes sent to clients
//	transport_server_connects_total         client connections accepted
//	transport_server_clients                current subscriber count
//	transport_server_max_queue_depth        deepest per-client backlog at
//	                                        the last broadcast
func (s *Server) SetRegistry(r *obs.Registry) {
	s.mFramesPumped = r.Counter("transport_server_frames_pumped_total")
	s.mSlowDrops = r.Counter("transport_server_slow_client_drops_total")
	s.mSlowFrameDrops = r.Counter("transport_server_slow_frame_drops_total")
	s.mBytesWritten = r.Counter("transport_server_bytes_written_total")
	s.mConnects = r.Counter("transport_server_connects_total")
	s.gClients = r.Gauge("transport_server_clients")
	s.gQueueDepth = r.Gauge("transport_server_max_queue_depth")
}

// SetFrameHook installs a per-frame middleware invoked on the pump
// goroutine after sequence assignment and before broadcast. The hook
// may return the frame unchanged, mutate it, drop it (empty return) or
// emit several frames (duplication, reordering) — the chaos package's
// injectors compose through exactly this surface. Dropped frames still
// consume a sequence number, so downstream gap accounting sees them as
// lost. Call before Serve; a nil hook passes frames through.
func (s *Server) SetFrameHook(hook func(Frame) []Frame) { s.hook = hook }

// SetWriteTimeout bounds each per-client frame write. A peer that
// stops draining its socket for longer than d fails the write and is
// dropped, instead of pinning the write loop (and, at shutdown, the
// Serve join) indefinitely. Zero disables the deadline. Call before
// Serve.
func (s *Server) SetWriteTimeout(d time.Duration) { s.writeTimeout = d }

// SetSlowPolicy selects the treatment of clients whose queue is full
// at broadcast time. Call before Serve.
func (s *Server) SetSlowPolicy(p SlowPolicy) { s.slowPolicy = p }

// SetStartSeq makes the stream's sequence numbers begin at n instead of
// zero — a daemon that persists its frame counter across restarts uses
// this so downstream gap accounting sees the outage as missed frames
// rather than a new epoch. Call before Serve.
func (s *Server) SetStartSeq(n uint64) { s.startSeq = n }

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// countingWriter forwards to an io.Writer while accumulating the byte
// total in a (possibly nil) counter.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(uint64(n))
	return n, err
}

// Serve accepts clients on ln and pumps frames until the context is
// cancelled or the source fails. It always closes the listener, and it
// joins every goroutine it spawned — the context watcher, the accept
// loop and all per-client write loops — before returning, so a
// restarting daemon never strands writers on dead connections.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		select {
		case <-ctx.Done():
			ln.Close()
		case <-done:
		}
	}()
	aux.Add(1)
	go func() {
		defer aux.Done()
		s.acceptLoop(ln)
	}()
	err := s.pump(ctx)
	close(done)
	ln.Close()
	aux.Wait()
	// The accept loop has exited, so no new client can register. Close
	// any straggler accepted after the pump's own closeAll, then join
	// the write loops.
	s.closeAll()
	s.conns.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := &client{conn: conn, ch: make(chan Frame, clientQueue)}
		s.mu.Lock()
		s.clients[c] = struct{}{}
		n := len(s.clients)
		s.mu.Unlock()
		s.mConnects.Inc()
		s.gClients.Set(float64(n))
		s.logger.Printf("client connected: %s", conn.RemoteAddr())
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.writeLoop(c)
		}()
	}
}

func (s *Server) writeLoop(c *client) {
	defer s.drop(c)
	w := countingWriter{w: c.conn, c: s.mBytesWritten}
	if err := EncodeHello(w, s.src.Hello()); err != nil {
		s.logger.Printf("hello to %s failed: %v", c.conn.RemoteAddr(), err)
		return
	}
	enc := NewEncoder(w)
	for f := range c.ch {
		if s.writeTimeout > 0 {
			_ = c.conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		if err := enc.Encode(f); err != nil {
			s.logger.Printf("send to %s failed: %v", c.conn.RemoteAddr(), err)
			return
		}
		// Flush when the queue drains so frames are not held back.
		if len(c.ch) == 0 {
			if err := enc.Flush(); err != nil {
				return
			}
		}
	}
}

func (s *Server) drop(c *client) {
	s.mu.Lock()
	if _, ok := s.clients[c]; ok {
		delete(s.clients, c)
		close(c.ch)
	}
	n := len(s.clients)
	s.mu.Unlock()
	s.gClients.Set(float64(n))
	c.conn.Close()
}

// SetMinClients makes the pump wait for n subscribers before reading
// the source. Call before Serve.
func (s *Server) SetMinClients(n int) { s.minClients = n }

// pump reads frames from the source and fans them out.
func (s *Server) pump(ctx context.Context) error {
	for s.minClients > 0 && s.NumClients() < s.minClients {
		select {
		case <-ctx.Done():
			s.closeAll()
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	for {
		select {
		case <-ctx.Done():
			s.closeAll()
			return ctx.Err()
		default:
		}
		bins, err := s.src.NextFrame()
		if err != nil {
			s.closeAll()
			return fmt.Errorf("transport: source: %w", err)
		}
		f := Frame{
			Seq:             s.startSeq + s.seq,
			TimestampMicros: uint64(time.Since(s.epoch).Microseconds()),
			Bins:            append([]complex128(nil), bins...),
		}
		s.seq++
		s.mFramesPumped.Inc()
		if s.hook == nil {
			s.broadcast(f)
			continue
		}
		for _, out := range s.hook(f) {
			s.broadcast(out)
		}
	}
}

func (s *Server) broadcast(f Frame) {
	s.mu.Lock()
	var stale []*client
	maxDepth := 0
	for c := range s.clients {
		select {
		case c.ch <- f:
			if d := len(c.ch); d > maxDepth {
				maxDepth = d
			}
		default:
			if s.slowPolicy == DropFramesForSlowClients {
				// Skip this frame for this client; the loss surfaces
				// downstream as a sequence gap.
				s.mSlowFrameDrops.Inc()
				continue
			}
			// Client cannot keep up with the radio; cut it loose.
			stale = append(stale, c)
		}
	}
	for _, c := range stale {
		delete(s.clients, c)
		close(c.ch)
		s.mSlowDrops.Inc()
		s.logger.Printf("dropping slow client %s", c.conn.RemoteAddr())
	}
	n := len(s.clients)
	s.mu.Unlock()
	s.gQueueDepth.Set(float64(maxDepth))
	if len(stale) > 0 {
		s.gClients.Set(float64(n))
	}
}

// drainTimeout bounds how long a disconnecting client's write loop may
// keep flushing queued frames. Without it a stalled peer would pin
// Serve's shutdown join indefinitely.
const drainTimeout = 2 * time.Second

// closeAll disconnects every client: the queue channel is closed so
// the write loop drains the frames the client is still owed and exits,
// and a write deadline bounds that drain so a stalled peer cannot pin
// Serve's shutdown join.
func (s *Server) closeAll() {
	s.mu.Lock()
	for c := range s.clients {
		delete(s.clients, c)
		close(c.ch)
		_ = c.conn.SetWriteDeadline(time.Now().Add(drainTimeout))
	}
	s.mu.Unlock()
	s.gClients.Set(0)
}

// NumClients reports the current subscriber count.
func (s *Server) NumClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}
