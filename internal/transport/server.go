package transport

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"blinkradar/internal/rf"
)

// FrameSource produces radar frames at the radio's frame rate.
// NextFrame blocks until the next frame is available and returns the
// range profile (which the server copies before reuse is allowed), or
// an error to terminate the stream.
type FrameSource interface {
	NextFrame() ([]complex128, error)
	// Hello describes the stream geometry.
	Hello() StreamHello
}

// MatrixSource replays a recorded frame matrix, optionally pacing to
// real time and looping forever.
type MatrixSource struct {
	m      *rf.FrameMatrix
	next   int
	pace   bool
	loop   bool
	ticker *time.Ticker
}

// NewMatrixSource wraps a frame matrix. With pace true, NextFrame waits
// one frame period between frames; with loop true, the capture repeats
// indefinitely.
func NewMatrixSource(m *rf.FrameMatrix, pace, loop bool) *MatrixSource {
	s := &MatrixSource{m: m, pace: pace, loop: loop}
	if pace {
		s.ticker = time.NewTicker(time.Duration(float64(time.Second) / m.FrameRate))
	}
	return s
}

// SetSpeed re-paces the source at speed times real time (only
// meaningful for a paced source; call before serving).
func (s *MatrixSource) SetSpeed(speed float64) {
	if s.ticker == nil || speed <= 0 {
		return
	}
	s.ticker.Stop()
	s.ticker = time.NewTicker(time.Duration(float64(time.Second) / (s.m.FrameRate * speed)))
}

// Hello implements FrameSource.
func (s *MatrixSource) Hello() StreamHello {
	return StreamHello{
		FrameRate:  s.m.FrameRate,
		BinSpacing: s.m.BinSpacing,
		NumBins:    uint32(s.m.NumBins()),
	}
}

// NextFrame implements FrameSource.
func (s *MatrixSource) NextFrame() ([]complex128, error) {
	if s.next >= s.m.NumFrames() {
		if !s.loop {
			return nil, fmt.Errorf("transport: capture exhausted after %d frames", s.next)
		}
		s.next = 0
	}
	if s.ticker != nil {
		<-s.ticker.C
	}
	frame := s.m.Data[s.next]
	s.next++
	return frame, nil
}

// Close releases the pacing ticker.
func (s *MatrixSource) Close() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// Server broadcasts a frame source to every connected TCP client — the
// radar daemon half of the deployment. Slow clients are disconnected
// rather than allowed to stall the radio.
type Server struct {
	src    FrameSource
	logger *log.Logger
	// minClients gates the pump: frames are not consumed from the
	// source until this many subscribers are connected. Useful for
	// finite replay sources that would otherwise drain before the
	// first client arrives.
	minClients int

	mu      sync.Mutex
	clients map[*client]struct{}
	seq     uint64
	epoch   time.Time
}

type client struct {
	conn net.Conn
	ch   chan Frame
}

// clientQueue bounds the per-client backlog (4 s at the default rate).
const clientQueue = 100

// NewServer creates a server over the given source. A nil logger
// discards diagnostics.
func NewServer(src FrameSource, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Server{
		src:     src,
		logger:  logger,
		clients: make(map[*client]struct{}),
		epoch:   time.Now(),
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Serve accepts clients on ln and pumps frames until the context is
// cancelled or the source fails. It always closes the listener.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	go s.acceptLoop(ln)
	return s.pump(ctx)
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := &client{conn: conn, ch: make(chan Frame, clientQueue)}
		s.mu.Lock()
		s.clients[c] = struct{}{}
		s.mu.Unlock()
		s.logger.Printf("client connected: %s", conn.RemoteAddr())
		go s.writeLoop(c)
	}
}

func (s *Server) writeLoop(c *client) {
	defer s.drop(c)
	if err := EncodeHello(c.conn, s.src.Hello()); err != nil {
		s.logger.Printf("hello to %s failed: %v", c.conn.RemoteAddr(), err)
		return
	}
	enc := NewEncoder(c.conn)
	for f := range c.ch {
		if err := enc.Encode(f); err != nil {
			s.logger.Printf("send to %s failed: %v", c.conn.RemoteAddr(), err)
			return
		}
		// Flush when the queue drains so frames are not held back.
		if len(c.ch) == 0 {
			if err := enc.Flush(); err != nil {
				return
			}
		}
	}
}

func (s *Server) drop(c *client) {
	s.mu.Lock()
	if _, ok := s.clients[c]; ok {
		delete(s.clients, c)
		close(c.ch)
	}
	s.mu.Unlock()
	c.conn.Close()
}

// SetMinClients makes the pump wait for n subscribers before reading
// the source. Call before Serve.
func (s *Server) SetMinClients(n int) { s.minClients = n }

// pump reads frames from the source and fans them out.
func (s *Server) pump(ctx context.Context) error {
	for s.minClients > 0 && s.NumClients() < s.minClients {
		select {
		case <-ctx.Done():
			s.closeAll()
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	for {
		select {
		case <-ctx.Done():
			s.closeAll()
			return ctx.Err()
		default:
		}
		bins, err := s.src.NextFrame()
		if err != nil {
			s.closeAll()
			return fmt.Errorf("transport: source: %w", err)
		}
		f := Frame{
			Seq:             s.seq,
			TimestampMicros: uint64(time.Since(s.epoch).Microseconds()),
			Bins:            append([]complex128(nil), bins...),
		}
		s.seq++
		s.broadcast(f)
	}
}

func (s *Server) broadcast(f Frame) {
	s.mu.Lock()
	var stale []*client
	for c := range s.clients {
		select {
		case c.ch <- f:
		default:
			// Client cannot keep up with the radio; cut it loose.
			stale = append(stale, c)
		}
	}
	for _, c := range stale {
		delete(s.clients, c)
		close(c.ch)
		s.logger.Printf("dropping slow client %s", c.conn.RemoteAddr())
	}
	s.mu.Unlock()
}

func (s *Server) closeAll() {
	s.mu.Lock()
	for c := range s.clients {
		delete(s.clients, c)
		close(c.ch)
	}
	s.mu.Unlock()
}

// NumClients reports the current subscriber count.
func (s *Server) NumClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}
