package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"blinkradar/internal/obs"
	"blinkradar/internal/rf"
)

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := StreamHello{FrameRate: 25, BinSpacing: 0.0107, NumBins: 150}
	if err := EncodeHello(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hello round trip %+v != %+v", got, want)
	}
}

func TestHelloValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeHello(&buf, StreamHello{}); err == nil {
		t.Fatal("zero hello must be rejected")
	}
	// Corrupt a valid hello.
	buf.Reset()
	if err := EncodeHello(&buf, StreamHello{FrameRate: 25, BinSpacing: 0.01, NumBins: 10}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5] ^= 0xFF
	if _, err := DecodeHello(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted hello must fail the CRC")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed int64, rawBins uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawBins)%64 + 1
		frame := Frame{
			Seq:             rng.Uint64(),
			TimestampMicros: rng.Uint64(),
			Bins:            make([]complex128, n),
		}
		for i := range frame.Bins {
			// float32 payload: use values that survive the narrowing.
			frame.Bins[i] = complex(float64(float32(rng.NormFloat64())), float64(float32(rng.NormFloat64())))
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Encode(frame); err != nil {
			return false
		}
		if err := enc.Flush(); err != nil {
			return false
		}
		got, err := NewDecoder(&buf).Decode()
		if err != nil {
			return false
		}
		if got.Seq != frame.Seq || got.TimestampMicros != frame.TimestampMicros || len(got.Bins) != n {
			return false
		}
		for i := range got.Bins {
			if got.Bins[i] != frame.Bins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCRCDetection(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(Frame{Seq: 1, Bins: []complex128{1 + 2i, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[headerSize+2] ^= 0x01 // flip one payload bit
	if _, err := NewDecoder(bytes.NewReader(raw)).Decode(); err == nil {
		t.Fatal("bit flip must fail the CRC")
	}
}

func TestFrameValidation(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if err := enc.Encode(Frame{}); err == nil {
		t.Fatal("empty frame must be rejected")
	}
	// Bad magic.
	raw := make([]byte, headerSize)
	if _, err := NewDecoder(bytes.NewReader(raw)).Decode(); err == nil {
		t.Fatal("zero magic must be rejected")
	}
	// Clean EOF at a packet boundary.
	if _, err := NewDecoder(bytes.NewReader(nil)).Decode(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream error %v, want io.EOF", err)
	}
}

func TestCaptureFileRoundTrip(t *testing.T) {
	m, err := rf.NewFrameMatrix(7, 5, 25, 0.0107)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for k := range m.Data {
		for b := range m.Data[k] {
			m.Data[k][b] = complex(float64(float32(rng.NormFloat64())), float64(float32(rng.NormFloat64())))
		}
	}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFrames() != 7 || got.NumBins() != 5 || got.FrameRate != 25 {
		t.Fatalf("round trip dims %dx%d", got.NumFrames(), got.NumBins())
	}
	for k := range m.Data {
		for b := range m.Data[k] {
			if got.Data[k][b] != m.Data[k][b] {
				t.Fatalf("sample %d/%d differs", k, b)
			}
		}
	}
}

func TestReadCaptureEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeHello(&buf, StreamHello{FrameRate: 25, BinSpacing: 0.01, NumBins: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCapture(&buf); err == nil {
		t.Fatal("frameless capture must be rejected")
	}
}

// testMatrix builds a small capture for server tests.
func testMatrix(t *testing.T, frames int) *rf.FrameMatrix {
	t.Helper()
	m, err := rf.NewFrameMatrix(frames, 8, 25, 0.0107)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m.Data {
		m.Data[k][0] = complex(float64(k), 0)
	}
	return m
}

func TestServerClientStream(t *testing.T) {
	m := testMatrix(t, 50)
	src := NewMatrixSource(m, false, false)
	defer src.Close()
	server := NewServer(src, nil)
	server.SetMinClients(1)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- server.Serve(ctx, ln) }()

	client, err := Dial(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := client.Hello(); got.NumBins != 8 || got.FrameRate != 25 {
		t.Fatalf("hello %+v", got)
	}
	var frames int
	err = client.Run(ctx, func(f Frame) error {
		if f.Seq != uint64(frames) {
			t.Errorf("frame %d has seq %d", frames, f.Seq)
		}
		if f.Bins[0] != complex(float64(frames), 0) {
			t.Errorf("frame %d payload %v", frames, f.Bins[0])
		}
		frames++
		return nil
	})
	// The finite source ends the stream; the client sees a read error
	// or EOF, never a silent hang.
	if err == nil {
		t.Fatal("stream end must surface an error")
	}
	if frames != 50 {
		t.Fatalf("received %d frames, want 50", frames)
	}
	<-done
}

func TestServerMultipleClients(t *testing.T) {
	m := testMatrix(t, 30)
	src := NewMatrixSource(m, false, false)
	defer src.Close()
	server := NewServer(src, nil)
	server.SetMinClients(2)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go server.Serve(ctx, ln)

	counts := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			client, err := Dial(ctx, ln.Addr().String())
			if err != nil {
				counts <- -1
				return
			}
			defer client.Close()
			n := 0
			client.Run(ctx, func(Frame) error { n++; return nil })
			counts <- n
		}()
	}
	for i := 0; i < 2; i++ {
		if n := <-counts; n != 30 {
			t.Fatalf("client received %d frames, want 30", n)
		}
	}
}

func TestClientContextCancel(t *testing.T) {
	m := testMatrix(t, 10)
	// A looping paced source never ends on its own.
	src := NewMatrixSource(m, true, true)
	defer src.Close()
	server := NewServer(src, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serverCtx, serverCancel := context.WithCancel(context.Background())
	defer serverCancel()
	go server.Serve(serverCtx, ln)

	ctx, cancel := context.WithCancel(context.Background())
	client, err := Dial(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	err = client.Run(ctx, func(Frame) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestServeReapsContextWatcher(t *testing.T) {
	// Serve used to leak its context-watcher goroutine whenever the
	// pump exited on a source error before cancellation. Run many
	// short-lived serves against a never-cancelled context: the
	// goroutine count must come back down.
	base := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		src := NewMatrixSource(testMatrix(t, 1), false, false)
		server := NewServer(src, nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := server.Serve(context.Background(), ln); err == nil {
			t.Fatal("serve over a finite source must return the source error")
		}
		src.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d: context watchers leaked",
				base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSetSpeedContract(t *testing.T) {
	m := testMatrix(t, 5)
	// Unpaced sources cannot be re-paced.
	unpaced := NewMatrixSource(m, false, true)
	defer unpaced.Close()
	if err := unpaced.SetSpeed(2); err == nil {
		t.Fatal("SetSpeed on an unpaced source must error")
	}
	// Invalid speeds are rejected.
	paced := NewMatrixSource(m, true, true)
	defer paced.Close()
	if err := paced.SetSpeed(0); err == nil {
		t.Fatal("SetSpeed(0) must error")
	}
	if err := paced.SetSpeed(-1); err == nil {
		t.Fatal("negative speed must error")
	}
	// Before serving it succeeds...
	if err := paced.SetSpeed(100); err != nil {
		t.Fatalf("SetSpeed before serving: %v", err)
	}
	// ...and after the first frame is consumed it is refused.
	if _, err := paced.NextFrame(); err != nil {
		t.Fatal(err)
	}
	if err := paced.SetSpeed(2); err == nil {
		t.Fatal("SetSpeed after serving started must error")
	}
}

func TestServerMetrics(t *testing.T) {
	m := testMatrix(t, 20)
	src := NewMatrixSource(m, false, false)
	defer src.Close()
	server := NewServer(src, nil)
	server.SetMinClients(1)
	reg := obs.NewRegistry()
	server.SetRegistry(reg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- server.Serve(ctx, ln) }()

	client, err := Dial(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	clientReg := obs.NewRegistry()
	client.SetRegistry(clientReg)
	var frames int
	client.Run(ctx, func(Frame) error { frames++; return nil })
	<-done

	if got := reg.Counter("transport_server_frames_pumped_total").Value(); got != 20 {
		t.Errorf("frames pumped = %d, want 20", got)
	}
	if got := reg.Counter("transport_server_connects_total").Value(); got != 1 {
		t.Errorf("connects = %d, want 1", got)
	}
	if got := reg.Counter("transport_server_bytes_written_total").Value(); got == 0 {
		t.Error("bytes written = 0, want > 0")
	}
	if got := clientReg.Counter("transport_client_frames_received_total").Value(); got != uint64(frames) {
		t.Errorf("client frames metric = %d, received %d", got, frames)
	}
	if got := clientReg.Counter("transport_client_seq_gaps_total").Value(); got != 0 {
		t.Errorf("seq gaps = %d on an unbroken stream", got)
	}
}

func TestMatrixSourceExhaustion(t *testing.T) {
	m := testMatrix(t, 3)
	src := NewMatrixSource(m, false, false)
	defer src.Close()
	for i := 0; i < 3; i++ {
		if _, err := src.NextFrame(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := src.NextFrame(); err == nil {
		t.Fatal("exhausted source must error")
	}
	// Looping source wraps instead.
	loop := NewMatrixSource(m, false, true)
	defer loop.Close()
	for i := 0; i < 10; i++ {
		if _, err := loop.NextFrame(); err != nil {
			t.Fatalf("looping frame %d: %v", i, err)
		}
	}
}
