package transport

import (
	"bytes"
	"io"
	"testing"
)

// BenchmarkReplay measures the capture replay hot path — the per-frame
// cost radard and radarfleet pay to serve a recorded stream at 100×
// realtime: Seek to the start of the capture, then decode every frame
// through CaptureReader.Next. Steady state must be allocation-free
// (the reader decodes into persistent geometry-sized scratch), which
// the benchdiff gate pins at 0 allocs/op.
func BenchmarkReplay(b *testing.B) {
	const frames, bins = 1024, 40
	hello := StreamHello{FrameRate: 25, BinSpacing: 0.0107, NumBins: bins}
	var buf bytes.Buffer
	cw, err := NewCaptureWriter(&buf, hello, 0)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < frames; k++ {
		if err := cw.WriteFrame(testFrame(k, bins)); err != nil {
			b.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		b.Fatal(err)
	}
	cr, err := NewCaptureReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	replay := func() {
		if err := cr.Seek(0); err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := cr.Next(); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
		}
	}
	replay() // warm the decode scratch before counting allocations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay()
	}
	b.ReportMetric(float64(frames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}
