package transport

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"blinkradar/internal/obs"
	"blinkradar/internal/rf"
)

// fastBackoff keeps reconnect tests quick.
func fastBackoff() Backoff {
	return Backoff{Initial: 10 * time.Millisecond, Max: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
}

// listenOn binds addr, retrying briefly: rebinding the port a just-dead
// server held can transiently fail.
func listenOn(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReconnectingClientSurvivesServerRestart is the deployment drill:
// kill radard mid-stream, leave the port dead long enough to force
// backoff retries, restart it, and require the client to resume with
// the outage recorded as a sequence gap.
func TestReconnectingClientSurvivesServerRestart(t *testing.T) {
	m := testMatrix(t, 10)
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()

	srcA := NewMatrixSource(m, true, true)
	defer srcA.Close()
	if err := srcA.SetSpeed(20); err != nil { // 500 fps keeps the test fast
		t.Fatal(err)
	}
	serverA := NewServer(srcA, nil)
	ctxA, cancelA := context.WithCancel(context.Background())
	doneA := make(chan error, 1)
	go func() { doneA <- serverA.Serve(ctxA, ln1) }()

	reg := obs.NewRegistry()
	rc := NewReconnectingClient(addr, ReconnectConfig{
		Backoff:     fastBackoff(),
		DialTimeout: time.Second,
		Registry:    reg,
	})

	var mu sync.Mutex
	var seqs []uint64
	frameArrived := make(chan uint64, 1024)
	clientCtx, cancelClient := context.WithCancel(context.Background())
	defer cancelClient()
	runDone := make(chan error, 1)
	go func() {
		runDone <- rc.Run(clientCtx, func(f Frame) error {
			mu.Lock()
			seqs = append(seqs, f.Seq)
			mu.Unlock()
			select {
			case frameArrived <- f.Seq:
			default:
			}
			return nil
		})
	}()

	// Phase 1: receive a handful of frames from server A.
	var lastSeq uint64
	deadline := time.After(10 * time.Second)
	for received := 0; received < 5; {
		select {
		case s := <-frameArrived:
			lastSeq = s
			received++
		case <-deadline:
			t.Fatal("timed out waiting for initial frames")
		}
	}

	// Phase 2: kill the daemon and hold the port down so the client
	// accumulates at least one failed dial (backoff retry).
	cancelA()
	if err := <-doneA; !errors.Is(err, context.Canceled) {
		t.Fatalf("server A exit: %v", err)
	}
	waitFor(t, 10*time.Second, func() bool { return rc.Stats().DialFailures >= 1 })

	// Phase 3: restart the daemon on the same port. The new instance
	// resumes its persisted frame counter well past where the client
	// stopped, so the outage shows up as a forward sequence gap.
	ln2 := listenOn(t, addr)
	srcB := NewMatrixSource(m, true, true)
	defer srcB.Close()
	if err := srcB.SetSpeed(20); err != nil {
		t.Fatal(err)
	}
	serverB := NewServer(srcB, nil)
	serverB.SetStartSeq(lastSeq + 100)
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	doneB := make(chan error, 1)
	go func() { doneB <- serverB.Serve(ctxB, ln2) }()

	// Phase 4: the stream must resume past the restart point.
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs) > 0 && seqs[len(seqs)-1] >= lastSeq+100
	})

	stats := rc.Stats()
	if stats.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", stats.Reconnects)
	}
	if stats.DialFailures < 1 {
		t.Errorf("dial failures = %d, want >= 1 (backoff never engaged)", stats.DialFailures)
	}
	if stats.SeqGaps < 1 || stats.SeqGapFrames < 1 {
		t.Errorf("seq gaps = %d (%d frames), want >= 1", stats.SeqGaps, stats.SeqGapFrames)
	}
	if got := reg.Counter("transport_reconnects_total").Value(); got != stats.Reconnects {
		t.Errorf("metric reconnects = %d, stats = %d", got, stats.Reconnects)
	}
	if got := reg.Counter("transport_client_seq_gap_frames_total").Value(); got != stats.SeqGapFrames {
		t.Errorf("metric gap frames = %d, stats = %d", got, stats.SeqGapFrames)
	}

	// Phase 5: cancellation still wins over reconnection.
	cancelClient()
	select {
	case err := <-runDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop on cancellation")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReconnectingClientHelloChange restarts the daemon with a
// different stream geometry and requires the change callback to fire
// (and to be able to veto the new stream).
func TestReconnectingClientHelloChange(t *testing.T) {
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()

	srcA := NewMatrixSource(testMatrix(t, 5), false, true)
	defer srcA.Close()
	serverA := NewServer(srcA, nil)
	ctxA, cancelA := context.WithCancel(context.Background())
	doneA := make(chan error, 1)
	go func() { doneA <- serverA.Serve(ctxA, ln1) }()

	type change struct{ prev, next StreamHello }
	changes := make(chan change, 1)
	vetoErr := errors.New("geometry rejected")
	rc := NewReconnectingClient(addr, ReconnectConfig{
		Backoff:     fastBackoff(),
		DialTimeout: time.Second,
		OnHelloChange: func(prev, next StreamHello) error {
			changes <- change{prev, next}
			return vetoErr
		},
	})

	got := make(chan uint64, 256)
	runDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		runDone <- rc.Run(ctx, func(f Frame) error {
			select {
			case got <- f.Seq:
			default:
			}
			return nil
		})
	}()

	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no frames from server A")
	}
	cancelA()
	<-doneA

	// Restart with 16 bins instead of 8.
	m2, err2 := rf.NewFrameMatrix(5, 16, 25, 0.0107)
	if err2 != nil {
		t.Fatal(err2)
	}
	srcB := NewMatrixSource(m2, false, true)
	defer srcB.Close()
	serverB := NewServer(srcB, nil)
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	ln2 := listenOn(t, addr)
	go serverB.Serve(ctxB, ln2)

	select {
	case c := <-changes:
		if c.prev.NumBins != 8 || c.next.NumBins != 16 {
			t.Fatalf("change %+v -> %+v", c.prev, c.next)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hello-change callback never fired")
	}
	select {
	case err := <-runDone:
		if !errors.Is(err, vetoErr) {
			t.Fatalf("run returned %v, want the veto error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop after the veto")
	}
}

// TestReconnectingClientGivesUp bounds retries against a dead address.
func TestReconnectingClientGivesUp(t *testing.T) {
	// Grab a port and close it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc := NewReconnectingClient(addr, ReconnectConfig{
		Backoff:                Backoff{Initial: time.Millisecond, Max: 2 * time.Millisecond},
		DialTimeout:            200 * time.Millisecond,
		MaxConsecutiveFailures: 3,
	})
	err = rc.Run(context.Background(), func(Frame) error { return nil })
	if err == nil {
		t.Fatal("run against a dead address must eventually fail")
	}
	if got := rc.Stats().DialFailures; got != 3 {
		t.Fatalf("dial failures = %d, want 3", got)
	}
}

// TestReconnectingClientCallbackErrorStops ensures a consumer error is
// fatal rather than treated as a stream drop.
func TestReconnectingClientCallbackErrorStops(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	src := NewMatrixSource(testMatrix(t, 5), false, true)
	defer src.Close()
	server := NewServer(src, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go server.Serve(ctx, ln)

	sentinel := errors.New("consumer failed")
	rc := NewReconnectingClient(ln.Addr().String(), ReconnectConfig{
		Backoff:     fastBackoff(),
		DialTimeout: time.Second,
	})
	err = rc.Run(context.Background(), func(Frame) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("run returned %v, want the consumer error", err)
	}
	if rc.Stats().Reconnects != 0 {
		t.Fatal("a consumer error must not trigger reconnects")
	}
}

// TestJitterDeterministicSeed is the regression test for
// nondeterministic reconnect schedules: with an injected seeded source
// two clients produce the identical jittered backoff sequence, so chaos
// runs that flap hundreds of sessions can be replayed exactly. Before
// ReconnectConfig.Rand existed, the source was always seeded from the
// wall clock and no two runs agreed.
func TestJitterDeterministicSeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		rc := NewReconnectingClient("127.0.0.1:0", ReconnectConfig{
			Backoff: fastBackoff(),
			Rand:    rand.New(rand.NewSource(seed)),
		})
		out := make([]time.Duration, 0, 16)
		d := rc.cfg.Backoff.Initial
		for i := 0; i < 16; i++ {
			out = append(out, rc.jittered(d))
			d = rc.nextBackoff(d)
		}
		return out
	}

	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical jitter schedule")
	}

	// Nil Rand must keep the entropy-seeded default.
	rc := NewReconnectingClient("127.0.0.1:0", ReconnectConfig{Backoff: fastBackoff()})
	if rc.rng == nil {
		t.Fatal("nil ReconnectConfig.Rand left the client without a jitter source")
	}
}
