// Package transport implements the acquisition link of the real system:
// the impulse radio streams complex range profiles (over SPI to a
// Raspberry Pi, then to the processing laptop). Here frames are framed
// with a compact binary codec and shipped over TCP, so a radar daemon
// (cmd/radard) can feed any number of live detectors (cmd/radarwatch).
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Protocol constants.
const (
	// Magic marks the start of every frame packet.
	Magic = 0xB11C
	// Version is the wire protocol version.
	Version = 1
	// MaxBins bounds the per-frame bin count a decoder will accept,
	// protecting against corrupt or hostile length fields.
	MaxBins = 1 << 16
)

// Frame is one radar frame on the wire.
type Frame struct {
	// Seq is the monotonically increasing frame sequence number.
	Seq uint64
	// TimestampMicros is the capture time in microseconds since the
	// stream epoch.
	TimestampMicros uint64
	// Bins is the complex baseband range profile. Values are carried
	// as float32 pairs: the radio's dynamic range does not exceed
	// single precision, and it halves the wire size.
	Bins []complex128
}

// Header layout:
//
//	0  uint16  magic
//	2  uint8   version
//	3  uint8   reserved
//	4  uint64  seq
//	12 uint64  timestamp (us)
//	20 uint32  bin count
//	24 payload: bin count * 2 * float32
//	.. uint32  CRC32 (IEEE) over header+payload
const headerSize = 24

// StreamHello is sent once by the server when a client connects.
type StreamHello struct {
	// FrameRate is the slow-time rate in frames per second.
	FrameRate float64
	// BinSpacing is the range-bin spacing in metres.
	BinSpacing float64
	// NumBins is the per-frame bin count.
	NumBins uint32
}

// helloSize is the wire size of StreamHello: magic(2) version(1)
// reserved(1) frameRate(8) binSpacing(8) numBins(4) crc(4).
const helloSize = 28

// EncodeHello writes the stream hello to w.
func EncodeHello(w io.Writer, h StreamHello) error {
	if h.FrameRate <= 0 || h.BinSpacing <= 0 || h.NumBins == 0 {
		return fmt.Errorf("transport: invalid hello %+v", h)
	}
	buf := make([]byte, helloSize)
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	binary.BigEndian.PutUint64(buf[4:], math.Float64bits(h.FrameRate))
	binary.BigEndian.PutUint64(buf[12:], math.Float64bits(h.BinSpacing))
	binary.BigEndian.PutUint32(buf[20:], h.NumBins)
	binary.BigEndian.PutUint32(buf[24:], crc32.ChecksumIEEE(buf[:24]))
	_, err := w.Write(buf)
	if err != nil {
		return fmt.Errorf("transport: write hello: %w", err)
	}
	return nil
}

// DecodeHello reads the stream hello from r.
func DecodeHello(r io.Reader) (StreamHello, error) {
	buf := make([]byte, helloSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return StreamHello{}, fmt.Errorf("transport: read hello: %w", err)
	}
	if m := binary.BigEndian.Uint16(buf[0:]); m != Magic {
		return StreamHello{}, fmt.Errorf("transport: bad hello magic %#x", m)
	}
	if v := buf[2]; v != Version {
		return StreamHello{}, fmt.Errorf("transport: unsupported version %d", v)
	}
	if got, want := binary.BigEndian.Uint32(buf[24:]), crc32.ChecksumIEEE(buf[:24]); got != want {
		return StreamHello{}, fmt.Errorf("transport: hello CRC mismatch %#x != %#x", got, want)
	}
	h := StreamHello{
		FrameRate:  math.Float64frombits(binary.BigEndian.Uint64(buf[4:])),
		BinSpacing: math.Float64frombits(binary.BigEndian.Uint64(buf[12:])),
		NumBins:    binary.BigEndian.Uint32(buf[20:]),
	}
	if h.FrameRate <= 0 || h.BinSpacing <= 0 || h.NumBins == 0 || h.NumBins > MaxBins {
		return StreamHello{}, fmt.Errorf("transport: implausible hello %+v", h)
	}
	return h, nil
}

// Encoder writes frames to an underlying stream. It buffers internally;
// call Flush (or use the Server, which does) to push packets out.
type Encoder struct {
	w   *bufio.Writer
	buf []byte
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// Encode writes one frame.
func (e *Encoder) Encode(f Frame) error {
	n := len(f.Bins)
	if n == 0 || n > MaxBins {
		return fmt.Errorf("transport: frame has %d bins, want 1..%d", n, MaxBins)
	}
	total := headerSize + n*8 + 4
	if cap(e.buf) < total {
		e.buf = make([]byte, total)
	}
	buf := e.buf[:total]
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = 0
	binary.BigEndian.PutUint64(buf[4:], f.Seq)
	binary.BigEndian.PutUint64(buf[12:], f.TimestampMicros)
	binary.BigEndian.PutUint32(buf[20:], uint32(n))
	off := headerSize
	for _, c := range f.Bins {
		binary.BigEndian.PutUint32(buf[off:], math.Float32bits(float32(real(c))))
		binary.BigEndian.PutUint32(buf[off+4:], math.Float32bits(float32(imag(c))))
		off += 8
	}
	binary.BigEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	if _, err := e.w.Write(buf); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// Flush pushes buffered packets to the underlying writer.
func (e *Encoder) Flush() error {
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	return nil
}

// Decoder reads frames from an underlying stream.
type Decoder struct {
	r   *bufio.Reader
	buf []byte
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Decode reads one frame. It returns io.EOF (possibly wrapped) when the
// stream ends cleanly at a packet boundary.
func (d *Decoder) Decode() (Frame, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(d.r, header); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("transport: read header: %w", err)
	}
	if m := binary.BigEndian.Uint16(header[0:]); m != Magic {
		return Frame{}, fmt.Errorf("transport: bad magic %#x", m)
	}
	if v := header[2]; v != Version {
		return Frame{}, fmt.Errorf("transport: unsupported version %d", v)
	}
	n := binary.BigEndian.Uint32(header[20:])
	if n == 0 || n > MaxBins {
		return Frame{}, fmt.Errorf("transport: implausible bin count %d", n)
	}
	payload := int(n)*8 + 4
	if cap(d.buf) < payload {
		d.buf = make([]byte, payload)
	}
	body := d.buf[:payload]
	if _, err := io.ReadFull(d.r, body); err != nil {
		return Frame{}, fmt.Errorf("transport: read payload: %w", err)
	}
	crc := crc32.ChecksumIEEE(header)
	crc = crc32.Update(crc, crc32.IEEETable, body[:len(body)-4])
	if got := binary.BigEndian.Uint32(body[len(body)-4:]); got != crc {
		return Frame{}, fmt.Errorf("transport: frame CRC mismatch %#x != %#x", got, crc)
	}
	f := Frame{
		Seq:             binary.BigEndian.Uint64(header[4:]),
		TimestampMicros: binary.BigEndian.Uint64(header[12:]),
		Bins:            make([]complex128, n),
	}
	off := 0
	for i := range f.Bins {
		re := math.Float32frombits(binary.BigEndian.Uint32(body[off:]))
		im := math.Float32frombits(binary.BigEndian.Uint32(body[off+4:]))
		f.Bins[i] = complex(float64(re), float64(im))
		off += 8
	}
	return f, nil
}
