// Package transport implements the acquisition link of the real system:
// the impulse radio streams complex range profiles (over SPI to a
// Raspberry Pi, then to the processing laptop). Here frames are framed
// with a compact binary codec and shipped over TCP, so a radar daemon
// (cmd/radard) can feed any number of live detectors (cmd/radarwatch).
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorruptFrame marks a framing-level decode failure — bad magic,
// unsupported version, implausible bin count, or CRC mismatch — as
// opposed to an I/O error. A decoder in resync mode recovers from these
// by scanning forward to the next frame boundary; everything else
// (connection loss, clean EOF) still terminates the stream.
var ErrCorruptFrame = errors.New("transport: corrupt frame")

// Protocol constants.
const (
	// Magic marks the start of every frame packet.
	Magic = 0xB11C
	// Version is the wire protocol version.
	Version = 1
	// MaxBins bounds the per-frame bin count a decoder will accept,
	// protecting against corrupt or hostile length fields.
	MaxBins = 1 << 16
)

// Frame is one radar frame on the wire.
type Frame struct {
	// Seq is the monotonically increasing frame sequence number.
	Seq uint64
	// TimestampMicros is the capture time in microseconds since the
	// stream epoch.
	TimestampMicros uint64
	// Bins is the complex baseband range profile. Values are carried
	// as float32 pairs: the radio's dynamic range does not exceed
	// single precision, and it halves the wire size.
	Bins []complex128
}

// Header layout:
//
//	0  uint16  magic
//	2  uint8   version
//	3  uint8   reserved
//	4  uint64  seq
//	12 uint64  timestamp (us)
//	20 uint32  bin count
//	24 payload: bin count * 2 * float32
//	.. uint32  CRC32 (IEEE) over header+payload
const headerSize = 24

// StreamHello is sent once by the server when a client connects.
type StreamHello struct {
	// FrameRate is the slow-time rate in frames per second.
	FrameRate float64
	// BinSpacing is the range-bin spacing in metres.
	BinSpacing float64
	// NumBins is the per-frame bin count.
	NumBins uint32
}

// helloSize is the wire size of StreamHello: magic(2) version(1)
// reserved(1) frameRate(8) binSpacing(8) numBins(4) crc(4).
const helloSize = 28

// EncodeHello writes the stream hello to w.
func EncodeHello(w io.Writer, h StreamHello) error {
	if !plausibleHello(h) {
		return fmt.Errorf("transport: invalid hello %+v", h)
	}
	buf := make([]byte, helloSize)
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	binary.BigEndian.PutUint64(buf[4:], math.Float64bits(h.FrameRate))
	binary.BigEndian.PutUint64(buf[12:], math.Float64bits(h.BinSpacing))
	binary.BigEndian.PutUint32(buf[20:], h.NumBins)
	binary.BigEndian.PutUint32(buf[24:], crc32.ChecksumIEEE(buf[:24]))
	_, err := w.Write(buf)
	if err != nil {
		return fmt.Errorf("transport: write hello: %w", err)
	}
	return nil
}

// DecodeHello reads the stream hello from r.
func DecodeHello(r io.Reader) (StreamHello, error) {
	buf := make([]byte, helloSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return StreamHello{}, fmt.Errorf("transport: read hello: %w", err)
	}
	if m := binary.BigEndian.Uint16(buf[0:]); m != Magic {
		return StreamHello{}, fmt.Errorf("transport: bad hello magic %#x", m)
	}
	if v := buf[2]; v != Version {
		return StreamHello{}, fmt.Errorf("transport: unsupported version %d", v)
	}
	if got, want := binary.BigEndian.Uint32(buf[24:]), crc32.ChecksumIEEE(buf[:24]); got != want {
		return StreamHello{}, fmt.Errorf("transport: hello CRC mismatch %#x != %#x", got, want)
	}
	h := StreamHello{
		FrameRate:  math.Float64frombits(binary.BigEndian.Uint64(buf[4:])),
		BinSpacing: math.Float64frombits(binary.BigEndian.Uint64(buf[12:])),
		NumBins:    binary.BigEndian.Uint32(buf[20:]),
	}
	if !plausibleHello(h) {
		return StreamHello{}, fmt.Errorf("transport: implausible hello %+v", h)
	}
	return h, nil
}

// plausibleHello validates the geometry announcement: rates must be
// finite and positive (NaN fails the comparison, infinities are checked
// explicitly) and the bin count in range. Shared by encode and decode so
// nothing one side accepts can poison the other.
func plausibleHello(h StreamHello) bool {
	return h.FrameRate > 0 && !math.IsInf(h.FrameRate, 1) &&
		h.BinSpacing > 0 && !math.IsInf(h.BinSpacing, 1) &&
		h.NumBins >= 1 && h.NumBins <= MaxBins
}

// Encoder writes frames to an underlying stream. It buffers internally;
// call Flush (or use the Server, which does) to push packets out.
type Encoder struct {
	w   *bufio.Writer
	buf []byte
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// Encode writes one frame.
func (e *Encoder) Encode(f Frame) error {
	n := len(f.Bins)
	if n == 0 || n > MaxBins {
		return fmt.Errorf("transport: frame has %d bins, want 1..%d", n, MaxBins)
	}
	total := headerSize + n*8 + 4
	if cap(e.buf) < total {
		e.buf = make([]byte, total)
	}
	buf := e.buf[:total]
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = 0
	binary.BigEndian.PutUint64(buf[4:], f.Seq)
	binary.BigEndian.PutUint64(buf[12:], f.TimestampMicros)
	binary.BigEndian.PutUint32(buf[20:], uint32(n))
	off := headerSize
	for _, c := range f.Bins {
		binary.BigEndian.PutUint32(buf[off:], math.Float32bits(float32(real(c))))
		binary.BigEndian.PutUint32(buf[off+4:], math.Float32bits(float32(imag(c))))
		off += 8
	}
	binary.BigEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	if _, err := e.w.Write(buf); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// Flush pushes buffered packets to the underlying writer.
func (e *Encoder) Flush() error {
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	return nil
}

// Decoder reads frames from an underlying stream. By default any
// corruption terminates the stream with ErrCorruptFrame; EnableResync
// switches to in-stream recovery, where a corrupt frame is discarded
// and decoding realigns on the next plausible frame header.
type Decoder struct {
	r      *bufio.Reader
	buf    []byte
	header []byte

	resync      bool
	expectBins  uint32
	resyncs     uint64
	skippedByte uint64

	// DecodePlanes scratch, grown once to the stream geometry.
	planeI []float32
	planeQ []float32
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r), header: make([]byte, headerSize)}
}

// EnableResync makes Decode recover from corrupt frames by scanning
// forward to the next frame boundary instead of failing the stream.
// Intended for live links, where tearing the connection down over one
// damaged packet costs a reconnect and every frame in between.
func (d *Decoder) EnableResync() { d.resync = true }

// SetExpectedBins pins the per-frame bin count (0 lifts the pin). A
// header announcing any other count is treated as corrupt, which stops
// a damaged length field from stalling the stream on a giant phantom
// payload and sharpens resync's header validation. Streams whose
// geometry legitimately changes mid-connection must not pin.
func (d *Decoder) SetExpectedBins(n uint32) { d.expectBins = n }

// Resyncs reports how many corrupt frames were skipped and how many
// inter-frame garbage bytes were discarded while realigning.
func (d *Decoder) Resyncs() (frames, bytesSkipped uint64) {
	return d.resyncs, d.skippedByte
}

// Decode reads one frame. It returns io.EOF (possibly wrapped) when the
// stream ends cleanly at a packet boundary. With resync enabled,
// corrupt frames are skipped transparently (see Resyncs for the
// accounting); otherwise they surface as errors matching
// ErrCorruptFrame.
func (d *Decoder) Decode() (Frame, error) {
	f, err := d.decodeOnce()
	for err != nil && d.resync && errors.Is(err, ErrCorruptFrame) {
		d.resyncs++
		if serr := d.seekMagic(); serr != nil {
			return Frame{}, serr
		}
		f, err = d.decodeOnce()
	}
	return f, err
}

// seekMagic discards bytes until the reader is positioned at a
// plausible frame header (magic, supported version, sane bin count).
// The header is only peeked, never consumed, so a false positive costs
// one failed decode and another scan rather than lost alignment.
func (d *Decoder) seekMagic() error {
	for {
		p, err := d.r.Peek(2)
		if err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("transport: resync scan: %w", err)
		}
		if binary.BigEndian.Uint16(p) == Magic {
			hdr, herr := d.r.Peek(headerSize)
			if herr != nil {
				// Short stream: let the decode attempt surface the
				// truncation as its own error.
				return nil
			}
			if hdr[2] == Version {
				n := binary.BigEndian.Uint32(hdr[20:])
				if n >= 1 && n <= MaxBins && (d.expectBins == 0 || n == d.expectBins) {
					return nil
				}
			}
		}
		if _, err := d.r.Discard(1); err != nil {
			return fmt.Errorf("transport: resync scan: %w", err)
		}
		d.skippedByte++
	}
}

// decodeOnce reads one frame at the current stream position.
func (d *Decoder) decodeOnce() (Frame, error) {
	f, _, err := readFrame(d.r, d.header, &d.buf, nil, d.expectBins)
	return f, err
}

// PlaneFrame is one radar frame decoded into struct-of-arrays float32
// I/Q planes — the exact representation the wire carries and the
// detection pipeline consumes, so a planes decode is bit-identical to
// DecodeFrame followed by narrowing, with no complex128 widening round
// trip in between.
type PlaneFrame struct {
	// Seq is the monotonically increasing frame sequence number.
	Seq uint64
	// TimestampMicros is the capture time in microseconds since the
	// stream epoch.
	TimestampMicros uint64
	// I and Q are the in-phase and quadrature planes, one value per
	// range bin.
	I []float32
	Q []float32
}

// DecodePlanes reads one frame into decoder-owned I/Q planes, valid
// until the next DecodePlanes call. Error and resync semantics match
// Decode exactly.
func (d *Decoder) DecodePlanes() (PlaneFrame, error) {
	f, err := d.decodePlanesOnce()
	for err != nil && d.resync && errors.Is(err, ErrCorruptFrame) {
		d.resyncs++
		if serr := d.seekMagic(); serr != nil {
			return PlaneFrame{}, serr
		}
		f, err = d.decodePlanesOnce()
	}
	return f, err
}

// decodePlanesOnce reads one plane frame at the current stream
// position.
//
//blinkradar:hotpath
func (d *Decoder) decodePlanesOnce() (PlaneFrame, error) {
	f, _, err := readFramePlanes(d.r, d.header, &d.buf, d.planeI, d.planeQ, d.expectBins)
	if err == nil {
		d.planeI, d.planeQ = f.I, f.Q
	}
	return f, err
}

// frameWireSize is the encoded size of a frame with n bins.
func frameWireSize(n int) int { return headerSize + n*8 + 4 }

// readFrame decodes one CRC-framed frame from r at its current
// position, using the caller's scratch: header must be headerSize
// bytes, *payload is grown as needed, and bins — when its capacity
// suffices — receives the samples without allocating (pass nil to
// always allocate fresh bins). It reports the number of wire bytes
// consumed by a successful decode; decode failures return the same
// error classes as Decoder.Decode (io.EOF at a clean boundary,
// ErrCorruptFrame wrapping for framing damage, plain errors for I/O
// truncation mid-frame).
//
//blinkradar:hotpath
func readFrame(r io.Reader, header []byte, payload *[]byte, bins []complex128, expectBins uint32) (Frame, int, error) {
	body, n, err := readFrameWire(r, header, payload, expectBins)
	if err != nil {
		return Frame{}, 0, err
	}
	if cap(bins) < n {
		bins = make([]complex128, n) //blinkvet:ignore hotpathalloc -- grow-once: callers pass a geometry-sized buffer (or nil to opt into allocation)
	}
	f := Frame{
		Seq:             binary.BigEndian.Uint64(header[4:]),
		TimestampMicros: binary.BigEndian.Uint64(header[12:]),
		Bins:            bins[:n],
	}
	off := 0
	for i := range f.Bins {
		re := math.Float32frombits(binary.BigEndian.Uint32(body[off:]))
		im := math.Float32frombits(binary.BigEndian.Uint32(body[off+4:]))
		f.Bins[i] = complex(float64(re), float64(im))
		off += 8
	}
	return f, frameWireSize(n), nil
}

// readFramePlanes is readFrame decoding into struct-of-arrays float32
// planes, the wire's own sample representation: each bin's I and Q
// values land bit-for-bit, with no float64 round trip. pi and pq are
// reused when their capacity suffices (pass nil to allocate).
//
//blinkradar:hotpath
func readFramePlanes(r io.Reader, header []byte, payload *[]byte, pi, pq []float32, expectBins uint32) (PlaneFrame, int, error) {
	body, n, err := readFrameWire(r, header, payload, expectBins)
	if err != nil {
		return PlaneFrame{}, 0, err
	}
	if cap(pi) < n || cap(pq) < n {
		pi = make([]float32, n) //blinkvet:ignore hotpathalloc -- grow-once: callers pass geometry-sized planes (or nil to opt into allocation)
		pq = make([]float32, n) //blinkvet:ignore hotpathalloc -- grow-once: callers pass geometry-sized planes (or nil to opt into allocation)
	}
	f := PlaneFrame{
		Seq:             binary.BigEndian.Uint64(header[4:]),
		TimestampMicros: binary.BigEndian.Uint64(header[12:]),
		I:               pi[:n],
		Q:               pq[:n],
	}
	off := 0
	for i := 0; i < n; i++ {
		f.I[i] = math.Float32frombits(binary.BigEndian.Uint32(body[off:]))
		f.Q[i] = math.Float32frombits(binary.BigEndian.Uint32(body[off+4:]))
		off += 8
	}
	return f, frameWireSize(n), nil
}

// readFrameWire reads and validates one frame's header, payload and
// CRC, returning the payload body (sample area plus trailing CRC) and
// the bin count. Shared by the complex and planes decoders.
//
//blinkradar:hotpath
func readFrameWire(r io.Reader, header []byte, payload *[]byte, expectBins uint32) ([]byte, int, error) {
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, errReadHeader(err)
	}
	if m := binary.BigEndian.Uint16(header[0:]); m != Magic {
		return nil, 0, errBadMagic(m)
	}
	if v := header[2]; v != Version {
		return nil, 0, errBadVersion(v)
	}
	n := binary.BigEndian.Uint32(header[20:])
	if n == 0 || n > MaxBins || (expectBins != 0 && n != expectBins) {
		return nil, 0, errBadBinCount(n)
	}
	size := int(n)*8 + 4
	if cap(*payload) < size {
		*payload = make([]byte, size) //blinkvet:ignore hotpathalloc -- scratch growth is amortised: the payload buffer is reused across frames
	}
	body := (*payload)[:size]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, errReadPayload(err)
	}
	crc := crc32.ChecksumIEEE(header)
	crc = crc32.Update(crc, crc32.IEEETable, body[:len(body)-4])
	if got := binary.BigEndian.Uint32(body[len(body)-4:]); got != crc {
		return nil, 0, errBadCRC(got, crc)
	}
	return body, int(n), nil
}

// Cold error constructors, hoisted off the decode hot path.

//blinkradar:coldpath
func errReadHeader(err error) error { return fmt.Errorf("transport: read header: %w", err) }

//blinkradar:coldpath
func errBadMagic(m uint16) error { return fmt.Errorf("%w: bad magic %#x", ErrCorruptFrame, m) }

//blinkradar:coldpath
func errBadVersion(v uint8) error {
	return fmt.Errorf("%w: unsupported version %d", ErrCorruptFrame, v)
}

//blinkradar:coldpath
func errBadBinCount(n uint32) error {
	return fmt.Errorf("%w: implausible bin count %d", ErrCorruptFrame, n)
}

//blinkradar:coldpath
func errReadPayload(err error) error { return fmt.Errorf("transport: read payload: %w", err) }

//blinkradar:coldpath
func errBadCRC(got, want uint32) error {
	return fmt.Errorf("%w: CRC mismatch %#x != %#x", ErrCorruptFrame, got, want)
}
