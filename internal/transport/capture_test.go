package transport

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"blinkradar/internal/rf"
)

// testHello is the geometry used by most capture tests.
var testHello = StreamHello{FrameRate: 25, BinSpacing: 0.0107, NumBins: 8}

// testFrame builds frame k with float32-exact samples, so comparisons
// after the float32 wire round trip are bit-exact.
func testFrame(k int, bins int) Frame {
	f := Frame{Seq: uint64(k), TimestampMicros: uint64(k * 40000)}
	f.Bins = make([]complex128, bins)
	for i := range f.Bins {
		f.Bins[i] = complex(float64(k*bins+i), float64(-i))
	}
	return f
}

// writeTestCapture builds a finished v1 capture with n frames.
func writeTestCapture(tb testing.TB, hello StreamHello, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	cw, err := NewCaptureWriter(&buf, hello, 1700000000000000)
	if err != nil {
		tb.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if err := cw.WriteFrame(testFrame(k, int(hello.NumBins))); err != nil {
			tb.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// checkFrames reads the capture front to back and verifies it yields
// exactly frames 0..want-1, each bit-exact, then a clean io.EOF.
func checkFrames(t *testing.T, cr *CaptureReader, want int) {
	t.Helper()
	if cr.NumFrames() != want {
		t.Fatalf("NumFrames = %d, want %d", cr.NumFrames(), want)
	}
	if err := cr.Seek(0); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < want; k++ {
		f, err := cr.Next()
		if err != nil {
			t.Fatalf("Next at frame %d: %v", k, err)
		}
		ref := testFrame(k, int(cr.Header().Hello.NumBins))
		if f.Seq != ref.Seq || f.TimestampMicros != ref.TimestampMicros {
			t.Fatalf("frame %d header mismatch: %+v", k, f)
		}
		for i := range ref.Bins {
			if f.Bins[i] != ref.Bins[i] {
				t.Fatalf("frame %d bin %d = %v, want %v", k, i, f.Bins[i], ref.Bins[i])
			}
		}
	}
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}
}

func TestCaptureRoundTripV1(t *testing.T) {
	const n = 17
	data := writeTestCapture(t, testHello, n)
	cr, err := NewCaptureReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	h := cr.Header()
	if h.Version != CaptureVersion {
		t.Fatalf("Version = %d, want %d", h.Version, CaptureVersion)
	}
	if h.Hello != testHello {
		t.Fatalf("Hello = %+v, want %+v", h.Hello, testHello)
	}
	if h.StartTimeMicros != 1700000000000000 {
		t.Fatalf("StartTimeMicros = %d", h.StartTimeMicros)
	}
	if !cr.Indexed() {
		t.Fatal("complete capture should load its footer index")
	}
	if err := cr.Truncated(); err != nil {
		t.Fatalf("complete capture reports truncation: %v", err)
	}
	checkFrames(t, cr, n)
}

func TestCaptureSeek(t *testing.T) {
	const n = 12
	data := writeTestCapture(t, testHello, n)
	cr, err := NewCaptureReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{5, 0, 11, 3, 3} {
		if err := cr.Seek(k); err != nil {
			t.Fatal(err)
		}
		f, err := cr.Next()
		if err != nil {
			t.Fatalf("Next after Seek(%d): %v", k, err)
		}
		if f.Seq != uint64(k) {
			t.Fatalf("Seek(%d) landed on seq %d", k, f.Seq)
		}
		// Sequential read continues from there.
		if k+1 < n {
			f, err = cr.Next()
			if err != nil || f.Seq != uint64(k+1) {
				t.Fatalf("sequential Next after Seek(%d): seq %d, err %v", k, f.Seq, err)
			}
		}
	}
	if err := cr.Seek(n); err != nil {
		t.Fatalf("Seek to end: %v", err)
	}
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("Next at end = %v, want io.EOF", err)
	}
	if err := cr.Seek(-1); err == nil {
		t.Fatal("Seek(-1) should fail")
	}
	if err := cr.Seek(n + 1); err == nil {
		t.Fatal("Seek past end should fail")
	}
}

// TestCaptureReaderV0 loads a legacy hello+frames capture through the
// new reader.
func TestCaptureReaderV0(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeHello(&buf, testHello); err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(&buf)
	const n = 9
	for k := 0; k < n; k++ {
		if err := enc.Encode(testFrame(k, int(testHello.NumBins))); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	cr, err := NewCaptureReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cr.Header().Version != 0 {
		t.Fatalf("Version = %d, want 0", cr.Header().Version)
	}
	if cr.Header().Hello != testHello {
		t.Fatalf("Hello = %+v", cr.Header().Hello)
	}
	if err := cr.Truncated(); err != nil {
		t.Fatalf("clean v0 capture reports truncation: %v", err)
	}
	if cr.Indexed() {
		t.Fatal("v0 capture has no footer to be Indexed by")
	}
	checkFrames(t, cr, n)
}

// TestCaptureTruncationEveryByte is the boundary-cut matrix from the
// issue, taken to its limit: the capture is cut at every byte offset —
// mid-header, every mid-frame position, every mid-footer position —
// and the reader must recover exactly the intact frame prefix with
// ErrTruncatedCapture. Cuts inside the file header cannot even
// identify the capture and fail to open, still with the typed error.
func TestCaptureTruncationEveryByte(t *testing.T) {
	const n = 6
	data := writeTestCapture(t, testHello, n)
	frameSize := frameWireSize(int(testHello.NumBins))
	for cut := 0; cut < len(data); cut++ {
		cr, err := NewCaptureReader(bytes.NewReader(data[:cut]))
		if cut < captureHeaderSize {
			if err == nil {
				t.Fatalf("cut %d: opened a capture with no complete header", cut)
			}
			if !errors.Is(err, ErrTruncatedCapture) {
				t.Fatalf("cut %d: open error %v does not wrap ErrTruncatedCapture", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		wantFrames := (cut - captureHeaderSize) / frameSize
		if wantFrames > n {
			wantFrames = n
		}
		terr := cr.Truncated()
		if terr == nil {
			t.Fatalf("cut %d: truncated capture reports clean", cut)
		}
		if !errors.Is(terr, ErrTruncatedCapture) {
			t.Fatalf("cut %d: %v does not wrap ErrTruncatedCapture", cut, terr)
		}
		checkFrames(t, cr, wantFrames)
	}
	// And the uncut file is clean — the loop's asymmetry is real.
	cr, err := NewCaptureReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.Truncated(); err != nil {
		t.Fatalf("uncut capture reports truncation: %v", err)
	}
	checkFrames(t, cr, n)
}

// TestCaptureFooterCorruption damages the index while leaving every
// frame intact: the reader must fall back to the scan, recover all
// frames, and still flag the file.
func TestCaptureFooterCorruption(t *testing.T) {
	const n = 10
	data := writeTestCapture(t, testHello, n)
	frameEnd := captureHeaderSize + n*frameWireSize(int(testHello.NumBins))
	for _, off := range []int{frameEnd + 9, len(data) - 20, len(data) - 1} {
		corrupt := append([]byte{}, data...)
		corrupt[off] ^= 0xff
		cr, err := NewCaptureReader(bytes.NewReader(corrupt))
		if err != nil {
			t.Fatalf("flip at %d: open failed: %v", off, err)
		}
		if cr.Indexed() {
			t.Fatalf("flip at %d: damaged footer was trusted", off)
		}
		if terr := cr.Truncated(); !errors.Is(terr, ErrTruncatedCapture) {
			t.Fatalf("flip at %d: Truncated = %v", off, terr)
		}
		checkFrames(t, cr, n)
	}
}

// TestCaptureIndexedFrameCorruption damages one frame's payload while
// the footer stays valid: the index loads, the reader serves frames up
// to the damage, and the damaged frame surfaces as a typed error at
// read time (CRC validation runs on the indexed path too).
func TestCaptureIndexedFrameCorruption(t *testing.T) {
	const n, bad = 8, 4
	data := writeTestCapture(t, testHello, n)
	frameSize := frameWireSize(int(testHello.NumBins))
	corrupt := append([]byte{}, data...)
	corrupt[captureHeaderSize+bad*frameSize+headerSize+2] ^= 0xff
	cr, err := NewCaptureReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Indexed() {
		t.Fatal("footer is intact; the index should load")
	}
	for k := 0; k < bad; k++ {
		if _, err := cr.Next(); err != nil {
			t.Fatalf("intact frame %d: %v", k, err)
		}
	}
	if _, err := cr.Next(); !errors.Is(err, ErrTruncatedCapture) {
		t.Fatalf("damaged frame read = %v, want ErrTruncatedCapture", err)
	}
}

// TestCaptureCrashBeforeClose simulates the torn-write case the format
// exists for: frames checkpointed to disk, process dies before Close
// ever writes the footer. Every checkpointed frame must be served.
func TestCaptureCrashBeforeClose(t *testing.T) {
	var buf bytes.Buffer
	cw, err := NewCaptureWriter(&buf, testHello, 0)
	if err != nil {
		t.Fatal(err)
	}
	cw.SetCheckpointEvery(2)
	const n = 7
	for k := 0; k < n; k++ {
		if err := cw.WriteFrame(testFrame(k, int(testHello.NumBins))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// No Close: buf holds header + frames, no footer.
	cr, err := NewCaptureReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if terr := cr.Truncated(); !errors.Is(terr, ErrTruncatedCapture) {
		t.Fatalf("footerless capture Truncated = %v", terr)
	}
	checkFrames(t, cr, n)
}

func TestCaptureWriterContracts(t *testing.T) {
	var buf bytes.Buffer
	cw, err := NewCaptureWriter(&buf, testHello, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteFrame(testFrame(0, 5)); err == nil {
		t.Fatal("frame with wrong geometry accepted")
	}
	if err := cw.WriteFrame(testFrame(0, int(testHello.NumBins))); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteFrame(testFrame(1, int(testHello.NumBins))); err == nil {
		t.Fatal("WriteFrame after Close accepted")
	}
	if err := cw.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
	if _, err := NewCaptureWriter(&buf, StreamHello{}, 0); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

// TestCaptureReadMatrix checks the matrix convenience against the v0
// writer's output and a v1 capture of the same frames.
func TestCaptureReadMatrix(t *testing.T) {
	m, err := rf.NewFrameMatrix(20, 8, 25, 0.0107)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m.Data {
		for i := range m.Data[k] {
			m.Data[k][i] = complex(float64(k), float64(i))
		}
	}
	var v0 bytes.Buffer
	if err := WriteCapture(&v0, m); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"v0": v0.Bytes()} {
		cr, err := NewCaptureReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := cr.ReadMatrix()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumFrames() != m.NumFrames() || got.NumBins() != m.NumBins() {
			t.Fatalf("%s: matrix is %dx%d, want %dx%d", name, got.NumFrames(), got.NumBins(), m.NumFrames(), m.NumBins())
		}
		if got.FrameRate != m.FrameRate || got.BinSpacing != m.BinSpacing {
			t.Fatalf("%s: geometry %v/%v", name, got.FrameRate, got.BinSpacing)
		}
		for k := range m.Data {
			for i := range m.Data[k] {
				if got.Data[k][i] != m.Data[k][i] {
					t.Fatalf("%s: [%d][%d] = %v, want %v", name, k, i, got.Data[k][i], m.Data[k][i])
				}
			}
		}
	}
}

// TestWriteCaptureTimestampRounding is the regression test for the
// floor-vs-round bug: at a non-integer frame period (30 fps → 33333.3µs)
// flooring drifts odd frames 1µs early against the FrameTime grid.
func TestWriteCaptureTimestampRounding(t *testing.T) {
	if got := TimestampMicros(2.0 / 30.0); got != 66667 {
		t.Fatalf("TimestampMicros(2/30) = %d, want 66667 (floor would give 66666)", got)
	}
	if got := TimestampMicros(0.04); got != 40000 {
		t.Fatalf("TimestampMicros(0.04) = %d, want 40000", got)
	}
	m, err := rf.NewFrameMatrix(10, 4, 30, 0.0107)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, m); err != nil {
		t.Fatal(err)
	}
	cr, err := NewCaptureReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < cr.NumFrames(); k++ {
		f, err := cr.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(math.Round(m.FrameTime(k) * 1e6))
		if f.TimestampMicros != want {
			t.Fatalf("frame %d timestamp %dµs, want %dµs (drift %d)", k, f.TimestampMicros, want, int64(f.TimestampMicros)-int64(want))
		}
	}
}

// TestReadCaptureV0AllOrError pins the legacy reader's contract: any
// damage fails the whole read — no partial recovery on that path.
func TestReadCaptureV0AllOrError(t *testing.T) {
	m, err := rf.NewFrameMatrix(10, 4, 25, 0.0107)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadCapture(bytes.NewReader(data)); err != nil {
		t.Fatalf("clean capture: %v", err)
	}
	if _, err := ReadCapture(bytes.NewReader(data[:len(data)-7])); err == nil {
		t.Fatal("torn v0 capture must fail ReadCapture wholesale")
	}
	corrupt := append([]byte{}, data...)
	corrupt[helloSize+headerSize+1] ^= 0xff
	if _, err := ReadCapture(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt v0 capture must fail ReadCapture wholesale")
	}
}
