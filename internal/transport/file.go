package transport

import (
	"errors"
	"fmt"
	"io"

	"blinkradar/internal/rf"
)

// WriteCapture serialises a frame matrix to w in the wire format
// (hello followed by encoded frames). It is the storage format of
// cmd/radarsim.
func WriteCapture(w io.Writer, m *rf.FrameMatrix) error {
	if err := EncodeHello(w, StreamHello{
		FrameRate:  m.FrameRate,
		BinSpacing: m.BinSpacing,
		NumBins:    uint32(m.NumBins()),
	}); err != nil {
		return err
	}
	enc := NewEncoder(w)
	for k, frame := range m.Data {
		err := enc.Encode(Frame{
			Seq:             uint64(k),
			TimestampMicros: uint64(m.FrameTime(k) * 1e6),
			Bins:            frame,
		})
		if err != nil {
			return err
		}
	}
	return enc.Flush()
}

// ReadCapture parses a capture file back into a frame matrix.
func ReadCapture(r io.Reader) (*rf.FrameMatrix, error) {
	hello, err := DecodeHello(r)
	if err != nil {
		return nil, err
	}
	dec := NewDecoder(r)
	var frames [][]complex128
	for {
		f, err := dec.Decode()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(f.Bins) != int(hello.NumBins) {
			return nil, fmt.Errorf("transport: frame %d has %d bins, hello says %d", f.Seq, len(f.Bins), hello.NumBins)
		}
		frames = append(frames, f.Bins)
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("transport: capture holds no frames")
	}
	m, err := rf.NewFrameMatrix(len(frames), int(hello.NumBins), hello.FrameRate, hello.BinSpacing)
	if err != nil {
		return nil, err
	}
	for k, f := range frames {
		copy(m.Data[k], f)
	}
	return m, nil
}
