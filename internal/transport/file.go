package transport

import (
	"errors"
	"fmt"
	"io"
	"math"

	"blinkradar/internal/rf"
)

// TimestampMicros converts a time in seconds to microseconds, rounding
// half-up. Truncation here is not harmless: at a non-integer frame
// rate, flooring drifts frame timestamps by up to 1µs against the
// FrameTime grid, so a write→read round-trip no longer reproduces the
// recorded clock.
func TimestampMicros(sec float64) uint64 {
	return uint64(math.Round(sec * 1e6))
}

// WriteCapture serialises a frame matrix to w in the legacy v0 capture
// format: a stream hello followed by encoded frames, with no index and
// no recovery metadata. New captures should use CaptureWriter (the
// indexed .brc v1 format in capture.go); this writer remains for
// compatibility tooling and tests.
func WriteCapture(w io.Writer, m *rf.FrameMatrix) error {
	if err := EncodeHello(w, StreamHello{
		FrameRate:  m.FrameRate,
		BinSpacing: m.BinSpacing,
		NumBins:    uint32(m.NumBins()),
	}); err != nil {
		return err
	}
	enc := NewEncoder(w)
	for k, frame := range m.Data {
		err := enc.Encode(Frame{
			Seq:             uint64(k),
			TimestampMicros: TimestampMicros(m.FrameTime(k)),
			Bins:            frame,
		})
		if err != nil {
			return err
		}
	}
	return enc.Flush()
}

// ReadCapture parses a legacy v0 capture back into a frame matrix. It
// is deliberately all-or-error: any damage anywhere in the file fails
// the whole read. Use CaptureReader for torn-write recovery and for
// v1 files.
func ReadCapture(r io.Reader) (*rf.FrameMatrix, error) {
	hello, err := DecodeHello(r)
	if err != nil {
		return nil, err
	}
	dec := NewDecoder(r)
	var frames [][]complex128
	for {
		f, err := dec.Decode()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(f.Bins) != int(hello.NumBins) {
			return nil, fmt.Errorf("transport: frame %d has %d bins, hello says %d", f.Seq, len(f.Bins), hello.NumBins)
		}
		frames = append(frames, f.Bins)
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("transport: capture holds no frames")
	}
	m, err := rf.NewFrameMatrix(len(frames), int(hello.NumBins), hello.FrameRate, hello.BinSpacing)
	if err != nil {
		return nil, err
	}
	for k, f := range frames {
		copy(m.Data[k], f)
	}
	return m, nil
}
