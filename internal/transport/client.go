package transport

import (
	"context"
	"fmt"
	"net"
	"time"

	"blinkradar/internal/obs"
)

// Client consumes a radar frame stream from a radard server and feeds a
// per-frame callback — typically core.Detector.Feed — on the caller's
// goroutine.
type Client struct {
	conn  net.Conn
	dec   *Decoder
	hello StreamHello

	lastSeq uint64
	haveSeq bool

	readTimeout time.Duration
	seenResyncs uint64
	seenSkipped uint64

	// Metrics (nil-safe no-ops until SetRegistry attaches a registry).
	mFrames      *obs.Counter
	mSeqGaps     *obs.Counter
	mGapFrames   *obs.Counter
	mResyncs     *obs.Counter
	mResyncBytes *obs.Counter
}

// Dial connects to a radar server and reads the stream hello.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetReadDeadline(deadline); err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: set deadline: %w", err)
		}
	}
	hello, err := DecodeHello(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: clear deadline: %w", err)
	}
	return &Client{conn: conn, dec: NewDecoder(conn), hello: hello}, nil
}

// SetRegistry attaches an observability registry. Call before reading
// frames. Exported metrics:
//
//	transport_client_frames_received_total  frames decoded from the wire
//	transport_client_seq_gaps_total         discontinuities in Frame.Seq
//	transport_client_seq_gap_frames_total   frames lost across all gaps
//	transport_client_resyncs_total          corrupt frames skipped in-stream
//	transport_client_resync_bytes_total     garbage bytes discarded realigning
func (c *Client) SetRegistry(r *obs.Registry) {
	c.mFrames = r.Counter("transport_client_frames_received_total")
	c.mSeqGaps = r.Counter("transport_client_seq_gaps_total")
	c.mGapFrames = r.Counter("transport_client_seq_gap_frames_total")
	c.mResyncs = r.Counter("transport_client_resyncs_total")
	c.mResyncBytes = r.Counter("transport_client_resync_bytes_total")
}

// Hello returns the stream geometry announced by the server.
func (c *Client) Hello() StreamHello { return c.hello }

// SetReadTimeout bounds each frame read: if the server stalls for
// longer than d, the pending read fails and the stream ends (a
// reconnecting consumer then redials instead of hanging on a dead but
// unclosed connection). Zero disables the deadline.
func (c *Client) SetReadTimeout(d time.Duration) { c.readTimeout = d }

// EnableResync makes the client skip corrupt frames in-stream instead
// of failing the connection (see Decoder.EnableResync). Skipped frames
// surface downstream as sequence gaps. Resync pins the bin count to
// the hello's announcement, so a corrupted length field cannot stall
// the stream on a phantom payload — which also means a resyncing
// client treats a mid-stream geometry change as corruption.
func (c *Client) EnableResync() {
	c.dec.EnableResync()
	c.dec.SetExpectedBins(c.hello.NumBins)
}

// Resyncs reports the corrupt frames skipped and garbage bytes
// discarded on this connection.
func (c *Client) Resyncs() (frames, bytesSkipped uint64) { return c.dec.Resyncs() }

// harvestResyncs moves new decoder resync accounting into the metrics.
func (c *Client) harvestResyncs() {
	frames, skipped := c.dec.Resyncs()
	if d := frames - c.seenResyncs; d > 0 {
		c.mResyncs.Add(d)
		c.seenResyncs = frames
	}
	if d := skipped - c.seenSkipped; d > 0 {
		c.mResyncBytes.Add(d)
		c.seenSkipped = skipped
	}
}

// Next reads the next frame. It honours the context by closing the
// connection on cancellation, which unblocks the pending read.
func (c *Client) Next(ctx context.Context) (Frame, error) {
	if err := ctx.Err(); err != nil {
		return Frame{}, err
	}
	stop := context.AfterFunc(ctx, func() { c.conn.Close() })
	defer stop()
	if c.readTimeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return Frame{}, fmt.Errorf("transport: set read deadline: %w", err)
		}
	}
	f, err := c.dec.Decode()
	c.harvestResyncs()
	if err != nil {
		if ctx.Err() != nil {
			return Frame{}, ctx.Err()
		}
		return Frame{}, err
	}
	c.mFrames.Inc()
	if c.haveSeq && f.Seq > c.lastSeq+1 {
		c.mSeqGaps.Inc()
		c.mGapFrames.Add(f.Seq - c.lastSeq - 1)
	}
	c.lastSeq = f.Seq
	c.haveSeq = true
	return f, nil
}

// LastSeq returns the sequence number of the most recent frame and
// whether any frame has been read yet.
func (c *Client) LastSeq() (uint64, bool) { return c.lastSeq, c.haveSeq }

// Run pulls frames until the context is cancelled or the stream ends,
// invoking fn for each. A non-nil error from fn stops the loop and is
// returned.
func (c *Client) Run(ctx context.Context, fn func(Frame) error) error {
	for {
		f, err := c.Next(ctx)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			return err
		}
	}
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }
